open Wnet_dsim

(* Budgeted cost-sharing connectivity: the two-wave tree protocol must
   reach the centralized iterated-drop fixed point with Float.equal
   shares — under synchronous rounds at every pool size and under the
   asynchronous event queue. *)

let all_subscribe _ = true
let unlimited _ = infinity

let test_no_budget_pressure () =
  (* Everyone subscribes with infinite budget: nobody drops, every
     subscriber's share is the sum of c_v / users(v) down its path. *)
  let g =
    Wnet_graph.Graph.create
      ~costs:[| 0.0; 2.0; 4.0; 1.0 |]
      ~edges:[ (0, 1); (1, 2); (1, 3) ]
  in
  let o =
    Costshare_protocol.run ~subscriber:all_subscribe ~budget:unlimited g ~root:0
  in
  Alcotest.(check bool) "converged" true o.Costshare_protocol.stats.Engine.converged;
  Alcotest.(check (array bool)) "all funded"
    [| false; true; true; true |]
    o.Costshare_protocol.funded;
  (* node 1 relays for 2 and 3: pool of 2 strict descendants *)
  Alcotest.(check int) "node 1 pool" 2 o.Costshare_protocol.users.(1);
  Test_util.check_float "leaf 2 share" 1.0 o.Costshare_protocol.shares.(2);
  Test_util.check_float "leaf 3 share" 1.0 o.Costshare_protocol.shares.(3);
  Test_util.check_float "node 1 share (root is free)" 0.0
    o.Costshare_protocol.shares.(1)

let test_budget_drop_cascades () =
  (* Same tree, but leaf 3 can only afford 0.6: it drops, leaving leaf 2
     alone in node 1's pool at charge 2.0. *)
  let g =
    Wnet_graph.Graph.create
      ~costs:[| 0.0; 2.0; 4.0; 1.0 |]
      ~edges:[ (0, 1); (1, 2); (1, 3) ]
  in
  let budget v = if v = 3 then 0.6 else infinity in
  let o =
    Costshare_protocol.run ~subscriber:all_subscribe ~budget g ~root:0
  in
  Alcotest.(check (array bool)) "leaf 3 dropped"
    [| false; true; true; false |]
    o.Costshare_protocol.funded;
  Test_util.check_float "leaf 2 now pays alone" 2.0
    o.Costshare_protocol.shares.(2);
  Alcotest.(check bool) "dropped share is nan" true
    (Float.is_nan o.Costshare_protocol.shares.(3));
  let parent = Costshare_protocol.tree_parents g ~root:0 in
  Alcotest.(check bool) "matches centralized" true
    (Costshare_protocol.matches_centralized o g ~parent
       ~subscriber:all_subscribe ~budget)

let random_instance r =
  let n = 5 + Wnet_prng.Rng.int r 25 in
  let g =
    Wnet_topology.Gnp.connected_graph r ~n ~p:0.25 ~cost_lo:0.5 ~cost_hi:5.0
  in
  let sub_mask =
    Array.init n (fun v -> v <> 0 && Wnet_prng.Rng.int r 3 > 0)
  in
  let budgets =
    Array.init n (fun _ -> 0.5 +. Wnet_prng.Rng.float r 6.0)
  in
  (g, (fun v -> sub_mask.(v)), fun v -> budgets.(v))

let prop_matches_centralized =
  Test_util.qcheck_case ~count:100 "sync fixed point = centralized (bits)"
    Test_util.seed_gen (fun seed ->
      let r = Test_util.rng seed in
      let g, subscriber, budget = random_instance r in
      let o = Costshare_protocol.run ~subscriber ~budget g ~root:0 in
      let parent = Costshare_protocol.tree_parents g ~root:0 in
      o.Costshare_protocol.stats.Engine.converged
      && Costshare_protocol.matches_centralized o g ~parent ~subscriber ~budget)

let prop_async_matches_centralized =
  Test_util.qcheck_case ~count:60 "async fixed point = centralized (bits)"
    Test_util.seed_gen (fun seed ->
      let r = Test_util.rng seed in
      let g, subscriber, budget = random_instance r in
      let o =
        Costshare_protocol.run_async ~rng:(Wnet_prng.Rng.split r) ~subscriber
          ~budget g ~root:0
      in
      let parent = Costshare_protocol.tree_parents g ~root:0 in
      o.Costshare_protocol.stats.Engine.converged
      && Costshare_protocol.matches_centralized o g ~parent ~subscriber ~budget)

let test_pool_sizes_bit_identical () =
  let r = Test_util.rng 911 in
  Wnet_par.with_pool ~domains:3 (fun pool ->
      for _ = 1 to 10 do
        let g, subscriber, budget = random_instance r in
        let seq = Costshare_protocol.run ~subscriber ~budget g ~root:0 in
        let par = Costshare_protocol.run ~pool ~subscriber ~budget g ~root:0 in
        Alcotest.(check (array bool)) "same funded set"
          seq.Costshare_protocol.funded par.Costshare_protocol.funded;
        Alcotest.(check bool) "shares bit-identical" true
          (Array.for_all2 Float.equal seq.Costshare_protocol.shares
             par.Costshare_protocol.shares);
        Alcotest.(check int) "same rounds"
          seq.Costshare_protocol.stats.Engine.rounds
          par.Costshare_protocol.stats.Engine.rounds
      done)

let test_bad_inputs_rejected () =
  let g = Wnet_topology.Fixtures.ring ~costs:(Array.make 4 1.0) in
  Alcotest.check_raises "bad root"
    (Invalid_argument "Costshare_protocol: bad root") (fun () ->
      ignore
        (Costshare_protocol.make_spec g ~root:9 ~parent:(Array.make 4 (-1))
           ~subscriber:all_subscribe ~budget:unlimited));
  Alcotest.check_raises "parent not a neighbour"
    (Invalid_argument "Costshare_protocol: parent is not a neighbour")
    (fun () ->
      ignore
        (Costshare_protocol.make_spec g ~root:0 ~parent:[| -1; 3; 0; 2 |]
           ~subscriber:all_subscribe ~budget:unlimited))

let suite =
  [
    Alcotest.test_case "no budget pressure" `Quick test_no_budget_pressure;
    Alcotest.test_case "budget drop cascades" `Quick test_budget_drop_cascades;
    prop_matches_centralized;
    prop_async_matches_centralized;
    Alcotest.test_case "pool sizes 1/3 bit-identical" `Quick
      test_pool_sizes_bit_identical;
    Alcotest.test_case "bad inputs rejected" `Quick test_bad_inputs_rejected;
  ]
