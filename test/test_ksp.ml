open Wnet_graph

let theta () =
  Wnet_topology.Fixtures.theta ~spine_costs:[| 1.0; 1.0 |]
    ~arm_costs:[| [| 2.0 |]; [| 3.0 |]; [| 7.0 |] |]

let test_ranks_on_theta () =
  let g = theta () in
  match Ksp.k_shortest_paths g ~src:0 ~dst:1 ~k:3 with
  | [ a; b; c ] ->
    Test_util.check_float "best" 2.0 (Path.relay_cost g a);
    Test_util.check_float "second" 3.0 (Path.relay_cost g b);
    Test_util.check_float "third" 7.0 (Path.relay_cost g c);
    Alcotest.(check bool) "all simple & valid" true
      (List.for_all (Path.is_valid g) [ a; b; c ])
  | _ -> Alcotest.fail "three arms, three paths"

let test_k_larger_than_path_count () =
  let g = theta () in
  Alcotest.(check int) "only 3 simple paths" 3
    (List.length (Ksp.k_shortest_paths g ~src:0 ~dst:1 ~k:10))

let test_single_path () =
  let g = Wnet_topology.Fixtures.line ~costs:(Array.make 4 1.0) in
  Alcotest.(check int) "line has one path" 1
    (List.length (Ksp.k_shortest_paths g ~src:0 ~dst:3 ~k:5));
  Alcotest.(check (option (float 0.0))) "no second path" None
    (Ksp.second_best_gap g ~src:0 ~dst:3)

let test_unreachable () =
  let g = Graph.create ~costs:(Array.make 3 1.0) ~edges:[ (0, 1) ] in
  Alcotest.(check int) "empty" 0 (List.length (Ksp.k_shortest_paths g ~src:0 ~dst:2 ~k:3))

let test_second_best_gap () =
  let g = theta () in
  Alcotest.(check (option (float 1e-9))) "gap 1" (Some 1.0)
    (Ksp.second_best_gap g ~src:0 ~dst:1)

let test_validation () =
  let g = theta () in
  Alcotest.check_raises "k = 0" (Invalid_argument "Ksp: k must be positive")
    (fun () -> ignore (Ksp.k_shortest_paths g ~src:0 ~dst:1 ~k:0));
  Alcotest.check_raises "src = dst" (Invalid_argument "Ksp: src = dst") (fun () ->
      ignore (Ksp.k_shortest_paths g ~src:1 ~dst:1 ~k:1))

let enumerate g src dst =
  let acc = ref [] in
  let rec go v visited =
    if v = dst then acc := Array.of_list (List.rev visited) :: !acc
    else
      Array.iter
        (fun w -> if not (List.mem w visited) then go w (w :: visited))
        (Graph.neighbors g v)
  in
  go src [ src ];
  List.sort
    (fun a b -> compare (Path.relay_cost g a, a) (Path.relay_cost g b, b))
    !acc

let prop_matches_bruteforce =
  Test_util.qcheck_case ~count:80 "Yen ranks = brute-force ranks"
    Test_util.seed_gen (fun seed ->
      let r = Test_util.rng seed in
      let g = Test_util.random_ring_graph ~min_n:4 ~max_n:7 r in
      let n = Graph.n g in
      let src = 0 and dst = n / 2 in
      let brute = enumerate g src dst in
      let k = min 4 (List.length brute) in
      let yen = Ksp.k_shortest_paths g ~src ~dst ~k in
      List.length yen = k
      && List.for_all2
           (fun a b -> Test_util.approx (Path.relay_cost g a) (Path.relay_cost g b))
           yen
           (List.filteri (fun i _ -> i < k) brute))

let prop_ordered_and_simple =
  Test_util.qcheck_case ~count:60 "results ordered, simple, distinct"
    Test_util.seed_gen (fun seed ->
      let r = Test_util.rng seed in
      let g = Test_util.random_ring_graph ~min_n:5 ~max_n:15 r in
      let n = Graph.n g in
      let src = Wnet_prng.Rng.int r n in
      let dst = (src + 1 + Wnet_prng.Rng.int r (n - 1)) mod n in
      let paths = Ksp.k_shortest_paths g ~src ~dst ~k:4 in
      let costs = List.map (Path.relay_cost g) paths in
      let rec sorted = function
        | a :: (b :: _ as rest) -> a <= b +. 1e-9 && sorted rest
        | _ -> true
      in
      sorted costs
      && List.for_all (Path.is_valid g) paths
      && List.length (List.sort_uniq compare paths) = List.length paths)

(* The work-stealing spur fan-out must be invisible: at every pool size
   the parallel Yen returns the sequential answer bit for bit —
   Float.equal costs and identical node arrays.  Half the generated
   graphs use small integer costs, so spur candidates tie exactly: the
   regime where a schedule-dependent candidate merge would show up. *)
let tied_cost_graph r =
  let n = 5 + Wnet_prng.Rng.int r 8 in
  let costs =
    Array.init n (fun _ -> float_of_int (1 + Wnet_prng.Rng.int r 3))
  in
  let edges = ref (List.init n (fun v -> (v, (v + 1) mod n))) in
  for _ = 1 to Wnet_prng.Rng.int r (2 * n) do
    let u = Wnet_prng.Rng.int r n and v = Wnet_prng.Rng.int r n in
    if u <> v then edges := (u, v) :: !edges
  done;
  Graph.create ~costs ~edges:!edges

let prop_parallel_matches_sequential =
  Test_util.qcheck_case ~count:30 "parallel Yen = sequential Yen (bits)"
    Test_util.seed_gen (fun seed ->
      let r = Test_util.rng seed in
      let g =
        if seed land 1 = 0 then Test_util.random_ring_graph ~min_n:5 ~max_n:12 r
        else tied_cost_graph r
      in
      let n = Graph.n g in
      let src = Wnet_prng.Rng.int r n in
      let dst = (src + 1 + Wnet_prng.Rng.int r (n - 1)) mod n in
      let seq = Ksp.k_shortest_paths g ~src ~dst ~k:4 in
      List.for_all
        (fun domains ->
          Wnet_par.with_pool ~domains (fun pool ->
              let par = Ksp.k_shortest_paths ~pool g ~src ~dst ~k:4 in
              List.length par = List.length seq
              && List.for_all2
                   (fun a b ->
                     a = b
                     && Float.equal (Path.relay_cost g a) (Path.relay_cost g b))
                   par seq))
        [ 1; 3 ])

let test_second_path_experiment_decays () =
  let buckets = Wnet_experiments.Second_path_exp.study ~n:100 ~instances:2 ~seed:11 () in
  Alcotest.(check bool) "several buckets" true (List.length buckets >= 3);
  (* the paper's claim: the relative gap at 2-3 hops dwarfs the tail *)
  let near = List.filter (fun b -> b.Wnet_experiments.Second_path_exp.hop <= 3) buckets in
  let far = List.filter (fun b -> b.Wnet_experiments.Second_path_exp.hop >= 6) buckets in
  match (near, far) with
  | _ :: _, _ :: _ ->
    let mean l =
      List.fold_left (fun a b -> a +. b.Wnet_experiments.Second_path_exp.mean_gap) 0.0 l
      /. float_of_int (List.length l)
    in
    Alcotest.(check bool) "gap decays with hops" true (mean near > 2.0 *. mean far)
  | _ -> ()

let test_second_path_study_parallel_identical () =
  (* End to end through the experiment: instance fan-out AND nested spur
     fan-out on one pool vs the sequential run, structurally equal
     (floats bitwise — no NaNs arise here). *)
  let seq = Wnet_experiments.Second_path_exp.study ~n:60 ~instances:2 ~seed:5 () in
  Wnet_par.with_pool ~domains:3 (fun pool ->
      let par =
        Wnet_experiments.Second_path_exp.study ~n:60 ~instances:2 ~pool ~seed:5
          ()
      in
      Alcotest.(check bool) "study bit-identical" true (seq = par))

let suite =
  [
    Alcotest.test_case "ranks on theta" `Quick test_ranks_on_theta;
    Alcotest.test_case "k larger than path count" `Quick test_k_larger_than_path_count;
    Alcotest.test_case "single-path graph" `Quick test_single_path;
    Alcotest.test_case "unreachable" `Quick test_unreachable;
    Alcotest.test_case "second-best gap" `Quick test_second_best_gap;
    Alcotest.test_case "validation" `Quick test_validation;
    prop_matches_bruteforce;
    prop_ordered_and_simple;
    prop_parallel_matches_sequential;
    Alcotest.test_case "second-path experiment decays" `Quick test_second_path_experiment_decays;
    Alcotest.test_case "second-path study parallel = sequential" `Quick
      test_second_path_study_parallel_identical;
  ]
