open Wnet_dsim

(* Cross-verification of the distributed payment protocol against the
   session layer: the dsim fixed point must match Node_session's cached
   all-to-root batch (the "oracle"), and the dsim configurations among
   themselves must agree bit for bit.

   Two different equalities on purpose: sync rounds, async schedules and
   every pool size relax over the same candidate set (one candidate per
   route, each summed in path order), so their fixed points are
   Float.equal-identical.  The centralized oracle associates its sums
   differently, so it is compared with 1e-6 relative tolerance. *)

let random_graph r =
  let n = 5 + Wnet_prng.Rng.int r 21 in
  Wnet_topology.Gnp.connected_graph r ~n ~p:0.25 ~cost_lo:0.5 ~cost_hi:5.0

let tables_bit_identical a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun ta tb ->
         List.length ta = List.length tb
         && List.for_all2
              (fun (k1, p1) (k2, p2) -> k1 = k2 && Float.equal p1 p2)
              ta tb)
       a b

let tables_approx a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun ta tb ->
         List.length ta = List.length tb
         && List.for_all2
              (fun (k1, p1) (k2, p2) ->
                k1 = k2 && Test_util.approx ~eps:1e-6 p1 p2)
              ta tb)
       a b

let prop_sync_equals_async =
  Test_util.qcheck_case ~count:100 "sync payments = async payments (bits)"
    Test_util.seed_gen (fun seed ->
      let r = Test_util.rng seed in
      let g = random_graph r in
      let sync = Payment_protocol.run g ~root:0 in
      let (async_payments, accusations), astats =
        Payment_protocol.run_async ~rng:(Wnet_prng.Rng.split r) g ~root:0
      in
      sync.Payment_protocol.stats.Engine.converged
      && astats.Async_engine.converged
      && accusations = []
      && tables_bit_identical sync.Payment_protocol.payments async_payments)

let test_pool_sizes_bit_identical () =
  let r = Test_util.rng 901 in
  Wnet_par.with_pool ~domains:3 (fun pool ->
      for _ = 1 to 10 do
        let g = random_graph r in
        let seq = Payment_protocol.run g ~root:0 in
        let par = Payment_protocol.run ~pool g ~root:0 in
        Alcotest.(check bool) "pool 3 converged" true
          par.Payment_protocol.stats.Engine.converged;
        Alcotest.(check bool) "pool 1 = pool 3 (bits)" true
          (tables_bit_identical seq.Payment_protocol.payments
             par.Payment_protocol.payments);
        Alcotest.(check int) "same rounds"
          seq.Payment_protocol.stats.Engine.rounds
          par.Payment_protocol.stats.Engine.rounds;
        Alcotest.(check int) "same deliveries"
          seq.Payment_protocol.stats.Engine.deliveries
          par.Payment_protocol.stats.Engine.deliveries
      done)

let test_sync_matches_session_oracle () =
  let r = Test_util.rng 902 in
  Wnet_par.with_pool ~domains:3 (fun pool ->
      for _ = 1 to 10 do
        let g = random_graph r in
        let session = Wnet_session.Node_session.create g ~root:0 in
        let oracle = Wnet_session.Node_session.relay_tables session in
        let seq = Payment_protocol.run g ~root:0 in
        let par = Payment_protocol.run ~pool g ~root:0 in
        Alcotest.(check bool) "sync pool 1 = oracle" true
          (tables_approx oracle seq.Payment_protocol.payments);
        Alcotest.(check bool) "sync pool 3 = oracle" true
          (tables_approx oracle par.Payment_protocol.payments)
      done)

let test_async_matches_session_oracle () =
  let r = Test_util.rng 903 in
  for _ = 1 to 10 do
    let g = random_graph r in
    let session = Wnet_session.Node_session.create g ~root:0 in
    let oracle = Wnet_session.Node_session.relay_tables session in
    let (payments, _), astats =
      Payment_protocol.run_async ~rng:(Wnet_prng.Rng.split r) g ~root:0
    in
    Alcotest.(check bool) "async converged" true astats.Async_engine.converged;
    Alcotest.(check bool) "async = oracle" true (tables_approx oracle payments)
  done

let test_oracle_marks_monopolies_infinity () =
  (* A path graph makes every interior relay a cut vertex: the session
     oracle reports infinity payments and dsim must agree exactly. *)
  let g =
    Wnet_graph.Graph.create
      ~costs:[| 1.0; 2.0; 3.0; 4.0 |]
      ~edges:[ (0, 1); (1, 2); (2, 3) ]
  in
  let session = Wnet_session.Node_session.create g ~root:0 in
  let oracle = Wnet_session.Node_session.relay_tables session in
  let sync = Payment_protocol.run g ~root:0 in
  Alcotest.(check bool) "path graph: dsim = oracle" true
    (tables_approx oracle sync.Payment_protocol.payments);
  List.iter
    (fun (_, p) -> Alcotest.(check bool) "monopoly = infinity" true (p = infinity))
    sync.Payment_protocol.payments.(3)

let suite =
  [
    prop_sync_equals_async;
    Alcotest.test_case "pool sizes 1/3 bit-identical" `Quick
      test_pool_sizes_bit_identical;
    Alcotest.test_case "sync payments = session oracle" `Quick
      test_sync_matches_session_oracle;
    Alcotest.test_case "async payments = session oracle" `Quick
      test_async_matches_session_oracle;
    Alcotest.test_case "monopoly relays = infinity, both sides" `Quick
      test_oracle_marks_monopolies_infinity;
  ]
