open Wnet_dsim

let ring n = Wnet_topology.Fixtures.ring ~costs:(Array.make n 1.0)

(* Flood protocol: node 0 emits a token at round 0; everyone forwards the
   first time they hear it.  All nodes must end marked, in diameter
   rounds. *)
let flood_spec =
  {
    Engine.init = (fun v -> v = 0);
    step =
      (fun ~node:_ ~round:_ ~event:_ ~inbox ~outbox state ->
        if state then begin
          if Engine.inbox_is_empty inbox then Engine.broadcast outbox ();
          state
        end
        else if not (Engine.inbox_is_empty inbox) then begin
          Engine.broadcast outbox ();
          true
        end
        else state);
  }

let test_flood_reaches_everyone () =
  let g = ring 10 in
  let states, stats = Engine.run g flood_spec in
  Alcotest.(check (array bool)) "all marked" (Array.make 10 true) states;
  Alcotest.(check bool) "converged" true stats.Engine.converged;
  (* diameter rounds to inform everyone, plus one final round in which
     the last broadcasts are delivered and absorbed *)
  Alcotest.(check int) "diameter + 1 rounds" 6 stats.Engine.rounds

let test_flood_message_count () =
  let g = ring 6 in
  let _, stats = Engine.run g flood_spec in
  (* each node broadcasts exactly once *)
  Alcotest.(check int) "one broadcast per node" 6 stats.Engine.broadcasts;
  Alcotest.(check int) "2 deliveries per broadcast" 12 stats.Engine.deliveries

let test_direct_messages () =
  (* Node 0 sends a direct message to neighbour 1 only. *)
  let spec =
    {
      Engine.init = (fun _ -> 0);
      step =
        (fun ~node ~round ~event:_ ~inbox ~outbox state ->
          if node = 0 && round = 0 then begin
            Engine.direct outbox ~target:1 ();
            state
          end
          else state + Engine.inbox_length inbox);
    }
  in
  let g = ring 4 in
  let states, stats = Engine.run g spec in
  Alcotest.(check int) "only node 1 got it" 1 states.(1);
  Alcotest.(check int) "node 3 got nothing" 0 states.(3);
  Alcotest.(check int) "one direct" 1 stats.Engine.directs

let test_direct_to_non_neighbour_rejected () =
  let spec =
    {
      Engine.init = (fun _ -> ());
      step =
        (fun ~node ~round ~event:_ ~inbox:_ ~outbox state ->
          if node = 0 && round = 0 then Engine.direct outbox ~target:2 ();
          state);
    }
  in
  Alcotest.check_raises "non-neighbour"
    (Invalid_argument "Engine: direct message to a non-neighbour") (fun () ->
      ignore (Engine.run (ring 4) spec))

let test_max_rounds_cutoff () =
  (* A protocol that never quiets down must be stopped by max_rounds. *)
  let chatty =
    {
      Engine.init = (fun _ -> ());
      step =
        (fun ~node:_ ~round:_ ~event:_ ~inbox:_ ~outbox state ->
          Engine.broadcast outbox ();
          state);
    }
  in
  let _, stats = Engine.run ~max_rounds:7 (ring 4) chatty in
  Alcotest.(check int) "stopped at cutoff" 7 stats.Engine.rounds;
  Alcotest.(check bool) "not converged" false stats.Engine.converged

let test_inbox_pairs_sender () =
  let got = ref [] in
  let spec =
    {
      Engine.init = (fun _ -> ());
      step =
        (fun ~node ~round ~event:_ ~inbox ~outbox state ->
          if round = 0 then Engine.broadcast outbox node
          else if node = 0 then
            Engine.inbox_iter inbox (fun s p -> got := (s, p) :: !got);
          state);
    }
  in
  ignore (Engine.run (ring 4) spec);
  let senders = List.sort compare (List.map fst !got) in
  Alcotest.(check (list int)) "heard both neighbours" [ 1; 3 ] senders;
  List.iter (fun (s, p) -> Alcotest.(check int) "payload = sender id" s p) !got

let test_inbox_canonical_order () =
  (* Every delivery is canonicalised by (sender, emission seq): node 0's
     inbox must list neighbour 1's two messages before neighbour 3's,
     each pair in emission order, and random access must agree with
     iteration. *)
  let got = ref [] in
  let spec =
    {
      Engine.init = (fun _ -> ());
      step =
        (fun ~node ~round ~event:_ ~inbox ~outbox state ->
          if round = 0 then begin
            Engine.broadcast outbox (10 * node);
            Engine.broadcast outbox ((10 * node) + 1)
          end
          else if node = 0 && not (Engine.inbox_is_empty inbox) then begin
            for i = 0 to Engine.inbox_length inbox - 1 do
              got :=
                (Engine.inbox_sender inbox i, Engine.inbox_payload inbox i)
                :: !got
            done
          end;
          state);
    }
  in
  ignore (Engine.run (ring 4) spec);
  Alcotest.(check (list (pair int int)))
    "(sender, seq) canonical order"
    [ (1, 10); (1, 11); (3, 30); (3, 31) ]
    (List.rev !got)

let test_round0_empty_inbox_contract () =
  (* Pinned contract shared by both engines: every node is seeded exactly
     once at round 0 with an empty inbox, before any delivery. *)
  let record () =
    let seen = ref [] in
    let spec =
      {
        Engine.init = (fun _ -> ());
        step =
          (fun ~node ~round ~event:_ ~inbox ~outbox state ->
            if round = 0 then begin
              seen := (node, Engine.inbox_length inbox) :: !seen;
              Engine.broadcast outbox ()
            end;
            state);
      }
    in
    (spec, seen)
  in
  let g = ring 5 in
  let spec, seen = record () in
  ignore (Engine.run g spec);
  Alcotest.(check (list (pair int int)))
    "sync: each node seeded once, empty inbox"
    [ (0, 0); (1, 0); (2, 0); (3, 0); (4, 0) ]
    (List.sort compare !seen);
  let spec, seen = record () in
  ignore (Async_engine.run ~rng:(Test_util.rng 5) g spec);
  Alcotest.(check (list (pair int int)))
    "async: each node seeded once, empty inbox"
    [ (0, 0); (1, 0); (2, 0); (3, 0); (4, 0) ]
    (List.sort compare !seen)

(* A deliberately irregular float protocol (fan-out depends on node id,
   a few rounds of chatter) to exercise the parallel path: every pool
   size must produce bit-identical states and stats. *)
let irregular_spec g =
  {
    Engine.init = (fun v -> float_of_int v);
    step =
      (fun ~node ~round ~event:_ ~inbox ~outbox state ->
        let acc = ref state in
        Engine.inbox_iter inbox (fun s p ->
            acc := !acc +. (p /. float_of_int (s + 1)));
        if round < 3 && node mod 3 <> 2 then Engine.broadcast outbox !acc;
        (if round = 1 && node mod 4 = 1 then
           let nbrs = Wnet_graph.Graph.neighbors g node in
           if Array.length nbrs > 0 then
             Engine.direct outbox ~target:nbrs.(0) !acc);
        !acc);
  }

let test_pool_sizes_bit_identical () =
  let n = 40 in
  let g =
    Wnet_topology.Gnp.connected_graph (Test_util.rng 77) ~n ~p:0.15
      ~cost_lo:0.5 ~cost_hi:5.0
  in
  let s1, t1 = Engine.run g (irregular_spec g) in
  Wnet_par.with_pool ~domains:3 (fun pool ->
      let s3, t3 = Engine.run ~pool g (irregular_spec g) in
      Array.iteri
        (fun i x ->
          Alcotest.(check bool)
            (Printf.sprintf "state %d bit-identical" i)
            true
            (Float.equal x s3.(i)))
        s1;
      Alcotest.(check int) "rounds" t1.Engine.rounds t3.Engine.rounds;
      Alcotest.(check int) "broadcasts" t1.Engine.broadcasts t3.Engine.broadcasts;
      Alcotest.(check int) "directs" t1.Engine.directs t3.Engine.directs;
      Alcotest.(check int) "deliveries" t1.Engine.deliveries t3.Engine.deliveries;
      Alcotest.(check bool) "converged" t1.Engine.converged t3.Engine.converged;
      Alcotest.(check bool)
        "tasks accounted" true
        (t1.Engine.tasks_executed > 0
        && t3.Engine.tasks_executed >= t1.Engine.tasks_executed))

let test_live_counter_convergence_flag () =
  (* Quiescence is tracked by a live non-empty-inbox counter, not an
     O(n) scan; the convergence flag must behave identically in both
     directions. *)
  let g = ring 10 in
  let _, stats = Engine.run g flood_spec in
  Alcotest.(check bool) "flood converges" true stats.Engine.converged;
  let _, stats = Engine.run ~max_rounds:3 g flood_spec in
  Alcotest.(check bool) "cut short = not converged" false stats.Engine.converged;
  Alcotest.(check int) "stopped at cutoff" 3 stats.Engine.rounds

let suite =
  [
    Alcotest.test_case "flood reaches everyone" `Quick test_flood_reaches_everyone;
    Alcotest.test_case "message accounting" `Quick test_flood_message_count;
    Alcotest.test_case "direct channel" `Quick test_direct_messages;
    Alcotest.test_case "direct to non-neighbour rejected" `Quick test_direct_to_non_neighbour_rejected;
    Alcotest.test_case "max-rounds cutoff" `Quick test_max_rounds_cutoff;
    Alcotest.test_case "inbox pairs sender" `Quick test_inbox_pairs_sender;
    Alcotest.test_case "inbox canonical (sender, seq) order" `Quick test_inbox_canonical_order;
    Alcotest.test_case "round-0 empty-inbox contract" `Quick test_round0_empty_inbox_contract;
    Alcotest.test_case "pool sizes bit-identical" `Quick test_pool_sizes_bit_identical;
    Alcotest.test_case "live-counter convergence flag" `Quick test_live_counter_convergence_flag;
  ]
