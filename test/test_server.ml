(* Wnet_server integration: a real Unix-domain socket server on a
   background thread, driven by real client connections.

   The load-bearing test interleaves edits from 4 concurrent clients
   with payment collections and checks the socket replies three ways:
   textually bit-identical to an in-process mirror session driven
   through the same Wnet_proto.handle (the stdin path), bit-identical
   ([Float.equal]) to the from-scratch Copy_graph oracle on a tracked
   model digraph, and — via the stats counters — that every round's
   4-edit burst folded into exactly ONE invalidation pass. *)

module P = Wnet_proto
module W = Wnet_session
module LC = Wnet_core.Link_cost
module Sv = Wnet_server
open Wnet_graph

let socket_path name =
  let p =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "wnet-%s-%d.sock" name (Unix.getpid ()))
  in
  (try Unix.unlink p with Unix.Unix_error _ -> ());
  p

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let send oc line =
  output_string oc line;
  output_char oc '\n';
  flush oc

let expect_eof ic what =
  match input_line ic with
  | exception End_of_file -> ()
  | l -> Alcotest.failf "%s: expected EOF, got %S" what l

let chain_digraph () = Digraph.create ~n:3 ~links:[ (2, 1, 1.0); (1, 0, 1.0) ]

(* ---------------- smoke: one client, full request cycle ---------------- *)

let test_smoke () =
  let path = socket_path "smoke" in
  let server =
    Sv.create (Sv.Unix_path path) [| W.make ~root:0 (`Link (chain_digraph ())) |]
  in
  let th = Thread.create Sv.serve server in
  let fd, ic, oc = connect path in
  (match P.parse_response (input_line ic) with
  | Ok (P.Ready { model = `Link; n = 3; root = 0; _ }) -> ()
  | _ -> Alcotest.fail "greeting must be a ready banner");
  send oc "pay";
  let rec read_pay acc =
    let l = input_line ic in
    match P.parse_response l with
    | Ok (P.Paid _) -> List.rev (l :: acc)
    | Ok (P.Served _) -> read_pay (l :: acc)
    | _ -> Alcotest.failf "unexpected pay line %S" l
  in
  Alcotest.(check int) "two served lines + summary" 3
    (List.length (read_pay []));
  send oc "quit";
  Alcotest.(check string) "quit answered with bye" "bye" (input_line ic);
  expect_eof ic "after bye";
  Unix.close fd;
  Sv.shutdown server;
  Thread.join th;
  Alcotest.(check bool) "socket file removed on shutdown" false
    (Sys.file_exists path);
  let cs = Sv.stats server in
  Alcotest.(check int) "one client served" 1 cs.Sv.clients_served;
  Alcotest.(check int) "two requests" 2 cs.Sv.requests;
  Alcotest.(check int) "single shard" 1 (Array.length cs.Sv.per_shard)

(* ---------------- 4 concurrent clients, bit-identical ---------------- *)

let nclients = 4
let rounds = 5

(* Reusable generation barrier. *)
let barrier n =
  let m = Mutex.create () and c = Condition.create () in
  let count = ref 0 and gen = ref 0 in
  fun () ->
    Mutex.lock m;
    let g = !gen in
    incr count;
    if !count = n then begin
      count := 0;
      incr gen;
      Condition.broadcast c
    end
    else while !gen = g do Condition.wait c m done;
    Mutex.unlock m

(* Sparse-ish random digraph, dense enough that most sources are served. *)
let random_digraph seed ~n =
  let rng = Wnet_prng.Rng.create seed in
  let links = ref [] in
  let p = 3.5 /. float_of_int n in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v && Wnet_prng.Rng.bernoulli rng p then
        links := (u, v, Wnet_prng.Rng.float_range rng 0.5 10.0) :: !links
    done
  done;
  Digraph.create ~n ~links:!links

let test_concurrent_clients () =
  let n = 24 in
  let dg = random_digraph 42 ~n in
  let links = Array.of_list (Digraph.links dg) in
  Alcotest.(check bool) "instance has enough links" true
    (Array.length links >= nclients);
  let step = Array.length links / nclients in
  (* each client owns one link and re-declares it with absolute weights,
     so the net topology per round is independent of arrival order *)
  let owned =
    Array.init nclients (fun i ->
        let u, v, _ = links.(i * step) in
        (u, v))
  in
  let weight i r = 1.0 +. (0.25 *. float_of_int i) +. (0.125 *. float_of_int r) in
  let path = socket_path "conc" in
  let server =
    Sv.create (Sv.Unix_path path)
      [| W.make ~root:0 (`Link (Digraph.create ~n ~links:(Digraph.links dg))) |]
  in
  let th = Thread.create Sv.serve server in
  let bar = barrier nclients in
  let pay_rounds = Array.make rounds [] in
  let stats_lines = ref [] in
  let failures = ref [] in
  let fail_mutex = Mutex.create () in
  let client i () =
    try
      let fd, ic, oc = connect path in
      ignore (input_line ic);
      for r = 0 to rounds - 1 do
        let u, v = owned.(i) in
        send oc
          (P.print_request (P.Cost_link { u; v; w = weight i r }));
        (match P.parse_response (input_line ic) with
        | Ok (P.Ack _) -> ()
        | _ -> failwith "cost not acked");
        bar ();
        (* all 4 edits of the round are in: client 0 collects payments *)
        if i = 0 then begin
          send oc "pay";
          let rec go acc =
            let l = input_line ic in
            match P.parse_response l with
            | Ok (P.Paid _) -> List.rev (l :: acc)
            | Ok (P.Served _) -> go (l :: acc)
            | _ -> failwith ("unexpected pay line " ^ l)
          in
          pay_rounds.(r) <- go []
        end;
        bar ()
      done;
      if i = 0 then begin
        send oc "stats";
        let l1 = input_line ic in
        let l2 = input_line ic in
        let l3 = input_line ic in
        stats_lines := [ l1; l2; l3 ]
      end;
      bar ();
      send oc "quit";
      let rec drain () =
        match input_line ic with
        | "bye" -> ()
        | _ -> drain ()
        | exception End_of_file -> ()
      in
      drain ();
      Unix.close fd
    with e ->
      Mutex.lock fail_mutex;
      failures := (i, Printexc.to_string e) :: !failures;
      Mutex.unlock fail_mutex
  in
  let ths = List.init nclients (fun i -> Thread.create (client i) ()) in
  List.iter Thread.join ths;
  Sv.shutdown server;
  Thread.join th;
  Alcotest.(check (list (pair int string))) "no client thread failed" []
    !failures;
  (* replay the same net edit sequence on a tracked model (oracle input)
     and on a mirror session driven through the stdin code path *)
  let model = Digraph.create ~n ~links:(Digraph.links dg) in
  let mirror =
    W.make ~root:0 (`Link (Digraph.create ~n ~links:(Digraph.links dg)))
  in
  for r = 0 to rounds - 1 do
    for i = 0 to nclients - 1 do
      let u, v = owned.(i) in
      Digraph.set_weight model u v (weight i r);
      ignore (P.handle mirror (P.Cost_link { u; v; w = weight i r }))
    done;
    let mirror_lines = List.map P.print_response (P.handle mirror P.Pay) in
    Alcotest.(check (list string))
      (Printf.sprintf "round %d: socket pay = stdin-path pay, textually" r)
      mirror_lines pay_rounds.(r);
    let oracle = LC.all_to_root ~strategy:LC.Copy_graph model ~root:0 in
    List.iter
      (fun line ->
        match P.parse_response line with
        | Ok (P.Served { src; path; charge }) -> (
          match oracle.LC.results.(src) with
          | Some o ->
            Alcotest.(check (list int))
              (Printf.sprintf "round %d src %d path" r src)
              (Array.to_list o.LC.path) path;
            Alcotest.(check bool)
              (Printf.sprintf "round %d src %d charge bit-identical" r src)
              true
              (Float.equal charge
                 (Array.fold_left ( +. ) 0.0 o.LC.payments))
          | None -> Alcotest.failf "oracle does not serve source %d" src)
        | Ok (P.Paid { served; _ }) ->
          let oracle_served =
            Array.fold_left
              (fun acc -> function Some _ -> acc + 1 | None -> acc)
              0 oracle.LC.results
          in
          Alcotest.(check int)
            (Printf.sprintf "round %d served count" r)
            oracle_served served
        | _ -> Alcotest.failf "unparseable pay line %S" line)
      pay_rounds.(r)
  done;
  (match !stats_lines with
  | [ a; b; c ] ->
    (match P.parse_response a with
    | Ok (P.Session_stats st) ->
      Alcotest.(check int) "one invalidation pass per round" rounds
        st.W.inval_passes;
      Alcotest.(check int) "every edit from every client coalesced"
        (nclients * rounds) st.W.coalesced_edits
    | _ -> Alcotest.fail "first stats line must be session stats");
    (match P.parse_response b with
    | Ok (P.Server_stats { clients; _ }) ->
      Alcotest.(check int) "all clients connected at stats time" nclients
        clients
    | _ -> Alcotest.fail "second stats line must be server stats");
    (match P.parse_response c with
    | Ok (P.Conn_stats { requests; _ }) ->
      (* client 0: rounds edits + rounds pays + stats itself *)
      Alcotest.(check int) "connection request counter" ((2 * rounds) + 1)
        requests
    | _ -> Alcotest.fail "third stats line must be conn stats")
  | _ -> Alcotest.fail "stats reply must be three lines");
  let cs = Sv.stats server in
  Alcotest.(check int) "every client accepted" nclients cs.Sv.clients_served

(* ---------------- mixed proto=1 / proto=2 clients ---------------- *)

module B = Wnet_proto_bin

let write_all fd b off len =
  let rec go off len =
    if len > 0 then
      let n = Unix.write fd b off len in
      go (off + n) (len - n)
  in
  go off len

let bin_flush fd enc =
  write_all fd (B.enc_buffer enc) (B.enc_offset enc) (B.enc_pending enc);
  B.enc_consume enc (B.enc_pending enc)

(* Byte-at-a-time line read on the raw fd: must not over-read, because
   everything after the [ready proto=2] ack is binary frames. *)
let read_line_fd fd =
  let buf = Buffer.create 64 in
  let b = Bytes.create 1 in
  let rec go () =
    match Unix.read fd b 0 1 with
    | 0 -> Alcotest.failf "eof inside line %S" (Buffer.contents buf)
    | _ ->
      if Bytes.get b 0 = '\n' then Buffer.contents buf
      else begin
        Buffer.add_char buf (Bytes.get b 0);
        go ()
      end
  in
  go ()

let bin_client path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  (match P.parse_response (read_line_fd fd) with
  | Ok (P.Ready { proto = 1; _ }) -> ()
  | _ -> Alcotest.fail "binary client: greeting must be a proto=1 banner");
  let up = P.print_request (P.Proto { proto = B.version }) ^ "\n" in
  write_all fd (Bytes.of_string up) 0 (String.length up);
  (match P.parse_response (read_line_fd fd) with
  | Ok (P.Ready { proto = 2; _ }) -> ()
  | _ -> Alcotest.fail "upgrade must be acked with a proto=2 banner");
  (fd, B.enc_create (), B.dec_create (), B.make_view ())

let bin_recv fd dec view =
  let chunk = Bytes.create 4096 in
  let rec go () =
    match B.decode_response dec view with
    | `Resp r -> r
    | `Corrupt m -> Alcotest.failf "binary client: corrupt frame: %s" m
    | `Need_more ->
      let n = Unix.read fd chunk 0 (Bytes.length chunk) in
      if n = 0 then Alcotest.fail "binary client: eof mid-frame";
      B.dec_feed dec chunk 0 n;
      go ()
  in
  go ()

let expect_eof_fd fd what =
  let b = Bytes.create 1 in
  match Unix.read fd b 0 1 with
  | 0 -> ()
  | _ -> Alcotest.failf "%s: expected EOF" what

(* One session, one text client and one binary client: the payment
   stream must be bit-identical across codecs, and identical to the
   stdin code path fed the same edit order. *)
let test_mixed_proto () =
  let path = socket_path "mixed" in
  let server =
    Sv.create (Sv.Unix_path path) [| W.make ~root:0 (`Link (chain_digraph ())) |]
  in
  let th = Thread.create Sv.serve server in
  let fda, ica, oca = connect path in
  (match P.parse_response (input_line ica) with
  | Ok (P.Ready { proto = 1; _ }) -> ()
  | _ -> Alcotest.fail "text client greeting");
  let fdb, enc, dec, view = bin_client path in
  (* binary burst: two edits packed into ONE batch frame *)
  let edits =
    [
      P.Cost_link { u = 2; v = 1; w = 4.5 };
      P.Cost_link { u = 1; v = 0; w = 2.25 };
    ]
  in
  B.encode_requests enc edits;
  bin_flush fdb enc;
  (match bin_recv fdb dec view with
  | P.Ack { version = 1; _ } -> ()
  | r -> Alcotest.failf "first binary ack, got %s" (P.print_response r));
  (match bin_recv fdb dec view with
  | P.Ack { version = 2; _ } -> ()
  | r -> Alcotest.failf "second binary ack, got %s" (P.print_response r));
  (* a text edit on the same session *)
  let text_edit = P.Cost_link { u = 2; v = 0; w = 9.0 } in
  send oca (P.print_request text_edit);
  (match P.parse_response (input_line ica) with
  | Ok (P.Ack { version = 3; _ }) -> ()
  | _ -> Alcotest.fail "text ack");
  (* binary pay *)
  B.encode_request enc P.Pay;
  bin_flush fdb enc;
  let rec collect_bin acc =
    match bin_recv fdb dec view with
    | P.Served _ as r -> collect_bin (r :: acc)
    | P.Paid _ as r -> List.rev (r :: acc)
    | r -> Alcotest.failf "unexpected binary pay frame %s" (P.print_response r)
  in
  let bin_pay = collect_bin [] in
  (* text pay over the same (already flushed) session *)
  send oca "pay";
  let rec collect_text acc =
    let l = input_line ica in
    match P.parse_response l with
    | Ok (P.Paid _ as r) -> List.rev (r :: acc)
    | Ok (P.Served _ as r) -> collect_text (r :: acc)
    | _ -> Alcotest.failf "unexpected text pay line %S" l
  in
  let text_pay = collect_text [] in
  Alcotest.(check int) "both codecs serve the same sources"
    (List.length text_pay) (List.length bin_pay);
  List.iter2
    (fun b t ->
      Alcotest.(check bool)
        (Printf.sprintf "bit-identical across codecs: %s" (P.print_response b))
        true
        (Test_proto.response_equal b t))
    bin_pay text_pay;
  (* and identical to the stdin code path fed the same edit order *)
  let mirror = W.make ~root:0 (`Link (chain_digraph ())) in
  List.iter
    (fun r -> ignore (P.handle mirror r))
    (edits @ [ text_edit ]);
  let mirror_pay = P.handle mirror P.Pay in
  List.iter2
    (fun b m ->
      Alcotest.(check bool)
        (Printf.sprintf "binary = stdin path: %s" (P.print_response m))
        true
        (Test_proto.response_equal b m))
    bin_pay mirror_pay;
  (* stats through the binary codec *)
  B.encode_request enc P.Stats;
  bin_flush fdb enc;
  (match bin_recv fdb dec view with
  | P.Session_stats st ->
    Alcotest.(check int) "three edits" 3 st.W.edits;
    Alcotest.(check int) "all coalesced" 3 st.W.coalesced_edits;
    Alcotest.(check int) "one invalidation pass for the mixed burst" 1
      st.W.inval_passes
  | r -> Alcotest.failf "want session stats, got %s" (P.print_response r));
  (match bin_recv fdb dec view with
  | P.Server_stats { clients = 2; _ } -> ()
  | r -> Alcotest.failf "want server stats with 2 clients, got %s"
           (P.print_response r));
  (match bin_recv fdb dec view with
  | P.Conn_stats { proto = 2; requests; _ } ->
    (* proto upgrade + 2 edits + pay + stats *)
    Alcotest.(check int) "binary conn request counter" 5 requests
  | r -> Alcotest.failf "want proto=2 conn stats, got %s" (P.print_response r));
  (* text conn still reports proto=1 *)
  send oca "stats";
  ignore (input_line ica);
  ignore (input_line ica);
  (match P.parse_response (input_line ica) with
  | Ok (P.Conn_stats { proto = 1; requests = 3; _ }) -> ()
  | _ -> Alcotest.fail "text conn stats must report proto=1, 3 requests");
  (* goodbyes in both codecs *)
  B.encode_request enc P.Quit;
  bin_flush fdb enc;
  (match bin_recv fdb dec view with
  | P.Bye -> ()
  | r -> Alcotest.failf "binary quit answered %s" (P.print_response r));
  expect_eof_fd fdb "after binary bye";
  Unix.close fdb;
  send oca "quit";
  Alcotest.(check string) "text bye" "bye" (input_line ica);
  expect_eof ica "after text bye";
  Unix.close fda;
  Sv.shutdown server;
  Thread.join th

(* a corrupt binary frame is answered with err+bye and a close *)
let test_corrupt_frame_closes () =
  let path = socket_path "corrupt" in
  let server =
    Sv.create (Sv.Unix_path path) [| W.make ~root:0 (`Link (chain_digraph ())) |]
  in
  let th = Thread.create Sv.serve server in
  let fd, _, dec, view = bin_client path in
  (* frame with an unknown tag *)
  let bad = Bytes.of_string "\x03\x00\x00\x00\x01\x00\xff" in
  write_all fd bad 0 (Bytes.length bad);
  (match bin_recv fd dec view with
  | P.Err m ->
    Alcotest.(check bool) "error names the proto layer" true
      (String.length m >= 6 && String.sub m 0 6 = "proto:")
  | r -> Alcotest.failf "want err, got %s" (P.print_response r));
  (match bin_recv fd dec view with
  | P.Bye -> ()
  | r -> Alcotest.failf "want bye, got %s" (P.print_response r));
  expect_eof_fd fd "after corrupt-frame bye";
  Unix.close fd;
  Sv.shutdown server;
  Thread.join th

(* ---------------- real client exe: --batch flush on EOF -------------- *)

let client_exe () =
  List.find_opt Sys.file_exists
    [ "../bin/unicast.exe"; "_build/default/bin/unicast.exe" ]

let run_client_exe exe args input_lines =
  let in_r, in_w = Unix.pipe () and out_r, out_w = Unix.pipe () in
  Unix.set_close_on_exec in_w;
  Unix.set_close_on_exec out_r;
  let pid =
    Unix.create_process exe
      (Array.of_list (exe :: args))
      in_r out_w Unix.stderr
  in
  Unix.close in_r;
  Unix.close out_w;
  let oc = Unix.out_channel_of_descr in_w in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    input_lines;
  close_out oc;
  let ic = Unix.in_channel_of_descr out_r in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  let _, status = Unix.waitpid [] pid in
  (List.rev !lines, status)

(* Regression: a trailing pack smaller than the batch threshold must
   still reach the server when stdin closes — in both codecs.  The
   session counters prove each 3-edit burst arrived (and coalesced). *)
let test_client_batch_eof () =
  match client_exe () with
  | None -> Alcotest.fail "client exe not built (expected ../bin/unicast.exe)"
  | Some exe ->
    let path = socket_path "batcheof" in
    let server =
      Sv.create (Sv.Unix_path path)
        [| W.make ~root:0 (`Link (chain_digraph ())) |]
    in
    let th = Thread.create Sv.serve server in
    (* the legs must declare DIFFERENT weights: a same-weight re-declare
       is a no-op edit (no version bump), which would mask a lost pack *)
    let check_leg what args edits first_version =
      let lines, status = run_client_exe exe args edits in
      (match status with
      | Unix.WEXITED 0 -> ()
      | _ -> Alcotest.failf "%s: client exited non-zero" what);
      let acks =
        List.filter_map
          (fun l ->
            match P.parse_response l with
            | Ok (P.Ack { version; _ }) -> Some version
            | Ok (P.Ready _) -> None
            | _ -> Alcotest.failf "%s: unexpected client line %S" what l)
          lines
      in
      Alcotest.(check (list int))
        (Printf.sprintf "%s: trailing pack acked at EOF" what)
        [ first_version; first_version + 1; first_version + 2 ]
        acks
    in
    check_leg "text batch"
      [ "client"; "--socket"; path; "--batch"; "8" ]
      [ "cost 2 1 7.5"; "cost 1 0 6.25"; "cost 2 0 9.0" ]
      1;
    check_leg "binary batch"
      [ "client"; "--socket"; path; "--proto"; "2"; "--batch"; "8" ]
      [ "cost 2 1 3.5"; "cost 1 0 2.75"; "cost 2 0 1.5" ]
      4;
    (* both bursts reached the session; one pay folds all six edits *)
    let fd, ic, oc = connect path in
    ignore (input_line ic);
    send oc "pay";
    let rec to_paid () =
      match P.parse_response (input_line ic) with
      | Ok (P.Paid _) -> ()
      | _ -> to_paid ()
    in
    to_paid ();
    send oc "stats";
    (match P.parse_response (input_line ic) with
    | Ok (P.Session_stats st) ->
      Alcotest.(check int) "six edits arrived" 6 st.W.edits;
      Alcotest.(check int) "all six coalesced" 6 st.W.coalesced_edits;
      Alcotest.(check int) "single invalidation pass" 1 st.W.inval_passes
    | _ -> Alcotest.fail "want session stats");
    ignore (input_line ic);
    ignore (input_line ic);
    send oc "quit";
    let rec drain () =
      match input_line ic with
      | exception End_of_file -> ()
      | _ -> drain ()
    in
    drain ();
    Unix.close fd;
    Sv.shutdown server;
    Thread.join th

(* ---------------- idle disconnect ---------------- *)

let test_idle_disconnect () =
  let path = socket_path "idle" in
  let server =
    Sv.create ~idle_timeout:0.2 (Sv.Unix_path path)
      [| W.make ~root:0 (`Link (chain_digraph ())) |]
  in
  let th = Thread.create Sv.serve server in
  let fd, ic, _ = connect path in
  ignore (input_line ic);
  Alcotest.(check string) "idle client told why" "err idle timeout"
    (input_line ic);
  Alcotest.(check string) "then dismissed" "bye" (input_line ic);
  expect_eof ic "after idle bye";
  Unix.close fd;
  Sv.shutdown server;
  Thread.join th

(* ---------------- graceful shutdown says bye to everyone ------------- *)

let test_shutdown_drains () =
  let path = socket_path "drain" in
  let server =
    Sv.create (Sv.Unix_path path) [| W.make ~root:0 (`Link (chain_digraph ())) |]
  in
  let th = Thread.create Sv.serve server in
  let c1 = connect path and c2 = connect path in
  let greet (_, ic, _) = ignore (input_line ic) in
  greet c1;
  greet c2;
  (* make sure one request went through before the shutdown *)
  let _, ic1, oc1 = c1 in
  send oc1 "pay";
  let rec skip_pay () =
    match P.parse_response (input_line ic1) with
    | Ok (P.Paid _) -> ()
    | _ -> skip_pay ()
  in
  skip_pay ();
  Sv.shutdown server;
  Thread.join th;
  List.iter
    (fun (fd, ic, _) ->
      Alcotest.(check string) "shutdown says bye" "bye" (input_line ic);
      expect_eof ic "after shutdown bye";
      Unix.close fd)
    [ c1; c2 ];
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists path)

(* ---------------- multi-shard determinism ---------------- *)

(* Two access-point sessions on different random digraphs, two clients
   per session, across shard counts 1, 2 and 4.  The payment stream of
   each session must be bit-identical at every shard count (and to the
   stdin code path), and the per-shard stats rows must sum to the
   server totals on the same wire reply. *)

let shard_specs = [| (42, 24); (77, 18) |]
let shard_rounds = 4

let shard_owned =
  Array.map
    (fun (seed, n) ->
      let links = Array.of_list (Digraph.links (random_digraph seed ~n)) in
      let step = Array.length links / 2 in
      Array.init 2 (fun j ->
          let u, v, _ = links.(j * step) in
          (u, v)))
    shard_specs

(* client i edits session (i mod 2); absolute weights keep the net
   round state independent of arrival order *)
let shard_weight i r =
  2.0 +. (0.5 *. float_of_int i) +. (0.125 *. float_of_int r)

let run_sharded shards =
  let path = socket_path (Printf.sprintf "det%d" shards) in
  let sessions =
    Array.map
      (fun (seed, n) -> W.make ~root:0 (`Link (random_digraph seed ~n)))
      shard_specs
  in
  let server = Sv.create ~shards (Sv.Unix_path path) sessions in
  let th = Thread.create Sv.serve server in
  let bar = barrier 4 in
  let pays = Array.map (fun _ -> Array.make shard_rounds []) shard_specs in
  let stats_box = ref [] in
  let failures = ref [] in
  let fail_mutex = Mutex.create () in
  let client i () =
    try
      let k = i mod 2 and j = i / 2 in
      let fd, ic, oc = connect path in
      (match P.parse_response (input_line ic) with
      | Ok (P.Ready _) -> ()
      | _ -> failwith "greeting not a ready banner");
      send oc (P.print_request (P.Attach { session = k }));
      let _, n = shard_specs.(k) in
      (match P.parse_response (input_line ic) with
      | Ok (P.Ready { n = n'; _ }) when n' = n -> ()
      | Ok r ->
        failwith ("attach not acked with the target banner: "
                  ^ P.print_response r)
      | _ -> failwith "attach ack unparseable");
      for r = 0 to shard_rounds - 1 do
        let u, v = shard_owned.(k).(j) in
        send oc (P.print_request (P.Cost_link { u; v; w = shard_weight i r }));
        (match P.parse_response (input_line ic) with
        | Ok (P.Ack _) -> ()
        | _ -> failwith "cost not acked");
        bar ();
        (* both edits of the session are in: its first client pays *)
        if j = 0 then begin
          send oc "pay";
          let rec go acc =
            let l = input_line ic in
            match P.parse_response l with
            | Ok (P.Paid _) -> List.rev (l :: acc)
            | Ok (P.Served _) -> go (l :: acc)
            | _ -> failwith ("unexpected pay line " ^ l)
          in
          pays.(k).(r) <- go []
        end;
        bar ()
      done;
      if i = 0 then begin
        send oc "stats";
        let nlines = 2 + (if shards > 1 then shards else 0) + 1 in
        let rec read_n acc m =
          if m = 0 then List.rev acc else read_n (input_line ic :: acc) (m - 1)
        in
        stats_box := read_n [] nlines
      end;
      bar ();
      send oc "quit";
      let rec drain () =
        match input_line ic with
        | "bye" -> ()
        | _ -> drain ()
        | exception End_of_file -> ()
      in
      drain ();
      Unix.close fd
    with e ->
      Mutex.lock fail_mutex;
      failures := (i, Printexc.to_string e) :: !failures;
      Mutex.unlock fail_mutex
  in
  let ths = List.init 4 (fun i -> Thread.create (client i) ()) in
  List.iter Thread.join ths;
  Sv.shutdown server;
  Thread.join th;
  Alcotest.(check (list (pair int string)))
    (Printf.sprintf "shards=%d: no client thread failed" shards)
    [] !failures;
  (* the wire stats reply: session line, server totals, one row per
     shard (only when shards > 1), conn line — rows sum to totals *)
  (match !stats_box with
  | session_line :: server_line :: tail ->
    (match P.parse_response session_line with
    | Ok (P.Session_stats _) -> ()
    | _ -> Alcotest.failf "first stats line not session stats: %S" session_line);
    let rec split_rows acc = function
      | [ last ] -> (List.rev acc, last)
      | x :: tl -> split_rows (x :: acc) tl
      | [] -> Alcotest.fail "stats reply too short"
    in
    let row_lines, conn_line = split_rows [] tail in
    (match P.parse_response conn_line with
    | Ok (P.Conn_stats _) -> ()
    | _ -> Alcotest.failf "last stats line not conn stats: %S" conn_line);
    if shards = 1 then
      Alcotest.(check int) "no shard rows on a single-shard reply" 0
        (List.length row_lines)
    else begin
      Alcotest.(check int)
        (Printf.sprintf "shards=%d: one breakdown row per shard" shards)
        shards (List.length row_lines);
      let row_sums =
        List.fold_left
          (fun (a1, a2, a3, a4, a5, a6, a7, a8) l ->
            match P.parse_response l with
            | Ok
                (P.Shard_stats
                  {
                    conns;
                    requests;
                    edits;
                    coalesced;
                    cache_hits;
                    cache_misses;
                    bytes_in;
                    bytes_out;
                    _;
                  }) ->
              ( a1 + conns,
                a2 + requests,
                a3 + edits,
                a4 + coalesced,
                a5 + cache_hits,
                a6 + cache_misses,
                a7 + bytes_in,
                a8 + bytes_out )
            | _ -> Alcotest.failf "not a shard row: %S" l)
          (0, 0, 0, 0, 0, 0, 0, 0) row_lines
      in
      match P.parse_response server_line with
      | Ok
          (P.Server_stats
            {
              clients;
              requests;
              edits;
              coalesced;
              cache_hits;
              cache_misses;
              bytes_in;
              bytes_out;
            }) ->
        Alcotest.(check bool)
          (Printf.sprintf "shards=%d: shard rows sum to the server totals"
             shards)
          true
          (row_sums
          = ( clients,
              requests,
              edits,
              coalesced,
              cache_hits,
              cache_misses,
              bytes_in,
              bytes_out ))
      | _ -> Alcotest.failf "second stats line not server stats: %S" server_line
    end
  | _ -> Alcotest.fail "stats reply missing");
  let cs = Sv.stats server in
  Alcotest.(check int)
    (Printf.sprintf "shards=%d: one counter row per shard" shards)
    shards
    (Array.length cs.Sv.per_shard);
  Alcotest.(check int)
    (Printf.sprintf "shards=%d: four clients served" shards)
    4 cs.Sv.clients_served;
  pays

let test_multi_shard_determinism () =
  let base = run_sharded 1 in
  (* the single-shard transcripts are themselves checked against the
     stdin code path fed the same absolute edits *)
  Array.iteri
    (fun k (seed, n) ->
      let mirror = W.make ~root:0 (`Link (random_digraph seed ~n)) in
      for r = 0 to shard_rounds - 1 do
        for j = 0 to 1 do
          let u, v = shard_owned.(k).(j) in
          ignore
            (P.handle mirror
               (P.Cost_link { u; v; w = shard_weight ((2 * j) + k) r }))
        done;
        let want = List.map P.print_response (P.handle mirror P.Pay) in
        Alcotest.(check (list string))
          (Printf.sprintf "session %d round %d: socket pay = stdin path" k r)
          want
          base.(k).(r)
      done)
    shard_specs;
  List.iter
    (fun shards ->
      let pays = run_sharded shards in
      Array.iteri
        (fun k _ ->
          for r = 0 to shard_rounds - 1 do
            Alcotest.(check (list string))
              (Printf.sprintf
                 "shards=%d session %d round %d bit-identical to shards=1"
                 shards k r)
              base.(k).(r)
              pays.(k).(r)
          done)
        shard_specs)
    [ 2; 4 ]

(* ---------------- attach migration carries buffered input ------------- *)

let four_chain_links = [ (3, 2, 1.0); (2, 1, 1.0); (1, 0, 1.0) ]

(* One write carries [session 1] AND the requests behind it: the bytes
   buffered past the attach must migrate with the connection and be
   answered by the adopting shard, in order. *)
let test_attach_pipelining () =
  let path = socket_path "pipeline" in
  let server =
    Sv.create ~shards:2 (Sv.Unix_path path)
      [|
        W.make ~root:0 (`Link (chain_digraph ()));
        W.make ~root:0 (`Link (Digraph.create ~n:4 ~links:four_chain_links));
      |]
  in
  let th = Thread.create Sv.serve server in
  let fd, ic, oc = connect path in
  (match P.parse_response (input_line ic) with
  | Ok (P.Ready { n = 3; _ }) -> ()
  | _ -> Alcotest.fail "first banner must be session 0's");
  send oc "session 1\ncost 3 2 4.5\npay";
  (match P.parse_response (input_line ic) with
  | Ok (P.Ready { n = 4; _ }) -> ()
  | _ -> Alcotest.fail "attach must be acked with session 1's banner");
  (match P.parse_response (input_line ic) with
  | Ok (P.Ack { version = 1; _ }) -> ()
  | _ -> Alcotest.fail "pipelined edit must be acked by the adopting shard");
  let rec read_pay acc =
    let l = input_line ic in
    match P.parse_response l with
    | Ok (P.Paid _) -> List.rev (l :: acc)
    | Ok (P.Served _) -> read_pay (l :: acc)
    | _ -> Alcotest.failf "unexpected pay line %S" l
  in
  let got = read_pay [] in
  let mirror =
    W.make ~root:0 (`Link (Digraph.create ~n:4 ~links:four_chain_links))
  in
  ignore (P.handle mirror (P.Cost_link { u = 3; v = 2; w = 4.5 }));
  let want = List.map P.print_response (P.handle mirror P.Pay) in
  Alcotest.(check (list string)) "migrated pipeline served bit-identically"
    want got;
  (* an out-of-range attach is an error, not a close *)
  send oc "session 9";
  (match P.parse_response (input_line ic) with
  | Ok (P.Err m) ->
    Alcotest.(check string) "out-of-range attach names the bounds"
      "session: no session 9 (server hosts 2)" m
  | _ -> Alcotest.fail "out-of-range attach must answer err");
  send oc "quit";
  Alcotest.(check string) "bye" "bye" (input_line ic);
  expect_eof ic "after bye";
  Unix.close fd;
  Sv.shutdown server;
  Thread.join th

(* ---------------- shutdown drains every shard ---------------- *)

let test_shard_shutdown_drains () =
  let nsh = 4 in
  let path = socket_path "sharddrain" in
  let sessions =
    Array.init nsh (fun _ -> W.make ~root:0 (`Link (chain_digraph ())))
  in
  let server = Sv.create ~shards:nsh (Sv.Unix_path path) sessions in
  let th = Thread.create Sv.serve server in
  (* park one client on every shard (hash placement: session k -> shard k) *)
  let clients =
    List.init nsh (fun k ->
        let fd, ic, oc = connect path in
        ignore (input_line ic);
        send oc (P.print_request (P.Attach { session = k }));
        (match P.parse_response (input_line ic) with
        | Ok (P.Ready _) -> ()
        | _ -> Alcotest.failf "client %d: attach not acked" k);
        (fd, ic, oc))
  in
  Sv.shutdown server;
  Thread.join th;
  List.iter
    (fun (fd, ic, _) ->
      Alcotest.(check string) "every shard says bye on shutdown" "bye"
        (input_line ic);
      expect_eof ic "after shard bye";
      Unix.close fd)
    clients;
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists path)

(* ------- real client exe: --batch --verify-responses vs 2 shards ------- *)

(* Regression for the interleave bug: a batching, verifying client on
   session 1 runs against a 2-shard server while a second client
   hammers session 0 the whole time.  The batch client's stdout must be
   exactly its own session-1 transcript (the sessions have different
   sizes, so any foreign line would break the textual comparison), and
   the per-shard stats rows must survive the real exe's
   --verify-responses print/parse round-trip. *)
let test_client_batch_verify_sharded () =
  match client_exe () with
  | None -> Alcotest.fail "client exe not built (expected ../bin/unicast.exe)"
  | Some exe ->
    let path = socket_path "vsharded" in
    let server =
      Sv.create ~shards:2 (Sv.Unix_path path)
        [|
          W.make ~root:0 (`Link (chain_digraph ()));
          W.make ~root:0 (`Link (Digraph.create ~n:4 ~links:four_chain_links));
        |]
    in
    let th = Thread.create Sv.serve server in
    let stop = Atomic.make false in
    let noise =
      Thread.create
        (fun () ->
          let fd, ic, oc = connect path in
          ignore (input_line ic);
          let r = ref 0 in
          while not (Atomic.get stop) do
            incr r;
            send oc
              (P.print_request
                 (P.Cost_link
                    { u = 2; v = 1; w = 1.0 +. (0.001 *. float_of_int !r) }));
            (match P.parse_response (input_line ic) with
            | Ok (P.Ack _) -> ()
            | _ -> failwith "noise: cost not acked");
            send oc "pay";
            let rec to_paid () =
              match P.parse_response (input_line ic) with
              | Ok (P.Paid _) -> ()
              | Ok (P.Served _) -> to_paid ()
              | _ -> failwith "noise: bad pay line"
            in
            to_paid ()
          done;
          send oc "quit";
          let rec drain () =
            match input_line ic with
            | exception End_of_file -> ()
            | _ -> drain ()
          in
          drain ();
          Unix.close fd)
        ()
    in
    let lines, status =
      run_client_exe exe
        [ "client"; "--socket"; path; "--batch"; "4"; "--verify-responses" ]
        [
          "session 1";
          "cost 3 2 7.5";
          "cost 2 1 6.25";
          "cost 1 0 5.5";
          "pay";
          "stats";
          "quit";
        ]
    in
    Atomic.set stop true;
    Thread.join noise;
    Sv.shutdown server;
    Thread.join th;
    (match status with
    | Unix.WEXITED 0 -> ()
    | _ ->
      Alcotest.fail
        "verifying batch client exited non-zero (a response failed the \
         round-trip)");
    let is_stats l =
      match P.parse_response l with
      | Ok
          ( P.Session_stats _ | P.Server_stats _ | P.Shard_stats _
          | P.Conn_stats _ ) ->
        true
      | _ -> false
    in
    let shard_rows =
      List.filter_map
        (fun l ->
          match P.parse_response l with
          | Ok (P.Shard_stats { shard; _ }) -> Some shard
          | _ -> None)
        lines
    in
    Alcotest.(check (list int)) "both shard rows reached the real client"
      [ 0; 1 ] shard_rows;
    (* the stats reply depends on the noise client's timing; everything
       else must be the batch client's own transcript, bit-identical to
       the stdin path *)
    let own = List.filter (fun l -> not (is_stats l)) lines in
    let mirror0 = W.make ~root:0 (`Link (chain_digraph ())) in
    let mirror1 =
      W.make ~root:0 (`Link (Digraph.create ~n:4 ~links:four_chain_links))
    in
    (* evaluation order matters: each handle bumps the version *)
    let ack1 = P.handle mirror1 (P.Cost_link { u = 3; v = 2; w = 7.5 }) in
    let ack2 = P.handle mirror1 (P.Cost_link { u = 2; v = 1; w = 6.25 }) in
    let ack3 = P.handle mirror1 (P.Cost_link { u = 1; v = 0; w = 5.5 }) in
    let pay = P.handle mirror1 P.Pay in
    let bye = P.handle mirror1 P.Quit in
    let expected =
      List.concat_map
        (List.map P.print_response)
        [
          [ P.greeting mirror0 ];
          [ P.greeting mirror1 ];
          ack1;
          ack2;
          ack3;
          pay;
          bye;
        ]
    in
    Alcotest.(check (list string))
      "no foreign session's bytes interleave the batch transcript" expected
      own

let suite =
  [
    Alcotest.test_case "socket smoke: greet, pay, quit" `Quick test_smoke;
    Alcotest.test_case "4 concurrent clients, bit-identical payments" `Quick
      test_concurrent_clients;
    Alcotest.test_case "mixed proto=1/proto=2 clients, bit-identical" `Quick
      test_mixed_proto;
    Alcotest.test_case "corrupt binary frame answered err+bye" `Quick
      test_corrupt_frame_closes;
    Alcotest.test_case "client --batch flushes trailing pack on EOF" `Quick
      test_client_batch_eof;
    Alcotest.test_case "idle clients are disconnected" `Quick
      test_idle_disconnect;
    Alcotest.test_case "graceful shutdown drains and says bye" `Quick
      test_shutdown_drains;
    Alcotest.test_case "multi-shard payments bit-identical at 1/2/4 shards"
      `Quick test_multi_shard_determinism;
    Alcotest.test_case "cross-shard attach carries buffered requests" `Quick
      test_attach_pipelining;
    Alcotest.test_case "shutdown drains every shard" `Quick
      test_shard_shutdown_drains;
    Alcotest.test_case "batch --verify-responses client vs 2-shard server"
      `Quick test_client_batch_verify_sharded;
  ]
