(* Wnet_server integration: a real Unix-domain socket server on a
   background thread, driven by real client connections.

   The load-bearing test interleaves edits from 4 concurrent clients
   with payment collections and checks the socket replies three ways:
   textually bit-identical to an in-process mirror session driven
   through the same Wnet_proto.handle (the stdin path), bit-identical
   ([Float.equal]) to the from-scratch Copy_graph oracle on a tracked
   model digraph, and — via the stats counters — that every round's
   4-edit burst folded into exactly ONE invalidation pass. *)

module P = Wnet_proto
module W = Wnet_session
module LC = Wnet_core.Link_cost
module Sv = Wnet_server
open Wnet_graph

let socket_path name =
  let p =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "wnet-%s-%d.sock" name (Unix.getpid ()))
  in
  (try Unix.unlink p with Unix.Unix_error _ -> ());
  p

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let send oc line =
  output_string oc line;
  output_char oc '\n';
  flush oc

let expect_eof ic what =
  match input_line ic with
  | exception End_of_file -> ()
  | l -> Alcotest.failf "%s: expected EOF, got %S" what l

let chain_digraph () = Digraph.create ~n:3 ~links:[ (2, 1, 1.0); (1, 0, 1.0) ]

(* ---------------- smoke: one client, full request cycle ---------------- *)

let test_smoke () =
  let path = socket_path "smoke" in
  let server = Sv.create (Sv.Unix_path path) (W.make ~root:0 (`Link (chain_digraph ()))) in
  let th = Thread.create Sv.serve server in
  let fd, ic, oc = connect path in
  (match P.parse_response (input_line ic) with
  | Ok (P.Ready { model = `Link; n = 3; root = 0; _ }) -> ()
  | _ -> Alcotest.fail "greeting must be a ready banner");
  send oc "pay";
  let rec read_pay acc =
    let l = input_line ic in
    match P.parse_response l with
    | Ok (P.Paid _) -> List.rev (l :: acc)
    | Ok (P.Served _) -> read_pay (l :: acc)
    | _ -> Alcotest.failf "unexpected pay line %S" l
  in
  Alcotest.(check int) "two served lines + summary" 3
    (List.length (read_pay []));
  send oc "quit";
  Alcotest.(check string) "quit answered with bye" "bye" (input_line ic);
  expect_eof ic "after bye";
  Unix.close fd;
  Sv.shutdown server;
  Thread.join th;
  Alcotest.(check bool) "socket file removed on shutdown" false
    (Sys.file_exists path);
  let cs = Sv.counters server in
  Alcotest.(check int) "one client served" 1 cs.Sv.clients_served;
  Alcotest.(check int) "two requests" 2 cs.Sv.requests

(* ---------------- 4 concurrent clients, bit-identical ---------------- *)

let nclients = 4
let rounds = 5

(* Reusable generation barrier. *)
let barrier n =
  let m = Mutex.create () and c = Condition.create () in
  let count = ref 0 and gen = ref 0 in
  fun () ->
    Mutex.lock m;
    let g = !gen in
    incr count;
    if !count = n then begin
      count := 0;
      incr gen;
      Condition.broadcast c
    end
    else while !gen = g do Condition.wait c m done;
    Mutex.unlock m

(* Sparse-ish random digraph, dense enough that most sources are served. *)
let random_digraph seed ~n =
  let rng = Wnet_prng.Rng.create seed in
  let links = ref [] in
  let p = 3.5 /. float_of_int n in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v && Wnet_prng.Rng.bernoulli rng p then
        links := (u, v, Wnet_prng.Rng.float_range rng 0.5 10.0) :: !links
    done
  done;
  Digraph.create ~n ~links:!links

let test_concurrent_clients () =
  let n = 24 in
  let dg = random_digraph 42 ~n in
  let links = Array.of_list (Digraph.links dg) in
  Alcotest.(check bool) "instance has enough links" true
    (Array.length links >= nclients);
  let step = Array.length links / nclients in
  (* each client owns one link and re-declares it with absolute weights,
     so the net topology per round is independent of arrival order *)
  let owned =
    Array.init nclients (fun i ->
        let u, v, _ = links.(i * step) in
        (u, v))
  in
  let weight i r = 1.0 +. (0.25 *. float_of_int i) +. (0.125 *. float_of_int r) in
  let path = socket_path "conc" in
  let server =
    Sv.create (Sv.Unix_path path)
      (W.make ~root:0 (`Link (Digraph.create ~n ~links:(Digraph.links dg))))
  in
  let th = Thread.create Sv.serve server in
  let bar = barrier nclients in
  let pay_rounds = Array.make rounds [] in
  let stats_lines = ref [] in
  let failures = ref [] in
  let fail_mutex = Mutex.create () in
  let client i () =
    try
      let fd, ic, oc = connect path in
      ignore (input_line ic);
      for r = 0 to rounds - 1 do
        let u, v = owned.(i) in
        send oc
          (P.print_request (P.Cost_link { u; v; w = weight i r }));
        (match P.parse_response (input_line ic) with
        | Ok (P.Ack _) -> ()
        | _ -> failwith "cost not acked");
        bar ();
        (* all 4 edits of the round are in: client 0 collects payments *)
        if i = 0 then begin
          send oc "pay";
          let rec go acc =
            let l = input_line ic in
            match P.parse_response l with
            | Ok (P.Paid _) -> List.rev (l :: acc)
            | Ok (P.Served _) -> go (l :: acc)
            | _ -> failwith ("unexpected pay line " ^ l)
          in
          pay_rounds.(r) <- go []
        end;
        bar ()
      done;
      if i = 0 then begin
        send oc "stats";
        let l1 = input_line ic in
        let l2 = input_line ic in
        let l3 = input_line ic in
        stats_lines := [ l1; l2; l3 ]
      end;
      bar ();
      send oc "quit";
      let rec drain () =
        match input_line ic with
        | "bye" -> ()
        | _ -> drain ()
        | exception End_of_file -> ()
      in
      drain ();
      Unix.close fd
    with e ->
      Mutex.lock fail_mutex;
      failures := (i, Printexc.to_string e) :: !failures;
      Mutex.unlock fail_mutex
  in
  let ths = List.init nclients (fun i -> Thread.create (client i) ()) in
  List.iter Thread.join ths;
  Sv.shutdown server;
  Thread.join th;
  Alcotest.(check (list (pair int string))) "no client thread failed" []
    !failures;
  (* replay the same net edit sequence on a tracked model (oracle input)
     and on a mirror session driven through the stdin code path *)
  let model = Digraph.create ~n ~links:(Digraph.links dg) in
  let mirror =
    W.make ~root:0 (`Link (Digraph.create ~n ~links:(Digraph.links dg)))
  in
  for r = 0 to rounds - 1 do
    for i = 0 to nclients - 1 do
      let u, v = owned.(i) in
      Digraph.set_weight model u v (weight i r);
      ignore (P.handle mirror (P.Cost_link { u; v; w = weight i r }))
    done;
    let mirror_lines = List.map P.print_response (P.handle mirror P.Pay) in
    Alcotest.(check (list string))
      (Printf.sprintf "round %d: socket pay = stdin-path pay, textually" r)
      mirror_lines pay_rounds.(r);
    let oracle = LC.all_to_root ~strategy:LC.Copy_graph model ~root:0 in
    List.iter
      (fun line ->
        match P.parse_response line with
        | Ok (P.Served { src; path; charge }) -> (
          match oracle.LC.results.(src) with
          | Some o ->
            Alcotest.(check (list int))
              (Printf.sprintf "round %d src %d path" r src)
              (Array.to_list o.LC.path) path;
            Alcotest.(check bool)
              (Printf.sprintf "round %d src %d charge bit-identical" r src)
              true
              (Float.equal charge
                 (Array.fold_left ( +. ) 0.0 o.LC.payments))
          | None -> Alcotest.failf "oracle does not serve source %d" src)
        | Ok (P.Paid { served; _ }) ->
          let oracle_served =
            Array.fold_left
              (fun acc -> function Some _ -> acc + 1 | None -> acc)
              0 oracle.LC.results
          in
          Alcotest.(check int)
            (Printf.sprintf "round %d served count" r)
            oracle_served served
        | _ -> Alcotest.failf "unparseable pay line %S" line)
      pay_rounds.(r)
  done;
  (match !stats_lines with
  | [ a; b; c ] ->
    (match P.parse_response a with
    | Ok (P.Session_stats st) ->
      Alcotest.(check int) "one invalidation pass per round" rounds
        st.W.inval_passes;
      Alcotest.(check int) "every edit from every client coalesced"
        (nclients * rounds) st.W.coalesced_edits
    | _ -> Alcotest.fail "first stats line must be session stats");
    (match P.parse_response b with
    | Ok (P.Server_stats { clients; _ }) ->
      Alcotest.(check int) "all clients connected at stats time" nclients
        clients
    | _ -> Alcotest.fail "second stats line must be server stats");
    (match P.parse_response c with
    | Ok (P.Conn_stats { requests; _ }) ->
      (* client 0: rounds edits + rounds pays + stats itself *)
      Alcotest.(check int) "connection request counter" ((2 * rounds) + 1)
        requests
    | _ -> Alcotest.fail "third stats line must be conn stats")
  | _ -> Alcotest.fail "stats reply must be three lines");
  let cs = Sv.counters server in
  Alcotest.(check int) "every client accepted" nclients cs.Sv.clients_served

(* ---------------- idle disconnect ---------------- *)

let test_idle_disconnect () =
  let path = socket_path "idle" in
  let server =
    Sv.create ~idle_timeout:0.2 (Sv.Unix_path path)
      (W.make ~root:0 (`Link (chain_digraph ())))
  in
  let th = Thread.create Sv.serve server in
  let fd, ic, _ = connect path in
  ignore (input_line ic);
  Alcotest.(check string) "idle client told why" "err idle timeout"
    (input_line ic);
  Alcotest.(check string) "then dismissed" "bye" (input_line ic);
  expect_eof ic "after idle bye";
  Unix.close fd;
  Sv.shutdown server;
  Thread.join th

(* ---------------- graceful shutdown says bye to everyone ------------- *)

let test_shutdown_drains () =
  let path = socket_path "drain" in
  let server = Sv.create (Sv.Unix_path path) (W.make ~root:0 (`Link (chain_digraph ()))) in
  let th = Thread.create Sv.serve server in
  let c1 = connect path and c2 = connect path in
  let greet (_, ic, _) = ignore (input_line ic) in
  greet c1;
  greet c2;
  (* make sure one request went through before the shutdown *)
  let _, ic1, oc1 = c1 in
  send oc1 "pay";
  let rec skip_pay () =
    match P.parse_response (input_line ic1) with
    | Ok (P.Paid _) -> ()
    | _ -> skip_pay ()
  in
  skip_pay ();
  Sv.shutdown server;
  Thread.join th;
  List.iter
    (fun (fd, ic, _) ->
      Alcotest.(check string) "shutdown says bye" "bye" (input_line ic);
      expect_eof ic "after shutdown bye";
      Unix.close fd)
    [ c1; c2 ];
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists path)

let suite =
  [
    Alcotest.test_case "socket smoke: greet, pay, quit" `Quick test_smoke;
    Alcotest.test_case "4 concurrent clients, bit-identical payments" `Quick
      test_concurrent_clients;
    Alcotest.test_case "idle clients are disconnected" `Quick
      test_idle_disconnect;
    Alcotest.test_case "graceful shutdown drains and says bye" `Quick
      test_shutdown_drains;
  ]
