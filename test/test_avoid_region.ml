(* The subtree-bounded avoidance tentpole (ISSUE: subtree-bounded
   avoidance kernels):

   - [Avoid_region.link_avoid]/[node_avoid] are [Float.equal]-identical
     to the full-CSR and boxed forbidden runs for every relay — cut
     vertices (infinite avoidance) and unreachable nodes included;
   - an undersized budget reports [`Overflow] honestly, and rerunning
     with a sufficient one recovers the exact answer (the session's
     fallback discipline);
   - whole payment batches stay bit-identical across
     `CsrBounded/`Csr/`Boxed at pool sizes 1 and 3, under random
     edit/fill interleavings;
   - tied integer weights on a path topology force the fallback (a
     subtree larger than the budget) without perturbing payments. *)

open Wnet_graph
module Rng = Wnet_prng.Rng
module LS = Wnet_session.Link_session
module NS = Wnet_session.Node_session
module LC = Wnet_core.Link_cost

let floats_equal a b =
  Array.length a = Array.length b && Array.for_all2 Float.equal a b

let random_digraph rng ~n =
  let links = ref [] in
  let p = 3.0 /. float_of_int n in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v && Rng.bernoulli rng p then
        links := (u, v, Rng.float_range rng 0.5 10.0) :: !links
    done
  done;
  Digraph.create ~n ~links:!links

(* ---------------- kernel-level equivalence ---------------- *)

(* Every non-root node is a candidate relay: the bounded run must match
   the full-CSR and boxed forbidden runs whatever the subtree looks
   like — empty (leaves), the whole reachable graph (root's only
   child), or disconnected from [k] entirely (unreachable nodes keep
   their [infinity] labels bit-for-bit). *)
let link_kernel_prop seed =
  let rng = Rng.create seed in
  let n = 4 + Rng.int rng 25 in
  let g = random_digraph rng ~n in
  let root = Rng.int rng n in
  let rev = Digraph.reverse g in
  let tree = Dijkstra.link_weighted rev root in
  let idx = Avoid_region.make_index tree in
  let ds = Dynamic_sssp.make_dist_scratch n in
  let scratch = Dijkstra.make_scratch n in
  let oracle = Dijkstra.make_scratch n in
  let d = Array.make n nan in
  for k = 0 to n - 1 do
    if k <> root then begin
      if
        Avoid_region.link_avoid ds ~budget:n idx ~graph:rev ~mirror:g ~tree
          ~avoid:k ~dist:d
        < 0
      then QCheck2.Test.fail_reportf "budget n can never overflow (k=%d)" k;
      let csr = Dijkstra.link_weighted_dist_csr scratch ~avoid:k rev root in
      let boxed =
        Dijkstra.link_weighted_dist oracle ~forbidden:(fun v -> v = k) rev root
      in
      if not (floats_equal d csr && floats_equal csr boxed) then
        QCheck2.Test.fail_reportf "bounded/full/boxed diverged at relay %d" k
    end
  done;
  true

let node_kernel_prop seed =
  let rng = Rng.create seed in
  let g = Test_util.random_ring_graph rng in
  let n = Graph.n g in
  let root = Rng.int rng n in
  let tree = Dijkstra.node_weighted g ~source:root in
  let idx = Avoid_region.make_index tree in
  let ds = Dynamic_sssp.make_dist_scratch n in
  let scratch = Dijkstra.make_scratch n in
  let oracle = Dijkstra.make_scratch n in
  let d = Array.make n nan in
  for k = 0 to n - 1 do
    if k <> root then begin
      if
        Avoid_region.node_avoid ds ~budget:n idx ~graph:g ~tree ~avoid:k
          ~dist:d
        < 0
      then QCheck2.Test.fail_reportf "budget n overflowed (k=%d)" k;
      let csr = Dijkstra.node_weighted_dist_csr scratch ~avoid:k g ~source:root in
      let boxed =
        Dijkstra.node_weighted_dist oracle ~forbidden:(fun v -> v = k) g
          ~source:root
      in
      if not (floats_equal d csr && floats_equal csr boxed) then
        QCheck2.Test.fail_reportf "bounded/full/boxed diverged at relay %d" k
    end
  done;
  true

(* An undersized budget must overflow honestly; retrying with budget [n]
   recovers the exact answer from the same (corrupted) buffer — the
   session's fallback path in miniature. *)
let overflow_recovery_prop seed =
  let rng = Rng.create seed in
  let n = 8 + Rng.int rng 20 in
  let g = random_digraph rng ~n in
  let root = Rng.int rng n in
  let rev = Digraph.reverse g in
  let tree = Dijkstra.link_weighted rev root in
  let idx = Avoid_region.make_index tree in
  let ds = Dynamic_sssp.make_dist_scratch n in
  let scratch = Dijkstra.make_scratch n in
  let d = Array.make n nan in
  let k = (root + 1 + Rng.int rng (n - 1)) mod n in
  let tight = Rng.int rng 3 in
  let r =
    Avoid_region.link_avoid ds ~budget:tight idx ~graph:rev ~mirror:g ~tree
      ~avoid:k ~dist:d
  in
  if r >= 0 then begin
    (* a tiny region may genuinely fit — then it must already be exact *)
    if r > tight then QCheck2.Test.fail_reportf "region %d exceeds budget" r;
    if
      not (floats_equal d (Dijkstra.link_weighted_dist_csr scratch ~avoid:k rev root))
    then QCheck2.Test.fail_reportf "in-budget run diverged"
  end
  else begin
    if
      Avoid_region.link_avoid ds ~budget:n idx ~graph:rev ~mirror:g ~tree
        ~avoid:k ~dist:d
      < 0
    then QCheck2.Test.fail_reportf "budget n overflowed after retry";
    if
      not
        (floats_equal d
           (Dijkstra.link_weighted_dist_csr scratch ~avoid:k rev root))
    then QCheck2.Test.fail_reportf "post-overflow retry diverged"
  end;
  true

(* ---------------- sessions: `CsrBounded vs oracles ---------------- *)

let batch_equal (a : LS.batch) (b : LS.batch) =
  floats_equal a.LS.to_root_dist b.LS.to_root_dist
  && Array.for_all2
       (fun x y ->
         match (x, y) with
         | None, None -> true
         | Some (x : LS.outcome), Some (y : LS.outcome) ->
           x.LS.path = y.LS.path && floats_equal x.LS.payments y.LS.payments
         | _ -> false)
       a.LS.results b.LS.results

(* Random edit/fill interleavings: three sessions (bounded, full-CSR,
   boxed) absorb the same stream of cost edits, node leaves and rejoins,
   with payment batches (= cache fills) demanded at random points.  Run
   once sequentially and once on a 3-domain pool. *)
let session_interleaving_prop ~domains seed =
  let rng = Rng.create seed in
  let n = 8 + Rng.int rng 17 in
  let g = random_digraph rng ~n in
  let run pool =
    let mk kernel = LS.create ?pool ~kernel g ~root:0 in
    let sb = mk `CsrBounded and sc = mk `Csr and sx = mk `Boxed in
    let each f = f sb; f sc; f sx in
    let agree what =
      let b = LS.payments sb in
      if not (batch_equal b (LS.payments sc) && batch_equal b (LS.payments sx))
      then QCheck2.Test.fail_reportf "batches diverged after %s" what
    in
    agree "cold start";
    let removed = ref [] in
    for step = 1 to 12 do
      (match Rng.int rng 6 with
      | 0 | 1 | 2 ->
        let u = Rng.int rng n and v = Rng.int rng n in
        (* leave detached nodes isolated so rejoin stays legal *)
        if u <> v && (not (List.mem u !removed)) && not (List.mem v !removed)
        then begin
          let w =
            if Rng.bernoulli rng 0.2 then infinity
            else Rng.float_range rng 0.5 10.0
          in
          each (fun s -> LS.set_cost s u v w)
        end
      | 3 ->
        let k = 1 + Rng.int rng (n - 1) in
        if not (List.mem k !removed) then begin
          each (fun s -> LS.remove_node s k);
          removed := k :: !removed
        end
      | 4 -> (
        match !removed with
        | k :: rest ->
          let out = [ (Rng.int rng n, Rng.float_range rng 0.5 10.0) ] in
          let out = List.filter (fun (v, _) -> v <> k) out in
          each (fun s -> LS.rejoin_node s k ~out ~inn:[]);
          removed := rest
        | [] -> ())
      | _ -> agree (Printf.sprintf "step %d" step));
      if step mod 4 = 0 then agree (Printf.sprintf "step %d" step)
    done;
    agree "final";
    (* the bounded session must actually have used the bounded path *)
    let st = LS.stats sb in
    if st.LS.avoid_runs > 0 && st.LS.avoid_bounded + st.LS.avoid_fallback = 0
    then QCheck2.Test.fail_reportf "bounded kernel never engaged";
    let stc = LS.stats sc in
    if stc.LS.avoid_bounded + stc.LS.avoid_fallback <> 0 then
      QCheck2.Test.fail_reportf "`Csr session counted bounded fills"
  in
  if domains = 1 then run None
  else Wnet_par.with_pool ~domains (fun pool -> run (Some pool));
  true

let node_session_prop seed =
  let rng = Rng.create seed in
  let g = Test_util.random_ring_graph rng in
  let n = Graph.n g in
  let mk kernel = NS.create ~kernel g ~root:0 in
  let sb = mk `CsrBounded and sc = mk `Csr and sx = mk `Boxed in
  let each f = f sb; f sc; f sx in
  let agree what =
    let eq a b =
      Array.for_all2
        (fun x y ->
          match (x, y) with
          | None, None -> true
          | Some (x : NS.outcome), Some (y : NS.outcome) ->
            x.NS.path = y.NS.path && floats_equal x.NS.payments y.NS.payments
          | _ -> false)
        a b
    in
    let b = NS.payments sb in
    if not (eq b (NS.payments sc) && eq b (NS.payments sx)) then
      QCheck2.Test.fail_reportf "node batches diverged after %s" what
  in
  agree "cold start";
  for step = 1 to 10 do
    (match Rng.int rng 5 with
    | 0 | 1 | 2 ->
      let x = 1 + Rng.int rng (n - 1) in
      let c = Rng.float_range rng 0.0 5.0 in
      each (fun s -> NS.set_cost s x c)
    | 3 ->
      let x = 1 + Rng.int rng (n - 1) in
      each (fun s -> NS.remove_node s x)
    | _ -> agree (Printf.sprintf "step %d" step));
    if step mod 3 = 0 then agree (Printf.sprintf "step %d" step)
  done;
  agree "final";
  true

(* ---------------- fallback under tied integer weights ------------- *)

(* A unit-weight path 0 <- 1 <- ... <- n-1: relay 1's subtree holds the
   n-2 nodes behind it, blowing any n/2 budget, and every distance is a
   tie-rich small integer.  The session must fall back (counter) yet
   keep payments identical to the full-CSR oracle. *)
let test_tied_path_forces_fallback () =
  let n = 100 in
  let links = List.init (n - 1) (fun i -> (i + 1, i, 1.0)) in
  (* a detour so relay payments stay finite for early relays *)
  let links = (n - 1, 0, float_of_int n) :: links in
  let g = Digraph.create ~n ~links in
  let sb = LS.create g ~root:0 in
  let sc = LS.create ~kernel:`Csr g ~root:0 in
  let b = LS.payments sb in
  Alcotest.(check bool) "payments match full-CSR oracle" true
    (batch_equal b (LS.payments sc));
  let st = LS.stats sb in
  Alcotest.(check bool) "some subtree outgrew the budget" true
    (st.LS.avoid_fallback > 0);
  Alcotest.(check bool) "small subtrees still ran bounded" true
    (st.LS.avoid_bounded > 0);
  Alcotest.(check int) "every relay filled exactly once"
    st.LS.avoid_runs
    (st.LS.avoid_bounded + st.LS.avoid_fallback)

(* ---------------- pinned unit: leaf relay, size-1 subtree --------- *)

let test_leaf_relay_pinned () =
  (* toward-root links: 1 -> 0 (w 1), 2 -> 1 (w 1), detour 2 -> 0 (w 5).
     Reversed tree from root 0: parent(1) = 0, parent(2) = 1 — relay 1
     serves exactly leaf 2, so its region is the single node {2}. *)
  let g =
    Digraph.create ~n:3 ~links:[ (1, 0, 1.0); (2, 1, 1.0); (2, 0, 5.0) ]
  in
  let rev = Digraph.reverse g in
  let tree = Dijkstra.link_weighted rev 0 in
  Alcotest.(check int) "relay 1 parents leaf 2" 1 tree.Dijkstra.parent.(2);
  let idx = Avoid_region.make_index tree in
  let ds = Dynamic_sssp.make_dist_scratch 3 in
  let d = Array.make 3 nan in
  Alcotest.(check int) "region is the single leaf" 1
    (Avoid_region.link_avoid ds idx ~graph:rev ~mirror:g ~tree ~avoid:1
       ~dist:d);
  Test_util.check_float "root keeps 0" 0.0 d.(0);
  Alcotest.(check bool) "silenced relay reads infinity" true (d.(1) = infinity);
  Test_util.check_float "leaf reroutes over the detour" 5.0 d.(2);
  (* drop the detour: relay 1 becomes a cut vertex and the leaf's
     avoidance distance goes unbounded *)
  let g' = Digraph.create ~n:3 ~links:[ (1, 0, 1.0); (2, 1, 1.0) ] in
  let rev' = Digraph.reverse g' in
  let tree' = Dijkstra.link_weighted rev' 0 in
  let idx' = Avoid_region.make_index tree' in
  Alcotest.(check bool) "cut-vertex run stays in budget" true
    (Avoid_region.link_avoid ds idx' ~graph:rev' ~mirror:g' ~tree:tree'
       ~avoid:1 ~dist:d
    >= 0);
  Alcotest.(check bool) "cut vertex yields infinite avoidance" true
    (d.(2) = infinity);
  let s = LS.create g' ~root:0 in
  ignore (LS.payments s);
  Alcotest.(check (list int)) "session flags the monopoly relay" [ 1 ]
    (LS.unbounded_relays s)

let suite =
  [
    Test_util.qcheck_case ~count:60 "link bounded = full CSR = boxed"
      Test_util.seed_gen link_kernel_prop;
    Test_util.qcheck_case ~count:60 "node bounded = full CSR = boxed"
      Test_util.seed_gen node_kernel_prop;
    Test_util.qcheck_case ~count:60 "overflow is honest, retry recovers"
      Test_util.seed_gen overflow_recovery_prop;
    Test_util.qcheck_case ~count:15 "link sessions agree under churn (pool 1)"
      Test_util.seed_gen
      (session_interleaving_prop ~domains:1);
    Test_util.qcheck_case ~count:10 "link sessions agree under churn (pool 3)"
      Test_util.seed_gen
      (session_interleaving_prop ~domains:3);
    Test_util.qcheck_case ~count:20 "node sessions agree under churn"
      Test_util.seed_gen node_session_prop;
    Alcotest.test_case "tied unit-weight path forces the fallback" `Quick
      test_tied_path_forces_fallback;
    Alcotest.test_case "leaf relay: size-1 region, cut-vertex variant" `Quick
      test_leaf_relay_pinned;
  ]
