(* Wnet_proto_bin round-trips: the binary codec must be an exact
   inverse pair on the same message types the text codec covers —
   but bitwise by construction (IEEE bit patterns on the wire), so the
   properties include the floats the text printer has to work for:
   NaN, infinities, negative zero, subnormal-ish magnitudes.

   Also pins the frame grammar itself: a golden frame for the hottest
   message, header/truncation behaviour under byte-at-a-time feeding,
   batch frames up to the 65535-message cap, and the sticky corrupt
   channel. *)

module P = Wnet_proto
module B = Wnet_proto_bin
open QCheck2

(* ---------------- generators (bit-pattern floats included) -------- *)

let float_gen =
  Gen.oneof
    [
      Gen.float;
      Gen.map2 ( /. ) Gen.float (Gen.float_range 1e-3 1e3);
      Gen.oneofl
        [
          0.0; -0.0; 1.0; 4.5; 1.0 /. 3.0; 1e-300; 3e300; infinity;
          neg_infinity; nan; Float.min_float; epsilon_float;
        ];
    ]

let node_gen = Gen.int_range 0 9999
let endpoint_gen = Gen.pair node_gen float_gen
let endpoints_gen = Gen.list_size (Gen.int_range 0 4) endpoint_gen

let request_gen =
  Gen.oneof
    [
      Gen.map2 (fun node cost -> P.Cost_node { node; cost }) node_gen float_gen;
      Gen.map3 (fun u v w -> P.Cost_link { u; v; w }) node_gen node_gen
        float_gen;
      Gen.map2 (fun out inn -> P.Join { out; inn }) endpoints_gen endpoints_gen;
      Gen.map3
        (fun node out inn -> P.Rejoin { node; out; inn })
        node_gen endpoints_gen endpoints_gen;
      Gen.map (fun node -> P.Leave { node }) node_gen;
      Gen.map (fun proto -> P.Proto { proto }) (Gen.int_range 0 255);
      Gen.oneofl [ P.Pay; P.Stats; P.Quit ];
    ]

let count_gen = Gen.int_range 0 100000
let path_gen = Gen.list_size (Gen.int_range 0 6) node_gen

let stats_gen = Test_proto.stats_gen

let response_gen =
  Gen.oneof
    [
      Gen.map3
        (fun model n (root, domains) ->
          P.Ready { proto = B.version; model; n; root; domains })
        (Gen.oneofl [ `Node; `Link ])
        count_gen
        (Gen.pair node_gen (Gen.int_range 1 64));
      Gen.map2
        (fun version node -> P.Ack { version; node })
        count_gen
        (Gen.opt node_gen);
      Gen.map3
        (fun src path charge -> P.Served { src; path; charge })
        node_gen path_gen float_gen;
      Gen.map3
        (fun served unbounded total -> P.Paid { served; unbounded; total })
        count_gen count_gen float_gen;
      Gen.map (fun st -> P.Session_stats st) stats_gen;
      Gen.map3
        (fun (clients, requests) (edits, coalesced)
             ((cache_hits, cache_misses), (bytes_in, bytes_out)) ->
          P.Server_stats
            {
              clients;
              requests;
              edits;
              coalesced;
              cache_hits;
              cache_misses;
              bytes_in;
              bytes_out;
            })
        (Gen.pair count_gen count_gen)
        (Gen.pair count_gen count_gen)
        (Gen.pair (Gen.pair count_gen count_gen) (Gen.pair count_gen count_gen));
      Gen.map3
        (fun requests bytes_in (bytes_out, proto) ->
          P.Conn_stats { requests; bytes_in; bytes_out; proto })
        count_gen count_gen
        (Gen.pair count_gen (Gen.int_range 1 255));
      Gen.return P.Bye;
      Gen.map (fun m -> P.Err m) Gen.string_printable;
    ]

(* ---------------- helpers ---------------- *)

let frame_of (encode : B.enc -> 'a -> unit) (x : 'a) =
  let e = B.enc_create () in
  encode e x;
  Bytes.sub (B.enc_buffer e) (B.enc_offset e) (B.enc_pending e)

let feed_all d b = B.dec_feed d b 0 (Bytes.length b)

let decode_one_request b =
  let d = B.dec_create () in
  let v = B.make_view () in
  feed_all d b;
  B.decode_request d v

let decode_one_response b =
  let d = B.dec_create () in
  let v = B.make_view () in
  feed_all d b;
  B.decode_response d v

(* ---------------- round-trip properties ---------------- *)

let request_roundtrip_prop r =
  match decode_one_request (frame_of B.encode_request r) with
  | `Req r' when Test_proto.request_equal r r' -> true
  | `Req r' ->
    Test.fail_reportf "request decoded differently: %s vs %s"
      (P.print_request r) (P.print_request r')
  | `Need_more -> Test.fail_reportf "decoder starved: %s" (P.print_request r)
  | `Corrupt m ->
    Test.fail_reportf "decode failed: %s (%s)" (P.print_request r) m

let response_roundtrip_prop r =
  match decode_one_response (frame_of B.encode_response r) with
  | `Resp r' when Test_proto.response_equal r r' -> true
  | `Resp r' ->
    Test.fail_reportf "response decoded differently: %s vs %s"
      (P.print_response r) (P.print_response r')
  | `Need_more -> Test.fail_reportf "decoder starved: %s" (P.print_response r)
  | `Corrupt m ->
    Test.fail_reportf "decode failed: %s (%s)" (P.print_response r) m

(* a batch frame yields every request back, in order *)
let batch_gen = Gen.list_size (Gen.int_range 1 50) request_gen

let batch_roundtrip_prop rs =
  let d = B.dec_create () in
  let v = B.make_view () in
  feed_all d (frame_of B.encode_requests rs);
  let ok =
    List.for_all
      (fun r ->
        match B.decode_request d v with
        | `Req r' -> Test_proto.request_equal r r'
        | `Need_more | `Corrupt _ -> false)
      rs
  in
  ok
  && (match B.decode_request d v with `Need_more -> true | _ -> false)
  || Test.fail_reportf "batch of %d did not round-trip in order"
       (List.length rs)

(* chunked delivery: any byte-level split yields the same messages *)
let chunked_prop (rs, seed) =
  let frame = frame_of B.encode_requests rs in
  let rng = Wnet_prng.Rng.create seed in
  let d = B.dec_create () in
  let v = B.make_view () in
  let got = ref [] in
  let pos = ref 0 in
  let len = Bytes.length frame in
  let drain () =
    let rec go () =
      match B.decode_request d v with
      | `Req r ->
        got := r :: !got;
        go ()
      | `Need_more -> ()
      | `Corrupt m -> Test.fail_reportf "corrupt during chunked feed: %s" m
    in
    go ()
  in
  while !pos < len do
    let n = 1 + Wnet_prng.Rng.int rng (min 7 (len - !pos)) in
    B.dec_feed d frame !pos n;
    pos := !pos + n;
    drain ()
  done;
  let got = List.rev !got in
  List.length got = List.length rs
  && List.for_all2 Test_proto.request_equal rs got
  || Test.fail_reportf "chunked feed lost or reordered messages"

(* ---------------- units ---------------- *)

let test_golden_frame () =
  (* Pin the wire layout of the hottest message so the format cannot
     drift silently: cost 1 2 1.5 = one 19-byte payload. *)
  let frame = frame_of B.encode_request (P.Cost_link { u = 1; v = 2; w = 1.5 }) in
  let hex =
    String.concat ""
      (List.init (Bytes.length frame) (fun i ->
           Printf.sprintf "%02x" (Char.code (Bytes.get frame i))))
  in
  Alcotest.(check string) "golden cost-link frame"
    ("13000000" (* payload length 19 *)
    ^ "0100" (* count 1 *)
    ^ "02" (* tag cost_link *)
    ^ "01000000" (* u = 1 *)
    ^ "02000000" (* v = 2 *)
    ^ "000000000000f83f" (* 1.5 as IEEE-754 LE *))
    hex

let test_byte_at_a_time () =
  let frame = frame_of B.encode_request P.Pay in
  let d = B.dec_create () in
  let v = B.make_view () in
  let n = Bytes.length frame in
  for i = 0 to n - 2 do
    B.dec_feed d frame i 1;
    match B.decode_request d v with
    | `Need_more -> ()
    | `Req _ -> Alcotest.failf "message yielded %d bytes early" (n - 1 - i)
    | `Corrupt m -> Alcotest.failf "corrupt mid-frame: %s" m
  done;
  B.dec_feed d frame (n - 1) 1;
  (match B.decode_request d v with
  | `Req P.Pay -> ()
  | _ -> Alcotest.fail "complete frame must decode");
  match B.decode_request d v with
  | `Need_more -> ()
  | _ -> Alcotest.fail "decoder must be empty after the frame"

let test_max_batch () =
  let rs = List.init B.max_batch (fun _ -> P.Pay) in
  let d = B.dec_create () in
  let v = B.make_view () in
  feed_all d (frame_of B.encode_requests rs);
  let decoded = ref 0 in
  let rec go () =
    match B.decode_request d v with
    | `Req P.Pay ->
      incr decoded;
      go ()
    | `Req _ -> Alcotest.fail "unexpected message in max batch"
    | `Need_more -> ()
    | `Corrupt m -> Alcotest.failf "max batch corrupt: %s" m
  in
  go ();
  Alcotest.(check int) "all 65535 messages decode" B.max_batch !decoded;
  (match frame_of B.encode_requests (P.Pay :: rs) with
  | _ -> Alcotest.fail "batch over max_batch must be rejected"
  | exception Invalid_argument _ -> ());
  match frame_of B.encode_requests [] with
  | _ -> Alcotest.fail "empty batch must be rejected"
  | exception Invalid_argument _ -> ()

let expect_corrupt what frame =
  let d = B.dec_create () in
  let v = B.make_view () in
  feed_all d frame;
  match B.decode_request d v with
  | `Corrupt _ -> (
    (* and it must be sticky *)
    match B.decode_request d v with
    | `Corrupt _ -> ()
    | _ -> Alcotest.failf "%s: corruption must be sticky" what)
  | `Req _ -> Alcotest.failf "%s: decoded garbage" what
  | `Need_more -> Alcotest.failf "%s: starved instead of corrupt" what

let test_corrupt_frames () =
  (* unknown tag *)
  let bad_tag = Bytes.of_string "\x03\x00\x00\x00\x01\x00\xff" in
  expect_corrupt "unknown tag" bad_tag;
  (* oversize length claim *)
  let oversize = Bytes.create 8 in
  Bytes.set_int32_le oversize 0 (Int32.of_int (B.max_frame + 1));
  expect_corrupt "oversize frame" oversize;
  (* zero-count frame *)
  let empty = Bytes.of_string "\x03\x00\x00\x00\x00\x00\x06" in
  expect_corrupt "empty frame" empty;
  (* count says 1 but bytes remain after the message *)
  let trailing = Bytes.of_string "\x04\x00\x00\x00\x01\x00\x06\x00" in
  expect_corrupt "trailing bytes" trailing;
  (* a response tag is not a request *)
  expect_corrupt "response tag as request" (frame_of B.encode_response P.Bye)

let test_partial_consume () =
  let e = B.enc_create () in
  B.encode_request e P.Pay;
  B.encode_request e P.Stats;
  let total = B.enc_pending e in
  (* drain in two uneven steps, as a short socket write would *)
  let d = B.dec_create () in
  let v = B.make_view () in
  let step n =
    B.dec_feed d (B.enc_buffer e) (B.enc_offset e) n;
    B.enc_consume e n
  in
  step 3;
  step (total - 3);
  Alcotest.(check int) "scratch drained" 0 (B.enc_pending e);
  (match B.decode_request d v with
  | `Req P.Pay -> ()
  | _ -> Alcotest.fail "first frame");
  match B.decode_request d v with
  | `Req P.Stats -> ()
  | _ -> Alcotest.fail "second frame"

let suite =
  [
    Alcotest.test_case "golden frame: cost-link wire layout" `Quick
      test_golden_frame;
    Alcotest.test_case "byte-at-a-time feeding never yields early" `Quick
      test_byte_at_a_time;
    Alcotest.test_case "max-size batch frame (65535 messages)" `Quick
      test_max_batch;
    Alcotest.test_case "corrupt frames are rejected and sticky" `Quick
      test_corrupt_frames;
    Alcotest.test_case "partial socket writes via enc_consume" `Quick
      test_partial_consume;
    Test_util.qcheck_case ~count:500 "decode (encode r) = r bitwise, requests"
      request_gen request_roundtrip_prop;
    Test_util.qcheck_case ~count:500 "decode (encode r) = r bitwise, responses"
      response_gen response_roundtrip_prop;
    Test_util.qcheck_case ~count:500 "batch frames round-trip in order"
      batch_gen batch_roundtrip_prop;
    Test_util.qcheck_case ~count:200 "any chunking decodes identically"
      (Gen.pair batch_gen (Gen.int_range 1 1000000))
      chunked_prop;
  ]
