(* The session engine's determinism contract (ISSUE: incremental payment
   sessions): after ANY sequence of topology deltas, the incrementally
   maintained batch must be bit-identical — [Float.equal], including
   [infinity] payments at cut vertices — to a from-scratch batch on the
   edited graph, at every pool size.  The link-model oracle is
   [Link_cost.all_to_root ~strategy:Copy_graph], the original
   clone-per-relay implementation that shares no code with the session;
   the node-model oracle is a fresh one-shot [Unicast.all_to_root]. *)

open Wnet_graph
module LS = Wnet_session.Link_session
module NS = Wnet_session.Node_session
module LC = Wnet_core.Link_cost
module U = Wnet_core.Unicast
module Par = Wnet_par
module Rng = Wnet_prng.Rng

let float_exact =
  Alcotest.testable (fun ppf x -> Format.fprintf ppf "%h" x) Float.equal

let check_exact = Alcotest.check float_exact

let floats_equal a b =
  Array.length a = Array.length b && Array.for_all2 Float.equal a b

(* ---------------- link model: batch comparators ---------------- *)

let link_outcome_matches (x : LS.outcome) (y : LC.t) =
  x.LS.src = y.LC.src
  && x.LS.path = y.LC.path
  && Float.equal x.LS.lcp_cost y.LC.lcp_cost
  && Float.equal x.LS.relay_cost y.LC.relay_cost
  && floats_equal x.LS.payments y.LC.payments

let link_matches_oracle (b : LS.batch) (o : LC.batch) =
  b.LS.root = o.LC.root
  && floats_equal b.LS.to_root_dist o.LC.to_root_dist
  && Array.length b.LS.results = Array.length o.LC.results
  && Array.for_all2
       (fun x y ->
         match (x, y) with
         | None, None -> true
         | Some x, Some y -> link_outcome_matches x y
         | _ -> false)
       b.LS.results o.LC.results

let link_batches_equal (a : LS.batch) (b : LS.batch) =
  a.LS.root = b.LS.root
  && floats_equal a.LS.to_root_dist b.LS.to_root_dist
  && Array.length a.LS.results = Array.length b.LS.results
  && Array.for_all2
       (fun x y ->
         match (x, y) with
         | None, None -> true
         | Some (x : LS.outcome), Some (y : LS.outcome) ->
           x.LS.src = y.LS.src && x.LS.path = y.LS.path
           && Float.equal x.LS.lcp_cost y.LS.lcp_cost
           && Float.equal x.LS.relay_cost y.LS.relay_cost
           && floats_equal x.LS.payments y.LS.payments
         | _ -> false)
       a.LS.results b.LS.results

(* Relays the oracle charges [infinity] for — what [unbounded_relays]
   must report. *)
let oracle_unbounded (o : LC.batch) =
  let nn = Array.length o.LC.results in
  let cut = Array.make nn false in
  Array.iter
    (function
      | None -> ()
      | Some (r : LC.t) ->
        Array.iteri (fun k p -> if p = infinity then cut.(k) <- true) r.LC.payments)
    o.LC.results;
  List.filter (fun k -> cut.(k)) (List.init nn Fun.id)

(* ---------------- link model: random instances and edits ---------------- *)

(* Sparse random digraph: expected out-degree ~2.5, so cut vertices,
   disconnected sources, and unbounded payments all occur. *)
let random_digraph rng ~n =
  let links = ref [] in
  let p = 2.5 /. float_of_int n in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v && Rng.bernoulli rng p then
        links := (u, v, Rng.float_range rng 0.5 10.0) :: !links
    done
  done;
  Digraph.create ~n ~links:!links

let random_links rng ~n ~self =
  let deg = 1 + Rng.int rng 3 in
  List.filter_map
    (fun _ ->
      let x = Rng.int rng n in
      if x = self then None else Some (x, Rng.float_range rng 0.5 10.0))
    (List.init deg Fun.id)

(* One random delta through the session API.  Replayed from identically
   seeded rngs against two sessions, so every draw must depend only on
   the rng and on session state both replicas share. *)
let apply_random_op rng s =
  let nn = LS.n s in
  match Rng.int rng 6 with
  | 0 | 1 | 2 ->
    (* cost change, link insert, or link delete (w = infinity) *)
    let u = Rng.int rng nn and v = Rng.int rng nn in
    if u <> v then
      let w =
        if Rng.bernoulli rng 0.2 then infinity
        else Rng.float_range rng 0.5 10.0
      in
      LS.set_cost s u v w
  | 3 ->
    (* node leave (never the root, which is 0 here) *)
    LS.remove_node s (1 + Rng.int rng (nn - 1))
  | 4 ->
    (* rejoin the lowest-id isolated node, when one exists *)
    let snap = LS.snapshot s in
    let in_deg = Array.make nn 0 in
    List.iter (fun (_, v, _) -> in_deg.(v) <- in_deg.(v) + 1) (Digraph.links snap);
    let iso = ref None in
    for k = nn - 1 downto 1 do
      if Digraph.out_degree snap k = 0 && in_deg.(k) = 0 then iso := Some k
    done;
    (match !iso with
    | None -> ()
    | Some k ->
      LS.rejoin_node s k
        ~out:(random_links rng ~n:nn ~self:k)
        ~inn:(random_links rng ~n:nn ~self:k))
  | _ ->
    ignore
      (LS.add_node s
         ~out:(random_links rng ~n:nn ~self:(-1))
         ~inn:(random_links rng ~n:nn ~self:(-1)))

let link_equiv_prop seed =
  let rng = Rng.create seed in
  let n = 8 + Rng.int rng 21 in
  let g = random_digraph rng ~n in
  let nops = 4 + Rng.int rng 7 in
  let oseed = seed lxor 0x2545f49 in
  Par.with_pool ~domains:3 (fun pool ->
      let s_seq = LS.create g ~root:0 in
      let s_par = LS.create ~pool g ~root:0 in
      let s_drop = LS.create ~pool ~dynamic:false g ~root:0 in
      let check label =
        let b_seq = LS.payments s_seq in
        let b_par = LS.payments s_par in
        let b_drop = LS.payments s_drop in
        if not (link_batches_equal b_seq b_par) then
          QCheck2.Test.fail_reportf "%s: pooled batch differs from sequential"
            label;
        if not (link_batches_equal b_seq b_drop) then
          QCheck2.Test.fail_reportf
            "%s: dynamic-repair batch differs from drop-invalidation batch"
            label;
        let oracle =
          LC.all_to_root ~strategy:LC.Copy_graph (LS.snapshot s_seq) ~root:0
        in
        if not (link_matches_oracle b_seq oracle) then
          QCheck2.Test.fail_reportf
            "%s: incremental batch differs from from-scratch Copy_graph oracle"
            label;
        if LS.unbounded_relays s_seq <> oracle_unbounded oracle then
          QCheck2.Test.fail_reportf "%s: unbounded relay set differs" label
      in
      check "initial";
      let r_seq = Rng.create oseed
      and r_par = Rng.create oseed
      and r_drop = Rng.create oseed in
      for i = 1 to nops do
        apply_random_op r_seq s_seq;
        apply_random_op r_par s_par;
        apply_random_op r_drop s_drop;
        check (Printf.sprintf "after op %d" i)
      done;
      true)

(* ---------------- node model: oracle comparison ---------------- *)

let node_matches (x : NS.outcome option array) (y : U.t option array) =
  Array.length x = Array.length y
  && Array.for_all2
       (fun a b ->
         match (a, b) with
         | None, None -> true
         | Some (a : NS.outcome), Some (b : U.t) ->
           a.NS.src = b.U.src && a.NS.path = b.U.path
           && Float.equal a.NS.lcp_cost b.U.lcp_cost
           && floats_equal a.NS.payments b.U.payments
         | _ -> false)
       x y

let node_sessions_equal (x : NS.outcome option array) (y : NS.outcome option array)
    =
  Array.length x = Array.length y
  && Array.for_all2
       (fun a b ->
         match (a, b) with
         | None, None -> true
         | Some (a : NS.outcome), Some (b : NS.outcome) ->
           a.NS.src = b.NS.src && a.NS.path = b.NS.path
           && Float.equal a.NS.lcp_cost b.NS.lcp_cost
           && floats_equal a.NS.payments b.NS.payments
         | _ -> false)
       x y

let node_oracle_unbounded (y : U.t option array) =
  let nn = Array.length y in
  let cut = Array.make nn false in
  Array.iter
    (function
      | None -> ()
      | Some (r : U.t) ->
        Array.iteri (fun k p -> if p = infinity then cut.(k) <- true) r.U.payments)
    y;
  List.filter (fun k -> cut.(k)) (List.init nn Fun.id)

let apply_random_node_op rng s =
  let nn = NS.n s in
  if Rng.bernoulli rng 0.7 then
    (* any node, including the root: the root's declared cost must not
       disturb payments or caches *)
    NS.set_cost s (Rng.int rng nn) (Rng.float_range rng 0.05 8.0)
  else
    let k = Rng.int rng nn in
    if k <> NS.root s then NS.remove_node s k

let node_equiv_prop seed =
  let rng = Rng.create seed in
  let g =
    if Rng.bernoulli rng 0.5 then Test_util.random_ring_graph rng
    else Test_util.random_sparse_graph rng
  in
  let nops = 4 + Rng.int rng 7 in
  let oseed = seed lxor 0x51ed270b in
  Par.with_pool ~domains:3 (fun pool ->
      let s_seq = NS.create g ~root:0 in
      let s_par = NS.create ~pool g ~root:0 in
      let s_drop = NS.create ~pool ~dynamic:false g ~root:0 in
      let check label =
        let a = NS.payments s_seq in
        let b = NS.payments s_par in
        let c = NS.payments s_drop in
        if not (node_sessions_equal a b) then
          QCheck2.Test.fail_reportf "%s: pooled batch differs from sequential"
            label;
        if not (node_sessions_equal a c) then
          QCheck2.Test.fail_reportf
            "%s: dynamic-repair batch differs from drop-invalidation batch"
            label;
        let oracle = U.all_to_root (NS.graph s_seq) ~root:0 in
        if not (node_matches a oracle) then
          QCheck2.Test.fail_reportf
            "%s: incremental batch differs from fresh all_to_root" label;
        if NS.unbounded_relays s_seq <> node_oracle_unbounded oracle then
          QCheck2.Test.fail_reportf "%s: unbounded relay set differs" label
      in
      check "initial";
      let r_seq = Rng.create oseed
      and r_par = Rng.create oseed
      and r_drop = Rng.create oseed in
      for i = 1 to nops do
        apply_random_node_op r_seq s_seq;
        apply_random_node_op r_par s_par;
        apply_random_node_op r_drop s_drop;
        check (Printf.sprintf "after op %d" i)
      done;
      true)

(* ---------------- in-place digraph mutation ---------------- *)

let test_digraph_mutation () =
  let g = Digraph.create ~n:3 ~links:[ (0, 1, 2.0); (1, 2, 3.0) ] in
  Alcotest.(check int) "fresh graph at version 0" 0 (Digraph.version g);
  Digraph.set_weight g 0 1 5.0;
  check_exact "update in place" 5.0 (Digraph.weight g 0 1);
  Digraph.set_weight g 2 0 1.5;
  check_exact "insert in place" 1.5 (Digraph.weight g 2 0);
  Alcotest.(check int) "m counts the insert" 3 (Digraph.m g);
  Digraph.set_weight g 1 2 infinity;
  check_exact "infinity removes" infinity (Digraph.weight g 1 2);
  Alcotest.(check int) "m counts the removal" 2 (Digraph.m g);
  Alcotest.(check int) "every mutation bumps the version" 3 (Digraph.version g);
  let c = Digraph.copy g in
  Alcotest.(check int) "copy restarts history" 0 (Digraph.version c);
  Digraph.set_weight c 0 1 9.0;
  check_exact "copies are independent" 5.0 (Digraph.weight g 0 1);
  let id = Digraph.add_node g in
  Alcotest.(check int) "dense new id" 3 id;
  Digraph.set_weight g 3 0 1.0;
  Digraph.detach_node g 0;
  Alcotest.(check int) "detach drops out-links" 0 (Digraph.out_degree g 0);
  check_exact "detach drops in-links" infinity (Digraph.weight g 3 0)

(* ---------------- selective invalidation, observably ---------------- *)

(* Chain 3 -> 2 -> 1 -> 0 plus a pendant 4 -> 0 and a slack link 4 -> 1
   that no shortest path (avoidance or not) ever uses: editing it must
   keep every cache, and a repeat batch must be memoized. *)
let test_selective_invalidation () =
  let g =
    Digraph.create ~n:5
      ~links:[ (1, 0, 1.0); (2, 1, 1.0); (3, 2, 1.0); (4, 0, 1.0); (4, 1, 50.0) ]
  in
  let s = LS.create g ~root:0 in
  ignore (LS.payments s);
  let st1 = LS.stats s in
  Alcotest.(check int) "two relays computed" 2 st1.LS.avoid_runs;
  LS.set_cost s 4 1 45.0;
  let b = LS.payments s in
  let st2 = LS.stats s in
  Alcotest.(check int) "slack edit reruns no avoidance Dijkstra"
    st1.LS.avoid_runs st2.LS.avoid_runs;
  Alcotest.(check int) "slack edit serves both relays from cache"
    (st1.LS.avoid_reused + 2) st2.LS.avoid_reused;
  Alcotest.(check int) "shared tree patched, not recomputed" st1.LS.spt_runs
    st2.LS.spt_runs;
  Alcotest.(check int) "tree and both caches repaired in place"
    (st1.LS.repaired_entries + 3) st2.LS.repaired_entries;
  Alcotest.(check int) "no repair fell back" st1.LS.fallback_recomputes
    st2.LS.fallback_recomputes;
  Alcotest.(check bool) "repeat batch is memoized" true (b == LS.payments s);
  Alcotest.(check int) "memoized batch does no work" st2.LS.avoid_reused
    (LS.stats s).LS.avoid_reused;
  (* the incremental answer is still the from-scratch answer *)
  let oracle = LC.all_to_root ~strategy:LC.Copy_graph (LS.snapshot s) ~root:0 in
  Alcotest.(check bool) "still matches the oracle" true
    (link_matches_oracle b oracle)

(* Inserting forward link 3 -> 2 gives node 3 a second root-side path of
   bit-identical cost 2.0 with a different next hop: from-scratch
   settlement order decides the tree parent, so the repair must detect
   the tie and fall back to a full Dijkstra — and the payments must
   still match the oracle. *)
let test_tie_triggers_fallback () =
  let g =
    Digraph.create ~n:4 ~links:[ (1, 0, 1.0); (3, 1, 1.0); (2, 0, 1.0) ]
  in
  let s = LS.create g ~root:0 in
  ignore (LS.payments s);
  let st1 = LS.stats s in
  LS.set_cost s 3 2 1.0;
  let b = LS.payments s in
  let st2 = LS.stats s in
  Alcotest.(check int) "tie detected: one repair fell back"
    (st1.LS.fallback_recomputes + 1) st2.LS.fallback_recomputes;
  Alcotest.(check int) "the fallback recomputed the shared tree"
    (st1.LS.spt_runs + 1) st2.LS.spt_runs;
  let oracle = LC.all_to_root ~strategy:LC.Copy_graph (LS.snapshot s) ~root:0 in
  Alcotest.(check bool) "payments still match the oracle after fallback" true
    (link_matches_oracle b oracle)

(* Chain 2 -> 1 -> 0: relay 1 is a monopoly (cut vertex), so its payment
   is unbounded — until an alternate route appears. *)
let test_cut_vertex_tracking () =
  let g = Digraph.create ~n:3 ~links:[ (2, 1, 1.0); (1, 0, 1.0) ] in
  let s = LS.create g ~root:0 in
  let b = LS.payments s in
  (match b.LS.results.(2) with
  | Some o -> check_exact "monopoly relay is paid infinity" infinity o.LS.payments.(1)
  | None -> Alcotest.fail "source 2 should be served");
  Alcotest.(check (list int)) "relay 1 reported unbounded" [ 1 ]
    (LS.unbounded_relays s);
  LS.set_cost s 2 0 10.0;
  let b = LS.payments s in
  (match b.LS.results.(2) with
  | Some o ->
    (* used link 1 + (avoidance 10 - lcp 2) *)
    check_exact "alternate route bounds the payment" 9.0 o.LS.payments.(1)
  | None -> Alcotest.fail "source 2 should be served");
  Alcotest.(check (list int)) "no unbounded relays left" []
    (LS.unbounded_relays s)

(* Leave + rejoin with the same links must restore the original batch
   bit for bit — and [rejoin_node] must enforce its preconditions. *)
let test_leave_rejoin_roundtrip () =
  let g =
    Digraph.create ~n:5
      ~links:[ (1, 0, 1.0); (2, 1, 1.0); (3, 2, 1.0); (4, 0, 1.0); (4, 1, 50.0) ]
  in
  let s = LS.create g ~root:0 in
  let before = LS.payments s in
  LS.remove_node s 3;
  let gone = LS.payments s in
  Alcotest.(check bool) "left node unserved" true (gone.LS.results.(3) = None);
  LS.rejoin_node s 3 ~out:[ (2, 1.0) ] ~inn:[];
  let after = LS.payments s in
  Alcotest.(check bool) "rejoin restores the batch bitwise" true
    (link_batches_equal before after);
  Alcotest.check_raises "rejoining a connected node is refused"
    (Invalid_argument "Link_session.rejoin_node: node is not isolated")
    (fun () -> LS.rejoin_node s 3 ~out:[ (2, 1.0) ] ~inn:[]);
  Alcotest.check_raises "rejoining the root is refused"
    (Invalid_argument "Link_session.rejoin_node: cannot rejoin the root")
    (fun () -> LS.rejoin_node s 0 ~out:[] ~inn:[]);
  Alcotest.check_raises "out-of-range id is refused"
    (Invalid_argument "Link_session.rejoin_node: out of range") (fun () ->
      LS.rejoin_node s 9 ~out:[] ~inn:[])

(* ---------------- coalesced deferred invalidation ---------------- *)

let burst_graph () =
  Digraph.create ~n:5
    ~links:[ (1, 0, 1.0); (2, 1, 1.0); (3, 2, 1.0); (4, 0, 1.0); (4, 1, 50.0) ]

(* A burst of k cost edits before the next payments must fold into
   EXACTLY one invalidation pass — the server's coalescing contract —
   and still match the from-scratch oracle bit for bit. *)
let test_coalesced_burst () =
  let s = LS.create (burst_graph ()) ~root:0 in
  ignore (LS.payments s);
  let st0 = LS.stats s in
  LS.set_cost s 4 1 45.0;
  LS.set_cost s 4 1 40.0;
  LS.set_cost s 3 2 1.5;
  let st1 = LS.stats s in
  Alcotest.(check int) "no pass while the burst buffers" st0.LS.inval_passes
    st1.LS.inval_passes;
  let b = LS.payments s in
  let st2 = LS.stats s in
  Alcotest.(check int) "3-edit burst = one invalidation pass"
    (st0.LS.inval_passes + 1) st2.LS.inval_passes;
  Alcotest.(check int) "every burst edit counted coalesced"
    (st0.LS.coalesced_edits + 3) st2.LS.coalesced_edits;
  let oracle = LC.all_to_root ~strategy:LC.Copy_graph (LS.snapshot s) ~root:0 in
  Alcotest.(check bool) "coalesced burst still matches the oracle" true
    (link_matches_oracle b oracle)

(* A burst that nets out to nothing (edit then revert, [Float.equal])
   must cost zero passes and leave the batch bit-identical. *)
let test_reverted_burst () =
  let s = LS.create (burst_graph ()) ~root:0 in
  let before = LS.payments s in
  let st0 = LS.stats s in
  LS.set_cost s 4 1 45.0;
  LS.set_cost s 4 1 50.0;
  let after = LS.payments s in
  let st1 = LS.stats s in
  Alcotest.(check int) "reverted burst = zero invalidation passes"
    st0.LS.inval_passes st1.LS.inval_passes;
  Alcotest.(check int) "reverted edits still counted coalesced"
    (st0.LS.coalesced_edits + 2) st1.LS.coalesced_edits;
  Alcotest.(check bool) "reverted burst leaves the batch bitwise" true
    (link_batches_equal before after)

(* Explicit flush applies the pending pass immediately and is idempotent;
   payments after it adds no second pass. *)
let test_explicit_flush () =
  let s = LS.create (burst_graph ()) ~root:0 in
  ignore (LS.payments s);
  let st0 = LS.stats s in
  LS.set_cost s 4 1 45.0;
  LS.flush s;
  let st1 = LS.stats s in
  Alcotest.(check int) "flush performs the pass now" (st0.LS.inval_passes + 1)
    st1.LS.inval_passes;
  LS.flush s;
  ignore (LS.payments s);
  let st2 = LS.stats s in
  Alcotest.(check int) "empty flush and payments add no pass"
    st1.LS.inval_passes st2.LS.inval_passes

let test_node_coalesced_burst () =
  let g =
    Graph.create
      ~costs:[| 1.0; 2.0; 3.0; 2.0; 1.0 |]
      ~edges:[ (1, 0); (2, 1); (3, 2); (4, 0); (4, 1) ]
  in
  let s = NS.create g ~root:0 in
  ignore (NS.payments s);
  let st0 = NS.stats s in
  NS.set_cost s 1 5.0;
  NS.set_cost s 2 4.0;
  NS.set_cost s 1 6.0;
  let b = NS.payments s in
  let st1 = NS.stats s in
  Alcotest.(check int) "node burst = one invalidation pass"
    (st0.NS.inval_passes + 1) st1.NS.inval_passes;
  Alcotest.(check int) "node burst edits counted coalesced"
    (st0.NS.coalesced_edits + 3) st1.NS.coalesced_edits;
  let oracle = U.all_to_root (NS.graph s) ~root:0 in
  Alcotest.(check bool) "node burst still matches the fresh batch" true
    (node_matches b oracle)

(* ---------------- pool plumbing the sessions rely on ---------------- *)

let test_map_array_pooled () =
  Par.with_pool ~domains:3 (fun pool ->
      let a = Array.init 90 (fun i -> i) in
      let expect = Array.map (fun x -> 2 * x) a in
      let states = Array.init (Par.size pool) (fun _ -> ref 0) in
      let got = Par.map_array_pooled pool ~states (fun st x -> incr st; 2 * x) a in
      Alcotest.(check bool) "pooled states give the plain map" true
        (got = expect);
      Alcotest.(check int) "every element touched exactly once" 90
        (Array.fold_left (fun acc st -> acc + !st) 0 states);
      Alcotest.check_raises "too few states are refused"
        (Invalid_argument
           "Wnet_par.map_array_pooled: need one state per participant")
        (fun () ->
          ignore (Par.map_array_pooled pool ~states:[| ref 0 |] (fun _ x -> x) a)))

let suite =
  [
    Alcotest.test_case "digraph in-place mutation" `Quick test_digraph_mutation;
    Alcotest.test_case "slack edit keeps caches + memoization" `Quick
      test_selective_invalidation;
    Alcotest.test_case "bit-equal tie triggers repair fallback" `Quick
      test_tie_triggers_fallback;
    Alcotest.test_case "cut-vertex tracking across edits" `Quick
      test_cut_vertex_tracking;
    Alcotest.test_case "leave/rejoin round-trip is bitwise" `Quick
      test_leave_rejoin_roundtrip;
    Alcotest.test_case "coalesced burst = one invalidation pass" `Quick
      test_coalesced_burst;
    Alcotest.test_case "reverted burst = zero invalidation passes" `Quick
      test_reverted_burst;
    Alcotest.test_case "explicit flush is immediate and idempotent" `Quick
      test_explicit_flush;
    Alcotest.test_case "node model coalesces bursts too" `Quick
      test_node_coalesced_burst;
    Alcotest.test_case "map_array_pooled caller-owned states" `Quick
      test_map_array_pooled;
    Test_util.qcheck_case ~count:60
      "link session: random edit sequences = Copy_graph oracle (bits)"
      Test_util.seed_gen link_equiv_prop;
    Test_util.qcheck_case ~count:60
      "node session: random edit sequences = fresh batch (bits)"
      Test_util.seed_gen node_equiv_prop;
  ]
