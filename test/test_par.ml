(* The determinism contract of the domain-parallel batch payment engine:
   whatever the pool size, every combinator and every batch mechanism
   must return the sequential answer bit for bit. *)

open Wnet_core
module Par = Wnet_par
module Rng = Wnet_prng.Rng

let exact =
  Alcotest.testable
    (fun ppf x -> Format.fprintf ppf "%h" x)
    (fun a b -> Float.equal a b || (Float.is_nan a && Float.is_nan b))

let check_exact = Alcotest.check exact

(* ---------------- pool combinators ---------------- *)

let test_map_array_pool_sizes () =
  let a = Array.init 237 (fun i -> i) in
  let f x = (sqrt (float_of_int (x + 1)) *. 3.7) +. (1.0 /. float_of_int (x + 2)) in
  let expect = Array.map f a in
  List.iter
    (fun domains ->
      Par.with_pool ~domains (fun pool ->
          let got = Par.map_array pool f a in
          Alcotest.(check bool)
            (Printf.sprintf "map_array identical at pool size %d" domains)
            true (got = expect)))
    [ 1; 2; 4 ]

let test_parallel_for_covers_all () =
  List.iter
    (fun domains ->
      Par.with_pool ~domains (fun pool ->
          let hits = Array.make 101 0 in
          Par.parallel_for pool ~lo:0 ~hi:101 (fun i -> hits.(i) <- hits.(i) + 1);
          Alcotest.(check bool)
            (Printf.sprintf "each index once at pool size %d" domains)
            true
            (Array.for_all (fun c -> c = 1) hits)))
    [ 1; 2; 4 ]

let test_map_reduce_associative () =
  let a = Array.init 500 (fun i -> i + 1) in
  let expect = Array.fold_left ( + ) 0 a in
  List.iter
    (fun domains ->
      Par.with_pool ~domains (fun pool ->
          Alcotest.(check int)
            (Printf.sprintf "sum at pool size %d" domains)
            expect
            (Par.map_reduce pool ~map:Fun.id ~combine:( + ) ~init:0 a)))
    [ 1; 2; 4 ]

let test_map_array_with_states () =
  (* One state per chunk, threaded through the whole chunk: with 3
     participants over 90 elements, at most 3 distinct states exist and
     results do not depend on them. *)
  Par.with_pool ~domains:3 (fun pool ->
      let made = Atomic.make 0 in
      let got =
        Par.map_array_with pool
          ~init:(fun () ->
            Atomic.incr made;
            ref 0)
          (fun counter x ->
            incr counter;
            x * 2)
          (Array.init 90 Fun.id)
      in
      Alcotest.(check bool) "results" true
        (got = Array.init 90 (fun i -> 2 * i));
      Alcotest.(check bool) "at most one state per participant" true
        (Atomic.get made <= 3))

exception Boom

let test_exception_propagates () =
  Par.with_pool ~domains:4 (fun pool ->
      Alcotest.check_raises "raised in caller" Boom (fun () ->
          ignore
            (Par.map_array pool
               (fun x -> if x = 77 then raise Boom else x)
               (Array.init 100 Fun.id)));
      (* The pool survives a failed job. *)
      Alcotest.(check bool) "pool usable after failure" true
        (Par.map_array pool (fun x -> x + 1) [| 1; 2; 3 |] = [| 2; 3; 4 |]))

(* ---------------- work-stealing layer ---------------- *)

let test_map_array_stealing_pool_sizes () =
  let a = Array.init 311 (fun i -> i) in
  let f x =
    (sqrt (float_of_int (x + 1)) *. 2.3) +. (1.0 /. float_of_int (x + 3))
  in
  let expect = Array.map f a in
  List.iter
    (fun domains ->
      Par.with_pool ~domains (fun pool ->
          let got = Par.map_array_stealing pool f a in
          Alcotest.(check bool)
            (Printf.sprintf "map_array_stealing identical at pool size %d"
               domains)
            true (got = expect)))
    [ 1; 2; 4 ]

let test_map_array_stealing_pooled_states () =
  (* The state is pure scratch: the result must not depend on which
     slot's state a stolen task lands on. *)
  List.iter
    (fun domains ->
      Par.with_pool ~domains (fun pool ->
          let states = Array.init domains (fun _ -> ref 0) in
          let got =
            Par.map_array_stealing_pooled pool ~states
              (fun r x ->
                r := x + 1;
                !r * 3)
              (Array.init 97 Fun.id)
          in
          Alcotest.(check bool)
            (Printf.sprintf "stolen scratch states identical at pool size %d"
               domains)
            true
            (got = Array.init 97 (fun i -> (i + 1) * 3))))
    [ 1; 2; 4 ]

let test_nested_stealing () =
  (* A stealing map whose tasks re-enter the same pool: the inner calls
     push to the running participant's own deque instead of deadlocking
     on a nested job post. *)
  Par.with_pool ~domains:4 (fun pool ->
      let got =
        Par.map_array_stealing pool
          (fun i ->
            Array.fold_left ( + ) 0
              (Par.map_array_stealing pool
                 (fun j -> i * j)
                 (Array.init 20 Fun.id)))
          (Array.init 30 Fun.id)
      in
      Alcotest.(check bool) "nested stealing identical" true
        (got = Array.init 30 (fun i -> i * 190)))

let test_stealing_counters () =
  Par.with_pool ~domains:3 (fun pool ->
      let before = Par.stats pool in
      let n = 128 in
      ignore (Par.map_array_stealing pool (fun x -> x * x) (Array.init n Fun.id));
      let after = Par.stats pool in
      Alcotest.(check int) "every element counted as one task" n
        (after.Par.tasks_executed - before.Par.tasks_executed);
      let stolen = after.Par.tasks_stolen - before.Par.tasks_stolen in
      Alcotest.(check bool) "stolen is a subset of executed" true
        (stolen >= 0 && stolen <= n))

let test_iter_stealing_covers_all () =
  List.iter
    (fun domains ->
      Par.with_pool ~domains (fun pool ->
          let hits = Array.make 173 0 in
          Par.iter_stealing pool ~lo:0 ~hi:173 (fun i ->
              hits.(i) <- hits.(i) + 1);
          Alcotest.(check bool)
            (Printf.sprintf "each index once at pool size %d" domains)
            true
            (Array.for_all (fun c -> c = 1) hits);
          (* sub-range and empty range *)
          let sub = Array.make 173 0 in
          Par.iter_stealing pool ~lo:40 ~hi:90 (fun i -> sub.(i) <- 1);
          Alcotest.(check bool) "sub-range only" true
            (Array.for_all2 (fun c i -> c = if i >= 40 && i < 90 then 1 else 0)
               sub
               (Array.init 173 Fun.id));
          Par.iter_stealing pool ~lo:5 ~hi:5 (fun _ -> assert false)))
    [ 1; 2; 4 ]

let test_iter_stealing_nested () =
  Par.with_pool ~domains:4 (fun pool ->
      let acc = Array.make 30 0 in
      Par.iter_stealing pool ~lo:0 ~hi:30 (fun i ->
          let inner = Array.make 20 0 in
          Par.iter_stealing pool ~lo:0 ~hi:20 (fun j -> inner.(j) <- i * j);
          acc.(i) <- Array.fold_left ( + ) 0 inner);
      Alcotest.(check bool) "nested iteration identical" true
        (acc = Array.init 30 (fun i -> i * 190)))

let test_iter_stealing_counters_and_exceptions () =
  Par.with_pool ~domains:3 (fun pool ->
      let before = Par.stats pool in
      Par.iter_stealing pool ~lo:0 ~hi:64 (fun _ -> ());
      let after = Par.stats pool in
      Alcotest.(check int) "every index counted as one task" 64
        (after.Par.tasks_executed - before.Par.tasks_executed);
      Alcotest.check_raises "raised in caller" Boom (fun () ->
          Par.iter_stealing pool ~lo:0 ~hi:100 (fun i ->
              if i = 50 then raise Boom));
      let hits = Atomic.make 0 in
      Par.iter_stealing pool ~lo:0 ~hi:10 (fun _ -> Atomic.incr hits);
      Alcotest.(check int) "pool usable after failure" 10 (Atomic.get hits))

let test_submit_await () =
  List.iter
    (fun domains ->
      Par.with_pool ~domains (fun pool ->
          let t1 = Par.submit pool (fun () -> 21 * 2) in
          let t2 = Par.submit pool (fun () -> "ok") in
          Alcotest.(check int) "awaited value" 42 (Par.await pool t1);
          Alcotest.(check string) "second task" "ok" (Par.await pool t2);
          Alcotest.(check int) "await is idempotent" 42 (Par.await pool t1)))
    [ 1; 3 ]

let test_stealing_exception_propagates () =
  Par.with_pool ~domains:4 (fun pool ->
      Alcotest.check_raises "raised in caller" Boom (fun () ->
          ignore
            (Par.map_array_stealing pool
               (fun x -> if x = 50 then raise Boom else x)
               (Array.init 100 Fun.id)));
      Alcotest.(check bool) "pool usable after stealing failure" true
        (Par.map_array_stealing pool (fun x -> x + 1) [| 1; 2 |] = [| 2; 3 |]);
      let t = Par.submit pool (fun () -> raise Boom) in
      Alcotest.check_raises "submit failure surfaces at await" Boom (fun () ->
          ignore (Par.await pool t)))

(* ---------------- batch payment engines ---------------- *)

let udg_node_graph seed ~n =
  let rng = Rng.create seed in
  let t = Wnet_topology.Udg.paper_instance rng ~n in
  let costs = Wnet_topology.Udg.uniform_node_costs rng ~n ~lo:1.0 ~hi:10.0 in
  Wnet_topology.Udg.node_graph t ~costs

let unicast_batch_equal (a : Unicast.t option array) b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y ->
         match (x, y) with
         | None, None -> true
         | Some (x : Unicast.t), Some (y : Unicast.t) ->
           x.Unicast.src = y.Unicast.src
           && x.Unicast.dst = y.Unicast.dst
           && x.Unicast.path = y.Unicast.path
           && Float.equal x.Unicast.lcp_cost y.Unicast.lcp_cost
           && Array.for_all2 Float.equal x.Unicast.payments y.Unicast.payments
         | _ -> false)
       a b

let test_unicast_batch_parallel_identical () =
  List.iter
    (fun seed ->
      let g = udg_node_graph seed ~n:120 in
      let seq = Unicast.all_to_root g ~root:0 in
      List.iter
        (fun domains ->
          Par.with_pool ~domains (fun pool ->
              let par = Unicast.all_to_root ~pool g ~root:0 in
              Alcotest.(check bool)
                (Printf.sprintf "seed %d pool %d bit-identical" seed domains)
                true (unicast_batch_equal seq par)))
        [ 2; 4 ])
    [ 3; 19 ]

let test_unicast_batch_matches_per_source () =
  (* The batch engine (parallel, scratch-reusing) against the per-source
     Algorithm 1 run: same mechanism computed by a different algorithm,
     so payments agree to float tolerance per node. *)
  let g = udg_node_graph 11 ~n:90 in
  Par.with_pool ~domains:4 (fun pool ->
      let batch = Unicast.all_to_root ~pool g ~root:0 in
      Array.iteri
        (fun src entry ->
          if src <> 0 then
            match (entry, Unicast.run ~algo:Unicast.Fast g ~src ~dst:0) with
            | None, None -> ()
            | Some a, Some b ->
              Test_util.check_float "lcp cost" b.Unicast.lcp_cost
                a.Unicast.lcp_cost;
              Array.iteri
                (fun v pb ->
                  Test_util.check_float
                    (Printf.sprintf "payment src=%d node=%d" src v)
                    pb a.Unicast.payments.(v))
                b.Unicast.payments
            | _ -> Alcotest.fail "batch/per-source reachability mismatch")
        batch)

let link_batch_equal (a : Link_cost.batch) (b : Link_cost.batch) =
  a.Link_cost.root = b.Link_cost.root
  && Array.for_all2 Float.equal a.Link_cost.to_root_dist b.Link_cost.to_root_dist
  && Array.for_all2
       (fun x y ->
         match (x, y) with
         | None, None -> true
         | Some (x : Link_cost.t), Some (y : Link_cost.t) ->
           x.Link_cost.path = y.Link_cost.path
           && Float.equal x.Link_cost.lcp_cost y.Link_cost.lcp_cost
           && Float.equal x.Link_cost.relay_cost y.Link_cost.relay_cost
           && Array.for_all2 Float.equal x.Link_cost.payments
                y.Link_cost.payments
         | _ -> false)
       a.Link_cost.results b.Link_cost.results

let test_link_cost_zero_copy_equals_copy () =
  let r = Test_util.rng 47 in
  for _ = 1 to 6 do
    let inst = Wnet_topology.Random_range.paper_instance r ~n:60 ~kappa:2.0 in
    let g = inst.Wnet_topology.Random_range.graph in
    let copy = Link_cost.all_to_root ~strategy:Link_cost.Copy_graph g ~root:0 in
    let zero = Link_cost.all_to_root ~strategy:Link_cost.Zero_copy g ~root:0 in
    Alcotest.(check bool) "zero-copy bit-identical to graph-copy" true
      (link_batch_equal copy zero)
  done

let test_link_cost_parallel_identical () =
  let r = Test_util.rng 53 in
  let inst = Wnet_topology.Random_range.paper_instance r ~n:80 ~kappa:2.0 in
  let g = inst.Wnet_topology.Random_range.graph in
  let seq = Link_cost.all_to_root g ~root:0 in
  List.iter
    (fun domains ->
      Par.with_pool ~domains (fun pool ->
          let par = Link_cost.all_to_root ~pool g ~root:0 in
          Alcotest.(check bool)
            (Printf.sprintf "pool %d bit-identical" domains)
            true (link_batch_equal seq par)))
    [ 2; 4 ]

(* ---------------- experiment sweeps ---------------- *)

let studies_equal (a : Overpayment.study) (b : Overpayment.study) =
  Float.equal a.Overpayment.tor b.Overpayment.tor
  && Float.equal a.Overpayment.ior b.Overpayment.ior
  && Float.equal a.Overpayment.worst b.Overpayment.worst
  && a.Overpayment.skipped = b.Overpayment.skipped
  && a.Overpayment.samples = b.Overpayment.samples

let test_fig3_row_parallel_identical () =
  let model = Wnet_experiments.Fig3.Udg { kappa = 2.0 } in
  let sweep ?pool () =
    Wnet_experiments.Fig3.overpayment_sweep ~instances:4 ~ns:[ 100 ] ?pool
      ~seed:42 model
  in
  let seq = sweep () in
  Par.with_pool ~domains:3 (fun pool ->
      let par = sweep ~pool () in
      match (seq, par) with
      | [ s ], [ p ] ->
        Alcotest.(check int) "same n" s.Wnet_experiments.Fig3.n
          p.Wnet_experiments.Fig3.n;
        Alcotest.(check bool) "sweep row bit-identical" true
          (studies_equal s.Wnet_experiments.Fig3.study
             p.Wnet_experiments.Fig3.study);
        (* Also pin a value so the row is not trivially empty. *)
        Alcotest.(check bool) "row has samples" true
          (s.Wnet_experiments.Fig3.study.Overpayment.samples <> [])
      | _ -> Alcotest.fail "expected exactly one sweep row")

let test_hop_profile_parallel_identical () =
  let model = Wnet_experiments.Fig3.Udg { kappa = 2.0 } in
  let seq =
    Wnet_experiments.Fig3.hop_profile ~instances:3 ~n:120 ~seed:7 model
  in
  Par.with_pool ~domains:3 (fun pool ->
      let par =
        Wnet_experiments.Fig3.hop_profile ~instances:3 ~n:120 ~pool ~seed:7
          model
      in
      Alcotest.(check bool) "hop profile bit-identical" true (seq = par))

(* ---------------- dijkstra scratch ---------------- *)

let test_scratch_reuse_matches_fresh () =
  let r = Test_util.rng 91 in
  let scratch = Wnet_graph.Dijkstra.make_scratch 40 in
  for _ = 1 to 10 do
    let g = Test_util.random_ring_graph ~max_n:40 r in
    let n = Wnet_graph.Graph.n g in
    let fresh = Wnet_graph.Dijkstra.node_weighted g ~source:0 in
    let reused = Wnet_graph.Dijkstra.node_weighted_dist scratch g ~source:0 in
    for v = 0 to n - 1 do
      check_exact
        (Printf.sprintf "dist %d" v)
        fresh.Wnet_graph.Dijkstra.dist.(v)
        reused.(v)
    done
  done

let suite =
  [
    Alcotest.test_case "map_array pool sizes 1/2/4" `Quick
      test_map_array_pool_sizes;
    Alcotest.test_case "parallel_for covers range" `Quick
      test_parallel_for_covers_all;
    Alcotest.test_case "map_reduce associative" `Quick
      test_map_reduce_associative;
    Alcotest.test_case "map_array_with per-chunk state" `Quick
      test_map_array_with_states;
    Alcotest.test_case "exceptions propagate, pool survives" `Quick
      test_exception_propagates;
    Alcotest.test_case "map_array_stealing pool sizes 1/2/4" `Quick
      test_map_array_stealing_pool_sizes;
    Alcotest.test_case "map_array_stealing_pooled scratch states" `Quick
      test_map_array_stealing_pooled_states;
    Alcotest.test_case "nested stealing re-enters the pool" `Quick
      test_nested_stealing;
    Alcotest.test_case "task counters: executed = n, stolen <= n" `Quick
      test_stealing_counters;
    Alcotest.test_case "iter_stealing covers range" `Quick
      test_iter_stealing_covers_all;
    Alcotest.test_case "iter_stealing nests" `Quick test_iter_stealing_nested;
    Alcotest.test_case "iter_stealing counters & exceptions" `Quick
      test_iter_stealing_counters_and_exceptions;
    Alcotest.test_case "submit/await round-trip" `Quick test_submit_await;
    Alcotest.test_case "stealing exceptions propagate, pool survives" `Quick
      test_stealing_exception_propagates;
    Alcotest.test_case "unicast batch: parallel = sequential (bits)" `Quick
      test_unicast_batch_parallel_identical;
    Alcotest.test_case "unicast batch vs per-source Fast" `Quick
      test_unicast_batch_matches_per_source;
    Alcotest.test_case "link-cost: zero-copy = graph-copy (bits)" `Quick
      test_link_cost_zero_copy_equals_copy;
    Alcotest.test_case "link-cost batch: parallel = sequential (bits)" `Quick
      test_link_cost_parallel_identical;
    Alcotest.test_case "fig3 sweep row: parallel = sequential (bits)" `Quick
      test_fig3_row_parallel_identical;
    Alcotest.test_case "fig3 hop profile: parallel = sequential (bits)" `Quick
      test_hop_profile_parallel_identical;
    Alcotest.test_case "dijkstra scratch reuse = fresh run" `Quick
      test_scratch_reuse_matches_fresh;
  ]
