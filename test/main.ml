let () =
  Alcotest.run "truthful-unicast"
    [
      ("prng", Test_prng.suite);
      ("geom", Test_geom.suite);
      ("heap", Test_heap.suite);
      ("graph", Test_graph.suite);
      ("digraph", Test_digraph.suite);
      ("dijkstra", Test_dijkstra.suite);
      ("connectivity", Test_connectivity.suite);
      ("path", Test_path.suite);
      ("avoid", Test_avoid.suite);
      ("mech", Test_mech.suite);
      ("unicast", Test_unicast.suite);
      ("payment-scheme", Test_payment_scheme.suite);
      ("link-cost", Test_link_cost.suite);
      ("examples", Test_examples.suite);
      ("collusion", Test_collusion.suite);
      ("engine", Test_engine.suite);
      ("spt-protocol", Test_spt_protocol.suite);
      ("payment-protocol", Test_payment_protocol.suite);
      ("topology", Test_topology.suite);
      ("baselines", Test_baselines.suite);
      ("stats", Test_stats.suite);
      ("overpayment", Test_overpayment.suite);
      ("experiments", Test_experiments.suite);
      ("session-and-coalitions", Test_session.suite);
      ("accounting", Test_accounting.suite);
      ("lifetime", Test_lifetime.suite);
      ("async", Test_async.suite);
      ("metrics", Test_metrics.suite);
      ("graph-io", Test_graph_io.suite);
      ("edge-model", Test_edge_model.suite);
      ("theory", Test_theory.suite);
      ("ksp", Test_ksp.suite);
      ("par", Test_par.suite);
      ("declaration", Test_declaration.suite);
    ]
