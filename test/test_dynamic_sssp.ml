(* Dynamic SSSP repair against the from-scratch oracle: random edit
   bursts (weight changes, insertions, deletions, detach, rejoin, node
   growth) over long-lived graphs, plus pinned unit cases for the two
   fallback triggers. *)

open Wnet_graph
module Rng = Wnet_prng.Rng

let check_tree_matches label g source dyn =
  let fresh = Dijkstra.link_weighted g source in
  let tr = Dynamic_sssp.tree dyn in
  let n = Digraph.n g in
  if Array.length tr.Dijkstra.dist <> n then
    Alcotest.failf "%s: tree dist length %d, graph %d" label
      (Array.length tr.Dijkstra.dist) n;
  for v = 0 to n - 1 do
    if not (Float.equal tr.Dijkstra.dist.(v) fresh.Dijkstra.dist.(v)) then
      Alcotest.failf "%s: dist.(%d) = %.17g, oracle %.17g" label v
        tr.Dijkstra.dist.(v) fresh.Dijkstra.dist.(v);
    if tr.Dijkstra.parent.(v) <> fresh.Dijkstra.parent.(v) then
      Alcotest.failf "%s: parent.(%d) = %d, oracle %d" label v
        tr.Dijkstra.parent.(v) fresh.Dijkstra.parent.(v)
  done

(* A random digraph (with its reverse mirror) whose links may share
   weights when [tied] — tied weights force the fallback path often. *)
let random_digraph rng ~tied =
  let n = 5 + Rng.int rng 20 in
  let links = ref [] in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v && Rng.bernoulli rng 0.25 then
        let w =
          if tied then float_of_int (1 + Rng.int rng 3)
          else 0.1 +. Rng.float rng 10.0
        in
        links := (u, v, w) :: !links
    done
  done;
  let g = Digraph.create ~n ~links:!links in
  (g, Digraph.reverse g)

(* One random burst applied to [g] and [mirror] in lockstep, returned as
   net edits on [g] (the shape Dynamic_sssp consumes). *)
let random_burst rng g mirror ~source =
  let byl = Hashtbl.create 8 in
  let touch u v w1 =
    let w0 = Digraph.weight g u v in
    Digraph.set_weight g u v w1;
    Digraph.set_weight mirror v u w1;
    match Hashtbl.find_opt byl (u, v) with
    | Some first -> Hashtbl.replace byl (u, v) { first with Dynamic_sssp.w1 }
    | None -> Hashtbl.add byl (u, v) { Dynamic_sssp.u; v; w0; w1 }
  in
  let ops = 1 + Rng.int rng 4 in
  for _ = 1 to ops do
    let n = Digraph.n g in
    match Rng.int rng 10 with
    | 0 ->
      (* detach a non-source node (leave/crash) *)
      let v = Rng.int rng n in
      if v <> source then begin
        Array.iter (fun (y, _) -> touch v y infinity) (Digraph.out_links g v);
        Array.iter
          (fun (x, _) -> touch x v infinity)
          (Digraph.out_links mirror v)
      end
    | 1 ->
      (* grow by one node and wire it up (join) *)
      let v = Digraph.add_node g in
      let v' = Digraph.add_node mirror in
      assert (v = v');
      for _ = 1 to 2 do
        let u = Rng.int rng n in
        if u <> v then begin
          touch u v (0.1 +. Rng.float rng 10.0);
          touch v u (0.1 +. Rng.float rng 10.0)
        end
      done
    | _ ->
      let u = Rng.int rng n and v = Rng.int rng n in
      if u <> v then
        let w1 =
          match Rng.int rng 4 with
          | 0 -> infinity (* delete *)
          | 1 -> float_of_int (1 + Rng.int rng 3) (* often a tie *)
          | _ -> 0.1 +. Rng.float rng 10.0
        in
        touch u v w1
  done;
  Hashtbl.fold
    (fun _ e acc ->
      if Float.equal e.Dynamic_sssp.w0 e.Dynamic_sssp.w1 then acc else e :: acc)
    byl []

let tree_prop ~tied seed =
  let rng = Test_util.rng seed in
  let g, mirror = random_digraph rng ~tied in
  let source = Rng.int rng (Digraph.n g) in
  let dyn = Dynamic_sssp.create ~graph:g ~mirror ~source in
  check_tree_matches "initial" g source dyn;
  for burst = 1 to 8 do
    let edits = random_burst rng g mirror ~source in
    (match Dynamic_sssp.apply dyn edits with
    | Patched _ | Rebuilt _ -> ());
    check_tree_matches (Printf.sprintf "burst %d" burst) g source dyn
  done;
  true

(* Distance-only repair with a forbidden relay, against the oracle, with
   from-scratch recovery after an overflow (tiny budget forces it). *)
let dist_prop seed =
  let rng = Test_util.rng seed in
  let g, mirror = random_digraph rng ~tied:(Rng.bernoulli rng 0.5) in
  let n0 = Digraph.n g in
  let source = Rng.int rng n0 in
  let forbidden = (source + 1 + Rng.int rng (n0 - 1)) mod n0 in
  let scratch = Dynamic_sssp.make_dist_scratch 256 in
  let dscratch = Dijkstra.make_scratch 256 in
  let oracle () =
    Dijkstra.link_weighted_dist dscratch
      ~forbidden:(fun x -> x = forbidden)
      g source
  in
  let dist = ref (oracle ()) in
  let budget = if Rng.bernoulli rng 0.3 then Some 3 else None in
  for burst = 1 to 8 do
    let edits = random_burst rng g mirror ~source in
    let fresh = oracle () in
    (* node growth: widen the running array like the session cache does *)
    if Array.length fresh > Array.length !dist then begin
      let d = Array.make (Array.length fresh) infinity in
      Array.blit !dist 0 d 0 (Array.length !dist);
      dist := d
    end;
    (match
       Dynamic_sssp.repair_dist scratch ?budget ~forbidden ~graph:g ~mirror
         ~source ~dist:!dist edits
     with
    | `Patched _ -> ()
    | `Overflow -> dist := fresh);
    Array.iteri
      (fun v dv ->
        if not (Float.equal dv !dist.(v)) then
          Alcotest.failf "burst %d: dist.(%d) = %.17g, oracle %.17g" burst v
            !dist.(v) dv)
      fresh
  done;
  true

(* Node-weighted repair: random cost bursts over a fixed topology. *)
let node_dist_prop seed =
  let rng = Test_util.rng seed in
  let g0 =
    if Rng.bernoulli rng 0.5 then Test_util.random_ring_graph rng
    else Test_util.random_sparse_graph rng
  in
  let n = Graph.n g0 in
  let source = Rng.int rng n in
  let forbidden = (source + 1 + Rng.int rng (n - 1)) mod n in
  let scratch = Dynamic_sssp.make_dist_scratch n in
  let dscratch = Dijkstra.make_scratch n in
  let g = ref g0 in
  let oracle () =
    Dijkstra.node_weighted_dist dscratch
      ~forbidden:(fun x -> x = forbidden)
      !g ~source
  in
  let dist = oracle () in
  for burst = 1 to 8 do
    let edits = ref [] in
    let k = 1 + Rng.int rng 3 in
    for _ = 1 to k do
      let x = Rng.int rng n in
      if x <> source then begin
        (* net fold: c0 is the cost at burst start, even when the same
           node is edited twice in one burst *)
        let c0 =
          match List.find_opt (fun e -> e.Dynamic_sssp.x = x) !edits with
          | Some e -> e.Dynamic_sssp.c0
          | None -> Graph.cost !g x
        in
        let c1 =
          if Rng.bernoulli rng 0.3 then float_of_int (1 + Rng.int rng 2)
          else 0.05 +. Rng.float rng 5.0
        in
        g := Graph.with_cost !g x c1;
        edits :=
          { Dynamic_sssp.x; nbrs = Graph.neighbors !g x; c0; c1 }
          :: List.filter (fun e -> e.Dynamic_sssp.x <> x) !edits
      end
    done;
    let fresh = oracle () in
    (match
       Dynamic_sssp.repair_node_dist scratch ~forbidden ~graph:!g ~source ~dist
         !edits
     with
    | `Patched _ -> ()
    | `Overflow -> Array.blit fresh 0 dist 0 n);
    Array.iteri
      (fun v dv ->
        if not (Float.equal dv dist.(v)) then
          Alcotest.failf "burst %d: dist.(%d) = %.17g, oracle %.17g" burst v
            dist.(v) dv)
      fresh
  done;
  true

(* Pinned fallback triggers ------------------------------------------- *)

let test_tie_fallback () =
  (* 0 -> 1 -> 3 and 0 -> 2; inserting 2 -> 3 at weight 1 creates a
     second path to 3 at the bit-identical distance 2.0 with a different
     parent: the repair must refuse to guess and rebuild. *)
  let g =
    Digraph.create ~n:4 ~links:[ (0, 1, 1.0); (1, 3, 1.0); (0, 2, 1.0) ]
  in
  let mirror = Digraph.reverse g in
  let dyn = Dynamic_sssp.create ~graph:g ~mirror ~source:0 in
  Digraph.set_weight g 2 3 1.0;
  Digraph.set_weight mirror 3 2 1.0;
  let outcome =
    Dynamic_sssp.apply dyn [ { Dynamic_sssp.u = 2; v = 3; w0 = infinity; w1 = 1.0 } ]
  in
  (match outcome with
  | Rebuilt { reason = `Tie } -> ()
  | Rebuilt { reason = `Region } -> Alcotest.fail "expected a tie, got region"
  | Patched _ -> Alcotest.fail "tie not detected");
  check_tree_matches "after tie fallback" g 0 dyn

let test_region_fallback () =
  (* rising the first link of a path orphans the whole chain: with a
     budget below the chain length the repair must fall back. *)
  let n = 10 in
  let links = List.init (n - 1) (fun v -> (v, v + 1, 1.0)) in
  let g = Digraph.create ~n ~links in
  let mirror = Digraph.reverse g in
  let dyn = Dynamic_sssp.create ~graph:g ~mirror ~source:0 in
  Digraph.set_weight g 0 1 2.0;
  Digraph.set_weight mirror 1 0 2.0;
  let edits = [ { Dynamic_sssp.u = 0; v = 1; w0 = 1.0; w1 = 2.0 } ] in
  (match Dynamic_sssp.apply ~budget:4 dyn edits with
  | Rebuilt { reason = `Region } -> ()
  | Rebuilt { reason = `Tie } -> Alcotest.fail "expected region, got tie"
  | Patched _ -> Alcotest.fail "budget not enforced");
  check_tree_matches "after region fallback" g 0 dyn

let test_patched_region_sizes () =
  (* off-tree rises touch nothing; an on-tree drop reparenting one node
     touches exactly that node. *)
  let g =
    Digraph.create ~n:3 ~links:[ (0, 1, 1.0); (1, 2, 1.0); (0, 2, 5.0) ]
  in
  let mirror = Digraph.reverse g in
  let dyn = Dynamic_sssp.create ~graph:g ~mirror ~source:0 in
  Digraph.set_weight g 0 2 6.0;
  Digraph.set_weight mirror 2 0 6.0;
  (match
     Dynamic_sssp.apply dyn [ { Dynamic_sssp.u = 0; v = 2; w0 = 5.0; w1 = 6.0 } ]
   with
  | Patched { region = 0 } -> ()
  | _ -> Alcotest.fail "off-tree rise should patch an empty region");
  Digraph.set_weight g 0 2 0.5;
  Digraph.set_weight mirror 2 0 0.5;
  (match
     Dynamic_sssp.apply dyn [ { Dynamic_sssp.u = 0; v = 2; w0 = 6.0; w1 = 0.5 } ]
   with
  | Patched { region = 1 } -> ()
  | _ -> Alcotest.fail "on-tree drop should patch a one-node region");
  check_tree_matches "after drops" g 0 dyn

let test_overflow_recovery () =
  (* `Overflow leaves the dist array corrupted; rebuilding from scratch
     must restore the exact oracle (the session's stale-entry path). *)
  let n = 10 in
  let links = List.init (n - 1) (fun v -> (v, v + 1, 1.0)) in
  let g = Digraph.create ~n ~links in
  let mirror = Digraph.reverse g in
  let scratch = Dynamic_sssp.make_dist_scratch n in
  let dscratch = Dijkstra.make_scratch n in
  let dist = Dijkstra.link_weighted_dist dscratch g 0 in
  Digraph.set_weight g 0 1 2.0;
  Digraph.set_weight mirror 1 0 2.0;
  let edits = [ { Dynamic_sssp.u = 0; v = 1; w0 = 1.0; w1 = 2.0 } ] in
  (match
     Dynamic_sssp.repair_dist scratch ~budget:4 ~graph:g ~mirror ~source:0
       ~dist edits
   with
  | `Overflow -> ()
  | `Patched _ -> Alcotest.fail "budget not enforced");
  let fresh = Dijkstra.link_weighted_dist dscratch g 0 in
  Array.blit fresh 0 dist 0 n;
  (* the scratch survives an aborted run: the next repair is exact *)
  Digraph.set_weight g 8 9 0.25;
  Digraph.set_weight mirror 9 8 0.25;
  (match
     Dynamic_sssp.repair_dist scratch ~graph:g ~mirror ~source:0 ~dist
       [ { Dynamic_sssp.u = 8; v = 9; w0 = 1.0; w1 = 0.25 } ]
   with
  | `Patched _ -> ()
  | `Overflow -> Alcotest.fail "unexpected overflow");
  let oracle = Dijkstra.link_weighted_dist dscratch g 0 in
  Array.iteri
    (fun v dv ->
      if not (Float.equal dv dist.(v)) then
        Alcotest.failf "dist.(%d) = %.17g, oracle %.17g" v dist.(v) dv)
    oracle

let suite =
  [
    Alcotest.test_case "tie fallback pinned" `Quick test_tie_fallback;
    Alcotest.test_case "region fallback pinned" `Quick test_region_fallback;
    Alcotest.test_case "patched region sizes" `Quick test_patched_region_sizes;
    Alcotest.test_case "overflow recovery" `Quick test_overflow_recovery;
    Test_util.qcheck_case ~count:120 "tree repair == oracle (generic weights)"
      Test_util.seed_gen
      (tree_prop ~tied:false);
    Test_util.qcheck_case ~count:120 "tree repair == oracle (tied weights)"
      Test_util.seed_gen (tree_prop ~tied:true);
    Test_util.qcheck_case ~count:120 "dist repair == oracle" Test_util.seed_gen
      dist_prop;
    Test_util.qcheck_case ~count:120 "node dist repair == oracle"
      Test_util.seed_gen node_dist_prop;
  ]
