(* Wnet_proto round-trip properties: the canonical printer and parser
   are mutual inverses — [parse (print x) = x] with floats compared by
   [Float.equal], so exact down to the bit, including infinities —
   plus the explicit error channel on malformed input, and the generic
   [handle] driver on both session models. *)

module P = Wnet_proto
module W = Wnet_session
open QCheck2

(* ---------------- generators ---------------- *)

let float_gen =
  Gen.oneof
    [
      Gen.float;
      Gen.map2 ( /. ) Gen.float (Gen.float_range 1e-3 1e3);
      Gen.oneofl [ 0.0; -0.0; 1.0; 4.5; 1.0 /. 3.0; 1e-300; 3e300; infinity ];
    ]

let node_gen = Gen.int_range 0 9999
let endpoint_gen = Gen.pair node_gen float_gen
let endpoints_gen = Gen.list_size (Gen.int_range 0 4) endpoint_gen

let request_gen =
  Gen.oneof
    [
      Gen.map2 (fun node cost -> P.Cost_node { node; cost }) node_gen float_gen;
      Gen.map3 (fun u v w -> P.Cost_link { u; v; w }) node_gen node_gen
        float_gen;
      Gen.map2 (fun out inn -> P.Join { out; inn }) endpoints_gen endpoints_gen;
      Gen.map3
        (fun node out inn -> P.Rejoin { node; out; inn })
        node_gen endpoints_gen endpoints_gen;
      Gen.map (fun node -> P.Leave { node }) node_gen;
      Gen.map (fun proto -> P.Proto { proto }) (Gen.int_range 0 255);
      Gen.map (fun session -> P.Attach { session }) (Gen.int_range 0 9999);
      Gen.oneofl [ P.Pay; P.Stats; P.Quit ];
    ]

(* Error messages travel as the rest of the line: any single-spaced
   printable text without leading/trailing blanks round-trips. *)
let message_gen =
  let word =
    Gen.string_size ~gen:(Gen.oneofl [ 'a'; 'z'; 'Q'; '0'; ':'; '_' ])
      (Gen.int_range 1 8)
  in
  Gen.map (String.concat " ") (Gen.list_size (Gen.int_range 0 4) word)

let path_gen = Gen.list_size (Gen.int_range 1 6) node_gen
let count_gen = Gen.int_range 0 100000

let stats_gen =
  Gen.map3
    (fun ((edits, coalesced_edits), (avoid_bounded, avoid_fallback))
         ((inval_passes, spt_runs), (tasks_executed, tasks_stolen))
         ((avoid_runs, avoid_reused), (repaired_entries, fallback_recomputes)) ->
      {
        W.edits;
        coalesced_edits;
        inval_passes;
        spt_runs;
        avoid_runs;
        avoid_reused;
        repaired_entries;
        fallback_recomputes;
        tasks_executed;
        tasks_stolen;
        avoid_bounded;
        avoid_fallback;
      })
    (Gen.pair (Gen.pair count_gen count_gen) (Gen.pair count_gen count_gen))
    (Gen.pair (Gen.pair count_gen count_gen) (Gen.pair count_gen count_gen))
    (Gen.pair (Gen.pair count_gen count_gen) (Gen.pair count_gen count_gen))

let response_gen =
  Gen.oneof
    [
      Gen.map3
        (fun model n (root, domains) ->
          P.Ready { proto = P.version; model; n; root; domains })
        (Gen.oneofl [ `Node; `Link ])
        count_gen
        (Gen.pair node_gen (Gen.int_range 1 64));
      Gen.map2
        (fun version node -> P.Ack { version; node })
        count_gen
        (Gen.opt node_gen);
      Gen.map3
        (fun src path charge -> P.Served { src; path; charge })
        node_gen path_gen float_gen;
      Gen.map3
        (fun served unbounded total -> P.Paid { served; unbounded; total })
        count_gen count_gen float_gen;
      Gen.map (fun st -> P.Session_stats st) stats_gen;
      Gen.map3
        (fun (clients, requests) (edits, coalesced)
             ((cache_hits, cache_misses), (bytes_in, bytes_out)) ->
          P.Server_stats
            {
              clients;
              requests;
              edits;
              coalesced;
              cache_hits;
              cache_misses;
              bytes_in;
              bytes_out;
            })
        (Gen.pair count_gen count_gen)
        (Gen.pair count_gen count_gen)
        (Gen.pair (Gen.pair count_gen count_gen)
           (Gen.pair count_gen count_gen));
      Gen.map3
        (fun (shard, conns) ((requests, edits), (coalesced, inval_passes))
             ( ((cache_hits, cache_misses), (repaired, tasks)),
               (stolen, (bytes_in, bytes_out)) ) ->
          P.Shard_stats
            {
              shard;
              conns;
              requests;
              edits;
              coalesced;
              inval_passes;
              cache_hits;
              cache_misses;
              repaired;
              tasks;
              stolen;
              bytes_in;
              bytes_out;
            })
        (Gen.pair (Gen.int_range 0 9999) count_gen)
        (Gen.pair (Gen.pair count_gen count_gen)
           (Gen.pair count_gen count_gen))
        (Gen.pair
           (Gen.pair (Gen.pair count_gen count_gen)
              (Gen.pair count_gen count_gen))
           (Gen.pair count_gen (Gen.pair count_gen count_gen)));
      Gen.map3
        (fun requests bytes_in (bytes_out, proto) ->
          P.Conn_stats { requests; bytes_in; bytes_out; proto })
        count_gen count_gen
        (Gen.pair count_gen (Gen.int_range 1 255));
      Gen.return P.Bye;
      Gen.map (fun m -> P.Err m) message_gen;
    ]

(* ---------------- structural equality, floats exact ---------------- *)

let endpoints_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (v, w) (v', w') -> v = v' && Float.equal w w')
       a b

let request_equal a b =
  match (a, b) with
  | P.Cost_node { node; cost }, P.Cost_node { node = n'; cost = c' } ->
    node = n' && Float.equal cost c'
  | P.Cost_link { u; v; w }, P.Cost_link { u = u'; v = v'; w = w' } ->
    u = u' && v = v' && Float.equal w w'
  | P.Join { out; inn }, P.Join { out = o'; inn = i' } ->
    endpoints_equal out o' && endpoints_equal inn i'
  | ( P.Rejoin { node; out; inn },
      P.Rejoin { node = n'; out = o'; inn = i' } ) ->
    node = n' && endpoints_equal out o' && endpoints_equal inn i'
  | P.Leave { node }, P.Leave { node = n' } -> node = n'
  | P.Proto { proto }, P.Proto { proto = p' } -> proto = p'
  | P.Attach { session }, P.Attach { session = s' } -> session = s'
  | P.Pay, P.Pay | P.Stats, P.Stats | P.Quit, P.Quit -> true
  | _ -> false

let response_equal a b =
  match (a, b) with
  | ( P.Ready { proto; model; n; root; domains },
      P.Ready { proto = p'; model = m'; n = n'; root = r'; domains = d' } ) ->
    proto = p' && model = m' && n = n' && root = r' && domains = d'
  | P.Ack { version; node }, P.Ack { version = v'; node = n' } ->
    version = v' && node = n'
  | ( P.Served { src; path; charge },
      P.Served { src = s'; path = p'; charge = c' } ) ->
    src = s' && path = p' && Float.equal charge c'
  | ( P.Paid { served; unbounded; total },
      P.Paid { served = s'; unbounded = u'; total = t' } ) ->
    served = s' && unbounded = u' && Float.equal total t'
  | P.Session_stats a, P.Session_stats b -> a = b
  | ( P.Server_stats
        {
          clients;
          requests;
          edits;
          coalesced;
          cache_hits;
          cache_misses;
          bytes_in;
          bytes_out;
        },
      P.Server_stats
        {
          clients = c';
          requests = r';
          edits = e';
          coalesced = co';
          cache_hits = ch';
          cache_misses = cm';
          bytes_in = bi';
          bytes_out = bo';
        } ) ->
    clients = c' && requests = r' && edits = e' && coalesced = co'
    && cache_hits = ch' && cache_misses = cm' && bytes_in = bi'
    && bytes_out = bo'
  | ( P.Shard_stats
        {
          shard;
          conns;
          requests;
          edits;
          coalesced;
          inval_passes;
          cache_hits;
          cache_misses;
          repaired;
          tasks;
          stolen;
          bytes_in;
          bytes_out;
        },
      P.Shard_stats
        {
          shard = s';
          conns = c';
          requests = r';
          edits = e';
          coalesced = co';
          inval_passes = ip';
          cache_hits = ch';
          cache_misses = cm';
          repaired = rp';
          tasks = t';
          stolen = st';
          bytes_in = bi';
          bytes_out = bo';
        } ) ->
    shard = s' && conns = c' && requests = r' && edits = e'
    && coalesced = co' && inval_passes = ip' && cache_hits = ch'
    && cache_misses = cm' && repaired = rp' && tasks = t' && stolen = st'
    && bytes_in = bi' && bytes_out = bo'
  | ( P.Conn_stats { requests; bytes_in; bytes_out; proto },
      P.Conn_stats
        { requests = r'; bytes_in = bi'; bytes_out = bo'; proto = p' } ) ->
    requests = r' && bytes_in = bi' && bytes_out = bo' && proto = p'
  | P.Bye, P.Bye -> true
  | P.Err a, P.Err b -> a = b
  | _ -> false

(* ---------------- properties ---------------- *)

let float_roundtrip_prop f =
  Float.equal (float_of_string (P.float_to_string f)) f

let request_roundtrip_prop r =
  match P.parse_request (P.print_request r) with
  | Ok (Some r') when request_equal r r' -> true
  | Ok (Some r') ->
    Test.fail_reportf "request re-parsed differently: %s vs %s"
      (P.print_request r) (P.print_request r')
  | Ok None -> Test.fail_reportf "request parsed as blank: %s" (P.print_request r)
  | Error m ->
    Test.fail_reportf "request failed to re-parse: %s (%s)" (P.print_request r)
      m

let response_roundtrip_prop r =
  match P.parse_response (P.print_response r) with
  | Ok r' when response_equal r r' -> true
  | Ok r' ->
    Test.fail_reportf "response re-parsed differently: %s vs %s"
      (P.print_response r) (P.print_response r')
  | Error m ->
    Test.fail_reportf "response failed to re-parse: %s (%s)"
      (P.print_response r) m

(* ---------------- units: blanks, errors, handle ---------------- *)

let test_blank_and_comment () =
  Alcotest.(check bool) "blank is silent" true (P.parse_request "" = Ok None);
  Alcotest.(check bool) "spaces are silent" true
    (P.parse_request "   " = Ok None);
  Alcotest.(check bool) "comment is silent" true
    (P.parse_request "# cost 1 2" = Ok None)

let expect_error what line =
  match P.parse_request line with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s should be rejected: %S" what line

let test_malformed () =
  expect_error "bare cost" "cost";
  expect_error "cost arity" "cost 1 2 3 4";
  expect_error "bad number" "cost 1 two";
  expect_error "join without separator" "join 1:2.0";
  expect_error "bad endpoint" "join 1 -- 2:3";
  expect_error "unknown verb" "payments";
  expect_error "bare rejoin" "rejoin"

let test_parse_examples () =
  Alcotest.(check bool) "node cost" true
    (match P.parse_request "cost 3 4.5" with
    | Ok (Some (P.Cost_node { node = 3; cost })) -> Float.equal cost 4.5
    | _ -> false);
  Alcotest.(check bool) "link removal via inf" true
    (match P.parse_request "cost 1 2 inf" with
    | Ok (Some (P.Cost_link { u = 1; v = 2; w })) -> w = infinity
    | _ -> false);
  Alcotest.(check bool) "exit aliases quit" true
    (P.parse_request "exit" = Ok (Some P.Quit))

(* The counter keys of the session stats line, in wire order — the
   table the consolidated parser is driven by. *)
let stats_keys =
  [|
    "edits"; "coalesced"; "inval_passes"; "spt_runs"; "avoid_runs";
    "avoid_reused"; "repaired"; "fallbacks"; "tasks"; "stolen";
    "avoid_bounded"; "avoid_fallback";
  |]

(* One property covering every accepted arity: a 6-, 8-, 10- or
   12-token stats line parses, with the omitted trailing counters read
   as 0. *)
let stats_arity_gen =
  Gen.pair (Gen.oneofl [ 6; 8; 10; 12 ])
    (Gen.array_size (Gen.return 12) count_gen)

let stats_arity_prop (arity, counts) =
  let line =
    "ok "
    ^ String.concat " "
        (List.init arity (fun i ->
             Printf.sprintf "%s=%d" stats_keys.(i) counts.(i)))
  in
  let expect i = if i < arity then counts.(i) else 0 in
  match P.parse_response line with
  | Ok (P.Session_stats st) ->
    st
    = {
        W.edits = expect 0;
        coalesced_edits = expect 1;
        inval_passes = expect 2;
        spt_runs = expect 3;
        avoid_runs = expect 4;
        avoid_reused = expect 5;
        repaired_entries = expect 6;
        fallback_recomputes = expect 7;
        tasks_executed = expect 8;
        tasks_stolen = expect 9;
        avoid_bounded = expect 10;
        avoid_fallback = expect 11;
      }
    || Test.fail_reportf "stats line parsed with wrong counters: %s" line
  | Ok _ -> Test.fail_reportf "stats line parsed as something else: %s" line
  | Error m -> Test.fail_reportf "stats line rejected: %s (%s)" line m

let test_stats_line_compat () =
  (* Pin the wire form of the 12-counter stats line, and the parser's
     acceptance of the 10- and 8-counter lines older peers still send
     (omitted trailing counters default to 0). *)
  (match
     P.parse_response
       "ok edits=1 coalesced=2 inval_passes=3 spt_runs=4 avoid_runs=5 \
        avoid_reused=6 repaired=7 fallbacks=8 tasks=9 stolen=2 \
        avoid_bounded=11 avoid_fallback=12"
   with
  | Ok (P.Session_stats st) ->
    Alcotest.(check bool) "12-token stats line parses exactly" true
      (st
      = {
          W.edits = 1;
          coalesced_edits = 2;
          inval_passes = 3;
          spt_runs = 4;
          avoid_runs = 5;
          avoid_reused = 6;
          repaired_entries = 7;
          fallback_recomputes = 8;
          tasks_executed = 9;
          tasks_stolen = 2;
          avoid_bounded = 11;
          avoid_fallback = 12;
        })
  | _ -> Alcotest.fail "full stats line must parse");
  (match
     P.parse_response
       "ok edits=1 coalesced=2 inval_passes=3 spt_runs=4 avoid_runs=5 \
        avoid_reused=6 repaired=7 fallbacks=8 tasks=9 stolen=2"
   with
  | Ok (P.Session_stats st) ->
    Alcotest.(check bool) "10-token line defaults the bounded counters"
      true
      (st.W.tasks_executed = 9 && st.W.avoid_bounded = 0
     && st.W.avoid_fallback = 0)
  | _ -> Alcotest.fail "10-token stats line must parse");
  (match
     P.parse_response
       "ok edits=1 coalesced=2 inval_passes=3 spt_runs=4 avoid_runs=5 \
        avoid_reused=6 repaired=7 fallbacks=8"
   with
  | Ok (P.Session_stats st) ->
    Alcotest.(check bool) "8-token line defaults the task counters" true
      (st.W.tasks_executed = 0 && st.W.tasks_stolen = 0)
  | _ -> Alcotest.fail "8-token stats line must parse");
  (* an odd arity is not a stats line *)
  (match
     P.parse_response
       "ok edits=1 coalesced=2 inval_passes=3 spt_runs=4 avoid_runs=5 \
        avoid_reused=6 repaired=7"
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "7-token ok line must be rejected");
  (* the conn line parses with and without the trailing proto token *)
  (match P.parse_response "conn requests=3 bytes_in=40 bytes_out=152" with
  | Ok (P.Conn_stats { proto = 1; requests = 3; _ }) -> ()
  | _ -> Alcotest.fail "3-token conn line must parse with proto=1");
  match P.parse_response "conn requests=3 bytes_in=40 bytes_out=152 proto=2" with
  | Ok (P.Conn_stats { proto = 2; _ }) -> ()
  | _ -> Alcotest.fail "4-token conn line must carry its proto"

(* The sharded-server wire additions: the [session N] attach request,
   the per-shard stats row, and the stats-key table staying in lock
   step with Wnet_session's versioned record layout (the printer is
   table-driven off the record, the legacy arities are parse-only). *)
let test_shard_wire () =
  Alcotest.(check (array string)) "stats keys = session record layout"
    stats_keys W.stats_field_names;
  Alcotest.(check bool) "session N parses as an attach" true
    (P.parse_request "session 3" = Ok (Some (P.Attach { session = 3 })));
  Alcotest.(check string) "attach prints as session N" "session 3"
    (P.print_request (P.Attach { session = 3 }));
  let row =
    P.Shard_stats
      {
        shard = 1;
        conns = 2;
        requests = 3;
        edits = 4;
        coalesced = 5;
        inval_passes = 6;
        cache_hits = 7;
        cache_misses = 8;
        repaired = 9;
        tasks = 10;
        stolen = 11;
        bytes_in = 12;
        bytes_out = 13;
      }
  in
  Alcotest.(check string) "shard row wire form"
    "shard id=1 conns=2 requests=3 edits=4 coalesced=5 inval_passes=6 \
     cache_hits=7 cache_misses=8 repaired=9 tasks=10 stolen=11 bytes_in=12 \
     bytes_out=13"
    (P.print_response row);
  (match P.parse_response (P.print_response row) with
  | Ok r ->
    Alcotest.(check bool) "shard row reparses" true (response_equal row r)
  | Error m -> Alcotest.failf "shard row rejected: %s" m);
  Alcotest.(check string) "session stats print through the record"
    ("ok "
    ^ String.concat " "
        (List.map
           (fun (k, v) -> Printf.sprintf "%s=%d" k v)
           (W.to_fields W.zero_stats)))
    (P.print_response (P.Session_stats W.zero_stats))

let fig_digraph () =
  Wnet_graph.Digraph.create ~n:3 ~links:[ (2, 1, 1.0); (1, 0, 1.0) ]

let test_handle_drives_session () =
  let session = W.make ~root:0 (`Link (fig_digraph ())) in
  (match P.greeting session with
  | P.Ready { proto; model = `Link; n = 3; root = 0; domains = 1 } ->
    Alcotest.(check int) "greeting carries the protocol version" P.version
      proto
  | r -> Alcotest.failf "unexpected greeting %s" (P.print_response r));
  (match P.handle session (P.Cost_link { u = 2; v = 0; w = 10.0 }) with
  | [ P.Ack { version = 1; node = None } ] -> ()
  | rs ->
    Alcotest.failf "unexpected ack %s"
      (String.concat "; " (List.map P.print_response rs)));
  let module LC = Wnet_core.Link_cost in
  let edited =
    Wnet_graph.Digraph.create ~n:3
      ~links:[ (2, 1, 1.0); (1, 0, 1.0); (2, 0, 10.0) ]
  in
  let oracle = LC.all_to_root ~strategy:LC.Copy_graph edited ~root:0 in
  let expected src =
    match oracle.LC.results.(src) with
    | Some r -> Array.fold_left ( +. ) 0.0 r.LC.payments
    | None -> Alcotest.failf "oracle must serve source %d" src
  in
  (match P.handle session P.Pay with
  | [
   P.Served { src = 1; path = [ 1; 0 ]; charge = c1 };
   P.Served { src = 2; path = [ 2; 1; 0 ]; charge = c2 };
   P.Paid { served = 2; _ };
  ] ->
    Alcotest.(check bool) "src 1 charge matches the from-scratch oracle" true
      (Float.equal c1 (expected 1));
    Alcotest.(check bool) "src 2 charge matches the from-scratch oracle" true
      (Float.equal c2 (expected 2))
  | rs ->
    Alcotest.failf "unexpected pay reply %s"
      (String.concat "; " (List.map P.print_response rs)));
  (* model mismatch surfaces on the error channel, session survives *)
  (match P.handle session (P.Cost_node { node = 1; cost = 2.0 }) with
  | [ P.Err _ ] -> ()
  | _ -> Alcotest.fail "node delta on a link session must err");
  match P.handle_line session "quit" with
  | `Quit [ P.Bye ] -> ()
  | _ -> Alcotest.fail "quit must reply bye and close"

let suite =
  [
    Alcotest.test_case "blank lines and comments are silent" `Quick
      test_blank_and_comment;
    Alcotest.test_case "malformed requests hit the error channel" `Quick
      test_malformed;
    Alcotest.test_case "worked parse examples" `Quick test_parse_examples;
    Alcotest.test_case "stats line: 10-token form + 8-token compat" `Quick
      test_stats_line_compat;
    Alcotest.test_case "shard wire: session attach + per-shard stats row"
      `Quick test_shard_wire;
    Alcotest.test_case "handle drives a session end to end" `Quick
      test_handle_drives_session;
    Test_util.qcheck_case ~count:500 "float_to_string round-trips bitwise"
      float_gen float_roundtrip_prop;
    Test_util.qcheck_case ~count:500 "parse_request (print_request r) = r"
      request_gen request_roundtrip_prop;
    Test_util.qcheck_case ~count:500 "parse_response (print_response r) = r"
      response_gen response_roundtrip_prop;
    Test_util.qcheck_case ~count:500
      "stats line parses at every arity (6/8/10/12 tokens)" stats_arity_gen
      stats_arity_prop;
  ]
