(* The CSR tentpole's contracts (ISSUE: CSR graph kernels):

   - the flat views are semantically the boxed accessors — [Digraph.csr]
     must agree with [out_links]/[weight] after ANY interleaving of
     in-place weight edits, node growth, and detachment (the in-place
     maintenance and the lazy rebuild must be indistinguishable);
   - the CSR Dijkstra kernels (ban mask, key-only pops, scratch-owned
     result) are [Float.equal]-identical to the boxed closure runs they
     replace, which stay in the tree as the differential oracle;
   - whole payment batches come out bit-identical whichever kernel the
     session fans out, at pool sizes 1 and 3. *)

open Wnet_graph
module Rng = Wnet_prng.Rng

let floats_equal a b =
  Array.length a = Array.length b && Array.for_all2 Float.equal a b

(* ---------------- view ≡ boxed accessors ---------------- *)

(* One structural+weight fuzz: does the CSR view agree with the boxed
   adjacency, row by row, slot by slot? *)
let digraph_csr_agrees g =
  let n = Digraph.n g in
  let { Digraph.row_off; col; wgt } = Digraph.csr g in
  Array.length row_off = n + 1
  && row_off.(0) = 0
  && row_off.(n) = Digraph.m g
  && begin
       let ok = ref true in
       for u = 0 to n - 1 do
         let row = Digraph.out_links g u in
         if row_off.(u + 1) - row_off.(u) <> Array.length row then ok := false
         else
           Array.iteri
             (fun i (v, w) ->
               let s = row_off.(u) + i in
               if col.(s) <> v || not (Float.equal wgt.(s) w) then ok := false)
             row
       done;
       !ok
     end

let random_digraph rng ~n =
  let links = ref [] in
  let p = 3.0 /. float_of_int n in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v && Rng.bernoulli rng p then
        links := (u, v, Rng.float_range rng 0.5 10.0) :: !links
    done
  done;
  Digraph.create ~n ~links:!links

let digraph_edit_prop seed =
  let rng = Rng.create seed in
  let n = 4 + Rng.int rng 17 in
  let g = random_digraph rng ~n in
  (* Interleave reads with edits: a [csr] call between edits exercises
     the in-place weight maintenance on a LIVE cache, not just the lazy
     rebuild at the end. *)
  for _ = 1 to 30 do
    let nn = Digraph.n g in
    (match Rng.int rng 8 with
    | 0 | 1 | 2 | 3 ->
      (* weight set / insert / delete on a random pair *)
      let u = Rng.int rng nn and v = Rng.int rng nn in
      if u <> v then
        let w =
          if Rng.bernoulli rng 0.25 then infinity
          else Rng.float_range rng 0.5 10.0
        in
        Digraph.set_weight g u v w
    | 4 -> ignore (Digraph.add_node g)
    | 5 -> Digraph.detach_node g (Rng.int rng nn)
    | _ ->
      (* materialize the view so the next edit hits a valid cache *)
      ignore (Digraph.csr g));
    if not (digraph_csr_agrees g) then
      QCheck2.Test.fail_reportf "CSR view diverged from out_links/weight"
  done;
  true

let graph_csr_prop seed =
  let rng = Rng.create seed in
  let g = Test_util.random_ring_graph rng in
  let check g =
    let n = Graph.n g in
    let { Graph.row_off; col } = Graph.csr g in
    if row_off.(n) <> 2 * Graph.m g then
      QCheck2.Test.fail_reportf "row_off total <> 2m";
    for v = 0 to n - 1 do
      let row = Graph.neighbors g v in
      if
        row_off.(v + 1) - row_off.(v) <> Array.length row
        || not
             (Array.for_all Fun.id
                (Array.mapi (fun i w -> col.(row_off.(v) + i) = w) row))
      then QCheck2.Test.fail_reportf "CSR row %d diverged from neighbors" v
    done;
    if not (floats_equal (Graph.costs_view g) (Graph.costs g)) then
      QCheck2.Test.fail_reportf "costs_view diverged from costs"
  in
  check g;
  (* removal rebuilds the view; cost swaps share it *)
  check (Graph.remove_node g (Rng.int rng (Graph.n g)));
  check (Graph.with_cost g (Rng.int rng (Graph.n g)) 42.0);
  true

let egraph_csr_prop seed =
  let rng = Rng.create seed in
  let n = 4 + Rng.int rng 12 in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Rng.bernoulli rng 0.3 then
        edges := (u, v, Rng.float_range rng 0.5 10.0) :: !edges
    done
  done;
  let g = Egraph.create ~n ~edges:!edges in
  let { Egraph.row_off; ncol; ecol } = Egraph.csr g in
  for v = 0 to n - 1 do
    let row = Egraph.incident g v in
    if row_off.(v + 1) - row_off.(v) <> Array.length row then
      QCheck2.Test.fail_reportf "CSR row %d length diverged from incident" v;
    Array.iteri
      (fun i (nbr, e) ->
        let s = row_off.(v) + i in
        if ncol.(s) <> nbr || ecol.(s) <> e then
          QCheck2.Test.fail_reportf "CSR slot diverged from incident")
      row
  done;
  floats_equal (Egraph.weights_view g) (Egraph.weights g)

(* ---------------- CSR kernels ≡ boxed closure runs ---------------- *)

let link_kernel_prop seed =
  let rng = Rng.create seed in
  let n = 4 + Rng.int rng 25 in
  let g = random_digraph rng ~n in
  let scratch = Dijkstra.make_scratch n in
  let oracle = Dijkstra.make_scratch n in
  for _ = 1 to 5 do
    let source = Rng.int rng n in
    let avoid =
      let k = Rng.int rng n in
      if k = source then -1 else k
    in
    let expect =
      if avoid < 0 then Dijkstra.link_weighted_dist oracle g source
      else
        Dijkstra.link_weighted_dist oracle ~forbidden:(fun v -> v = avoid) g
          source
    in
    let got = Dijkstra.link_weighted_dist_csr scratch ~avoid g source in
    if not (floats_equal got expect) then
      QCheck2.Test.fail_reportf "CSR link kernel diverged from boxed oracle";
    (* the convenience wrapper must leave the ban mask clean *)
    if Bytes.exists (fun c -> c <> '\000') (Dijkstra.ban_mask scratch) then
      QCheck2.Test.fail_reportf "ban mask left dirty";
    (* a weight edit between runs must be visible through the cached view *)
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v then Digraph.set_weight g u v (Rng.float_range rng 0.5 10.0)
  done;
  true

let node_kernel_prop seed =
  let rng = Rng.create seed in
  let g = Test_util.random_sparse_graph rng in
  let n = Graph.n g in
  let scratch = Dijkstra.make_scratch n in
  let oracle = Dijkstra.make_scratch n in
  for _ = 1 to 5 do
    let source = Rng.int rng n in
    let avoid =
      let k = Rng.int rng n in
      if k = source then -1 else k
    in
    let expect =
      if avoid < 0 then Dijkstra.node_weighted_dist oracle g ~source
      else
        Dijkstra.node_weighted_dist oracle ~forbidden:(fun v -> v = avoid) g
          ~source
    in
    let got = Dijkstra.node_weighted_dist_csr scratch ~avoid g ~source in
    if not (floats_equal got expect) then
      QCheck2.Test.fail_reportf "CSR node kernel diverged from boxed oracle"
  done;
  true

let test_scratch_result_is_internal () =
  (* [*_scratch] returns the scratch's own array: capacity-sized, reused
     by the next run. *)
  let g = Digraph.create ~n:3 ~links:[ (0, 1, 1.0); (1, 2, 2.0) ] in
  let s = Dijkstra.make_scratch 8 in
  let d = Dijkstra.link_weighted_scratch s g 0 in
  Alcotest.(check int) "capacity-sized" 8 (Array.length d);
  Test_util.check_float "dist" 3.0 d.(2);
  let d' = Dijkstra.link_weighted_scratch s g 2 in
  Alcotest.(check bool) "same array reused" true (d == d');
  Test_util.check_float "overwritten" 0.0 d.(2)

let test_banned_source_rejected () =
  let g = Digraph.create ~n:2 ~links:[ (0, 1, 1.0) ] in
  let s = Dijkstra.make_scratch 2 in
  Bytes.set (Dijkstra.ban_mask s) 0 '\001';
  Alcotest.check_raises "banned source"
    (Invalid_argument "Dijkstra: source is forbidden") (fun () ->
      ignore (Dijkstra.link_weighted_scratch s g 0))

let avoiding_cost_prop seed =
  let rng = Rng.create seed in
  let g = Test_util.random_sparse_graph rng in
  let n = Graph.n g in
  let scratch = Dijkstra.make_scratch n in
  let src = Rng.int rng n in
  let dst = (src + 1 + Rng.int rng (n - 1)) mod n in
  let avoid = Rng.int rng n in
  if avoid = src || avoid = dst then true
  else begin
    let slow = Avoid.avoiding_cost g ~src ~dst ~avoid in
    let fast = Avoid.avoiding_cost ~scratch g ~src ~dst ~avoid in
    Float.equal slow fast
    && not (Bytes.exists (fun c -> c <> '\000') (Dijkstra.ban_mask scratch))
  end

(* ---------------- sessions: Csr vs Boxed payments ---------------- *)

module LS = Wnet_session.Link_session
module LC = Wnet_core.Link_cost
module U = Wnet_core.Unicast

let link_batch_equal (a : LC.batch) (b : LC.batch) =
  a.LC.root = b.LC.root
  && floats_equal a.LC.to_root_dist b.LC.to_root_dist
  && Array.for_all2
       (fun x y ->
         match (x, y) with
         | None, None -> true
         | Some (x : LC.t), Some (y : LC.t) ->
           x.LC.path = y.LC.path
           && Float.equal x.LC.lcp_cost y.LC.lcp_cost
           && floats_equal x.LC.payments y.LC.payments
         | _ -> false)
       a.LC.results b.LC.results

let link_session_kernel_prop seed =
  let rng = Rng.create seed in
  let n = 6 + Rng.int rng 19 in
  let g = random_digraph rng ~n in
  Wnet_par.with_pool ~domains:3 (fun pool ->
      let batches =
        List.map
          (fun (pool, kernel) ->
            match pool with
            | None -> LC.all_to_root ~kernel g ~root:0
            | Some pool -> LC.all_to_root ~pool ~kernel g ~root:0)
          [ (None, `Csr); (None, `Boxed); (Some pool, `Csr); (Some pool, `Boxed) ]
      in
      match batches with
      | b :: rest ->
        if not (List.for_all (link_batch_equal b) rest) then
          QCheck2.Test.fail_reportf
            "link payments differ across kernels/pool sizes";
        true
      | [] -> false)

let node_session_kernel_prop seed =
  let rng = Rng.create seed in
  let g = Test_util.random_ring_graph rng in
  Wnet_par.with_pool ~domains:3 (fun pool ->
      let outcomes_equal a b =
        Array.for_all2
          (fun x y ->
            match (x, y) with
            | None, None -> true
            | Some (x : U.t), Some (y : U.t) ->
              x.U.path = y.U.path
              && Float.equal x.U.lcp_cost y.U.lcp_cost
              && floats_equal x.U.payments y.U.payments
            | _ -> false)
          a b
      in
      let base = U.all_to_root ~kernel:`Csr g ~root:0 in
      List.for_all
        (fun r -> outcomes_equal base r)
        [
          U.all_to_root ~kernel:`Boxed g ~root:0;
          U.all_to_root ~pool ~kernel:`Csr g ~root:0;
          U.all_to_root ~pool ~kernel:`Boxed g ~root:0;
        ])

(* Edited sessions: the kernel choice must stay invisible through a
   burst of edits (cache repair fills misses with whichever kernel). *)
let link_session_edit_kernel_prop seed =
  let rng = Rng.create seed in
  let n = 6 + Rng.int rng 15 in
  let g = random_digraph rng ~n in
  let s_csr = LS.create g ~root:0 in
  let s_box = LS.create ~kernel:`Boxed g ~root:0 in
  let batches_equal () =
    let a = LS.payments s_csr and b = LS.payments s_box in
    floats_equal a.LS.to_root_dist b.LS.to_root_dist
    && Array.for_all2
         (fun x y ->
           match (x, y) with
           | None, None -> true
           | Some (x : LS.outcome), Some (y : LS.outcome) ->
             x.LS.path = y.LS.path && floats_equal x.LS.payments y.LS.payments
           | _ -> false)
         a.LS.results b.LS.results
  in
  if not (batches_equal ()) then
    QCheck2.Test.fail_reportf "initial batches differ";
  for _ = 1 to 8 do
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v then begin
      let w =
        if Rng.bernoulli rng 0.2 then infinity
        else Rng.float_range rng 0.5 10.0
      in
      LS.set_cost s_csr u v w;
      LS.set_cost s_box u v w
    end;
    if not (batches_equal ()) then
      QCheck2.Test.fail_reportf "batches diverged after edit"
  done;
  true

let suite =
  [
    Test_util.qcheck_case ~count:60 "digraph CSR = out_links under edits"
      Test_util.seed_gen digraph_edit_prop;
    Test_util.qcheck_case ~count:60 "graph CSR = neighbors"
      Test_util.seed_gen graph_csr_prop;
    Test_util.qcheck_case ~count:60 "egraph CSR = incident"
      Test_util.seed_gen egraph_csr_prop;
    Test_util.qcheck_case ~count:60 "link CSR kernel = boxed oracle"
      Test_util.seed_gen link_kernel_prop;
    Test_util.qcheck_case ~count:60 "node CSR kernel = boxed oracle"
      Test_util.seed_gen node_kernel_prop;
    Alcotest.test_case "scratch kernels return internal array" `Quick
      test_scratch_result_is_internal;
    Alcotest.test_case "banned source rejected" `Quick
      test_banned_source_rejected;
    Test_util.qcheck_case ~count:60 "avoiding_cost scratch = tree run"
      Test_util.seed_gen avoiding_cost_prop;
    Test_util.qcheck_case ~count:20 "link payments: kernels x pools identical"
      Test_util.seed_gen link_session_kernel_prop;
    Test_util.qcheck_case ~count:20 "node payments: kernels x pools identical"
      Test_util.seed_gen node_session_kernel_prop;
    Test_util.qcheck_case ~count:20 "link sessions: kernels agree under edits"
      Test_util.seed_gen link_session_edit_kernel_prop;
  ]
