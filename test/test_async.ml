open Wnet_dsim

(* The distributed protocols must be schedule-oblivious: running them
   under random per-message delays has to reach the same fixed point as
   the synchronous rounds (and hence the centralized computation). *)

let test_async_spt_matches_sync () =
  let r = Test_util.rng 160 in
  for _ = 1 to 15 do
    let n = 5 + Wnet_prng.Rng.int r 25 in
    let g = Wnet_topology.Gnp.connected_graph r ~n ~p:0.2 ~cost_lo:0.5 ~cost_hi:5.0 in
    let states, stats = Spt_protocol.run_async ~rng:(Wnet_prng.Rng.split r) g ~root:0 in
    Alcotest.(check bool) "converged" true stats.Async_engine.converged;
    let tree = Wnet_graph.Dijkstra.node_weighted g ~source:0 in
    Array.iteri
      (fun v (s : Spt_protocol.node_state) ->
        Test_util.check_float "async distance = Dijkstra"
          (Wnet_graph.Dijkstra.dist tree v)
          s.Spt_protocol.dist)
      states
  done

let test_async_payment_matches_centralized () =
  let r = Test_util.rng 161 in
  let exercised = ref 0 in
  for _ = 1 to 12 do
    match
      Wnet_topology.Gnp.biconnected_graph r ~n:(5 + Wnet_prng.Rng.int r 15) ~p:0.3
        ~cost_lo:0.5 ~cost_hi:5.0 ~max_tries:50
    with
    | None -> ()
    | Some g ->
      incr exercised;
      let (payments, accusations), stats =
        Payment_protocol.run_async ~rng:(Wnet_prng.Rng.split r) g ~root:0
      in
      Alcotest.(check bool) "converged" true stats.Async_engine.converged;
      Alcotest.(check (list (pair int int))) "no accusations" [] accusations;
      let reference = Payment_protocol.centralized_reference g ~root:0 in
      Array.iteri
        (fun i expected ->
          Alcotest.(check int) "table size"
            (List.length expected)
            (List.length payments.(i));
          List.iter2
            (fun (k1, p1) (k2, p2) ->
              Alcotest.(check int) "same relay" k1 k2;
              Alcotest.(check bool) "same payment" true
                (Test_util.approx ~eps:1e-6 p1 p2))
            payments.(i) expected)
        reference
  done;
  Alcotest.(check bool) "exercised" true (!exercised > 5)

let test_async_verified_defeats_liar () =
  let r = Test_util.rng 162 in
  for _ = 1 to 10 do
    let n = 6 + Wnet_prng.Rng.int r 20 in
    let g = Wnet_topology.Gnp.connected_graph r ~n ~p:0.25 ~cost_lo:0.5 ~cost_hi:5.0 in
    let liar = 1 + Wnet_prng.Rng.int r (n - 1) in
    let behaviours v =
      if v = liar then Spt_protocol.Inflate_distance 500.0 else Spt_protocol.Honest
    in
    let states, stats =
      Spt_protocol.run_async ~behaviours ~verified:true
        ~rng:(Wnet_prng.Rng.split r) g ~root:0
    in
    Alcotest.(check bool) "converged" true stats.Async_engine.converged;
    let tree = Wnet_graph.Dijkstra.node_weighted g ~source:0 in
    Array.iteri
      (fun v (s : Spt_protocol.node_state) ->
        Test_util.check_float "true SPT despite async liar"
          (Wnet_graph.Dijkstra.dist tree v)
          s.Spt_protocol.dist)
      states
  done

let test_async_determinism () =
  let g =
    Wnet_topology.Gnp.connected_graph (Test_util.rng 163) ~n:20 ~p:0.2
      ~cost_lo:1.0 ~cost_hi:5.0
  in
  let run seed =
    let states, stats = Spt_protocol.run_async ~rng:(Test_util.rng seed) g ~root:0 in
    (Array.map (fun (s : Spt_protocol.node_state) -> s.Spt_protocol.dist) states, stats.Async_engine.deliveries)
  in
  let d1, n1 = run 7 and d2, n2 = run 7 in
  Alcotest.(check (array (float 0.0))) "same distances" d1 d2;
  Alcotest.(check int) "same delivery count" n1 n2;
  (* different schedule, same fixed point *)
  let d3, _ = run 8 in
  Array.iteri (fun i x -> Test_util.check_float "schedule oblivious" x d3.(i)) d1

let test_async_delay_validation () =
  let g = Wnet_topology.Fixtures.ring ~costs:(Array.make 4 1.0) in
  Alcotest.check_raises "bad delays"
    (Invalid_argument "Async_engine.run: need 0 < min_delay <= max_delay")
    (fun () ->
      ignore
        (Spt_protocol.run_async ~rng:(Test_util.rng 1) g ~root:0 |> ignore;
         Async_engine.run ~min_delay:0.0 ~rng:(Test_util.rng 1) g
           {
             Engine.init = (fun _ -> ());
             step = (fun ~node:_ ~round:_ ~event:_ ~inbox:_ ~outbox:_ s -> s);
           }))

let test_async_event_cap () =
  (* A protocol that always replies never quiesces: the cap stops it. *)
  let spec =
    {
      Engine.init = (fun _ -> ());
      step =
        (fun ~node:_ ~round:_ ~event:_ ~inbox:_ ~outbox s ->
          Engine.broadcast outbox ();
          s);
    }
  in
  let g = Wnet_topology.Fixtures.ring ~costs:(Array.make 4 1.0) in
  let _, stats = Async_engine.run ~max_events:500 ~rng:(Test_util.rng 2) g spec in
  Alcotest.(check bool) "not converged" false stats.Async_engine.converged;
  Alcotest.(check bool) "stopped promptly" true (stats.Async_engine.deliveries <= 501)

let test_async_event_index () =
  (* Pinned: the async engine reports an explicit per-delivery event
     index, not the round counter it once conflated with step count.
     Seed steps see round 0 / event -1; delivery steps see round 1 and
     events 0, 1, 2, ... in schedule order, ending at deliveries - 1. *)
  let seed_obs = ref [] in
  let delivery_rounds = ref [] in
  let events = ref [] in
  let spec =
    {
      Engine.init = (fun _ -> ());
      step =
        (fun ~node:_ ~round ~event ~inbox ~outbox s ->
          if Engine.inbox_is_empty inbox then begin
            seed_obs := (round, event) :: !seed_obs;
            Engine.broadcast outbox ()
          end
          else begin
            delivery_rounds := round :: !delivery_rounds;
            events := event :: !events
          end;
          s);
    }
  in
  let g = Wnet_topology.Fixtures.ring ~costs:(Array.make 4 1.0) in
  let _, stats = Async_engine.run ~rng:(Test_util.rng 3) g spec in
  Alcotest.(check (list (pair int int)))
    "seed steps: round 0, event -1"
    [ (0, -1); (0, -1); (0, -1); (0, -1) ]
    !seed_obs;
  List.iter
    (fun r -> Alcotest.(check int) "delivery steps: round 1" 1 r)
    !delivery_rounds;
  Alcotest.(check (list int))
    "event indices count every delivery in order"
    (List.init stats.Async_engine.deliveries (fun i -> i))
    (List.rev !events)

let suite =
  [
    Alcotest.test_case "async SPT = Dijkstra" `Quick test_async_spt_matches_sync;
    Alcotest.test_case "async payments = centralized" `Quick test_async_payment_matches_centralized;
    Alcotest.test_case "async verified defeats liar" `Quick test_async_verified_defeats_liar;
    Alcotest.test_case "determinism & schedule obliviousness" `Quick test_async_determinism;
    Alcotest.test_case "delay validation" `Quick test_async_delay_validation;
    Alcotest.test_case "event cap" `Quick test_async_event_cap;
    Alcotest.test_case "explicit event index" `Quick test_async_event_index;
  ]
