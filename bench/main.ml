(* Benchmark and experiment harness.

     dune exec bench/main.exe                 micro-benches + quick experiments
     dune exec bench/main.exe -- micro        Bechamel micro-benchmarks only
     dune exec bench/main.exe -- micro --json micro + batch + session, JSON telemetry
     dune exec bench/main.exe -- batch        batch payment engine: seq vs parallel
     dune exec bench/main.exe -- session      incremental session vs full batch
     dune exec bench/main.exe -- server       coalesced delta bursts vs eager flushes
     dune exec bench/main.exe -- avoid        subtree-bounded avoidance kernel vs full-CSR
     dune exec bench/main.exe -- secondpath   Yen gap study: seq vs stolen spur tasks
     dune exec bench/main.exe -- dsim         distributed rounds at scale (1k..20k nodes)
     dune exec bench/main.exe -- microprims   per-primitive suite (bench/micro/) inline
     dune exec bench/main.exe -- experiments  every Figure 3 panel + studies
     dune exec bench/main.exe -- full         paper-scale experiments (100 instances)

   The micro-benchmarks time the paper's Algorithm 1 against the naive
   payment computation (the Sec. III-B complexity claim), plus the
   primitives they are built from.  The batch suite times the all-to-root
   payment engines — sequential vs Wnet_par domain pool, graph-copy vs
   zero-copy avoidance — at n in {100, 200, 400, 800}.  The session suite
   times single-edit incremental recomputes against from-scratch batches
   at the same sizes; the server suite times a coalesced k-edit burst
   (one invalidation pass) against k eager single-edit flushes; the
   second-path suite times the Yen-dominated gap study sequentially vs
   with spur tasks fanned out through the work-stealing scheduler, and
   records the steal ratio its pool observed.  With
   [--json] (what [make bench] runs) results land in
   bench/results/BENCH_latest.json plus a timestamped copy, the
   machine-readable perf trajectory; with [--gate] the run first stashes
   the previous BENCH_latest.json and fails if any headline (batch,
   session, or server) metric slowed down by more than 20%.  Two
   defences keep the gate honest on a noisy shared box: baselines are
   scaled by a machine-speed canary (a fixed kernel timed with every
   run, stored in the file), and any row that still looks regressed is
   re-measured once with a doubled budget before it can fail the run.
   The experiment mode regenerates every panel of Figure 3 and the
   worked examples; EXPERIMENTS.md records a full run. *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks                                                     *)

let udg_instance seed ~n =
  let rng = Wnet_prng.Rng.create seed in
  let t =
    match
      Wnet_topology.Udg.generate_connected rng
        ~region:Wnet_geom.Region.paper_region ~n ~range:300.0 ~max_tries:100
    with
    | Some t -> t
    | None -> Wnet_topology.Udg.paper_instance rng ~n
  in
  let costs = Wnet_topology.Udg.uniform_node_costs rng ~n ~lo:1.0 ~hi:10.0 in
  Wnet_topology.Udg.node_graph t ~costs

let farthest g root =
  let t = Wnet_graph.Dijkstra.node_weighted g ~source:root in
  let best = ref root and d = ref neg_infinity in
  Array.iteri
    (fun v x ->
      if v <> root && Float.is_finite x && x > !d then begin
        best := v;
        d := x
      end)
    t.Wnet_graph.Dijkstra.dist;
  !best

let payment_tests ~n =
  let g = udg_instance 7 ~n in
  let src = farthest g 0 in
  let fast =
    Test.make
      ~name:(Printf.sprintf "alg1-fast/n=%d" n)
      (Staged.stage (fun () ->
           ignore (Wnet_graph.Avoid.replacement_costs_fast g ~src ~dst:0)))
  in
  let naive =
    Test.make
      ~name:(Printf.sprintf "naive/n=%d" n)
      (Staged.stage (fun () ->
           ignore (Wnet_graph.Avoid.replacement_costs_naive g ~src ~dst:0)))
  in
  [ fast; naive ]

let primitive_tests ~n =
  let g = udg_instance 8 ~n in
  let digraph =
    Wnet_topology.Udg.link_graph
      (Wnet_topology.Udg.paper_instance (Wnet_prng.Rng.create 9) ~n)
      ~model:(Wnet_geom.Power.path_loss_only ~kappa:2.0)
  in
  [
    Test.make
      ~name:(Printf.sprintf "dijkstra-node/n=%d" n)
      (Staged.stage (fun () ->
           ignore (Wnet_graph.Dijkstra.node_weighted g ~source:0)));
    Test.make
      ~name:(Printf.sprintf "dijkstra-link/n=%d" n)
      (Staged.stage (fun () -> ignore (Wnet_graph.Dijkstra.link_weighted digraph 0)));
    Test.make
      ~name:(Printf.sprintf "biconnectivity/n=%d" n)
      (Staged.stage (fun () -> ignore (Wnet_graph.Connectivity.articulation_points g)));
    Test.make
      ~name:(Printf.sprintf "all-to-root-batch/n=%d" n)
      (Staged.stage (fun () -> ignore (Wnet_core.Unicast.all_to_root g ~root:0)));
  ]

let edge_tests ~n =
  let rng = Wnet_prng.Rng.create 10 in
  let topo = Wnet_topology.Udg.paper_instance rng ~n in
  let g =
    Wnet_graph.Egraph.create ~n
      ~edges:
        (List.map
           (fun (u, v) -> (u, v, Wnet_prng.Rng.float_range rng 1.0 5.0))
           topo.Wnet_topology.Udg.edges)
  in
  let tree = Wnet_graph.Edge_avoid.shortest_tree g ~source:0 in
  let src =
    let best = ref 0 and d = ref neg_infinity in
    for v = 1 to n - 1 do
      let x = Wnet_graph.Dijkstra.dist tree v in
      if Float.is_finite x && x > !d then begin
        best := v;
        d := x
      end
    done;
    !best
  in
  [
    Test.make
      ~name:(Printf.sprintf "edge-hs-fast/n=%d" n)
      (Staged.stage (fun () ->
           ignore (Wnet_graph.Edge_avoid.replacement_costs_fast g ~src ~dst:0)));
    Test.make
      ~name:(Printf.sprintf "edge-naive/n=%d" n)
      (Staged.stage (fun () ->
           ignore (Wnet_graph.Edge_avoid.replacement_costs_naive g ~src ~dst:0)));
  ]

let run_micro () =
  let tests =
    Test.make_grouped ~name:"unicast"
      (payment_tests ~n:100 @ payment_tests ~n:200 @ payment_tests ~n:400
     @ primitive_tests ~n:200 @ edge_tests ~n:200)
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let table = Wnet_stats.Table.make ~headers:[ "benchmark"; "time/run"; "r^2" ] in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let time_ns =
        match Analyze.OLS.estimates ols with
        | Some [ t ] when Float.is_finite t -> Some t
        | _ -> None
      in
      let time =
        match time_ns with
        | Some t ->
          if t > 1e6 then Printf.sprintf "%.3f ms" (t /. 1e6)
          else if t > 1e3 then Printf.sprintf "%.3f us" (t /. 1e3)
          else Printf.sprintf "%.0f ns" t
        | None -> "n/a"
      in
      let r2 = Analyze.OLS.r_square ols in
      let r2_s =
        match r2 with Some r -> Printf.sprintf "%.4f" r | None -> "-"
      in
      rows := ((name, time, r2_s), (name, time_ns, r2)) :: !rows)
    results;
  let rows = List.sort compare !rows in
  List.iter
    (fun ((a, b, c), _) -> Wnet_stats.Table.add_row table [ a; b; c ])
    rows;
  print_endline "== Bechamel micro-benchmarks (time per call) ==";
  Wnet_stats.Table.print table;
  print_newline ();
  List.map snd rows

(* ------------------------------------------------------------------ *)
(* Batch payment engine: sequential vs domain-parallel, JSON telemetry  *)

let batch_ns = [ 100; 200; 400; 800 ]

let digraph_instance seed ~n =
  Wnet_topology.Udg.link_graph
    (Wnet_topology.Udg.paper_instance (Wnet_prng.Rng.create seed) ~n)
    ~model:(Wnet_geom.Power.path_loss_only ~kappa:2.0)

type batch_sample = {
  bench : string;
  bn : int;
  domains : int;
  time_s : float;  (* best observed wall-clock of one batch *)
  runs : int;
}

let time_once f =
  let t0 = Unix.gettimeofday () in
  ignore (Sys.opaque_identity (f ()));
  Unix.gettimeofday () -. t0

(* Best-of-k timing: warm up once, then repeat until the budget is spent
   (at least [min_reps] times) and keep the minimum — the usual estimator
   for wall-clock benchmarks on a noisy machine. *)
let time_best ?(budget = 0.6) ?(min_reps = 3) ?(max_reps = 40) f =
  ignore (Sys.opaque_identity (f ()));
  let best = ref infinity and total = ref 0.0 and reps = ref 0 in
  while !reps < min_reps || (!total < budget && !reps < max_reps) do
    let t = time_once f in
    if t < !best then best := t;
    total := !total +. t;
    incr reps
  done;
  (!best, !reps)

let gate_tolerance = 1.20

(* Machine-speed canary: a fixed, library-independent kernel (float
   arithmetic over a fresh boxed array, so CPU clocks and minor-GC cost
   both register) timed alongside every JSON run and stored in the
   file.  The gate divides the fresh canary time by the baseline's to
   estimate how much of an apparent slowdown is the shared box itself
   (frequency scaling, co-tenants) rather than the code, and scales the
   baselines by that factor — clamped to [1.0, 2.5] so a faster box
   never tightens the gate and a hosed box still fails loudly. *)
let canary_work () =
  let a =
    Array.init 32768 (fun i -> 1.0 +. (float_of_int (i land 511) /. 512.0))
  in
  let acc = ref 0.0 in
  for k = 1 to 40 do
    let f = float_of_int k in
    Array.iter (fun x -> acc := !acc +. ((x *. f) /. (x +. f))) a
  done;
  ignore (Sys.opaque_identity !acc)

let measure_canary () = fst (time_best ~budget:0.3 canary_work)

let canary_factor ~canary_now ~canary_old =
  match canary_old with
  | Some c when c > 0.0 -> Float.min 2.5 (Float.max 1.0 (canary_now /. c))
  | _ -> 1.0

(* A best-of-k minimum on a busy shared box is still occasionally
   polluted for a whole budget window (a co-tenant burst outlives every
   rep).  When a freshly measured row looks more than [gate_tolerance]
   slower than the previous baseline, measure it once more with a
   doubled budget and keep the better minimum: a genuine regression
   reproduces, a noise spike does not. *)
let retime ~previous key (t, runs) f =
  match previous with
  | None -> (t, runs)
  | Some rows -> (
    match List.assoc_opt key rows with
    | Some t_old when t_old > 0.0 && t > t_old *. gate_tolerance ->
      let t2, r2 = time_best ~budget:1.2 ~max_reps:80 f in
      let b, n, d = key in
      Printf.printf "  (re-measured %s n=%d domains=%d: %.3f ms -> %.3f ms)\n%!"
        b n d (t *. 1e3)
        (Float.min t t2 *. 1e3);
      (Float.min t t2, runs + r2)
    | _ -> (t, runs))

let run_batch ?previous () =
  let pool_domains = max 4 (Wnet_par.default_domains ()) in
  Wnet_par.with_pool ~domains:pool_domains (fun pool ->
      let samples = ref [] in
      let record bench bn domains f =
        let time_s, runs = retime ~previous (bench, bn, domains) (time_best f) f in
        samples := { bench; bn; domains; time_s; runs } :: !samples
      in
      List.iter
        (fun n ->
          let gn = udg_instance 7 ~n in
          let dg = digraph_instance 9 ~n in
          record "unicast-batch/seq" n 1 (fun () ->
              Wnet_core.Unicast.all_to_root gn ~root:0);
          record "unicast-batch/boxed/seq" n 1 (fun () ->
              Wnet_core.Unicast.all_to_root ~kernel:`Boxed gn ~root:0);
          record "unicast-batch/par" n pool_domains (fun () ->
              Wnet_core.Unicast.all_to_root ~pool gn ~root:0);
          record "linkcost-batch/copy/seq" n 1 (fun () ->
              Wnet_core.Link_cost.all_to_root
                ~strategy:Wnet_core.Link_cost.Copy_graph dg ~root:0);
          record "linkcost-batch/zerocopy/seq" n 1 (fun () ->
              Wnet_core.Link_cost.all_to_root
                ~strategy:Wnet_core.Link_cost.Zero_copy dg ~root:0);
          record "linkcost-batch/boxed/seq" n 1 (fun () ->
              Wnet_core.Link_cost.all_to_root
                ~strategy:Wnet_core.Link_cost.Zero_copy ~kernel:`Boxed dg
                ~root:0);
          record "linkcost-batch/zerocopy/par" n pool_domains (fun () ->
              Wnet_core.Link_cost.all_to_root ~pool dg ~root:0))
        batch_ns;
      (pool_domains, List.rev !samples))

let print_batch (pool_domains, samples) =
  Printf.printf
    "== Batch payment engine (best wall-clock per batch; pool = %d domains, \
     %d core(s) online) ==\n"
    pool_domains
    (Domain.recommended_domain_count ());
  let table =
    Wnet_stats.Table.make ~headers:[ "benchmark"; "n"; "domains"; "time"; "runs" ]
  in
  List.iter
    (fun s ->
      Wnet_stats.Table.add_row table
        [
          s.bench;
          string_of_int s.bn;
          string_of_int s.domains;
          (if s.time_s >= 1.0 then Printf.sprintf "%.3f s" s.time_s
           else Printf.sprintf "%.3f ms" (s.time_s *. 1e3));
          string_of_int s.runs;
        ])
    samples;
  Wnet_stats.Table.print table;
  let find bench n =
    List.find_opt (fun s -> s.bench = bench && s.bn = n) samples
  in
  print_newline ();
  List.iter
    (fun n ->
      match
        ( find "unicast-batch/seq" n,
          find "unicast-batch/par" n,
          find "linkcost-batch/copy/seq" n,
          find "linkcost-batch/zerocopy/seq" n,
          find "linkcost-batch/zerocopy/par" n )
      with
      | Some us, Some up, Some lc, Some lz, Some lp ->
        Printf.printf
          "n=%4d  unicast par/seq speedup %.2fx | link-cost zero-copy/copy \
           %.2fx (seq) | par vs copy baseline %.2fx\n"
          n (us.time_s /. up.time_s) (lc.time_s /. lz.time_s)
          (lc.time_s /. lp.time_s)
      | _ -> ())
    batch_ns;
  List.iter
    (fun n ->
      match
        ( find "unicast-batch/seq" n,
          find "unicast-batch/boxed/seq" n,
          find "linkcost-batch/zerocopy/seq" n,
          find "linkcost-batch/boxed/seq" n )
      with
      | Some uc, Some ub, Some lc, Some lb ->
        Printf.printf
          "n=%4d  CSR kernels vs boxed (seq): unicast %.2fx | link-cost %.2fx\n"
          n (ub.time_s /. uc.time_s) (lb.time_s /. lc.time_s)
      | _ -> ())
    batch_ns;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Incremental session engine vs from-scratch batch                     *)

(* Single-edit workloads on the link-cost session: how much of a batch
   does one topology delta actually cost once the engine reuses every
   avoidance Dijkstra the edit provably cannot touch?

   - cost-change: drift on the slackest unused link — the common case; no
     root-side shortest path moves, so only the shared tree reruns;
   - cost-change-critical: drift on a link the longest served path
     forwards on — the adversarial case; the nodes behind it change
     distance in nearly every avoidance search.  The default session
     patches those searches in place (dynamic SSSP repair, bounded
     affected region); the `/recompute` twin runs the same toggle on a
     `~dynamic:false` session — the PR 2 drop-everything path — so the
     pair measures repair vs recompute directly;
   - leave-rejoin: a non-relay node leaves and rejoins — typical churn;
     two single-edit recomputes per call.

   All runs sequential: the comparison is algorithmic, not a core
   count. *)

let session_targets dg =
  let open Wnet_graph in
  let n = Digraph.n dg in
  let rev = Digraph.reverse dg in
  let tree = Dijkstra.link_weighted rev 0 in
  let dist v = tree.Dijkstra.dist.(v) in
  let parent v = tree.Dijkstra.parent.(v) in
  let is_relay = Array.make n false in
  for v = 1 to n - 1 do
    if Dijkstra.reachable tree v then begin
      let h = parent v in
      if h > 0 then is_relay.(h) <- true
    end
  done;
  (* adversarial target: the link the farthest source's first relay
     forwards on *)
  let far = ref (-1) and fd = ref neg_infinity in
  for v = 1 to n - 1 do
    let x = dist v in
    if Float.is_finite x && x > !fd then begin
      far := v;
      fd := x
    end
  done;
  let critical =
    if !far < 0 then None
    else
      let h = parent !far in
      if h <= 0 then None else Some (h, parent h)
  in
  (* typical target: the unused link with the largest relative slack *)
  let slack = ref None in
  List.iter
    (fun (a, b, w) ->
      let da = dist a and db = dist b in
      if w > 0.0 && Float.is_finite da && Float.is_finite db && parent a <> b
      then begin
        let s = (db +. w -. da) /. w in
        match !slack with
        | Some (s0, _) when s0 >= s -> ()
        | _ -> slack := Some (s, (a, b))
      end)
    (Digraph.links dg);
  let slack_link =
    match !slack with Some (s, l) when s > 0.1 -> Some l | _ -> None
  in
  (* churn target: a served non-relay with the fewest incident links *)
  let leaf = ref None in
  for v = 1 to n - 1 do
    if Dijkstra.reachable tree v && not is_relay.(v) then begin
      let deg =
        Array.length (Digraph.out_links dg v)
        + Array.length (Digraph.out_links rev v)
      in
      match !leaf with
      | Some (d0, _) when d0 <= deg -> ()
      | _ -> leaf := Some (deg, v)
    end
  done;
  match (slack_link, critical, !leaf) with
  | Some sl, Some c, Some (_, leaf) -> Some (sl, c, leaf)
  | _ -> None

let run_session ?previous () =
  let module S = Wnet_session.Link_session in
  (* The incremental workloads are small (ms); heap garbage left by the
     batch + Bechamel suites otherwise charges them a major-GC tax that
     the standalone [session] mode never pays. *)
  Gc.compact ();
  let samples = ref [] in
  let hists = ref [] in
  let record bench bn f =
    let time_s, runs = retime ~previous (bench, bn, 1) (time_best f) f in
    samples := { bench; bn; domains = 1; time_s; runs } :: !samples
  in
  List.iter
    (fun n ->
      let dg = digraph_instance 9 ~n in
      match session_targets dg with
      | None -> ()
      | Some ((su, sv), (cu, cv), leaf) ->
        record "session/full-batch/seq" n (fun () ->
            Wnet_core.Link_cost.all_to_root
              ~strategy:Wnet_core.Link_cost.Zero_copy dg ~root:0);
        let s = S.create dg ~root:0 in
        ignore (S.payments s);
        (* alternate between two weights so every repetition is a real
           edit *)
        let toggle s u v =
          let w0 = S.cost s u v in
          let w1 = w0 *. 1.05 in
          fun () ->
            let w = if Float.equal (S.cost s u v) w0 then w1 else w0 in
            S.set_cost s u v w;
            S.payments s
        in
        record "session/cost-change/seq" n (toggle s su sv);
        record "session/cost-change-critical/seq" n (toggle s cu cv);
        (* the same adversarial toggle with dynamic repair off: every
           affected cache is dropped and rerun from scratch (the PR 2
           baseline the repair path is gated against) *)
        let s0 = S.create ~dynamic:false dg ~root:0 in
        ignore (S.payments s0);
        record "session/cost-change-critical/recompute" n (toggle s0 cu cv);
        (* churn round-trip: leave, payments; rejoin with the old links,
           payments — two single-edit recomputes per call *)
        let snap = S.snapshot s in
        let out_links = Array.to_list (Wnet_graph.Digraph.out_links snap leaf) in
        let in_links =
          Array.to_list
            (Wnet_graph.Digraph.out_links (Wnet_graph.Digraph.reverse snap) leaf)
        in
        record "session/leave-rejoin/seq" n (fun () ->
            S.remove_node s leaf;
            ignore (S.payments s);
            S.rejoin_node s leaf ~out:out_links ~inn:in_links;
            S.payments s);
        (* affected-region sizes every repair on [s] touched above: the
           slack/critical toggles and the churn round-trips *)
        hists := (n, S.region_histogram s) :: !hists)
    batch_ns;
  (List.rev !samples, List.rev !hists)

(* ------------------------------------------------------------------ *)
(* Server workload: coalesced delta bursts vs one-at-a-time flushes     *)

(* The socket server folds a burst of k cost edits — from one client or
   interleaved across several — into ONE invalidation pass over the
   avoidance-cache array at the next flush.  These rows time exactly
   that fold against the pre-coalescing behaviour (an eager pass after
   every edit), on a session whose caches were populated by one
   payments run.  No payments call inside the timed region: the rows
   isolate the invalidation-pass cost the coalescing removes.

   The plain rows run `~dynamic:false` so they keep measuring the
   keep-test pass they always measured; the `-repair` twins run the
   default dynamic session, whose flush *eagerly repairs* the shared
   tree and every fresh avoidance entry — dearer per flush, repaid at
   the next payments (see the session rows), and folding k edits into
   one repair instead of k is exactly what coalescing buys there. *)

let server_burst = 16

let run_server ?previous () =
  let module S = Wnet_session.Link_session in
  Gc.compact ();
  let samples = ref [] in
  let record bench bn f =
    let time_s, runs = retime ~previous (bench, bn, 1) (time_best f) f in
    samples := { bench; bn; domains = 1; time_s; runs } :: !samples
  in
  List.iter
    (fun n ->
      let dg = digraph_instance 9 ~n in
      let links = Array.of_list (Wnet_graph.Digraph.links dg) in
      let k = server_burst in
      if Array.length links >= k then begin
        let step = Array.length links / k in
        let chosen = Array.init k (fun i -> links.(i * step)) in
        (* alternate the whole burst between the original weights and a
           5% bump so every repetition nets k real edits *)
        let make_factor () =
          let flip = ref false in
          fun () ->
            let f = if !flip then 1.05 else 1.0 in
            flip := not !flip;
            f
        in
        let burst s factor () =
          let f = factor () in
          Array.iter (fun (u, v, w) -> S.set_cost s u v (w *. f)) chosen;
          S.flush s
        in
        let eager s factor () =
          let f = factor () in
          Array.iter
            (fun (u, v, w) ->
              S.set_cost s u v (w *. f);
              S.flush s)
            chosen
        in
        let s = S.create ~dynamic:false dg ~root:0 in
        ignore (S.payments s);
        record "server/coalesce-burst/seq" n (burst s (make_factor ()));
        record "server/coalesce-eager/seq" n (eager s (make_factor ()));
        let sd = S.create dg ~root:0 in
        ignore (S.payments sd);
        record "server/coalesce-burst-repair/seq" n (burst sd (make_factor ()));
        record "server/coalesce-eager-repair/seq" n (eager sd (make_factor ()))
      end)
    batch_ns;
  List.rev !samples

(* ------------------------------------------------------------------ *)
(* Subtree-bounded avoidance kernel vs full-CSR sweeps (wnet-bench/10)  *)

(* The `CsrBounded kernel copies exterior distances off the shared tree
   and re-settles only the silenced relay's SPT subtree; the `Csr twin
   answers the same cache misses with one full-graph Dijkstra per
   relay.  Two workloads per n, both sequential so the kernel is the
   only variable:

   - cold-start: a fresh session's first [payments] call — every relay
     is a cache miss (session construction is inside the timed region,
     identically on both sides);
   - cache-miss fill: the adversarial on-tree toggle on a
     [~dynamic:false] session — every flush drops the affected
     avoidance entries and the next [payments] refills them through
     the kernel under test.

   A pooled bounded cold run per n rides along untimed to record the
   work-stealing scheduler's behaviour over region tasks, and the
   region-size histogram the drop-mode bounded session accumulated is
   kept for the JSON file. *)

type avoid_result = {
  av_domains : int;
  av_samples : batch_sample list;
  av_hists : (int * (int * int) list) list;
  av_tasks : int;
  av_stolen : int;
}

let empty_avoid =
  { av_domains = 0; av_samples = []; av_hists = []; av_tasks = 0; av_stolen = 0 }

let run_avoid ?previous () =
  let module S = Wnet_session.Link_session in
  Gc.compact ();
  let pool_domains = max 4 (Wnet_par.default_domains ()) in
  Wnet_par.with_pool ~domains:pool_domains (fun pool ->
      let samples = ref [] and hists = ref [] in
      let tasks = ref 0 and stolen = ref 0 in
      let record bench bn domains f =
        let time_s, runs =
          retime ~previous (bench, bn, domains) (time_best f) f
        in
        samples := { bench; bn; domains; time_s; runs } :: !samples
      in
      List.iter
        (fun n ->
          let dg = digraph_instance 9 ~n in
          match session_targets dg with
          | None -> ()
          | Some (_, (cu, cv), _) ->
            record "avoid/cold-start/bounded" n 1 (fun () ->
                let s = S.create dg ~root:0 in
                S.payments s);
            record "avoid/cold-start/full" n 1 (fun () ->
                let s = S.create ~kernel:`Csr dg ~root:0 in
                S.payments s);
            (* the same alternating toggle the session suite uses, so
               every repetition nets one real edit and one refill *)
            let fill s =
              let w0 = S.cost s cu cv in
              let w1 = w0 *. 1.05 in
              fun () ->
                let w = if Float.equal (S.cost s cu cv) w0 then w1 else w0 in
                S.set_cost s cu cv w;
                S.payments s
            in
            let sb = S.create ~dynamic:false dg ~root:0 in
            ignore (S.payments sb);
            let sf = S.create ~dynamic:false ~kernel:`Csr dg ~root:0 in
            ignore (S.payments sf);
            record "avoid/fill/bounded" n 1 (fill sb);
            record "avoid/fill/full" n 1 (fill sf);
            hists := (n, S.region_histogram sb) :: !hists;
            (* pooled bounded cold run, once, for the steal telemetry *)
            let sp = S.create ~pool dg ~root:0 in
            ignore (S.payments sp);
            let st = S.stats sp in
            tasks := !tasks + st.S.tasks_executed;
            stolen := !stolen + st.S.tasks_stolen)
        batch_ns;
      {
        av_domains = pool_domains;
        av_samples = List.rev !samples;
        av_hists = List.rev !hists;
        av_tasks = !tasks;
        av_stolen = !stolen;
      })

let avoid_speedups samples =
  let find bench n =
    List.find_opt (fun s -> s.bench = bench && s.bn = n) samples
  in
  List.filter_map
    (fun n ->
      match
        ( find "avoid/cold-start/bounded" n,
          find "avoid/cold-start/full" n,
          find "avoid/fill/bounded" n,
          find "avoid/fill/full" n )
      with
      | Some cb, Some cf, Some fb, Some ff ->
        Some (n, cf.time_s /. cb.time_s, ff.time_s /. fb.time_s)
      | _ -> None)
    batch_ns

let avoid_steal_ratio r =
  if r.av_tasks = 0 then 0.0
  else float_of_int r.av_stolen /. float_of_int r.av_tasks

let print_avoid r =
  print_endline
    "== Subtree-bounded avoidance kernel vs full-CSR (sequential) ==";
  let table =
    Wnet_stats.Table.make ~headers:[ "benchmark"; "n"; "domains"; "time"; "runs" ]
  in
  List.iter
    (fun s ->
      Wnet_stats.Table.add_row table
        [
          s.bench;
          string_of_int s.bn;
          string_of_int s.domains;
          (if s.time_s >= 1.0 then Printf.sprintf "%.3f s" s.time_s
           else Printf.sprintf "%.3f ms" (s.time_s *. 1e3));
          string_of_int s.runs;
        ])
    r.av_samples;
  Wnet_stats.Table.print table;
  print_newline ();
  List.iter
    (fun (n, cold, fill) ->
      Printf.printf
        "n=%4d  bounded vs full-CSR: cold start %.2fx | cache-miss fill %.2fx\n"
        n cold fill)
    (avoid_speedups r.av_samples);
  Printf.printf
    "pooled bounded cold runs: tasks=%d stolen=%d steal ratio %.3f (%d domains)\n"
    r.av_tasks r.av_stolen (avoid_steal_ratio r) r.av_domains;
  List.iter
    (fun (n, hist) ->
      let total = List.fold_left (fun a (_, c) -> a + c) 0 hist in
      Printf.printf "n=%4d  region sizes over %d bounded fills: %s\n" n total
        (String.concat " "
           (List.map (fun (lo, c) -> Printf.sprintf ">=%d:%d" lo c) hist)))
    r.av_hists;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Sharded socket server throughput (wnet-bench/8)                      *)

(* End-to-end rounds through the real sharded server: 4 access-point
   sessions pinned round-robin onto 1, 2 or 4 shards, one socket client
   per session, and a timed round = every client sends one cost edit
   plus a pay, then reads its acks and payment lines back.  The s1 row
   is the fused single-threaded loop; s2/s4 put the same byte stream
   through the listener/mailbox/shard path, so on a single-core box the
   rows mostly price the handoff machinery (see EXPERIMENTS.md), while
   on a multi-core box they show the per-shard scaling.  Payments stay
   bit-identical at every shard count — that contract is pinned by the
   test suite and scripts/smoke_shard.sh, not re-checked here. *)

let shard_server_ns = [ 100; 400; 800 ]
let shard_server_counts = [ 1; 2; 4 ]
let shard_server_sessions = 4

let run_shard_server ?previous () =
  Gc.compact ();
  let samples = ref [] in
  let record bench bn domains f =
    let time_s, runs = retime ~previous (bench, bn, domains) (time_best f) f in
    samples := { bench; bn; domains; time_s; runs } :: !samples
  in
  List.iter
    (fun n ->
      let links = Wnet_graph.Digraph.links (digraph_instance 9 ~n) in
      let u, v, w0 = List.hd links in
      List.iter
        (fun shards ->
          let sessions =
            Array.init shard_server_sessions (fun _ ->
                Wnet_session.make ~root:0
                  (`Link (Wnet_graph.Digraph.create ~n ~links)))
          in
          let router =
            Wnet_server.Router.pin ~shards (fun k -> k mod shards)
          in
          let path =
            Filename.concat
              (Filename.get_temp_dir_name ())
              (Printf.sprintf "wnet-bench-shard-%d-%d-%d.sock" (Unix.getpid ())
                 n shards)
          in
          (try Unix.unlink path with Unix.Unix_error _ -> ());
          let server =
            Wnet_server.create ~shards ~router (Wnet_server.Unix_path path)
              sessions
          in
          let th = Thread.create Wnet_server.serve server in
          let conns =
            Array.init shard_server_sessions (fun k ->
                let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
                Unix.connect fd (Unix.ADDR_UNIX path);
                let ic = Unix.in_channel_of_descr fd in
                let oc = Unix.out_channel_of_descr fd in
                ignore (input_line ic);
                if k > 0 then begin
                  output_string oc
                    (Wnet_proto.print_request
                       (Wnet_proto.Attach { session = k }));
                  output_char oc '\n';
                  flush oc;
                  ignore (input_line ic)
                end;
                (fd, ic, oc))
          in
          (* toggle the edited weight so every round nets a real edit;
             writes fan out to every shard before any reply is read *)
          let flip = ref false in
          let round () =
            flip := not !flip;
            let w = if !flip then w0 *. 1.05 else w0 in
            let burst =
              Wnet_proto.print_request (Wnet_proto.Cost_link { u; v; w })
              ^ "\npay\n"
            in
            Array.iter
              (fun (_, _, oc) ->
                output_string oc burst;
                flush oc)
              conns;
            Array.iter
              (fun (_, ic, _) ->
                let rec to_paid () =
                  match Wnet_proto.parse_response (input_line ic) with
                  | Ok (Wnet_proto.Paid _) -> ()
                  | _ -> to_paid ()
                in
                to_paid ())
              conns
          in
          record (Printf.sprintf "server/shard-rps/s%d" shards) n shards round;
          Wnet_server.shutdown server;
          Thread.join th;
          Array.iter
            (fun (fd, _, _) ->
              try Unix.close fd with Unix.Unix_error _ -> ())
            conns)
        shard_server_counts)
    shard_server_ns;
  List.rev !samples

let shard_server_speedups samples =
  let find shards n =
    List.find_opt
      (fun s ->
        s.bench = Printf.sprintf "server/shard-rps/s%d" shards && s.bn = n)
      samples
  in
  List.filter_map
    (fun n ->
      match (find 1 n, find 2 n, find 4 n) with
      | Some s1, Some s2, Some s4 when s2.time_s > 0.0 && s4.time_s > 0.0 ->
        Some (n, s1.time_s /. s2.time_s, s1.time_s /. s4.time_s)
      | _ -> None)
    shard_server_ns

let print_shard_server samples =
  Printf.printf
    "== Sharded server throughput (%d sessions round-robin on 1/2/4 shards; \
     round = one edit + one pay per client) ==\n"
    shard_server_sessions;
  let table =
    Wnet_stats.Table.make
      ~headers:[ "workload"; "n"; "shards"; "round"; "rounds/s"; "runs" ]
  in
  List.iter
    (fun s ->
      Wnet_stats.Table.add_row table
        [
          s.bench;
          string_of_int s.bn;
          string_of_int s.domains;
          Printf.sprintf "%.3f ms" (s.time_s *. 1e3);
          (if s.time_s > 0.0 then Printf.sprintf "%.0f" (1.0 /. s.time_s)
           else "-");
          string_of_int s.runs;
        ])
    samples;
  Wnet_stats.Table.print table;
  print_newline ();
  List.iter
    (fun (n, x2, x4) ->
      Printf.printf "n=%4d  2 shards vs fused: %.2fx   4 shards vs fused: %.2fx\n"
        n x2 x4)
    (shard_server_speedups samples);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Second-path gap study: sequential Yen vs work-stealing spur fan-out  *)

(* The Figure 3(d) mechanism study is Yen-dominated: per source, one
   shortest-path Dijkstra plus one spur Dijkstra per hop of the best
   path.  The parallel rows run the same study with the per-instance
   tasks AND each Yen round's spur searches fanned out through the
   work-stealing scheduler; the output is bit-identical to the
   sequential run (see test/test_ksp.ml), so the rows measure pure
   scheduling overhead or speedup.  A run at n=800 costs seconds, so
   these rows use a reduced rep budget; the steal ratio (stolen tasks /
   tasks executed, over the parallel rows) lands in the JSON next to
   the timings. *)

type second_path_result = {
  sp_domains : int;
  sp_samples : batch_sample list;
  sp_executed : int;
  sp_stolen : int;
}

let run_second_path ?previous () =
  let pool_domains = max 2 (Wnet_par.default_domains ()) in
  Wnet_par.with_pool ~domains:pool_domains (fun pool ->
      Gc.compact ();
      let samples = ref [] in
      let record bench bn domains f =
        let time_s, runs =
          retime ~previous (bench, bn, domains)
            (time_best ~budget:0.3 ~min_reps:1 ~max_reps:8 f)
            f
        in
        samples := { bench; bn; domains; time_s; runs } :: !samples
      in
      let before = Wnet_par.stats pool in
      List.iter
        (fun n ->
          record "second-path/seq" n 1 (fun () ->
              Wnet_experiments.Second_path_exp.study ~n ~instances:1 ~seed:117
                ());
          record "second-path/par" n pool_domains (fun () ->
              Wnet_experiments.Second_path_exp.study ~n ~instances:1 ~pool
                ~seed:117 ()))
        batch_ns;
      let after = Wnet_par.stats pool in
      {
        sp_domains = pool_domains;
        sp_samples = List.rev !samples;
        sp_executed =
          after.Wnet_par.tasks_executed - before.Wnet_par.tasks_executed;
        sp_stolen = after.Wnet_par.tasks_stolen - before.Wnet_par.tasks_stolen;
      })

let second_path_speedups samples =
  let find bench n =
    List.find_opt (fun s -> s.bench = bench && s.bn = n) samples
  in
  List.filter_map
    (fun n ->
      match (find "second-path/seq" n, find "second-path/par" n) with
      | Some sq, Some pr when pr.time_s > 0.0 -> Some (n, sq.time_s /. pr.time_s)
      | _ -> None)
    batch_ns

let steal_ratio r =
  float_of_int r.sp_stolen /. float_of_int (max 1 r.sp_executed)

let print_second_path r =
  Printf.printf
    "== Second-path gap study (Yen): sequential vs stolen spur tasks (pool = \
     %d domains) ==\n"
    r.sp_domains;
  let table =
    Wnet_stats.Table.make ~headers:[ "workload"; "n"; "domains"; "time"; "runs" ]
  in
  List.iter
    (fun s ->
      Wnet_stats.Table.add_row table
        [
          s.bench;
          string_of_int s.bn;
          string_of_int s.domains;
          (if s.time_s >= 1.0 then Printf.sprintf "%.3f s" s.time_s
           else Printf.sprintf "%.3f ms" (s.time_s *. 1e3));
          string_of_int s.runs;
        ])
    r.sp_samples;
  Wnet_stats.Table.print table;
  print_newline ();
  List.iter
    (fun (n, x) ->
      Printf.printf "n=%4d  second-path par/seq speedup: %.2fx\n" n x)
    (second_path_speedups r.sp_samples);
  Printf.printf
    "scheduler: %d task(s) executed on the par rows, %d stolen (ratio %.3f)\n"
    r.sp_executed r.sp_stolen (steal_ratio r);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Per-primitive micro rows (bench/micro/)                              *)

(* The same primitives the one-exe-per-primitive suite runs
   (bench/micro/bench_proto_encode & co.), timed with this harness's
   best-of-k + canary + retime machinery and emitted as headline-shaped
   rows ("micro/<family>/<prim>", n = ops per run), so the 20% gate
   covers the codec and scheduler primitives like any other wall-clock
   metric.  The allocation discipline is measured here too (words/op
   lands in the JSON) but only *asserted* by the standalone exes —
   a bench run should not die on an allocation regression, the gate
   and CI smoke report it. *)

module M = Wnet_microbench

type micro_prim_sample = {
  mp_row : batch_sample;
  mp_ns_per_op : float;
  mp_words_per_op : float option;  (* None on bytecode *)
  mp_alloc_free : bool;
}

let microprim_families () =
  [
    ("proto-encode", M.proto_encode ());
    ("proto-decode", M.proto_decode ());
    ("deque", M.deque ());
    ("heap", M.heap ());
    ("repair", M.repair ());
    ("dijkstra", M.dijkstra ());
    ("avoid", M.avoid ());
    ("avoid-region", M.avoid_region ());
  ]

let run_microprims ?previous () =
  let samples = ref [] in
  List.iter
    (fun (family, prims) ->
      List.iter
        (fun (p : M.prim) ->
          let bench = Printf.sprintf "micro/%s/%s" family p.M.name in
          let time_s, runs =
            retime ~previous (bench, p.M.ops, 1)
              (time_best ~budget:0.2 p.M.run)
              p.M.run
          in
          let words =
            if Sys.backend_type = Sys.Native then
              Some (M.alloc_words_per_op ~reps:8 p)
            else None
          in
          samples :=
            {
              mp_row = { bench; bn = p.M.ops; domains = 1; time_s; runs };
              mp_ns_per_op = time_s /. float_of_int p.M.ops *. 1e9;
              mp_words_per_op = words;
              mp_alloc_free = p.M.alloc_free;
            }
            :: !samples)
        prims)
    (microprim_families ());
  List.rev !samples

(* Binary codec vs the text codec on the same message, per direction:
   the headline claim of the proto=2 work. *)
let proto_codec_speedups mps =
  let find bench =
    List.find_opt (fun s -> s.mp_row.bench = bench) mps
  in
  List.filter_map
    (fun (name, bin, text) ->
      match (find bin, find text) with
      | Some b, Some t when b.mp_ns_per_op > 0.0 ->
        Some (name, b.mp_ns_per_op, t.mp_ns_per_op)
      | _ -> None)
    [
      ( "encode/cost-link",
        "micro/proto-encode/bin/cost-link",
        "micro/proto-encode/text/cost-link" );
      ( "decode/cost-link",
        "micro/proto-decode/bin/view/cost-link",
        "micro/proto-decode/text/cost-link" );
    ]

let print_microprims mps =
  print_endline
    "== Per-primitive micro suite (bench/micro/): ns/op, minor words/op ==";
  let table =
    Wnet_stats.Table.make
      ~headers:[ "primitive"; "ns/op"; "words/op"; "runs" ]
  in
  List.iter
    (fun s ->
      Wnet_stats.Table.add_row table
        [
          s.mp_row.bench;
          Printf.sprintf "%.1f" s.mp_ns_per_op;
          (match s.mp_words_per_op with
          | Some w -> Printf.sprintf "%.3f" w
          | None -> "n/a");
          string_of_int s.mp_row.runs;
        ])
    mps;
  Wnet_stats.Table.print table;
  print_newline ();
  List.iter
    (fun (name, bin_ns, text_ns) ->
      Printf.printf "proto %s: binary %.1f ns/op vs text %.1f ns/op (%.1fx)\n"
        name bin_ns text_ns (text_ns /. bin_ns))
    (proto_codec_speedups mps);
  (match
     List.find_opt
       (fun s ->
         s.mp_alloc_free
         && match s.mp_words_per_op with Some w -> w > 0.01 | None -> false)
       mps
   with
  | Some s ->
    Printf.printf
      "WARNING: %s allocates %.3f minor words/op on a path declared \
       allocation-free (bench/micro exe will fail)\n"
      s.mp_row.bench
      (Option.value ~default:0.0 s.mp_words_per_op)
  | None -> ());
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Distributed simulation at scale (wnet-bench/7)                       *)

(* The stage-2 payment relaxation on sparse connected G(n, 6/n)
   instances, sequential vs the pool-parallel round loop, plus the
   budgeted cost-sharing scenario.  Convergence rounds and deliveries
   are recorded alongside wall time: on a 1-core container the
   deliveries/round ratio is the scaling proxy (the parallel rows only
   spread out on real multi-core hosts; the results are bit-identical
   either way). *)

let dsim_ns = [ 1000; 5000; 10000; 20000 ]

type dsim_convergence = {
  dc_n : int;
  dc_rounds : int;
  dc_deliveries : int;
  dc_converged : bool;
}

type dsim_result = {
  ds_domains : int;
  ds_samples : batch_sample list;
  ds_convergence : dsim_convergence list;
}

let dsim_instance seed ~n =
  let rng = Wnet_prng.Rng.create seed in
  Wnet_topology.Gnp.connected_graph rng ~n
    ~p:(6.0 /. float_of_int (max n 2))
    ~cost_lo:1.0 ~cost_hi:10.0

let run_dsim ?previous () =
  let pool_domains = max 2 (Wnet_par.default_domains ()) in
  Wnet_par.with_pool ~domains:pool_domains (fun pool ->
      Gc.compact ();
      let samples = ref [] and convergence = ref [] in
      let record bench bn domains f =
        let time_s, runs =
          retime ~previous (bench, bn, domains)
            (time_best ~budget:0.3 ~min_reps:1 ~max_reps:4 f)
            f
        in
        samples := { bench; bn; domains; time_s; runs } :: !samples
      in
      List.iter
        (fun n ->
          let g = dsim_instance 23 ~n in
          let seq = ref None in
          record "dsim-payment/seq" n 1 (fun () ->
              seq := Some (Wnet_dsim.Payment_protocol.run g ~root:0));
          record "dsim-payment/par" n pool_domains (fun () ->
              let o = Wnet_dsim.Payment_protocol.run ~pool g ~root:0 in
              (* determinism contract: parallel rounds must reproduce the
                 sequential run bit for bit, stats included *)
              match !seq with
              | Some s
                when s.Wnet_dsim.Payment_protocol.payments
                       <> o.Wnet_dsim.Payment_protocol.payments
                     || s.Wnet_dsim.Payment_protocol.stats.Wnet_dsim.Engine
                          .rounds
                        <> o.Wnet_dsim.Payment_protocol.stats
                             .Wnet_dsim.Engine.rounds ->
                failwith "dsim-payment: parallel run diverged from sequential"
              | _ -> ());
          record "dsim-costshare/seq" n 1 (fun () ->
              Wnet_dsim.Costshare_protocol.run
                ~subscriber:(fun v -> v <> 0)
                ~budget:(fun _ -> infinity)
                g ~root:0);
          (match !seq with
          | Some o ->
            let st = o.Wnet_dsim.Payment_protocol.stats in
            convergence :=
              {
                dc_n = n;
                dc_rounds = st.Wnet_dsim.Engine.rounds;
                dc_deliveries = st.Wnet_dsim.Engine.deliveries;
                dc_converged = st.Wnet_dsim.Engine.converged;
              }
              :: !convergence
          | None -> ()))
        dsim_ns;
      {
        ds_domains = pool_domains;
        ds_samples = List.rev !samples;
        ds_convergence = List.rev !convergence;
      })

let empty_dsim = { ds_domains = 0; ds_samples = []; ds_convergence = [] }

let print_dsim r =
  Printf.printf
    "== Distributed simulation at scale (stage-2 payments + cost-share on \
     G(n, 6/n); pool = %d domains) ==\n"
    r.ds_domains;
  let table =
    Wnet_stats.Table.make ~headers:[ "workload"; "n"; "domains"; "time"; "runs" ]
  in
  List.iter
    (fun s ->
      Wnet_stats.Table.add_row table
        [
          s.bench;
          string_of_int s.bn;
          string_of_int s.domains;
          (if s.time_s >= 1.0 then Printf.sprintf "%.3f s" s.time_s
           else Printf.sprintf "%.3f ms" (s.time_s *. 1e3));
          string_of_int s.runs;
        ])
    r.ds_samples;
  Wnet_stats.Table.print table;
  print_newline ();
  List.iter
    (fun c ->
      Printf.printf
        "n=%6d  payment convergence: %d rounds, %d deliveries (%.0f/round), \
         converged=%b\n"
        c.dc_n c.dc_rounds c.dc_deliveries
        (float_of_int c.dc_deliveries /. float_of_int (max 1 c.dc_rounds))
        c.dc_converged)
    r.ds_convergence;
  print_newline ()

let server_speedups_of ~suffix samples =
  let find bench n =
    List.find_opt (fun s -> s.bench = bench && s.bn = n) samples
  in
  List.filter_map
    (fun n ->
      match
        ( find ("server/coalesce-burst" ^ suffix ^ "/seq") n,
          find ("server/coalesce-eager" ^ suffix ^ "/seq") n )
      with
      | Some burst, Some eager when burst.time_s > 0.0 ->
        Some (n, eager.time_s /. burst.time_s)
      | _ -> None)
    batch_ns

let server_speedups samples = server_speedups_of ~suffix:"" samples

let print_server samples =
  Printf.printf
    "== Server delta coalescing (%d-edit burst: one folded invalidation \
     pass vs a pass per edit) ==\n"
    server_burst;
  let table =
    Wnet_stats.Table.make ~headers:[ "workload"; "n"; "time"; "runs" ]
  in
  List.iter
    (fun s ->
      Wnet_stats.Table.add_row table
        [
          s.bench;
          string_of_int s.bn;
          (if s.time_s >= 1.0 then Printf.sprintf "%.3f s" s.time_s
           else Printf.sprintf "%.3f ms" (s.time_s *. 1e3));
          string_of_int s.runs;
        ])
    samples;
  Wnet_stats.Table.print table;
  print_newline ();
  List.iter
    (fun (n, x) ->
      Printf.printf "n=%4d  coalesced burst vs eager flushes: %.2fx\n" n x)
    (server_speedups samples);
  List.iter
    (fun (n, x) ->
      Printf.printf
        "n=%4d  coalesced burst vs eager flushes (dynamic repair): %.2fx\n" n x)
    (server_speedups_of ~suffix:"-repair" samples);
  print_newline ()

let session_speedups samples =
  let find bench n =
    List.find_opt (fun s -> s.bench = bench && s.bn = n) samples
  in
  List.filter_map
    (fun n ->
      match
        ( find "session/full-batch/seq" n,
          find "session/cost-change/seq" n,
          find "session/leave-rejoin/seq" n )
      with
      | Some batch, Some cc, Some lr ->
        (* the leave-rejoin sample holds two edit+recompute cycles *)
        Some
          ( n,
            batch.time_s /. cc.time_s,
            2.0 *. batch.time_s /. lr.time_s )
      | _ -> None)
    batch_ns

(* Repair vs recompute on the adversarial on-tree toggle: the same edit
   on the same instance, dynamic patching vs drop-everything. *)
let repair_speedups samples =
  let find bench n =
    List.find_opt (fun s -> s.bench = bench && s.bn = n) samples
  in
  List.filter_map
    (fun n ->
      match
        ( find "session/cost-change-critical/recompute" n,
          find "session/cost-change-critical/seq" n )
      with
      | Some recompute, Some repair when repair.time_s > 0.0 ->
        Some (n, recompute.time_s /. repair.time_s)
      | _ -> None)
    batch_ns

let print_session (samples, hists) =
  print_endline
    "== Incremental session vs from-scratch batch (single edit + payments, \
     sequential) ==";
  let table =
    Wnet_stats.Table.make ~headers:[ "workload"; "n"; "time"; "runs" ]
  in
  List.iter
    (fun s ->
      Wnet_stats.Table.add_row table
        [
          s.bench;
          string_of_int s.bn;
          (if s.time_s >= 1.0 then Printf.sprintf "%.3f s" s.time_s
           else Printf.sprintf "%.3f ms" (s.time_s *. 1e3));
          string_of_int s.runs;
        ])
    samples;
  Wnet_stats.Table.print table;
  print_newline ();
  List.iter
    (fun (n, cc, lr) ->
      Printf.printf
        "n=%4d  incremental vs batch: cost change %.2fx | leave/rejoin %.2fx\n"
        n cc lr)
    (session_speedups samples);
  List.iter
    (fun (n, x) ->
      Printf.printf "n=%4d  on-tree edit, repair vs recompute: %.2fx\n" n x)
    (repair_speedups samples);
  print_newline ();
  List.iter
    (fun (n, hist) ->
      Printf.printf "n=%4d  affected-region sizes:" n;
      List.iter (fun (lo, c) -> Printf.printf " >=%d:%d" lo c) hist;
      print_newline ())
    hists;
  print_newline ()

(* Hand-rolled JSON writer — names and numbers only, nothing to escape
   beyond the basics. *)
let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float x =
  if Float.is_finite x then Printf.sprintf "%.9g" x else "null"

let ensure_dir d = if not (Sys.file_exists d) then Sys.mkdir d 0o755

let write_json ~canary ~micro ~microprims ~session ~hists ~server ~avoid
    ~second_path ~dsim (pool_domains, samples) =
  let now = Unix.gmtime (Unix.time ()) in
  let stamp =
    Printf.sprintf "%04d%02d%02dT%02d%02d%02dZ" (now.Unix.tm_year + 1900)
      (now.Unix.tm_mon + 1) now.Unix.tm_mday now.Unix.tm_hour now.Unix.tm_min
      now.Unix.tm_sec
  in
  let iso =
    Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (now.Unix.tm_year + 1900)
      (now.Unix.tm_mon + 1) now.Unix.tm_mday now.Unix.tm_hour now.Unix.tm_min
      now.Unix.tm_sec
  in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"wnet-bench/10\",\n";
  Buffer.add_string b (Printf.sprintf "  \"generated_at\": \"%s\",\n" iso);
  Buffer.add_string b
    (Printf.sprintf "  \"ocaml\": \"%s\",\n" (json_escape Sys.ocaml_version));
  Buffer.add_string b
    (Printf.sprintf "  \"cores_online\": %d,\n"
       (Domain.recommended_domain_count ()));
  Buffer.add_string b (Printf.sprintf "  \"pool_domains\": %d,\n" pool_domains);
  Buffer.add_string b
    (Printf.sprintf "  \"canary_s\": %s,\n" (json_float canary));
  Buffer.add_string b "  \"batch\": [\n";
  List.iteri
    (fun i s ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"bench\": \"%s\", \"n\": %d, \"domains\": %d, \"time_s\": \
            %s, \"runs\": %d}%s\n"
           (json_escape s.bench) s.bn s.domains (json_float s.time_s) s.runs
           (if i = List.length samples - 1 then "" else ",")))
    samples;
  Buffer.add_string b "  ],\n";
  let find bench n =
    List.find_opt (fun s -> s.bench = bench && s.bn = n) samples
  in
  Buffer.add_string b "  \"speedups\": [\n";
  let speedup_rows =
    List.filter_map
      (fun n ->
        match
          ( find "unicast-batch/seq" n,
            find "unicast-batch/par" n,
            find "linkcost-batch/copy/seq" n,
            find "linkcost-batch/zerocopy/seq" n,
            find "linkcost-batch/zerocopy/par" n )
        with
        | Some us, Some up, Some lc, Some lz, Some lp ->
          Some
            (Printf.sprintf
               "    {\"n\": %d, \"unicast_par_vs_seq\": %s, \
                \"linkcost_zerocopy_vs_copy_seq\": %s, \
                \"linkcost_par_vs_copy_seq\": %s}"
               n
               (json_float (us.time_s /. up.time_s))
               (json_float (lc.time_s /. lz.time_s))
               (json_float (lc.time_s /. lp.time_s)))
        | _ -> None)
      batch_ns
  in
  Buffer.add_string b (String.concat ",\n" speedup_rows);
  Buffer.add_string b "\n  ],\n";
  (* wnet-bench/9: flat-CSR kernels vs the boxed-adjacency oracle, both
     sequential and zero-copy, so the only variable is the kernel. *)
  Buffer.add_string b "  \"csr_speedups\": [\n";
  let csr_rows =
    List.filter_map
      (fun n ->
        match
          ( find "unicast-batch/seq" n,
            find "unicast-batch/boxed/seq" n,
            find "linkcost-batch/zerocopy/seq" n,
            find "linkcost-batch/boxed/seq" n )
        with
        | Some uc, Some ub, Some lc, Some lb ->
          Some
            (Printf.sprintf
               "    {\"n\": %d, \"unicast_csr_vs_boxed_seq\": %s, \
                \"linkcost_csr_vs_boxed_seq\": %s}"
               n
               (json_float (ub.time_s /. uc.time_s))
               (json_float (lb.time_s /. lc.time_s)))
        | _ -> None)
      batch_ns
  in
  Buffer.add_string b (String.concat ",\n" csr_rows);
  Buffer.add_string b "\n  ],\n";
  Buffer.add_string b "  \"session\": [\n";
  List.iteri
    (fun i s ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"bench\": \"%s\", \"n\": %d, \"domains\": %d, \"time_s\": \
            %s, \"runs\": %d}%s\n"
           (json_escape s.bench) s.bn s.domains (json_float s.time_s) s.runs
           (if i = List.length session - 1 then "" else ",")))
    session;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b "  \"session_speedups\": [\n";
  let session_rows =
    List.map
      (fun (n, cc, lr) ->
        Printf.sprintf
          "    {\"n\": %d, \"cost_change_vs_batch\": %s, \
           \"leave_vs_batch\": %s}"
          n (json_float cc) (json_float lr))
      (session_speedups session)
  in
  Buffer.add_string b (String.concat ",\n" session_rows);
  Buffer.add_string b "\n  ],\n";
  (* wnet-bench/4: dynamic-SSSP repair vs drop-everything recompute on
     the adversarial on-tree toggle, plus the affected-region size
     histogram the repairs produced (log2 classes: ge = class lower
     bound, 0 = nothing to patch). *)
  Buffer.add_string b "  \"repair\": {\n";
  Buffer.add_string b "    \"speedups\": [\n";
  let repair_rows =
    List.map
      (fun (n, x) ->
        Printf.sprintf "      {\"n\": %d, \"repair_vs_recompute\": %s}" n
          (json_float x))
      (repair_speedups session)
  in
  Buffer.add_string b (String.concat ",\n" repair_rows);
  Buffer.add_string b "\n    ],\n";
  Buffer.add_string b "    \"region_histogram\": [\n";
  let hist_rows =
    List.map
      (fun (n, hist) ->
        let buckets =
          List.map
            (fun (lo, c) -> Printf.sprintf "{\"ge\": %d, \"count\": %d}" lo c)
            hist
        in
        Printf.sprintf "      {\"n\": %d, \"buckets\": [%s]}" n
          (String.concat ", " buckets))
      hists
  in
  Buffer.add_string b (String.concat ",\n" hist_rows);
  Buffer.add_string b "\n    ]\n";
  Buffer.add_string b "  },\n";
  (* wnet-bench/10: the subtree-bounded avoidance kernel vs the
     full-CSR oracle on cold starts and cache-miss fills ("rows" use
     the headline object shape so the 20% gate covers them), the steal
     telemetry of the pooled bounded cold runs, and the region-size
     histogram of every bounded fill (same log2 classes as the repair
     histogram). *)
  Buffer.add_string b "  \"avoid\": {\n";
  Buffer.add_string b
    (Printf.sprintf "    \"pool_domains\": %d,\n" avoid.av_domains);
  Buffer.add_string b
    (Printf.sprintf "    \"tasks_executed\": %d,\n" avoid.av_tasks);
  Buffer.add_string b
    (Printf.sprintf "    \"tasks_stolen\": %d,\n" avoid.av_stolen);
  Buffer.add_string b
    (Printf.sprintf "    \"steal_ratio\": %s,\n"
       (json_float (avoid_steal_ratio avoid)));
  Buffer.add_string b "    \"rows\": [\n";
  List.iteri
    (fun i s ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"bench\": \"%s\", \"n\": %d, \"domains\": %d, \"time_s\": \
            %s, \"runs\": %d}%s\n"
           (json_escape s.bench) s.bn s.domains (json_float s.time_s) s.runs
           (if i = List.length avoid.av_samples - 1 then "" else ",")))
    avoid.av_samples;
  Buffer.add_string b "    ],\n";
  Buffer.add_string b "    \"speedups\": [\n";
  let avoid_rows =
    List.map
      (fun (n, cold, fill) ->
        Printf.sprintf
          "      {\"n\": %d, \"cold_bounded_vs_full\": %s, \
           \"fill_bounded_vs_full\": %s}"
          n (json_float cold) (json_float fill))
      (avoid_speedups avoid.av_samples)
  in
  Buffer.add_string b (String.concat ",\n" avoid_rows);
  Buffer.add_string b "\n    ],\n";
  Buffer.add_string b "    \"region_hist\": [\n";
  let avoid_hist_rows =
    List.map
      (fun (n, hist) ->
        let buckets =
          List.map
            (fun (lo, c) -> Printf.sprintf "{\"ge\": %d, \"count\": %d}" lo c)
            hist
        in
        Printf.sprintf "      {\"n\": %d, \"buckets\": [%s]}" n
          (String.concat ", " buckets))
      avoid.av_hists
  in
  Buffer.add_string b (String.concat ",\n" avoid_hist_rows);
  Buffer.add_string b "\n    ]\n";
  Buffer.add_string b "  },\n";
  Buffer.add_string b "  \"server\": [\n";
  List.iteri
    (fun i s ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"bench\": \"%s\", \"n\": %d, \"domains\": %d, \"time_s\": \
            %s, \"runs\": %d}%s\n"
           (json_escape s.bench) s.bn s.domains (json_float s.time_s) s.runs
           (if i = List.length server - 1 then "" else ",")))
    server;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b "  \"server_speedups\": [\n";
  let server_rows =
    let rep = server_speedups_of ~suffix:"-repair" server in
    List.map
      (fun (n, x) ->
        match List.assoc_opt n rep with
        | Some y ->
          Printf.sprintf
            "    {\"n\": %d, \"burst_vs_eager\": %s, \
             \"burst_vs_eager_repair\": %s}"
            n (json_float x) (json_float y)
        | None ->
          Printf.sprintf "    {\"n\": %d, \"burst_vs_eager\": %s}" n
            (json_float x))
      (server_speedups server)
  in
  Buffer.add_string b (String.concat ",\n" server_rows);
  Buffer.add_string b "\n  ],\n";
  (* wnet-bench/5: the Yen-dominated second-path study, sequential vs
     work-stealing spur fan-out, plus the scheduler telemetry of the
     parallel rows (steal_ratio = tasks_stolen / tasks_executed). *)
  Buffer.add_string b "  \"second_path\": {\n";
  Buffer.add_string b
    (Printf.sprintf "    \"pool_domains\": %d,\n" second_path.sp_domains);
  Buffer.add_string b
    (Printf.sprintf "    \"tasks_executed\": %d,\n" second_path.sp_executed);
  Buffer.add_string b
    (Printf.sprintf "    \"tasks_stolen\": %d,\n" second_path.sp_stolen);
  Buffer.add_string b
    (Printf.sprintf "    \"steal_ratio\": %s,\n"
       (json_float (steal_ratio second_path)));
  Buffer.add_string b "    \"rows\": [\n";
  List.iteri
    (fun i s ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"bench\": \"%s\", \"n\": %d, \"domains\": %d, \"time_s\": \
            %s, \"runs\": %d}%s\n"
           (json_escape s.bench) s.bn s.domains (json_float s.time_s) s.runs
           (if i = List.length second_path.sp_samples - 1 then "" else ",")))
    second_path.sp_samples;
  Buffer.add_string b "    ],\n";
  Buffer.add_string b "    \"speedups\": [\n";
  let sp_rows =
    List.map
      (fun (n, x) ->
        Printf.sprintf "      {\"n\": %d, \"par_vs_seq\": %s}" n (json_float x))
      (second_path_speedups second_path.sp_samples)
  in
  Buffer.add_string b (String.concat ",\n" sp_rows);
  Buffer.add_string b "\n    ]\n";
  Buffer.add_string b "  },\n";
  (* wnet-bench/7: the distributed simulation at scale.  "rows" use the
     headline object shape so the 20% gate covers them; "convergence"
     records rounds/deliveries per n (deliveries/round is the scaling
     proxy on 1-core containers). *)
  Buffer.add_string b "  \"dsim\": {\n";
  Buffer.add_string b
    (Printf.sprintf "    \"pool_domains\": %d,\n" dsim.ds_domains);
  Buffer.add_string b "    \"rows\": [\n";
  List.iteri
    (fun i s ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"bench\": \"%s\", \"n\": %d, \"domains\": %d, \"time_s\": \
            %s, \"runs\": %d}%s\n"
           (json_escape s.bench) s.bn s.domains (json_float s.time_s) s.runs
           (if i = List.length dsim.ds_samples - 1 then "" else ",")))
    dsim.ds_samples;
  Buffer.add_string b "    ],\n";
  Buffer.add_string b "    \"convergence\": [\n";
  let dc_rows =
    List.map
      (fun c ->
        Printf.sprintf
          "      {\"n\": %d, \"rounds\": %d, \"deliveries\": %d, \
           \"deliveries_per_round\": %s, \"converged\": %b}"
          c.dc_n c.dc_rounds c.dc_deliveries
          (json_float
             (float_of_int c.dc_deliveries /. float_of_int (max 1 c.dc_rounds)))
          c.dc_converged)
      dsim.ds_convergence
  in
  Buffer.add_string b (String.concat ",\n" dc_rows);
  Buffer.add_string b "\n    ]\n";
  Buffer.add_string b "  },\n";
  (* wnet-bench/6: per-primitive micro rows (bench/micro/).  The
     "micro_prims" rows use the headline object shape so the gate's
     line scanner picks them up; "micro_prims_ns" carries the derived
     ns/op, the measured minor words/op, and the allocation contract;
     "proto_speedups" is the binary-vs-text codec headline. *)
  Buffer.add_string b "  \"micro_prims\": [\n";
  List.iteri
    (fun i s ->
      let r = s.mp_row in
      Buffer.add_string b
        (Printf.sprintf
           "    {\"bench\": \"%s\", \"n\": %d, \"domains\": %d, \"time_s\": \
            %s, \"runs\": %d}%s\n"
           (json_escape r.bench) r.bn r.domains (json_float r.time_s) r.runs
           (if i = List.length microprims - 1 then "" else ",")))
    microprims;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b "  \"micro_prims_ns\": [\n";
  let mp_rows =
    List.map
      (fun s ->
        Printf.sprintf
          "    {\"name\": \"%s\", \"ns_per_op\": %s, \"words_per_op\": %s, \
           \"alloc_free\": %b}"
          (json_escape s.mp_row.bench)
          (json_float s.mp_ns_per_op)
          (match s.mp_words_per_op with
          | Some w -> json_float w
          | None -> "null")
          s.mp_alloc_free)
      microprims
  in
  Buffer.add_string b (String.concat ",\n" mp_rows);
  Buffer.add_string b "\n  ],\n";
  Buffer.add_string b "  \"proto_speedups\": [\n";
  let ps_rows =
    List.map
      (fun (name, bin_ns, text_ns) ->
        Printf.sprintf
          "    {\"name\": \"%s\", \"bin_ns_per_op\": %s, \"text_ns_per_op\": \
           %s, \"bin_vs_text\": %s}"
          (json_escape name) (json_float bin_ns) (json_float text_ns)
          (json_float (text_ns /. bin_ns)))
      (proto_codec_speedups microprims)
  in
  Buffer.add_string b (String.concat ",\n" ps_rows);
  Buffer.add_string b "\n  ],\n";
  Buffer.add_string b "  \"micro\": [\n";
  let micro_rows =
    List.map
      (fun (name, time_ns, r2) ->
        Printf.sprintf
          "    {\"name\": \"%s\", \"time_ns\": %s, \"r_square\": %s}"
          (json_escape name)
          (match time_ns with Some t -> json_float t | None -> "null")
          (match r2 with Some r -> json_float r | None -> "null"))
      micro
  in
  Buffer.add_string b (String.concat ",\n" micro_rows);
  Buffer.add_string b "\n  ]\n}\n";
  ensure_dir "bench";
  ensure_dir "bench/results";
  let write path =
    let oc = open_out path in
    Buffer.output_buffer oc b;
    close_out oc;
    Printf.printf "wrote %s\n%!" path
  in
  write "bench/results/BENCH_latest.json";
  write (Printf.sprintf "bench/results/BENCH_%s.json" stamp)

(* ------------------------------------------------------------------ *)
(* Regression gate                                                      *)

(* Reads the headline wall-clock rows — the "batch" and "session"
   sections, whose objects this writer emits one per line — out of a
   previous BENCH_latest.json.  The Bechamel micro numbers are excluded:
   they are the noisiest and not what the gate protects. *)
let read_headline_rows path =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
    let rows = ref [] in
    (try
       while true do
         let line = String.trim (input_line ic) in
         let line =
           if String.length line > 0 && line.[String.length line - 1] = ',' then
             String.sub line 0 (String.length line - 1)
           else line
         in
         try
           Scanf.sscanf line
             "{\"bench\": %S, \"n\": %d, \"domains\": %d, \"time_s\": %f, \
              \"runs\": %d}" (fun bench n d t _runs ->
               rows := ((bench, n, d), t) :: !rows)
         with Scanf.Scan_failure _ | Failure _ | End_of_file -> ()
       done
     with End_of_file -> close_in ic);
    Some !rows

(* The previous run's machine canary, if the file is new enough to
   carry one (absent in wnet-bench/2 files: the factor degrades to 1). *)
let read_canary path =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
    let found = ref None in
    (try
       while !found = None do
         let line = String.trim (input_line ic) in
         try
           Scanf.sscanf line "\"canary_s\": %f" (fun c -> found := Some c)
         with Scanf.Scan_failure _ | Failure _ -> ()
       done
     with End_of_file -> ());
    close_in ic;
    !found

(* Compares the freshly measured rows against the previous run and fails
   (exit 1) when any headline metric slowed down by more than 20%.  Rows
   without a counterpart (renamed benches, first run, schema changes)
   pass silently. *)
let run_gate ~previous (_, batch_samples) headline_samples =
  match previous with
  | None ->
    print_endline "bench gate: no previous BENCH_latest.json, baseline run"
  | Some old_rows ->
    let current =
      List.map
        (fun s -> ((s.bench, s.bn, s.domains), s.time_s))
        (batch_samples @ headline_samples)
    in
    let regressions =
      List.filter_map
        (fun (key, t_new) ->
          match List.assoc_opt key old_rows with
          | Some t_old when t_old > 0.0 && t_new > t_old *. gate_tolerance ->
            Some (key, t_old, t_new)
          | _ -> None)
        current
    in
    let compared =
      List.length
        (List.filter (fun (key, _) -> List.assoc_opt key old_rows <> None)
           current)
    in
    (match regressions with
    | [] ->
      Printf.printf
        "bench gate: ok, %d headline metric(s) within %.0f%% of the previous \
         run\n"
        compared
        ((gate_tolerance -. 1.0) *. 100.0)
    | _ ->
      Printf.printf "bench gate: FAIL, %d regression(s) worse than %.0f%%:\n"
        (List.length regressions)
        ((gate_tolerance -. 1.0) *. 100.0);
      List.iter
        (fun ((bench, n, d), t_old, t_new) ->
          Printf.printf "  %s n=%d domains=%d: %.3f ms -> %.3f ms (%.2fx)\n"
            bench n d (t_old *. 1e3) (t_new *. 1e3) (t_new /. t_old))
        regressions;
      exit 1)

(* ------------------------------------------------------------------ *)
(* Experiments: one block per paper artifact                            *)

let heading s =
  Printf.printf "\n==================== %s ====================\n\n%!" s

let run_experiments ~instances ~hop_instances ~distributed_instances () =
  heading "Figure 3(a): IOR vs TOR, UDG, kappa = 2";
  print_endline
    (Wnet_experiments.Fig3.render_sweep
       ~title:"(IOR and TOR nearly coincide and stay ~1.5 as n grows)"
       (Wnet_experiments.Fig3.overpayment_sweep ~instances ~seed:101
          (Wnet_experiments.Fig3.Udg { kappa = 2.0 })));
  heading "Figure 3(b): + worst ratio, UDG, kappa = 2";
  print_endline
    (Wnet_experiments.Fig3.render_sweep
       ~title:"(worst ratio is noisy, well above IOR/TOR, shrinking with n)"
       (Wnet_experiments.Fig3.overpayment_sweep ~instances ~seed:102
          (Wnet_experiments.Fig3.Udg { kappa = 2.0 })));
  heading "Figure 3(c): UDG, kappa = 2.5";
  print_endline
    (Wnet_experiments.Fig3.render_sweep ~title:"(same shape at kappa = 2.5)"
       (Wnet_experiments.Fig3.overpayment_sweep ~instances ~seed:103
          (Wnet_experiments.Fig3.Udg { kappa = 2.5 })));
  heading "Figure 3(d): overpayment vs hop distance, UDG, kappa = 2, n = 500";
  print_endline
    (Wnet_experiments.Fig3.render_hop_profile
       ~title:"(mean flat in hop distance; max decreasing)"
       (Wnet_experiments.Fig3.hop_profile ~instances:hop_instances ~seed:104
          (Wnet_experiments.Fig3.Udg { kappa = 2.0 })));
  heading "Figure 3(e): random ranges, kappa = 2";
  print_endline
    (Wnet_experiments.Fig3.render_sweep ~title:"(heterogeneous-range digraph model)"
       (Wnet_experiments.Fig3.overpayment_sweep ~instances ~seed:105
          (Wnet_experiments.Fig3.Random_range { kappa = 2.0 })));
  heading "Figure 3(f): random ranges, kappa = 2.5";
  print_endline
    (Wnet_experiments.Fig3.render_sweep ~title:"(same, kappa = 2.5)"
       (Wnet_experiments.Fig3.overpayment_sweep ~instances ~seed:106
          (Wnet_experiments.Fig3.Random_range { kappa = 2.5 })));
  heading "Ablation: node-cost model with uniform costs";
  print_endline
    (Wnet_experiments.Node_model.render
       ~title:"(mechanism-level overpayment without the geometric cost model)"
       (Wnet_experiments.Node_model.sweep ~instances ~seed:107 ()));
  heading "Algorithm 1 vs naive payment computation (Sec. III-B)";
  print_endline (Wnet_experiments.Speed.render (Wnet_experiments.Speed.sweep ~seed:108 ()));
  heading "Distributed protocols (Sec. III-C/D)";
  print_endline
    (Wnet_experiments.Distributed_exp.render
       (Wnet_experiments.Distributed_exp.sweep ~instances:distributed_instances
          ~seed:109 ()));
  heading "Collusion studies (Sec. III-E / III-H, Theorems 7-8)";
  print_endline
    (Wnet_experiments.Collusion_exp.render
       (Wnet_experiments.Collusion_exp.study ~n:30 ~instances:10 ~seed:110 ()));
  heading "Ablation: the price of collusion resistance (p~ vs p)";
  print_endline "Dense G(n, 0.3) (Theorem 8's resilience precondition holds):";
  print_endline
    (Wnet_experiments.Scheme_ablation.render
       (Wnet_experiments.Scheme_ablation.sweep ~seed:111 ()));
  print_newline ();
  print_endline "Dense UDG (closed neighbourhoods are disks; resilience mostly fails):";
  print_endline
    (Wnet_experiments.Scheme_ablation.render
       (Wnet_experiments.Scheme_ablation.sweep
          ~topology:Wnet_experiments.Scheme_ablation.Dense_udg ~ns:[ 50; 100 ]
          ~seed:112 ()));
  heading "Mechanism behind Fig. 3(d): second-path gap vs hop distance";
  print_endline
    (Wnet_experiments.Second_path_exp.render
       (Wnet_experiments.Second_path_exp.study ~seed:117 ()));
  print_newline ();
  heading "Ablation: node agents (this paper) vs edge agents (Nisan-Ronen)";
  print_endline
    (Wnet_experiments.Agent_model_exp.render
       (Wnet_experiments.Agent_model_exp.sweep ~seed:116 ()));
  print_newline ();
  heading "Motivation (Sec. I): cooperation regimes on identical traffic";
  print_endline
    (Wnet_experiments.Lifetime_exp.render
       (Wnet_experiments.Lifetime_exp.study ~seed:115 ()));
  print_newline ();
  heading "Critique of the uniform-relay traffic model of refs [1]/[7] (Sec. II-D)";
  print_endline
    (Wnet_experiments.Relay_load.render
       (Wnet_experiments.Relay_load.study ~instances ~seed:118 ()));
  print_newline ();
  heading "Baselines: fixed-price rationing and watchdog mislabelling (Sec. II-D)";
  print_endline
    (Wnet_experiments.Baseline_exp.render_nuglet
       (Wnet_experiments.Baseline_exp.nuglet_sweep ~seed:113 ()));
  print_newline ();
  print_endline
    (Wnet_experiments.Baseline_exp.render_watchdog
       (Wnet_experiments.Baseline_exp.watchdog_sweep ~seed:114 ()));
  heading "Worked examples (Figures 2 and 4)";
  let f2 = Wnet_core.Examples.fig2 in
  let honest =
    Option.get
      (Wnet_core.Unicast.run f2.Wnet_core.Examples.graph
         ~src:f2.Wnet_core.Examples.source ~dst:f2.Wnet_core.Examples.access_point)
  in
  let lying =
    Option.get
      (Wnet_core.Unicast.run f2.Wnet_core.Examples.lying_graph
         ~src:f2.Wnet_core.Examples.source ~dst:f2.Wnet_core.Examples.access_point)
  in
  Printf.printf
    "Figure 2: honest total payment %g (paper: 6); hiding one edge pays %g (paper: 5)\n"
    (Wnet_core.Unicast.total_payment honest)
    (Wnet_core.Unicast.total_payment lying);
  let f4 = Wnet_core.Examples.fig4 in
  let batch =
    Wnet_core.Unicast.all_to_root f4.Wnet_core.Examples.graph
      ~root:f4.Wnet_core.Examples.access_point
  in
  let r8 = Option.get batch.(f4.Wnet_core.Examples.reseller) in
  (match
     Wnet_core.Collusion.resale_opportunities f4.Wnet_core.Examples.graph
       ~root:f4.Wnet_core.Examples.access_point ~payments:(fun v -> batch.(v))
   with
  | o :: _ ->
    Printf.printf
      "Figure 4: p_8 = %g (paper: 20); resale via v%d costs %g after splitting a saving of %g\n"
      (Wnet_core.Unicast.total_payment r8)
      o.Wnet_core.Collusion.proxy
      (Wnet_core.Collusion.effective_cost_after_resale o)
      o.Wnet_core.Collusion.saving
  | [] -> print_endline "Figure 4: no resale found (unexpected)")

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let json = List.mem "--json" args in
  let gate = List.mem "--gate" args in
  let mode =
    match List.filter (fun a -> a <> "--json" && a <> "--gate") args with
    | [] -> "default"
    | m :: _ -> m
  in
  let json_run () =
    let baseline = "bench/results/BENCH_latest.json" in
    let canary_now = measure_canary () in
    let previous =
      if not gate then None
      else
        match read_headline_rows baseline with
        | None -> None
        | Some rows ->
          let canary_old = read_canary baseline in
          let factor = canary_factor ~canary_now ~canary_old in
          if factor > 1.0 then
            Printf.printf
              "bench gate: machine canary %.3f ms (baseline %.3f ms) — \
               normalising baselines by %.2fx\n%!"
              (canary_now *. 1e3)
              (Option.value ~default:0.0 canary_old *. 1e3)
              factor;
          Some (List.map (fun (k, t) -> (k, t *. factor)) rows)
    in
    (* Wall-clock suites first, Bechamel last: its thousands of forced
       major collections bank so much GC pacing credit that the major
       collector all but stops for the next ~600 MB of allocation,
       inflating any timing taken afterwards by up to 10x. *)
    let batch = run_batch ?previous () in
    print_batch batch;
    let session, hists = run_session ?previous () in
    print_session (session, hists);
    let server = run_server ?previous () in
    print_server server;
    (* wnet-bench/8: the sharded end-to-end rows ride in the "server"
       JSON section (same headline object shape, so the gate covers
       them). *)
    let shard_server = run_shard_server ?previous () in
    print_shard_server shard_server;
    let server = server @ shard_server in
    let avoid = run_avoid ?previous () in
    print_avoid avoid;
    let second_path = run_second_path ?previous () in
    print_second_path second_path;
    let dsim = run_dsim ?previous () in
    print_dsim dsim;
    let microprims = run_microprims ?previous () in
    print_microprims microprims;
    let micro = run_micro () in
    write_json ~canary:canary_now ~micro ~microprims ~session ~hists ~server
      ~avoid ~second_path ~dsim batch;
    if gate then
      run_gate ~previous batch
        (session @ server @ avoid.av_samples @ second_path.sp_samples
        @ dsim.ds_samples
        @ List.map (fun s -> s.mp_row) microprims)
  in
  match mode with
  | "micro" -> if json then json_run () else ignore (run_micro ())
  | "batch" ->
    let batch = run_batch () in
    print_batch batch;
    if json then
      write_json ~canary:(measure_canary ()) ~micro:[] ~microprims:[]
        ~session:[] ~hists:[] ~server:[] ~avoid:empty_avoid
        ~second_path:
          { sp_domains = 0; sp_samples = []; sp_executed = 0; sp_stolen = 0 }
        ~dsim:empty_dsim batch
  | "session" -> print_session (run_session ())
  | "server" -> print_server (run_server ())
  | "avoid" -> print_avoid (run_avoid ())
  | "shardserver" -> print_shard_server (run_shard_server ())
  | "secondpath" -> print_second_path (run_second_path ())
  | "dsim" -> print_dsim (run_dsim ())
  | "microprims" -> print_microprims (run_microprims ())
  | "experiments" ->
    run_experiments ~instances:10 ~hop_instances:10 ~distributed_instances:3 ()
  | "full" ->
    (* The paper's scale: 100 random instances per point. *)
    run_experiments ~instances:100 ~hop_instances:100 ~distributed_instances:10 ()
  | "default" ->
    ignore (run_micro ());
    run_experiments ~instances:5 ~hop_instances:5 ~distributed_instances:2 ()
  | other ->
    Printf.eprintf
      "unknown mode %s (use: micro | batch | session | server | avoid | \
       shardserver | secondpath | dsim | microprims | experiments | full)\n"
      other;
    exit 2
