let () = Wnet_microbench.run_family "proto-decode" (Wnet_microbench.proto_decode ())
