(* Per-primitive microbenchmarks: one family per hot-path building
   block (wire codecs, work-stealing deque, heaps, dynamic-SSSP
   repair), each primitive a closed loop of [ops] steady-state
   operations over preallocated state.

   Two consumers share these definitions:

   - the one-exe-per-primitive suite ([bench_proto_encode] & co., via
     {!run_family}): human-readable ns/op plus a hard assertion that
     every [alloc_free] primitive allocates ZERO minor-heap words per
     operation (native code only — bytecode boxes freely and is
     exempt).  [--smoke] runs a single timed rep with no timing gate
     but keeps the allocation assertion: that is what CI runs.
   - bench/main.ml embeds the same primitives as "micro/..." headline
     rows of BENCH_latest.json, where the 20% regression gate and the
     machine canary apply to them like to any other wall-clock row.

   Primitives must not allocate in their [run] when [alloc_free] —
   measurement overhead ([Gc.minor_words] boxes its float result) is
   amortised over [reps * ops] operations, so the threshold below
   tolerates a few words per *run*, none per op. *)

module P = Wnet_proto
module B = Wnet_proto_bin

type prim = {
  name : string;  (** e.g. "bin/cost-link" — unique within a family *)
  ops : int;  (** operations performed by one [run ()] call *)
  run : unit -> unit;
  alloc_free : bool;
      (** steady-state contract: 0 minor words per operation *)
}

let inner_ops = 256

(* ---------------- proto encode ---------------- *)

let proto_encode () =
  let enc = B.enc_create () in
  let cost = P.Cost_link { u = 17; v = 23; w = 4.625 } in
  let drain () = B.enc_consume enc (B.enc_pending enc) in
  let edit_batch = List.init 16 (fun i -> P.Cost_link { u = i; v = i + 1; w = 0.5 +. float_of_int i }) in
  let served =
    P.Served { src = 41; path = [ 41; 17; 3; 0 ]; charge = 12.125 }
  in
  [
    {
      name = "bin/cost-link";
      ops = inner_ops;
      alloc_free = true;
      run =
        (fun () ->
          for _ = 1 to inner_ops do
            B.encode_request enc cost;
            drain ()
          done);
    };
    {
      name = "bin/pay";
      ops = inner_ops;
      alloc_free = true;
      run =
        (fun () ->
          for _ = 1 to inner_ops do
            B.encode_request enc P.Pay;
            drain ()
          done);
    };
    {
      name = "bin/batch-16-edits";
      ops = inner_ops;
      alloc_free = true;
      run =
        (fun () ->
          (* 16 messages per frame, inner_ops/16 frames *)
          for _ = 1 to inner_ops / 16 do
            B.encode_requests enc edit_batch;
            drain ()
          done);
    };
    {
      name = "bin/served";
      ops = inner_ops;
      alloc_free = false (* path list is walked, frame grows per hop *);
      run =
        (fun () ->
          for _ = 1 to inner_ops do
            B.encode_response enc served;
            drain ()
          done);
    };
    {
      name = "text/cost-link";
      ops = inner_ops;
      alloc_free = false (* Printf builds a fresh string per line *);
      run =
        (fun () ->
          for _ = 1 to inner_ops do
            ignore (Sys.opaque_identity (P.print_request cost))
          done);
    };
    {
      name = "text/pay";
      ops = inner_ops;
      alloc_free = false;
      run =
        (fun () ->
          for _ = 1 to inner_ops do
            ignore (Sys.opaque_identity (P.print_request P.Pay))
          done);
    };
  ]

(* ---------------- proto decode ---------------- *)

let frame_of_requests rs =
  let e = B.enc_create () in
  B.encode_requests e rs;
  Bytes.sub (B.enc_buffer e) (B.enc_offset e) (B.enc_pending e)

let proto_decode () =
  let cost = P.Cost_link { u = 17; v = 23; w = 4.625 } in
  let cost_frame = frame_of_requests [ cost ] in
  let batch_frame =
    frame_of_requests
      (List.init 16 (fun i -> P.Cost_link { u = i; v = i + 1; w = 0.5 +. float_of_int i }))
  in
  let cost_line = P.print_request cost in
  let dec = B.dec_create () in
  let view = B.make_view () in
  let sink = ref 0 in
  let decode_frame frame k =
    B.dec_feed dec frame 0 (Bytes.length frame);
    for _ = 1 to k do
      match B.decode_next dec view with
      | `Msg -> sink := !sink + view.B.i0 + view.B.i1
      | `Need_more | `Corrupt _ -> failwith "microbench: bad frame"
    done
  in
  [
    {
      name = "bin/view/cost-link";
      ops = inner_ops;
      alloc_free = true;
      run =
        (fun () ->
          for _ = 1 to inner_ops do
            decode_frame cost_frame 1
          done);
    };
    {
      name = "bin/view/batch-16-edits";
      ops = inner_ops;
      alloc_free = true;
      run =
        (fun () ->
          for _ = 1 to inner_ops / 16 do
            decode_frame batch_frame 16
          done);
    };
    {
      name = "bin/materialize/cost-link";
      ops = inner_ops;
      alloc_free = false (* builds the Wnet_proto.request value *);
      run =
        (fun () ->
          for _ = 1 to inner_ops do
            B.dec_feed dec cost_frame 0 (Bytes.length cost_frame);
            match B.decode_request dec view with
            | `Req _ -> ()
            | `Need_more | `Corrupt _ -> failwith "microbench: bad frame"
          done);
    };
    {
      name = "text/cost-link";
      ops = inner_ops;
      alloc_free = false;
      run =
        (fun () ->
          for _ = 1 to inner_ops do
            match P.parse_request cost_line with
            | Ok _ -> ()
            | Error _ -> failwith "microbench: bad line"
          done);
    };
  ]

(* ---------------- work-stealing deque ---------------- *)

let deque () =
  let q = Wnet_par.Deque.create 4096 in
  [
    {
      name = "push-pop";
      ops = inner_ops * 2;
      alloc_free = false (* each push boxes its cell *);
      run =
        (fun () ->
          for i = 1 to inner_ops do
            ignore (Wnet_par.Deque.push q i)
          done;
          for _ = 1 to inner_ops do
            ignore (Sys.opaque_identity (Wnet_par.Deque.pop q))
          done);
    };
    {
      name = "push-steal";
      ops = inner_ops * 2;
      alloc_free = false;
      run =
        (fun () ->
          for i = 1 to inner_ops do
            ignore (Wnet_par.Deque.push q i)
          done;
          for _ = 1 to inner_ops do
            ignore (Sys.opaque_identity (Wnet_par.Deque.steal q))
          done);
    };
  ]

(* ---------------- heaps ---------------- *)

let heap () =
  let pri = Array.init inner_ops (fun i -> float_of_int ((i * 7919) mod 1009)) in
  let bh = Wnet_graph.Binheap.create () in
  let ih = Wnet_graph.Indexed_heap.create inner_ops in
  [
    {
      name = "binheap/push-pop";
      ops = inner_ops * 2;
      alloc_free = false (* float keys are boxed in the heap cells *);
      run =
        (fun () ->
          for i = 0 to inner_ops - 1 do
            Wnet_graph.Binheap.push bh pri.(i) i
          done;
          for _ = 1 to inner_ops do
            ignore (Sys.opaque_identity (Wnet_graph.Binheap.pop_min bh))
          done);
    };
    {
      name = "indexed-heap/insert-pop";
      ops = inner_ops * 2;
      alloc_free = false (* storage is flat, but pop_min returns a tuple *);
      run =
        (fun () ->
          for i = 0 to inner_ops - 1 do
            Wnet_graph.Indexed_heap.insert ih i pri.(i)
          done;
          for _ = 1 to inner_ops do
            ignore (Wnet_graph.Indexed_heap.pop_min ih)
          done);
    };
  ]

(* ---------------- dynamic-SSSP distance repair ---------------- *)

let repair () =
  let n = 200 in
  let rng = Wnet_prng.Rng.create 9 in
  let links = ref [] in
  let p = 4.0 /. float_of_int n in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v && Wnet_prng.Rng.bernoulli rng p then
        links := (u, v, Wnet_prng.Rng.float_range rng 1.0 10.0) :: !links
    done
  done;
  let g = Wnet_graph.Digraph.create ~n ~links:!links in
  let mirror = Wnet_graph.Digraph.reverse g in
  let source = 0 in
  let tree = Wnet_graph.Dijkstra.link_weighted g source in
  let dist = Array.copy tree.Wnet_graph.Dijkstra.dist in
  (* toggle the first link out of the source: on the tree frontier, so
     every repair has a real (small) region to patch *)
  let u, (v, w0) =
    (source, (Wnet_graph.Digraph.out_links g source).(0))
  in
  let scratch = Wnet_graph.Dynamic_sssp.make_dist_scratch n in
  let flip = ref false in
  let toggle () =
    let wa, wb = (w0, w0 *. 2.0) in
    let old_w = if !flip then wb else wa in
    let new_w = if !flip then wa else wb in
    flip := not !flip;
    Wnet_graph.Digraph.set_weight g u v new_w;
    Wnet_graph.Digraph.set_weight mirror v u new_w;
    match
      Wnet_graph.Dynamic_sssp.repair_dist scratch ~graph:g ~mirror ~source
        ~dist
        [ { Wnet_graph.Dynamic_sssp.u; v; w0 = old_w; w1 = new_w } ]
    with
    | `Patched _ -> ()
    | `Overflow ->
      let t = Wnet_graph.Dijkstra.link_weighted g source in
      Array.blit t.Wnet_graph.Dijkstra.dist 0 dist 0 n
  in
  let reps = 32 in
  [
    {
      name = Printf.sprintf "repair-dist/toggle-link/n=%d" n;
      ops = reps;
      alloc_free = false (* edit record + region bookkeeping allocate *);
      run =
        (fun () ->
          for _ = 1 to reps do
            toggle ()
          done);
    };
  ]

(* ---------------- CSR Dijkstra kernels ---------------- *)

let bench_digraph ~n ~seed =
  let rng = Wnet_prng.Rng.create seed in
  let links = ref [] in
  let p = 4.0 /. float_of_int n in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v && Wnet_prng.Rng.bernoulli rng p then
        links := (u, v, Wnet_prng.Rng.float_range rng 1.0 10.0) :: !links
    done
  done;
  Wnet_graph.Digraph.create ~n ~links:!links

let bench_graph ~n ~seed =
  let rng = Wnet_prng.Rng.create seed in
  let costs = Array.init n (fun _ -> Wnet_prng.Rng.float_range rng 0.5 5.0) in
  let edges = ref (List.init n (fun v -> (v, (v + 1) mod n))) in
  for _ = 1 to 2 * n do
    let u = Wnet_prng.Rng.int rng n and v = Wnet_prng.Rng.int rng n in
    if u <> v then edges := (u, v) :: !edges
  done;
  Wnet_graph.Graph.create ~costs ~edges:!edges

(* Full single-source runs: the CSR scratch kernels must be exactly
   zero-allocation (ban-mask bytes, key-only pops, result left in the
   scratch); the boxed closure oracles allocate their result array and
   per-run closure, and are benched alongside for the ns/op contrast. *)
let dijkstra () =
  let n = 256 in
  let dg = bench_digraph ~n ~seed:11 in
  let ng = bench_graph ~n ~seed:12 in
  let s = Wnet_graph.Dijkstra.make_scratch n in
  (* materialize the cached view so run one isn't charged the build *)
  ignore (Wnet_graph.Digraph.csr dg);
  let reps = 32 in
  [
    {
      name = Printf.sprintf "csr/link-scratch/n=%d" n;
      ops = reps;
      alloc_free = true;
      run =
        (fun () ->
          for _ = 1 to reps do
            ignore
              (Sys.opaque_identity (Wnet_graph.Dijkstra.link_weighted_scratch s dg 0))
          done);
    };
    {
      name = Printf.sprintf "boxed/link-dist/n=%d" n;
      ops = reps;
      alloc_free = false (* copies the result array out of the scratch *);
      run =
        (fun () ->
          for _ = 1 to reps do
            ignore
              (Sys.opaque_identity (Wnet_graph.Dijkstra.link_weighted_dist s dg 0))
          done);
    };
    {
      name = Printf.sprintf "csr/node-scratch/n=%d" n;
      ops = reps;
      alloc_free = true;
      run =
        (fun () ->
          for _ = 1 to reps do
            ignore
              (Sys.opaque_identity
                 (Wnet_graph.Dijkstra.node_weighted_scratch s ng ~source:0))
          done);
    };
    {
      name = Printf.sprintf "boxed/node-dist/n=%d" n;
      ops = reps;
      alloc_free = false;
      run =
        (fun () ->
          for _ = 1 to reps do
            ignore
              (Sys.opaque_identity
                 (Wnet_graph.Dijkstra.node_weighted_dist s ng ~source:0))
          done);
    };
  ]

(* ---------------- avoidance sweeps ---------------- *)

(* The payments hot loop: one forbidden-node Dijkstra per relay.  The
   CSR sweep sets one ban byte per run and clears it after; the boxed
   sweep builds the [fun v -> v = k] closure the old path used. *)
let avoid () =
  let n = 256 in
  let dg = bench_digraph ~n ~seed:13 in
  let s = Wnet_graph.Dijkstra.make_scratch n in
  ignore (Wnet_graph.Digraph.csr dg);
  let ban = Wnet_graph.Dijkstra.ban_mask s in
  let reps = 32 in
  [
    {
      name = Printf.sprintf "csr/ban-mask-sweep/n=%d" n;
      ops = reps;
      alloc_free = true;
      run =
        (fun () ->
          for k = 1 to reps do
            Bytes.set ban k '\001';
            ignore
              (Sys.opaque_identity (Wnet_graph.Dijkstra.link_weighted_scratch s dg 0));
            Bytes.set ban k '\000'
          done);
    };
    {
      name = Printf.sprintf "boxed/closure-sweep/n=%d" n;
      ops = reps;
      alloc_free = false (* per-relay closure + result array *);
      run =
        (fun () ->
          for k = 1 to reps do
            ignore
              (Sys.opaque_identity
                 (Wnet_graph.Dijkstra.link_weighted_dist s
                    ~forbidden:(fun v -> v = k)
                    dg 0))
          done);
    };
  ]

(* The subtree-bounded avoidance kernel against the full-graph sweep it
   replaces: same relay set (internal nodes of the shared SPT), same
   searched graph, preallocated index/scratch/dist.  The bounded path
   is the session's per-relay hot loop and must allocate NOTHING — the
   result is an immediate int and the caller owns the dist buffer. *)
let avoid_region () =
  let n = 256 in
  let dg = bench_digraph ~n ~seed:13 in
  let mirror = Wnet_graph.Digraph.reverse dg in
  ignore (Wnet_graph.Digraph.csr dg);
  ignore (Wnet_graph.Digraph.csr mirror);
  let tree = Wnet_graph.Dijkstra.link_weighted dg 0 in
  let idx = Wnet_graph.Avoid_region.make_index tree in
  let ds = Wnet_graph.Dynamic_sssp.make_dist_scratch n in
  let s = Wnet_graph.Dijkstra.make_scratch n in
  let ban = Wnet_graph.Dijkstra.ban_mask s in
  let d = Array.make n infinity in
  let internal = Array.make n false in
  Array.iteri
    (fun _ p -> if p > 0 then internal.(p) <- true)
    tree.Wnet_graph.Dijkstra.parent;
  let relays =
    Array.of_list
      (List.filter (fun k -> internal.(k)) (List.init n (fun k -> k)))
  in
  let reps = min 32 (Array.length relays) in
  [
    {
      name = Printf.sprintf "bounded/subtree-sweep/n=%d" n;
      ops = reps;
      alloc_free = true;
      run =
        (fun () ->
          for i = 0 to reps - 1 do
            let r =
              Wnet_graph.Avoid_region.link_avoid ds ~budget:n idx ~graph:dg
                ~mirror ~tree ~avoid:relays.(i) ~dist:d
            in
            assert (r >= 0)
          done);
    };
    {
      name = Printf.sprintf "full/ban-mask-sweep/n=%d" n;
      ops = reps;
      alloc_free = true;
      run =
        (fun () ->
          for i = 0 to reps - 1 do
            let k = relays.(i) in
            Bytes.set ban k '\001';
            ignore
              (Sys.opaque_identity
                 (Wnet_graph.Dijkstra.link_weighted_scratch s dg 0));
            Bytes.set ban k '\000'
          done);
    };
  ]

(* ---------------- measurement & driver ---------------- *)

let time_once f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

let time_best ?(budget = 0.25) ?(min_reps = 3) ?(max_reps = 200) f =
  f ();
  let best = ref infinity and total = ref 0.0 and reps = ref 0 in
  while !reps < min_reps || (!total < budget && !reps < max_reps) do
    let t = time_once f in
    if t < !best then best := t;
    total := !total +. t;
    incr reps
  done;
  (!best, !reps)

(* Minor words per operation.  [Gc.minor_words] itself allocates its
   boxed float result, so the overhead is bounded by a handful of words
   per *batch* of [reps * ops] operations — the 0.01 threshold in
   {!check_alloc} leaves room for that and nothing else. *)
let alloc_words_per_op ?(reps = 64) p =
  p.run ();
  let w0 = Gc.minor_words () in
  for _ = 1 to reps do
    p.run ()
  done;
  let w1 = Gc.minor_words () in
  (w1 -. w0) /. float_of_int (reps * p.ops)

let native = Sys.backend_type = Sys.Native

let check_alloc family p =
  if p.alloc_free && native then begin
    let w = alloc_words_per_op p in
    if w > 0.01 then begin
      Printf.eprintf
        "%s/%s: allocation regression — %.3f minor words/op on the \
         steady-state path (want 0)\n"
        family p.name w;
      exit 1
    end
  end

let run_family family prims =
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  Printf.printf "== %s microbench%s ==\n" family
    (if smoke then " (smoke)" else "");
  let table =
    Wnet_stats.Table.make
      ~headers:[ "primitive"; "ns/op"; "words/op"; "runs" ]
  in
  List.iter
    (fun p ->
      check_alloc family p;
      let words =
        if native then Printf.sprintf "%.3f" (alloc_words_per_op ~reps:8 p)
        else "n/a"
      in
      let time_s, runs =
        if smoke then (time_once p.run, 1) else time_best p.run
      in
      let ns = time_s /. float_of_int p.ops *. 1e9 in
      Wnet_stats.Table.add_row table
        [ p.name; Printf.sprintf "%.1f" ns; words; string_of_int runs ])
    prims;
  Wnet_stats.Table.print table;
  if not native then
    print_endline "(bytecode build: allocation assertions skipped)"
