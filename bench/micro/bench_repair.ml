let () = Wnet_microbench.run_family "repair" (Wnet_microbench.repair ())
