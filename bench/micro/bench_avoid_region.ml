let () =
  Wnet_microbench.run_family "avoid-region" (Wnet_microbench.avoid_region ())
