let () = Wnet_microbench.run_family "proto-encode" (Wnet_microbench.proto_encode ())
