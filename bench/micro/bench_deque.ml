let () = Wnet_microbench.run_family "deque" (Wnet_microbench.deque ())
