let () = Wnet_microbench.run_family "avoid" (Wnet_microbench.avoid ())
