let () = Wnet_microbench.run_family "heap" (Wnet_microbench.heap ())
