let () = Wnet_microbench.run_family "dijkstra" (Wnet_microbench.dijkstra ())
