(** The versioned line protocol every session front-end speaks.

    One request per line, one or more single-line responses per request
    — the same grammar whether the session is driven over stdin
    ([unicast serve]), over a socket ([unicast listen] /
    {!Wnet_server}), or in-process (the tests' oracle replays).  Parsing
    and printing live here so no front-end ever re-implements them; the
    qcheck suite pins [parse ∘ print = id] on both directions.

    {2 Grammar (protocol version 1)}

    Requests (tokens separated by spaces; blank lines and [#] comments
    are ignored):
    {v
    cost K C                      re-declare node K's relay cost (node model)
    cost U V W                    re-declare link U -> V's cost (link model;
                                  W = inf removes the link)
    join  v:w ... -- u:w ...      a new node joins: out-links, --, in-links
    rejoin K v:w ... -- u:w ...   an isolated node returns under id K
    leave K                       node K departs (its id stays valid)
    pay                           all-to-root payments for the current topology
    stats                         work counters
    proto N                       switch this connection's wire codec
                                  (N = 2 selects {!Wnet_proto_bin} framing)
    session N                     attach this connection to server session N
                                  (socket server only; re-greets with the
                                  target session's ready banner)
    quit | exit                   close the session
    v}

    Responses (first token discriminates):
    {v
    ready proto=1 model=node n=12 root=0 domains=4
    ok version=5                  delta applied
    ok node=13 version=6          join applied, node id assigned
    src 3: path 3 -> 2 -> 0, charge 4.5        (one per served source)
    ok served=11 unbounded=1 total=33.25       (ends a pay reply)
    ok edits=4 coalesced=4 inval_passes=1 spt_runs=2 avoid_runs=5 avoid_reused=9
    server clients=2 requests=10 edits=4 coalesced=4 cache_hits=9 cache_misses=5 bytes_in=120 bytes_out=456
    shard id=0 conns=1 requests=5 edits=2 coalesced=2 inval_passes=1 cache_hits=4 cache_misses=2 repaired=0 tasks=8 stolen=0 bytes_in=60 bytes_out=228
    conn requests=3 bytes_in=40 bytes_out=152 proto=1
    bye
    err <reason>
    v}

    The session-stats [ok] line and the [conn] line both parse with
    trailing counters omitted (older peers printed fewer), the missing
    values reading as 0 (resp. [proto=1]).

    Floats print in the shortest decimal form that parses back to the
    identical bit pattern ([inf] for infinity), so replies round-trip
    exactly — the socket integration test compares charges received as
    text against an in-process oracle with [Float.equal]. *)

val version : int
(** Protocol version, announced in the [ready] banner.  Bump on any
    grammar change. *)

type request =
  | Cost_node of { node : int; cost : float }
  | Cost_link of { u : int; v : int; w : float }
  | Join of { out : (int * float) list; inn : (int * float) list }
  | Rejoin of { node : int; out : (int * float) list; inn : (int * float) list }
  | Leave of { node : int }
  | Pay
  | Stats
  | Proto of { proto : int }
  | Attach of { session : int }
      (** [session N] — move this connection onto server session [N]
          (a sharded server migrates the connection to the owning
          shard).  Transport-level, like {!Proto}. *)
  | Quit

type response =
  | Ready of {
      proto : int;
      model : Wnet_session.model;
      n : int;
      root : int;
      domains : int;
    }
  | Ack of { version : int; node : int option }
  | Served of { src : int; path : int list; charge : float }
  | Paid of { served : int; unbounded : int; total : float }
  | Session_stats of Wnet_session.stats
  | Server_stats of {
      clients : int;
      requests : int;
      edits : int;
      coalesced : int;
      cache_hits : int;
      cache_misses : int;
      bytes_in : int;
      bytes_out : int;
    }
  | Shard_stats of {
      shard : int;
      conns : int;
      requests : int;
      edits : int;
      coalesced : int;
      inval_passes : int;
      cache_hits : int;
      cache_misses : int;
      repaired : int;
      tasks : int;
      stolen : int;
      bytes_in : int;
      bytes_out : int;
    }
      (** One per-shard breakdown row of a sharded server's [stats]
          reply; only emitted when the server runs more than one
          shard, so single-shard transcripts stay byte-identical to
          the pre-shard wire format. *)
  | Conn_stats of {
      requests : int;
      bytes_in : int;
      bytes_out : int;
      proto : int;  (** wire codec the connection currently speaks *)
    }
  | Bye
  | Err of string

val float_to_string : float -> string
(** Shortest decimal form that [float_of_string]s back to the identical
    value; ["inf"]/["-inf"]/["nan"] for the non-finite values. *)

val parse_request : string -> (request option, string) result
(** [Ok None] for blank lines and [#] comments; [Error reason] on a
    malformed or unknown request — the explicit error channel front-ends
    must answer with [err reason] instead of silently skipping. *)

val print_request : request -> string
(** Canonical wire form; [parse_request (print_request r) = Ok (Some r)]
    (floats compared with [Float.equal]). *)

val parse_response : string -> (response, string) result
val print_response : response -> string
(** Canonical wire form; [parse_response (print_response r) = Ok r]. *)

val greeting : ?proto:int -> (module Wnet_session.S) -> response
(** The [ready] banner a front-end sends when a session opens.
    [?proto] (default {!version}) lets the socket server acknowledge a
    codec upgrade with a [ready proto=2 ...] banner. *)

val handle : (module Wnet_session.S) -> request -> response list
(** The generic serve step shared by the stdin loop and the socket
    server: apply the request to the session and produce the reply
    lines.  [Pay] yields one [Served] per source plus a closing [Paid];
    engine errors ([Failure], [Invalid_argument]) surface as [Err];
    [Quit] yields [Bye] (closing the transport is the caller's job). *)

val handle_line :
  (module Wnet_session.S) ->
  string ->
  [ `Empty | `Reply of response list | `Quit of response list ]
(** {!parse_request} + {!handle}: one input line to its reply lines,
    with [`Quit] telling the caller to close after sending. *)
