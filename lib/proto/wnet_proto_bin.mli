(** Binary wire codec for the {!Wnet_proto} grammar — protocol 2.

    Same requests, same responses, different framing: instead of one
    text line per message, proto=2 ships length-prefixed binary frames

    {v
    frame   := payload_len:u32le payload        payload_len <= max_frame
    payload := count:u16le message{count}       count >= 1
    message := tag:u8 fields...                 fixed-width little-endian
    v}

    Integers are fixed-width little-endian (ids [u32], stats counters
    [i64]); floats are shipped as their IEEE-754 bit pattern
    ([Int64.bits_of_float]), so a decode of an encode is {e bitwise}
    identical — NaN payloads, negative zero and infinities included —
    with none of the [%.17g] printing the text codec leans on.

    A frame with [count > 1] is a batch: the transport delivers a
    k-edit burst in one write and one read, and the server applies it
    in one buffered pass, so the session coalesces it into one
    invalidation exactly like a k-line text burst.

    Negotiation rides the text protocol: a client opens in proto=1,
    sends [proto 2], and the server answers with a text
    [ready proto=2 ...] banner after which {e both} directions of that
    connection speak frames.  Text clients never see a frame.

    {2 Allocation discipline}

    The codec is allocation-free on the steady-state path.  Encoding
    appends into a caller-owned growable scratch ({!enc}); once the
    scratch has reached its high-water capacity, encoding any
    fixed-size message allocates nothing.  Decoding fills a
    caller-owned mutable {!view} whose single float slot lives in an
    unboxed float array, and returns constant variants — no allocation
    for fixed-size messages.  Variable-size payloads (join/rejoin
    endpoint lists, served paths, err text) materialise lists/strings
    and are the documented cold path.  [bench/micro/bench_proto_*]
    asserts the zero-allocation claim with [Gc.minor_words] deltas.

    Framing errors (bad length, unknown tag, trailing bytes) are
    {e sticky}: a binary stream cannot resynchronise after a corrupt
    frame, so every later {!decode_next} reports the same error and the
    transport should close the connection. *)

val version : int
(** 2 — the value negotiated by the [proto 2] request. *)

val max_frame : int
(** Upper bound on a frame's payload size in bytes; frames claiming
    more are rejected (bounds decoder buffering against hostile
    peers). *)

val max_batch : int
(** Upper bound on messages per frame (65535). *)

(** {2 Encoding} *)

type enc
(** A growable output scratch.  Encoded frames accumulate; the
    transport drains them with {!enc_buffer}/{!enc_offset}/
    {!enc_pending} + {!enc_consume} (partial writes supported). *)

val enc_create : ?cap:int -> unit -> enc
val enc_pending : enc -> int
(** Bytes encoded and not yet consumed. *)

val enc_buffer : enc -> Bytes.t
(** The scratch itself; valid bytes are
    [[enc_offset e, enc_offset e + enc_pending e)].  Invalidated by the
    next [encode_*] call (the buffer may grow and move). *)

val enc_offset : enc -> int
val enc_consume : enc -> int -> unit
(** Mark [n] leading pending bytes as written to the transport.
    @raise Invalid_argument if [n] exceeds {!enc_pending}. *)

val enc_reset : enc -> unit
(** Drop all pending bytes (keeps the scratch). *)

val encode_request : enc -> Wnet_proto.request -> unit
(** Append a single-message frame.
    @raise Invalid_argument on a value outside the wire's fixed-width
    ranges (ids must fit u32, endpoint counts u16). *)

val encode_requests : enc -> Wnet_proto.request list -> unit
(** Append ONE batch frame holding every request, in order.
    @raise Invalid_argument on an empty list, more than {!max_batch}
    messages, or a frame exceeding {!max_frame}. *)

val encode_response : enc -> Wnet_proto.response -> unit
val encode_responses : enc -> Wnet_proto.response list -> unit

(** {2 Decoding} *)

type dec
(** An input reassembly buffer: feed transport chunks in, pull decoded
    messages out.  Frames are yielded only once complete, one message
    per {!decode_next} call. *)

val dec_create : ?cap:int -> unit -> dec
val dec_pending : dec -> int
(** Buffered bytes not yet decoded. *)

val dec_feed : dec -> Bytes.t -> int -> int -> unit
(** [dec_feed d src off len] appends [src[off..off+len)]. *)

val dec_feed_string : dec -> string -> int -> int -> unit

type view = {
  mutable tag : int;
  mutable i0 : int;
  mutable i1 : int;
  fl : float array;  (** length 1: the message's float slot *)
  counters : int array;  (** length 12: stats counter slots *)
  mutable path : int list;
  mutable out_eps : (int * float) list;
  mutable inn_eps : (int * float) list;
  mutable text : string;
}
(** A decoded message, unpacked into reusable slots (see
    {!request_of_view}/{!response_of_view} for the slot assignment per
    tag).  Reused across {!decode_next} calls; slots not written by the
    current message keep stale values. *)

val make_view : unit -> view

val decode_next : dec -> view -> [ `Msg | `Need_more | `Corrupt of string ]
(** Decode the next message of the stream into [v].  [`Need_more]
    until the message's whole frame has been fed.  [`Corrupt] is
    sticky. *)

val request_of_view : view -> (Wnet_proto.request, string) result
(** Materialise the request in [v] (allocates).  [Error] if the tag is
    a response tag. *)

val response_of_view : view -> (Wnet_proto.response, string) result

val decode_request :
  dec -> view -> [ `Req of Wnet_proto.request | `Need_more | `Corrupt of string ]
(** {!decode_next} + {!request_of_view}; a response tag is [`Corrupt]. *)

val decode_response :
  dec ->
  view ->
  [ `Resp of Wnet_proto.response | `Need_more | `Corrupt of string ]
