(* Binary wire codec (proto=2) for the Wnet_proto grammar.

   Layout: every frame is [payload_len:u32le][count:u16le][count
   messages], each message a tag byte followed by fixed-width
   little-endian fields.  Floats travel as their IEEE-754 bit pattern
   (Int64.bits_of_float), so round-trips are bitwise exact with no
   decimal printing involved.  The hot-path encode/decode of fixed-size
   messages performs no allocation: the encoder appends into a
   preallocated growable Bytes and the decoder fills a caller-owned
   mutable [view] whose only float slot is an unboxed float array cell.

   A decoder waits until a frame is complete before yielding messages,
   so there is no partial-message state; the frame length is capped
   (max_frame) to bound buffering against hostile peers.  Framing
   errors are sticky: once a frame is corrupt the byte stream cannot be
   resynchronised, and every later decode_next reports the same error. *)

let version = 2
let max_frame = 1 lsl 20 (* payload bytes per frame *)
let max_batch = 0xffff

(* Message tags: requests 0x01.., responses 0x41.. *)
let tag_cost_node = 0x01
let tag_cost_link = 0x02
let tag_join = 0x03
let tag_rejoin = 0x04
let tag_leave = 0x05
let tag_pay = 0x06
let tag_stats = 0x07
let tag_quit = 0x08
let tag_proto = 0x09
let tag_attach = 0x0a
let tag_ready = 0x41
let tag_ack = 0x42
let tag_served = 0x43
let tag_paid = 0x44
let tag_session_stats = 0x45
let tag_server_stats = 0x46
let tag_conn_stats = 0x47
let tag_bye = 0x48
let tag_err = 0x49
let tag_shard_stats = 0x4a

let check_u32 what v =
  if v < 0 || v > 0xffff_ffff then
    invalid_arg (Printf.sprintf "proto_bin: %s %d out of u32 range" what v)

let check_u16 what v =
  if v < 0 || v > 0xffff then
    invalid_arg (Printf.sprintf "proto_bin: %s %d out of u16 range" what v)

let check_u8 what v =
  if v < 0 || v > 0xff then
    invalid_arg (Printf.sprintf "proto_bin: %s %d out of u8 range" what v)

(* ---------------- encoder ---------------- *)

type enc = {
  mutable ebuf : Bytes.t;
  mutable eoff : int;  (* first byte not yet handed to the transport *)
  mutable elen : int;  (* end of encoded bytes *)
}

let enc_create ?(cap = 512) () =
  { ebuf = Bytes.create (max cap 64); eoff = 0; elen = 0 }

let enc_pending e = e.elen - e.eoff
let enc_buffer e = e.ebuf
let enc_offset e = e.eoff

let enc_reset e =
  e.eoff <- 0;
  e.elen <- 0

let enc_consume e n =
  if n < 0 || n > enc_pending e then
    invalid_arg "proto_bin: enc_consume out of range";
  e.eoff <- e.eoff + n;
  if e.eoff = e.elen then enc_reset e

let ensure e extra =
  let need = e.elen + extra in
  if need > Bytes.length e.ebuf then begin
    let cap = ref (Bytes.length e.ebuf) in
    while !cap < need do
      cap := !cap * 2
    done;
    let nb = Bytes.create !cap in
    Bytes.blit e.ebuf 0 nb 0 e.elen;
    e.ebuf <- nb
  end

let put_u8 e v =
  ensure e 1;
  Bytes.unsafe_set e.ebuf e.elen (Char.unsafe_chr (v land 0xff));
  e.elen <- e.elen + 1

let put_u16 e v =
  ensure e 2;
  Bytes.set_uint16_le e.ebuf e.elen v;
  e.elen <- e.elen + 2

let put_u32 e v =
  ensure e 4;
  Bytes.set_int32_le e.ebuf e.elen (Int32.of_int v);
  e.elen <- e.elen + 4

let put_i64 e v =
  ensure e 8;
  Bytes.set_int64_le e.ebuf e.elen (Int64.of_int v);
  e.elen <- e.elen + 8

let put_f64 e f =
  ensure e 8;
  Bytes.set_int64_le e.ebuf e.elen (Int64.bits_of_float f);
  e.elen <- e.elen + 8

(* Frames are encoded in place and the length patched afterwards. *)
let begin_frame e =
  let pos = e.elen in
  put_u32 e 0;
  pos

let end_frame e pos =
  let payload = e.elen - pos - 4 in
  if payload > max_frame then begin
    e.elen <- pos;
    invalid_arg "proto_bin: frame exceeds max_frame"
  end;
  Bytes.set_int32_le e.ebuf pos (Int32.of_int payload)

let put_endpoints e eps =
  List.iter
    (fun (v, w) ->
      check_u32 "endpoint node" v;
      put_u32 e v;
      put_f64 e w)
    eps

let put_request e (r : Wnet_proto.request) =
  match r with
  | Cost_node { node; cost } ->
    check_u32 "node" node;
    put_u8 e tag_cost_node;
    put_u32 e node;
    put_f64 e cost
  | Cost_link { u; v; w } ->
    check_u32 "u" u;
    check_u32 "v" v;
    put_u8 e tag_cost_link;
    put_u32 e u;
    put_u32 e v;
    put_f64 e w
  | Join { out; inn } ->
    let nout = List.length out and nin = List.length inn in
    check_u16 "join out-degree" nout;
    check_u16 "join in-degree" nin;
    put_u8 e tag_join;
    put_u16 e nout;
    put_u16 e nin;
    put_endpoints e out;
    put_endpoints e inn
  | Rejoin { node; out; inn } ->
    check_u32 "node" node;
    let nout = List.length out and nin = List.length inn in
    check_u16 "rejoin out-degree" nout;
    check_u16 "rejoin in-degree" nin;
    put_u8 e tag_rejoin;
    put_u32 e node;
    put_u16 e nout;
    put_u16 e nin;
    put_endpoints e out;
    put_endpoints e inn
  | Leave { node } ->
    check_u32 "node" node;
    put_u8 e tag_leave;
    put_u32 e node
  | Pay -> put_u8 e tag_pay
  | Stats -> put_u8 e tag_stats
  | Proto { proto } ->
    check_u8 "proto" proto;
    put_u8 e tag_proto;
    put_u8 e proto
  | Attach { session } ->
    check_u32 "session" session;
    put_u8 e tag_attach;
    put_u32 e session
  | Quit -> put_u8 e tag_quit

let put_response e (r : Wnet_proto.response) =
  match r with
  | Ready { proto; model; n; root; domains } ->
    check_u32 "n" n;
    check_u32 "root" root;
    check_u32 "domains" domains;
    check_u8 "proto" proto;
    put_u8 e tag_ready;
    put_u8 e proto;
    put_u8 e (match model with `Node -> 0 | `Link -> 1);
    put_u32 e n;
    put_u32 e root;
    put_u32 e domains
  | Ack { version; node } ->
    check_u32 "version" version;
    put_u8 e tag_ack;
    put_u32 e version;
    (match node with
    | None -> put_u32 e 0
    | Some id ->
      check_u32 "node" (id + 1);
      put_u32 e (id + 1))
  | Served { src; path; charge } ->
    check_u32 "src" src;
    put_u8 e tag_served;
    put_u32 e src;
    let len = List.length path in
    check_u32 "path length" len;
    put_u32 e len;
    List.iter
      (fun v ->
        check_u32 "path node" v;
        put_u32 e v)
      path;
    put_f64 e charge
  | Paid { served; unbounded; total } ->
    check_u32 "served" served;
    check_u32 "unbounded" unbounded;
    put_u8 e tag_paid;
    put_u32 e served;
    put_u32 e unbounded;
    put_f64 e total
  | Session_stats st ->
    put_u8 e tag_session_stats;
    put_i64 e st.edits;
    put_i64 e st.coalesced_edits;
    put_i64 e st.inval_passes;
    put_i64 e st.spt_runs;
    put_i64 e st.avoid_runs;
    put_i64 e st.avoid_reused;
    put_i64 e st.repaired_entries;
    put_i64 e st.fallback_recomputes;
    put_i64 e st.tasks_executed;
    put_i64 e st.tasks_stolen;
    put_i64 e st.avoid_bounded;
    put_i64 e st.avoid_fallback
  | Server_stats
      {
        clients;
        requests;
        edits;
        coalesced;
        cache_hits;
        cache_misses;
        bytes_in;
        bytes_out;
      } ->
    put_u8 e tag_server_stats;
    put_i64 e clients;
    put_i64 e requests;
    put_i64 e edits;
    put_i64 e coalesced;
    put_i64 e cache_hits;
    put_i64 e cache_misses;
    put_i64 e bytes_in;
    put_i64 e bytes_out
  | Shard_stats
      {
        shard;
        conns;
        requests;
        edits;
        coalesced;
        inval_passes;
        cache_hits;
        cache_misses;
        repaired;
        tasks;
        stolen;
        bytes_in;
        bytes_out;
      } ->
    check_u16 "shard" shard;
    put_u8 e tag_shard_stats;
    put_u16 e shard;
    put_i64 e conns;
    put_i64 e requests;
    put_i64 e edits;
    put_i64 e coalesced;
    put_i64 e inval_passes;
    put_i64 e cache_hits;
    put_i64 e cache_misses;
    put_i64 e repaired;
    put_i64 e tasks;
    put_i64 e stolen;
    put_i64 e bytes_in;
    put_i64 e bytes_out
  | Conn_stats { requests; bytes_in; bytes_out; proto } ->
    check_u8 "proto" proto;
    put_u8 e tag_conn_stats;
    put_u8 e proto;
    put_i64 e requests;
    put_i64 e bytes_in;
    put_i64 e bytes_out
  | Bye -> put_u8 e tag_bye
  | Err m ->
    let m =
      if String.length m > 0xffff then String.sub m 0 0xffff else m
    in
    put_u8 e tag_err;
    put_u16 e (String.length m);
    ensure e (String.length m);
    Bytes.blit_string m 0 e.ebuf e.elen (String.length m);
    e.elen <- e.elen + String.length m

let encode_request e r =
  let pos = begin_frame e in
  put_u16 e 1;
  put_request e r;
  end_frame e pos

let encode_response e r =
  let pos = begin_frame e in
  put_u16 e 1;
  put_response e r;
  end_frame e pos

let batch_count what = function
  | [] -> invalid_arg (Printf.sprintf "proto_bin: empty %s batch" what)
  | l ->
    let k = List.length l in
    if k > max_batch then
      invalid_arg (Printf.sprintf "proto_bin: %s batch of %d > %d" what k
          max_batch);
    k

(* Plain recursion instead of [List.iter (put_request e)]: the partial
   application would allocate a closure per batch frame, and the batch
   path promises zero steady-state allocation. *)
let rec put_requests e = function
  | [] -> ()
  | r :: rs ->
    put_request e r;
    put_requests e rs

let rec put_responses e = function
  | [] -> ()
  | r :: rs ->
    put_response e r;
    put_responses e rs

let encode_requests e rs =
  let k = batch_count "request" rs in
  let pos = begin_frame e in
  put_u16 e k;
  put_requests e rs;
  end_frame e pos

let encode_responses e rs =
  let k = batch_count "response" rs in
  let pos = begin_frame e in
  put_u16 e k;
  put_responses e rs;
  end_frame e pos

(* ---------------- decoder ---------------- *)

type dec = {
  mutable dbuf : Bytes.t;
  mutable dpos : int;  (* read cursor *)
  mutable dlen : int;  (* end of valid bytes *)
  mutable dmsgs : int;  (* messages left in the current frame *)
  mutable dend : int;  (* end of the current frame payload *)
  mutable dbad : string;  (* sticky framing error, "" = healthy *)
}

let dec_create ?(cap = 512) () =
  {
    dbuf = Bytes.create (max cap 64);
    dpos = 0;
    dlen = 0;
    dmsgs = 0;
    dend = 0;
    dbad = "";
  }

let dec_pending d = d.dlen - d.dpos

let dec_feed d src off len =
  if off < 0 || len < 0 || off + len > Bytes.length src then
    invalid_arg "proto_bin: dec_feed out of range";
  (* compact: drop consumed bytes so the buffer stays bounded *)
  if d.dpos > 0 then begin
    Bytes.blit d.dbuf d.dpos d.dbuf 0 (d.dlen - d.dpos);
    d.dlen <- d.dlen - d.dpos;
    d.dend <- d.dend - d.dpos;
    d.dpos <- 0
  end;
  let need = d.dlen + len in
  if need > Bytes.length d.dbuf then begin
    let cap = ref (Bytes.length d.dbuf) in
    while !cap < need do
      cap := !cap * 2
    done;
    let nb = Bytes.create !cap in
    Bytes.blit d.dbuf 0 nb 0 d.dlen;
    d.dbuf <- nb
  end;
  Bytes.blit src off d.dbuf d.dlen len;
  d.dlen <- d.dlen + len

let dec_feed_string d s off len = dec_feed d (Bytes.unsafe_of_string s) off len

type view = {
  mutable tag : int;
  mutable i0 : int;
  mutable i1 : int;
  fl : float array;  (* length 1: the message's float slot *)
  counters : int array;  (* length 12: stats counter slots *)
  mutable path : int list;
  mutable out_eps : (int * float) list;
  mutable inn_eps : (int * float) list;
  mutable text : string;
}

let make_view () =
  {
    tag = 0;
    i0 = 0;
    i1 = 0;
    fl = Array.make 1 0.0;
    counters = Array.make 12 0;
    path = [];
    out_eps = [];
    inn_eps = [];
    text = "";
  }

exception Corrupt of string

let fail_frame m = raise (Corrupt m)

let need d n = if d.dpos + n > d.dend then fail_frame "truncated message"

let get_u8 d =
  need d 1;
  let v = Char.code (Bytes.unsafe_get d.dbuf d.dpos) in
  d.dpos <- d.dpos + 1;
  v

let get_u16 d =
  need d 2;
  let v = Bytes.get_uint16_le d.dbuf d.dpos in
  d.dpos <- d.dpos + 2;
  v

let get_u32 d =
  need d 4;
  let v = Int32.to_int (Bytes.get_int32_le d.dbuf d.dpos) land 0xffff_ffff in
  d.dpos <- d.dpos + 4;
  v

let get_i64 d =
  need d 8;
  let v = Int64.to_int (Bytes.get_int64_le d.dbuf d.dpos) in
  d.dpos <- d.dpos + 8;
  v

let get_f64 d =
  need d 8;
  let v = Int64.float_of_bits (Bytes.get_int64_le d.dbuf d.dpos) in
  d.dpos <- d.dpos + 8;
  v

(* Read a float straight into the view's unboxed slot.  Without
   flambda, a [get_f64] call boxes its float return value (2 minor
   words per message); storing through the float-array slot inside one
   expression keeps the whole read unboxed, which the microbench
   asserts ([bench/micro/bench_proto_decode]). *)
let get_f64_into d (fl : float array) =
  need d 8;
  fl.(0) <- Int64.float_of_bits (Bytes.get_int64_le d.dbuf d.dpos);
  d.dpos <- d.dpos + 8

let get_endpoints d k =
  let rec go k acc =
    if k = 0 then List.rev acc
    else begin
      let v = get_u32 d in
      let w = get_f64 d in
      go (k - 1) ((v, w) :: acc)
    end
  in
  go k []

let decode_msg d (v : view) =
  let tag = get_u8 d in
  v.tag <- tag;
  if tag = tag_cost_link then begin
    (* hottest message first: one bounds check, three reads, no alloc *)
    need d 16;
    v.i0 <- get_u32 d;
    v.i1 <- get_u32 d;
    get_f64_into d v.fl
  end
  else if tag = tag_cost_node then begin
    need d 12;
    v.i0 <- get_u32 d;
    get_f64_into d v.fl
  end
  else if tag = tag_ack then begin
    need d 8;
    v.i0 <- get_u32 d;
    v.i1 <- get_u32 d
  end
  else if tag = tag_paid then begin
    need d 16;
    v.i0 <- get_u32 d;
    v.i1 <- get_u32 d;
    get_f64_into d v.fl
  end
  else if tag = tag_leave then v.i0 <- get_u32 d
  else if tag = tag_pay || tag = tag_stats || tag = tag_quit || tag = tag_bye
  then ()
  else if tag = tag_served then begin
    v.i0 <- get_u32 d;
    let len = get_u32 d in
    need d ((4 * len) + 8);
    let rec go k acc = if k = 0 then acc else go (k - 1) (get_u32 d :: acc) in
    v.path <- List.rev (go len []);
    v.fl.(0) <- get_f64 d
  end
  else if tag = tag_join then begin
    let nout = get_u16 d in
    let nin = get_u16 d in
    v.out_eps <- get_endpoints d nout;
    v.inn_eps <- get_endpoints d nin
  end
  else if tag = tag_rejoin then begin
    v.i0 <- get_u32 d;
    let nout = get_u16 d in
    let nin = get_u16 d in
    v.out_eps <- get_endpoints d nout;
    v.inn_eps <- get_endpoints d nin
  end
  else if tag = tag_proto then v.i0 <- get_u8 d
  else if tag = tag_attach then begin
    need d 4;
    v.i0 <- get_u32 d
  end
  else if tag = tag_ready then begin
    need d 14;
    v.i0 <- get_u8 d;
    v.i1 <- get_u8 d;
    v.counters.(0) <- get_u32 d;
    v.counters.(1) <- get_u32 d;
    v.counters.(2) <- get_u32 d
  end
  else if tag = tag_session_stats then begin
    need d 96;
    for i = 0 to 11 do
      v.counters.(i) <- get_i64 d
    done
  end
  else if tag = tag_server_stats then begin
    need d 64;
    for i = 0 to 7 do
      v.counters.(i) <- get_i64 d
    done
  end
  else if tag = tag_shard_stats then begin
    need d 98;
    v.i0 <- get_u16 d;
    for i = 0 to 11 do
      v.counters.(i) <- get_i64 d
    done
  end
  else if tag = tag_conn_stats then begin
    need d 25;
    v.i0 <- get_u8 d;
    for i = 0 to 2 do
      v.counters.(i) <- get_i64 d
    done
  end
  else if tag = tag_err then begin
    let len = get_u16 d in
    need d len;
    v.text <- Bytes.sub_string d.dbuf d.dpos len;
    d.dpos <- d.dpos + len
  end
  else fail_frame "unknown message tag"

let decode_next d (v : view) =
  if d.dbad <> "" then `Corrupt d.dbad
  else begin
    try
      if d.dmsgs = 0 then begin
        (* at a frame boundary: wait for the whole frame *)
        if d.dlen - d.dpos < 4 then raise Exit;
        let payload =
          Int32.to_int (Bytes.get_int32_le d.dbuf d.dpos) land 0xffff_ffff
        in
        if payload < 3 || payload > max_frame then
          fail_frame "bad frame length";
        if d.dlen - d.dpos < 4 + payload then raise Exit;
        d.dend <- d.dpos + 4 + payload;
        d.dpos <- d.dpos + 4;
        let count = Bytes.get_uint16_le d.dbuf d.dpos in
        d.dpos <- d.dpos + 2;
        if count = 0 then fail_frame "empty frame"
        else d.dmsgs <- count
      end;
      decode_msg d v;
      d.dmsgs <- d.dmsgs - 1;
      if d.dmsgs = 0 && d.dpos <> d.dend then
        fail_frame "trailing bytes in frame"
      else `Msg
    with
    | Exit -> `Need_more
    | Corrupt m ->
      d.dbad <- m;
      `Corrupt m
  end

let request_of_view (v : view) : (Wnet_proto.request, string) result =
  let t = v.tag in
  if t = tag_cost_node then Ok (Cost_node { node = v.i0; cost = v.fl.(0) })
  else if t = tag_cost_link then
    Ok (Cost_link { u = v.i0; v = v.i1; w = v.fl.(0) })
  else if t = tag_join then Ok (Join { out = v.out_eps; inn = v.inn_eps })
  else if t = tag_rejoin then
    Ok (Rejoin { node = v.i0; out = v.out_eps; inn = v.inn_eps })
  else if t = tag_leave then Ok (Leave { node = v.i0 })
  else if t = tag_pay then Ok Pay
  else if t = tag_stats then Ok Stats
  else if t = tag_proto then Ok (Proto { proto = v.i0 })
  else if t = tag_attach then Ok (Attach { session = v.i0 })
  else if t = tag_quit then Ok Quit
  else Error (Printf.sprintf "not a request tag 0x%02x" t)

let response_of_view (v : view) : (Wnet_proto.response, string) result =
  let t = v.tag in
  if t = tag_ready then
    if v.i1 <> 0 && v.i1 <> 1 then Error "ready: bad model byte"
    else
      Ok
        (Ready
           {
             proto = v.i0;
             model = (if v.i1 = 0 then `Node else `Link);
             n = v.counters.(0);
             root = v.counters.(1);
             domains = v.counters.(2);
           })
  else if t = tag_ack then
    Ok
      (Ack
         {
           version = v.i0;
           node = (if v.i1 = 0 then None else Some (v.i1 - 1));
         })
  else if t = tag_served then
    Ok (Served { src = v.i0; path = v.path; charge = v.fl.(0) })
  else if t = tag_paid then
    Ok (Paid { served = v.i0; unbounded = v.i1; total = v.fl.(0) })
  else if t = tag_session_stats then
    let c = v.counters in
    Ok
      (Session_stats
         {
           edits = c.(0);
           coalesced_edits = c.(1);
           inval_passes = c.(2);
           spt_runs = c.(3);
           avoid_runs = c.(4);
           avoid_reused = c.(5);
           repaired_entries = c.(6);
           fallback_recomputes = c.(7);
           tasks_executed = c.(8);
           tasks_stolen = c.(9);
           avoid_bounded = c.(10);
           avoid_fallback = c.(11);
         })
  else if t = tag_server_stats then
    let c = v.counters in
    Ok
      (Server_stats
         {
           clients = c.(0);
           requests = c.(1);
           edits = c.(2);
           coalesced = c.(3);
           cache_hits = c.(4);
           cache_misses = c.(5);
           bytes_in = c.(6);
           bytes_out = c.(7);
         })
  else if t = tag_shard_stats then
    let c = v.counters in
    Ok
      (Shard_stats
         {
           shard = v.i0;
           conns = c.(0);
           requests = c.(1);
           edits = c.(2);
           coalesced = c.(3);
           inval_passes = c.(4);
           cache_hits = c.(5);
           cache_misses = c.(6);
           repaired = c.(7);
           tasks = c.(8);
           stolen = c.(9);
           bytes_in = c.(10);
           bytes_out = c.(11);
         })
  else if t = tag_conn_stats then
    Ok
      (Conn_stats
         {
           proto = v.i0;
           requests = v.counters.(0);
           bytes_in = v.counters.(1);
           bytes_out = v.counters.(2);
         })
  else if t = tag_bye then Ok Bye
  else if t = tag_err then Ok (Err v.text)
  else Error (Printf.sprintf "not a response tag 0x%02x" t)

let decode_request d v =
  match decode_next d v with
  | `Msg -> (
    match request_of_view v with
    | Ok r -> `Req r
    | Error m ->
      d.dbad <- m;
      `Corrupt m)
  | (`Need_more | `Corrupt _) as x -> x

let decode_response d v =
  match decode_next d v with
  | `Msg -> (
    match response_of_view v with
    | Ok r -> `Resp r
    | Error m ->
      d.dbad <- m;
      `Corrupt m)
  | (`Need_more | `Corrupt _) as x -> x
