let version = 1

type request =
  | Cost_node of { node : int; cost : float }
  | Cost_link of { u : int; v : int; w : float }
  | Join of { out : (int * float) list; inn : (int * float) list }
  | Rejoin of { node : int; out : (int * float) list; inn : (int * float) list }
  | Leave of { node : int }
  | Pay
  | Stats
  | Proto of { proto : int }
  | Attach of { session : int }
  | Quit

type response =
  | Ready of {
      proto : int;
      model : Wnet_session.model;
      n : int;
      root : int;
      domains : int;
    }
  | Ack of { version : int; node : int option }
  | Served of { src : int; path : int list; charge : float }
  | Paid of { served : int; unbounded : int; total : float }
  | Session_stats of Wnet_session.stats
  | Server_stats of {
      clients : int;
      requests : int;
      edits : int;
      coalesced : int;
      cache_hits : int;
      cache_misses : int;
      bytes_in : int;
      bytes_out : int;
    }
  | Shard_stats of {
      shard : int;
      conns : int;
      requests : int;
      edits : int;
      coalesced : int;
      inval_passes : int;
      cache_hits : int;
      cache_misses : int;
      repaired : int;
      tasks : int;
      stolen : int;
      bytes_in : int;
      bytes_out : int;
    }
  | Conn_stats of {
      requests : int;
      bytes_in : int;
      bytes_out : int;
      proto : int;
    }
  | Bye
  | Err of string

(* Shortest decimal form that parses back bit-identically: %.12g covers
   every weight arising from the short decimal inputs the tools emit,
   %.17g is exact for any double.  "inf"/"nan" round-trip through
   float_of_string as-is. *)
let float_to_string f =
  let s = Printf.sprintf "%.12g" f in
  if Float.equal (float_of_string s) f then s else Printf.sprintf "%.17g" f

let ( let* ) = Result.bind

let tokens line =
  String.split_on_char ' '
    (String.map (fun c -> if c = '\t' then ' ' else c) line)
  |> List.filter (fun t -> t <> "")

let int_tok what s =
  match int_of_string_opt s with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "%s: bad integer %S" what s)

let float_tok what s =
  match float_of_string_opt s with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "%s: bad number %S" what s)

let endpoint_tok what s =
  let bad () =
    Error (Printf.sprintf "%s: bad endpoint %S (want NODE:WEIGHT)" what s)
  in
  match String.index_opt s ':' with
  | None -> bad ()
  | Some i -> (
    let v = String.sub s 0 i
    and w = String.sub s (i + 1) (String.length s - i - 1) in
    match (int_of_string_opt v, float_of_string_opt w) with
    | Some v, Some w -> Ok (v, w)
    | _ -> bad ())

let rec endpoints what = function
  | [] -> Ok []
  | t :: rest ->
    let* e = endpoint_tok what t in
    let* es = endpoints what rest in
    Ok (e :: es)

let rec split_dash what acc = function
  | [] ->
    Error
      (Printf.sprintf "%s: missing `--' separating out-links from in-links"
         what)
  | "--" :: rest -> Ok (List.rev acc, rest)
  | t :: rest -> split_dash what (t :: acc) rest

let links what rest =
  let* outs, inns = split_dash what [] rest in
  let* out = endpoints what outs in
  let* inn = endpoints what inns in
  Ok (out, inn)

let parse_request line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then Ok None
  else
    let req =
      match tokens line with
      | [ "cost"; a; b ] ->
        let* node = int_tok "cost" a in
        let* cost = float_tok "cost" b in
        Ok (Cost_node { node; cost })
      | [ "cost"; a; b; c ] ->
        let* u = int_tok "cost" a in
        let* v = int_tok "cost" b in
        let* w = float_tok "cost" c in
        Ok (Cost_link { u; v; w })
      | "cost" :: _ -> Error "cost: want `cost NODE COST' or `cost U V W'"
      | "join" :: rest ->
        let* out, inn = links "join" rest in
        Ok (Join { out; inn })
      | "rejoin" :: k :: rest ->
        let* node = int_tok "rejoin" k in
        let* out, inn = links "rejoin" rest in
        Ok (Rejoin { node; out; inn })
      | [ "rejoin" ] -> Error "rejoin: want `rejoin NODE v:w ... -- u:w ...'"
      | [ "leave"; k ] ->
        let* node = int_tok "leave" k in
        Ok (Leave { node })
      | "leave" :: _ -> Error "leave: want `leave NODE'"
      | [ "pay" ] -> Ok Pay
      | [ "stats" ] -> Ok Stats
      | [ "proto"; p ] ->
        let* proto = int_tok "proto" p in
        Ok (Proto { proto })
      | "proto" :: _ -> Error "proto: want `proto N'"
      | [ "session"; k ] ->
        let* session = int_tok "session" k in
        Ok (Attach { session })
      | "session" :: _ -> Error "session: want `session N'"
      | [ "quit" ] | [ "exit" ] -> Ok Quit
      | t :: _ -> Error (Printf.sprintf "unknown request %S" t)
      | [] -> Error "empty request"
    in
    Result.map Option.some req

let endpoint_str (v, w) = Printf.sprintf "%d:%s" v (float_to_string w)

let print_request = function
  | Cost_node { node; cost } ->
    Printf.sprintf "cost %d %s" node (float_to_string cost)
  | Cost_link { u; v; w } ->
    Printf.sprintf "cost %d %d %s" u v (float_to_string w)
  | Join { out; inn } ->
    String.concat " "
      (("join" :: List.map endpoint_str out)
      @ ("--" :: List.map endpoint_str inn))
  | Rejoin { node; out; inn } ->
    String.concat " "
      (("rejoin" :: string_of_int node :: List.map endpoint_str out)
      @ ("--" :: List.map endpoint_str inn))
  | Leave { node } -> Printf.sprintf "leave %d" node
  | Pay -> "pay"
  | Stats -> "stats"
  | Proto { proto } -> Printf.sprintf "proto %d" proto
  | Attach { session } -> Printf.sprintf "session %d" session
  | Quit -> "quit"

let model_str = function `Node -> "node" | `Link -> "link"

let model_of_string = function
  | "node" -> Ok `Node
  | "link" -> Ok `Link
  | s -> Error (Printf.sprintf "bad model %S" s)

let print_response = function
  | Ready { proto; model; n; root; domains } ->
    Printf.sprintf "ready proto=%d model=%s n=%d root=%d domains=%d" proto
      (model_str model) n root domains
  | Ack { version; node = None } -> Printf.sprintf "ok version=%d" version
  | Ack { version; node = Some id } ->
    Printf.sprintf "ok node=%d version=%d" id version
  | Served { src; path; charge } ->
    Printf.sprintf "src %d: path %s, charge %s" src
      (String.concat " -> " (List.map string_of_int path))
      (float_to_string charge)
  | Paid { served; unbounded; total } ->
    Printf.sprintf "ok served=%d unbounded=%d total=%s" served unbounded
      (float_to_string total)
  | Session_stats st ->
    (* Printed from the layout table, so a counter added to
       [Wnet_session.stats_layout] appears here without touching the
       printer; byte-identical to the historical printf form. *)
    String.concat " "
      ("ok"
      :: List.map
           (fun (k, v) -> Printf.sprintf "%s=%d" k v)
           (Wnet_session.to_fields st))
  | Server_stats
      {
        clients;
        requests;
        edits;
        coalesced;
        cache_hits;
        cache_misses;
        bytes_in;
        bytes_out;
      } ->
    Printf.sprintf
      "server clients=%d requests=%d edits=%d coalesced=%d cache_hits=%d \
       cache_misses=%d bytes_in=%d bytes_out=%d"
      clients requests edits coalesced cache_hits cache_misses bytes_in
      bytes_out
  | Shard_stats
      {
        shard;
        conns;
        requests;
        edits;
        coalesced;
        inval_passes;
        cache_hits;
        cache_misses;
        repaired;
        tasks;
        stolen;
        bytes_in;
        bytes_out;
      } ->
    Printf.sprintf
      "shard id=%d conns=%d requests=%d edits=%d coalesced=%d \
       inval_passes=%d cache_hits=%d cache_misses=%d repaired=%d tasks=%d \
       stolen=%d bytes_in=%d bytes_out=%d"
      shard conns requests edits coalesced inval_passes cache_hits
      cache_misses repaired tasks stolen bytes_in bytes_out
  | Conn_stats { requests; bytes_in; bytes_out; proto } ->
    Printf.sprintf "conn requests=%d bytes_in=%d bytes_out=%d proto=%d"
      requests bytes_in bytes_out proto
  | Bye -> "bye"
  | Err "" -> "err"
  | Err m -> "err " ^ m

(* Split [s] at the first occurrence of substring [sep]. *)
let cut ~sep s =
  let n = String.length s and m = String.length sep in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sep then
      Some (String.sub s 0 i, String.sub s (i + m) (n - i - m))
    else go (i + 1)
  in
  go 0

let kv key tok =
  match String.index_opt tok '=' with
  | Some i when String.sub tok 0 i = key ->
    Ok (String.sub tok (i + 1) (String.length tok - i - 1))
  | _ -> Error (Printf.sprintf "expected %s=..., got %S" key tok)

let int_kv key tok =
  let* v = kv key tok in
  int_tok key v

let parse_served line =
  let bad () = Error (Printf.sprintf "bad served line %S" line) in
  match cut ~sep:"src " line with
  | Some ("", rest) -> (
    match cut ~sep:": path " rest with
    | Some (src_s, rest) -> (
      match cut ~sep:", charge " rest with
      | Some (path_s, charge_s) -> (
        match (int_of_string_opt src_s, float_of_string_opt charge_s) with
        | Some src, Some charge -> (
          let hops = tokens path_s |> List.filter (fun t -> t <> "->") in
          let rec ints = function
            | [] -> Some []
            | t :: rest ->
              Option.bind (int_of_string_opt t) (fun i ->
                  Option.map (List.cons i) (ints rest))
          in
          match ints hops with
          | Some path -> Ok (Served { src; path; charge })
          | None -> bad ())
        | _ -> bad ())
      | None -> bad ())
    | None -> bad ())
  | _ -> bad ()

(* The session counters in wire order, straight from the layout table.
   Older peers end the line early — a wnet/1 server stops after
   [avoid_reused], a wnet-bench/4 one after [fallbacks] — so any
   even-length prefix of at least 6 keys parses, with the omitted
   trailing counters read as 0 by [Wnet_session.of_fields]. *)
let session_counter_keys = Wnet_session.stats_field_names

let parse_session_stats line toks =
  let nkeys = Array.length session_counter_keys in
  let k = List.length toks in
  if k < 6 || k > nkeys || k mod 2 <> 0 then
    Error (Printf.sprintf "bad stats line %S" line)
  else begin
    let rec go i acc = function
      | [] -> (
        match Wnet_session.of_fields (List.rev acc) with
        | Ok st -> Ok (Session_stats st)
        | Error m -> Error m)
      | t :: rest ->
        let* v = int_kv session_counter_keys.(i) t in
        go (i + 1) ((session_counter_keys.(i), v) :: acc) rest
    in
    go 0 [] toks
  end

let parse_response line =
  let line = String.trim line in
  match tokens line with
  | [ "ready"; p; m; n; r; d ] ->
    let* proto = int_kv "proto" p in
    let* m = kv "model" m in
    let* model = model_of_string m in
    let* n = int_kv "n" n in
    let* root = int_kv "root" r in
    let* domains = int_kv "domains" d in
    Ok (Ready { proto; model; n; root; domains })
  | [ "ok"; a ] ->
    let* version = int_kv "version" a in
    Ok (Ack { version; node = None })
  | [ "ok"; a; b ] when Result.is_ok (kv "node" a) ->
    let* id = int_kv "node" a in
    let* version = int_kv "version" b in
    Ok (Ack { version; node = Some id })
  | [ "ok"; a; b; c ] ->
    let* served = int_kv "served" a in
    let* unbounded = int_kv "unbounded" b in
    let* t = kv "total" c in
    let* total = float_tok "total" t in
    Ok (Paid { served; unbounded; total })
  | "ok" :: (_ :: _ :: _ :: _ :: _ :: _ :: _ as toks) ->
    parse_session_stats line toks
  | [ "server"; a; b; c; d; e; f; g; h ] ->
    let* clients = int_kv "clients" a in
    let* requests = int_kv "requests" b in
    let* edits = int_kv "edits" c in
    let* coalesced = int_kv "coalesced" d in
    let* cache_hits = int_kv "cache_hits" e in
    let* cache_misses = int_kv "cache_misses" f in
    let* bytes_in = int_kv "bytes_in" g in
    let* bytes_out = int_kv "bytes_out" h in
    Ok
      (Server_stats
         {
           clients;
           requests;
           edits;
           coalesced;
           cache_hits;
           cache_misses;
           bytes_in;
           bytes_out;
         })
  | [ "shard"; a; b; c; d; e; f; g; h; i; j; k; l; m ] ->
    let* shard = int_kv "id" a in
    let* conns = int_kv "conns" b in
    let* requests = int_kv "requests" c in
    let* edits = int_kv "edits" d in
    let* coalesced = int_kv "coalesced" e in
    let* inval_passes = int_kv "inval_passes" f in
    let* cache_hits = int_kv "cache_hits" g in
    let* cache_misses = int_kv "cache_misses" h in
    let* repaired = int_kv "repaired" i in
    let* tasks = int_kv "tasks" j in
    let* stolen = int_kv "stolen" k in
    let* bytes_in = int_kv "bytes_in" l in
    let* bytes_out = int_kv "bytes_out" m in
    Ok
      (Shard_stats
         {
           shard;
           conns;
           requests;
           edits;
           coalesced;
           inval_passes;
           cache_hits;
           cache_misses;
           repaired;
           tasks;
           stolen;
           bytes_in;
           bytes_out;
         })
  | "conn" :: a :: b :: c :: rest ->
    let* requests = int_kv "requests" a in
    let* bytes_in = int_kv "bytes_in" b in
    let* bytes_out = int_kv "bytes_out" c in
    (* pre-binary peers (wnet-bench/5 era) omit the proto token *)
    let* proto =
      match rest with
      | [] -> Ok version
      | [ p ] -> int_kv "proto" p
      | _ -> Error (Printf.sprintf "bad conn line %S" line)
    in
    Ok (Conn_stats { requests; bytes_in; bytes_out; proto })
  | [ "bye" ] -> Ok Bye
  | [ "err" ] -> Ok (Err "")
  | "err" :: _ -> (
    match cut ~sep:"err " line with
    | Some ("", m) -> Ok (Err m)
    | _ -> Ok (Err ""))
  | "src" :: _ -> parse_served line
  | _ -> Error (Printf.sprintf "unknown response %S" line)

let greeting ?(proto = version) (module S : Wnet_session.S) =
  Ready
    { proto; model = S.model; n = S.n (); root = S.root;
      domains = S.domains }

let ack (a : Wnet_session.ack) = Ack { version = a.version; node = a.node }

let handle (module S : Wnet_session.S) req =
  try
    match req with
    | Cost_node { node; cost } ->
      [ ack (S.apply (Wnet_session.Set_node_cost { node; cost })) ]
    | Cost_link { u; v; w } ->
      [ ack (S.apply (Wnet_session.Set_link_cost { u; v; w })) ]
    | Join { out; inn } -> [ ack (S.apply (Wnet_session.Join { out; inn })) ]
    | Rejoin { node; out; inn } ->
      [ ack (S.apply (Wnet_session.Rejoin { node; out; inn })) ]
    | Leave { node } -> [ ack (S.apply (Wnet_session.Leave { node })) ]
    | Pay ->
      let p = S.pay () in
      List.map
        (fun (s : Wnet_session.served) ->
          Served { src = s.src; path = s.path; charge = s.charge })
        p.served
      @ [
          Paid
            {
              served = List.length p.served;
              unbounded = p.unbounded;
              total = p.total;
            };
        ]
    | Stats -> [ Session_stats (S.stats ()) ]
    | Proto _ ->
      (* Codec switching is transport-level; only framed front-ends
         (the socket server) can honour it. *)
      [ Err "proto: negotiation needs a socket transport" ]
    | Attach _ ->
      (* Session placement is a server concern; the stdin loop and the
         oracle replays host exactly one session. *)
      [ Err "session: attach needs a socket transport" ]
    | Quit -> [ Bye ]
  with
  | Failure m | Invalid_argument m -> [ Err m ]

let handle_line sess line =
  match parse_request line with
  | Ok None -> `Empty
  | Error m -> `Reply [ Err m ]
  | Ok (Some Quit) -> `Quit (handle sess Quit)
  | Ok (Some req) -> `Reply (handle sess req)
