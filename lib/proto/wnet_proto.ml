let version = 1

type request =
  | Cost_node of { node : int; cost : float }
  | Cost_link of { u : int; v : int; w : float }
  | Join of { out : (int * float) list; inn : (int * float) list }
  | Rejoin of { node : int; out : (int * float) list; inn : (int * float) list }
  | Leave of { node : int }
  | Pay
  | Stats
  | Quit

type response =
  | Ready of {
      proto : int;
      model : Wnet_session.model;
      n : int;
      root : int;
      domains : int;
    }
  | Ack of { version : int; node : int option }
  | Served of { src : int; path : int list; charge : float }
  | Paid of { served : int; unbounded : int; total : float }
  | Session_stats of Wnet_session.stats
  | Server_stats of {
      clients : int;
      requests : int;
      edits : int;
      coalesced : int;
      cache_hits : int;
      cache_misses : int;
      bytes_in : int;
      bytes_out : int;
    }
  | Conn_stats of { requests : int; bytes_in : int; bytes_out : int }
  | Bye
  | Err of string

(* Shortest decimal form that parses back bit-identically: %.12g covers
   every weight arising from the short decimal inputs the tools emit,
   %.17g is exact for any double.  "inf"/"nan" round-trip through
   float_of_string as-is. *)
let float_to_string f =
  let s = Printf.sprintf "%.12g" f in
  if Float.equal (float_of_string s) f then s else Printf.sprintf "%.17g" f

let ( let* ) = Result.bind

let tokens line =
  String.split_on_char ' '
    (String.map (fun c -> if c = '\t' then ' ' else c) line)
  |> List.filter (fun t -> t <> "")

let int_tok what s =
  match int_of_string_opt s with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "%s: bad integer %S" what s)

let float_tok what s =
  match float_of_string_opt s with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "%s: bad number %S" what s)

let endpoint_tok what s =
  let bad () =
    Error (Printf.sprintf "%s: bad endpoint %S (want NODE:WEIGHT)" what s)
  in
  match String.index_opt s ':' with
  | None -> bad ()
  | Some i -> (
    let v = String.sub s 0 i
    and w = String.sub s (i + 1) (String.length s - i - 1) in
    match (int_of_string_opt v, float_of_string_opt w) with
    | Some v, Some w -> Ok (v, w)
    | _ -> bad ())

let rec endpoints what = function
  | [] -> Ok []
  | t :: rest ->
    let* e = endpoint_tok what t in
    let* es = endpoints what rest in
    Ok (e :: es)

let rec split_dash what acc = function
  | [] ->
    Error
      (Printf.sprintf "%s: missing `--' separating out-links from in-links"
         what)
  | "--" :: rest -> Ok (List.rev acc, rest)
  | t :: rest -> split_dash what (t :: acc) rest

let links what rest =
  let* outs, inns = split_dash what [] rest in
  let* out = endpoints what outs in
  let* inn = endpoints what inns in
  Ok (out, inn)

let parse_request line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then Ok None
  else
    let req =
      match tokens line with
      | [ "cost"; a; b ] ->
        let* node = int_tok "cost" a in
        let* cost = float_tok "cost" b in
        Ok (Cost_node { node; cost })
      | [ "cost"; a; b; c ] ->
        let* u = int_tok "cost" a in
        let* v = int_tok "cost" b in
        let* w = float_tok "cost" c in
        Ok (Cost_link { u; v; w })
      | "cost" :: _ -> Error "cost: want `cost NODE COST' or `cost U V W'"
      | "join" :: rest ->
        let* out, inn = links "join" rest in
        Ok (Join { out; inn })
      | "rejoin" :: k :: rest ->
        let* node = int_tok "rejoin" k in
        let* out, inn = links "rejoin" rest in
        Ok (Rejoin { node; out; inn })
      | [ "rejoin" ] -> Error "rejoin: want `rejoin NODE v:w ... -- u:w ...'"
      | [ "leave"; k ] ->
        let* node = int_tok "leave" k in
        Ok (Leave { node })
      | "leave" :: _ -> Error "leave: want `leave NODE'"
      | [ "pay" ] -> Ok Pay
      | [ "stats" ] -> Ok Stats
      | [ "quit" ] | [ "exit" ] -> Ok Quit
      | t :: _ -> Error (Printf.sprintf "unknown request %S" t)
      | [] -> Error "empty request"
    in
    Result.map Option.some req

let endpoint_str (v, w) = Printf.sprintf "%d:%s" v (float_to_string w)

let print_request = function
  | Cost_node { node; cost } ->
    Printf.sprintf "cost %d %s" node (float_to_string cost)
  | Cost_link { u; v; w } ->
    Printf.sprintf "cost %d %d %s" u v (float_to_string w)
  | Join { out; inn } ->
    String.concat " "
      (("join" :: List.map endpoint_str out)
      @ ("--" :: List.map endpoint_str inn))
  | Rejoin { node; out; inn } ->
    String.concat " "
      (("rejoin" :: string_of_int node :: List.map endpoint_str out)
      @ ("--" :: List.map endpoint_str inn))
  | Leave { node } -> Printf.sprintf "leave %d" node
  | Pay -> "pay"
  | Stats -> "stats"
  | Quit -> "quit"

let model_str = function `Node -> "node" | `Link -> "link"

let model_of_string = function
  | "node" -> Ok `Node
  | "link" -> Ok `Link
  | s -> Error (Printf.sprintf "bad model %S" s)

let print_response = function
  | Ready { proto; model; n; root; domains } ->
    Printf.sprintf "ready proto=%d model=%s n=%d root=%d domains=%d" proto
      (model_str model) n root domains
  | Ack { version; node = None } -> Printf.sprintf "ok version=%d" version
  | Ack { version; node = Some id } ->
    Printf.sprintf "ok node=%d version=%d" id version
  | Served { src; path; charge } ->
    Printf.sprintf "src %d: path %s, charge %s" src
      (String.concat " -> " (List.map string_of_int path))
      (float_to_string charge)
  | Paid { served; unbounded; total } ->
    Printf.sprintf "ok served=%d unbounded=%d total=%s" served unbounded
      (float_to_string total)
  | Session_stats st ->
    Printf.sprintf
      "ok edits=%d coalesced=%d inval_passes=%d spt_runs=%d avoid_runs=%d \
       avoid_reused=%d repaired=%d fallbacks=%d tasks=%d stolen=%d"
      st.edits st.coalesced_edits st.inval_passes st.spt_runs st.avoid_runs
      st.avoid_reused st.repaired_entries st.fallback_recomputes
      st.tasks_executed st.tasks_stolen
  | Server_stats
      {
        clients;
        requests;
        edits;
        coalesced;
        cache_hits;
        cache_misses;
        bytes_in;
        bytes_out;
      } ->
    Printf.sprintf
      "server clients=%d requests=%d edits=%d coalesced=%d cache_hits=%d \
       cache_misses=%d bytes_in=%d bytes_out=%d"
      clients requests edits coalesced cache_hits cache_misses bytes_in
      bytes_out
  | Conn_stats { requests; bytes_in; bytes_out } ->
    Printf.sprintf "conn requests=%d bytes_in=%d bytes_out=%d" requests
      bytes_in bytes_out
  | Bye -> "bye"
  | Err "" -> "err"
  | Err m -> "err " ^ m

(* Split [s] at the first occurrence of substring [sep]. *)
let cut ~sep s =
  let n = String.length s and m = String.length sep in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sep then
      Some (String.sub s 0 i, String.sub s (i + m) (n - i - m))
    else go (i + 1)
  in
  go 0

let kv key tok =
  match String.index_opt tok '=' with
  | Some i when String.sub tok 0 i = key ->
    Ok (String.sub tok (i + 1) (String.length tok - i - 1))
  | _ -> Error (Printf.sprintf "expected %s=..., got %S" key tok)

let int_kv key tok =
  let* v = kv key tok in
  int_tok key v

let parse_served line =
  let bad () = Error (Printf.sprintf "bad served line %S" line) in
  match cut ~sep:"src " line with
  | Some ("", rest) -> (
    match cut ~sep:": path " rest with
    | Some (src_s, rest) -> (
      match cut ~sep:", charge " rest with
      | Some (path_s, charge_s) -> (
        match (int_of_string_opt src_s, float_of_string_opt charge_s) with
        | Some src, Some charge -> (
          let hops = tokens path_s |> List.filter (fun t -> t <> "->") in
          let rec ints = function
            | [] -> Some []
            | t :: rest ->
              Option.bind (int_of_string_opt t) (fun i ->
                  Option.map (List.cons i) (ints rest))
          in
          match ints hops with
          | Some path -> Ok (Served { src; path; charge })
          | None -> bad ())
        | _ -> bad ())
      | None -> bad ())
    | None -> bad ())
  | _ -> bad ()

let parse_response line =
  let line = String.trim line in
  match tokens line with
  | [ "ready"; p; m; n; r; d ] ->
    let* proto = int_kv "proto" p in
    let* m = kv "model" m in
    let* model = model_of_string m in
    let* n = int_kv "n" n in
    let* root = int_kv "root" r in
    let* domains = int_kv "domains" d in
    Ok (Ready { proto; model; n; root; domains })
  | [ "ok"; a ] ->
    let* version = int_kv "version" a in
    Ok (Ack { version; node = None })
  | [ "ok"; a; b ] when Result.is_ok (kv "node" a) ->
    let* id = int_kv "node" a in
    let* version = int_kv "version" b in
    Ok (Ack { version; node = Some id })
  | [ "ok"; a; b; c ] ->
    let* served = int_kv "served" a in
    let* unbounded = int_kv "unbounded" b in
    let* t = kv "total" c in
    let* total = float_tok "total" t in
    Ok (Paid { served; unbounded; total })
  | [ "ok"; a; b; c; d; e; f ] ->
    (* pre-repair peers (wnet/1 servers) omit the repair counters *)
    let* edits = int_kv "edits" a in
    let* coalesced_edits = int_kv "coalesced" b in
    let* inval_passes = int_kv "inval_passes" c in
    let* spt_runs = int_kv "spt_runs" d in
    let* avoid_runs = int_kv "avoid_runs" e in
    let* avoid_reused = int_kv "avoid_reused" f in
    Ok
      (Session_stats
         {
           edits;
           coalesced_edits;
           inval_passes;
           spt_runs;
           avoid_runs;
           avoid_reused;
           repaired_entries = 0;
           fallback_recomputes = 0;
           tasks_executed = 0;
           tasks_stolen = 0;
         })
  | [ "ok"; a; b; c; d; e; f; g; h ] ->
    (* pre-scheduler peers (wnet-bench/4 era) omit the task counters *)
    let* edits = int_kv "edits" a in
    let* coalesced_edits = int_kv "coalesced" b in
    let* inval_passes = int_kv "inval_passes" c in
    let* spt_runs = int_kv "spt_runs" d in
    let* avoid_runs = int_kv "avoid_runs" e in
    let* avoid_reused = int_kv "avoid_reused" f in
    let* repaired_entries = int_kv "repaired" g in
    let* fallback_recomputes = int_kv "fallbacks" h in
    Ok
      (Session_stats
         {
           edits;
           coalesced_edits;
           inval_passes;
           spt_runs;
           avoid_runs;
           avoid_reused;
           repaired_entries;
           fallback_recomputes;
           tasks_executed = 0;
           tasks_stolen = 0;
         })
  | [ "ok"; a; b; c; d; e; f; g; h; i; j ] ->
    let* edits = int_kv "edits" a in
    let* coalesced_edits = int_kv "coalesced" b in
    let* inval_passes = int_kv "inval_passes" c in
    let* spt_runs = int_kv "spt_runs" d in
    let* avoid_runs = int_kv "avoid_runs" e in
    let* avoid_reused = int_kv "avoid_reused" f in
    let* repaired_entries = int_kv "repaired" g in
    let* fallback_recomputes = int_kv "fallbacks" h in
    let* tasks_executed = int_kv "tasks" i in
    let* tasks_stolen = int_kv "stolen" j in
    Ok
      (Session_stats
         {
           edits;
           coalesced_edits;
           inval_passes;
           spt_runs;
           avoid_runs;
           avoid_reused;
           repaired_entries;
           fallback_recomputes;
           tasks_executed;
           tasks_stolen;
         })
  | [ "server"; a; b; c; d; e; f; g; h ] ->
    let* clients = int_kv "clients" a in
    let* requests = int_kv "requests" b in
    let* edits = int_kv "edits" c in
    let* coalesced = int_kv "coalesced" d in
    let* cache_hits = int_kv "cache_hits" e in
    let* cache_misses = int_kv "cache_misses" f in
    let* bytes_in = int_kv "bytes_in" g in
    let* bytes_out = int_kv "bytes_out" h in
    Ok
      (Server_stats
         {
           clients;
           requests;
           edits;
           coalesced;
           cache_hits;
           cache_misses;
           bytes_in;
           bytes_out;
         })
  | [ "conn"; a; b; c ] ->
    let* requests = int_kv "requests" a in
    let* bytes_in = int_kv "bytes_in" b in
    let* bytes_out = int_kv "bytes_out" c in
    Ok (Conn_stats { requests; bytes_in; bytes_out })
  | [ "bye" ] -> Ok Bye
  | [ "err" ] -> Ok (Err "")
  | "err" :: _ -> (
    match cut ~sep:"err " line with
    | Some ("", m) -> Ok (Err m)
    | _ -> Ok (Err ""))
  | "src" :: _ -> parse_served line
  | _ -> Error (Printf.sprintf "unknown response %S" line)

let greeting (module S : Wnet_session.S) =
  Ready
    { proto = version; model = S.model; n = S.n (); root = S.root;
      domains = S.domains }

let ack (a : Wnet_session.ack) = Ack { version = a.version; node = a.node }

let handle (module S : Wnet_session.S) req =
  try
    match req with
    | Cost_node { node; cost } ->
      [ ack (S.apply (Wnet_session.Set_node_cost { node; cost })) ]
    | Cost_link { u; v; w } ->
      [ ack (S.apply (Wnet_session.Set_link_cost { u; v; w })) ]
    | Join { out; inn } -> [ ack (S.apply (Wnet_session.Join { out; inn })) ]
    | Rejoin { node; out; inn } ->
      [ ack (S.apply (Wnet_session.Rejoin { node; out; inn })) ]
    | Leave { node } -> [ ack (S.apply (Wnet_session.Leave { node })) ]
    | Pay ->
      let p = S.pay () in
      List.map
        (fun (s : Wnet_session.served) ->
          Served { src = s.src; path = s.path; charge = s.charge })
        p.served
      @ [
          Paid
            {
              served = List.length p.served;
              unbounded = p.unbounded;
              total = p.total;
            };
        ]
    | Stats -> [ Session_stats (S.stats ()) ]
    | Quit -> [ Bye ]
  with
  | Failure m | Invalid_argument m -> [ Err m ]

let handle_line sess line =
  match parse_request line with
  | Ok None -> `Empty
  | Error m -> `Reply [ Err m ]
  | Ok (Some Quit) -> `Quit (handle sess Quit)
  | Ok (Some req) -> `Reply (handle sess req)
