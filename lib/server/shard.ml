(* A shard: one event loop, one domain, a disjoint set of sessions.

   The shared state ties the pieces together: [sessions] is the array
   of access-point sessions the server hosts, [session_shard] the
   router's placement of each onto a shard, [rings] one SPSC mailbox
   per (destination, source) pair over which whole connections are
   handed off (accept -> route -> shard, and shard -> shard when a
   client re-attaches to a session owned elsewhere).  Each shard
   selects on its own connections plus a self-pipe; a producer pushes a
   connection into its ring and writes one wake byte.

   Ownership invariants, which together give determinism:
   - a session is only ever mutated by the shard [session_shard] maps
     it to ({!Wnet_session}'s domain guard turns a violation into a
     loud failure);
   - a connection's fd is only ever read or written by the shard that
     currently owns the connection — the greeting is written by the
     adopting shard, never the listener, so two writers can never
     interleave bytes on one socket;
   - a connection crossing shards carries its whole codec state (line
     buffer, frame decoder, pending output) with it, and the source
     shard stops touching it the moment it is pushed.

   Each session's edit stream is therefore applied by exactly one
   domain in arrival order, which is the single-threaded serve loop's
   contract — payments stay bit-identical at every shard count. *)

module B = Wnet_proto_bin

type conn = {
  fd : Unix.file_descr;
  mutable proto : int;  (* 1 = lines, 2 = binary frames *)
  mutable inbuf : string;  (* partial line, no '\n' yet *)
  mutable out : string;  (* rendered text replies not yet written *)
  benc : B.enc;
  bdec : B.dec;
  bview : B.view;
  mutable last_active : float;
  mutable requests : int;
  mutable bytes_in : int;
  mutable bytes_out : int;
  mutable closing : bool;  (* close once pending output drains *)
  mutable session : int;  (* index into [shared.sessions] *)
  mutable migrate : int option;  (* handoff target shard, if any *)
  mutable greet : bool;  (* owed a ready banner on adoption *)
  mutable fresh : bool;  (* not yet counted as a served client *)
}

(* Single-writer published counters: only the owning shard stores,
   any domain may load (the stats reply snapshots every shard). *)
type pub = {
  p_conns : int Atomic.t;
  p_served : int Atomic.t;
  p_requests : int Atomic.t;
  p_bytes_in : int Atomic.t;
  p_bytes_out : int Atomic.t;
  p_edits : int Atomic.t;
  p_coalesced : int Atomic.t;
  p_inval : int Atomic.t;
  p_hits : int Atomic.t;
  p_misses : int Atomic.t;
  p_repaired : int Atomic.t;
  p_tasks : int Atomic.t;
  p_stolen : int Atomic.t;
}

type shared = {
  nshards : int;
  sessions : (module Wnet_session.S) array;
  session_shard : int array;  (* router placement, fixed at create *)
  idle_timeout : float option;
  rings : conn Spsc.t array array;  (* rings.(dst).(src); src = nshards
                                       is the listener's producer slot *)
  wake_r : Unix.file_descr array;
  wake_w : Unix.file_descr array;
  lstop_r : Unix.file_descr;  (* wakes the listener's select *)
  lstop_w : Unix.file_descr;
  stopping : bool Atomic.t;
  ldone : bool Atomic.t;  (* listener stopped: no more accept handoffs *)
  exited : int Atomic.t;  (* shards that left their loop (drain barrier) *)
  pubs : pub array;
}

type stats = {
  shard : int;
  conns : int;
  served : int;
  requests : int;
  edits : int;
  coalesced : int;
  inval_passes : int;
  cache_hits : int;
  cache_misses : int;
  repaired : int;
  tasks : int;
  stolen : int;
  bytes_in : int;
  bytes_out : int;
}

let make_pub () =
  {
    p_conns = Atomic.make 0;
    p_served = Atomic.make 0;
    p_requests = Atomic.make 0;
    p_bytes_in = Atomic.make 0;
    p_bytes_out = Atomic.make 0;
    p_edits = Atomic.make 0;
    p_coalesced = Atomic.make 0;
    p_inval = Atomic.make 0;
    p_hits = Atomic.make 0;
    p_misses = Atomic.make 0;
    p_repaired = Atomic.make 0;
    p_tasks = Atomic.make 0;
    p_stolen = Atomic.make 0;
  }

let nonblock_pipe () =
  let r, w = Unix.pipe () in
  Unix.set_nonblock r;
  Unix.set_nonblock w;
  (r, w)

let make_shared ~nshards ~router ~idle_timeout ~sessions =
  if nshards < 1 then invalid_arg "Shard.make_shared: nshards < 1";
  if Array.length sessions = 0 then
    invalid_arg "Shard.make_shared: no sessions";
  if Router.shards router <> nshards then
    invalid_arg "Shard.make_shared: router sized for a different shard count";
  let session_shard =
    Array.init (Array.length sessions) (fun k -> Router.place router k)
  in
  let pipes = Array.init nshards (fun _ -> nonblock_pipe ()) in
  let lstop_r, lstop_w = nonblock_pipe () in
  {
    nshards;
    sessions;
    session_shard;
    idle_timeout;
    rings =
      Array.init nshards (fun _ ->
          Array.init (nshards + 1) (fun _ -> Spsc.create 256));
    wake_r = Array.map fst pipes;
    wake_w = Array.map snd pipes;
    lstop_r;
    lstop_w;
    stopping = Atomic.make false;
    ldone = Atomic.make false;
    exited = Atomic.make 0;
    pubs = Array.init nshards (fun _ -> make_pub ());
  }

let nshards sh = sh.nshards
let stopping sh = Atomic.get sh.stopping
let lstop_fd sh = sh.lstop_r

let wake sh i =
  (* A full pipe is as good as a byte: the select wakes either way. *)
  try ignore (Unix.write_substring sh.wake_w.(i) "x" 0 1)
  with Unix.Unix_error _ -> ()

let stop sh =
  Atomic.set sh.stopping true;
  for i = 0 to sh.nshards - 1 do
    wake sh i
  done;
  try ignore (Unix.write_substring sh.lstop_w "x" 0 1)
  with Unix.Unix_error _ -> ()

let listener_done sh =
  Atomic.set sh.ldone true;
  for i = 0 to sh.nshards - 1 do
    wake sh i
  done

let close_shared sh =
  let close fd = try Unix.close fd with Unix.Unix_error _ -> () in
  Array.iter close sh.wake_r;
  Array.iter close sh.wake_w;
  close sh.lstop_r;
  close sh.lstop_w

let snapshot sh =
  Array.mapi
    (fun i p ->
      {
        shard = i;
        conns = Atomic.get p.p_conns;
        served = Atomic.get p.p_served;
        requests = Atomic.get p.p_requests;
        edits = Atomic.get p.p_edits;
        coalesced = Atomic.get p.p_coalesced;
        inval_passes = Atomic.get p.p_inval;
        cache_hits = Atomic.get p.p_hits;
        cache_misses = Atomic.get p.p_misses;
        repaired = Atomic.get p.p_repaired;
        tasks = Atomic.get p.p_tasks;
        stolen = Atomic.get p.p_stolen;
        bytes_in = Atomic.get p.p_bytes_in;
        bytes_out = Atomic.get p.p_bytes_out;
      })
    sh.pubs

let new_conn fd ~session =
  Unix.set_nonblock fd;
  {
    fd;
    proto = Wnet_proto.version;
    inbuf = "";
    out = "";
    benc = B.enc_create ();
    bdec = B.dec_create ();
    bview = B.make_view ();
    last_active = Unix.gettimeofday ();
    requests = 0;
    bytes_in = 0;
    bytes_out = 0;
    closing = false;
    session;
    migrate = None;
    greet = true;
    fresh = true;
  }

(* Hand a connection to shard [dst]'s mailbox and wake it.  [src] is
   this producer's ring index (a shard id, or [nshards] for the
   listener).  A full ring backs off; if the server is stopping the
   target may never pop again, so the connection is dropped instead of
   deadlocking the producer. *)
let submit sh ~src ~dst c =
  let ring = sh.rings.(dst).(src) in
  let rec go () =
    if Spsc.push ring c then wake sh dst
    else if Atomic.get sh.stopping then (
      try Unix.close c.fd with Unix.Unix_error _ -> ())
    else begin
      wake sh dst;
      Unix.sleepf 0.001;
      go ()
    end
  in
  go ()

(* Listener-side entry: a fresh accept starts on the default session 0,
   owned by whichever shard the router placed it on. *)
let route_new sh fd =
  let c = new_conn fd ~session:0 in
  submit sh ~src:sh.nshards ~dst:sh.session_shard.(0) c

(* ---------------- the per-shard loop ---------------- *)

type t = {
  sh : shared;
  id : int;
  mutable conns : conn list;
  mutable served : int;
  mutable requests : int;
  mutable bytes_in : int;
  mutable bytes_out : int;
}

let render rs =
  String.concat "" (List.map (fun r -> Wnet_proto.print_response r ^ "\n") rs)

let queue (c : conn) rs =
  if rs <> [] then
    if c.proto = 2 then B.encode_responses c.benc rs
    else c.out <- c.out ^ render rs

let pending_out (c : conn) = String.length c.out + B.enc_pending c.benc

let close_conn (t : t) (c : conn) =
  (try Unix.close c.fd with Unix.Unix_error _ -> ());
  t.conns <- List.filter (fun c' -> c' != c) t.conns

(* Write as much pending output as the socket accepts right now; text
   before frames (both are only pending together right after a codec
   upgrade, when the text banner precedes the first frame). *)
let flush_some (t : t) (c : conn) =
  let account n =
    c.bytes_out <- c.bytes_out + n;
    t.bytes_out <- t.bytes_out + n
  in
  try
    let len = String.length c.out in
    if len > 0 then begin
      let n = Unix.write_substring c.fd c.out 0 len in
      c.out <- String.sub c.out n (len - n);
      account n
    end;
    let blen = B.enc_pending c.benc in
    if c.out = "" && blen > 0 then begin
      let n =
        Unix.write c.fd (B.enc_buffer c.benc) (B.enc_offset c.benc) blen
      in
      B.enc_consume c.benc n;
      account n
    end
  with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> close_conn t c

(* Split off the first complete line; the tail stays buffered. *)
let next_line (c : conn) =
  match String.index_opt c.inbuf '\n' with
  | None -> None
  | Some i ->
    let line = String.sub c.inbuf 0 i in
    let line =
      if line <> "" && line.[String.length line - 1] = '\r' then
        String.sub line 0 (String.length line - 1)
      else line
    in
    c.inbuf <- String.sub c.inbuf (i + 1) (String.length c.inbuf - i - 1);
    Some line

(* Refresh this shard's published counters: the connection-level tallies
   plus a roll-up of the sessions this shard owns.  Single writer, so
   plain stores into the atomics. *)
let publish (t : t) =
  let p = t.sh.pubs.(t.id) in
  Atomic.set p.p_conns (List.length t.conns);
  Atomic.set p.p_served t.served;
  Atomic.set p.p_requests t.requests;
  Atomic.set p.p_bytes_in t.bytes_in;
  Atomic.set p.p_bytes_out t.bytes_out;
  let edits = ref 0
  and coalesced = ref 0
  and inval = ref 0
  and hits = ref 0
  and misses = ref 0
  and repaired = ref 0
  and tasks = ref 0
  and stolen = ref 0 in
  Array.iteri
    (fun k sess ->
      if t.sh.session_shard.(k) = t.id then begin
        let module S = (val sess : Wnet_session.S) in
        let st = S.stats () in
        edits := !edits + st.edits;
        coalesced := !coalesced + st.coalesced_edits;
        inval := !inval + st.inval_passes;
        hits := !hits + st.avoid_reused;
        misses := !misses + st.avoid_runs;
        repaired := !repaired + st.repaired_entries;
        tasks := !tasks + st.tasks_executed;
        stolen := !stolen + st.tasks_stolen
      end)
    t.sh.sessions;
  Atomic.set p.p_edits !edits;
  Atomic.set p.p_coalesced !coalesced;
  Atomic.set p.p_inval !inval;
  Atomic.set p.p_hits !hits;
  Atomic.set p.p_misses !misses;
  Atomic.set p.p_repaired !repaired;
  Atomic.set p.p_tasks !tasks;
  Atomic.set p.p_stolen !stolen

(* The [stats] reply tail: server totals, per-shard rows (only when
   there is more than one shard, so single-shard transcripts stay
   byte-identical to the pre-shard wire format), connection counters.
   Totals are sums over ONE snapshot of the per-shard rows, so the
   breakdown always adds up to the totals on the same reply. *)
let wire_stats (t : t) (c : conn) =
  publish t;
  let rows = snapshot t.sh in
  let sum f = Array.fold_left (fun acc r -> acc + f r) 0 rows in
  let server =
    Wnet_proto.Server_stats
      {
        clients = sum (fun r -> r.conns);
        requests = sum (fun r -> r.requests);
        edits = sum (fun r -> r.edits);
        coalesced = sum (fun r -> r.coalesced);
        cache_hits = sum (fun r -> r.cache_hits);
        cache_misses = sum (fun r -> r.cache_misses);
        bytes_in = sum (fun r -> r.bytes_in);
        bytes_out = sum (fun r -> r.bytes_out);
      }
  in
  let shard_rows =
    if t.sh.nshards = 1 then []
    else
      Array.to_list
        (Array.map
           (fun r ->
             Wnet_proto.Shard_stats
               {
                 shard = r.shard;
                 conns = r.conns;
                 requests = r.requests;
                 edits = r.edits;
                 coalesced = r.coalesced;
                 inval_passes = r.inval_passes;
                 cache_hits = r.cache_hits;
                 cache_misses = r.cache_misses;
                 repaired = r.repaired;
                 tasks = r.tasks;
                 stolen = r.stolen;
                 bytes_in = r.bytes_in;
                 bytes_out = r.bytes_out;
               })
           rows)
  in
  let conn =
    Wnet_proto.Conn_stats
      {
        requests = c.requests;
        bytes_in = c.bytes_in;
        bytes_out = c.bytes_out;
        proto = c.proto;
      }
  in
  (server :: shard_rows) @ [ conn ]

(* One parsed request -> queued replies.  The protocol handler does the
   work; the shard owns what is transport state, not session state:
   codec negotiation ([proto N]), session placement ([session N]), the
   stats roll-up, and the close latch on [quit]. *)
let process (t : t) (c : conn) parsed =
  c.last_active <- Unix.gettimeofday ();
  let count () =
    c.requests <- c.requests + 1;
    t.requests <- t.requests + 1
  in
  match parsed with
  | Ok None -> ()
  | Error m ->
    count ();
    queue c [ Wnet_proto.Err m ]
  | Ok (Some req) -> (
    count ();
    let sess = t.sh.sessions.(c.session) in
    match req with
    | Wnet_proto.Proto { proto = p } ->
      if p = B.version then begin
        (* Acknowledge in the current codec, then switch both
           directions.  Bytes already buffered behind the request are
           re-fed to the frame decoder. *)
        queue c [ Wnet_proto.greeting ~proto:B.version sess ];
        if c.proto <> B.version then begin
          c.proto <- B.version;
          if c.inbuf <> "" then begin
            B.dec_feed_string c.bdec c.inbuf 0 (String.length c.inbuf);
            c.inbuf <- ""
          end
        end
      end
      else if p = Wnet_proto.version && c.proto = Wnet_proto.version then
        queue c [ Wnet_proto.greeting sess ]
      else if p = Wnet_proto.version then
        queue c [ Wnet_proto.Err "proto: downgrade unsupported" ]
      else
        queue c
          [ Wnet_proto.Err (Printf.sprintf "proto: unsupported version %d" p) ]
    | Wnet_proto.Attach { session = k } ->
      if k < 0 || k >= Array.length t.sh.sessions then
        queue c
          [
            Wnet_proto.Err
              (Printf.sprintf "session: no session %d (server hosts %d)" k
                 (Array.length t.sh.sessions));
          ]
      else begin
        c.session <- k;
        let dst = t.sh.session_shard.(k) in
        if dst = t.id then
          (* The attach ack is the target session's ready banner. *)
          queue c [ Wnet_proto.greeting ~proto:c.proto t.sh.sessions.(k) ]
        else begin
          (* Crossing shards: stop reading here, carry the connection
             (pending output included) to the owning shard, which
             greets on adoption. *)
          c.migrate <- Some dst;
          c.greet <- true
        end
      end
    | Wnet_proto.Stats ->
      queue c (Wnet_proto.handle sess req @ wire_stats t c)
    | Wnet_proto.Quit ->
      queue c (Wnet_proto.handle sess req);
      c.closing <- true
    | _ -> queue c (Wnet_proto.handle sess req))

(* Answer every complete request already buffered, one at a time — the
   request may switch the codec for the bytes behind it, or migrate the
   connection (in which case the remaining buffered bytes travel with
   it and are drained by the new owner). *)
let rec drain_input (t : t) (c : conn) =
  if (not c.closing) && c.migrate = None then
    if c.proto = 2 then
      match B.decode_request c.bdec c.bview with
      | `Req req ->
        process t c (Ok (Some req));
        drain_input t c
      | `Need_more -> ()
      | `Corrupt m ->
        (* Framing is lost for good: report, dismiss, close. *)
        c.requests <- c.requests + 1;
        t.requests <- t.requests + 1;
        queue c [ Wnet_proto.Err ("proto: " ^ m); Wnet_proto.Bye ];
        c.closing <- true
    else
      match next_line c with
      | Some line ->
        process t c (Wnet_proto.parse_request line);
        drain_input t c
      | None -> ()

let handoff (t : t) (c : conn) =
  match c.migrate with
  | None -> ()
  | Some dst ->
    c.migrate <- None;
    t.conns <- List.filter (fun c' -> c' != c) t.conns;
    submit t.sh ~src:t.id ~dst c

(* Take ownership of a connection from a mailbox (or a fused-mode
   accept).  The adopting shard writes the owed ready banner — the
   single writer rule that keeps greetings from interleaving with
   another shard's replies — and drains any requests that were already
   buffered behind the handoff. *)
let adopt (t : t) (c : conn) =
  c.last_active <- Unix.gettimeofday ();
  if c.fresh then begin
    c.fresh <- false;
    t.served <- t.served + 1
  end;
  t.conns <- c :: t.conns;
  if c.greet then begin
    c.greet <- false;
    queue c [ Wnet_proto.greeting ~proto:c.proto t.sh.sessions.(c.session) ]
  end;
  if not (Atomic.get t.sh.stopping) then begin
    drain_input t c;
    if c.migrate <> None then handoff t c
    else begin
      flush_some t c;
      if c.closing && pending_out c = 0 then close_conn t c
    end
  end
(* When stopping, adoption just takes the connection; the drain pass
   answers what is buffered and says bye. *)

let adopt_pending (t : t) =
  Array.iter
    (fun ring ->
      let rec go () =
        match Spsc.pop ring with
        | Some c ->
          adopt t c;
          go ()
        | None -> ()
      in
      go ())
    t.sh.rings.(t.id)

let handle_readable (t : t) (c : conn) =
  let bytes = Bytes.create 4096 in
  match Unix.read c.fd bytes 0 4096 with
  | 0 ->
    (* Client half-closed: answer what is already buffered, then go.
       If the buffered input ended in a cross-shard attach, the new
       owner sees the same EOF and closes. *)
    drain_input t c;
    if c.migrate <> None then handoff t c
    else begin
      c.closing <- true;
      flush_some t c;
      if pending_out c = 0 then close_conn t c
    end
  | n ->
    c.bytes_in <- c.bytes_in + n;
    t.bytes_in <- t.bytes_in + n;
    if c.proto = 2 then B.dec_feed c.bdec bytes 0 n
    else c.inbuf <- c.inbuf ^ Bytes.sub_string bytes 0 n;
    drain_input t c;
    if c.migrate <> None then handoff t c
    else begin
      flush_some t c;
      if c.closing && pending_out c = 0 then close_conn t c
    end
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
    close_conn t c

(* Fused-mode accept (the single-shard server selects the listening fd
   in its own loop); dst is this shard whenever nshards = 1, but route
   properly regardless. *)
let accept_ready (t : t) listen_fd =
  match Unix.accept listen_fd with
  | fd, _ ->
    let c = new_conn fd ~session:0 in
    let dst = t.sh.session_shard.(0) in
    if dst = t.id then adopt t c else submit t.sh ~src:t.id ~dst c
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()

let sweep_idle (t : t) now =
  match t.sh.idle_timeout with
  | None -> ()
  | Some limit ->
    List.iter
      (fun c ->
        if (not c.closing) && now -. c.last_active > limit then begin
          queue c [ Wnet_proto.Err "idle timeout"; Wnet_proto.Bye ];
          c.closing <- true;
          flush_some t c;
          if pending_out c = 0 then close_conn t c
        end)
      t.conns

let next_timeout (t : t) now =
  match t.sh.idle_timeout with
  | None -> -1.0
  | Some limit ->
    List.fold_left
      (fun acc c ->
        let left = (c.last_active +. limit) -. now in
        let left = if left < 0.0 then 0.0 else left in
        if acc < 0.0 || left < acc then left else acc)
      (-1.0) t.conns

(* Graceful drain: no new requests are read, but requests already
   received in full are answered (a cross-shard attach mid-drain is
   cancelled — the client is about to get [bye] anyway, and the target
   shard may already be gone), every client gets [bye], and pending
   output is flushed (bounded wait) before the sockets close. *)
let drain (t : t) =
  List.iter
    (fun c ->
      drain_input t c;
      c.migrate <- None;
      if not c.closing then queue c [ Wnet_proto.Bye ];
      c.closing <- true)
    t.conns;
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec flush_all () =
    List.iter (fun c -> flush_some t c) t.conns;
    t.conns <-
      List.filter
        (fun c -> pending_out c <> 0 || (Unix.close c.fd; false))
        t.conns;
    if t.conns <> [] && Unix.gettimeofday () < deadline then begin
      let ws = List.map (fun c -> c.fd) t.conns in
      (match Unix.select [] ws [] 0.1 with
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      flush_all ()
    end
  in
  flush_all ();
  List.iter
    (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
    t.conns;
  t.conns <- []

(* The shard loop.  [listen_fd] is only passed in fused (single-shard)
   mode, where the one shard doubles as the acceptor and the server
   behaves exactly like the historical single-threaded select loop.
   The loop keeps running while [stopping] is set but the listener has
   not finished: a handoff may still arrive.  Exit is a two-phase
   barrier — every shard leaves its loop, then sweeps its mailboxes one
   last time — so a connection pushed just before shutdown is always
   adopted (and told bye) by someone. *)
let run ?listen_fd sh id =
  let t =
    { sh; id; conns = []; served = 0; requests = 0; bytes_in = 0;
      bytes_out = 0 }
  in
  let wake_fd = sh.wake_r.(id) in
  let lfds = match listen_fd with Some fd -> [ fd ] | None -> [] in
  let rec loop () =
    if not (Atomic.get sh.stopping && Atomic.get sh.ldone) then begin
      let now = Unix.gettimeofday () in
      sweep_idle t now;
      let rs = (wake_fd :: lfds) @ List.map (fun c -> c.fd) t.conns in
      let ws =
        List.filter_map
          (fun c -> if pending_out c <> 0 then Some c.fd else None)
          t.conns
      in
      match Unix.select rs ws [] (next_timeout t now) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | readable, writable, _ ->
        if List.mem wake_fd readable then begin
          let b = Bytes.create 64 in
          try ignore (Unix.read wake_fd b 0 64) with Unix.Unix_error _ -> ()
        end;
        adopt_pending t;
        List.iter
          (fun fd ->
            match List.find_opt (fun c -> c.fd == fd) t.conns with
            | Some c ->
              flush_some t c;
              if c.closing && pending_out c = 0 then close_conn t c
            | None -> ())
          writable;
        List.iter
          (fun fd ->
            if List.exists (fun l -> l == fd) lfds then accept_ready t fd
            else if fd != wake_fd then
              match List.find_opt (fun c -> c.fd == fd) t.conns with
              | Some c when not c.closing -> handle_readable t c
              | Some _ | None -> ())
          readable;
        publish t;
        loop ()
    end
  in
  loop ();
  (* Drain barrier: once every shard has left its loop, no shard will
     push into a mailbox again, so the final sweep below cannot miss a
     handoff. *)
  Atomic.incr sh.exited;
  while Atomic.get sh.exited < sh.nshards do
    Unix.sleepf 0.001
  done;
  adopt_pending t;
  drain t;
  publish t
