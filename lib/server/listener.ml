(* The accept loop: bind, listen, route.

   A listener owns only the listening socket.  It never reads, writes
   or greets an accepted connection — it wraps the fresh fd and hands
   it straight to the shard the router placed the default session on
   (via {!Shard.route_new}), so the owning shard is the socket's one
   and only writer from the first byte.  In fused (single-shard) mode
   {!run} is not used at all: the one shard selects the listening fd
   inside its own loop. *)

type addr = Unix_path of string | Tcp of { host : string; port : int }

type t = {
  fd : Unix.file_descr;
  bound : addr;
}

let bind ?(backlog = 16) bound =
  let fd, resolved =
    match bound with
    | Unix_path path ->
      if Sys.file_exists path then Unix.unlink path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      (fd, bound)
    | Tcp { host; port } ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      Unix.bind fd (Unix.ADDR_INET (ip, port));
      let resolved =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, port) -> Tcp { host; port }
        | _ -> bound
      in
      (fd, resolved)
  in
  Unix.listen fd backlog;
  Unix.set_nonblock fd;
  { fd; bound = resolved }

let addr t = t.bound
let fd t = t.fd

(* Accept until the backlog is dry, routing every fresh connection. *)
let accept_burst t sh =
  let rec go () =
    match Unix.accept t.fd with
    | fd, _ ->
      Shard.route_new sh fd;
      go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  in
  go ()

(* The multi-shard accept loop; runs in the calling thread until
   {!Shard.stop}.  The stop pipe wakes the select. *)
let run t sh =
  let stop_fd = Shard.lstop_fd sh in
  let rec loop () =
    if not (Shard.stopping sh) then begin
      match Unix.select [ t.fd; stop_fd ] [] [] (-1.0) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | readable, _, _ ->
        if List.mem stop_fd readable then begin
          let b = Bytes.create 64 in
          try ignore (Unix.read stop_fd b 0 64) with Unix.Unix_error _ -> ()
        end;
        if List.exists (fun r -> r == t.fd) readable then accept_burst t sh;
        loop ()
    end
  in
  loop ()

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let unlink t =
  match t.bound with
  | Unix_path path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ()
