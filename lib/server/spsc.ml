(* Bounded single-producer / single-consumer ring.

   One producer domain pushes, one consumer domain pops — the sharded
   server allocates one ring per (producer, consumer) pair, so no slot
   is ever contended.  Publication is the classic two-counter scheme:
   the producer writes the slot, then advances [tail] (an Atomic.set,
   which is a release); the consumer observes the new [tail] (acquire),
   reads the slot, then advances [head].  Under the OCaml memory model
   the slot accesses are therefore ordered by the atomic counters and
   race-free.  Slots are cleared on pop so the ring never pins dead
   payloads against the GC. *)

type 'a t = {
  buf : 'a option array;
  mask : int;  (* capacity - 1; capacity is a power of two *)
  head : int Atomic.t;  (* next slot to pop; advanced by the consumer *)
  tail : int Atomic.t;  (* next slot to push; advanced by the producer *)
}

let create cap =
  if cap < 1 then invalid_arg "Spsc.create: capacity < 1";
  let c = ref 1 in
  while !c < cap do
    c := !c * 2
  done;
  { buf = Array.make !c None; mask = !c - 1; head = Atomic.make 0;
    tail = Atomic.make 0 }

let capacity q = q.mask + 1

(* Producer side.  [false] = ring full (nothing written). *)
let push q x =
  let tl = Atomic.get q.tail in
  if tl - Atomic.get q.head > q.mask then false
  else begin
    q.buf.(tl land q.mask) <- Some x;
    Atomic.set q.tail (tl + 1);
    true
  end

(* Consumer side. *)
let pop q =
  let hd = Atomic.get q.head in
  if hd = Atomic.get q.tail then None
  else begin
    let i = hd land q.mask in
    let x = q.buf.(i) in
    q.buf.(i) <- None;
    Atomic.set q.head (hd + 1);
    x
  end
