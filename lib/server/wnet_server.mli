(** Socket front-end for an incremental payment session.

    One server owns ONE {!Wnet_session.S} (the access point's session)
    and serves many concurrent clients over a TCP or Unix-domain
    socket, all speaking the {!Wnet_proto} grammar.  Every connection
    opens in the proto=1 line codec; a client may switch its own
    connection to the {!Wnet_proto_bin} frame codec with [proto 2]
    (acknowledged by a text [ready proto=2 ...] banner, after which
    both directions of that connection speak binary frames — other
    connections are unaffected, and a corrupt frame is answered with
    [err]+[bye] and a close, since binary framing cannot resync).
    The loop is
    single-threaded ([Unix.select]): requests are applied to the
    session in arrival order, so the socket path inherits the engine's
    determinism contract — the payment stream is bit-identical to
    feeding the same interleaving to a stdin session or to from-scratch
    batches.

    Edits coalesce across clients: a burst of [cost] requests — from
    one client or interleaved across several — buffers in the session
    and folds into a single invalidation pass at the next [pay]
    (see {!Wnet_session.Link_session.flush}).

    Shutdown is graceful: {!shutdown} (or SIGINT/SIGTERM after
    {!install_signals}) finishes the request in flight — a [pay] is
    never abandoned mid-batch — answers any complete requests already
    buffered, sends [bye] to every client, flushes, closes, and
    removes a Unix-domain socket path.  Idle clients are disconnected
    (with [err idle timeout]) after [idle_timeout] seconds without a
    complete request. *)

type addr =
  | Unix_path of string
  | Tcp of { host : string; port : int }
      (** [port = 0] picks an ephemeral port; see {!addr}. *)

type t

type counters = {
  clients : int;  (** currently connected *)
  clients_served : int;  (** connections accepted over the lifetime *)
  requests : int;  (** parsed requests (including rejected ones) *)
  bytes_in : int;
  bytes_out : int;
}

val create :
  ?backlog:int ->
  ?idle_timeout:float ->
  addr ->
  (module Wnet_session.S) ->
  t
(** Bind and listen; the loop starts with {!serve}.  A stale socket
    file at a [Unix_path] is unlinked first.  [idle_timeout] (seconds,
    default none) bounds how long a client may sit without completing
    a request.  [backlog] defaults to 16.
    @raise Unix.Unix_error when the address cannot be bound. *)

val addr : t -> addr
(** The bound address — for [Tcp] with [port = 0], the actual port. *)

val serve : t -> unit
(** Run the accept/serve loop until {!shutdown}.  Ignores [SIGPIPE]
    for the whole process (failed writes surface as [EPIPE] and close
    the one connection). *)

val shutdown : t -> unit
(** Request graceful shutdown.  Safe from a signal handler or another
    thread; {!serve} returns once the drain completes.  Idempotent. *)

val install_signals : t -> unit
(** Route SIGINT and SIGTERM to {!shutdown} of this server. *)

val counters : t -> counters
(** Snapshot of the server-level counters (the [server ...] stats line
    additionally folds in the session's edit/cache counters). *)
