(** Sharded socket front-end for incremental payment sessions.

    One server hosts an ARRAY of {!Wnet_session.S} sessions (one per
    access point) and serves many concurrent clients over a TCP or
    Unix-domain socket, all speaking the {!Wnet_proto} grammar.  The
    server is built from three composable pieces, each usable on its
    own:

    - {!Listener} — binds and accepts; never touches an accepted
      socket beyond wrapping the fd.
    - {!Router} — maps each session id to the one shard that owns it
      (default: hash placement; {!Router.pin} is the explicit hook).
    - {!Shard} — a per-domain select loop owning a disjoint set of
      sessions and the connections attached to them.

    Connections open attached to session 0 and may move with
    [session N]; a cross-shard attach hands the whole connection —
    codec state and pending output included — to the owning shard over
    an SPSC mailbox, and the adopting shard answers with the target
    session's [ready] banner.  A connection's socket is only ever
    written by the shard that owns it, and a session is only ever
    mutated by the shard the router placed it on (enforced by
    {!Wnet_session}'s domain guard), so each session's edit stream is
    strictly serial in arrival order: payments are bit-identical to
    the single-threaded loop and the stdin oracle at every shard
    count.

    With [shards = 1] the shard loop and accept loop fuse into one
    thread — exactly the historical single-threaded server, wire
    format included ([stats] adds per-shard breakdown rows only when
    there is more than one shard).

    Every connection opens in the proto=1 line codec; [proto 2]
    switches that connection to {!Wnet_proto_bin} frames (acknowledged
    by a text [ready proto=2 ...] banner; a corrupt frame is answered
    with [err]+[bye] and a close, since binary framing cannot resync).

    Edits coalesce across clients of the same session: a burst of
    [cost] requests buffers in the session and folds into a single
    invalidation pass at the next [pay].

    Shutdown is graceful: {!shutdown} (or SIGINT/SIGTERM after
    {!install_signals}) stops the accept loop, lets every shard answer
    requests already received in full, sends [bye] to every client of
    every shard, flushes (bounded wait), closes, and removes a
    Unix-domain socket path.  Idle clients are disconnected (with
    [err idle timeout]) after [idle_timeout] seconds without a
    complete request. *)

module Spsc = Spsc
module Router = Router
module Shard = Shard
module Listener = Listener

type addr = Listener.addr =
  | Unix_path of string
  | Tcp of { host : string; port : int }
      (** [port = 0] picks an ephemeral port; see {!addr}. *)

(** Per-shard counter snapshot: connection tallies plus the roll-up of
    the sessions the shard owns ([cache_hits]/[cache_misses] are the
    avoidance-cache reuse counters, as on the [server] stats line). *)
type shard_stats = Shard.stats = {
  shard : int;
  conns : int;  (** currently connected to this shard *)
  served : int;  (** connections this shard adopted first *)
  requests : int;
  edits : int;
  coalesced : int;
  inval_passes : int;
  cache_hits : int;
  cache_misses : int;
  repaired : int;
  tasks : int;
  stolen : int;
  bytes_in : int;
  bytes_out : int;
}

type server_stats = {
  clients : int;  (** currently connected *)
  clients_served : int;  (** connections accepted over the lifetime *)
  requests : int;  (** parsed requests (including rejected ones) *)
  bytes_in : int;
  bytes_out : int;
  per_shard : shard_stats array;  (** one row per shard; the totals
                                      above are the column sums *)
}

type counters = {
  clients : int;
  clients_served : int;
  requests : int;
  bytes_in : int;
  bytes_out : int;
}
(** @deprecated The pre-shard counter record; use {!server_stats}. *)

type t

val create :
  ?backlog:int ->
  ?idle_timeout:float ->
  ?shards:int ->
  ?router:Router.t ->
  addr ->
  (module Wnet_session.S) array ->
  t
(** Bind and listen; the loops start with {!serve}.  [sessions] must
    be non-empty — clients attach to session 0 until they send
    [session N].  [shards] defaults to 1 (the fused single-threaded
    loop); [router] defaults to [Router.hash ~shards] and must be
    sized for [shards].  A stale socket file at a [Unix_path] is
    unlinked first.  [idle_timeout] (seconds, default none) bounds how
    long a client may sit without completing a request.  [backlog]
    defaults to 16.
    @raise Invalid_argument on an empty session array, [shards < 1],
    or a router/shard-count mismatch.
    @raise Unix.Unix_error when the address cannot be bound. *)

val addr : t -> addr
(** The bound address — for [Tcp] with [port = 0], the actual port. *)

val serve : t -> unit
(** Run until {!shutdown}: spawns one domain per shard (none when
    [shards = 1]) and runs the accept loop in the calling thread.
    Ignores [SIGPIPE] for the whole process (failed writes surface as
    [EPIPE] and close the one connection). *)

val shutdown : t -> unit
(** Request graceful shutdown.  Safe from a signal handler or another
    thread; {!serve} returns once every shard's drain completes.
    Idempotent. *)

val install_signals : t -> unit
(** Route SIGINT and SIGTERM to {!shutdown} of this server. *)

val stats : t -> server_stats
(** Snapshot of the per-shard counters with their totals.  The rows
    and totals come from one snapshot, so the rows always sum to the
    totals.  Valid during {!serve} and after it returns (the final
    tallies). *)

val counters : t -> counters
[@@ocaml.deprecated "use Wnet_server.stats"]
(** The pre-shard totals, kept one release for migration. *)

val run :
  ?backlog:int ->
  ?idle_timeout:float ->
  ?shards:int ->
  ?router:Router.t ->
  ?signals:bool ->
  ?on_listen:(t -> unit) ->
  addr ->
  (module Wnet_session.S) array ->
  server_stats
(** [run addr sessions] = {!create} + {!serve} + final {!stats}, with
    [?signals] (default false) wiring {!install_signals} and
    [?on_listen] called with the bound server before serving (print
    the resolved address, stash the handle for {!shutdown}, ...). *)
