(* Session-id -> shard placement.

   The router decides, once and up front, which shard's domain owns
   each session; every connection attached to a session is served by
   that one shard, which is the whole determinism argument of the
   sharded server (a session's edit stream is applied by exactly one
   domain, in arrival order).  The default placement hashes the session
   id; [pin] is the explicit hook for callers that want to lay sessions
   out by hand (the bench pins round-robin so every shard carries load
   at any session count). *)

type t = {
  shards : int;
  place : int -> int;
}

let shards t = t.shards

let place t session =
  let s = t.place session in
  if s < 0 || s >= t.shards then
    invalid_arg
      (Printf.sprintf "Router.place: session %d pinned to shard %d of %d"
         session s t.shards);
  s

(* Session ids are small dense ints, so the identity hash modulo the
   shard count spreads them evenly and deterministically. *)
let hash ~shards =
  if shards < 1 then invalid_arg "Router.hash: shards < 1";
  { shards; place = (fun session -> session land max_int mod shards) }

let pin ~shards place =
  if shards < 1 then invalid_arg "Router.pin: shards < 1";
  { shards; place }
