module B = Wnet_proto_bin

type addr = Unix_path of string | Tcp of { host : string; port : int }

(* Each connection owns both codecs: the line codec it opens with
   ([inbuf]/[out]) and a preallocated binary codec ([bdec]/[benc],
   scratch reused for the connection's lifetime) it switches to when
   the client negotiates [proto 2].  Text output always drains before
   binary output — the only moment both are pending is right after the
   upgrade, when the text [ready proto=2] banner precedes the first
   frame. *)
type conn = {
  fd : Unix.file_descr;
  mutable proto : int;  (* 1 = lines, 2 = binary frames *)
  mutable inbuf : string;  (* partial line, no '\n' yet *)
  mutable out : string;  (* rendered text replies not yet written *)
  benc : B.enc;  (* encoded frames not yet written *)
  bdec : B.dec;
  bview : B.view;
  mutable last_active : float;
  mutable requests : int;
  mutable bytes_in : int;
  mutable bytes_out : int;
  mutable closing : bool;  (* close once pending output drains *)
}

type t = {
  session : (module Wnet_session.S);
  listen_fd : Unix.file_descr;
  bound : addr;
  idle_timeout : float option;
  pipe_r : Unix.file_descr;  (* self-pipe: wakes select on shutdown *)
  pipe_w : Unix.file_descr;
  mutable stopping : bool;
  mutable conns : conn list;
  mutable clients_served : int;
  mutable requests : int;
  mutable bytes_in : int;
  mutable bytes_out : int;
}

type counters = {
  clients : int;
  clients_served : int;
  requests : int;
  bytes_in : int;
  bytes_out : int;
}

let counters t =
  {
    clients = List.length t.conns;
    clients_served = t.clients_served;
    requests = t.requests;
    bytes_in = t.bytes_in;
    bytes_out = t.bytes_out;
  }

let addr t = t.bound

let create ?(backlog = 16) ?idle_timeout bound session =
  let fd, resolved =
    match bound with
    | Unix_path path ->
      if Sys.file_exists path then Unix.unlink path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      (fd, bound)
    | Tcp { host; port } ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      Unix.bind fd (Unix.ADDR_INET (ip, port));
      let resolved =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, port) -> Tcp { host; port }
        | _ -> bound
      in
      (fd, resolved)
  in
  Unix.listen fd backlog;
  Unix.set_nonblock fd;
  let pipe_r, pipe_w = Unix.pipe () in
  {
    session;
    listen_fd = fd;
    bound = resolved;
    idle_timeout;
    pipe_r;
    pipe_w;
    stopping = false;
    conns = [];
    clients_served = 0;
    requests = 0;
    bytes_in = 0;
    bytes_out = 0;
  }

let shutdown t =
  t.stopping <- true;
  (* Wake a select blocked in another thread; ignore a full or closed
     pipe — the flag alone suffices once the loop runs. *)
  try ignore (Unix.write_substring t.pipe_w "x" 0 1) with _ -> ()

let install_signals t =
  let h = Sys.Signal_handle (fun _ -> shutdown t) in
  Sys.set_signal Sys.sigint h;
  Sys.set_signal Sys.sigterm h

let render rs =
  String.concat "" (List.map (fun r -> Wnet_proto.print_response r ^ "\n") rs)

let server_stats (t : t) =
  let module S = (val t.session : Wnet_session.S) in
  let st = S.stats () in
  Wnet_proto.Server_stats
    {
      clients = List.length t.conns;
      requests = t.requests;
      edits = st.edits;
      coalesced = st.coalesced_edits;
      cache_hits = st.avoid_reused;
      cache_misses = st.avoid_runs;
      bytes_in = t.bytes_in;
      bytes_out = t.bytes_out;
    }

let conn_stats (c : conn) =
  Wnet_proto.Conn_stats
    {
      requests = c.requests;
      bytes_in = c.bytes_in;
      bytes_out = c.bytes_out;
      proto = c.proto;
    }

let queue (c : conn) rs =
  if rs <> [] then
    if c.proto = 2 then B.encode_responses c.benc rs
    else c.out <- c.out ^ render rs

let pending_out (c : conn) = String.length c.out + B.enc_pending c.benc

let close_conn (t : t) (c : conn) =
  (try Unix.close c.fd with Unix.Unix_error _ -> ());
  t.conns <- List.filter (fun c' -> c' != c) t.conns

(* Write as much pending output as the socket accepts right now; text
   before frames (see the [conn] invariant). *)
let flush_some (t : t) (c : conn) =
  let account n =
    c.bytes_out <- c.bytes_out + n;
    t.bytes_out <- t.bytes_out + n
  in
  try
    let len = String.length c.out in
    if len > 0 then begin
      let n = Unix.write_substring c.fd c.out 0 len in
      c.out <- String.sub c.out n (len - n);
      account n
    end;
    let blen = B.enc_pending c.benc in
    if c.out = "" && blen > 0 then begin
      let n = Unix.write c.fd (B.enc_buffer c.benc) (B.enc_offset c.benc) blen in
      B.enc_consume c.benc n;
      account n
    end
  with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> close_conn t c

(* Split off the first complete line; the tail stays buffered. *)
let next_line (c : conn) =
  match String.index_opt c.inbuf '\n' with
  | None -> None
  | Some i ->
    let line = String.sub c.inbuf 0 i in
    let line =
      if line <> "" && line.[String.length line - 1] = '\r' then
        String.sub line 0 (String.length line - 1)
      else line
    in
    c.inbuf <- String.sub c.inbuf (i + 1) (String.length c.inbuf - i - 1);
    Some line

(* One parsed request -> queued replies.  The protocol handler does the
   work; the server layers its own stats onto [stats] replies, latches
   the close on [quit], and owns codec negotiation ([proto N]) because
   switching is transport state, not session state. *)
let process (t : t) (c : conn) parsed =
  c.last_active <- Unix.gettimeofday ();
  match parsed with
  | Ok None -> ()
  | Error m ->
    c.requests <- c.requests + 1;
    t.requests <- t.requests + 1;
    queue c [ Wnet_proto.Err m ]
  | Ok (Some req) -> (
    c.requests <- c.requests + 1;
    t.requests <- t.requests + 1;
    match req with
    | Wnet_proto.Proto { proto = p } ->
      if p = B.version then begin
        (* Acknowledge in the current codec, then switch both
           directions.  Bytes already buffered behind the request are
           re-fed to the frame decoder. *)
        queue c [ Wnet_proto.greeting ~proto:B.version t.session ];
        if c.proto <> B.version then begin
          c.proto <- B.version;
          if c.inbuf <> "" then begin
            B.dec_feed_string c.bdec c.inbuf 0 (String.length c.inbuf);
            c.inbuf <- ""
          end
        end
      end
      else if p = Wnet_proto.version && c.proto = Wnet_proto.version then
        queue c [ Wnet_proto.greeting t.session ]
      else if p = Wnet_proto.version then
        queue c [ Wnet_proto.Err "proto: downgrade unsupported" ]
      else
        queue c
          [ Wnet_proto.Err (Printf.sprintf "proto: unsupported version %d" p) ]
    | Wnet_proto.Stats ->
      queue c
        (Wnet_proto.handle t.session req @ [ server_stats t; conn_stats c ])
    | Wnet_proto.Quit ->
      queue c (Wnet_proto.handle t.session req);
      c.closing <- true
    | _ -> queue c (Wnet_proto.handle t.session req))

(* Answer every complete request already buffered, one at a time — the
   request may switch the codec for the bytes behind it. *)
let rec drain_input (t : t) (c : conn) =
  if not c.closing then
    if c.proto = 2 then
      match B.decode_request c.bdec c.bview with
      | `Req req ->
        process t c (Ok (Some req));
        drain_input t c
      | `Need_more -> ()
      | `Corrupt m ->
        (* Framing is lost for good: report, dismiss, close. *)
        c.requests <- c.requests + 1;
        t.requests <- t.requests + 1;
        queue c [ Wnet_proto.Err ("proto: " ^ m); Wnet_proto.Bye ];
        c.closing <- true
    else
      match next_line c with
      | Some line ->
        process t c (Wnet_proto.parse_request line);
        drain_input t c
      | None -> ()

let handle_readable (t : t) (c : conn) =
  let bytes = Bytes.create 4096 in
  match Unix.read c.fd bytes 0 4096 with
  | 0 ->
    (* Client half-closed: answer what is already buffered, then go. *)
    drain_input t c;
    c.closing <- true;
    flush_some t c;
    if pending_out c = 0 then close_conn t c
  | n ->
    c.bytes_in <- c.bytes_in + n;
    t.bytes_in <- t.bytes_in + n;
    if c.proto = 2 then B.dec_feed c.bdec bytes 0 n
    else c.inbuf <- c.inbuf ^ Bytes.sub_string bytes 0 n;
    drain_input t c;
    flush_some t c;
    if c.closing && pending_out c = 0 then close_conn t c
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
    close_conn t c

let accept_ready (t : t) =
  match Unix.accept t.listen_fd with
  | fd, _ ->
    Unix.set_nonblock fd;
    let c =
      {
        fd;
        proto = Wnet_proto.version;
        inbuf = "";
        out = "";
        benc = B.enc_create ();
        bdec = B.dec_create ();
        bview = B.make_view ();
        last_active = Unix.gettimeofday ();
        requests = 0;
        bytes_in = 0;
        bytes_out = 0;
        closing = false;
      }
    in
    t.conns <- c :: t.conns;
    t.clients_served <- t.clients_served + 1;
    queue c [ Wnet_proto.greeting t.session ];
    flush_some t c
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()

let sweep_idle (t : t) now =
  match t.idle_timeout with
  | None -> ()
  | Some limit ->
    List.iter
      (fun c ->
        if (not c.closing) && now -. c.last_active > limit then begin
          queue c [ Wnet_proto.Err "idle timeout"; Wnet_proto.Bye ];
          c.closing <- true;
          flush_some t c;
          if pending_out c = 0 then close_conn t c
        end)
      t.conns

let next_timeout (t : t) now =
  match t.idle_timeout with
  | None -> -1.0
  | Some limit ->
    List.fold_left
      (fun acc c ->
        let left = (c.last_active +. limit) -. now in
        let left = if left < 0.0 then 0.0 else left in
        if acc < 0.0 || left < acc then left else acc)
      (-1.0) t.conns

(* Graceful drain: no new requests are read, but requests already
   received in full are answered, every client gets [bye], and pending
   output is flushed (bounded wait) before the sockets close. *)
let drain (t : t) =
  List.iter
    (fun c ->
      drain_input t c;
      if not c.closing then queue c [ Wnet_proto.Bye ];
      c.closing <- true)
    t.conns;
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec flush_all () =
    List.iter (fun c -> flush_some t c) t.conns;
    t.conns <-
      List.filter
        (fun c -> pending_out c <> 0 || (Unix.close c.fd; false))
        t.conns;
    if t.conns <> [] && Unix.gettimeofday () < deadline then begin
      let ws = List.map (fun c -> c.fd) t.conns in
      (match Unix.select [] ws [] 0.1 with
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      flush_all ()
    end
  in
  flush_all ();
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) t.conns;
  t.conns <- []

let serve (t : t) =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let rec loop () =
    if not t.stopping then begin
      let now = Unix.gettimeofday () in
      sweep_idle t now;
      let rs =
        t.pipe_r :: t.listen_fd :: List.map (fun c -> c.fd) t.conns
      in
      let ws =
        List.filter_map
          (fun c -> if pending_out c <> 0 then Some c.fd else None)
          t.conns
      in
      match Unix.select rs ws [] (next_timeout t now) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | readable, writable, _ ->
        if List.mem t.pipe_r readable then begin
          let b = Bytes.create 16 in
          try ignore (Unix.read t.pipe_r b 0 16) with Unix.Unix_error _ -> ()
        end;
        List.iter
          (fun fd ->
            match List.find_opt (fun c -> c.fd == fd) t.conns with
            | Some c ->
              flush_some t c;
              if c.closing && pending_out c = 0 then close_conn t c
            | None -> ())
          writable;
        List.iter
          (fun fd ->
            if fd == t.listen_fd then accept_ready t
            else if fd != t.pipe_r then
              match List.find_opt (fun c -> c.fd == fd) t.conns with
              | Some c when not c.closing -> handle_readable t c
              | Some _ | None -> ())
          readable;
        loop ()
    end
  in
  loop ();
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  drain t;
  (match t.bound with
  | Unix_path path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ());
  (try Unix.close t.pipe_r with Unix.Unix_error _ -> ());
  try Unix.close t.pipe_w with Unix.Unix_error _ -> ()
