(* The sharded socket server: Listener (accept) -> Router (place) ->
   Shard (serve).  This module is the assembly: it wires the three
   composable pieces together and keeps the one-call [run] entry for
   front-ends that just want "serve these sessions on this address".

   The structure per shard count:
   - shards = 1 (fused): the single shard's loop also selects the
     listening fd and accepts inline — one thread, one loop, exactly
     the historical single-threaded server.
   - shards > 1: one domain per shard runs {!Shard.run}; the calling
     thread runs the {!Listener.run} accept loop, handing fresh
     connections to the owning shard over SPSC mailboxes. *)

module Spsc = Spsc
module Router = Router
module Shard = Shard
module Listener = Listener

type addr = Listener.addr =
  | Unix_path of string
  | Tcp of { host : string; port : int }

type shard_stats = Shard.stats = {
  shard : int;
  conns : int;
  served : int;
  requests : int;
  edits : int;
  coalesced : int;
  inval_passes : int;
  cache_hits : int;
  cache_misses : int;
  repaired : int;
  tasks : int;
  stolen : int;
  bytes_in : int;
  bytes_out : int;
}

type server_stats = {
  clients : int;
  clients_served : int;
  requests : int;
  bytes_in : int;
  bytes_out : int;
  per_shard : shard_stats array;
}

type counters = {
  clients : int;
  clients_served : int;
  requests : int;
  bytes_in : int;
  bytes_out : int;
}

type t = {
  sh : Shard.shared;
  listener : Listener.t;
}

let create ?(backlog = 16) ?idle_timeout ?(shards = 1) ?router bound sessions
    =
  let router =
    match router with
    | None -> Router.hash ~shards
    | Some r ->
      if Router.shards r <> shards then
        invalid_arg "Wnet_server.create: router sized for a different shard \
                     count";
      r
  in
  let listener = Listener.bind ~backlog bound in
  let sh =
    try Shard.make_shared ~nshards:shards ~router ~idle_timeout ~sessions
    with e ->
      Listener.close listener;
      Listener.unlink listener;
      raise e
  in
  { sh; listener }

let addr t = Listener.addr t.listener
let shutdown t = Shard.stop t.sh

let install_signals t =
  let h = Sys.Signal_handle (fun _ -> shutdown t) in
  Sys.set_signal Sys.sigint h;
  Sys.set_signal Sys.sigterm h

let stats t : server_stats =
  let rows = Shard.snapshot t.sh in
  let sum f = Array.fold_left (fun acc r -> acc + f r) 0 rows in
  {
    clients = sum (fun (r : shard_stats) -> r.conns);
    clients_served = sum (fun (r : shard_stats) -> r.served);
    requests = sum (fun (r : shard_stats) -> r.requests);
    bytes_in = sum (fun (r : shard_stats) -> r.bytes_in);
    bytes_out = sum (fun (r : shard_stats) -> r.bytes_out);
    per_shard = rows;
  }

let counters t : counters =
  let s = stats t in
  {
    clients = s.clients;
    clients_served = s.clients_served;
    requests = s.requests;
    bytes_in = s.bytes_in;
    bytes_out = s.bytes_out;
  }

let serve t =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  if Shard.nshards t.sh = 1 then begin
    (* Fused: no separate accept loop to wait for. *)
    Shard.listener_done t.sh;
    Shard.run ~listen_fd:(Listener.fd t.listener) t.sh 0;
    Listener.close t.listener
  end
  else begin
    let domains =
      List.init (Shard.nshards t.sh) (fun i ->
          Domain.spawn (fun () -> Shard.run t.sh i))
    in
    Listener.run t.listener t.sh;
    Listener.close t.listener;
    (* Shards keep looping until the listener is known to have stopped
       handing connections off, then drain. *)
    Shard.listener_done t.sh;
    List.iter Domain.join domains
  end;
  Listener.unlink t.listener;
  Shard.close_shared t.sh

let run ?backlog ?idle_timeout ?(shards = 1) ?router ?(signals = false)
    ?on_listen bound sessions =
  let t = create ?backlog ?idle_timeout ~shards ?router bound sessions in
  if signals then install_signals t;
  (match on_listen with None -> () | Some f -> f t);
  serve t;
  stats t
