(** Distributed payment computation (Sec. III-C stage 2 and Algorithm 2
    stage 2).

    After the SPT stage, every node [v_i] computes the payment [p_i^k]
    owed to each relay [v_k] on its least cost path to the access point,
    by iterated neighbour relaxation.  The paper's three update rules are
    all instances of one relaxation — on hearing neighbour [v_j]'s
    current table (with [D(j)] and [c_j]):

    - if [v_k] is a relay of [v_j]'s path:
      [p_i^k <- min(p_i^k, p_j^k + c_j + D(j) - D(i))];
    - if it is not (so [v_j]'s own path already avoids [v_k]):
      [p_i^k <- min(p_i^k, c_k + c_j + D(j) - D(i))];
    - messages from [v_j = v_k] itself are skipped — a route avoiding
      [v_k] cannot go through it.

    Specializing [j] to the tree parent ([D(j) + c_j = D(i)]) or a tree
    child ([D(j) = D(i) + c_i]) recovers the paper's rules 1 and 2
    verbatim.  Entries decrease monotonically and converge to the
    centralized VCG payments in at most [n] rounds on a static network.

    Algorithm 2's verification: every broadcast names, for each entry,
    the neighbour whose message produced its current value.  That
    neighbour recomputes the entry from its own last broadcast and
    accuses on mismatch; the {!Deflate_entries} adversary (a node
    under-reporting the payments it owes) is caught this way. *)

type adversary =
  | Honest
  | Deflate_entries of float
      (** broadcast own payment entries scaled by this factor < 1 *)

type outcome = {
  root : int;
  payments : (int * float) list array;
      (** [payments.(i)]: converged [(relay, p_i^k)] table of node [i],
          sorted by relay id; empty for the root and for nodes adjacent
          to it *)
  accusations : (int * int) list;
      (** distinct [(accuser, accused)] pairs raised by verification *)
  stats : Engine.stats;
}

val run :
  ?adversaries:(int -> adversary) ->
  ?verify:bool ->
  ?max_rounds:int ->
  ?pool:Wnet_par.t ->
  Wnet_graph.Graph.t ->
  root:int ->
  outcome
(** Runs stage 2 on top of the {e centralized} SPT (equivalently, a
    converged honest stage 1; use {!Spt_protocol} to study stage-1
    manipulation separately).  Unreachable nodes get empty tables.
    @raise Invalid_argument if [root] is out of range. *)

val run_full :
  ?verify:bool ->
  ?max_rounds:int ->
  ?pool:Wnet_par.t ->
  Wnet_graph.Graph.t ->
  root:int ->
  outcome
(** The whole pipeline with {e no} centralized step: the declaration
    flood, then the distributed SPT of {!Spt_protocol}, whose converged
    distances and first hops seed this stage-2 relaxation.  The returned
    stats aggregate all three phases.  On honest inputs the payments
    still equal the centralized VCG values — the full
    "implementation-faithful" version of the paper's protocol. *)

val run_async :
  ?adversaries:(int -> adversary) ->
  ?verify:bool ->
  ?max_events:int ->
  rng:Wnet_prng.Rng.t ->
  Wnet_graph.Graph.t ->
  root:int ->
  ((int * float) list array * (int * int) list) * Async_engine.stats
(** Stage 2 under the asynchronous engine: returns the converged
    [(payments, accusations)].  Monotone relaxation is schedule-oblivious,
    so the payments must equal the synchronous (and centralized)
    values. *)

val centralized_reference : Wnet_graph.Graph.t -> root:int -> (int * float) list array
(** The target values: for every source, the VCG payments of its unicast
    to [root] computed centrally. *)

val agrees_with_centralized : outcome -> Wnet_graph.Graph.t -> bool
(** Entry-wise comparison against {!centralized_reference} with 1e-6
    relative tolerance. *)
