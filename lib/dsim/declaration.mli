(** The declaration phase (Sec. II-C / III-A, step 0).

    Before any route or payment can be computed, "each node [v_j] on the
    network declares a cost [d_j]": every node floods its declaration and
    collects everybody else's.  This module implements that flood over
    the {!Engine} (so it composes with the other stages and both
    engines): each node re-broadcasts every declaration the first time it
    hears it.

    On a connected network every node ends with the complete declared
    profile; total traffic is [O(n)] broadcasts per node ([O(n m)]
    deliveries), and the phase finishes in diameter-plus-one rounds —
    both reported by the engine stats.

    Lying happens {e here} (a node declares [d_j != c_j]); the mechanism
    is designed so that this is the only lie worth analyzing, and the
    VCG payments make even it unprofitable. *)

type node_state = {
  known : float array;  (** [known.(j)]: declared cost of [j], [nan] until heard *)
  complete : bool;  (** all entries heard *)
}

val run :
  ?declared:(int -> float) ->
  ?max_rounds:int ->
  ?pool:Wnet_par.t ->
  Wnet_graph.Graph.t ->
  node_state array * Engine.stats
(** [run g] floods declarations; [declared] defaults to each node's cost
    in [g] (truthful declaration).  On a connected graph every final
    state has [complete = true] and identical [known] vectors. *)

val consensus_profile : node_state array -> float array option
(** The common declared profile if every node is complete and they all
    agree; [None] otherwise (e.g. disconnected network). *)
