(** Budgeted cost-sharing connectivity as a dsim scenario (after Zhang,
    Zhao, Zhang & Gu, {e Cost Sharing for Connectivity with Budget}).

    A set of {e subscribers} wants connectivity to the access point over
    the established shortest-path tree.  Each relay's declared cost is
    split egalitarianly among the subscribers whose path uses it, and
    every subscriber carries a budget: a subscriber whose total charge
    exceeds its budget drops out, {e permanently}.  Because a drop only
    shrinks the sharing pools on its root path, the surviving charges
    are monotone non-decreasing, the iterated-drop process has a unique
    fixed point regardless of drop order — and the distributed runs
    (synchronous, asynchronous, any pool size) land on shares that are
    [Float.equal]-identical to the centralized reference.

    The protocol is two message waves on the tree, both over the
    {!Engine.direct} channel: subscriber counts flow up (each node knows
    its children from the stage-1 parent array, so pools are only ever
    aggregated from complete information), cumulative per-subscriber
    charges flow down.  Charge of a subscriber [s] is
    [down(parent s)] where [down(root) = 0] and
    [down(v) = down(parent v) + c_v / users(v)]. *)

type msg =
  | Count of int  (** child → parent: subscribers in my subtree *)
  | Share of float  (** parent → child: charge for the path down to you *)

type node_state = {
  subscribed : bool;  (** still funded (never true for the root) *)
  share : float;  (** this node's own charge; [nan] until heard *)
  down : float;  (** charge relayed to children; [nan] until computable *)
  users : int;  (** subscribed strict descendants (this node's pool) *)
  subtree : int;  (** [users] plus self if subscribed *)
}

type outcome = {
  root : int;
  funded : bool array;  (** subscribers still in at the fixed point *)
  shares : float array;  (** per funded subscriber; [nan] otherwise *)
  users : int array;
  stats : Engine.stats;
}

val make_spec :
  Wnet_graph.Graph.t ->
  root:int ->
  parent:int array ->
  subscriber:(int -> bool) ->
  budget:(int -> float) ->
  (node_state, msg) Engine.spec
(** [parent.(v)] is [v]'s first hop toward the root ([-1] for the root
    and unreachable nodes) — a stage-1 product ({!Spt_protocol.first_hops}
    or {!tree_parents}).
    @raise Invalid_argument if [root] or the parent array is invalid. *)

val tree_parents : Wnet_graph.Graph.t -> root:int -> int array
(** Stage-1 shortcut: first hops of the centralized node-weighted SPT. *)

val run :
  ?max_rounds:int ->
  ?pool:Wnet_par.t ->
  ?parents:int array ->
  subscriber:(int -> bool) ->
  budget:(int -> float) ->
  Wnet_graph.Graph.t ->
  root:int ->
  outcome
(** [parents] defaults to {!tree_parents}. *)

val run_async :
  ?max_events:int ->
  ?parents:int array ->
  rng:Wnet_prng.Rng.t ->
  subscriber:(int -> bool) ->
  budget:(int -> float) ->
  Wnet_graph.Graph.t ->
  root:int ->
  outcome
(** Same fixed point under the event-queue schedule; the synthesized
    stats carry the delivery count and convergence flag only. *)

val centralized :
  Wnet_graph.Graph.t ->
  root:int ->
  parent:int array ->
  subscriber:(int -> bool) ->
  budget:(int -> float) ->
  bool array * float array * int array
(** The iterated-drop reference: [(funded, shares, users)], computed
    with the distributed charge expression operation for operation, so
    agreement is exact ([Float.equal]), not approximate. *)

val matches_centralized :
  outcome ->
  Wnet_graph.Graph.t ->
  parent:int array ->
  subscriber:(int -> bool) ->
  budget:(int -> float) ->
  bool
