(* Flat-arena synchronous engine.

   A round is two phases.  The *step* phase runs every node with a
   non-empty inbox as one Wnet_par stolen task; each task reads the
   frozen round-start arena through a per-node reusable view and writes
   only node-indexed slots (the node's state and its output buffer), so
   the phase is deterministic at any pool size.  The *delivery* phase is
   sequential: a counting sort over the stepped nodes in ascending
   order lands every message into the other arena at its canonical
   (sender, seq) position and maintains the next round's active list —
   which doubles as the live non-empty-inbox counter, so quiescence is
   a length check, not an O(n) scan.

   The two arenas are double-buffered: the one being consumed is never
   the one being filled, and both keep their backing arrays across
   rounds (growable, seeded by the first message pushed), so the steady
   state allocates nothing beyond the protocol's own messages. *)

type 'msg inbox = {
  mutable ib_senders : int array;
  mutable ib_payloads : 'msg array;
  mutable ib_off : int;
  mutable ib_cnt : int;
}

let inbox_length ib = ib.ib_cnt
let inbox_is_empty ib = ib.ib_cnt = 0

let inbox_sender ib i =
  if i < 0 || i >= ib.ib_cnt then invalid_arg "Engine.inbox_sender";
  ib.ib_senders.(ib.ib_off + i)

let inbox_payload ib i =
  if i < 0 || i >= ib.ib_cnt then invalid_arg "Engine.inbox_payload";
  ib.ib_payloads.(ib.ib_off + i)

let inbox_iter ib f =
  for i = 0 to ib.ib_cnt - 1 do
    f ib.ib_senders.(ib.ib_off + i) ib.ib_payloads.(ib.ib_off + i)
  done

let make_inbox () =
  { ib_senders = [||]; ib_payloads = [||]; ib_off = 0; ib_cnt = 0 }

let fill_inbox ib ~senders ~payloads ~off ~cnt =
  ib.ib_senders <- senders;
  ib.ib_payloads <- payloads;
  ib.ib_off <- off;
  ib.ib_cnt <- cnt

type 'msg outbox = {
  emit_broadcast : 'msg -> unit;
  emit_direct : int -> 'msg -> unit;
}

let broadcast ob m = ob.emit_broadcast m
let direct ob ~target m = ob.emit_direct target m

let make_outbox ~on_broadcast ~on_direct =
  { emit_broadcast = on_broadcast; emit_direct = on_direct }

type ('state, 'msg) spec = {
  init : int -> 'state;
  step :
    node:int ->
    round:int ->
    event:int ->
    inbox:'msg inbox ->
    outbox:'msg outbox ->
    'state ->
    'state;
}

type stats = {
  rounds : int;
  broadcasts : int;
  directs : int;
  deliveries : int;
  converged : bool;
  tasks_executed : int;
  tasks_stolen : int;
}

(* Per-node output buffer: kind = -1 for a broadcast, the target node
   for a direct.  Owned by the node's step task; reset by delivery. *)
type 'msg outbuf = {
  mutable kinds : int array;
  mutable omsgs : 'msg array;
  mutable olen : int;
}

let push_out ob kind m =
  let cap = Array.length ob.kinds in
  if ob.olen = cap then begin
    let ncap = if cap = 0 then 4 else 2 * cap in
    let nk = Array.make ncap (-1) in
    Array.blit ob.kinds 0 nk 0 ob.olen;
    ob.kinds <- nk;
    let nm = Array.make ncap m in
    Array.blit ob.omsgs 0 nm 0 ob.olen;
    ob.omsgs <- nm
  end;
  ob.kinds.(ob.olen) <- kind;
  ob.omsgs.(ob.olen) <- m;
  ob.olen <- ob.olen + 1

(* One side of the double buffer: flat (sender, payload) arrays plus a
   per-node (offset, count) directory and the active list of nodes with
   a non-empty inbox. *)
type 'msg arena = {
  mutable senders : int array;
  mutable payloads : 'msg array;
  off : int array;
  cnt : int array;
  act : int array;
  mutable act_len : int;
  mutable len : int;
}

let make_arena n =
  {
    senders = [||];
    payloads = [||];
    off = Array.make n 0;
    cnt = Array.make n 0;
    act = Array.make n 0;
    act_len = 0;
    len = 0;
  }

let rec next_pow2 k c = if c >= k then c else next_pow2 k (c * 2)

(* In-place ascending sort of a.(0 .. len-1), allocation-free: the
   active list is rebuilt in first-delivery order every round and must
   be stepped in ascending node order for the canonical schedule. *)
let sort_prefix a len =
  let rec qsort lo hi =
    if hi - lo < 12 then
      for i = lo + 1 to hi do
        let x = a.(i) in
        let j = ref (i - 1) in
        while !j >= lo && a.(!j) > x do
          a.(!j + 1) <- a.(!j);
          decr j
        done;
        a.(!j + 1) <- x
      done
    else begin
      let mid = lo + ((hi - lo) / 2) in
      let swap i j =
        let t = a.(i) in
        a.(i) <- a.(j);
        a.(j) <- t
      in
      if a.(mid) < a.(lo) then swap mid lo;
      if a.(hi) < a.(lo) then swap hi lo;
      if a.(hi) < a.(mid) then swap hi mid;
      let pivot = a.(mid) in
      let i = ref lo and j = ref hi in
      while !i <= !j do
        while a.(!i) < pivot do
          incr i
        done;
        while a.(!j) > pivot do
          decr j
        done;
        if !i <= !j then begin
          swap !i !j;
          incr i;
          decr j
        end
      done;
      (* recurse on the smaller side first to bound the stack *)
      if !j - lo < hi - !i then begin
        qsort lo !j;
        qsort !i hi
      end
      else begin
        qsort !i hi;
        qsort lo !j
      end
    end
  in
  if len > 1 then qsort 0 (len - 1)

let run ?max_rounds ?(pool = Wnet_par.sequential) g spec =
  let n = Wnet_graph.Graph.n g in
  let max_rounds = Option.value max_rounds ~default:((4 * n) + 16) in
  let before = Wnet_par.stats pool in
  let states = Array.init n spec.init in
  let outs = Array.init n (fun _ -> { kinds = [||]; omsgs = [||]; olen = 0 }) in
  let outboxes =
    Array.init n (fun v ->
        {
          emit_broadcast = (fun m -> push_out outs.(v) (-1) m);
          emit_direct =
            (fun w m ->
              if not (Wnet_graph.Graph.mem_edge g v w) then
                invalid_arg "Engine: direct message to a non-neighbour";
              push_out outs.(v) w m);
        })
  in
  let views = Array.init n (fun _ -> make_inbox ()) in
  (* Flat adjacency for the broadcast fan-outs below — delivery is the
     engine's hottest loop, and the CSR rows iterate without bounds
     checks or a row-array load per neighbour. *)
  let { Wnet_graph.Graph.row_off; col } = Wnet_graph.Graph.csr g in
  let cur = ref (make_arena n) and nxt = ref (make_arena n) in
  let fill = Array.make n 0 in
  let broadcasts = ref 0 and directs = ref 0 and deliveries = ref 0 in
  (* Land the buffered outputs of [stepped] (ascending order) into [b]:
     first clear [b]'s previous-round directory, then one counting pass
     (which also rebuilds the active list and the message total), then
     offsets, then placement.  Walking the stepped nodes in ascending
     order twice is what canonicalises delivery by (sender, seq). *)
  let deliver b stepped slen =
    for i = 0 to b.act_len - 1 do
      b.cnt.(b.act.(i)) <- 0
    done;
    b.act_len <- 0;
    b.len <- 0;
    let bump w =
      if b.cnt.(w) = 0 then begin
        b.act.(b.act_len) <- w;
        b.act_len <- b.act_len + 1
      end;
      b.cnt.(w) <- b.cnt.(w) + 1;
      b.len <- b.len + 1
    in
    for i = 0 to slen - 1 do
      let v = stepped.(i) in
      let ob = outs.(v) in
      for k = 0 to ob.olen - 1 do
        let kind = ob.kinds.(k) in
        if kind < 0 then begin
          incr broadcasts;
          deliveries := !deliveries + (row_off.(v + 1) - row_off.(v));
          for j = row_off.(v) to row_off.(v + 1) - 1 do
            bump (Array.unsafe_get col j)
          done
        end
        else begin
          incr directs;
          incr deliveries;
          bump kind
        end
      done
    done;
    if b.len > 0 then begin
      let run_off = ref 0 in
      for i = 0 to b.act_len - 1 do
        let w = b.act.(i) in
        b.off.(w) <- !run_off;
        fill.(w) <- 0;
        run_off := !run_off + b.cnt.(w)
      done;
      if Array.length b.senders < b.len then
        b.senders <- Array.make (next_pow2 b.len 16) 0;
      if Array.length b.payloads < b.len then begin
        (* seed the polymorphic payload array with any pending message
           (b.len > 0 guarantees one exists); every cell below [b.len]
           is overwritten by placement *)
        let rec find_seed i =
          let ob = outs.(stepped.(i)) in
          if ob.olen > 0 then ob.omsgs.(0) else find_seed (i + 1)
        in
        b.payloads <- Array.make (next_pow2 b.len 16) (find_seed 0)
      end;
      for i = 0 to slen - 1 do
        let v = stepped.(i) in
        let ob = outs.(v) in
        for k = 0 to ob.olen - 1 do
          let kind = ob.kinds.(k) in
          let m = ob.omsgs.(k) in
          let place w =
            let pos = b.off.(w) + fill.(w) in
            fill.(w) <- fill.(w) + 1;
            b.senders.(pos) <- v;
            b.payloads.(pos) <- m
          in
          if kind < 0 then
            for j = row_off.(v) to row_off.(v + 1) - 1 do
              place (Array.unsafe_get col j)
            done
          else place kind
        done;
        ob.olen <- 0
      done
    end
    else
      for i = 0 to slen - 1 do
        outs.(stepped.(i)).olen <- 0
      done
  in
  let step_phase round stepped slen =
    Wnet_par.iter_stealing pool ~lo:0 ~hi:slen (fun i ->
        let v = stepped.(i) in
        let a = !cur in
        let ib = views.(v) in
        ib.ib_senders <- a.senders;
        ib.ib_payloads <- a.payloads;
        ib.ib_off <- a.off.(v);
        ib.ib_cnt <- a.cnt.(v);
        states.(v) <-
          spec.step ~node:v ~round ~event:(-1) ~inbox:ib ~outbox:outboxes.(v)
            states.(v))
  in
  (* Round 0: everyone fires once with an empty inbox. *)
  let all = Array.init n (fun i -> i) in
  step_phase 0 all n;
  deliver !nxt all n;
  let rounds = ref 0 in
  while !nxt.act_len > 0 && !rounds < max_rounds do
    incr rounds;
    let t = !cur in
    cur := !nxt;
    nxt := t;
    let a = !cur in
    sort_prefix a.act a.act_len;
    step_phase !rounds a.act a.act_len;
    deliver !nxt a.act a.act_len
  done;
  let after = Wnet_par.stats pool in
  ( states,
    {
      rounds = !rounds;
      broadcasts = !broadcasts;
      directs = !directs;
      deliveries = !deliveries;
      converged = !nxt.act_len = 0;
      tasks_executed =
        after.Wnet_par.tasks_executed - before.Wnet_par.tasks_executed;
      tasks_stolen = after.Wnet_par.tasks_stolen - before.Wnet_par.tasks_stolen;
    } )
