open Wnet_graph

(* Budgeted cost-sharing connectivity over the shared SPT (after Zhang,
   Zhao, Zhang & Gu, "Cost Sharing for Connectivity with Budget").

   A set of subscribers wants connectivity to the access point over the
   established shortest-path tree; each relay's declared cost is split
   egalitarianly among the subscribers routing through it, and every
   subscriber has a budget.  Charges are computed by two message waves
   on the tree — subscriber counts up, cumulative per-subscriber charges
   down — and a subscriber whose charge exceeds its budget drops out,
   permanently.  Dropping only shrinks the sharing pools above it, so
   the remaining charges are monotone non-decreasing; the iterated-drop
   process therefore has a unique fixed point regardless of drop order,
   which is what lets the asynchronous schedule, every pool size, and
   the centralized reference all land on bit-identical shares. *)

type msg =
  | Count of int  (* child -> parent: subscribers in my subtree *)
  | Share of float  (* parent -> child: charge for the path down to you *)

type node_state = {
  subscribed : bool;  (* still in (never true for the root) *)
  share : float;  (* down(parent): my own charge; nan until heard *)
  down : float;  (* down(v): charge relayed to my children; nan until known *)
  users : int;  (* subscribed strict descendants (my sharing pool) *)
  subtree : int;  (* users + self if subscribed *)
}

type outcome = {
  root : int;
  funded : bool array;
  shares : float array;  (* per funded subscriber; nan otherwise *)
  users : int array;
  stats : Engine.stats;
}

let make_spec g ~root ~parent ~subscriber ~budget =
  let n = Graph.n g in
  if root < 0 || root >= n then invalid_arg "Costshare_protocol: bad root";
  if Array.length parent <> n then
    invalid_arg "Costshare_protocol: parent array size mismatch";
  (* The tree is a stage-1 product every node already knows its edge of
     (its first hop); handing the spec the full parent array lets each
     node derive its children locally, so counts are only aggregated
     once complete — an undercounted pool would overcharge and cause
     spurious drops. *)
  let children = Array.make n [||] in
  let () =
    let kids = Array.make n [] in
    for v = n - 1 downto 0 do
      let p = parent.(v) in
      if v <> root && p >= 0 then begin
        if not (Graph.mem_edge g v p) then
          invalid_arg "Costshare_protocol: parent is not a neighbour";
        kids.(p) <- v :: kids.(p)
      end
    done;
    Array.iteri (fun v l -> children.(v) <- Array.of_list l) kids
  in
  (* Per-node side tables, each slot touched only by its own node's
     step: received child counts, how many children are still unheard,
     and the last subtree count sent up (-1 = never sent). *)
  let counts = Array.map (fun ch -> Array.make (Array.length ch) (-1)) children in
  let missing = Array.map Array.length children in
  let sent_subtree = Array.make n (-1) in
  let child_index v j =
    let ch = children.(v) in
    let rec go i =
      if i >= Array.length ch then -1 else if ch.(i) = j then i else go (i + 1)
    in
    go 0
  in
  let reachable v = v = root || parent.(v) >= 0 in
  let init v =
    let sub = v <> root && reachable v && subscriber v in
    {
      subscribed = sub;
      share = nan;
      down = nan;
      users = 0;
      subtree = (if sub then 1 else 0);
    }
  in
  let step ~node:v ~round:_ ~event:_ ~inbox ~outbox st =
    if not (reachable v) then st
    else begin
      let st = ref st in
      Engine.inbox_iter inbox (fun j m ->
          match m with
          | Count k ->
            let i = child_index v j in
            if i >= 0 then begin
              if counts.(v).(i) < 0 then missing.(v) <- missing.(v) - 1;
              counts.(v).(i) <- k
            end
          | Share d ->
            if not (Float.equal d !st.share) then st := { !st with share = d });
      (* Permanent drop: charges only rise as subscribers leave, so an
         over-budget subscriber can never become affordable again. *)
      if
        !st.subscribed
        && (not (Float.is_nan !st.share))
        && !st.share > budget v
      then st := { !st with subscribed = false };
      if missing.(v) = 0 then begin
        let u = Array.fold_left ( + ) 0 counts.(v) in
        let t = u + if !st.subscribed then 1 else 0 in
        st := { !st with users = u; subtree = t };
        if v <> root && sent_subtree.(v) <> t then begin
          sent_subtree.(v) <- t;
          Engine.direct outbox ~target:parent.(v) (Count t)
        end;
        if v = root || not (Float.is_nan !st.share) then begin
          (* down(v) = down(parent) + c_v / users(v): the expression the
             centralized reference reproduces verbatim for bit-identical
             shares.  No subscribed descendants -> nothing to share. *)
          let d =
            if v = root then 0.0
            else if u > 0 then !st.share +. (Graph.cost g v /. float_of_int u)
            else nan
          in
          if not (Float.equal d !st.down) then begin
            st := { !st with down = d };
            if not (Float.is_nan d) then
              Array.iteri
                (fun i c ->
                  if c > 0 then
                    Engine.direct outbox ~target:children.(v).(i) (Share d))
                counts.(v)
          end
        end
      end;
      !st
    end
  in
  { Engine.init; step }

let finalize ~root states stats =
  let n = Array.length states in
  {
    root;
    funded = Array.map (fun s -> s.subscribed) states;
    shares =
      Array.init n (fun v ->
          if states.(v).subscribed then states.(v).share else nan);
    users = Array.map (fun (s : node_state) -> s.users) states;
    stats;
  }

let tree_parents g ~root =
  let tree = Dijkstra.node_weighted g ~source:root in
  Array.init (Graph.n g) (fun v ->
      if v = root || not (Dijkstra.reachable tree v) then -1
      else tree.Dijkstra.parent.(v))

let run ?max_rounds ?pool ?parents ~subscriber ~budget g ~root =
  let parent =
    match parents with Some p -> p | None -> tree_parents g ~root
  in
  let spec = make_spec g ~root ~parent ~subscriber ~budget in
  let states, stats = Engine.run ?max_rounds ?pool g spec in
  finalize ~root states stats

let run_async ?max_events ?parents ~rng ~subscriber ~budget g ~root =
  let parent =
    match parents with Some p -> p | None -> tree_parents g ~root
  in
  let spec = make_spec g ~root ~parent ~subscriber ~budget in
  let states, astats = Async_engine.run ?max_events ~rng g spec in
  let stats =
    {
      Engine.rounds = 0;
      broadcasts = 0;
      directs = astats.Async_engine.deliveries;
      deliveries = astats.Async_engine.deliveries;
      converged = astats.Async_engine.converged;
      tasks_executed = 0;
      tasks_stolen = 0;
    }
  in
  finalize ~root states stats

(* The centralized iterated-drop reference: recompute pools and charges
   from scratch, drop every over-budget subscriber, repeat to the fixed
   point.  The charge expression mirrors the distributed one operation
   for operation, so (drop order being irrelevant) the results are
   Float.equal-identical. *)
let centralized g ~root ~parent ~subscriber ~budget =
  let n = Graph.n g in
  let reachable v = v = root || parent.(v) >= 0 in
  let children = Array.make n [] in
  for v = n - 1 downto 0 do
    if v <> root && parent.(v) >= 0 then children.(parent.(v)) <- v :: children.(parent.(v))
  done;
  (* root-first order along parent pointers (iterative: the tree can be
     deep on large instances) — any parents-before-children order does *)
  let order = Array.make n (-1) in
  let len = ref 0 in
  let stack = ref [ root ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | v :: rest ->
      stack := List.rev_append children.(v) rest;
      order.(!len) <- v;
      incr len
  done;
  let funded =
    Array.init n (fun v -> v <> root && reachable v && subscriber v)
  in
  let users = Array.make n 0 in
  let shares = Array.make n nan in
  let down = Array.make n nan in
  let changed = ref true in
  while !changed do
    changed := false;
    (* subscriber counts, leaves up *)
    let subtree = Array.make n 0 in
    for i = !len - 1 downto 0 do
      let v = order.(i) in
      let u = List.fold_left (fun acc c -> acc + subtree.(c)) 0 children.(v) in
      users.(v) <- u;
      subtree.(v) <- u + if funded.(v) then 1 else 0
    done;
    (* charges, root down, with the distributed expression verbatim *)
    Array.fill down 0 n nan;
    Array.fill shares 0 n nan;
    down.(root) <- 0.0;
    for i = 1 to !len - 1 do
      let v = order.(i) in
      shares.(v) <- down.(parent.(v));
      if users.(v) > 0 then
        down.(v) <- shares.(v) +. (Graph.cost g v /. float_of_int users.(v))
    done;
    for v = 0 to n - 1 do
      if funded.(v) && shares.(v) > budget v then begin
        funded.(v) <- false;
        changed := true
      end
    done
  done;
  let shares =
    Array.init n (fun v -> if funded.(v) then shares.(v) else nan)
  in
  (funded, shares, users)

let matches_centralized o g ~parent ~subscriber ~budget =
  let funded, shares, users =
    centralized g ~root:o.root ~parent ~subscriber ~budget
  in
  funded = o.funded
  && users = o.users
  && Array.for_all2 Float.equal shares o.shares
