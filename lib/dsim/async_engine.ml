type stats = {
  deliveries : int;
  steps : int;
  virtual_time : float;
  converged : bool;
}

type 'msg event = { target : int; sender : int; payload : 'msg }

let run ?max_events ?(min_delay = 0.5) ?(max_delay = 1.5) ~rng g
    (spec : ('state, 'msg) Engine.spec) =
  if not (0.0 < min_delay && min_delay <= max_delay) then
    invalid_arg "Async_engine.run: need 0 < min_delay <= max_delay";
  let n = Wnet_graph.Graph.n g in
  let max_events = Option.value max_events ~default:(50_000 * max n 1) in
  let states = Array.init n spec.Engine.init in
  let queue : 'msg event Wnet_graph.Binheap.t = Wnet_graph.Binheap.create () in
  let deliveries = ref 0 and steps = ref 0 and now = ref 0.0 in
  let delay () = Wnet_prng.Rng.float_range rng min_delay max_delay in
  (* One reusable outbox: the stepping node and the send time are
     whatever [sender]/[now] hold when the step runs. *)
  let sender = ref (-1) in
  (* Channels are reliable FIFO: two messages on the same directed edge
     are never reordered.  Independent random delays alone would violate
     that (a later, shorter-delayed message could overtake an earlier
     one), which breaks every last-write-wins protocol — so each send is
     clamped to strictly after the channel's previous delivery time.
     [Float.succ] keeps the perturbation below any delay granularity,
     and the heap breaks exact ties arbitrarily only across distinct
     channels, where order is unconstrained anyway. *)
  let channel_last : (int, float) Hashtbl.t = Hashtbl.create 64 in
  let schedule target payload =
    let key = (!sender * n) + target in
    let t = !now +. delay () in
    let t =
      match Hashtbl.find_opt channel_last key with
      | Some prev when t <= prev -> Float.succ prev
      | _ -> t
    in
    Hashtbl.replace channel_last key t;
    Wnet_graph.Binheap.push queue t { target; sender = !sender; payload }
  in
  let outbox =
    Engine.make_outbox
      ~on_broadcast:(fun payload ->
        Array.iter
          (fun target -> schedule target payload)
          (Wnet_graph.Graph.neighbors g !sender))
      ~on_direct:(fun target payload ->
        if not (Wnet_graph.Graph.mem_edge g !sender target) then
          invalid_arg "Async_engine: direct message to a non-neighbour";
        schedule target payload)
  in
  (* One reusable single-message inbox view; its payload cell is
     allocated at the first delivery (polymorphic arrays need a seed). *)
  let ib = Engine.make_inbox () in
  let one_sender = [| -1 |] in
  let one_payload = ref [||] in
  (* Time 0: everyone fires once with an empty inbox, as in the
     synchronous engine's round 0. *)
  for v = 0 to n - 1 do
    incr steps;
    sender := v;
    Engine.fill_inbox ib ~senders:one_sender ~payloads:!one_payload ~off:0
      ~cnt:0;
    states.(v) <-
      spec.Engine.step ~node:v ~round:0 ~event:(-1) ~inbox:ib ~outbox
        states.(v)
  done;
  let events = ref 0 in
  let exception Capped in
  (try
     let rec loop () =
       match Wnet_graph.Binheap.pop_min queue with
       | None -> ()
       | Some (time, ev) ->
         incr events;
         if !events > max_events then raise Capped;
         now := time;
         incr deliveries;
         incr steps;
         if Array.length !one_payload = 0 then
           one_payload := Array.make 1 ev.payload
         else !one_payload.(0) <- ev.payload;
         one_sender.(0) <- ev.sender;
         Engine.fill_inbox ib ~senders:one_sender ~payloads:!one_payload
           ~off:0 ~cnt:1;
         sender := ev.target;
         (* [round] carries only the seed/steady-state distinction (0 /
            1) — there are no global rounds here; the delivery-event
            index goes in [event], 0-based. *)
         states.(ev.target) <-
           spec.Engine.step ~node:ev.target ~round:1
             ~event:(!events - 1)
             ~inbox:ib ~outbox states.(ev.target);
         loop ()
     in
     loop ()
   with Capped -> ());
  ( states,
    {
      deliveries = !deliveries;
      steps = !steps;
      virtual_time = !now;
      converged = Wnet_graph.Binheap.is_empty queue;
    } )
