open Wnet_graph

type behaviour =
  | Honest
  | Hide_neighbours of int list
  | Inflate_distance of float

type node_state = {
  dist : float;
  first_hop : int;
  corrections : int;
  advertised : float;
}

type result = {
  states : node_state array;
  stats : Engine.stats;
}

type msg =
  | Advert of { dist : float; first_hop : int; cost : float }
  | Correct of { dist : float; first_hop : int }

let eps = 1e-9

let make_spec ~behaviours ~verified g ~root =
  let n = Graph.n g in
  if root < 0 || root >= n then invalid_arg "Spt_protocol.run: bad root";
  let hidden v =
    match behaviours v with
    | Hide_neighbours l -> l
    | Honest | Inflate_distance _ -> []
  in
  (* A caught liar stops inflating: Algorithm 2's premise is that the
     direct channel makes cheating attributable and punishable, so one
     forced correction is deterrent enough. *)
  let inflation v (st : node_state) =
    match behaviours v with
    | Inflate_distance d when st.corrections = 0 -> d
    | Inflate_distance _ | Honest | Hide_neighbours _ -> 0.0
  in
  let init v =
    if v = root then
      { dist = 0.0; first_hop = -1; corrections = 0; advertised = 0.0 }
    else { dist = infinity; first_hop = -1; corrections = 0; advertised = infinity }
  in
  (* What [v] would offer a neighbour as a route: D(v) + c_v, or 0 when
     [v] is the root (the first relay charges its own cost; the root
     charges nothing). *)
  let offer v (st : node_state) =
    if v = root then 0.0 else st.dist +. Graph.cost g v
  in
  (* Remembered latest advertisements, for the Algorithm 2 consistency
     check: a neighbour's stale distance must be re-examined whenever our
     own offer improves, not only at arrival time.  Entries are dropped
     once corrected so each advert is corrected at most once.  (Slot [v]
     is only ever touched by [v]'s own step, so the side table stays
     safe under the engine's parallel fan-out.) *)
  let heard = Array.init n (fun _ -> Hashtbl.create 8) in
  let step ~node:v ~round ~event:_ ~inbox ~outbox st =
    let st = ref st in
    let changed = ref false in
    let apply_route d fh =
      if v <> root && d < !st.dist -. eps then begin
        st := { !st with dist = d; first_hop = fh };
        changed := true
      end
    in
    Engine.inbox_iter inbox (fun j m ->
        match m with
        | Correct { dist; first_hop } ->
          (* The sender proved it can offer [dist].  Being corrected below
             one's own advert is being caught; comply and re-advertise. *)
          if dist < !st.advertised -. eps then begin
            st := { !st with corrections = !st.corrections + 1 };
            changed := true
          end;
          apply_route dist first_hop
        | Advert { dist = dj; first_hop = fhj; cost = cj } ->
          if not (List.mem j (hidden v)) then begin
            let via = if j = root then 0.0 else dj +. cj in
            apply_route via j;
            if verified then Hashtbl.replace heard.(v) j (dj, fhj)
          end);
    if verified then begin
      let o = offer v !st +. inflation v !st in
      let to_correct =
        Hashtbl.fold
          (fun j (dj, fhj) acc ->
            if (fhj = v && Float.abs (dj -. o) > eps) || o < dj -. eps then
              j :: acc
            else acc)
          heard.(v) []
      in
      List.iter
        (fun j ->
          Hashtbl.remove heard.(v) j;
          Engine.direct outbox ~target:j (Correct { dist = o; first_hop = v }))
        to_correct
    end;
    if v <> root && (round = 0 || !changed) then begin
      let adv = !st.dist +. inflation v !st in
      st := { !st with advertised = adv };
      Engine.broadcast outbox
        (Advert { dist = adv; first_hop = !st.first_hop; cost = Graph.cost g v })
    end
    else if v = root && round = 0 then
      Engine.broadcast outbox
        (Advert { dist = 0.0; first_hop = -1; cost = Graph.cost g v });
    !st
  in
  { Engine.init; step }

let run ?(behaviours = fun _ -> Honest) ?(verified = false) ?max_rounds ?pool g
    ~root =
  let spec = make_spec ~behaviours ~verified g ~root in
  let states, stats = Engine.run ?max_rounds ?pool g spec in
  { states; stats }

let run_async ?(behaviours = fun _ -> Honest) ?(verified = false) ?max_events ~rng
    g ~root =
  let spec = make_spec ~behaviours ~verified g ~root in
  let states, stats = Async_engine.run ?max_events ~rng g spec in
  (states, stats)

let distances r = Array.map (fun s -> s.dist) r.states

let first_hops r = Array.map (fun s -> s.first_hop) r.states

let path_of r v ~root =
  let n = Array.length r.states in
  let rec go u acc steps =
    if steps > n then None
    else if u = root then Some (Array.of_list (List.rev (root :: acc)))
    else begin
      let fh = r.states.(u).first_hop in
      if fh < 0 then None else go fh (u :: acc) (steps + 1)
    end
  in
  go v [] 0

let matches_centralized r g ~root =
  let tree = Wnet_graph.Dijkstra.node_weighted g ~source:root in
  let ok = ref true in
  Array.iteri
    (fun v (s : node_state) ->
      let d = Wnet_graph.Dijkstra.dist tree v in
      let close =
        (d = infinity && s.dist = infinity)
        || Float.abs (d -. s.dist) <= 1e-9 *. (1.0 +. Float.abs d)
      in
      if not close then ok := false)
    r.states;
  !ok
