(** Distributed shortest-path-tree construction (Sec. III-C stage 1 and
    Algorithm 2 stage 1).

    Every node maintains the pair [(D(v), FH(v))] — its believed relay
    cost to the access point and the corresponding first hop — and
    gossips it to its neighbours; this is distance-vector (Bellman–Ford)
    relaxation, converging to the true node-weighted SPT on honest
    inputs.

    The protocol can be run with {e misbehaving} nodes:
    - {!Hide_neighbours}: the node pretends some incident links do not
      exist (the Fig. 2 manipulation — the least cost path is not the
      path you pay the least for);
    - {!Inflate_distance}: the node advertises [D + delta] to make
      itself unattractive as a relay.

    In [~verified:true] mode the protocol follows Algorithm 2: a node
    receiving an advertisement it can improve — or an advertisement that
    names it as first hop with an inconsistent distance — contacts the
    sender over the direct channel and forces a correction.  Because the
    channel is reliable and refusal is attributable, a corrected node
    complies; the paper's claim (and this module's test) is that the
    verified protocol reaches the true SPT despite the adversaries. *)

type behaviour =
  | Honest
  | Hide_neighbours of int list
  | Inflate_distance of float

type node_state = {
  dist : float;  (** believed [D(v)]; 0 when adjacent to the root *)
  first_hop : int;  (** believed [FH(v)]; -1 when unknown *)
  corrections : int;
      (** number of forced corrections received: a neighbour proved this
          node's {e advertised} distance improvable or inconsistent.
          Honest nodes can receive a few during bootstrap; a node that
          inflates its advertisement is necessarily corrected and (in
          this model) deterred after the first one. *)
  advertised : float;  (** the [D] value this node last broadcast *)
}

type result = {
  states : node_state array;
  stats : Engine.stats;
}

val run :
  ?behaviours:(int -> behaviour) ->
  ?verified:bool ->
  ?max_rounds:int ->
  ?pool:Wnet_par.t ->
  Wnet_graph.Graph.t ->
  root:int ->
  result
(** Declared costs are those carried by the graph.
    @raise Invalid_argument if [root] is out of range. *)

val run_async :
  ?behaviours:(int -> behaviour) ->
  ?verified:bool ->
  ?max_events:int ->
  rng:Wnet_prng.Rng.t ->
  Wnet_graph.Graph.t ->
  root:int ->
  node_state array * Async_engine.stats
(** Same protocol under the asynchronous engine (random per-message
    delays): the distance-vector relaxation is self-stabilizing, so the
    converged states must match {!run}'s — the property the tests
    check. *)

val distances : result -> float array

val first_hops : result -> int array

val path_of : result -> int -> root:int -> Wnet_graph.Path.t option
(** Follows first hops from a node to the root; [None] if the chain is
    broken or loops (possible only under unverified misbehaviour). *)

val matches_centralized : result -> Wnet_graph.Graph.t -> root:int -> bool
(** Do the converged distances equal the centralized node-weighted
    Dijkstra distances to [root] (within 1e-9 relative tolerance)? *)
