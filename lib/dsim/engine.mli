(** Synchronous message-passing engine over flat mailbox arenas.

    The distributed algorithms of Sec. III-C/D are round-based neighbour
    gossip: in every round each node consumes the messages delivered at
    the end of the previous round and emits new ones.  This engine runs
    such protocols over a {!Wnet_graph.Graph.t} topology and accounts for
    rounds and message volume, which is how we check the paper's
    "converges after at most [n] rounds" claim.

    The engine is event-driven: a node is stepped only when its inbox is
    non-empty (round 0 steps everyone once, with an empty inbox, so
    protocols can send their initial broadcasts).  Execution stops when
    no messages are in flight, or when [max_rounds] is hit.

    {b Storage.}  Inboxes are not per-node lists but two flat {e mailbox
    arenas} (a sender array and a payload array, plus per-node
    offset/count), double-buffered across rounds: one arena holds the
    frozen inboxes of the current round while the other collects next
    round's deliveries.  Steady-state execution allocates nothing on the
    minor heap beyond what the protocol's own messages and states need —
    views, output buffers and arenas are all reused.

    {b Parallelism.}  When given a pool, the node steps of each round
    fan out as {!Wnet_par} stolen tasks.  Each task reads the frozen
    round-start arena and writes only node-indexed slots (its state and
    its output buffer), and the delivery pass then lands every message
    sequentially in canonical [(sender, seq)] order — ascending sender,
    emission order within a sender.  Results are therefore bit-for-bit
    identical at every pool size, including 1. *)

type 'msg inbox
(** A read-only view of one node's messages for the current step: a
    window into the round's frozen mailbox arena.  Valid only for the
    duration of the [step] call it is passed to — do not stash it. *)

val inbox_length : 'msg inbox -> int
val inbox_is_empty : 'msg inbox -> bool

val inbox_sender : 'msg inbox -> int -> int
(** [inbox_sender ib i] is the sender of the [i]-th message, in
    canonical delivery order: ascending sender id, each sender's
    messages in emission order.
    @raise Invalid_argument if [i] is out of bounds. *)

val inbox_payload : 'msg inbox -> int -> 'msg
(** @raise Invalid_argument if [i] is out of bounds. *)

val inbox_iter : 'msg inbox -> (int -> 'msg -> unit) -> unit
(** [inbox_iter ib f] calls [f sender payload] on every message, in
    canonical delivery order. *)

type 'msg outbox
(** Where a step deposits its emissions.  Like the inbox view, valid
    only for the duration of the [step] call. *)

val broadcast : 'msg outbox -> 'msg -> unit
(** Deliver to every neighbour next round. *)

val direct : 'msg outbox -> target:int -> 'msg -> unit
(** Deliver to one specific neighbour — the "contact directly using a
    reliable and secure connection" channel of Algorithm 2.
    @raise Invalid_argument if the target is not a neighbour. *)

type ('state, 'msg) spec = {
  init : int -> 'state;
  step :
    node:int ->
    round:int ->
    event:int ->
    inbox:'msg inbox ->
    outbox:'msg outbox ->
    'state ->
    'state;
      (** [round] is the synchronous round number ([0] = the seeding
          step with an empty inbox).  Under {!Async_engine} there are no
          global rounds: [round] is [0] for the seed steps and [1] for
          every delivery, and [event] carries the global delivery-event
          index instead.  This engine always passes [event = -1].
          The step function may be run from any pool domain; it must
          touch only state owned by [node] (node-indexed slots of side
          tables are fine, shared accumulators are not). *)
}

type stats = {
  rounds : int;  (** number of rounds in which at least one node stepped *)
  broadcasts : int;  (** broadcast messages sent (each reaches [degree] nodes) *)
  directs : int;
  deliveries : int;  (** point-to-point deliveries, all channels *)
  converged : bool;  (** stopped because the network went quiet *)
  tasks_executed : int;  (** scheduler tasks run on behalf of this execution *)
  tasks_stolen : int;  (** subset executed by a non-queueing participant *)
}

val run :
  ?max_rounds:int ->
  ?pool:Wnet_par.t ->
  Wnet_graph.Graph.t ->
  ('state, 'msg) spec ->
  'state array * stats
(** [run g spec] executes until quiescence (default [max_rounds] =
    [4 * n + 16]).  [pool] (default {!Wnet_par.sequential}) fans the
    node steps of each round out as stolen tasks; every pool size
    produces bit-identical states and stats. *)

(** {2 Engine-implementor interface}

    Used by {!Async_engine} to feed the same protocol specs from an
    event queue.  Protocol code has no business here. *)

val make_inbox : unit -> 'msg inbox
(** A fresh, empty, refillable view. *)

val fill_inbox :
  'msg inbox ->
  senders:int array ->
  payloads:'msg array ->
  off:int ->
  cnt:int ->
  unit
(** Point the view at [cnt] messages starting at [off] of the given
    backing arrays. *)

val make_outbox :
  on_broadcast:('msg -> unit) -> on_direct:(int -> 'msg -> unit) -> 'msg outbox
(** An outbox that forwards {!broadcast} and {!direct} to the given
    hooks; {!direct}'s neighbour check is the hooks' responsibility. *)
