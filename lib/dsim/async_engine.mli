(** Asynchronous execution of the same protocol specs as {!Engine}.

    The synchronous engine delivers every message exactly one round after
    it is sent; real wireless networks do not.  This engine runs the same
    [('state, 'msg) Engine.spec] under an event-queue semantics: every
    message is delivered at [send_time + delay] with an independent
    random delay in [\[min_delay, max_delay)], and a node steps once per
    {e delivery} (inbox of size 1, in timestamp order with deterministic
    tie-breaking).  Channels are reliable {e FIFO}: two messages sent on
    the same directed edge are delivered in send order (each send is
    clamped to strictly after the channel's previous delivery time), the
    standard asynchronous message-passing model — last-write-wins
    protocols like {!Costshare_protocol}'s subtree counts depend on it.

    There are no global rounds here, so the spec's [round] argument
    carries only the seed/steady-state distinction: [0] for the time-0
    seeding steps (empty inbox), [1] for every delivery.  What a
    delivery step {e does} get is the global 0-based delivery-event
    index, in its [event] argument ([-1] during seeding) — protocols
    that want a notion of progress under async schedules must read
    [event], never [round].

    Distance-vector protocols like the paper's Sec. III-C stages are
    self-stabilizing: they must converge to the same fixed point under
    any fair schedule.  The tests run {!Spt_protocol} and
    {!Payment_protocol} logic through this engine and check exactly
    that — which is the property that makes the distributed mechanism
    deployable without a round synchronizer. *)

type stats = {
  deliveries : int;
  steps : int;  (** node activations *)
  virtual_time : float;  (** timestamp of the last delivery *)
  converged : bool;  (** event queue drained before the event cap *)
}

val run :
  ?max_events:int ->
  ?min_delay:float ->
  ?max_delay:float ->
  rng:Wnet_prng.Rng.t ->
  Wnet_graph.Graph.t ->
  ('state, 'msg) Engine.spec ->
  'state array * stats
(** [run ~rng g spec] seeds the execution by stepping every node once at
    time 0 with an empty inbox (matching the synchronous engine's round
    0), then processes deliveries until quiescence.  Defaults:
    [max_events] = [50_000 * n], delays uniform in [\[0.5, 1.5)].
    @raise Invalid_argument if delays are not [0 < min <= max]. *)
