type node_state = {
  known : float array;
  complete : bool;
}

type msg = { origin : int; cost : float }

let run ?declared ?max_rounds ?pool g =
  let n = Wnet_graph.Graph.n g in
  let declared =
    match declared with
    | Some f -> f
    | None -> fun v -> Wnet_graph.Graph.cost g v
  in
  let init v =
    let known = Array.make n nan in
    known.(v) <- declared v;
    { known; complete = n <= 1 }
  in
  (* Live count of still-unheard origins per node: completeness is a
     zero check instead of an O(n) rescan of [known] every step.  Only
     slot [v] is touched by [v]'s step, so the side array is safe under
     the engine's parallel fan-out. *)
  let missing = Array.make n (n - 1) in
  let step ~node:v ~round ~event:_ ~inbox ~outbox st =
    if round = 0 then
      Engine.broadcast outbox { origin = v; cost = declared v }
    else
      Engine.inbox_iter inbox (fun _ m ->
          if Float.is_nan st.known.(m.origin) then begin
            st.known.(m.origin) <- m.cost;
            missing.(v) <- missing.(v) - 1;
            Engine.broadcast outbox m
          end);
    { st with complete = missing.(v) = 0 }
  in
  Engine.run ?max_rounds ?pool g { Engine.init; step }

let consensus_profile states =
  match Array.length states with
  | 0 -> Some [||]
  | _ ->
    if not (Array.for_all (fun s -> s.complete) states) then None
    else begin
      let reference = states.(0).known in
      let agree =
        Array.for_all
          (fun s -> Array.for_all2 (fun a b -> a = b) s.known reference)
          states
      in
      if agree then Some (Array.copy reference) else None
    end
