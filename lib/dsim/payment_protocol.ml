open Wnet_graph

type adversary = Honest | Deflate_entries of float

type entry = { value : float; trigger : int }

type entry_snap = { relay : int; snap_value : float; snap_trigger : int }

type node_state = {
  table : (int, entry) Hashtbl.t;  (* relay -> current entry *)
  mutable accusations : (int * int) list;  (* (accuser = self, accused) *)
}

type msg = {
  d : float;  (* sender's D(j) *)
  c : float;  (* sender's declared cost *)
  entries : entry_snap array;  (* the sender's table at broadcast time *)
}

type outcome = {
  root : int;
  payments : (int * float) list array;
  accusations : (int * int) list;
  stats : Engine.stats;
}

let eps = 1e-9

let find_snap entries k =
  let rec go i =
    if i >= Array.length entries then None
    else if entries.(i).relay = k then Some entries.(i).snap_value
    else go (i + 1)
  in
  go 0

let make_spec ~adversaries ~verify ~dist_to_root ~relays_of g ~root =
  let n = Graph.n g in
  if root < 0 || root >= n then invalid_arg "Payment_protocol.run: bad root";
  let deflate v x =
    match adversaries v with
    | Honest -> x
    | Deflate_entries f -> if Float.is_finite x then x *. f else x
  in
  let snapshot v (st : node_state) =
    let entries = Array.make (Hashtbl.length st.table) { relay = -1; snap_value = nan; snap_trigger = -1 } in
    let i = ref 0 in
    Hashtbl.iter
      (fun k e ->
        entries.(!i) <-
          { relay = k; snap_value = deflate v e.value; snap_trigger = e.trigger };
        incr i)
      st.table;
    { d = dist_to_root.(v); c = Graph.cost g v; entries }
  in
  (* Last broadcast of every node, for the verification cross-check.
     Slot [v] is only read and written by [v]'s own step, so the side
     array stays safe under the engine's parallel fan-out. *)
  let last_broadcast = Array.make n None in
  let broadcast v st outbox =
    let m = snapshot v st in
    last_broadcast.(v) <- Some m;
    Engine.broadcast outbox m
  in
  let init v =
    let table = Hashtbl.create 8 in
    Array.iter
      (fun k -> Hashtbl.replace table k { value = infinity; trigger = -1 })
      relays_of.(v);
    { table; accusations = [] }
  in
  let step ~node:v ~round ~event:_ ~inbox ~outbox st =
    if v = root || dist_to_root.(v) = infinity then begin
      if round = 0 then broadcast v st outbox;
      st
    end
    else begin
      let d_v = dist_to_root.(v) in
      let changed = ref false in
      Engine.inbox_iter inbox (fun j (m : msg) ->
          (* Relaxation: route for v that detours through neighbour j. *)
          let delta = m.c +. m.d -. d_v in
          Hashtbl.iter
            (fun k e ->
              if k <> j then begin
                let cand =
                  match find_snap m.entries k with
                  | Some p -> p +. delta
                  | None -> Graph.cost g k +. delta
                in
                if cand < e.value -. eps then begin
                  Hashtbl.replace st.table k { value = cand; trigger = j };
                  changed := true
                end
              end)
            st.table;
          (* Algorithm 2 stage 2: verify the entries my own broadcast
             triggered.  Monotonicity makes over-reporting explainable by
             staleness, so only under-reporting is accusable — which is
             exactly the direction a payer wants to cheat in. *)
          if verify then
            match last_broadcast.(v) with
            | None -> ()
            | Some mine ->
              let my_delta = mine.c +. mine.d -. m.d in
              Array.iter
                (fun { relay = k; snap_value = value; snap_trigger = trigger } ->
                  if trigger = v && k <> v then begin
                    let from_mine =
                      match find_snap mine.entries k with
                      | Some p -> p +. my_delta
                      | None -> Graph.cost g k +. my_delta
                    in
                    if value < from_mine -. (1e-6 *. (1.0 +. Float.abs from_mine))
                    then st.accusations <- (v, j) :: st.accusations
                  end)
                m.entries)
        ;
      if round = 0 || !changed then broadcast v st outbox;
      st
    end
  in
  let finalize states =
    let payments =
      Array.mapi
        (fun v (st : node_state) ->
          Hashtbl.fold (fun k e acc -> (k, deflate v e.value) :: acc) st.table []
          |> List.sort compare)
        states
    in
    let accusations =
      Array.to_list states
      |> List.concat_map (fun (st : node_state) -> st.accusations)
      |> List.sort_uniq compare
    in
    (payments, accusations)
  in
  ({ Engine.init; step }, finalize)

(* Stage-1 products from the centralized tree (the default, matching the
   paper's presentation where stage 1 is assumed done). *)
let centralized_stage1 g ~root =
  let n = Graph.n g in
  let tree = Dijkstra.node_weighted g ~source:root in
  let relays_of =
    Array.init n (fun i ->
        if i = root || not (Dijkstra.reachable tree i) then [||]
        else
          match Dijkstra.path_to tree i with
          | None -> [||]
          | Some path_from_root -> Path.relays path_from_root)
  in
  (tree.Dijkstra.dist, relays_of)

(* Stage-1 products from a converged distributed SPT run: follow first
   hops to the root to recover each node's relay list. *)
let stage1_of_spt (states : Spt_protocol.node_state array) ~root =
  let n = Array.length states in
  let dist_to_root = Array.map (fun s -> s.Spt_protocol.dist) states in
  let relays_of =
    Array.init n (fun i ->
        if i = root || dist_to_root.(i) = infinity then [||]
        else begin
          let rec chain v acc steps =
            if steps > n then None
            else if v = root then Some (List.rev acc)
            else begin
              let fh = states.(v).Spt_protocol.first_hop in
              if fh < 0 then None
              else chain fh (if v = i then acc else v :: acc) (steps + 1)
            end
          in
          match chain i [] 0 with
          | Some relays -> Array.of_list relays
          | None -> [||]
        end)
  in
  (dist_to_root, relays_of)

let run ?(adversaries = fun _ -> Honest) ?(verify = false) ?max_rounds ?pool g
    ~root =
  let dist_to_root, relays_of = centralized_stage1 g ~root in
  let spec, finalize =
    make_spec ~adversaries ~verify ~dist_to_root ~relays_of g ~root
  in
  let states, stats = Engine.run ?max_rounds ?pool g spec in
  let payments, accusations = finalize states in
  { root; payments; accusations; stats }

let run_async ?(adversaries = fun _ -> Honest) ?(verify = false) ?max_events ~rng
    g ~root =
  let dist_to_root, relays_of = centralized_stage1 g ~root in
  let spec, finalize =
    make_spec ~adversaries ~verify ~dist_to_root ~relays_of g ~root
  in
  let states, stats = Async_engine.run ?max_events ~rng g spec in
  let payments, accusations = finalize states in
  ((payments, accusations), stats)

let run_full ?(verify = false) ?max_rounds ?pool g ~root =
  (* Declaration flood first (its consensus is what "declared costs"
     means operationally), then the distributed SPT, then the payment
     relaxation seeded by the SPT's own outputs: no centralized step. *)
  let decl_states, decl_stats = Declaration.run ?max_rounds ?pool g in
  ignore (Declaration.consensus_profile decl_states);
  let spt = Spt_protocol.run ~verified:verify ?max_rounds ?pool g ~root in
  let dist_to_root, relays_of = stage1_of_spt spt.Spt_protocol.states ~root in
  let spec, finalize =
    make_spec ~adversaries:(fun _ -> Honest) ~verify ~dist_to_root ~relays_of g
      ~root
  in
  let states, stats = Engine.run ?max_rounds ?pool g spec in
  let payments, accusations = finalize states in
  let total_stats =
    {
      Engine.rounds =
        decl_stats.Engine.rounds
        + spt.Spt_protocol.stats.Engine.rounds
        + stats.Engine.rounds;
      broadcasts =
        decl_stats.Engine.broadcasts
        + spt.Spt_protocol.stats.Engine.broadcasts
        + stats.Engine.broadcasts;
      directs =
        decl_stats.Engine.directs
        + spt.Spt_protocol.stats.Engine.directs
        + stats.Engine.directs;
      deliveries =
        decl_stats.Engine.deliveries
        + spt.Spt_protocol.stats.Engine.deliveries
        + stats.Engine.deliveries;
      converged =
        decl_stats.Engine.converged
        && spt.Spt_protocol.stats.Engine.converged
        && stats.Engine.converged;
      tasks_executed =
        decl_stats.Engine.tasks_executed
        + spt.Spt_protocol.stats.Engine.tasks_executed
        + stats.Engine.tasks_executed;
      tasks_stolen =
        decl_stats.Engine.tasks_stolen
        + spt.Spt_protocol.stats.Engine.tasks_stolen
        + stats.Engine.tasks_stolen;
    }
  in
  { root; payments; accusations; stats = total_stats }

let centralized_reference g ~root =
  let n = Graph.n g in
  Array.init n (fun i ->
      if i = root then []
      else
        match Wnet_core.Unicast.run g ~src:i ~dst:root with
        | None -> []
        | Some r ->
          Wnet_core.Unicast.relays r
          |> List.map (fun k -> (k, Wnet_core.Unicast.payment_to r k))
          |> List.sort compare)

let agrees_with_centralized o g =
  let reference = centralized_reference g ~root:o.root in
  let close a b =
    (a = infinity && b = infinity)
    || Float.abs (a -. b) <= 1e-6 *. (1.0 +. Float.abs a)
  in
  let ok = ref true in
  Array.iteri
    (fun i expected ->
      let got = o.payments.(i) in
      if List.length got <> List.length expected then ok := false
      else
        List.iter2
          (fun (k1, p1) (k2, p2) ->
            if k1 <> k2 || not (close p1 p2) then ok := false)
          got expected)
    reference;
  !ok
