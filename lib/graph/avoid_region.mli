(** Subtree-bounded avoidance distances for batch payments.

    The payment batch needs, for each relay [k], the distances of a
    source Dijkstra with [k] forbidden.  Silencing [k] only changes
    labels inside [k]'s subtree of the shared shortest-path tree; every
    exterior node keeps a label bit-identical to its tree distance.  So
    instead of a full-graph run per relay, these kernels copy the tree
    distances, mark subtree([k]) minus [k] as the affected region, and
    run {!Dynamic_sssp}'s wipe / boundary-reseed / bounded-settle
    discipline over just that region.

    The result is {e unconditionally} [Float.equal]-identical to the
    from-scratch forbidden run — no tie detection needed, because every
    region label is a minimum over the same float candidate sums either
    way.  The only fallback trigger is the region-size budget.

    Allocation-free after scratch/index construction: safe inside the
    work-stealing fan-out with per-participant scratches. *)

type index
(** First-child / next-sibling lists over a {!Dijkstra.tree}, for O(1)
    child enumeration during subtree marking.  Valid only for the tree
    it was built from; rebuild after the tree changes. *)

val make_index : Dijkstra.tree -> index
(** O(n) construction from the tree's parent array. *)

val index_size : index -> int
(** Number of nodes the index was built over. *)

val link_avoid :
  Dynamic_sssp.dist_scratch ->
  ?budget:int ->
  index ->
  graph:Digraph.t ->
  mirror:Digraph.t ->
  tree:Dijkstra.tree ->
  avoid:int ->
  dist:float array ->
  int
(** [link_avoid ds idx ~graph ~mirror ~tree ~avoid:k ~dist] fills
    [dist] with the distances of [Dijkstra.link_weighted_dist_csr
    ~avoid:k graph tree.source], bit for bit.  [tree] must be the
    current shortest-path tree of [graph] from its source, [mirror] the
    reverse of [graph], and [idx] built from [tree].  Returns the
    region size [>= 0] on success; returns [-1] — with [dist] left
    corrupted — when the subtree or settled region exceeded [budget]
    (default {!Dynamic_sssp.default_budget}), and the caller must fall
    back to the full-graph kernel.  The result is an immediate int (no
    variant) so the call allocates nothing.
    @raise Invalid_argument if sizes disagree, [avoid] is out of range,
    or [avoid = tree.source]. *)

val node_avoid :
  Dynamic_sssp.dist_scratch ->
  ?budget:int ->
  index ->
  graph:Graph.t ->
  tree:Dijkstra.tree ->
  avoid:int ->
  dist:float array ->
  int
(** Node-weighted analogue: matches [Dijkstra.node_weighted_dist_csr
    ~avoid:k graph tree.source] bit for bit.  Same contract. *)
