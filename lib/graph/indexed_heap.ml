(* Classic array-based binary heap augmented with a position index so that
   decrease-key is O(log n).  [pos.(k) = -1] encodes absence.  Ties on
   priority are broken by the smaller key so that heap-order (and thus
   Dijkstra parent choices downstream) is deterministic. *)

type t = {
  keys : int array;      (* heap slots: keys, in heap order *)
  prio : float array;    (* prio.(k) = priority of key k, if present *)
  pos : int array;       (* pos.(k) = slot of key k, or -1 *)
  mutable size : int;
}

let create capacity =
  if capacity < 0 then invalid_arg "Indexed_heap.create: negative capacity";
  {
    keys = Array.make (max capacity 1) 0;
    prio = Array.make (max capacity 1) 0.0;
    pos = Array.make (max capacity 1) (-1);
    size = 0;
  }

let size h = h.size

let is_empty h = h.size = 0

let mem h k = k >= 0 && k < Array.length h.pos && h.pos.(k) >= 0

let priority h k = if mem h k then h.prio.(k) else raise Not_found

let less h a b =
  (* [a], [b] are keys. *)
  h.prio.(a) < h.prio.(b) || (h.prio.(a) = h.prio.(b) && a < b)

let swap h i j =
  let ki = h.keys.(i) and kj = h.keys.(j) in
  h.keys.(i) <- kj;
  h.keys.(j) <- ki;
  h.pos.(ki) <- j;
  h.pos.(kj) <- i

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less h h.keys.(i) h.keys.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = if l < h.size && less h h.keys.(l) h.keys.(i) then l else i in
  let smallest =
    if r < h.size && less h h.keys.(r) h.keys.(smallest) then r else smallest
  in
  if smallest <> i then begin
    swap h i smallest;
    sift_down h smallest
  end

let insert h k p =
  if k < 0 || k >= Array.length h.pos then
    invalid_arg "Indexed_heap.insert: key out of range";
  if h.pos.(k) >= 0 then invalid_arg "Indexed_heap.insert: key already present";
  let i = h.size in
  h.size <- i + 1;
  h.keys.(i) <- k;
  h.prio.(k) <- p;
  h.pos.(k) <- i;
  sift_up h i

let decrease h k p =
  if not (mem h k) then invalid_arg "Indexed_heap.decrease: key absent";
  if p > h.prio.(k) then
    invalid_arg "Indexed_heap.decrease: new priority is larger";
  h.prio.(k) <- p;
  sift_up h h.pos.(k)

let insert_or_decrease h k p =
  if mem h k then begin
    if p < h.prio.(k) then decrease h k p
  end
  else insert h k p

(* Int-only hot-path entry points.  Classic (non-flambda) ocamlopt refuses
   to inline [insert]/[decrease] across modules (their bodies reference
   structured constants — the [invalid_arg] strings), so every call boxes
   the float priority argument: ~2 minor words per heap update, which is
   fatal for the zero-allocation Dijkstra kernels.  [prios] hands the
   caller the internal priority store; after writing [prios h].(k) the
   caller re-establishes heap order with the all-int [touch]. *)

let prios h = h.prio

let touch h k =
  let i = h.pos.(k) in
  if i >= 0 then sift_up h i
  else begin
    let i = h.size in
    h.size <- i + 1;
    h.keys.(i) <- k;
    h.pos.(k) <- i;
    sift_up h i
  end

let pop_min_key h =
  if h.size = 0 then raise Not_found;
  let k = h.keys.(0) in
  h.size <- h.size - 1;
  if h.size > 0 then begin
    let last = h.keys.(h.size) in
    h.keys.(0) <- last;
    h.pos.(last) <- 0;
    sift_down h 0
  end;
  h.pos.(k) <- -1;
  k

let pop_min h =
  if h.size = 0 then raise Not_found;
  let p = h.prio.(h.keys.(0)) in
  let k = pop_min_key h in
  (k, p)

let peek_min h = if h.size = 0 then None else Some (h.keys.(0), h.prio.(h.keys.(0)))
