(** Node-avoiding replacement paths for VCG payments (Algorithm 1).

    The payment to relay [v_k] on the least-cost path needs
    [||P_{-v_k}(src, dst)||] — the cost of the best path that does not use
    [v_k] — for {e every} relay on the LCP.

    Two implementations are provided:

    - {!replacement_costs_naive}: remove each relay in turn and re-run
      Dijkstra — [O(s (n log n + m))] for [s] relays, the baseline the
      paper compares against;
    - {!replacement_costs_fast}: the paper's Algorithm 1, a node-weighted
      adaptation of Hershberger–Suri, running in [O(n log n + m)] total.

    The fast algorithm classifies every node by its {e level} — the index
    of the path node at which its shortest-path-tree branch leaves the LCP
    — and finds, for each removed relay [v_{r_l}], the cheapest way to jump
    from the region that still reaches the source ([level < l]) to the
    region that still reaches the destination ([level > l]), either across
    a single edge (step 5's lazy heap) or through the pocket of nodes
    stranded at level [l] exactly (steps 3–4's per-level Dijkstra for
    [R^{-l}]).

    {b Precondition for the fast algorithm}: strictly positive node costs.
    With zero-cost nodes, ties between equal-cost shortest paths can break
    the level-monotonicity lemmas (Lemmas 1–3) the algorithm relies on;
    validation rejects such inputs. *)

type result = {
  path : Path.t;  (** the LCP [src; ...; dst] under the graph's costs *)
  lcp_cost : float;  (** its relay cost *)
  replacement : float array;
      (** [replacement.(l)], for [1 <= l <= hops-1], is
          [||P_{-path.(l)}(src, dst)||]; [infinity] when removing that
          relay disconnects [src] from [dst].  Entries [0] and [hops] are
          unused and set to [nan]. *)
}

val replacement_costs_naive : Graph.t -> src:int -> dst:int -> result option
(** [None] when [dst] is unreachable from [src].
    @raise Invalid_argument if [src = dst] or out of range. *)

val replacement_costs_fast : Graph.t -> src:int -> dst:int -> result option
(** Same contract as {!replacement_costs_naive}, via Algorithm 1.
    @raise Invalid_argument additionally when some node cost is not
    strictly positive. *)

val avoiding_cost :
  ?scratch:Dijkstra.scratch -> Graph.t -> src:int -> dst:int -> avoid:int -> float
(** One-shot [||P_{-avoid}(src, dst)||] by removal + Dijkstra;
    [infinity] when disconnected.  With [?scratch] the search runs the
    allocation-free CSR kernel through the caller's buffers, banning
    [avoid] via the scratch's {!Dijkstra.ban_mask} (set before the run,
    cleared after) — pass one when calling in a loop, as
    {!replacement_costs_naive} does.
    @raise Invalid_argument if [avoid] is [src] or [dst], or the graph
    exceeds the scratch capacity. *)

val levels : Graph.t -> tree:Dijkstra.tree -> Path.t -> int array
(** [levels g ~tree path] exposes the level labelling used by the fast
    algorithm (for tests): [tree] must be the shortest-path tree rooted at
    [Path.source path] and [path] a root path of it.  Path nodes get their
    index; a non-path node gets the index where its tree branch leaves the
    path; nodes unreachable from the source get [-1]. *)
