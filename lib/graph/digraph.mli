(** Directed graphs with per-link weights.

    This is the network model of Sec. III-F: when nodes can adjust their
    transmission power, node [i]'s private type is the {e vector} of power
    costs [c_{i,j}] it needs to reach each neighbour [j], and the routing
    graph is directed (node [i] may reach [j] while [j] cannot reach [i]
    with its own range).  The weight of link [i -> j] is [c_{i,j}]; the
    cost of a directed path is the sum of its link weights. *)

type t

val create : n:int -> links:(int * int * float) list -> t
(** [create ~n ~links] builds a digraph on [n] nodes from
    [(src, dst, weight)] triples.  Parallel links keep the cheapest weight.
    @raise Invalid_argument on out-of-range endpoints, self-loops, or
    negative/NaN weights ([infinity] is allowed and means "no link"; such
    links are dropped). *)

val n : t -> int

val m : t -> int
(** Number of directed links. *)

val out_links : t -> int -> (int * float) array
(** [out_links g u] is the (shared, do not mutate) array of
    [(target, weight)] links leaving [u], sorted by target. *)

val out_degree : t -> int -> int

val weight : t -> int -> int -> float
(** [weight g u v] is the weight of link [u -> v], or [infinity] when
    absent. *)

val links : t -> (int * int * float) list
(** All links, sorted. *)

val reverse : t -> t
(** [reverse g] flips every link — the standard trick to compute
    shortest paths from every node {e to} a fixed root (the access
    point). *)

val owner_of_link : int -> int -> int
(** [owner_of_link u v] is the agent that pays for link [u -> v] — the
    transmitter [u].  Trivial, but kept as the single point of truth for
    the "node is the agent" convention of Sec. III-F. *)

val silence_node : t -> int -> t
(** [silence_node g v] removes all links {e leaving} [v] — exactly the
    paper's [d_{k,j} = infinity for each j] operation used to compute the
    [v_k]-avoiding least cost path.  Links entering [v] remain, but they
    are dead ends for reaching anything beyond [v]. *)

val remove_node : t -> int -> t
(** [remove_node g v] removes all links incident to [v] in either
    direction. *)

val remove_links_to : t -> int -> t
(** [remove_links_to g v] removes all links {e entering} [v].  On a
    reversed graph this is exactly {!silence_node} of the original — the
    operation batch payment computation needs. *)

(** {1 In-place mutation}

    The session engine ({!Wnet_session}) owns a long-lived digraph and
    applies topology deltas directly instead of rebuilding O(n + m)
    state per edit.  Every mutation bumps a {e version stamp}; caches
    derived from the graph record the version they were built at and
    refuse to serve a graph that has moved on.  The immutable operations
    above are unaffected (they return fresh graphs with a new
    history). *)

val version : t -> int
(** [version g] counts the in-place mutations applied to [g] since its
    construction.  Two observations of the same version denote an
    identical graph. *)

(** {1 CSR view}

    The flat adjacency the hot kernels iterate: row [u] is
    [col.(row_off.(u)) .. col.(row_off.(u+1) - 1)] with matching
    unboxed weights in [wgt], sorted by target exactly like
    {!out_links}.  The view is cached against {!version}: pure weight
    updates ({!set_weight} on an existing link) write the cached [wgt]
    slot in place and keep the view valid, structural edits invalidate
    it and the next {!csr} call rebuilds in O(n + m). *)

type csr = {
  row_off : int array;  (** [n + 1] row offsets *)
  col : int array;  (** link targets, rows sorted by target *)
  wgt : float array;  (** link weights (flat float array) *)
}

val csr : t -> csr
(** [csr g] is the CSR view of [g] at its current version — do {e not}
    mutate it.  The returned arrays are valid until the next structural
    edit; weight edits mutate [wgt] in place, so a held view observes
    them (same semantics as the shared {!out_links} rows). *)

val copy : t -> t
(** [copy g] is a deep copy (at version 0): mutating either graph never
    affects the other.  How a session takes ownership of its topology. *)

val set_weight : t -> int -> int -> float -> unit
(** [set_weight g u v w] sets the weight of link [u -> v] in place:
    updates it when present, inserts it when absent, and {e removes} it
    when [w = infinity] (the paper's "declare the link unusable").
    @raise Invalid_argument on out-of-range endpoints, a self-loop, or
    a negative/NaN weight. *)

val add_node : t -> int
(** [add_node g] grows [g] by one isolated node and returns its (dense)
    identifier [n g - 1].  Wire it up with {!set_weight}. *)

val detach_node : t -> int -> unit
(** [detach_node g v] removes every link incident to [v], in either
    direction, in place.  The identifier [v] remains valid (and
    isolated), keeping node ids stable — the convention all payment
    code relies on. *)

val pp : Format.formatter -> t -> unit
