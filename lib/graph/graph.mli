(** Undirected graphs with per-node relay costs.

    This is the paper's primary network model (Sec. II-B): nodes are
    wireless devices, an edge [(u, v)] means the two devices are within
    transmission range of each other, and each node [v] has a cost
    [cost g v] of relaying one packet for somebody else.  The cost of a
    path is the sum of the costs of its {e intermediate} nodes — the source
    and destination do not charge themselves (Sec. II-C).

    Graphs are immutable after construction; node identifiers are dense
    integers [0 .. n-1], with [0] conventionally the access point. *)

type t

val create : costs:float array -> edges:(int * int) list -> t
(** [create ~costs ~edges] builds a graph on [Array.length costs] nodes.
    Self-loops are rejected; duplicate edges are collapsed.
    @raise Invalid_argument on an out-of-range endpoint, a self-loop, or a
    negative or non-finite cost. *)

val n : t -> int
(** Number of nodes. *)

val m : t -> int
(** Number of (undirected) edges. *)

val cost : t -> int -> float
(** [cost g v] is the declared relay cost of node [v]. *)

val costs : t -> float array
(** A copy of the full cost vector. *)

val costs_view : t -> float array
(** The live cost vector itself — zero-copy, do {e not} mutate.  The
    view variant the kernel loops hoist instead of calling {!cost} (or
    copying via {!costs}) per relaxation. *)

(** {1 CSR view}

    Flat adjacency for the int-indexed kernel loops: neighbours of [v]
    are [col.(row_off.(v)) .. col.(row_off.(v+1) - 1)], sorted like
    {!neighbors}.  Built once at construction (adjacency is immutable)
    and shared by {!with_costs}/{!with_cost}. *)

type csr = {
  row_off : int array;  (** [n + 1] row offsets *)
  col : int array;  (** neighbour ids, rows sorted ascending *)
}

val csr : t -> csr
(** [csr g] is the shared CSR view — do {e not} mutate. *)

val with_costs : t -> float array -> t
(** [with_costs g c] is [g] with its cost vector replaced — the typical
    way to evaluate a mechanism under a deviating declared profile without
    rebuilding adjacency.
    @raise Invalid_argument if the length differs or a cost is invalid. *)

val with_cost : t -> int -> float -> t
(** [with_cost g v c] replaces the cost of the single node [v]. *)

val neighbors : t -> int -> int array
(** [neighbors g v] is the (shared, do not mutate) sorted array of
    neighbours of [v]. *)

val degree : t -> int -> int

val mem_edge : t -> int -> int -> bool
(** [mem_edge g u v] tests adjacency in O(log degree). *)

val edges : t -> (int * int) list
(** Every edge once, as [(u, v)] with [u < v], sorted. *)

val iter_edges : (int -> int -> unit) -> t -> unit
(** [iter_edges f g] calls [f u v] once per edge with [u < v]. *)

val fold_neighbors : (int -> 'a -> 'a) -> t -> int -> 'a -> 'a

val remove_node : t -> int -> t
(** [remove_node g v] is the graph where [v] keeps its identifier but
    loses all incident edges (so it is isolated, never on any path).  This
    keeps node identifiers stable, which all the payment code relies on. *)

val remove_nodes : t -> int list -> t
(** Isolates every listed node. *)

val all_positive_costs : t -> bool
(** [true] iff every node cost is strictly positive — a precondition of
    the fast payment algorithm. *)

val pp : Format.formatter -> t -> unit
(** Multi-line dump: node costs then the edge list. *)
