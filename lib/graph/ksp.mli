(** K shortest loopless paths (Yen's algorithm), node-weighted.

    The paper explains Figure 3(d) through the {e second} shortest path:
    "for node closer to the source node, the second shortest path could
    be much larger than the shortest path, which in turn incurs large
    overpayment; for node far away ... the second shortest path has
    total cost almost the same".  This module lets the experiments test
    that explanation directly by measuring the gap between the best and
    second-best paths as a function of hop distance. *)

val k_shortest_paths :
  ?pool:Wnet_par.t -> Graph.t -> src:int -> dst:int -> k:int -> Path.t list
(** Up to [k] cheapest loopless paths, ordered by relay cost (ties
    broken by the deterministic spur construction); fewer if the graph
    has fewer simple paths.  Each round's spur-path Dijkstras are
    independent tasks fanned out over [pool] (default
    {!Wnet_par.sequential}) via the work-stealing layer — safe to call
    from inside another stealing computation on the same pool — and the
    candidate merge is execution-order independent, so the result is
    identical at every pool size.
    @raise Invalid_argument if [k <= 0] or [src = dst] or out of
    range. *)

val second_best_gap :
  ?pool:Wnet_par.t -> Graph.t -> src:int -> dst:int -> float option
(** [(cost of 2nd best) - (cost of best)], [None] when fewer than two
    simple paths exist. *)
