type tree = { source : int; dist : float array; parent : int array }

let never _ = false

(* Both tree solvers iterate the graph's flat CSR view (see {!Digraph.csr}
   / {!Graph.csr}): row [u] is a slice of int/float arrays, so the inner
   loop is monomorphic int indexing with no per-link tuple to chase.
   Settling pops only the key — the indexed heap keeps priority =
   distance for every live key, so the popped distance is read back from
   the dist array without allocating the (key, prio) tuple. *)

let node_weighted ?(forbidden = never) g ~source =
  let n = Graph.n g in
  if source < 0 || source >= n then invalid_arg "Dijkstra: source out of range";
  if forbidden source then invalid_arg "Dijkstra: source is forbidden";
  let { Graph.row_off; col } = Graph.csr g in
  let cost = Graph.costs_view g in
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  let heap = Indexed_heap.create n in
  dist.(source) <- 0.0;
  Indexed_heap.insert heap source 0.0;
  while not (Indexed_heap.is_empty heap) do
    let u = Indexed_heap.pop_min_key heap in
    let du = dist.(u) in
    (* Leaving [u] charges its relay cost, except from the source. *)
    let cand = if u = source then du else du +. cost.(u) in
    for i = row_off.(u) to row_off.(u + 1) - 1 do
      let w = Array.unsafe_get col i in
      if not (forbidden w) then
        if cand < dist.(w) then begin
          dist.(w) <- cand;
          parent.(w) <- u;
          Indexed_heap.insert_or_decrease heap w cand
        end
    done
  done;
  parent.(source) <- -1;
  { source; dist; parent }

let link_weighted ?(forbidden = never) g source =
  let n = Digraph.n g in
  if source < 0 || source >= n then invalid_arg "Dijkstra: source out of range";
  if forbidden source then invalid_arg "Dijkstra: source is forbidden";
  let { Digraph.row_off; col; wgt } = Digraph.csr g in
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  let heap = Indexed_heap.create n in
  dist.(source) <- 0.0;
  Indexed_heap.insert heap source 0.0;
  while not (Indexed_heap.is_empty heap) do
    let u = Indexed_heap.pop_min_key heap in
    let du = dist.(u) in
    for i = row_off.(u) to row_off.(u + 1) - 1 do
      let w = Array.unsafe_get col i in
      if not (forbidden w) then begin
        let cand = du +. Array.unsafe_get wgt i in
        if cand < dist.(w) then begin
          dist.(w) <- cand;
          parent.(w) <- u;
          Indexed_heap.insert_or_decrease heap w cand
        end
      end
    done
  done;
  parent.(source) <- -1;
  { source; dist; parent }

(* ------------------------------------------------------------------ *)
(* Reusable workspace.

   Batch payment computation runs one avoidance Dijkstra per relay and
   only keeps the distance array of each run.  A scratch owns the dist
   array, the heap, and a ban mask across runs, maintaining the
   invariant that every [sdist] entry is [infinity] between runs: a run
   logs each node it touches and the next run resets exactly those
   entries, so the hot relaxation loop reads and writes a single plain
   array (no epoch indirection) while repeated runs neither reallocate
   nor re-fill n-sized buffers.  The [*_dist] runs below also skip
   parent bookkeeping entirely — avoidance runs never walk paths.

   The ban mask replaces the closure-typed [?forbidden] predicate on the
   CSR paths: one byte per node, consulted with an unsafe load instead
   of an indirect call (and no closure to allocate per run).  It is the
   caller's steady-state: set the bytes you need, run, clear them.

   A scratch is single-owner state: one concurrent run per scratch (each
   pool participant gets its own via [Wnet_par.map_array_with]). *)

type scratch = {
  cap : int;
  sdist : float array;  (* all [infinity] outside a run *)
  touched : int array;  (* nodes whose [sdist] entry is currently finite *)
  mutable n_touched : int;
  sheap : Indexed_heap.t;
  sban : Bytes.t;  (* '\000' = allowed; caller-managed, all-zero between uses *)
}

let make_scratch cap =
  if cap < 0 then invalid_arg "Dijkstra.make_scratch: negative capacity";
  {
    cap;
    sdist = Array.make (max cap 1) infinity;
    touched = Array.make (max cap 1) 0;
    n_touched = 0;
    sheap = Indexed_heap.create cap;
    sban = Bytes.make (max cap 1) '\000';
  }

let scratch_capacity s = s.cap

let ban_mask s = s.sban

let begin_run s n =
  if n > s.cap then invalid_arg "Dijkstra: graph exceeds scratch capacity";
  (* A completed run leaves the heap empty; one aborted by an exception
     may not, so drain defensively. *)
  while not (Indexed_heap.is_empty s.sheap) do
    ignore (Indexed_heap.pop_min_key s.sheap)
  done;
  for i = 0 to s.n_touched - 1 do
    s.sdist.(s.touched.(i)) <- infinity
  done;
  s.n_touched <- 0

(* The boxed closure-predicate runs.  Retained verbatim over the boxed
   adjacency as the differential oracle for the CSR kernels below (the
   same role [Copy_graph] plays for the zero-copy batch): the qcheck
   suites hold the pairs to [Float.equal]-identical outputs. *)

let node_weighted_dist scratch ?(forbidden = never) g ~source =
  let n = Graph.n g in
  if source < 0 || source >= n then invalid_arg "Dijkstra: source out of range";
  if forbidden source then invalid_arg "Dijkstra: source is forbidden";
  begin_run scratch n;
  let heap = scratch.sheap in
  let dist = scratch.sdist in
  dist.(source) <- 0.0;
  scratch.touched.(scratch.n_touched) <- source;
  scratch.n_touched <- scratch.n_touched + 1;
  Indexed_heap.insert heap source 0.0;
  while not (Indexed_heap.is_empty heap) do
    let u, du = Indexed_heap.pop_min heap in
    if du <= dist.(u) then begin
      let leave = if u = source then 0.0 else Graph.cost g u in
      Array.iter
        (fun w ->
          if not (forbidden w) then begin
            let cand = du +. leave in
            let dw = dist.(w) in
            if cand < dw then begin
              if dw = infinity then begin
                scratch.touched.(scratch.n_touched) <- w;
                scratch.n_touched <- scratch.n_touched + 1
              end;
              dist.(w) <- cand;
              Indexed_heap.insert_or_decrease heap w cand
            end
          end)
        (Graph.neighbors g u)
    end
  done;
  Array.sub dist 0 n

let link_weighted_dist scratch ?(forbidden = never) g source =
  let n = Digraph.n g in
  if source < 0 || source >= n then invalid_arg "Dijkstra: source out of range";
  if forbidden source then invalid_arg "Dijkstra: source is forbidden";
  begin_run scratch n;
  let heap = scratch.sheap in
  let dist = scratch.sdist in
  dist.(source) <- 0.0;
  scratch.touched.(scratch.n_touched) <- source;
  scratch.n_touched <- scratch.n_touched + 1;
  Indexed_heap.insert heap source 0.0;
  while not (Indexed_heap.is_empty heap) do
    let u, du = Indexed_heap.pop_min heap in
    if du <= dist.(u) then
      Array.iter
        (fun (w, weight) ->
          if not (forbidden w) then begin
            let cand = du +. weight in
            let dw = dist.(w) in
            if cand < dw then begin
              if dw = infinity then begin
                scratch.touched.(scratch.n_touched) <- w;
                scratch.n_touched <- scratch.n_touched + 1
              end;
              dist.(w) <- cand;
              Indexed_heap.insert_or_decrease heap w cand
            end
          end)
        (Digraph.out_links g u)
  done;
  Array.sub dist 0 n

(* The CSR scratch kernels: flat rows, ban-mask bytes, key-only pops,
   results left in the scratch — zero steady-state allocation (the
   micro suite hard-asserts it).  Relaxation order matches the boxed
   runs link for link (CSR rows preserve the sorted boxed rows), so
   distances are bit-identical. *)

let node_weighted_scratch scratch g ~source =
  let n = Graph.n g in
  if source < 0 || source >= n then invalid_arg "Dijkstra: source out of range";
  if Bytes.get scratch.sban source <> '\000' then
    invalid_arg "Dijkstra: source is forbidden";
  begin_run scratch n;
  let { Graph.row_off; col } = Graph.csr g in
  let cost = Graph.costs_view g in
  let heap = scratch.sheap in
  let prio = Indexed_heap.prios heap in
  let dist = scratch.sdist in
  let touched = scratch.touched in
  let ban = scratch.sban in
  dist.(source) <- 0.0;
  touched.(scratch.n_touched) <- source;
  scratch.n_touched <- scratch.n_touched + 1;
  (* Priorities go through [prios]+[touch] rather than [insert] /
     [insert_or_decrease]: classic ocamlopt boxes float arguments at
     those call boundaries, and this kernel must not allocate. *)
  prio.(source) <- 0.0;
  Indexed_heap.touch heap source;
  while not (Indexed_heap.is_empty heap) do
    let u = Indexed_heap.pop_min_key heap in
    let du = Array.unsafe_get dist u in
    let cand = if u = source then du else du +. Array.unsafe_get cost u in
    for i = row_off.(u) to row_off.(u + 1) - 1 do
      let w = Array.unsafe_get col i in
      if Bytes.unsafe_get ban w = '\000' then begin
        let dw = Array.unsafe_get dist w in
        if cand < dw then begin
          if dw = infinity then begin
            Array.unsafe_set touched scratch.n_touched w;
            scratch.n_touched <- scratch.n_touched + 1
          end;
          Array.unsafe_set dist w cand;
          Array.unsafe_set prio w cand;
          Indexed_heap.touch heap w
        end
      end
    done
  done;
  dist

let link_weighted_scratch scratch g source =
  let n = Digraph.n g in
  if source < 0 || source >= n then invalid_arg "Dijkstra: source out of range";
  if Bytes.get scratch.sban source <> '\000' then
    invalid_arg "Dijkstra: source is forbidden";
  begin_run scratch n;
  let { Digraph.row_off; col; wgt } = Digraph.csr g in
  let heap = scratch.sheap in
  let prio = Indexed_heap.prios heap in
  let dist = scratch.sdist in
  let touched = scratch.touched in
  let ban = scratch.sban in
  dist.(source) <- 0.0;
  touched.(scratch.n_touched) <- source;
  scratch.n_touched <- scratch.n_touched + 1;
  prio.(source) <- 0.0;
  Indexed_heap.touch heap source;
  while not (Indexed_heap.is_empty heap) do
    let u = Indexed_heap.pop_min_key heap in
    let du = Array.unsafe_get dist u in
    for i = row_off.(u) to row_off.(u + 1) - 1 do
      let w = Array.unsafe_get col i in
      if Bytes.unsafe_get ban w = '\000' then begin
        let cand = du +. Array.unsafe_get wgt i in
        let dw = Array.unsafe_get dist w in
        if cand < dw then begin
          if dw = infinity then begin
            Array.unsafe_set touched scratch.n_touched w;
            scratch.n_touched <- scratch.n_touched + 1
          end;
          Array.unsafe_set dist w cand;
          Array.unsafe_set prio w cand;
          Indexed_heap.touch heap w
        end
      end
    done
  done;
  dist

let node_weighted_dist_csr scratch ?(avoid = -1) g ~source =
  let n = Graph.n g in
  if avoid >= 0 then Bytes.set scratch.sban avoid '\001';
  let dist = node_weighted_scratch scratch g ~source in
  if avoid >= 0 then Bytes.set scratch.sban avoid '\000';
  Array.sub dist 0 n

let link_weighted_dist_csr scratch ?(avoid = -1) g source =
  let n = Digraph.n g in
  if avoid >= 0 then Bytes.set scratch.sban avoid '\001';
  let dist = link_weighted_scratch scratch g source in
  if avoid >= 0 then Bytes.set scratch.sban avoid '\000';
  Array.sub dist 0 n

let dist t v = t.dist.(v)

let reachable t v = t.dist.(v) < infinity

let path_in_tree t v =
  if not (reachable t v) then invalid_arg "Dijkstra.path_in_tree: unreachable";
  let rec up v acc = if v = t.source then v :: acc else up t.parent.(v) (v :: acc) in
  List.rev (up v [])

let path_to t v =
  if not (reachable t v) then None
  else begin
    let rec up v acc = if v = t.source then v :: acc else up t.parent.(v) (v :: acc) in
    Some (Array.of_list (up v []))
  end

let children t =
  let n = Array.length t.parent in
  let counts = Array.make n 0 in
  Array.iter (fun p -> if p >= 0 then counts.(p) <- counts.(p) + 1) t.parent;
  let out = Array.init n (fun v -> Array.make counts.(v) 0) in
  let fill = Array.make n 0 in
  Array.iteri
    (fun v p ->
      if p >= 0 then begin
        out.(p).(fill.(p)) <- v;
        fill.(p) <- fill.(p) + 1
      end)
    t.parent;
  out
