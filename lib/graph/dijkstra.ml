type tree = { source : int; dist : float array; parent : int array }

let never _ = false

let node_weighted ?(forbidden = never) g ~source =
  let n = Graph.n g in
  if source < 0 || source >= n then invalid_arg "Dijkstra: source out of range";
  if forbidden source then invalid_arg "Dijkstra: source is forbidden";
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  let heap = Indexed_heap.create n in
  dist.(source) <- 0.0;
  Indexed_heap.insert heap source 0.0;
  while not (Indexed_heap.is_empty heap) do
    let u, du = Indexed_heap.pop_min heap in
    if du <= dist.(u) then begin
      (* Leaving [u] charges its relay cost, except from the source. *)
      let leave = if u = source then 0.0 else Graph.cost g u in
      let nbrs = Graph.neighbors g u in
      Array.iter
        (fun w ->
          if not (forbidden w) then begin
            let cand = du +. leave in
            if cand < dist.(w) then begin
              dist.(w) <- cand;
              parent.(w) <- u;
              Indexed_heap.insert_or_decrease heap w cand
            end
          end)
        nbrs
    end
  done;
  parent.(source) <- -1;
  { source; dist; parent }

let link_weighted ?(forbidden = never) g source =
  let n = Digraph.n g in
  if source < 0 || source >= n then invalid_arg "Dijkstra: source out of range";
  if forbidden source then invalid_arg "Dijkstra: source is forbidden";
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  let heap = Indexed_heap.create n in
  dist.(source) <- 0.0;
  Indexed_heap.insert heap source 0.0;
  while not (Indexed_heap.is_empty heap) do
    let u, du = Indexed_heap.pop_min heap in
    if du <= dist.(u) then
      Array.iter
        (fun (w, weight) ->
          if not (forbidden w) then begin
            let cand = du +. weight in
            if cand < dist.(w) then begin
              dist.(w) <- cand;
              parent.(w) <- u;
              Indexed_heap.insert_or_decrease heap w cand
            end
          end)
        (Digraph.out_links g u)
  done;
  parent.(source) <- -1;
  { source; dist; parent }

(* ------------------------------------------------------------------ *)
(* Reusable workspace.

   Batch payment computation runs one avoidance Dijkstra per relay and
   only keeps the distance array of each run.  A scratch owns the dist
   array and the heap across runs, maintaining the invariant that every
   [sdist] entry is [infinity] between runs: a run logs each node it
   touches and the next run resets exactly those entries, so the hot
   relaxation loop reads and writes a single plain array (no epoch
   indirection) while repeated runs neither reallocate nor re-fill
   n-sized buffers.  The [*_dist] runs below also skip parent
   bookkeeping entirely — avoidance runs never walk paths.

   A scratch is single-owner state: one concurrent run per scratch (each
   pool participant gets its own via [Wnet_par.map_array_with]). *)

type scratch = {
  cap : int;
  sdist : float array;  (* all [infinity] outside a run *)
  touched : int array;  (* nodes whose [sdist] entry is currently finite *)
  mutable n_touched : int;
  sheap : Indexed_heap.t;
}

let make_scratch cap =
  if cap < 0 then invalid_arg "Dijkstra.make_scratch: negative capacity";
  {
    cap;
    sdist = Array.make (max cap 1) infinity;
    touched = Array.make (max cap 1) 0;
    n_touched = 0;
    sheap = Indexed_heap.create cap;
  }

let scratch_capacity s = s.cap

let begin_run s n =
  if n > s.cap then invalid_arg "Dijkstra: graph exceeds scratch capacity";
  (* A completed run leaves the heap empty; one aborted by an exception
     may not, so drain defensively. *)
  while not (Indexed_heap.is_empty s.sheap) do
    ignore (Indexed_heap.pop_min s.sheap)
  done;
  for i = 0 to s.n_touched - 1 do
    s.sdist.(s.touched.(i)) <- infinity
  done;
  s.n_touched <- 0

let node_weighted_dist scratch ?(forbidden = never) g ~source =
  let n = Graph.n g in
  if source < 0 || source >= n then invalid_arg "Dijkstra: source out of range";
  if forbidden source then invalid_arg "Dijkstra: source is forbidden";
  begin_run scratch n;
  let heap = scratch.sheap in
  let dist = scratch.sdist in
  dist.(source) <- 0.0;
  scratch.touched.(scratch.n_touched) <- source;
  scratch.n_touched <- scratch.n_touched + 1;
  Indexed_heap.insert heap source 0.0;
  while not (Indexed_heap.is_empty heap) do
    let u, du = Indexed_heap.pop_min heap in
    if du <= dist.(u) then begin
      let leave = if u = source then 0.0 else Graph.cost g u in
      Array.iter
        (fun w ->
          if not (forbidden w) then begin
            let cand = du +. leave in
            let dw = dist.(w) in
            if cand < dw then begin
              if dw = infinity then begin
                scratch.touched.(scratch.n_touched) <- w;
                scratch.n_touched <- scratch.n_touched + 1
              end;
              dist.(w) <- cand;
              Indexed_heap.insert_or_decrease heap w cand
            end
          end)
        (Graph.neighbors g u)
    end
  done;
  Array.sub dist 0 n

let link_weighted_dist scratch ?(forbidden = never) g source =
  let n = Digraph.n g in
  if source < 0 || source >= n then invalid_arg "Dijkstra: source out of range";
  if forbidden source then invalid_arg "Dijkstra: source is forbidden";
  begin_run scratch n;
  let heap = scratch.sheap in
  let dist = scratch.sdist in
  dist.(source) <- 0.0;
  scratch.touched.(scratch.n_touched) <- source;
  scratch.n_touched <- scratch.n_touched + 1;
  Indexed_heap.insert heap source 0.0;
  while not (Indexed_heap.is_empty heap) do
    let u, du = Indexed_heap.pop_min heap in
    if du <= dist.(u) then
      Array.iter
        (fun (w, weight) ->
          if not (forbidden w) then begin
            let cand = du +. weight in
            let dw = dist.(w) in
            if cand < dw then begin
              if dw = infinity then begin
                scratch.touched.(scratch.n_touched) <- w;
                scratch.n_touched <- scratch.n_touched + 1
              end;
              dist.(w) <- cand;
              Indexed_heap.insert_or_decrease heap w cand
            end
          end)
        (Digraph.out_links g u)
  done;
  Array.sub dist 0 n

let dist t v = t.dist.(v)

let reachable t v = t.dist.(v) < infinity

let path_in_tree t v =
  if not (reachable t v) then invalid_arg "Dijkstra.path_in_tree: unreachable";
  let rec up v acc = if v = t.source then v :: acc else up t.parent.(v) (v :: acc) in
  List.rev (up v [])

let path_to t v =
  if not (reachable t v) then None
  else begin
    let rec up v acc = if v = t.source then v :: acc else up t.parent.(v) (v :: acc) in
    Some (Array.of_list (up v []))
  end

let children t =
  let n = Array.length t.parent in
  let counts = Array.make n 0 in
  Array.iter (fun p -> if p >= 0 then counts.(p) <- counts.(p) + 1) t.parent;
  let out = Array.init n (fun v -> Array.make counts.(v) 0) in
  let fill = Array.make n 0 in
  Array.iteri
    (fun v p ->
      if p >= 0 then begin
        out.(p).(fill.(p)) <- v;
        fill.(p) <- fill.(p) + 1
      end)
    t.parent;
  out
