(* Subtree-bounded avoidance distances.

   The batch payment engine needs, for every relay [k], the full
   distance array of a source Dijkstra with [k] forbidden.  Running that
   from scratch costs O(m log n) per relay — but silencing [k] can only
   change the labels of nodes whose shortest-path-tree route passes
   through [k], i.e. [k]'s subtree of the shared SPT.  Every node
   outside the subtree keeps a label that is {e bit-identical} to its
   tree distance: its tree path avoids [k], forbidding [k] cannot
   shorten anything, and equal IEEE-754 values have equal bit patterns.

   So the kernel copies the tree distances wholesale, marks subtree(k)
   minus [k] as the affected region (breadth-first over the index's
   child lists, using the region log itself as the queue — no
   allocation), and runs the Dynamic_sssp wipe / boundary-reseed /
   bounded-settle discipline over just that region, with "silence k" as
   the virtual edit.  Work drops to O(|subtree(k)| log |subtree(k)|)
   per relay; on sparse instances most subtrees are tiny.

   Exactness needs no tie detection: each region label is a minimum
   over candidates [d(p) +. w] whose prefixes [d(p)] are bit-identical
   to the from-scratch forbidden run's final labels (boundary by the
   subtree argument, region members inductively), and a minimum of
   identical float sums is the same float whatever order the frontier
   settles in.  The only failure mode is the region-size budget: an
   oversized subtree returns [-1] and the caller falls back to the
   full-graph kernel.  Results are immediate ints, not variants — the
   kernels sit inside the per-relay fan-out and must allocate nothing
   per call. *)

type index = {
  idx_n : int;
  first_child : int array;
  next_sib : int array;
}

let make_index (tree : Dijkstra.tree) =
  let n = Array.length tree.Dijkstra.parent in
  let first_child = Array.make (max n 1) (-1) in
  let next_sib = Array.make (max n 1) (-1) in
  (* downward loop: child lists come out in ascending node order *)
  for v = n - 1 downto 0 do
    let p = tree.Dijkstra.parent.(v) in
    if p >= 0 then begin
      next_sib.(v) <- first_child.(p);
      first_child.(p) <- v
    end
  done;
  { idx_n = n; first_child; next_sib }

let index_size idx = idx.idx_n

(* Mark the strict descendants of [k], breadth-first: the region log is
   append-only, so walking it by position while appending children IS
   the queue.  Returns [false] on budget overflow. *)
let mark_subtree ds ~budget idx k =
  let ok = ref true in
  let c = ref idx.first_child.(k) in
  while !ok && !c >= 0 do
    ok := Dynamic_sssp.region_mark ds ~budget !c;
    c := idx.next_sib.(!c)
  done;
  let i = ref 0 in
  while !ok && !i < Dynamic_sssp.region_size ds do
    let x = Dynamic_sssp.region_nth ds !i in
    incr i;
    let c = ref idx.first_child.(x) in
    while !ok && !c >= 0 do
      ok := Dynamic_sssp.region_mark ds ~budget !c;
      c := idx.next_sib.(!c)
    done
  done;
  !ok

let check ~what ~n idx (tree : Dijkstra.tree) ~avoid ~dist =
  if idx.idx_n <> n || Array.length tree.Dijkstra.dist <> n then
    invalid_arg (what ^ ": index/tree do not match the graph");
  if avoid < 0 || avoid >= n then invalid_arg (what ^ ": avoid out of range");
  if avoid = tree.Dijkstra.source then
    invalid_arg (what ^ ": cannot avoid the source");
  if Array.length dist < n then invalid_arg (what ^ ": dist too short")

let link_avoid ds ?budget idx ~graph ~mirror ~tree ~avoid:k ~dist:d =
  let n = Digraph.n graph in
  let budget =
    match budget with Some b -> b | None -> Dynamic_sssp.default_budget n
  in
  check ~what:"Avoid_region.link_avoid" ~n idx tree ~avoid:k ~dist:d;
  Dynamic_sssp.region_begin ds n;
  Array.blit tree.Dijkstra.dist 0 d 0 n;
  d.(k) <- infinity;
  if not (mark_subtree ds ~budget idx k) then -1
  else begin
    Dynamic_sssp.region_wipe ds ~dist:d;
    Dynamic_sssp.region_reseed_link ds ~forbidden:k ~mirror ~dist:d;
    if Dynamic_sssp.region_settle_link ds ~budget ~forbidden:k ~graph ~dist:d
    then Dynamic_sssp.region_size ds
    else -1
  end

let node_avoid ds ?budget idx ~graph ~tree ~avoid:k ~dist:d =
  let n = Graph.n graph in
  let budget =
    match budget with Some b -> b | None -> Dynamic_sssp.default_budget n
  in
  check ~what:"Avoid_region.node_avoid" ~n idx tree ~avoid:k ~dist:d;
  let source = tree.Dijkstra.source in
  Dynamic_sssp.region_begin ds n;
  Array.blit tree.Dijkstra.dist 0 d 0 n;
  d.(k) <- infinity;
  if not (mark_subtree ds ~budget idx k) then -1
  else begin
    Dynamic_sssp.region_wipe ds ~dist:d;
    Dynamic_sssp.region_reseed_node ds ~forbidden:k ~graph ~source ~dist:d;
    if
      Dynamic_sssp.region_settle_node ds ~budget ~forbidden:k ~graph ~source
        ~dist:d
    then Dynamic_sssp.region_size ds
    else -1
  end
