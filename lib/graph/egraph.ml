(* Flat CSR mirror of [inc]: incidences of [v] occupy slots
   [row_off.(v) .. row_off.(v+1) - 1] of [ncol] (neighbour) / [ecol]
   (edge id), sorted by neighbour like the boxed rows.  Weights stay
   per-edge-id in [w], so a kernel reads [w.(ecol.(i))] with no tuple
   to chase.  Incidence is immutable after construction; weight swaps
   ([with_weights]) share the view. *)
type csr = { row_off : int array; ncol : int array; ecol : int array }

type t = {
  ends : (int * int) array;  (* per edge id, smaller endpoint first *)
  w : float array;  (* per edge id *)
  inc : (int * int) array array;  (* per node: (neighbour, edge id), sorted *)
  csr : csr;
}

let csr_of_inc inc =
  let n = Array.length inc in
  let row_off = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    row_off.(v + 1) <- row_off.(v) + Array.length inc.(v)
  done;
  let sz = max row_off.(n) 1 in
  let ncol = Array.make sz 0 in
  let ecol = Array.make sz 0 in
  Array.iteri
    (fun v row ->
      let base = row_off.(v) in
      Array.iteri
        (fun i (nbr, e) ->
          ncol.(base + i) <- nbr;
          ecol.(base + i) <- e)
        row)
    inc;
  { row_off; ncol; ecol }

let create ~n ~edges =
  if n < 0 then invalid_arg "Egraph.create: negative node count";
  let best = Hashtbl.create (2 * List.length edges) in
  List.iter
    (fun (u, v, w) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Egraph.create: endpoint out of range";
      if u = v then invalid_arg "Egraph.create: self-loop";
      if Float.is_nan w || w < 0.0 then
        invalid_arg "Egraph.create: weight must be non-negative";
      let key = (min u v, max u v) in
      match Hashtbl.find_opt best key with
      | Some w' when w' <= w -> ()
      | _ -> Hashtbl.replace best key w)
    edges;
  let pairs =
    Hashtbl.fold (fun k w acc -> (k, w) :: acc) best [] |> List.sort compare
  in
  let m = List.length pairs in
  let ends = Array.make m (0, 0) in
  let w = Array.make m 0.0 in
  List.iteri
    (fun e ((u, v), weight) ->
      ends.(e) <- (u, v);
      w.(e) <- weight)
    pairs;
  let deg = Array.make n 0 in
  Array.iter
    (fun (u, v) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    ends;
  let inc = Array.init n (fun v -> Array.make deg.(v) (0, 0)) in
  let fill = Array.make n 0 in
  Array.iteri
    (fun e (u, v) ->
      inc.(u).(fill.(u)) <- (v, e);
      fill.(u) <- fill.(u) + 1;
      inc.(v).(fill.(v)) <- (u, e);
      fill.(v) <- fill.(v) + 1)
    ends;
  Array.iter (fun a -> Array.sort compare a) inc;
  { ends; w; inc; csr = csr_of_inc inc }

let n g = Array.length g.inc

let m g = Array.length g.ends

let check_edge g e =
  if e < 0 || e >= m g then invalid_arg "Egraph: edge id out of range"

let endpoints g e =
  check_edge g e;
  g.ends.(e)

let weight g e =
  check_edge g e;
  g.w.(e)

let weights g = Array.copy g.w

let weights_view g = g.w

let csr g = g.csr

let check_weight w =
  if Float.is_nan w || w < 0.0 then
    invalid_arg "Egraph: weight must be non-negative"

let with_weights g w =
  if Array.length w <> m g then invalid_arg "Egraph.with_weights: length mismatch";
  Array.iter check_weight w;
  { g with w = Array.copy w }

let with_weight g e w =
  check_edge g e;
  check_weight w;
  let weights = Array.copy g.w in
  weights.(e) <- w;
  { g with w = weights }

let edge_between g u v =
  if u < 0 || u >= n g || v < 0 || v >= n g then None
  else
    Array.fold_left
      (fun acc (nbr, e) -> if nbr = v then Some e else acc)
      None g.inc.(u)

let incident g v = g.inc.(v)

let fold_edges f g acc =
  let result = ref acc in
  Array.iteri
    (fun e (u, v) -> result := f u v e g.w.(e) !result)
    g.ends;
  !result
