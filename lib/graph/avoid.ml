type result = { path : Path.t; lcp_cost : float; replacement : float array }

let validate_endpoints g ~src ~dst =
  let n = Graph.n g in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Avoid: endpoint out of range";
  if src = dst then invalid_arg "Avoid: src = dst"

let avoiding_cost ?scratch g ~src ~dst ~avoid =
  validate_endpoints g ~src ~dst;
  if avoid = src || avoid = dst then
    invalid_arg "Avoid.avoiding_cost: cannot avoid an endpoint";
  match scratch with
  | Some s ->
    (* Ban mask instead of a closure: set the one byte, run the CSR
       kernel, read the answer out of the scratch, clear the byte.
       Nothing is allocated. *)
    let ban = Dijkstra.ban_mask s in
    Bytes.set ban avoid '\001';
    let d = (Dijkstra.node_weighted_scratch s g ~source:src).(dst) in
    Bytes.set ban avoid '\000';
    d
  | None ->
    let t = Dijkstra.node_weighted ~forbidden:(fun v -> v = avoid) g ~source:src in
    Dijkstra.dist t dst

let replacement_costs_naive g ~src ~dst =
  validate_endpoints g ~src ~dst;
  let t = Dijkstra.node_weighted g ~source:src in
  match Dijkstra.path_to t dst with
  | None -> None
  | Some path ->
    let len = Array.length path in
    let replacement = Array.make len nan in
    let scratch = Dijkstra.make_scratch (Graph.n g) in
    for l = 1 to len - 2 do
      replacement.(l) <- avoiding_cost ~scratch g ~src ~dst ~avoid:path.(l)
    done;
    Some { path; lcp_cost = Dijkstra.dist t dst; replacement }

(* Level labelling.  [idx.(v)] is the position of [v] on the LCP or -1;
   a non-path node inherits the path index at which its branch of the
   source-rooted shortest-path tree leaves the LCP. *)
let compute_levels g ~(tree : Dijkstra.tree) (path : Path.t) =
  let n = Graph.n g in
  let idx = Array.make n (-1) in
  Array.iteri (fun a v -> idx.(v) <- a) path;
  let level = Array.make n (-1) in
  let kids = Dijkstra.children tree in
  let stack = ref [ tree.Dijkstra.source ] in
  level.(tree.Dijkstra.source) <- 0;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | u :: rest ->
      stack := rest;
      Array.iter
        (fun w ->
          level.(w) <- (if idx.(w) >= 0 then idx.(w) else level.(u));
          stack := w :: !stack)
        kids.(u)
  done;
  level

let levels g ~tree path = compute_levels g ~tree path

let replacement_costs_fast g ~src ~dst =
  validate_endpoints g ~src ~dst;
  if not (Graph.all_positive_costs g) then
    invalid_arg "Avoid.replacement_costs_fast: requires strictly positive costs";
  let tree_i = Dijkstra.node_weighted g ~source:src in
  match Dijkstra.path_to tree_i dst with
  | None -> None
  | Some path ->
    let len = Array.length path in
    let s = len - 1 in
    let lcp_cost = Dijkstra.dist tree_i dst in
    let replacement = Array.make len nan in
    if s <= 1 then Some { path; lcp_cost; replacement }
    else begin
      let n = Graph.n g in
      let { Graph.row_off; col } = Graph.csr g in
      let cost = Graph.costs_view g in
      let tree_j = Dijkstra.node_weighted g ~source:dst in
      let on_path = Array.make n (-1) in
      Array.iteri (fun a v -> on_path.(v) <- a) path;
      let level = compute_levels g ~tree:tree_i path in
      let lcost v = Dijkstra.dist tree_i v in
      let rcost v = Dijkstra.dist tree_j v in
      (* Cost of the best src->v path counting v's own relay cost (unless
         v is an endpoint of the unicast), and symmetrically for v->dst. *)
      let wl v = lcost v +. (if v = src then 0.0 else Graph.cost g v) in
      let wr v = rcost v +. (if v = dst then 0.0 else Graph.cost g v) in
      (* Bucket non-path nodes by level; only internal levels matter. *)
      let bucket = Array.make (s + 1) [] in
      for v = 0 to n - 1 do
        if on_path.(v) < 0 && level.(v) >= 1 && level.(v) <= s - 1 then
          bucket.(level.(v)) <- v :: bucket.(level.(v))
      done;
      (* Step 3: R^{-l}(v) = cheapest v->dst cost avoiding path.(l), for v
         in the level-l pocket.  Nodes of level > l (and path nodes past l)
         act as exits whose shortest distance to dst already avoids
         path.(l) (Lemma 2); a per-pocket Dijkstra then handles travel
         within the pocket. *)
      let rminus = Array.make n infinity in
      let right_exit l w =
        (* Is w's shortest path to dst certified to avoid path.(l)? *)
        if on_path.(w) >= 0 then on_path.(w) > l else level.(w) > l
      in
      for l = 1 to s - 1 do
        match bucket.(l) with
        | [] -> ()
        | pocket ->
          let heap = Indexed_heap.create n in
          List.iter
            (fun v ->
              let base = ref infinity in
              for i = row_off.(v) to row_off.(v + 1) - 1 do
                let w = Array.unsafe_get col i in
                if level.(w) >= 0 && right_exit l w then begin
                  let via = if w = dst then 0.0 else cost.(w) +. rcost w in
                  if via < !base then base := via
                end
              done;
              Indexed_heap.insert heap v !base)
            pocket;
          while not (Indexed_heap.is_empty heap) do
            let u, du = Indexed_heap.pop_min heap in
            if du < infinity then begin
              rminus.(u) <- du;
              let cand = cost.(u) +. du in
              for i = row_off.(u) to row_off.(u + 1) - 1 do
                let w = Array.unsafe_get col i in
                if Indexed_heap.mem heap w then
                  Indexed_heap.insert_or_decrease heap w cand
              done
            end
          done
      done;
      (* Step 4: best detour that dives into the level-l pocket from the
         left region and escapes via R^{-l}. *)
      let cminus = Array.make (s + 1) infinity in
      let left_ok l w =
        if on_path.(w) >= 0 then on_path.(w) < l
        else level.(w) >= 0 && level.(w) < l
      in
      for l = 1 to s - 1 do
        List.iter
          (fun v ->
            if rminus.(v) < infinity then
              for i = row_off.(v) to row_off.(v + 1) - 1 do
                let w = Array.unsafe_get col i in
                if left_ok l w then begin
                  (* Same association order as the boxed loop. *)
                  let cand = wl w +. cost.(v) +. rminus.(v) in
                  if cand < cminus.(l) then cminus.(l) <- cand
                end
              done)
          bucket.(l)
      done;
      (* Step 5: lazy heap of crossing edges (u, w), level u < l < level w,
         valued L(u)+c_u+c_w+R(w).  Edges enter the heap bucketed by the
         level of their high endpoint as l sweeps downwards; an edge whose
         low endpoint's level rises to >= l is stale forever and is
         discarded on pop. *)
      let edges_by_high = Array.make (s + 1) [] in
      Graph.iter_edges
        (fun a b ->
          let la = if on_path.(a) >= 0 then on_path.(a) else level.(a) in
          let lb = if on_path.(b) >= 0 then on_path.(b) else level.(b) in
          if la >= 0 && lb >= 0 && la <> lb then begin
            let u, lu, w, lw = if la < lb then (a, la, b, lb) else (b, lb, a, la) in
            if lw >= 2 && lu <= s - 2 && lw - lu >= 2 then
              edges_by_high.(lw) <- (wl u +. wr w, lu) :: edges_by_high.(lw)
          end)
        g;
      let heap = Binheap.create () in
      for l = s - 1 downto 1 do
        List.iter (fun (value, lu) -> Binheap.push heap value lu) edges_by_high.(l + 1);
        let rec drain () =
          match Binheap.peek_min heap with
          | Some (_, lu) when lu >= l ->
            ignore (Binheap.pop_min heap);
            drain ()
          | Some (value, _) -> value
          | None -> infinity
        in
        let edge_best = drain () in
        replacement.(l) <- Float.min edge_best cminus.(l)
      done;
      Some { path; lcp_cost; replacement }
    end
