(* Flat CSR mirror of [out_adj]: row [u] occupies slots
   [row_off.(u) .. row_off.(u+1) - 1] of [col]/[wgt], sorted by target
   like the boxed rows.  [wgt] is a plain [float array], so the kernels
   read unboxed floats with no per-link tuple to chase. *)
type csr = {
  row_off : int array;  (* n + 1 entries *)
  col : int array;  (* m entries: link targets *)
  wgt : float array;  (* m entries: link weights, mutated in place *)
}

type t = {
  mutable out_adj : (int * float) array array; (* sorted by target *)
  mutable m : int;
  mutable version : int;
  mutable csr_cache : csr;  (* valid iff [csr_version = version] *)
  mutable csr_version : int;  (* -1: never built / structurally stale *)
}

let no_csr = { row_off = [||]; col = [||]; wgt = [||] }

let create ~n ~links =
  if n < 0 then invalid_arg "Digraph.create: negative node count";
  let best = Hashtbl.create (2 * List.length links) in
  List.iter
    (fun (u, v, w) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Digraph.create: endpoint out of range";
      if u = v then invalid_arg "Digraph.create: self-loop";
      if Float.is_nan w || w < 0.0 then
        invalid_arg "Digraph.create: weight must be non-negative";
      if w < infinity then
        match Hashtbl.find_opt best (u, v) with
        | Some w' when w' <= w -> ()
        | _ -> Hashtbl.replace best (u, v) w)
    links;
  let deg = Array.make n 0 in
  Hashtbl.iter (fun (u, _) _ -> deg.(u) <- deg.(u) + 1) best;
  let out_adj = Array.init n (fun u -> Array.make deg.(u) (0, 0.0)) in
  let fill = Array.make n 0 in
  Hashtbl.iter
    (fun (u, v) w ->
      out_adj.(u).(fill.(u)) <- (v, w);
      fill.(u) <- fill.(u) + 1)
    best;
  Array.iter (fun l -> Array.sort compare l) out_adj;
  {
    out_adj;
    m = Hashtbl.length best;
    version = 0;
    csr_cache = no_csr;
    csr_version = -1;
  }

let n g = Array.length g.out_adj

let m g = g.m

let out_links g u = g.out_adj.(u)

let out_degree g u = Array.length g.out_adj.(u)

let weight g u v =
  let a = g.out_adj.(u) in
  let rec bsearch lo hi =
    if lo >= hi then infinity
    else
      let mid = (lo + hi) / 2 in
      let t, w = a.(mid) in
      if t = v then w else if t < v then bsearch (mid + 1) hi else bsearch lo mid
  in
  bsearch 0 (Array.length a)

let links g =
  let acc = ref [] in
  Array.iteri
    (fun u l -> Array.iter (fun (v, w) -> acc := (u, v, w) :: !acc) l)
    g.out_adj;
  List.sort compare !acc

let reverse g =
  create ~n:(n g) ~links:(List.map (fun (u, v, w) -> (v, u, w)) (links g))

let owner_of_link u _v = u

let silence_node g v =
  if v < 0 || v >= n g then invalid_arg "Digraph.silence_node: out of range";
  let out_adj = Array.copy g.out_adj in
  let removed = Array.length out_adj.(v) in
  out_adj.(v) <- [||];
  {
    out_adj;
    m = g.m - removed;
    version = 0;
    csr_cache = no_csr;
    csr_version = -1;
  }

let remove_node g v =
  if v < 0 || v >= n g then invalid_arg "Digraph.remove_node: out of range";
  let m = ref g.m in
  let out_adj =
    Array.mapi
      (fun u l ->
        if u = v then begin
          m := !m - Array.length l;
          [||]
        end
        else begin
          let kept = Array.of_list (List.filter (fun (t, _) -> t <> v) (Array.to_list l)) in
          m := !m - (Array.length l - Array.length kept);
          kept
        end)
      g.out_adj
  in
  { out_adj; m = !m; version = 0; csr_cache = no_csr; csr_version = -1 }

let remove_links_to g v =
  if v < 0 || v >= n g then invalid_arg "Digraph.remove_links_to: out of range";
  let m = ref g.m in
  let out_adj =
    Array.map
      (fun l ->
        if Array.exists (fun (t, _) -> t = v) l then begin
          let kept = Array.of_list (List.filter (fun (t, _) -> t <> v) (Array.to_list l)) in
          m := !m - (Array.length l - Array.length kept);
          kept
        end
        else l)
      g.out_adj
  in
  { out_adj; m = !m; version = 0; csr_cache = no_csr; csr_version = -1 }

(* ------------------------------------------------------------------ *)
(* In-place mutation.

   The session engine owns a long-lived digraph and applies topology
   deltas to it directly instead of rebuilding O(n + m) state per edit.
   Every mutation bumps the version stamp, which downstream caches use
   to assert they were built against the graph they are consulted on.
   The immutable operations above are unaffected: they still return
   fresh graphs (at version 0, a new history). *)

let version g = g.version

let copy g =
  (* The CSR cache never travels: [set_weight] writes its [wgt] in
     place, so sharing it would couple the copies. *)
  {
    out_adj = Array.map Array.copy g.out_adj;
    m = g.m;
    version = 0;
    csr_cache = no_csr;
    csr_version = -1;
  }

(* ------------------------------------------------------------------ *)
(* CSR view.

   Built lazily from [out_adj] and memoized against the version stamp.
   [set_weight] on an existing link updates the cached [wgt] slot in
   place and moves the stamp forward with the graph, so steady cost
   drift — the session workload — never rebuilds; structural edits
   (insert/delete/add_node/detach_node) drop the cache and the next
   [csr] call pays one O(n + m) rebuild. *)

let rebuild_csr g =
  let n = Array.length g.out_adj in
  let row_off = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    row_off.(u + 1) <- row_off.(u) + Array.length g.out_adj.(u)
  done;
  let m = row_off.(n) in
  let col = Array.make (max m 1) 0 in
  let wgt = Array.make (max m 1) 0.0 in
  for u = 0 to n - 1 do
    let row = g.out_adj.(u) in
    let base = row_off.(u) in
    for i = 0 to Array.length row - 1 do
      let v, w = row.(i) in
      col.(base + i) <- v;
      wgt.(base + i) <- w
    done
  done;
  let c = { row_off; col; wgt } in
  g.csr_cache <- c;
  g.csr_version <- g.version;
  c

let csr g = if g.csr_version = g.version then g.csr_cache else rebuild_csr g

let invalidate_csr g = g.csr_version <- -1

(* Slot of link [u -> v] in the (valid) CSR, or -1: binary search of
   [col] within row [u] — the link→slot index [set_weight] writes
   through. *)
let csr_slot c u v =
  let lo = ref c.row_off.(u) and hi = ref c.row_off.(u + 1) in
  let found = ref (-1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let t = c.col.(mid) in
    if t = v then begin
      found := mid;
      lo := !hi
    end
    else if t < v then lo := mid + 1
    else hi := mid
  done;
  !found

let set_weight g u v w =
  let nn = n g in
  if u < 0 || u >= nn || v < 0 || v >= nn then
    invalid_arg "Digraph.set_weight: endpoint out of range";
  if u = v then invalid_arg "Digraph.set_weight: self-loop";
  if Float.is_nan w || w < 0.0 then
    invalid_arg "Digraph.set_weight: weight must be non-negative";
  let a = g.out_adj.(u) in
  let len = Array.length a in
  let rec bsearch lo hi = (* position of v, or insertion point *)
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if fst a.(mid) < v then bsearch (mid + 1) hi else bsearch lo mid
  in
  let i = bsearch 0 len in
  let present = i < len && fst a.(i) = v in
  (if present then begin
     if w = infinity then begin
       (* delete *)
       let b = Array.make (len - 1) (0, 0.0) in
       Array.blit a 0 b 0 i;
       Array.blit a (i + 1) b i (len - 1 - i);
       g.out_adj.(u) <- b;
       g.m <- g.m - 1;
       invalidate_csr g
     end
     else begin
       a.(i) <- (v, w);
       (* keep a valid CSR in lockstep: in-place weight write *)
       if g.csr_version = g.version then begin
         let s = csr_slot g.csr_cache u v in
         g.csr_cache.wgt.(s) <- w;
         g.csr_version <- g.version + 1
       end
     end
   end
   else if w < infinity then begin
     (* insert *)
     let b = Array.make (len + 1) (v, w) in
     Array.blit a 0 b 0 i;
     Array.blit a i b (i + 1) (len - i);
     g.out_adj.(u) <- b;
     g.m <- g.m + 1;
     invalidate_csr g
   end);
  g.version <- g.version + 1

let add_node g =
  let id = n g in
  let out_adj = Array.make (id + 1) [||] in
  Array.blit g.out_adj 0 out_adj 0 id;
  g.out_adj <- out_adj;
  invalidate_csr g;
  g.version <- g.version + 1;
  id

let detach_node g v =
  if v < 0 || v >= n g then invalid_arg "Digraph.detach_node: out of range";
  g.m <- g.m - Array.length g.out_adj.(v);
  g.out_adj.(v) <- [||];
  Array.iteri
    (fun u l ->
      if u <> v && Array.exists (fun (t, _) -> t = v) l then begin
        let kept =
          Array.of_list (List.filter (fun (t, _) -> t <> v) (Array.to_list l))
        in
        g.m <- g.m - (Array.length l - Array.length kept);
        g.out_adj.(u) <- kept
      end)
    g.out_adj;
  invalidate_csr g;
  g.version <- g.version + 1

let pp ppf g =
  Format.fprintf ppf "@[<v>digraph n=%d m=%d@," (n g) g.m;
  Array.iteri
    (fun u l ->
      Array.iter (fun (v, w) -> Format.fprintf ppf "  %d -> %d (%g)@," u v w) l)
    g.out_adj;
  Format.fprintf ppf "@]"
