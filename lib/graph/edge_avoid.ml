type result = {
  path_nodes : int array;
  path_edges : int array;
  dist : float;
  replacement : float array;
}

let dijkstra ?(forbidden_edge = -1) g ~source =
  let n = Egraph.n g in
  if source < 0 || source >= n then invalid_arg "Edge_avoid: source out of range";
  let { Egraph.row_off; ncol; ecol } = Egraph.csr g in
  let weights = Egraph.weights_view g in
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  let heap = Indexed_heap.create n in
  let prio = Indexed_heap.prios heap in
  dist.(source) <- 0.0;
  prio.(source) <- 0.0;
  Indexed_heap.touch heap source;
  while not (Indexed_heap.is_empty heap) do
    let u = Indexed_heap.pop_min_key heap in
    let du = dist.(u) in
    for i = row_off.(u) to row_off.(u + 1) - 1 do
      let e = Array.unsafe_get ecol i in
      if e <> forbidden_edge then begin
        let w = Array.unsafe_get ncol i in
        let cand = du +. Array.unsafe_get weights e in
        if cand < dist.(w) then begin
          dist.(w) <- cand;
          parent.(w) <- u;
          Array.unsafe_set prio w cand;
          Indexed_heap.touch heap w
        end
      end
    done
  done;
  { Dijkstra.source; dist; parent }

let shortest_tree g ~source = dijkstra g ~source

let path_of g (tree : Dijkstra.tree) dst =
  match Dijkstra.path_to tree dst with
  | None -> None
  | Some nodes ->
    let edges =
      Array.init
        (Array.length nodes - 1)
        (fun l ->
          match Egraph.edge_between g nodes.(l) nodes.(l + 1) with
          | Some e -> e
          | None -> invalid_arg "Edge_avoid: broken tree path")
    in
    Some (nodes, edges)

let validate g ~src ~dst =
  let n = Egraph.n g in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Edge_avoid: endpoint out of range";
  if src = dst then invalid_arg "Edge_avoid: src = dst"

let replacement_costs_naive g ~src ~dst =
  validate g ~src ~dst;
  let tree = dijkstra g ~source:src in
  match path_of g tree dst with
  | None -> None
  | Some (path_nodes, path_edges) ->
    let replacement =
      Array.map
        (fun e ->
          let t = dijkstra ~forbidden_edge:e g ~source:src in
          Dijkstra.dist t dst)
        path_edges
    in
    Some { path_nodes; path_edges; dist = Dijkstra.dist tree dst; replacement }

(* Cut labels: cut.(v) = how many path edges the tree path from src to v
   uses = the index of the path node where v's branch attaches. *)
let cut_labels g (tree : Dijkstra.tree) path_nodes =
  let n = Egraph.n g in
  let on_path = Array.make n (-1) in
  Array.iteri (fun a v -> on_path.(v) <- a) path_nodes;
  let cut = Array.make n (-1) in
  let kids = Dijkstra.children tree in
  let stack = ref [ tree.Dijkstra.source ] in
  cut.(tree.Dijkstra.source) <- 0;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | u :: rest ->
      stack := rest;
      Array.iter
        (fun w ->
          cut.(w) <- (if on_path.(w) >= 0 then on_path.(w) else cut.(u));
          stack := w :: !stack)
        kids.(u)
  done;
  cut

let replacement_costs_fast g ~src ~dst =
  validate g ~src ~dst;
  let tree_s = dijkstra g ~source:src in
  match path_of g tree_s dst with
  | None -> None
  | Some (path_nodes, path_edges) ->
    let s = Array.length path_edges in
    let dist = Dijkstra.dist tree_s dst in
    let tree_t = dijkstra g ~source:dst in
    let cut = cut_labels g tree_s path_nodes in
    let is_path_edge = Array.make (Egraph.m g) false in
    Array.iter (fun e -> is_path_edge.(e) <- true) path_edges;
    (* Bucket candidate crossing edges by the highest removal index they
       serve: edge (u, w) with cut u < cut w is a detour for removals
       l in [cut u, cut w - 1]. *)
    let buckets = Array.make (s + 1) [] in
    Egraph.fold_edges
      (fun a b e w () ->
        if (not is_path_edge.(e)) && cut.(a) >= 0 && cut.(b) >= 0 then begin
          let u, cu, wnode, cw =
            if cut.(a) <= cut.(b) then (a, cut.(a), b, cut.(b))
            else (b, cut.(b), a, cut.(a))
          in
          if cu < cw then begin
            let value =
              Dijkstra.dist tree_s u +. w +. Dijkstra.dist tree_t wnode
            in
            let high = min (cw - 1) (s - 1) in
            buckets.(high) <- (value, cu) :: buckets.(high)
          end
        end)
      g ();
    let heap = Binheap.create () in
    let replacement = Array.make s infinity in
    for l = s - 1 downto 0 do
      List.iter (fun (value, cu) -> Binheap.push heap value cu) buckets.(l);
      let rec best () =
        match Binheap.peek_min heap with
        | Some (_, cu) when cu > l ->
          ignore (Binheap.pop_min heap);
          best ()
        | Some (value, _) -> value
        | None -> infinity
      in
      replacement.(l) <- best ()
    done;
    Some { path_nodes; path_edges; dist; replacement }
