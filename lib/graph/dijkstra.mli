(** Dijkstra shortest-path trees, in both cost models.

    {b Node-weighted} (Sec. II-C): the distance from the source to [v] is
    the minimum over paths of the sum of {e relay} costs — the costs of
    nodes strictly between the source and [v].  Equivalently it is a
    shortest path in the directed expansion where leaving node [u] costs
    [cost u] (0 when [u] is the source).

    {b Link-weighted} (Sec. III-F): the usual sum of directed link
    weights.

    Both solvers break priority ties by smaller node id, so trees are
    deterministic for a given input. *)

type tree = {
  source : int;
  dist : float array;  (** [dist.(v)]: cost of the best source-to-[v] path, [infinity] when unreachable. *)
  parent : int array;  (** [parent.(v)]: predecessor of [v] on its tree path, [-1] for the source and unreachable nodes. *)
}

val node_weighted : ?forbidden:(int -> bool) -> Graph.t -> source:int -> tree
(** [node_weighted g ~source] computes the node-weighted tree from
    [source].  Nodes satisfying [forbidden] are never visited nor relayed
    through (the source itself must not be forbidden).
    @raise Invalid_argument if [source] is out of range or forbidden. *)

val link_weighted : ?forbidden:(int -> bool) -> Digraph.t -> int -> tree
(** [link_weighted g source] computes the link-weighted tree following
    out-links from [source].  To get distances from every node {e to} a
    root, run this on [Digraph.reverse g] and read paths backwards. *)

type scratch
(** A reusable single-owner workspace (dist array, heap, touched-node
    log) for distance-only runs.  Each run logs the nodes it reaches and
    the next run resets exactly those entries, so repeated runs — the
    per-relay avoidance Dijkstras of batch payment computation —
    allocate nothing but their result array and never re-fill n-sized
    buffers.  Never share one scratch between concurrent runs; give each
    {!Wnet_par} participant its own. *)

val make_scratch : int -> scratch
(** [make_scratch cap] accepts graphs of at most [cap] nodes. *)

val scratch_capacity : scratch -> int

val node_weighted_dist :
  scratch -> ?forbidden:(int -> bool) -> Graph.t -> source:int -> float array
(** [node_weighted_dist scratch g ~source] is
    [(node_weighted g ~source).dist] — bit-identical — computed through
    [scratch] with no parent bookkeeping.  The returned array is fresh;
    the scratch may be reused immediately.
    @raise Invalid_argument if the graph exceeds the scratch capacity,
    or as {!node_weighted}. *)

val link_weighted_dist :
  scratch -> ?forbidden:(int -> bool) -> Digraph.t -> int -> float array
(** [link_weighted_dist scratch g source] is
    [(link_weighted g source).dist], likewise. *)

(** {1 CSR kernels}

    The zero-allocation runs: flat {!Digraph.csr} / {!Graph.csr} rows, a
    byte-per-node ban mask in place of the [?forbidden] closure, and the
    result left {e in} the scratch.  Relaxation order matches the boxed
    runs above link for link, so distances are [Float.equal]-identical;
    the boxed closure runs are retained unchanged as the differential
    oracle. *)

val ban_mask : scratch -> Bytes.t
(** The scratch's ban mask, one byte per node: ['\000'] allowed,
    anything else banned.  Caller-managed steady state — set the bytes
    you need before a [*_scratch] run and reset them after; runs never
    clear it (an O(cap) wipe per run would defeat the touched-log
    design).  All-zero when the scratch is created. *)

val node_weighted_scratch : scratch -> Graph.t -> source:int -> float array
(** [node_weighted_scratch scratch g ~source] is
    [node_weighted_dist scratch g ~source] with the ban mask standing in
    for [?forbidden], except the returned array is the scratch's
    {e internal} distance array (length [scratch_capacity], entries
    beyond [Graph.n g] are [infinity]): read what you need before the
    next run on the same scratch overwrites it, and never mutate it.
    Allocates nothing after scratch creation.
    @raise Invalid_argument if [source] is out of range or banned, or if
    the graph exceeds the scratch capacity. *)

val link_weighted_scratch : scratch -> Digraph.t -> int -> float array
(** [link_weighted_scratch scratch g source] is the link-weighted
    analogue of {!node_weighted_scratch}. *)

val node_weighted_dist_csr :
  scratch -> ?avoid:int -> Graph.t -> source:int -> float array
(** [node_weighted_dist_csr scratch ~avoid g ~source] runs the CSR
    kernel with only [avoid] banned (in addition to any bytes the caller
    already set) and returns a {e fresh} copy of the first [Graph.n g]
    distances — the drop-in CSR counterpart of
    [node_weighted_dist scratch ~forbidden:(fun v -> v = avoid)]. *)

val link_weighted_dist_csr :
  scratch -> ?avoid:int -> Digraph.t -> int -> float array
(** Link-weighted analogue of {!node_weighted_dist_csr}. *)

val path_to : tree -> int -> Path.t option
(** [path_to t v] is the tree path [source; ...; v], or [None] when
    unreachable. *)

val dist : tree -> int -> float

val reachable : tree -> int -> bool

val children : tree -> int array array
(** [children t] materializes the tree's child lists (index = node). *)

val path_in_tree : tree -> int -> int list
(** Ascending walk [v; parent v; ...; source]; raises
    [Invalid_argument] if [v] is unreachable. *)
