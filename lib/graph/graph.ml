(* Flat CSR mirror of [adj] for the int-indexed kernel loops: row [v]
   is [col.(row_off.(v)) .. col.(row_off.(v+1) - 1)], sorted like the
   boxed rows.  Adjacency is immutable after construction, so the view
   is built once and shared by every cost-vector swap. *)
type csr = { row_off : int array; col : int array }

type t = {
  cost : float array;
  adj : int array array; (* sorted neighbour lists *)
  m : int;
  csr : csr;
}

let csr_of_adj adj =
  let n = Array.length adj in
  let row_off = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    row_off.(v + 1) <- row_off.(v) + Array.length adj.(v)
  done;
  let col = Array.make (max row_off.(n) 1) 0 in
  Array.iteri
    (fun v nbrs -> Array.blit nbrs 0 col row_off.(v) (Array.length nbrs))
    adj;
  { row_off; col }

let check_cost c =
  if not (Float.is_finite c) || c < 0.0 then
    invalid_arg "Graph: node costs must be finite and non-negative"

let build_adjacency n edges =
  let seen = Hashtbl.create (2 * List.length edges) in
  let deg = Array.make n 0 in
  let canonical =
    List.filter_map
      (fun (u, v) ->
        if u < 0 || u >= n || v < 0 || v >= n then
          invalid_arg "Graph.create: edge endpoint out of range";
        if u = v then invalid_arg "Graph.create: self-loop";
        let e = if u < v then (u, v) else (v, u) in
        if Hashtbl.mem seen e then None
        else begin
          Hashtbl.add seen e ();
          Some e
        end)
      edges
  in
  List.iter
    (fun (u, v) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    canonical;
  let adj = Array.init n (fun v -> Array.make deg.(v) 0) in
  let fill = Array.make n 0 in
  List.iter
    (fun (u, v) ->
      adj.(u).(fill.(u)) <- v;
      fill.(u) <- fill.(u) + 1;
      adj.(v).(fill.(v)) <- u;
      fill.(v) <- fill.(v) + 1)
    canonical;
  Array.iter (fun nbrs -> Array.sort compare nbrs) adj;
  (adj, List.length canonical)

let create ~costs ~edges =
  Array.iter check_cost costs;
  let n = Array.length costs in
  let adj, m = build_adjacency n edges in
  { cost = Array.copy costs; adj; m; csr = csr_of_adj adj }

let n g = Array.length g.cost

let m g = g.m

let cost g v = g.cost.(v)

let costs g = Array.copy g.cost

let costs_view g = g.cost

let csr g = g.csr

let with_costs g c =
  if Array.length c <> Array.length g.cost then
    invalid_arg "Graph.with_costs: length mismatch";
  Array.iter check_cost c;
  { g with cost = Array.copy c }

let with_cost g v c =
  check_cost c;
  let costs = Array.copy g.cost in
  costs.(v) <- c;
  { g with cost = costs }

let neighbors g v = g.adj.(v)

let degree g v = Array.length g.adj.(v)

let mem_edge g u v =
  (* Binary search in the sorted neighbour list of [u]. *)
  let a = g.adj.(u) in
  let rec bsearch lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      if a.(mid) = v then true
      else if a.(mid) < v then bsearch (mid + 1) hi
      else bsearch lo mid
  in
  bsearch 0 (Array.length a)

let iter_edges f g =
  Array.iteri
    (fun u nbrs -> Array.iter (fun v -> if u < v then f u v) nbrs)
    g.adj

let edges g =
  let acc = ref [] in
  iter_edges (fun u v -> acc := (u, v) :: !acc) g;
  List.sort compare !acc

let fold_neighbors f g v init = Array.fold_left (fun acc w -> f w acc) init g.adj.(v)

let remove_nodes g vs =
  let dead = Array.make (n g) false in
  List.iter
    (fun v ->
      if v < 0 || v >= n g then invalid_arg "Graph.remove_nodes: out of range";
      dead.(v) <- true)
    vs;
  let removed = ref 0 in
  let adj =
    Array.mapi
      (fun u nbrs ->
        if dead.(u) then [||]
        else begin
          let kept = Array.of_list (List.filter (fun w -> not dead.(w)) (Array.to_list nbrs)) in
          removed := !removed + (Array.length nbrs - Array.length kept);
          kept
        end)
      g.adj
  in
  (* Each surviving-to-dead incidence was counted once from the surviving
     side; dead-to-dead edges disappear from both sides of [adj] without
     entering [removed], so recount edges directly. *)
  let m = Array.fold_left (fun acc nbrs -> acc + Array.length nbrs) 0 adj / 2 in
  { g with adj; m; csr = csr_of_adj adj }

let remove_node g v = remove_nodes g [ v ]

let all_positive_costs g = Array.for_all (fun c -> c > 0.0) g.cost

let pp ppf g =
  Format.fprintf ppf "@[<v>graph n=%d m=%d@," (n g) g.m;
  Array.iteri (fun v c -> Format.fprintf ppf "  node %d cost %g@," v c) g.cost;
  iter_edges (fun u v -> Format.fprintf ppf "  edge %d-%d@," u v) g;
  Format.fprintf ppf "@]"
