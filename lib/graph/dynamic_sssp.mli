(** Incremental/decremental single-source shortest-path repair.

    After a burst of link edits, the nodes whose distance (or tree
    parent) actually changes — the {e affected region} — is typically
    tiny compared to [n] (Ramalingam–Reps; Demetrescu–Italiano), so
    patching the region beats rerunning Dijkstra from scratch.  This
    module offers the two repairs the session engine needs:

    - {!apply}: repair a full shortest-path {e tree} (distances and
      parents) over a mutable {!Digraph} — the session's shared
      reversed SPT;
    - {!repair_dist}/{!repair_node_dist}: repair a caller-owned
      distance-only array (no parents) — the session's per-relay
      avoidance caches.

    {b Exactness contract.}  A successful repair leaves the structure
    {e bit-identical} ([Float.equal] on every distance, [=] on every
    parent) to a from-scratch {!Dijkstra} run on the current graph.
    Distance-only repair achieves this unconditionally: distances are
    minima of the same float sums whichever path realises them.  Tree
    repair additionally fixes parents, whose from-scratch values depend
    on Dijkstra's settlement order when several predecessors tie
    bit-for-bit; whenever such a tie could make the repaired parent
    diverge, the repair {e detects it and falls back} to a from-scratch
    run instead of guessing.  Both repairs also fall back (or report
    {e overflow}) when the affected region exceeds a size budget, so the
    worst case stays a single full Dijkstra.

    {b Affected-region bound.}  A repair touches O(|R| + deg(R)·log|R|)
    work where [R] is the affected region and [deg(R)] the total degree
    of its nodes (each region node is scanned over its in-links once and
    its out-links once per settlement).

    All operations assume {e non-negative} weights, as {!Dijkstra}
    does. *)

type edit = { u : int; v : int; w0 : float; w1 : float }
(** The link [u -> v] {e of the searched graph} changed from weight
    [w0] to [w1] ([infinity] = absent, so insertions have
    [w0 = infinity] and deletions [w1 = infinity]).  Edits must be
    {e net} changes (already folded per link, [w0 <> w1] up to
    [Float.equal]) and must describe mutations {e already applied} to
    the graph (and its mirror). *)

val default_budget : int -> int
(** [default_budget n] is the region-size threshold used when [?budget]
    is omitted: beyond it, repair falls back to a from-scratch run. *)

(** {1 Tree repair} *)

type t
(** A repair state owning a shortest-path tree over a digraph it
    {e aliases} (the caller keeps mutating the graph; the state patches
    the tree to follow).  Single-owner, not thread-safe. *)

val create : graph:Digraph.t -> mirror:Digraph.t -> source:int -> t
(** [create ~graph ~mirror ~source] computes the initial tree with a
    full Dijkstra over [graph] from [source].  [mirror] must be the
    reverse of [graph] and must be kept in lockstep by the caller (the
    repair scans in-links through it).
    @raise Invalid_argument if [source] is out of range. *)

val tree : t -> Dijkstra.tree
(** The current tree.  Valid until the next {!apply}/{!rebuild}; treat
    as read-only. *)

val source : t -> int

type outcome =
  | Patched of { region : int }
      (** Repair succeeded; [region] nodes were re-examined (0 when the
          edits provably touched nothing). *)
  | Rebuilt of { reason : [ `Region | `Tie ] }
      (** Repair fell back to a full Dijkstra: the affected region
          exceeded the budget, or a bit-for-bit tie made the repaired
          parents potentially diverge from the from-scratch order. *)

val apply : ?budget:int -> t -> edit list -> outcome
(** [apply t edits] patches the tree after [edits] (already applied to
    the graph and mirror by the caller).  Handles weight changes,
    insertions, deletions, and node growth ([Digraph.add_node]: the
    state resizes itself).  Postcondition either way: the tree equals
    [Dijkstra.link_weighted graph source] bit for bit. *)

val rebuild : t -> unit
(** Unconditional from-scratch recompute (the fallback path, callable
    directly — e.g. when the caller lost track of the deltas). *)

(** {1 Distance-only repair} *)

type dist_scratch
(** Reusable workspace (heap, epoch marks, region log) for
    {!repair_dist}/{!repair_node_dist}.  Single-owner: one concurrent
    repair per scratch — give each {!Wnet_par} participant its own. *)

val make_dist_scratch : int -> dist_scratch
(** [make_dist_scratch cap] accepts graphs of at most [cap] nodes. *)

val dist_scratch_capacity : dist_scratch -> int

val repair_dist :
  dist_scratch ->
  ?budget:int ->
  ?forbidden:int ->
  graph:Digraph.t ->
  mirror:Digraph.t ->
  source:int ->
  dist:float array ->
  edit list ->
  [ `Patched of int | `Overflow ]
(** [repair_dist s ~graph ~mirror ~source ~dist edits] patches [dist] —
    the distance array from [source] over [graph] with node [forbidden]
    excluded from the search, exact {e before} the edits — so it is
    exact {e after} them.  Links incident to [forbidden] are invisible,
    matching [Dijkstra.link_weighted ~forbidden].  Returns [`Patched
    region] on success.  On [`Overflow] (region exceeded the budget)
    [dist] is {b left corrupted} and must be rebuilt from scratch.
    @raise Invalid_argument if the graph exceeds the scratch capacity
    or [dist] is shorter than the graph. *)

type node_edit = { x : int; nbrs : int array; c0 : float; c1 : float }
(** Node [x]'s relay cost changed from [c0] to [c1]; [nbrs] is [x]'s
    adjacency at edit time (node-model bursts never change adjacency
    between flushes, so the current neighbours serve). *)

val repair_node_dist :
  dist_scratch ->
  ?budget:int ->
  ?forbidden:int ->
  graph:Graph.t ->
  source:int ->
  dist:float array ->
  node_edit list ->
  [ `Patched of int | `Overflow ]
(** Node-weighted analogue of {!repair_dist}: [dist] is a
    [Dijkstra.node_weighted ~forbidden] distance array from [source]
    (leaving [source] is free, leaving any other node [x] costs its
    relay cost).  Same contract and failure mode. *)

(** {1 Region primitives}

    The wipe / boundary-reseed / bounded-settle machinery of the
    distance repairs, exposed piecewise so other kernels can run the
    same discipline over a region they delimit themselves —
    {!Avoid_region} marks a relay's SPT subtree and recomputes exactly
    those labels, with everything outside the region serving as the
    intact boundary.  Protocol, per run: {!region_begin}, then
    {!region_mark} every region node, then {!region_wipe},
    [region_reseed_*], optional direct seeds, and [region_settle_*].
    All of it is allocation-free after scratch creation (the settle
    loops go through [Indexed_heap.prios]/[touch]). *)

val region_begin : dist_scratch -> int -> unit
(** Open a fresh region epoch on a scratch (empty region, drained
    heap) for a graph of [n] nodes.
    @raise Invalid_argument if [n] exceeds the scratch capacity. *)

val region_mark : dist_scratch -> budget:int -> int -> bool
(** [region_mark s ~budget x] adds [x] to the region (idempotent).
    Returns [false] — with [x] {e not} marked — when the region already
    holds [budget] nodes: the caller must abandon the run and fall back
    to a from-scratch computation. *)

val region_size : dist_scratch -> int
(** Nodes marked in the current epoch. *)

val region_nth : dist_scratch -> int -> int
(** [region_nth s i] is the [i]-th marked node, in marking order —
    letting callers drive a breadth-first expansion by treating the
    region log itself as the work queue. *)

val region_wipe : dist_scratch -> dist:float array -> unit
(** Set [dist] to [infinity] on every marked node. *)

val region_reseed_link :
  dist_scratch -> forbidden:int -> mirror:Digraph.t -> dist:float array -> unit
(** Offer each marked node its best candidate through its in-links from
    unmarked, finite-labelled boundary nodes (current weights, scanned
    through [mirror]); links incident to [forbidden] are invisible.
    Improvements enter the scratch's frontier heap. *)

val region_settle_link :
  dist_scratch ->
  budget:int ->
  forbidden:int ->
  graph:Digraph.t ->
  dist:float array ->
  bool
(** Settle the seeded frontier in label order, relaxing out-links over
    [graph] (with [forbidden] invisible).  Settled nodes are marked
    against [budget]; [false] means the region outgrew it and [dist] is
    left corrupted. *)

val region_reseed_node :
  dist_scratch ->
  forbidden:int ->
  graph:Graph.t ->
  source:int ->
  dist:float array ->
  unit
(** Node-weighted {!region_reseed_link}: symmetric adjacency, leaving a
    boundary node charges its relay cost (0 from [source]). *)

val region_settle_node :
  dist_scratch ->
  budget:int ->
  forbidden:int ->
  graph:Graph.t ->
  source:int ->
  dist:float array ->
  bool
(** Node-weighted {!region_settle_link}. *)
