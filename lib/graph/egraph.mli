(** Undirected edge-weighted graphs with first-class edge identities.

    This is the network model of Nisan–Ronen's mechanism (the paper's
    ref [8], reviewed in Sec. II-D): each {e edge} is a selfish agent
    whose private type is its transmission cost.  Edge identities matter
    because payments attach to edges, so parallel edges are collapsed to
    the cheapest and every edge gets a dense id [0 .. m-1]. *)

type t

val create : n:int -> edges:(int * int * float) list -> t
(** @raise Invalid_argument on out-of-range endpoints, self-loops, or
    negative/NaN weights.  Duplicate endpoints keep the cheapest
    weight. *)

val n : t -> int
val m : t -> int

val endpoints : t -> int -> int * int
(** [endpoints g e] with the smaller node first.
    @raise Invalid_argument on a bad edge id. *)

val weight : t -> int -> float
(** Weight of edge id [e]. *)

val weights : t -> float array
(** Copy of the weight vector, indexed by edge id — an edge-agent
    profile. *)

val weights_view : t -> float array
(** The live weight vector itself — zero-copy, do {e not} mutate.  The
    view the kernels hoist instead of paying {!weights}'s O(m) copy (or
    a {!weight} call) per relaxation. *)

(** {1 CSR view}

    Flat incidence for the kernel loops: the incidences of [v] are
    slots [row_off.(v) .. row_off.(v+1) - 1], neighbour in [ncol],
    edge id in [ecol], sorted by neighbour like {!incident}.  Built
    once (incidence is immutable); weight swaps share it. *)

type csr = {
  row_off : int array;  (** [n + 1] row offsets *)
  ncol : int array;  (** neighbour ids *)
  ecol : int array;  (** edge ids, parallel to [ncol] *)
}

val csr : t -> csr
(** [csr g] is the shared CSR view — do {e not} mutate. *)

val with_weights : t -> float array -> t
(** Replace all weights (declared profile).
    @raise Invalid_argument on length mismatch or invalid weight. *)

val with_weight : t -> int -> float -> t

val edge_between : t -> int -> int -> int option
(** Edge id joining two nodes, if any. *)

val incident : t -> int -> (int * int) array
(** [incident g v] is the (shared, do not mutate) array of
    [(neighbour, edge_id)] pairs, sorted by neighbour. *)

val fold_edges : (int -> int -> int -> float -> 'a -> 'a) -> t -> 'a -> 'a
(** [fold_edges f g acc] calls [f u v edge_id weight] once per edge with
    [u < v], in edge-id order. *)
