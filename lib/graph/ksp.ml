(* Yen's algorithm over the node-weighted shortest-path machinery.  The
   spur computations need Dijkstra with both forbidden nodes and
   forbidden edges, which only this module needs, so it gets a private
   variant here. *)

let dijkstra g ~source ~forbidden_node ~forbidden_edge =
  let n = Graph.n g in
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  let heap = Indexed_heap.create n in
  dist.(source) <- 0.0;
  Indexed_heap.insert heap source 0.0;
  while not (Indexed_heap.is_empty heap) do
    let u, du = Indexed_heap.pop_min heap in
    if du <= dist.(u) then begin
      let leave = if u = source then 0.0 else Graph.cost g u in
      Array.iter
        (fun w ->
          if (not (forbidden_node w)) && not (forbidden_edge u w) then begin
            let cand = du +. leave in
            if cand < dist.(w) then begin
              dist.(w) <- cand;
              parent.(w) <- u;
              Indexed_heap.insert_or_decrease heap w cand
            end
          end)
        (Graph.neighbors g u)
    end
  done;
  let path_to v =
    if dist.(v) = infinity then None
    else begin
      let rec up v acc = if v = source then v :: acc else up parent.(v) (v :: acc) in
      Some (Array.of_list (up v []))
    end
  in
  path_to

let prefix p i = Array.sub p 0 (i + 1)

(* The spur from position [i] of [prev]: ban the root nodes and every
   first-edge out of the spur node that a known path sharing the root
   prefix already uses, then search for the cheapest deviation.  [known]
   is the round-start snapshot of accepted ∪ candidate paths — frozen,
   so every spur of a round is independent of the others and the round
   can fan out over the pool.  (Banning a candidate's first-edge is
   Lawler's optimisation: the path it hides is already in the candidate
   list, and deviations beyond position [i] are found by that path's own
   spur scan once it is accepted, so a one-round-stale ban set costs
   only duplicates — which [seen] drops — never a missed path.) *)
let spur_search g ~dst ~known ~prev i =
  let root = prefix prev i in
  let spur = prev.(i) in
  let banned_edges = Hashtbl.create 8 in
  List.iter
    (fun p ->
      if Array.length p > i + 1 && prefix p i = root then begin
        Hashtbl.replace banned_edges (p.(i), p.(i + 1)) ();
        Hashtbl.replace banned_edges (p.(i + 1), p.(i)) ()
      end)
    known;
  let root_nodes = Hashtbl.create 8 in
  Array.iteri (fun j v -> if j < i then Hashtbl.replace root_nodes v ()) root;
  match
    dijkstra g ~source:spur
      ~forbidden_node:(fun v -> Hashtbl.mem root_nodes v)
      ~forbidden_edge:(fun u w -> Hashtbl.mem banned_edges (u, w))
      dst
  with
  | None -> None
  | Some sp -> Some (Array.append root (Array.sub sp 1 (Array.length sp - 1)))

let k_shortest_paths ?(pool = Wnet_par.sequential) g ~src ~dst ~k =
  if k <= 0 then invalid_arg "Ksp: k must be positive";
  let n = Graph.n g in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Ksp: endpoint out of range";
  if src = dst then invalid_arg "Ksp: src = dst";
  let first =
    dijkstra g ~source:src ~forbidden_node:(fun _ -> false)
      ~forbidden_edge:(fun _ _ -> false)
      dst
  in
  match first with
  | None -> []
  | Some p0 ->
    let accepted = ref [ p0 ] in
    (* candidates: (cost, path); kept sorted by polling the minimum *)
    let candidates : (float * Path.t) list ref = ref [] in
    let seen = Hashtbl.create 16 in
    Hashtbl.add seen p0 ();
    let add_candidate p =
      if not (Hashtbl.mem seen p) then begin
        Hashtbl.add seen p ();
        candidates := (Path.relay_cost g p, p) :: !candidates
      end
    in
    (try
       for _ = 2 to k do
         let prev = List.hd !accepted in
         (* Every spur of the round reads the same frozen [known]
            snapshot, so the per-spur searches are independent tasks;
            stealing only reorders their execution.  Results are merged
            in spur-index order, and selection sorts the deduplicated
            candidate *set* by (cost, path) — both independent of
            execution order, so the output is identical at every pool
            size. *)
         let known = !accepted @ List.map snd !candidates in
         let spurs =
           Wnet_par.map_array_stealing pool
             (spur_search g ~dst ~known ~prev)
             (Array.init (Array.length prev - 1) Fun.id)
         in
         Array.iter (Option.iter add_candidate) spurs;
         match List.sort compare !candidates with
         | [] -> raise Exit
         | (_, best) :: rest ->
           candidates := rest;
           accepted := best :: !accepted
       done
     with Exit -> ());
    List.rev !accepted

let second_best_gap ?pool g ~src ~dst =
  match k_shortest_paths ?pool g ~src ~dst ~k:2 with
  | [ a; b ] -> Some (Path.relay_cost g b -. Path.relay_cost g a)
  | _ -> None
