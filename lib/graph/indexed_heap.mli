(** Indexed binary min-heap with decrease-key.

    Keys are node identifiers in [\[0, capacity)], priorities are floats.
    Each key may be present at most once; [insert_or_decrease] makes the
    heap directly usable as the frontier of Dijkstra's algorithm.  All
    operations are O(log size) except [mem]/[priority], which are O(1). *)

type t

val create : int -> t
(** [create capacity] is an empty heap accepting keys in
    [\[0, capacity)].
    @raise Invalid_argument if [capacity < 0]. *)

val size : t -> int

val is_empty : t -> bool

val mem : t -> int -> bool
(** [mem h k] tests whether key [k] is currently in the heap. *)

val priority : t -> int -> float
(** [priority h k] is the current priority of key [k].
    @raise Not_found if [k] is not in the heap. *)

val insert : t -> int -> float -> unit
(** [insert h k p] adds key [k] with priority [p].
    @raise Invalid_argument if [k] is out of range or already present. *)

val decrease : t -> int -> float -> unit
(** [decrease h k p] lowers the priority of [k] to [p].
    @raise Invalid_argument if [k] is absent or [p] is larger than the
    current priority. *)

val insert_or_decrease : t -> int -> float -> unit
(** [insert_or_decrease h k p] inserts [k] if absent, lowers its priority
    if [p] improves it, and does nothing otherwise. *)

val prios : t -> float array
(** [prios h] is the heap's internal priority store, exposed so that hot
    loops can update priorities without a float crossing a function-call
    boundary (classic ocamlopt boxes float arguments at non-inlined
    calls).  Contract: after writing [(prios h).(k) <- p] the caller must
    immediately call [touch h k], and [p] must not exceed the previous
    priority of an in-heap [k].  Slots of absent keys are dead storage. *)

val touch : t -> int -> unit
(** [touch h k] re-establishes heap order after the caller wrote a new,
    not-larger priority for [k] into [prios h]: inserts [k] if absent,
    sifts it up otherwise.  All-int signature — the allocation-free
    equivalent of [insert_or_decrease] for pre-written priorities.  [k]
    must be in [\[0, capacity)]; this is not checked. *)

val pop_min : t -> int * float
(** [pop_min h] removes and returns the key with the smallest priority,
    breaking ties by smaller key for determinism.
    @raise Not_found if the heap is empty. *)

val pop_min_key : t -> int
(** [pop_min_key h] is [fst (pop_min h)] without the tuple: the
    allocation-free pop the CSR Dijkstra kernels settle with.  Callers
    that need the priority read it from their own distance array — the
    kernels maintain priority = distance for every live key.
    @raise Not_found if the heap is empty. *)

val peek_min : t -> (int * float) option
