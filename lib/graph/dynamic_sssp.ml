(* Incremental/decremental SSSP repair (Ramalingam–Reps style).

   Shared shape of both repairs, for a burst of net link edits already
   applied to the graph:

   1. {e Closure}: collect the nodes whose old label could have been
      realised through a risen/deleted link — transitively.  The tree
      repair reads this off the old tree (the subtrees hanging under
      risen tree links); the distance-only repair, having no parents,
      chases realisation equalities [d.(x) +. w_old = d.(y)] instead
      (a superset of the truly affected nodes, which is safe: they are
      re-derived to the same values).
   2. {e Wipe and reseed}: set the region's labels to [infinity], then
      offer each region node its best candidate through its in-links
      from the intact boundary (current weights), and seed every
      dropped link whose tail kept its label.
   3. {e Bounded frontier Dijkstra}: settle the region in label order,
      relaxing out-links with current weights.  A label improved after
      its node settled is simply re-settled (label-correcting), which
      keeps mixed increase/decrease bursts exact.

   The region counter is checked against a budget at every first
   marking; exceeding it aborts into the caller's from-scratch path, so
   the worst case stays one full Dijkstra plus a bounded probe.

   Exactness: distances are minima of identical float sums however the
   frontier is ordered, so distance-only repair is unconditionally
   bit-identical to a fresh run.  Parents are only forced when the
   minimising predecessor is unique; every relaxation or boundary scan
   that observes a bit-for-bit tie which could let the from-scratch
   settlement order pick a different parent raises [Tie] and the tree
   is rebuilt from scratch instead. *)

type edit = { u : int; v : int; w0 : float; w1 : float }

let default_budget n = max 32 (n / 2)

exception Overflow
exception Tie

(* ------------------------------------------------------------------ *)
(* Distance-only repair                                                 *)

type dist_scratch = {
  mutable cap : int;
  mutable mark : int array;  (* mark.(x) = epoch: x is in the region *)
  mutable epoch : int;
  mutable region : int array;  (* marked nodes, in marking order *)
  mutable n_region : int;
  mutable heap : Indexed_heap.t;
}

let make_dist_scratch cap =
  if cap < 0 then invalid_arg "Dynamic_sssp.make_dist_scratch: negative capacity";
  let c = max cap 1 in
  {
    cap;
    mark = Array.make c 0;
    epoch = 0;
    region = Array.make c 0;
    n_region = 0;
    heap = Indexed_heap.create cap;
  }

let dist_scratch_capacity s = s.cap

let begin_dist_run s n =
  if n > s.cap then
    invalid_arg "Dynamic_sssp: graph exceeds scratch capacity";
  s.epoch <- s.epoch + 1;
  s.n_region <- 0;
  (* a completed repair leaves the heap empty; one aborted by Overflow
     may not *)
  while not (Indexed_heap.is_empty s.heap) do
    ignore (Indexed_heap.pop_min_key s.heap)
  done

let smark s ~budget x =
  if s.mark.(x) <> s.epoch then begin
    if s.n_region >= budget then raise Overflow;
    s.mark.(x) <- s.epoch;
    s.region.(s.n_region) <- x;
    s.n_region <- s.n_region + 1
  end

(* ------------------------------------------------------------------ *)
(* Region primitives.

   Steps 2 (wipe + boundary reseed) and 4 (bounded-frontier settle) of
   the repairs below, factored out so {!Avoid_region} can run the same
   wipe/reseed/settle discipline over a subtree region it marked itself
   ("silence node k" as a virtual edit).  The settle loops go through
   [Indexed_heap.prios]/[touch] rather than [insert_or_decrease]:
   classic ocamlopt boxes float arguments at those non-inlined call
   boundaries, and the bounded avoidance kernel must not allocate. *)

let region_begin = begin_dist_run

let region_mark s ~budget x =
  match smark s ~budget x with
  | () -> true
  | exception Overflow -> false

let region_size s = s.n_region
let region_nth s i = s.region.(i)

let region_wipe s ~dist:d =
  for k = 0 to s.n_region - 1 do
    d.(s.region.(k)) <- infinity
  done

(* Offer each region node its best candidate through its in-links from
   the unmarked boundary (current weights, read through the mirror);
   [forbidden] is invisible. *)
let reseed_link s ~j ~m_off ~m_col ~m_wgt d =
  let heap = s.heap in
  let prio = Indexed_heap.prios heap in
  for k = 0 to s.n_region - 1 do
    let x = s.region.(k) in
    for i = m_off.(x) to m_off.(x + 1) - 1 do
      let p = Array.unsafe_get m_col i in
      if p <> j && s.mark.(p) <> s.epoch then begin
        let dp = d.(p) in
        if dp < infinity then begin
          let cand = dp +. Array.unsafe_get m_wgt i in
          if cand < d.(x) then begin
            d.(x) <- cand;
            prio.(x) <- cand;
            Indexed_heap.touch heap x
          end
        end
      end
    done
  done

(* Settle the seeded frontier in label order (the popped priority always
   equals the node's current label, so the key-only pop reads it back
   from [d]).  Every settled node is marked against the budget: nodes
   reached beyond the pre-marked region grow it. *)
let settle_link s ~budget ~j ~g_off ~g_col ~g_wgt d =
  let heap = s.heap in
  let prio = Indexed_heap.prios heap in
  while not (Indexed_heap.is_empty heap) do
    let x = Indexed_heap.pop_min_key heap in
    let dx = d.(x) in
    smark s ~budget x;
    for i = g_off.(x) to g_off.(x + 1) - 1 do
      let y = Array.unsafe_get g_col i in
      if y <> j then begin
        let cand = dx +. Array.unsafe_get g_wgt i in
        if cand < d.(y) then begin
          d.(y) <- cand;
          prio.(y) <- cand;
          Indexed_heap.touch heap y
        end
      end
    done
  done

(* Node-weighted twins: adjacency is symmetric (in-links = out-links =
   the CSR row), and leaving node [x] costs its relay cost (0 from the
   source). *)
let reseed_node s ~j ~row_off ~col ~cost ~source d =
  let heap = s.heap in
  let prio = Indexed_heap.prios heap in
  for k = 0 to s.n_region - 1 do
    let x = s.region.(k) in
    for i = row_off.(x) to row_off.(x + 1) - 1 do
      let p = Array.unsafe_get col i in
      if p <> j && s.mark.(p) <> s.epoch then begin
        let dp = d.(p) in
        if dp < infinity then begin
          let leave = if p = source then 0.0 else Array.unsafe_get cost p in
          let cand = dp +. leave in
          if cand < d.(x) then begin
            d.(x) <- cand;
            prio.(x) <- cand;
            Indexed_heap.touch heap x
          end
        end
      end
    done
  done

let settle_node s ~budget ~j ~row_off ~col ~cost ~source d =
  let heap = s.heap in
  let prio = Indexed_heap.prios heap in
  while not (Indexed_heap.is_empty heap) do
    let x = Indexed_heap.pop_min_key heap in
    let dx = d.(x) in
    smark s ~budget x;
    let leave = if x = source then 0.0 else Array.unsafe_get cost x in
    let cand = dx +. leave in
    for i = row_off.(x) to row_off.(x + 1) - 1 do
      let y = Array.unsafe_get col i in
      if y <> j then
        if cand < d.(y) then begin
          d.(y) <- cand;
          prio.(y) <- cand;
          Indexed_heap.touch heap y
        end
    done
  done

let region_reseed_link s ~forbidden ~mirror ~dist =
  let { Digraph.row_off; col; wgt } = Digraph.csr mirror in
  reseed_link s ~j:forbidden ~m_off:row_off ~m_col:col ~m_wgt:wgt dist

let region_settle_link s ~budget ~forbidden ~graph ~dist =
  let { Digraph.row_off; col; wgt } = Digraph.csr graph in
  match settle_link s ~budget ~j:forbidden ~g_off:row_off ~g_col:col ~g_wgt:wgt dist with
  | () -> true
  | exception Overflow -> false

let region_reseed_node s ~forbidden ~graph ~source ~dist =
  let { Graph.row_off; col } = Graph.csr graph in
  let cost = Graph.costs_view graph in
  reseed_node s ~j:forbidden ~row_off ~col ~cost ~source dist

let region_settle_node s ~budget ~forbidden ~graph ~source ~dist =
  let { Graph.row_off; col } = Graph.csr graph in
  let cost = Graph.costs_view graph in
  match settle_node s ~budget ~j:forbidden ~row_off ~col ~cost ~source dist with
  | () -> true
  | exception Overflow -> false

let repair_dist s ?budget ?(forbidden = -1) ~graph ~mirror ~source ~dist:d
    edits =
  let n = Digraph.n graph in
  let budget = match budget with Some b -> b | None -> default_budget n in
  if Array.length d < n then
    invalid_arg "Dynamic_sssp.repair_dist: dist array shorter than the graph";
  begin_dist_run s n;
  (* Flat views of both orientations; [Digraph.set_weight] keeps them
     live, so a weight-only edit burst pays no rebuild here. *)
  let { Digraph.row_off = g_off; col = g_col; wgt = g_wgt } =
    Digraph.csr graph
  in
  let { Digraph.row_off = m_off; col = m_col; wgt = m_wgt } =
    Digraph.csr mirror
  in
  let j = forbidden in
  let edits =
    List.filter
      (fun e -> e.u <> j && e.v <> j && not (Float.equal e.w0 e.w1))
      edits
  in
  let marked x = s.mark.(x) = s.epoch in
  let edited x y = List.exists (fun e -> e.u = x && e.v = y) edits in
  try
    (* 1. increase-affected closure: nodes whose old label was realised
       (possibly as a tie) through a risen link, transitively.  Old
       weights apply: edited out-links are chased through the edit list
       (deleted ones are no longer in the graph at all). *)
    List.iter
      (fun e ->
        if
          e.w1 > e.w0 && e.v <> source && d.(e.u) < infinity
          && Float.equal (d.(e.u) +. e.w0) d.(e.v)
        then smark s ~budget e.v)
      edits;
    let i = ref 0 in
    while !i < s.n_region do
      let x = s.region.(!i) in
      incr i;
      let dx = d.(x) in
      if dx < infinity then begin
        for i = g_off.(x) to g_off.(x + 1) - 1 do
          let y = Array.unsafe_get g_col i in
          if
            y <> j && y <> source && (not (marked y)) && (not (edited x y))
            && Float.equal (dx +. Array.unsafe_get g_wgt i) d.(y)
          then smark s ~budget y
        done;
        List.iter
          (fun e ->
            if
              e.u = x && e.w0 < infinity && e.v <> source
              && (not (marked e.v))
              && Float.equal (dx +. e.w0) d.(e.v)
            then smark s ~budget e.v)
          edits
      end
    done;
    (* 2. wipe the region, then reseed each member from the boundary
       through its in-links (current weights, via the mirror) *)
    region_wipe s ~dist:d;
    reseed_link s ~j ~m_off ~m_col ~m_wgt d;
    (* 3. dropped links whose tail kept its label seed directly (a
       marked tail relaxes when it settles) *)
    let prio = Indexed_heap.prios s.heap in
    List.iter
      (fun e ->
        if e.w1 < e.w0 && (not (marked e.u)) && d.(e.u) < infinity then begin
          let cand = d.(e.u) +. e.w1 in
          if cand < d.(e.v) then begin
            d.(e.v) <- cand;
            prio.(e.v) <- cand;
            Indexed_heap.touch s.heap e.v
          end
        end)
      edits;
    (* 4. bounded-frontier Dijkstra over the region *)
    settle_link s ~budget ~j ~g_off ~g_col ~g_wgt d;
    `Patched s.n_region
  with Overflow -> `Overflow

(* Node-weighted variant: leaving [x] costs its relay cost (0 from the
   source), adjacency is symmetric, and the edits are node-cost
   changes.  A node's own label never depends on its own cost, so an
   edit on [x] seeds [x]'s neighbours, not [x]. *)

type node_edit = { x : int; nbrs : int array; c0 : float; c1 : float }

let repair_node_dist s ?budget ?(forbidden = -1) ~graph ~source ~dist:d
    edits =
  let n = Graph.n graph in
  let budget = match budget with Some b -> b | None -> default_budget n in
  if Array.length d < n then
    invalid_arg
      "Dynamic_sssp.repair_node_dist: dist array shorter than the graph";
  begin_dist_run s n;
  let { Graph.row_off; col } = Graph.csr graph in
  let j = forbidden in
  let edits =
    List.filter
      (fun e -> e.x <> j && e.x <> source && not (Float.equal e.c0 e.c1))
      edits
  in
  let marked x = s.mark.(x) = s.epoch in
  let old_cost x =
    match List.find_opt (fun e -> e.x = x) edits with
    | Some e -> e.c0
    | None -> Graph.cost graph x
  in
  let leave_old x = if x = source then 0.0 else old_cost x in
  try
    List.iter
      (fun e ->
        if e.c1 > e.c0 && d.(e.x) < infinity then
          Array.iter
            (fun y ->
              if
                y <> j && y <> source && (not (marked y))
                && Float.equal (d.(e.x) +. e.c0) d.(y)
              then smark s ~budget y)
            e.nbrs)
      edits;
    let i = ref 0 in
    while !i < s.n_region do
      let x = s.region.(!i) in
      incr i;
      let dx = d.(x) in
      if dx < infinity then begin
        let lo = leave_old x in
        for i = row_off.(x) to row_off.(x + 1) - 1 do
          let y = Array.unsafe_get col i in
          if
            y <> j && y <> source && (not (marked y))
            && Float.equal (dx +. lo) d.(y)
          then smark s ~budget y
        done
      end
    done;
    region_wipe s ~dist:d;
    let cost = Graph.costs_view graph in
    reseed_node s ~j ~row_off ~col ~cost ~source d;
    let prio = Indexed_heap.prios s.heap in
    List.iter
      (fun e ->
        if e.c1 < e.c0 && (not (marked e.x)) && d.(e.x) < infinity then
          Array.iter
            (fun y ->
              if y <> j then begin
                let cand = d.(e.x) +. e.c1 in
                if cand < d.(y) then begin
                  d.(y) <- cand;
                  prio.(y) <- cand;
                  Indexed_heap.touch s.heap y
                end
              end)
            e.nbrs)
      edits;
    settle_node s ~budget ~j ~row_off ~col ~cost ~source d;
    `Patched s.n_region
  with Overflow -> `Overflow

(* ------------------------------------------------------------------ *)
(* Tree repair                                                          *)

type t = {
  graph : Digraph.t;  (* the searched graph, aliased and caller-mutated *)
  mirror : Digraph.t;  (* its reverse, kept in lockstep by the caller *)
  src : int;
  mutable tr : Dijkstra.tree;  (* arrays exactly [Digraph.n graph]-sized *)
  (* children of the tree as doubly-linked sibling lists, for O(1)
     reparenting and orphan-subtree walks without an O(n) scan *)
  mutable cap : int;  (* capacity of the auxiliary arrays below *)
  mutable first_child : int array;
  mutable next_sib : int array;
  mutable prev_sib : int array;
  mutable mark : int array;
  mutable epoch : int;
  mutable region : int array;
  mutable n_region : int;
  mutable heap : Indexed_heap.t;
}

let source t = t.src
let tree t = t.tr

let build_children t =
  let n = Array.length t.tr.Dijkstra.parent in
  Array.fill t.first_child 0 t.cap (-1);
  Array.fill t.next_sib 0 t.cap (-1);
  Array.fill t.prev_sib 0 t.cap (-1);
  for v = n - 1 downto 0 do
    let p = t.tr.Dijkstra.parent.(v) in
    if p >= 0 then begin
      let h = t.first_child.(p) in
      t.next_sib.(v) <- h;
      if h >= 0 then t.prev_sib.(h) <- v;
      t.first_child.(p) <- v
    end
  done

let grow_aux t n =
  if n > t.cap then begin
    let c = max n (2 * t.cap) in
    t.first_child <- Array.make c (-1);
    t.next_sib <- Array.make c (-1);
    t.prev_sib <- Array.make c (-1);
    t.mark <- Array.make c 0;
    t.epoch <- 0;
    t.region <- Array.make c 0;
    t.heap <- Indexed_heap.create c;
    t.cap <- c
  end

let rebuild t =
  t.tr <- Dijkstra.link_weighted t.graph t.src;
  grow_aux t (Digraph.n t.graph);
  build_children t

let create ~graph ~mirror ~source =
  let n = Digraph.n graph in
  if Digraph.n mirror <> n then
    invalid_arg "Dynamic_sssp.create: mirror size mismatch";
  let tr = Dijkstra.link_weighted graph source in
  let c = max n 1 in
  let t =
    {
      graph;
      mirror;
      src = source;
      tr;
      cap = c;
      first_child = Array.make c (-1);
      next_sib = Array.make c (-1);
      prev_sib = Array.make c (-1);
      mark = Array.make c 0;
      epoch = 0;
      region = Array.make c 0;
      n_region = 0;
      heap = Indexed_heap.create c;
    }
  in
  build_children t;
  t

(* Detach [x] from its parent's child list ([parent.(x)] still valid). *)
let unlink t x =
  let p = t.tr.Dijkstra.parent.(x) in
  if p >= 0 then begin
    let nx = t.next_sib.(x) and px = t.prev_sib.(x) in
    if px >= 0 then t.next_sib.(px) <- nx else t.first_child.(p) <- nx;
    if nx >= 0 then t.prev_sib.(nx) <- px;
    t.next_sib.(x) <- -1;
    t.prev_sib.(x) <- -1
  end

(* Set [parent.(x) <- p] and push [x] onto [p]'s child list ([x] must be
   unlinked). *)
let link_child t x p =
  t.tr.Dijkstra.parent.(x) <- p;
  if p >= 0 then begin
    let h = t.first_child.(p) in
    t.next_sib.(x) <- h;
    t.prev_sib.(x) <- -1;
    if h >= 0 then t.prev_sib.(h) <- x;
    t.first_child.(p) <- x
  end

let reparent t x p =
  unlink t x;
  link_child t x p

(* Node growth ([Digraph.add_node]): extend the tree arrays to exactly
   the new node count (payment code copies [tree.dist] whole, so the
   arrays must never be oversized). *)
let grow_tree t n =
  let old = Array.length t.tr.Dijkstra.dist in
  if n > old then begin
    let dist = Array.make n infinity and parent = Array.make n (-1) in
    Array.blit t.tr.Dijkstra.dist 0 dist 0 old;
    Array.blit t.tr.Dijkstra.parent 0 parent 0 old;
    t.tr <- { Dijkstra.source = t.src; dist; parent };
    let cap_before = t.cap in
    grow_aux t n;
    (* a capacity bump replaces the sibling arrays wholesale: re-derive
       the child lists from the (unchanged) parent array *)
    if t.cap <> cap_before then build_children t
  end

type outcome =
  | Patched of { region : int }
  | Rebuilt of { reason : [ `Region | `Tie ] }

(* [y] keeps its label and its parent [x], which just re-derived it at a
   bit-equal candidate.  The from-scratch parent only flips to another
   predecessor [z] if [z] attains the same label AND settles before [x]
   — possible only when [dist z] ties [dist x] bit for bit (pop order
   respects distances strictly otherwise).  Region predecessors are
   checked when they settle; intact ones are checked here. *)
let check_attainer_tie t mcsr d x y =
  let dy = d.(y) and dx = d.(x) in
  let { Digraph.row_off; col; wgt } = mcsr in
  for i = row_off.(y) to row_off.(y + 1) - 1 do
    let z = Array.unsafe_get col i in
    if
      z <> x
      && t.mark.(z) <> t.epoch
      && d.(z) < infinity
      && Float.equal (d.(z) +. Array.unsafe_get wgt i) dy
      && Float.equal d.(z) dx
    then raise Tie
  done

let apply ?budget t edits =
  let n = Digraph.n t.graph in
  grow_tree t n;
  let budget = match budget with Some b -> b | None -> default_budget n in
  let gcsr = Digraph.csr t.graph in
  let mcsr = Digraph.csr t.mirror in
  let { Digraph.row_off = g_off; col = g_col; wgt = g_wgt } = gcsr in
  let { Digraph.row_off = m_off; col = m_col; wgt = m_wgt } = mcsr in
  let d = t.tr.Dijkstra.dist and par = t.tr.Dijkstra.parent in
  t.epoch <- t.epoch + 1;
  t.n_region <- 0;
  while not (Indexed_heap.is_empty t.heap) do
    ignore (Indexed_heap.pop_min_key t.heap)
  done;
  let edits = List.filter (fun e -> not (Float.equal e.w0 e.w1)) edits in
  let marked x = t.mark.(x) = t.epoch in
  let mark_node x =
    if not (marked x) then begin
      if t.n_region >= budget then raise Overflow;
      t.mark.(x) <- t.epoch;
      t.region.(t.n_region) <- x;
      t.n_region <- t.n_region + 1
    end
  in
  try
    (* 1. orphan the subtree under every risen/deleted tree link *)
    let stack = ref [] in
    List.iter
      (fun e ->
        if e.w1 > e.w0 && par.(e.v) = e.u && not (marked e.v) then begin
          stack := [ e.v ];
          while !stack <> [] do
            match !stack with
            | [] -> ()
            | x :: rest ->
              stack := rest;
              if not (marked x) then begin
                mark_node x;
                let c = ref t.first_child.(x) in
                while !c >= 0 do
                  stack := !c :: !stack;
                  c := t.next_sib.(!c)
                done
              end
          done
        end)
      edits;
    let n_orphans = t.n_region in
    for k = 0 to n_orphans - 1 do
      let x = t.region.(k) in
      unlink t x;
      par.(x) <- -1;
      d.(x) <- infinity
    done;
    (* 2. reseed each orphan from the intact boundary; two bit-equal
       best candidates mean the from-scratch parent depends on
       settlement order — fall back *)
    for k = 0 to n_orphans - 1 do
      let x = t.region.(k) in
      let best = ref infinity and best_p = ref (-1) and tied = ref false in
      for i = m_off.(x) to m_off.(x + 1) - 1 do
        let p = Array.unsafe_get m_col i in
        if not (marked p) then begin
          let dp = d.(p) in
          if dp < infinity then begin
            let cand = dp +. Array.unsafe_get m_wgt i in
            if cand < !best then begin
              best := cand;
              best_p := p;
              tied := false
            end
            else if Float.equal cand !best then tied := true
          end
        end
      done;
      if !best < infinity then begin
        if !tied then raise Tie;
        d.(x) <- !best;
        link_child t x !best_p;
        Indexed_heap.insert_or_decrease t.heap x !best
      end
    done;
    (* 3. dropped links whose tail kept its label *)
    List.iter
      (fun e ->
        if e.w1 < e.w0 && (not (marked e.u)) && d.(e.u) < infinity then begin
          let cand = d.(e.u) +. e.w1 in
          if cand < d.(e.v) then begin
            d.(e.v) <- cand;
            reparent t e.v e.u;
            Indexed_heap.insert_or_decrease t.heap e.v cand
          end
          else if Float.equal cand d.(e.v) && par.(e.v) <> e.u then raise Tie
        end)
      edits;
    (* 4. bounded-frontier Dijkstra with tie detection.  As in the
       distance-only repair, a live heap priority always equals the
       node's current label, so the key-only pop reads it from [d]. *)
    while not (Indexed_heap.is_empty t.heap) do
      let x = Indexed_heap.pop_min_key t.heap in
      let dx = d.(x) in
      mark_node x;
      for i = g_off.(x) to g_off.(x + 1) - 1 do
        let y = Array.unsafe_get g_col i in
        let cand = dx +. Array.unsafe_get g_wgt i in
        if cand < d.(y) then begin
          d.(y) <- cand;
          reparent t y x;
          Indexed_heap.insert_or_decrease t.heap y cand
        end
        else if Float.equal cand d.(y) then
          if par.(y) <> x then raise Tie
          else if not (marked y) then check_attainer_tie t mcsr d x y
      done
    done;
    Patched { region = t.n_region }
  with
  | Overflow ->
    rebuild t;
    Rebuilt { reason = `Region }
  | Tie ->
    rebuild t;
    Rebuilt { reason = `Tie }
