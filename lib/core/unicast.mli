(** The paper's strategyproof unicast pricing mechanism (Sec. III-A/B),
    node-cost model.

    Given declared costs (carried by the graph), a source and a
    destination (conventionally the access point [v_0]), the mechanism

    - routes along the least cost path [P(src, dst, d)], and
    - pays every relay [v_k] on it
      [p^k = ||P_{-v_k}(src, dst, d)|| - ||P(src, dst, d)|| + d_k];
      every other node is paid 0.

    This is the VCG mechanism for the shortest-path problem with node
    agents, hence strategyproof: truthful declaration is a dominant
    strategy, and every truthful relay has non-negative utility. *)

type algo =
  | Naive  (** one Dijkstra per relay — the [O(n^2 log n + nm)] baseline *)
  | Fast  (** Algorithm 1 — [O(n log n + m)]; requires strictly positive costs *)

type t = {
  src : int;
  dst : int;
  path : Wnet_graph.Path.t;  (** the chosen LCP *)
  lcp_cost : float;  (** its relay cost [||P||] *)
  payments : float array;
      (** [payments.(v)]: payment to node [v]; non-zero only on relays.
          [infinity] marks a monopoly relay (graph not biconnected). *)
}

val run : ?algo:algo -> Wnet_graph.Graph.t -> src:int -> dst:int -> t option
(** [run g ~src ~dst] executes the mechanism on the declared costs in
    [g]; [None] when [dst] is unreachable.  Default algorithm: [Fast]
    when all costs are strictly positive, [Naive] otherwise.
    @raise Invalid_argument if [src = dst] or out of range. *)

val total_payment : t -> float
(** Sum of all payments — what the source is charged. *)

val payment_to : t -> int -> float

val relays : t -> int list

val utility : t -> truth:float array -> int -> float
(** [utility r ~truth k] is [p^k - x_k c_k]: the true utility of node [k]
    under this outcome when its true cost is [truth.(k)]. *)

val overpayment : t -> float
(** [total_payment r -. lcp_cost r] — what the source pays beyond the
    declared cost of the route. *)

val session_payment_to : t -> packets:int -> int -> float
(** Sec. II-C: when costs are per packet and the source sends [packets]
    packets in one session, the actual payment to a relay is
    [packets * p^k].
    @raise Invalid_argument if [packets < 0]. *)

val session_charge : t -> packets:int -> float
(** Total session charge to the source, [packets * total_payment]. *)

val all_to_root :
  ?pool:Wnet_par.t -> ?kernel:[ `CsrBounded | `Csr | `Boxed ] ->
  Wnet_graph.Graph.t -> root:int -> t option array
(** Every node's unicast to the access point in one pass: one Dijkstra
    from [root] for the shared tree plus one per distinct relay for the
    avoidance distances (node-weighted distances are symmetric, so
    from-root trees serve to-root queries).  [results.(root)] is [None],
    as are unreachable sources.

    The per-relay avoidance Dijkstras are independent; [?pool] (default
    {!Wnet_par.sequential}) fans them out over domains with positional
    merging, so the result is bit-identical for every pool size.
    [?kernel] picks the avoidance kernel: [`CsrBounded] (default)
    subtree-bounded over the shared tree, [`Csr] full-graph flat
    ban-mask, [`Boxed] closure oracle — all bit-identical. *)

val vcg_problem : Wnet_graph.Graph.t -> src:int -> dst:int -> Wnet_mech.Vcg.problem
(** The unicast instance phrased as a generic VCG problem (agent [k]
    participates iff it relays; excluding [k] removes it from the graph).
    Used by tests to confirm that {!run} implements exactly the Clarke
    rule of {!Wnet_mech.Vcg}. *)

val mechanism : Wnet_graph.Graph.t -> src:int -> dst:int -> Wnet_mech.Vcg.solution Wnet_mech.Mechanism.t
(** Direct-revelation wrapper: re-runs the mechanism under any declared
    profile (replacing the graph's costs), for the property checkers.
    Source and destination are not agents: their declarations are ignored
    by payments (their costs never enter any path cost). *)
