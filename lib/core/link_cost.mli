(** The link-cost mechanism of Sec. III-F.

    When nodes can adjust transmission power, node [i]'s private type is
    the {e vector} [c_i = (c_{i,0}, ..., c_{i,n-1})] of per-neighbour
    power costs and the network is a directed link-weighted graph (see
    {!Wnet_graph.Digraph}).  The mechanism computes a least-cost directed
    path from the source to the access point and pays each node [v_k] on
    it (other than the endpoints)

    [p^k = sum_j x_{k,j} d_{k,j} + Delta_{i,k}]

    — the declared cost of the link it actually transmits on, plus the
    improvement [Delta_{i,k}] the presence of [v_k] brings to the least
    cost path (computed by silencing all of [v_k]'s outgoing links, the
    paper's [d|^k infinity]).  This is a VCG mechanism for vector-typed
    agents, hence truthful. *)

type t = {
  src : int;
  dst : int;
  path : Wnet_graph.Path.t;
  lcp_cost : float;  (** full directed path cost, including the source's own first link *)
  relay_cost : float;
      (** [lcp_cost] minus the source's first-link cost: the cost incurred
          by the {e paid} nodes.  Overpayment ratios use this, matching
          the node-cost model's "relay cost" convention. *)
  payments : float array;
      (** per node; [infinity] marks a monopoly transmitter. *)
}

val run : Wnet_graph.Digraph.t -> src:int -> dst:int -> t option
(** Single source–destination pair; [None] when no directed path exists.
    @raise Invalid_argument if [src = dst] or out of range. *)

val total_payment : t -> float

val payment_to : t -> int -> float

type batch = {
  root : int;
  to_root_dist : float array;  (** [dist v -> root] for every [v] *)
  results : t option array;  (** per-source outcome, [None] when disconnected; entry [root] is [None] *)
}

type strategy =
  | Copy_graph
      (** the original implementation: clone the reversed digraph per
          relay via [Digraph.remove_links_to] — O(n + m) allocation per
          relay.  Kept as the reference for equivalence testing. *)
  | Zero_copy
      (** the default: forbid the relay in the search itself
          ([Dijkstra.link_weighted_dist ~forbidden]) over the shared
          reversed digraph — no copies, and scratch reuse across the
          whole batch.  Identical output. *)

val all_to_root :
  ?strategy:strategy -> ?pool:Wnet_par.t ->
  ?kernel:[ `CsrBounded | `Csr | `Boxed ] ->
  Wnet_graph.Digraph.t -> root:int -> batch
(** Every node's unicast to the access point at once — the workload of
    the paper's simulations.  Runs one reverse Dijkstra for the shared
    shortest-path tree plus one per distinct relay for the avoidance
    distances, so the whole batch costs O(#relays * (m + n log n)) instead
    of O(n * #relays * ...) for repeated {!run} calls.

    [?pool] (default {!Wnet_par.sequential}) fans the per-relay
    avoidance Dijkstras out over domains with positional merging: the
    batch is bit-identical for every pool size and strategy.  [?kernel]
    (Zero_copy only) picks the avoidance kernel: [`CsrBounded]
    (default) recomputes only each relay's SPT subtree with exterior
    distances copied from the shared tree, [`Csr] is the full-graph
    flat ban-mask kernel, [`Boxed] the closure oracle — all
    bit-identical. *)

val ic_spot_check :
  Wnet_prng.Rng.t ->
  Wnet_graph.Digraph.t ->
  src:int -> dst:int -> trials:int ->
  (int * float) list
(** Empirical incentive-compatibility falsifier for the vector-typed
    setting: each trial picks a node and a random rescaling/perturbation
    of its whole declared out-link vector, and compares its true utility
    (payment minus true cost of the link it transmits on) against
    truthful play.  Returns [(agent, gain)] for strict improvements —
    expected empty. *)
