open Wnet_graph

type algo = Naive | Fast

type t = {
  src : int;
  dst : int;
  path : Path.t;
  lcp_cost : float;
  payments : float array;
}

let of_replacements g (res : Avoid.result) ~src ~dst =
  let payments = Array.make (Graph.n g) 0.0 in
  let path = res.Avoid.path in
  for l = 1 to Array.length path - 2 do
    let k = path.(l) in
    payments.(k) <- res.Avoid.replacement.(l) -. res.Avoid.lcp_cost +. Graph.cost g k
  done;
  { src; dst; path; lcp_cost = res.Avoid.lcp_cost; payments }

let run ?algo g ~src ~dst =
  let algo =
    match algo with
    | Some a -> a
    | None -> if Graph.all_positive_costs g then Fast else Naive
  in
  let res =
    match algo with
    | Naive -> Avoid.replacement_costs_naive g ~src ~dst
    | Fast -> Avoid.replacement_costs_fast g ~src ~dst
  in
  Option.map (fun r -> of_replacements g r ~src ~dst) res

let total_payment r = Array.fold_left ( +. ) 0.0 r.payments

let payment_to r v = r.payments.(v)

let relays r = Array.to_list (Path.relays r.path)

let utility r ~truth k =
  let relaying = Path.mem r.path k && k <> r.src && k <> r.dst in
  r.payments.(k) -. (if relaying then truth.(k) else 0.0)

let overpayment r = total_payment r -. r.lcp_cost

let check_packets packets =
  if packets < 0 then invalid_arg "Unicast: negative packet count"

let session_payment_to r ~packets k =
  check_packets packets;
  float_of_int packets *. payment_to r k

let session_charge r ~packets =
  check_packets packets;
  float_of_int packets *. total_payment r

let relay_array is_relay =
  let l = ref [] in
  for k = Array.length is_relay - 1 downto 0 do
    if is_relay.(k) then l := k :: !l
  done;
  Array.of_list !l

let all_to_root ?(pool = Wnet_par.sequential) g ~root =
  let n = Graph.n g in
  if root < 0 || root >= n then invalid_arg "Unicast.all_to_root";
  let tree = Dijkstra.node_weighted g ~source:root in
  let next_hop v = tree.Dijkstra.parent.(v) in
  let is_relay = Array.make n false in
  for v = 0 to n - 1 do
    if v <> root && Dijkstra.reachable tree v then begin
      let h = next_hop v in
      if h >= 0 && h <> root then is_relay.(h) <- true
    end
  done;
  (* One avoidance Dijkstra per relay, fanned out over the pool.  Each
     participant reuses one scratch for its whole chunk; results are
     merged positionally, so any pool size yields the sequential answer
     bit for bit. *)
  let relays = relay_array is_relay in
  let dists =
    Wnet_par.map_array_with pool
      ~init:(fun () -> Dijkstra.make_scratch n)
      (fun scratch k ->
        Dijkstra.node_weighted_dist scratch ~forbidden:(fun v -> v = k) g
          ~source:root)
      relays
  in
  let avoid = Array.make n [||] in
  Array.iteri (fun i k -> avoid.(k) <- dists.(i)) relays;
  Array.init n (fun src ->
      if src = root || not (Dijkstra.reachable tree src) then None
      else begin
        let rec chain v acc =
          if v = root then List.rev (root :: acc) else chain (next_hop v) (v :: acc)
        in
        let path = Array.of_list (chain src []) in
        let lcp_cost = Dijkstra.dist tree src in
        let payments = Array.make n 0.0 in
        Array.iter
          (fun k -> payments.(k) <- Graph.cost g k +. avoid.(k).(src) -. lcp_cost)
          (Path.relays path);
        Some { src; dst = root; path; lcp_cost; payments }
      end)

let solve_instance g ~src ~dst ~excluded (d : Wnet_mech.Profile.t) =
  let g = Graph.with_costs g d in
  let forbidden v = Option.fold ~none:false ~some:(fun e -> v = e) excluded in
  if Option.fold ~none:false ~some:(fun e -> e = src || e = dst) excluded then
    (* Excluding an endpoint makes no sense; endpoints are not agents. *)
    invalid_arg "Unicast: cannot exclude an endpoint";
  let tree = Dijkstra.node_weighted ~forbidden g ~source:src in
  match Dijkstra.path_to tree dst with
  | None -> None
  | Some path ->
    let used = Array.make (Graph.n g) false in
    Array.iter (fun v -> used.(v) <- true) (Path.relays path);
    Some { Wnet_mech.Vcg.cost = Dijkstra.dist tree dst; used }

let vcg_problem g ~src ~dst =
  {
    Wnet_mech.Vcg.n_agents = Graph.n g;
    solve = (fun d -> solve_instance g ~src ~dst ~excluded:None d);
    solve_without =
      (fun k d ->
        if k = src || k = dst then solve_instance g ~src ~dst ~excluded:None d
        else solve_instance g ~src ~dst ~excluded:(Some k) d);
  }

let mechanism g ~src ~dst =
  Wnet_mech.Vcg.mechanism
    ~name:(Printf.sprintf "unicast-vcg(%d->%d)" src dst)
    (vcg_problem g ~src ~dst)
