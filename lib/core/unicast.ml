open Wnet_graph

type algo = Naive | Fast

type t = {
  src : int;
  dst : int;
  path : Path.t;
  lcp_cost : float;
  payments : float array;
}

let of_replacements g (res : Avoid.result) ~src ~dst =
  let payments = Array.make (Graph.n g) 0.0 in
  let path = res.Avoid.path in
  for l = 1 to Array.length path - 2 do
    let k = path.(l) in
    payments.(k) <- res.Avoid.replacement.(l) -. res.Avoid.lcp_cost +. Graph.cost g k
  done;
  { src; dst; path; lcp_cost = res.Avoid.lcp_cost; payments }

let run ?algo g ~src ~dst =
  let algo =
    match algo with
    | Some a -> a
    | None -> if Graph.all_positive_costs g then Fast else Naive
  in
  let res =
    match algo with
    | Naive -> Avoid.replacement_costs_naive g ~src ~dst
    | Fast -> Avoid.replacement_costs_fast g ~src ~dst
  in
  Option.map (fun r -> of_replacements g r ~src ~dst) res

let total_payment r = Array.fold_left ( +. ) 0.0 r.payments

let payment_to r v = r.payments.(v)

let relays r = Array.to_list (Path.relays r.path)

let utility r ~truth k =
  let relaying = Path.mem r.path k && k <> r.src && k <> r.dst in
  r.payments.(k) -. (if relaying then truth.(k) else 0.0)

let overpayment r = total_payment r -. r.lcp_cost

let check_packets packets =
  if packets < 0 then invalid_arg "Unicast: negative packet count"

let session_payment_to r ~packets k =
  check_packets packets;
  float_of_int packets *. payment_to r k

let session_charge r ~packets =
  check_packets packets;
  float_of_int packets *. total_payment r

let all_to_root ?(pool = Wnet_par.sequential) ?(kernel = `CsrBounded) g ~root =
  let n = Graph.n g in
  if root < 0 || root >= n then invalid_arg "Unicast.all_to_root";
  (* A one-shot session: the shared from-root tree, one avoidance
     Dijkstra per relay over per-domain scratches, positional merge —
     delegated to the incremental engine ([Graph.t] is immutable, so
     sharing is free). *)
  let module S = Wnet_session.Node_session in
  let s = S.create ~pool ~kernel g ~root in
  Array.map
    (Option.map (fun (o : S.outcome) ->
         {
           src = o.S.src;
           dst = root;
           path = o.S.path;
           lcp_cost = o.S.lcp_cost;
           payments = o.S.payments;
         }))
    (S.payments s)

let solve_instance g ~src ~dst ~excluded (d : Wnet_mech.Profile.t) =
  let g = Graph.with_costs g d in
  let forbidden v = Option.fold ~none:false ~some:(fun e -> v = e) excluded in
  if Option.fold ~none:false ~some:(fun e -> e = src || e = dst) excluded then
    (* Excluding an endpoint makes no sense; endpoints are not agents. *)
    invalid_arg "Unicast: cannot exclude an endpoint";
  let tree = Dijkstra.node_weighted ~forbidden g ~source:src in
  match Dijkstra.path_to tree dst with
  | None -> None
  | Some path ->
    let used = Array.make (Graph.n g) false in
    Array.iter (fun v -> used.(v) <- true) (Path.relays path);
    Some { Wnet_mech.Vcg.cost = Dijkstra.dist tree dst; used }

let vcg_problem g ~src ~dst =
  {
    Wnet_mech.Vcg.n_agents = Graph.n g;
    solve = (fun d -> solve_instance g ~src ~dst ~excluded:None d);
    solve_without =
      (fun k d ->
        if k = src || k = dst then solve_instance g ~src ~dst ~excluded:None d
        else solve_instance g ~src ~dst ~excluded:(Some k) d);
  }

let mechanism g ~src ~dst =
  Wnet_mech.Vcg.mechanism
    ~name:(Printf.sprintf "unicast-vcg(%d->%d)" src dst)
    (vcg_problem g ~src ~dst)
