open Wnet_graph

type t = {
  src : int;
  dst : int;
  path : Path.t;
  lcp_cost : float;
  relay_cost : float;
  payments : float array;
}

let validate g ~src ~dst =
  let n = Digraph.n g in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Link_cost: endpoint out of range";
  if src = dst then invalid_arg "Link_cost: src = dst"

let build_result g ~src ~dst ~path ~lcp_cost ~avoid_dist =
  (* [avoid_dist k] = cost of the best src->dst path with node k silenced. *)
  let payments = Array.make (Digraph.n g) 0.0 in
  let len = Array.length path in
  for l = 1 to len - 2 do
    let k = path.(l) in
    let used_link = Digraph.weight g k path.(l + 1) in
    let delta = avoid_dist k -. lcp_cost in
    payments.(k) <- used_link +. delta
  done;
  let first_link = if len >= 2 then Digraph.weight g path.(0) path.(1) else 0.0 in
  { src; dst; path; lcp_cost; relay_cost = lcp_cost -. first_link; payments }

let run g ~src ~dst =
  validate g ~src ~dst;
  let tree = Dijkstra.link_weighted g src in
  match Dijkstra.path_to tree dst with
  | None -> None
  | Some path ->
    let lcp_cost = Dijkstra.dist tree dst in
    let avoid_dist k =
      let silenced = Digraph.silence_node g k in
      let t = Dijkstra.link_weighted silenced src in
      Dijkstra.dist t dst
    in
    Some (build_result g ~src ~dst ~path ~lcp_cost ~avoid_dist)

let total_payment r = Array.fold_left ( +. ) 0.0 r.payments

let payment_to r v = r.payments.(v)

type batch = {
  root : int;
  to_root_dist : float array;
  results : t option array;
}

type strategy = Copy_graph | Zero_copy

(* Relay ids ascending, one counted pass — no intermediate list. *)
let relay_array is_relay =
  let c = ref 0 in
  Array.iter (fun b -> if b then incr c) is_relay;
  let out = Array.make !c 0 in
  let i = ref 0 in
  Array.iteri
    (fun k b ->
      if b then begin
        out.(!i) <- k;
        incr i
      end)
    is_relay;
  out

let all_to_root ?(strategy = Zero_copy) ?(pool = Wnet_par.sequential)
    ?(kernel = `CsrBounded) g ~root =
  let n = Digraph.n g in
  if root < 0 || root >= n then invalid_arg "Link_cost.all_to_root";
  match strategy with
  | Zero_copy ->
    (* A one-shot session: same shared reversed tree, same forbidden-node
       avoidance Dijkstras over per-domain scratches, same assembly —
       delegated to the incremental engine, opened on a borrowed graph
       (no edits ever happen, so borrowing is safe). *)
    let module S = Wnet_session.Link_session in
    let s = S.create ~pool ~copy:false ~kernel g ~root in
    let b = S.payments s in
    {
      root = b.S.root;
      to_root_dist = b.S.to_root_dist;
      results =
        Array.map
          (Option.map (fun (o : S.outcome) ->
               {
                 src = o.S.src;
                 dst = root;
                 path = o.S.path;
                 lcp_cost = o.S.lcp_cost;
                 relay_cost = o.S.relay_cost;
                 payments = o.S.payments;
               }))
          b.S.results;
    }
  | Copy_graph ->
    (* Reference implementation: one shared reversal and one relay
       sweep up front, then a clone of the reversed graph per relay.
       Produces distances identical to the session path; kept as the
       from-scratch oracle the equivalence suites check against. *)
    let rev = Digraph.reverse g in
    let tree = Dijkstra.link_weighted rev root in
    (* In the reversed tree, a node's parent is its next hop towards the
       root in the original graph. *)
    let next_hop v = tree.Dijkstra.parent.(v) in
    (* Which nodes relay for somebody?  Exactly the internal nodes of the
       reversed shortest-path tree. *)
    let is_relay = Array.make n false in
    for v = 0 to n - 1 do
      if v <> root && Dijkstra.reachable tree v then begin
        let h = next_hop v in
        if h <> root && h >= 0 then is_relay.(h) <- true
      end
    done;
    let relays = relay_array is_relay in
    let dists =
      Wnet_par.map_array pool
        (fun k ->
          let revk = Digraph.remove_links_to rev k in
          (Dijkstra.link_weighted revk root).Dijkstra.dist)
        relays
    in
    let avoid = Array.make n [||] in
    Array.iteri (fun i k -> avoid.(k) <- dists.(i)) relays;
    let results =
      Array.init n (fun src ->
          if src = root || not (Dijkstra.reachable tree src) then None
          else begin
            let rec chain v acc =
              if v = root then List.rev (root :: acc)
              else chain (next_hop v) (v :: acc)
            in
            let path = Array.of_list (chain src []) in
            let lcp_cost = Dijkstra.dist tree src in
            let avoid_dist k = avoid.(k).(src) in
            Some (build_result g ~src ~dst:root ~path ~lcp_cost ~avoid_dist)
          end)
    in
    { root; to_root_dist = Array.copy tree.Dijkstra.dist; results }

let ic_spot_check rng g ~src ~dst ~trials =
  validate g ~src ~dst;
  let true_links = Digraph.links g in
  let true_utility_of result k =
    (* Node k's true utility: payment received minus the true cost of the
       link it transmits on (0 if it is not on the path or is the dst). *)
    let path = result.path in
    let len = Array.length path in
    let rec used l =
      if l >= len - 1 then None
      else if path.(l) = k then Some (Digraph.weight g k path.(l + 1))
      else used (l + 1)
    in
    match used 0 with
    | Some w when k <> dst -> result.payments.(k) -. w
    | _ -> result.payments.(k)
  in
  match run g ~src ~dst with
  | None -> []
  | Some honest ->
    let violations = ref [] in
    let n = Digraph.n g in
    for _ = 1 to trials do
      let k = Wnet_prng.Rng.int rng n in
      (* Relays only: the source is the payer (its incentives are the
         subject of the Fig. 2 / Algorithm 2 analysis, not of this VCG
         claim) and the destination never transmits. *)
      if k <> dst && k <> src then begin
        (* Deviate node k's whole declared vector. *)
        let lie (u, v, w) =
          if u <> k then (u, v, w)
          else
            match Wnet_prng.Rng.int rng 4 with
            | 0 -> (u, v, w /. 2.0)
            | 1 -> (u, v, w *. (1.0 +. Wnet_prng.Rng.float rng 3.0))
            | 2 -> (u, v, Wnet_prng.Rng.float rng (1.0 +. (2.0 *. w)))
            | _ -> (u, v, infinity)
        in
        let g' = Digraph.create ~n ~links:(List.map lie true_links) in
        match run g' ~src ~dst with
        | None ->
          (* Lying so hard the network disconnects gains nothing. *)
          ()
        | Some deviant ->
          let honest_u = true_utility_of honest k in
          let deviant_u = true_utility_of deviant k in
          if deviant_u > honest_u +. (1e-9 *. (1.0 +. Float.abs honest_u)) then
            violations := (k, deviant_u -. honest_u) :: !violations
      end
    done;
    List.rev !violations
