(** Baseline studies backing the paper's related-work critique (Sec. II-D).

    Two quantitative claims the paper makes in prose, measured on the
    Fig. 3 UDG workload with heterogeneous node costs:

    - {b fixed prices ration}: under a nuglet-style fixed price, rational
      nodes with cost above the price refuse to relay, so delivery
      degrades as prices drop, and even delivered traffic routes over
      socially costlier paths than the LCP;
    - {b watchdogs mislabel}: reputation schemes label battery-exhausted
      cooperative nodes as misbehaving alongside genuinely selfish ones. *)

type nuglet_row = {
  price : float;
  delivery_rate : float;  (** fraction of sources that can reach the AP *)
  social_cost_ratio : float;
      (** mean over deliverable sources of (fixed-price route cost) /
          (LCP cost); [>= 1] and meaningful only where both exist *)
}

val nuglet_sweep :
  ?n:int -> ?prices:float list -> ?instances:int -> ?pool:Wnet_par.t ->
  seed:int -> unit -> nuglet_row list
(** Defaults: [n = 150], prices [{0.5, 1, 2, 4, 8}], 5 instances; node
    costs uniform in [\[0.5, 8)]. *)

type watchdog_row = {
  battery : int;
  selfish_fraction : float;
  wrongful_fraction : float;
      (** fraction of labelled nodes that were merely battery-limited *)
  delivered_fraction : float;
}

val watchdog_sweep :
  ?n:int -> ?batteries:int list -> ?instances:int -> ?pool:Wnet_par.t ->
  seed:int -> unit -> watchdog_row list
(** Defaults: [n = 60], 10% selfish nodes, batteries
    [{5, 20, 80, 320}], 300 sessions per instance. *)

val render_nuglet : nuglet_row list -> string
val render_watchdog : watchdog_row list -> string
