(** Motivation experiment (Sec. I): what cooperation is worth.

    Runs the session-level lifetime simulation under the four regimes on
    identical traffic and reports throughput, first node death and
    residual energy.  The paper's opening argument, quantified: selfish
    non-cooperation collapses throughput; the VCG payments restore the
    altruistic network's throughput while making relaying individually
    rational. *)

type row = {
  regime : string;
  delivered : int;
  blocked : int;
  first_death : int option;
  dead_at_end : int;
  residual_energy : float;
  payments_flow : float;
}

val study :
  ?n:int -> ?budget:float -> ?sessions:int -> ?pool:Wnet_par.t -> seed:int ->
  unit -> row list
(** Defaults: dense UDG with [n = 80] nodes (1200 m square, range
    300 m), costs uniform in [\[0.5, 2)], [budget = 50], 2000 sessions. *)

val render : row list -> string
