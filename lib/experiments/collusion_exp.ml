open Wnet_core

type row = {
  n : int;
  vcg_boost_found : bool;
  vcg_pair_violations : int;
  neighbourhood_inflation_violations : int;
  neighbourhood_capture_violations : int;
  resale_count : int;
  best_resale_saving : float;
}

let resilient_instance rng ~n =
  (* Dense enough that removing a closed neighbourhood rarely disconnects
     the pair — the standing assumption of Theorem 8. *)
  let rec go tries =
    if tries <= 0 then None
    else
      match
        Wnet_topology.Gnp.biconnected_graph rng ~n ~p:(8.0 /. float_of_int n)
          ~cost_lo:1.0 ~cost_hi:10.0 ~max_tries:100
      with
      | None -> go (tries - 1)
      | Some g -> Some g
  in
  go 20

let adjacent_pairs g ~src ~dst ~limit =
  let acc = ref [] and count = ref 0 in
  Wnet_graph.Graph.iter_edges
    (fun u v ->
      if !count < limit && u <> src && u <> dst && v <> src && v <> dst then begin
        acc := (u, v) :: !acc;
        incr count
      end)
    g;
  List.rev !acc

let one_instance rng ~n =
  match resilient_instance rng ~n with
  | None -> None
  | Some g ->
    let dst = 0 in
    let src = 1 + Wnet_prng.Rng.int rng (n - 1) in
    let truth = Wnet_graph.Graph.costs g in
    let pairs = adjacent_pairs g ~src ~dst ~limit:30 in
    let nbhd_resilient =
      Wnet_graph.Connectivity.neighbourhood_resilient g ~src ~dst
    in
    let violations scheme =
      List.length
        (Wnet_mech.Properties.pair_collusion_violations
           (Wnet_prng.Rng.split rng)
           (Payment_scheme.mechanism scheme g ~src ~dst)
           ~truth ~pairs ~trials_per_pair:4 ~lie_bound:50.0)
    in
    let inflation_violations scheme =
      List.length
        (Wnet_mech.Properties.pair_inflation_violations
           (Wnet_prng.Rng.split rng)
           (Payment_scheme.mechanism scheme g ~src ~dst)
           ~truth ~pairs ~trials_per_pair:4)
    in
    let boost =
      Collusion.find_neighbour_boost g ~src ~dst ~boost:50.0 <> None
    in
    let batch = Unicast.all_to_root g ~root:dst in
    let resales =
      Collusion.resale_opportunities g ~root:dst ~payments:(fun v -> batch.(v))
    in
    Some
      {
        n;
        vcg_boost_found = boost;
        vcg_pair_violations = violations Payment_scheme.Vcg;
        neighbourhood_inflation_violations =
          (if nbhd_resilient then inflation_violations Payment_scheme.Neighbourhood
           else 0);
        neighbourhood_capture_violations =
          (if nbhd_resilient then violations Payment_scheme.Neighbourhood else 0);
        resale_count = List.length resales;
        best_resale_saving =
          (match resales with [] -> 0.0 | r :: _ -> r.Collusion.saving);
      }

let study ?(n = 30) ?(instances = 10) ?(pool = Wnet_par.sequential) ~seed () =
  let rng = Wnet_prng.Rng.create seed in
  (* Instances are independent given their RNG streams: pre-split the
     children in the historical order, fan the bodies out over the pool,
     merge positionally — identical rows for every pool size. *)
  let children = Array.init instances (fun _ -> Wnet_prng.Rng.split rng) in
  Wnet_par.map_array pool (fun child -> one_instance child ~n) children
  |> Array.to_list
  |> List.filter_map Fun.id

let render rows =
  let table =
    Wnet_stats.Table.make
      ~headers:
        [
          "n"; "VCG boost found"; "VCG pair gains"; "nbhd inflation gains";
          "nbhd capture gains"; "resale opportunities"; "best saving";
        ]
  in
  List.iter
    (fun r ->
      Wnet_stats.Table.add_row table
        [
          string_of_int r.n;
          string_of_bool r.vcg_boost_found;
          string_of_int r.vcg_pair_violations;
          string_of_int r.neighbourhood_inflation_violations;
          string_of_int r.neighbourhood_capture_violations;
          string_of_int r.resale_count;
          Printf.sprintf "%.3f" r.best_resale_saving;
        ])
    rows;
  Wnet_stats.Table.render table
