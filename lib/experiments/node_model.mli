(** Ablation: overpayment under the node-cost model (Sec. III-A) with
    i.i.d. uniform relay costs — "the cost of each node is chosen
    independently and uniformly from a range" (Sec. III-G's description
    of the setting) — on the same UDG topologies as Fig. 3.

    Comparing this against the link-cost panels separates how much of the
    overpayment behaviour comes from the mechanism (the VCG pivot) versus
    from the cost model (distance-driven link costs). *)

type point = {
  n : int;
  instances : int;
  study : Wnet_core.Overpayment.study;
}

val sweep :
  ?instances:int ->
  ?ns:int list ->
  ?cost_lo:float ->
  ?cost_hi:float ->
  ?pool:Wnet_par.t ->
  seed:int ->
  unit ->
  point list
(** Defaults: costs uniform in [\[1, 10)], [ns = {100, ..., 500}],
    10 instances.  [?pool] as in {!Fig3.overpayment_sweep}:
    bit-identical results for every pool size. *)

val render : title:string -> point list -> string
