open Wnet_core

type model =
  | Udg of { kappa : float }
  | Random_range of { kappa : float }

let model_name m =
  match m with
  | Udg { kappa } -> Printf.sprintf "UDG (range 300m, cost d^%g)" kappa
  | Random_range { kappa } ->
    Printf.sprintf "random range 100-500m (cost c1 + c2*d^%g)" kappa

type point = {
  n : int;
  instances : int;
  study : Overpayment.study;
}

let instance_graph rng model ~n =
  match model with
  | Udg { kappa } ->
    let t = Wnet_topology.Udg.paper_instance rng ~n in
    Wnet_topology.Udg.link_graph t
      ~model:(Wnet_geom.Power.path_loss_only ~kappa)
  | Random_range { kappa } ->
    (Wnet_topology.Random_range.paper_instance rng ~n ~kappa).Wnet_topology.Random_range.graph

let instance_samples rng model ~n =
  let g = instance_graph rng model ~n in
  Overpayment.of_link_batch (Link_cost.all_to_root g ~root:0)

let default_ns = [ 100; 150; 200; 250; 300; 350; 400; 450; 500 ]

(* Instances are independent given their RNG streams, so a sweep
   pre-splits the [instances] children in order (instance code never
   touches the parent stream) and fans the instance bodies out over the
   pool.  Positional merging then rebuilds exactly the sample order of
   the historical sequential loop — later instances first — so pooled
   statistics are bit-identical for every pool size. *)
let pooled_instances pool rng ~instances body =
  let children = Array.init instances (fun _ -> Wnet_prng.Rng.split rng) in
  let per_instance = Wnet_par.map_array pool body children in
  Array.fold_left (fun acc samples -> samples @ acc) [] per_instance

let overpayment_sweep ?(instances = 10) ?(ns = default_ns)
    ?(pool = Wnet_par.sequential) ~seed model =
  let rng = Wnet_prng.Rng.create seed in
  List.map
    (fun n ->
      let samples =
        pooled_instances pool rng ~instances (fun child ->
            instance_samples child model ~n)
      in
      { n; instances; study = Overpayment.study samples })
    ns

let hop_profile ?(instances = 10) ?(n = 500) ?(pool = Wnet_par.sequential)
    ~seed model =
  let rng = Wnet_prng.Rng.create seed in
  let samples =
    pooled_instances pool rng ~instances (fun child ->
        instance_samples child model ~n)
  in
  Overpayment.by_hop samples

let sweep_table points =
  let table =
    Wnet_stats.Table.make ~headers:[ "n"; "instances"; "IOR"; "TOR"; "worst"; "sources"; "skipped" ]
  in
  List.iter
    (fun p ->
      Wnet_stats.Table.add_row table
        [
          string_of_int p.n;
          string_of_int p.instances;
          Printf.sprintf "%.4f" p.study.Overpayment.ior;
          Printf.sprintf "%.4f" p.study.Overpayment.tor;
          Printf.sprintf "%.4f" p.study.Overpayment.worst;
          string_of_int (List.length p.study.Overpayment.samples);
          string_of_int p.study.Overpayment.skipped;
        ])
    points;
  table

let hop_table buckets =
  let table =
    Wnet_stats.Table.make ~headers:[ "hops"; "sources"; "mean ratio"; "max ratio" ]
  in
  List.iter
    (fun (b : Overpayment.hop_bucket) ->
      Wnet_stats.Table.add_row table
        [
          string_of_int b.Overpayment.hop;
          string_of_int b.Overpayment.count;
          Printf.sprintf "%.4f" b.Overpayment.mean_ratio;
          Printf.sprintf "%.4f" b.Overpayment.max_ratio;
        ])
    buckets;
  table

let render_sweep ~title points =
  let table = sweep_table points in
  let series label f =
    {
      Wnet_stats.Ascii_chart.label;
      points = List.map (fun p -> (float_of_int p.n, f p.study)) points;
    }
  in
  title ^ "\n" ^ Wnet_stats.Table.render table ^ "\n\n"
  ^ Wnet_stats.Ascii_chart.render
      ~title:"overpayment ratio vs n   [i]=IOR [t]=TOR [w]=worst"
      [
        series 'i' (fun s -> s.Overpayment.ior);
        series 't' (fun s -> s.Overpayment.tor);
        series 'w' (fun s -> s.Overpayment.worst);
      ]

let render_hop_profile ~title buckets =
  let table = hop_table buckets in
  let series label f =
    {
      Wnet_stats.Ascii_chart.label;
      points =
        List.map
          (fun (b : Overpayment.hop_bucket) -> (float_of_int b.Overpayment.hop, f b))
          buckets;
    }
  in
  title ^ "\n" ^ Wnet_stats.Table.render table ^ "\n\n"
  ^ Wnet_stats.Ascii_chart.render
      ~title:"overpayment ratio vs hop distance   [m]=mean [x]=max"
      [
        series 'm' (fun b -> b.Overpayment.mean_ratio);
        series 'x' (fun b -> b.Overpayment.max_ratio);
      ]
