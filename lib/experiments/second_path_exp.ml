type bucket = {
  hop : int;
  count : int;
  mean_gap : float;
  max_gap : float;
}

let study ?(n = 150) ?(instances = 5) ?(pool = Wnet_par.sequential) ~seed () =
  let rng = Wnet_prng.Rng.create seed in
  (* The Yen sweeps are the expensive part and instances are independent
     given their RNG streams: pre-split the children in order, fan the
     per-instance hop tables out over the pool, then merge them
     positionally — instance order is fixed, so the result is identical
     for every pool size.  The stealing map (rather than a static chunk)
     lets Yen's per-round spur Dijkstras fan out *within* an instance
     too: each instance task re-enters the same pool via
     [Ksp.k_shortest_paths ~pool], and idle domains steal spur tasks
     instead of waiting at the instance barrier. *)
  let children = Array.init instances (fun _ -> Wnet_prng.Rng.split rng) in
  let tables =
    Wnet_par.map_array_stealing pool
      (fun child ->
        let t = Wnet_topology.Udg.paper_instance child ~n in
        let costs =
          Wnet_topology.Udg.uniform_node_costs child ~n ~lo:1.0 ~hi:10.0
        in
        let g = Wnet_topology.Udg.node_graph t ~costs in
        let tbl = Hashtbl.create 32 in
        for src = 1 to n - 1 do
          match Wnet_graph.Ksp.k_shortest_paths ~pool g ~src ~dst:0 ~k:2 with
          | [ best; second ] ->
            let c1 = Wnet_graph.Path.relay_cost g best in
            if c1 > 0.0 then begin
              let c2 = Wnet_graph.Path.relay_cost g second in
              let gap = (c2 -. c1) /. c1 in
              let hop = Wnet_graph.Path.hops best in
              let sum, mx, cnt =
                Option.value (Hashtbl.find_opt tbl hop)
                  ~default:(0.0, neg_infinity, 0)
              in
              Hashtbl.replace tbl hop (sum +. gap, Float.max mx gap, cnt + 1)
            end
          | _ -> ()
        done;
        tbl)
      children
  in
  let tbl = Hashtbl.create 32 in
  Array.iter
    (Hashtbl.iter (fun hop (sum, mx, cnt) ->
         let sum0, mx0, cnt0 =
           Option.value (Hashtbl.find_opt tbl hop) ~default:(0.0, neg_infinity, 0)
         in
         Hashtbl.replace tbl hop (sum0 +. sum, Float.max mx0 mx, cnt0 + cnt)))
    tables;
  Hashtbl.fold
    (fun hop (sum, mx, cnt) acc ->
      { hop; count = cnt; mean_gap = sum /. float_of_int cnt; max_gap = mx } :: acc)
    tbl []
  |> List.sort (fun a b -> compare a.hop b.hop)

let render buckets =
  let table =
    Wnet_stats.Table.make
      ~headers:[ "hops"; "sources"; "mean (c2-c1)/c1"; "max (c2-c1)/c1" ]
  in
  List.iter
    (fun b ->
      Wnet_stats.Table.add_row table
        [
          string_of_int b.hop;
          string_of_int b.count;
          Printf.sprintf "%.4f" b.mean_gap;
          Printf.sprintf "%.4f" b.max_gap;
        ])
    buckets;
  Wnet_stats.Table.render table
