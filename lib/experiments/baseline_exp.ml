type nuglet_row = {
  price : float;
  delivery_rate : float;
  social_cost_ratio : float;
}

let dense_udg rng ~n ~cost_lo ~cost_hi =
  (* 1200 m square at range 300 m: connected with high probability, so
     the measurements isolate pricing effects from plain disconnection. *)
  let t =
    Wnet_topology.Udg.generate rng ~region:(Wnet_geom.Region.square 1200.0) ~n
      ~range:300.0
  in
  let costs = Wnet_topology.Udg.uniform_node_costs rng ~n ~lo:cost_lo ~hi:cost_hi in
  Wnet_topology.Udg.node_graph t ~costs

let nuglet_instance rng ~n = dense_udg rng ~n ~cost_lo:0.5 ~cost_hi:8.0

let nuglet_sweep ?(n = 150) ?(prices = [ 0.5; 1.0; 2.0; 4.0; 8.0 ]) ?(instances = 5)
    ?(pool = Wnet_par.sequential) ~seed () =
  let rng = Wnet_prng.Rng.create seed in
  let graphs =
    List.init instances (fun _ -> nuglet_instance (Wnet_prng.Rng.split rng) ~n)
  in
  (* Price points are deterministic given the pre-built graphs (no RNG in
     the measurement loop), so they fan out over the pool and merge
     positionally — identical rows for every pool size. *)
  Wnet_par.map_array pool
    (fun price ->
      let delivered = ref 0 and total = ref 0 and ratios = ref [] in
      List.iter
        (fun g ->
          let lcp = Wnet_core.Unicast.all_to_root g ~root:0 in
          for src = 1 to n - 1 do
            match lcp.(src) with
            | None -> () (* disconnected from the AP outright *)
            | Some vcg ->
              incr total;
              let o = Wnet_baselines.Nuglet.run g ~price ~src ~dst:0 in
              (match o.Wnet_baselines.Nuglet.path with
              | None -> ()
              | Some _ ->
                incr delivered;
                let base = vcg.Wnet_core.Unicast.lcp_cost in
                if base > 0.0 then
                  ratios := (o.Wnet_baselines.Nuglet.social_cost /. base) :: !ratios)
          done)
        graphs;
      {
        price;
        delivery_rate =
          (if !total = 0 then nan
           else float_of_int !delivered /. float_of_int !total);
        social_cost_ratio = Wnet_stats.Summary.mean !ratios;
      })
    (Array.of_list prices)
  |> Array.to_list

type watchdog_row = {
  battery : int;
  selfish_fraction : float;
  wrongful_fraction : float;
  delivered_fraction : float;
}

let watchdog_sweep ?(n = 60) ?(batteries = [ 5; 20; 80; 320 ]) ?(instances = 5)
    ?(pool = Wnet_par.sequential) ~seed () =
  let rng = Wnet_prng.Rng.create seed in
  let selfish_fraction = 0.1 in
  (* The historical loop split one child per (battery, instance) in
     nested order; pre-split them all in that order, then fan battery
     points out over the pool — identical rows for every pool size. *)
  let children =
    Array.of_list
      (List.map
         (fun battery ->
           (battery, Array.init instances (fun _ -> Wnet_prng.Rng.split rng)))
         batteries)
  in
  Wnet_par.map_array pool
    (fun (battery, kids) ->
      let wrongful = ref 0 and labelled = ref 0 in
      let delivered = ref 0 and sessions_total = ref 0 in
      for i = 0 to instances - 1 do
        let child = kids.(i) in
        let g = dense_udg child ~n ~cost_lo:1.0 ~cost_hi:2.0 in
        let kinds =
          Array.init n (fun _ ->
              if Wnet_prng.Rng.bernoulli child selfish_fraction then
                Wnet_baselines.Watchdog.Selfish
              else Wnet_baselines.Watchdog.Cooperative battery)
        in
        let sessions = 300 in
        let rep =
          Wnet_baselines.Watchdog.run child g ~kinds:(fun v -> kinds.(v)) ~root:0
            ~sessions
        in
        wrongful := !wrongful + rep.Wnet_baselines.Watchdog.wrongful;
        labelled :=
          !labelled + rep.Wnet_baselines.Watchdog.wrongful
          + rep.Wnet_baselines.Watchdog.rightful;
        delivered := !delivered + rep.Wnet_baselines.Watchdog.delivered;
        sessions_total := !sessions_total + sessions
      done;
      {
        battery;
        selfish_fraction;
        wrongful_fraction =
          float_of_int !wrongful /. float_of_int (max 1 !labelled);
        delivered_fraction =
          float_of_int !delivered /. float_of_int (max 1 !sessions_total);
      })
    children
  |> Array.to_list

let render_nuglet rows =
  let table =
    Wnet_stats.Table.make
      ~headers:[ "price"; "delivery rate"; "social cost / LCP cost" ]
  in
  List.iter
    (fun r ->
      Wnet_stats.Table.add_row table
        [
          Printf.sprintf "%.1f" r.price;
          Printf.sprintf "%.3f" r.delivery_rate;
          Printf.sprintf "%.3f" r.social_cost_ratio;
        ])
    rows;
  Wnet_stats.Table.render table

let render_watchdog rows =
  let table =
    Wnet_stats.Table.make
      ~headers:[ "battery"; "selfish frac"; "wrongful label frac"; "delivered frac" ]
  in
  List.iter
    (fun r ->
      Wnet_stats.Table.add_row table
        [
          string_of_int r.battery;
          Printf.sprintf "%.2f" r.selfish_fraction;
          Printf.sprintf "%.3f" r.wrongful_fraction;
          Printf.sprintf "%.3f" r.delivered_fraction;
        ])
    rows;
  Wnet_stats.Table.render table
