(** Regeneration of the paper's Figure 3 (panels (a)–(f), Sec. III-G).

    Each panel reports overpayment ratios for every-node-to-access-point
    unicast over random instances:

    - (a): IOR vs TOR, UDG model, kappa = 2 — the two curves coincide
      and stay flat as [n] grows;
    - (b): IOR, TOR and the worst ratio, UDG, kappa = 2;
    - (c): same as (b) with kappa = 2.5;
    - (d): overpayment ratio against hop distance from the source to the
      access point (mean flat, max decreasing), UDG, kappa = 2;
    - (e): IOR, TOR, worst for the random-range digraph model, kappa = 2;
    - (f): same as (e) with kappa = 2.5.

    The models are exactly the paper's: UDG — 2000 m square, common range
    300 m, link cost [d^kappa]; random-range — per-node range in
    [\[100 m, 500 m\]], link cost [c1 + c2 d^kappa], [c1 ∈ [300, 500]],
    [c2 ∈ [10, 50]].  Both run the Sec. III-F link-cost mechanism with
    the access point [v_0] as destination.  Sources disconnected from the
    access point (possible in sparse draws) are skipped, as are sources
    adjacent to it (their relay cost is 0). *)

type model =
  | Udg of { kappa : float }
  | Random_range of { kappa : float }

val model_name : model -> string

val default_ns : int list
(** The paper's node counts: [100, 150, ..., 500]. *)

val pooled_instances :
  Wnet_par.t -> Wnet_prng.Rng.t -> instances:int ->
  (Wnet_prng.Rng.t -> 'a list) -> 'a list
(** [pooled_instances pool rng ~instances body] pre-splits [instances]
    child streams off [rng] in order, runs [body child] for each on the
    pool, and concatenates the per-instance lists in the historical
    accumulation order (later instances first).  [body] must draw only
    from its child.  The shared instance-loop skeleton of the sweeps
    here and in {!Node_model}; bit-identical for every pool size. *)

type point = {
  n : int;
  instances : int;
  study : Wnet_core.Overpayment.study;  (** pooled over the instances *)
}

val overpayment_sweep :
  ?instances:int ->
  ?ns:int list ->
  ?pool:Wnet_par.t ->
  seed:int ->
  model ->
  point list
(** Defaults: 10 instances (the paper uses 100 — pass [~instances:100]
    for the full run) per [n ∈ {100, 150, ..., 500}].

    [?pool] runs the random instances on a {!Wnet_par} domain pool.  The
    per-instance RNG children are pre-split in order and results merged
    positionally, so every pool size produces the sequential sweep bit
    for bit. *)

val hop_profile :
  ?instances:int ->
  ?n:int ->
  ?pool:Wnet_par.t ->
  seed:int ->
  model ->
  Wnet_core.Overpayment.hop_bucket list
(** Panel (d): pooled per-hop buckets (default [n = 500]).  [?pool] as
    in {!overpayment_sweep}. *)

val sweep_table : point list -> Wnet_stats.Table.t
(** The tabular form of a sweep (n, IOR, TOR, worst, ...), e.g. for CSV
    export via {!Wnet_stats.Table.to_csv}. *)

val hop_table : Wnet_core.Overpayment.hop_bucket list -> Wnet_stats.Table.t

val render_sweep : title:string -> point list -> string
(** Table plus an ASCII chart of IOR [i], TOR [t] and worst [w]
    against [n]. *)

val render_hop_profile : title:string -> Wnet_core.Overpayment.hop_bucket list -> string
