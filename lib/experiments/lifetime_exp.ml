type row = {
  regime : string;
  delivered : int;
  blocked : int;
  first_death : int option;
  dead_at_end : int;
  residual_energy : float;
  payments_flow : float;
}

let regime_name (r : Wnet_lifetime.Lifetime_sim.regime) =
  match r with
  | Wnet_lifetime.Lifetime_sim.Paid_vcg -> "paid VCG"
  | Wnet_lifetime.Lifetime_sim.Selfish -> "selfish"
  | Wnet_lifetime.Lifetime_sim.Fixed_price p -> Printf.sprintf "fixed price %.1f" p
  | Wnet_lifetime.Lifetime_sim.Altruistic -> "altruistic"

let study ?(n = 80) ?(budget = 50.0) ?(sessions = 2000)
    ?(pool = Wnet_par.sequential) ~seed () =
  let rng = Wnet_prng.Rng.create seed in
  let t =
    Wnet_topology.Udg.generate rng ~region:(Wnet_geom.Region.square 1200.0) ~n
      ~range:300.0
  in
  let costs = Wnet_topology.Udg.uniform_node_costs rng ~n ~lo:0.5 ~hi:2.0 in
  let g = Wnet_topology.Udg.node_graph t ~costs in
  (* Each regime replays identical traffic from a copy of the same RNG
     state ([compare_regimes]'s contract), so the four simulations are
     independent: pre-copy the streams, fan the regimes out over the
     pool, merge positionally — same outcomes for every pool size. *)
  let regimes =
    [|
      Wnet_lifetime.Lifetime_sim.Paid_vcg;
      Wnet_lifetime.Lifetime_sim.Altruistic;
      Wnet_lifetime.Lifetime_sim.Fixed_price 1.0;
      Wnet_lifetime.Lifetime_sim.Selfish;
    |]
  in
  let children =
    Array.map (fun r -> (r, Wnet_prng.Rng.copy rng)) regimes
  in
  Wnet_par.map_array pool
    (fun (regime, child) ->
      Wnet_lifetime.Lifetime_sim.run child g ~root:0 ~budget ~sessions regime)
    children
  |> Array.to_list
  |> List.map (fun (o : Wnet_lifetime.Lifetime_sim.outcome) ->
         {
           regime = regime_name o.Wnet_lifetime.Lifetime_sim.regime;
           delivered = o.Wnet_lifetime.Lifetime_sim.delivered;
           blocked = o.Wnet_lifetime.Lifetime_sim.blocked;
           first_death = o.Wnet_lifetime.Lifetime_sim.first_death;
           dead_at_end = o.Wnet_lifetime.Lifetime_sim.dead_at_end;
           residual_energy = o.Wnet_lifetime.Lifetime_sim.residual_energy;
           payments_flow = o.Wnet_lifetime.Lifetime_sim.payments_flow;
         })

let render rows =
  let table =
    Wnet_stats.Table.make
      ~headers:
        [
          "regime"; "delivered"; "blocked"; "first death"; "dead"; "residual energy";
          "payment flow";
        ]
  in
  List.iter
    (fun r ->
      Wnet_stats.Table.add_row table
        [
          r.regime;
          string_of_int r.delivered;
          string_of_int r.blocked;
          (match r.first_death with None -> "never" | Some s -> "session " ^ string_of_int s);
          string_of_int r.dead_at_end;
          Printf.sprintf "%.0f" r.residual_energy;
          Printf.sprintf "%.0f" r.payments_flow;
        ])
    rows;
  Wnet_stats.Table.render table
