(** Collusion experiments (Sec. III-E and III-H).

    Three claims, demonstrated empirically on random biconnected
    instances:

    - plain VCG is {e not} 2-agents strategyproof (Theorem 7's setting):
      a relay plus a neighbour on its replacement path can jointly gain;
    - the neighbourhood payment scheme [p̃] resists exactly that
      collusion: the same adversarial search finds no gaining neighbour
      pair (its pivot ignores the whole neighbourhood's declarations);
    - resale-the-path opportunities (Sec. III-H) exist under VCG in a
      sizeable fraction of random instances — the scheme is truthful per
      unicast, yet the payment vector is not "resale-proof". *)

type row = {
  n : int;
  vcg_boost_found : bool;
      (** a profitable relay+neighbour boost against plain VCG exists *)
  vcg_pair_violations : int;
      (** random joint lies by adjacent pairs that strictly gained (VCG) *)
  neighbourhood_inflation_violations : int;
      (** upward-only joint lies against the neighbourhood scheme — the
          attack class [p̃] provably resists; expected 0 *)
  neighbourhood_capture_violations : int;
      (** unrestricted joint lies against the neighbourhood scheme; may
          be positive via joint under-bidding (route capture), the
          residual allowed by Theorem 7 — see EXPERIMENTS.md *)
  resale_count : int;  (** sources with a profitable resale proxy *)
  best_resale_saving : float;  (** 0 when none *)
}

val study :
  ?n:int -> ?instances:int -> ?pool:Wnet_par.t -> seed:int -> unit -> row list
(** Instances fan out over [?pool] (default sequential); rows are
    identical for every pool size. *)

val render : row list -> string
