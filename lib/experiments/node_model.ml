open Wnet_core

type point = {
  n : int;
  instances : int;
  study : Overpayment.study;
}

let sweep ?(instances = 10) ?(ns = Fig3.default_ns) ?(cost_lo = 1.0)
    ?(cost_hi = 10.0) ?(pool = Wnet_par.sequential) ~seed () =
  let rng = Wnet_prng.Rng.create seed in
  List.map
    (fun n ->
      let samples =
        Fig3.pooled_instances pool rng ~instances (fun child ->
            let t = Wnet_topology.Udg.paper_instance child ~n in
            let costs =
              Wnet_topology.Udg.uniform_node_costs child ~n ~lo:cost_lo
                ~hi:cost_hi
            in
            let g = Wnet_topology.Udg.node_graph t ~costs in
            let results =
              Unicast.all_to_root g ~root:0
              |> Array.to_list |> List.filter_map Fun.id
            in
            Overpayment.of_unicast results)
      in
      { n; instances; study = Overpayment.study samples })
    ns

let render ~title points =
  let table =
    Wnet_stats.Table.make
      ~headers:[ "n"; "instances"; "IOR"; "TOR"; "worst"; "sources"; "skipped" ]
  in
  List.iter
    (fun p ->
      Wnet_stats.Table.add_row table
        [
          string_of_int p.n;
          string_of_int p.instances;
          Printf.sprintf "%.4f" p.study.Overpayment.ior;
          Printf.sprintf "%.4f" p.study.Overpayment.tor;
          Printf.sprintf "%.4f" p.study.Overpayment.worst;
          string_of_int (List.length p.study.Overpayment.samples);
          string_of_int p.study.Overpayment.skipped;
        ])
    points;
  title ^ "\n" ^ Wnet_stats.Table.render table
