(** Testing the paper's {e explanation} of Figure 3(d).

    The paper attributes the decreasing worst-case overpayment to the
    second shortest path: close to the access point it "could be much
    larger than the shortest path"; far away its cost is "almost the
    same".  Using Yen's algorithm we measure, per source, the relative
    gap [(c2 - c1) / c1] between the best and second-best simple paths,
    bucketed by hop distance — if the paper's explanation is right, the
    max (and mean) relative gap must decay with hop distance, mirroring
    the max overpayment curve. *)

type bucket = {
  hop : int;
  count : int;
  mean_gap : float;  (** mean relative gap [(c2 - c1)/c1] *)
  max_gap : float;
}

val study :
  ?n:int -> ?instances:int -> ?pool:Wnet_par.t -> seed:int -> unit ->
  bucket list
(** UDG (paper region, range 300 m) with uniform node costs in
    [\[1, 10)]; all sources to the access point.  Sources with no second
    simple path or a zero-cost LCP are skipped.  Defaults: [n = 150],
    5 instances. *)

val render : bucket list -> string
