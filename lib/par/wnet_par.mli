(** A fixed-size domain pool for deterministic data parallelism.

    The batch payment engine fans the per-relay avoidance Dijkstras and
    the per-instance experiment loops out over OCaml 5 domains.  The pool
    here is deliberately minimal: a fixed set of worker domains, static
    chunking (no work stealing), and {e positional} result merging, so
    that every combinator returns exactly what its sequential fallback
    would — float for float, bit for bit — as long as the per-element
    function is itself deterministic.  Determinism is the contract the
    mechanism experiments rely on (a sweep must reproduce from its seed
    regardless of how many domains ran it).

    Built on [Domain], [Mutex] and [Condition] from the standard library
    only; no external dependencies.

    A pool of size 1 spawns no domains and runs everything inline in the
    caller, so sequential code pays nothing for the abstraction.

    Pools are {e single-owner}: only one {e top-level} call may be in
    flight at a time.  Nested parallelism on the same pool is supported
    through the work-stealing layer ({!submit}/{!await},
    {!map_array_stealing}): a task running inside a stealing call may
    itself fan out on the same pool, and idle participants backfill by
    stealing.  The static-chunk combinators ([parallel_for],
    [map_array*], [map_reduce]) must still not be nested. *)

type t
(** A pool of [size t] participants: the calling domain plus
    [size t - 1] worker domains. *)

val create : ?domains:int -> unit -> t
(** [create ~domains ()] starts a pool with [domains] total participants
    ([domains - 1] spawned worker domains).  Defaults to
    {!default_domains}.
    @raise Invalid_argument if [domains < 1]. *)

val default_domains : unit -> int
(** Pool sizing policy: the [WNET_DOMAINS] environment variable when set
    (clamped to [\[1, 128\]]), otherwise
    [Domain.recommended_domain_count ()].
    @raise Invalid_argument if [WNET_DOMAINS] is set but not a positive
    integer. *)

val size : t -> int

val sequential : t
(** A shared size-1 pool: every combinator degrades to its inline
    sequential loop.  The default for all [?pool] arguments downstream. *)

val shutdown : t -> unit
(** Stops and joins the worker domains.  Idempotent; the pool must not
    be used afterwards.  [sequential] pools have nothing to stop. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and shuts it down
    afterwards, whether [f] returns or raises. *)

val parallel_for : t -> lo:int -> hi:int -> (int -> unit) -> unit
(** [parallel_for pool ~lo ~hi body] runs [body i] for every
    [i ∈ \[lo, hi)], split into [size pool] contiguous chunks, one per
    participant.  Iterations must be independent (they may write to
    disjoint locations of shared arrays).  If any [body] raises, one of
    the exceptions is re-raised in the caller after all chunks finish. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array pool f a] is [Array.map f a], computed in parallel.
    Results are written positionally, so the output is identical for
    every pool size when [f] is deterministic. *)

val map_array_with :
  t -> init:(unit -> 's) -> ('s -> 'a -> 'b) -> 'a array -> 'b array
(** [map_array_with pool ~init f a] is {!map_array} with a per-chunk
    state created by [init] — the hook for reusable scratch workspaces
    (e.g. {!Wnet_graph.Dijkstra.make_scratch}): each participant
    allocates one state and threads it through its whole chunk.  [f]'s
    {e result} must not depend on the state's prior contents, or
    determinism across pool sizes is lost. *)

val map_array_pooled :
  t -> states:'s array -> ('s -> 'a -> 'b) -> 'a array -> 'b array
(** [map_array_pooled pool ~states f a] is {!map_array_with} with
    {e caller-owned} states: participant [slot] threads [states.(slot)]
    through its chunk.  Unlike [map_array_with]'s [init], the states
    survive the call, so a long-running session can keep one scratch
    workspace per domain alive across requests.  [f]'s result must not
    depend on a state's prior contents (same contract as
    {!map_array_with}); each state is used by at most one domain at a
    time.
    @raise Invalid_argument when fewer states than participants are
    supplied. *)

(** {1 Work stealing}

    The combinators above assign elements to participants statically,
    which wastes domains when element costs are wildly uneven (one huge
    avoidance repair, one long Yen spur round).  The stealing layer
    keeps the determinism contract — results land by index; only the
    {e execution} order (and which scratch state computes which
    element) is scheduling-dependent — while letting idle participants
    steal queued tasks from busy ones.  Each participant owns a bounded
    Chase–Lev deque (owner pushes/pops LIFO at the bottom, thieves CAS
    the top); a full deque runs the task inline instead of blocking. *)

(** The bounded Chase–Lev deque under the stealing layer, exposed for
    the per-primitive microbench suite ([bench/micro/bench_deque]) and
    anyone who wants the raw structure.  The scheduler's own usage
    contract applies: {!Deque.push}/{!Deque.pop} from the owning domain
    only, {!Deque.steal} from anywhere. *)
module Deque : sig
  type 'a t

  val create : int -> 'a t
  (** [create capacity] with [capacity] a power of two. *)

  val push : 'a t -> 'a -> bool
  (** Owner only.  [false] means full — run the element inline. *)

  val pop : 'a t -> 'a option
  (** Owner only.  Most recently pushed element (LIFO). *)

  val steal : 'a t -> 'a option
  (** Any domain.  Oldest element (FIFO); [None] on a lost race. *)
end

type 'a task
(** A handle to a unit of work scheduled with {!submit}. *)

val submit : t -> (unit -> 'a) -> 'a task
(** [submit pool f] schedules [f] for execution.  Inside a stealing
    call on [pool], the task goes on the calling participant's deque
    (stealable by idle participants); anywhere else — including size-1
    pools — it runs inline immediately, the degenerate deterministic
    schedule.  Exceptions raised by [f] are captured in the handle and
    re-raised by {!await}. *)

val await : t -> 'a task -> 'a
(** [await pool tk] returns [tk]'s result, helping with queued work
    (own deque first, then stealing) while it waits.
    @raise exn whatever the task's function raised. *)

val map_array_stealing : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array_stealing pool f a] is {!map_array} scheduled as one
    stolen task per element: every participant seeds its deque with its
    static chunk, so the uniform case keeps chunked locality, and
    stealing only redistributes the stragglers.  May be called from
    inside another stealing call on the same pool (the nested fan-out
    is pushed onto the caller's own deque).  Results land by index:
    output is identical for every pool size when [f] is
    deterministic. *)

val map_array_stealing_pooled :
  t -> states:'s array -> ('s -> 'a -> 'b) -> 'a array -> 'b array
(** [map_array_stealing_pooled pool ~states f a] is
    {!map_array_stealing} with caller-owned per-participant states, as
    in {!map_array_pooled}.  A stolen task uses the {e executing}
    participant's state, so which state computes which element is
    scheduling-dependent: [f]'s result must not depend on the state's
    prior contents (same contract as {!map_array_pooled}).
    @raise Invalid_argument when fewer states than participants are
    supplied. *)

val iter_stealing : t -> lo:int -> hi:int -> (int -> unit) -> unit
(** [iter_stealing pool ~lo ~hi body] runs [body i] for every
    [i ∈ \[lo, hi)] as one stolen task per index: {!parallel_for}'s
    contract (independent iterations writing to disjoint locations) with
    {!map_array_stealing}'s scheduling (static chunks seed the deques,
    idle participants backfill stragglers).  This is what drives the
    per-round node fan-out of the distributed simulation engine, where
    a few hub nodes can carry most of a round's inbox traffic.  May be
    nested inside another stealing call on the same pool.  If any [body]
    raises, one exception is re-raised after all indices finish. *)

type stats = { tasks_executed : int; tasks_stolen : int }
(** Scheduler counters, cumulative over the pool's lifetime:
    [tasks_executed] counts every task run through the stealing layer
    (inline fallbacks included), [tasks_stolen] the subset executed by
    a participant other than the one that queued them. *)

val stats : t -> stats

val map_reduce :
  t -> map:('a -> 'b) -> combine:('b -> 'b -> 'b) -> init:'b -> 'a array -> 'b
(** [map_reduce pool ~map ~combine ~init a] folds [combine] over
    [map a.(i)] — each chunk is folded left-to-right, then the chunk
    results are folded in chunk order.  This equals the sequential
    [Array.fold_left] for every pool size when [combine] is associative;
    for floating-point sums it is deterministic for a {e fixed} pool
    size but may differ across pool sizes by rounding. *)
