(* A fixed-size domain pool with static chunking.

   Work distribution is deliberately dumb: a job is a function of the
   participant slot, each slot processes one contiguous chunk, and the
   caller is participant 0.  No work stealing, no task queue — the
   workloads here (one avoidance Dijkstra per relay, one mechanism run
   per instance) are uniform enough that static chunks keep every domain
   busy, and the fixed assignment is what makes results reproducible
   regardless of scheduling.

   Synchronisation is a single mutex plus two condition variables: the
   generation counter tells workers a new job is posted; the pending
   counter tells the caller every worker chunk has finished.  The first
   exception raised by any chunk is stored and re-raised in the caller
   once the job has fully drained (workers never die on a job failure). *)

type t = {
  size : int;
  lock : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable generation : int;
  mutable job : (int -> unit) option;
  mutable pending : int;
  mutable failure : exn option;
  mutable stop : bool;
  mutable domains : unit Domain.t array;
}

let size t = t.size

let default_domains () =
  match Sys.getenv_opt "WNET_DOMAINS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some k when k >= 1 -> min k 128
     | _ -> invalid_arg "WNET_DOMAINS must be a positive integer")
  | None -> max 1 (Domain.recommended_domain_count ())

let make ~size =
  {
    size;
    lock = Mutex.create ();
    work_ready = Condition.create ();
    work_done = Condition.create ();
    generation = 0;
    job = None;
    pending = 0;
    failure = None;
    stop = false;
    domains = [||];
  }

let sequential = make ~size:1

let record_failure pool e =
  Mutex.lock pool.lock;
  if pool.failure = None then pool.failure <- Some e;
  Mutex.unlock pool.lock

let worker pool slot =
  let seen = ref 0 in
  Mutex.lock pool.lock;
  let rec loop () =
    if pool.stop then Mutex.unlock pool.lock
    else if pool.generation = !seen then begin
      Condition.wait pool.work_ready pool.lock;
      loop ()
    end
    else begin
      seen := pool.generation;
      let job = pool.job in
      Mutex.unlock pool.lock;
      (match job with
      | None -> ()
      | Some f -> ( try f slot with e -> record_failure pool e));
      Mutex.lock pool.lock;
      pool.pending <- pool.pending - 1;
      if pool.pending = 0 then Condition.broadcast pool.work_done;
      loop ()
    end
  in
  loop ()

let create ?domains () =
  let size =
    match domains with
    | None -> default_domains ()
    | Some k when k >= 1 -> k
    | Some _ -> invalid_arg "Wnet_par.create: domains must be >= 1"
  in
  let pool = make ~size in
  if size > 1 then
    pool.domains <-
      Array.init (size - 1) (fun i ->
          Domain.spawn (fun () -> worker pool (i + 1)));
  pool

let shutdown pool =
  if Array.length pool.domains > 0 then begin
    Mutex.lock pool.lock;
    pool.stop <- true;
    Condition.broadcast pool.work_ready;
    Mutex.unlock pool.lock;
    Array.iter Domain.join pool.domains;
    pool.domains <- [||]
  end

let with_pool ?domains f =
  let pool = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* Runs [f slot] on every participant and waits for all of them.  The
   caller takes slot 0 so a size-1 pool is a plain call. *)
let run_job pool f =
  if pool.size = 1 then f 0
  else begin
    if pool.stop then invalid_arg "Wnet_par: pool is shut down";
    Mutex.lock pool.lock;
    pool.job <- Some f;
    pool.failure <- None;
    pool.pending <- pool.size - 1;
    pool.generation <- pool.generation + 1;
    Condition.broadcast pool.work_ready;
    Mutex.unlock pool.lock;
    (try f 0 with e -> record_failure pool e);
    Mutex.lock pool.lock;
    while pool.pending > 0 do
      Condition.wait pool.work_done pool.lock
    done;
    pool.job <- None;
    let failure = pool.failure in
    pool.failure <- None;
    Mutex.unlock pool.lock;
    match failure with Some e -> raise e | None -> ()
  end

(* Chunk [i] of [parts] over [lo, hi): contiguous, sizes differing by at
   most one, earlier chunks taking the remainder. *)
let chunk ~lo ~hi parts i =
  let len = hi - lo in
  let base = len / parts and rem = len mod parts in
  let start = lo + (i * base) + min i rem in
  let stop = start + base + if i < rem then 1 else 0 in
  (start, stop)

let parallel_for pool ~lo ~hi body =
  if hi > lo then
    if pool.size = 1 then
      for i = lo to hi - 1 do
        body i
      done
    else
      run_job pool (fun slot ->
          let start, stop = chunk ~lo ~hi pool.size slot in
          for i = start to stop - 1 do
            body i
          done)

let map_array_with pool ~init f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    (* Element 0 seeds the result array (avoiding any unsafe
       uninitialised cells); the caller's chunk reuses its state. *)
    let s0 = init () in
    let res = Array.make n (f s0 a.(0)) in
    if n > 1 then
      if pool.size = 1 then
        for i = 1 to n - 1 do
          res.(i) <- f s0 a.(i)
        done
      else
        run_job pool (fun slot ->
            let lo, hi = chunk ~lo:1 ~hi:n pool.size slot in
            if lo < hi then begin
              let s = if slot = 0 then s0 else init () in
              for i = lo to hi - 1 do
                res.(i) <- f s a.(i)
              done
            end);
    res
  end

let map_array pool f a =
  map_array_with pool ~init:(fun () -> ()) (fun () x -> f x) a

(* Like [map_array_with], but the per-participant states outlive the
   call: participant [slot] always works through [states.(slot)].  This
   is what lets a payment session keep one Dijkstra scratch per domain
   alive across requests instead of reallocating per batch.  Element 0
   is computed by the caller (slot 0) before the job is posted, so each
   state is still touched by exactly one domain at a time. *)
let map_array_pooled pool ~states f a =
  if Array.length states < pool.size then
    invalid_arg "Wnet_par.map_array_pooled: need one state per participant";
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let res = Array.make n (f states.(0) a.(0)) in
    if n > 1 then
      if pool.size = 1 then
        for i = 1 to n - 1 do
          res.(i) <- f states.(0) a.(i)
        done
      else
        run_job pool (fun slot ->
            let lo, hi = chunk ~lo:1 ~hi:n pool.size slot in
            if lo < hi then begin
              let s = states.(slot) in
              for i = lo to hi - 1 do
                res.(i) <- f s a.(i)
              done
            end);
    res
  end

let map_reduce pool ~map ~combine ~init a =
  let n = Array.length a in
  if n = 0 then init
  else if pool.size = 1 then
    Array.fold_left (fun acc x -> combine acc (map x)) init a
  else begin
    let partial = Array.make pool.size None in
    run_job pool (fun slot ->
        let lo, hi = chunk ~lo:0 ~hi:n pool.size slot in
        if lo < hi then begin
          let acc = ref (map a.(lo)) in
          for i = lo + 1 to hi - 1 do
            acc := combine !acc (map a.(i))
          done;
          partial.(slot) <- Some !acc
        end);
    Array.fold_left
      (fun acc o -> match o with None -> acc | Some x -> combine acc x)
      init partial
  end
