(* A fixed-size domain pool with static chunking, plus a work-stealing
   layer for irregular workloads.

   Work distribution in the base combinators is deliberately dumb: a job
   is a function of the participant slot, each slot processes one
   contiguous chunk, and the caller is participant 0.  The workloads
   they serve (one avoidance Dijkstra per relay, one mechanism run per
   instance) are uniform enough that static chunks keep every domain
   busy, and the fixed assignment is what makes results reproducible
   regardless of scheduling.

   Synchronisation is a single mutex plus two condition variables: the
   generation counter tells workers a new job is posted; the pending
   counter tells the caller every worker chunk has finished.  The first
   exception raised by any chunk is stored and re-raised in the caller
   once the job has fully drained (workers never die on a job failure).

   The stealing layer ([submit]/[await], [map_array_stealing*]) keeps
   the same determinism contract — results land by index, so only the
   *execution* order is scheduling-dependent — but lets an oversized
   element (one huge avoidance repair, one long Yen spur round) be
   backfilled by whichever domains finish early.  Each participant owns
   a bounded Chase–Lev deque: the owner pushes and pops at the bottom
   (LIFO, so nested tasks run close to their data), thieves CAS the top.
   A full deque never blocks — the owner just runs the task inline. *)

module Deque = struct
  (* Bounded Chase–Lev deque.  Every shared word is an [Atomic.t], so
     the usual C11 fence placement collapses onto OCaml's sequentially
     consistent atomics; [top] is monotone, which rules out ABA.  A cell
     can only be recycled by a [push] after [top] has moved past it, and
     any thief still looking at the old value then fails its CAS, so a
     stale read is never returned. *)
  type 'a t = {
    mask : int;
    cells : 'a option Atomic.t array;
    top : int Atomic.t;  (* thieves' end *)
    bottom : int Atomic.t;  (* owner's end *)
  }

  let create capacity =
    assert (capacity > 0 && capacity land (capacity - 1) = 0);
    {
      mask = capacity - 1;
      cells = Array.init capacity (fun _ -> Atomic.make None);
      top = Atomic.make 0;
      bottom = Atomic.make 0;
    }

  (* Owner only.  [false] means full: the caller must run [x] inline
     (never spin — the deque may only drain through this same thread). *)
  let push q x =
    let b = Atomic.get q.bottom in
    let t = Atomic.get q.top in
    if b - t > q.mask then false
    else begin
      Atomic.set q.cells.(b land q.mask) (Some x);
      Atomic.set q.bottom (b + 1);
      true
    end

  (* Owner only.  Takes the most recently pushed task.  Publishing the
     decremented [bottom] *before* reading [top] is what makes the
     two-or-more case safe without a CAS: a thief that could reach this
     cell must have read [bottom] after we wrote it, and then fails its
     own range check. *)
  let pop q =
    let b = Atomic.get q.bottom - 1 in
    Atomic.set q.bottom b;
    let t = Atomic.get q.top in
    if t < b then begin
      let cell = q.cells.(b land q.mask) in
      let x = Atomic.get cell in
      Atomic.set cell None;
      x
    end
    else if t = b then begin
      (* last element: race any thief for it via the CAS on [top] *)
      let x = Atomic.get q.cells.(b land q.mask) in
      let won = Atomic.compare_and_set q.top t (t + 1) in
      Atomic.set q.bottom (t + 1);
      if won then x else None
    end
    else begin
      Atomic.set q.bottom (b + 1);
      None
    end

  (* Any domain.  A lost CAS (another thief, or the owner taking the
     last element) is reported as [None]; callers just move on. *)
  let steal q =
    let t = Atomic.get q.top in
    let b = Atomic.get q.bottom in
    if t >= b then None
    else begin
      let x = Atomic.get q.cells.(t land q.mask) in
      if Atomic.compare_and_set q.top t (t + 1) then x else None
    end
end

let deque_capacity = 4096

type t = {
  size : int;
  lock : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable generation : int;
  mutable job : (int -> unit) option;
  mutable pending : int;
  mutable failure : exn option;
  mutable stop : bool;
  mutable domains : unit Domain.t array;
  deques : (int -> unit) Deque.t array;
      (* one per participant; thunks take the *executing* slot so a
         stolen task still picks up the thief's scratch state *)
  exec_count : int Atomic.t;
  steal_count : int Atomic.t;
}

let size t = t.size

let default_domains () =
  match Sys.getenv_opt "WNET_DOMAINS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some k when k >= 1 -> min k 128
     | _ -> invalid_arg "WNET_DOMAINS must be a positive integer")
  | None -> max 1 (Domain.recommended_domain_count ())

let make ~size =
  {
    size;
    lock = Mutex.create ();
    work_ready = Condition.create ();
    work_done = Condition.create ();
    generation = 0;
    job = None;
    pending = 0;
    failure = None;
    stop = false;
    domains = [||];
    deques =
      (if size > 1 then Array.init size (fun _ -> Deque.create deque_capacity)
       else [||]);
    exec_count = Atomic.make 0;
    steal_count = Atomic.make 0;
  }

let sequential = make ~size:1

let record_failure pool e =
  Mutex.lock pool.lock;
  if pool.failure = None then pool.failure <- Some e;
  Mutex.unlock pool.lock

let worker pool slot =
  let seen = ref 0 in
  Mutex.lock pool.lock;
  let rec loop () =
    if pool.stop then Mutex.unlock pool.lock
    else if pool.generation = !seen then begin
      Condition.wait pool.work_ready pool.lock;
      loop ()
    end
    else begin
      seen := pool.generation;
      let job = pool.job in
      Mutex.unlock pool.lock;
      (match job with
      | None -> ()
      | Some f -> ( try f slot with e -> record_failure pool e));
      Mutex.lock pool.lock;
      pool.pending <- pool.pending - 1;
      if pool.pending = 0 then Condition.broadcast pool.work_done;
      loop ()
    end
  in
  loop ()

let create ?domains () =
  let size =
    match domains with
    | None -> default_domains ()
    | Some k when k >= 1 -> k
    | Some _ -> invalid_arg "Wnet_par.create: domains must be >= 1"
  in
  let pool = make ~size in
  if size > 1 then
    pool.domains <-
      Array.init (size - 1) (fun i ->
          Domain.spawn (fun () -> worker pool (i + 1)));
  pool

let shutdown pool =
  if Array.length pool.domains > 0 then begin
    Mutex.lock pool.lock;
    pool.stop <- true;
    Condition.broadcast pool.work_ready;
    Mutex.unlock pool.lock;
    Array.iter Domain.join pool.domains;
    pool.domains <- [||]
  end

let with_pool ?domains f =
  let pool = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* Runs [f slot] on every participant and waits for all of them.  The
   caller takes slot 0 so a size-1 pool is a plain call. *)
let run_job pool f =
  if pool.size = 1 then f 0
  else begin
    if pool.stop then invalid_arg "Wnet_par: pool is shut down";
    Mutex.lock pool.lock;
    pool.job <- Some f;
    pool.failure <- None;
    pool.pending <- pool.size - 1;
    pool.generation <- pool.generation + 1;
    Condition.broadcast pool.work_ready;
    Mutex.unlock pool.lock;
    (try f 0 with e -> record_failure pool e);
    Mutex.lock pool.lock;
    while pool.pending > 0 do
      Condition.wait pool.work_done pool.lock
    done;
    pool.job <- None;
    let failure = pool.failure in
    pool.failure <- None;
    Mutex.unlock pool.lock;
    match failure with Some e -> raise e | None -> ()
  end

(* Chunk [i] of [parts] over [lo, hi): contiguous, sizes differing by at
   most one, earlier chunks taking the remainder. *)
let chunk ~lo ~hi parts i =
  let len = hi - lo in
  let base = len / parts and rem = len mod parts in
  let start = lo + (i * base) + min i rem in
  let stop = start + base + if i < rem then 1 else 0 in
  (start, stop)

let parallel_for pool ~lo ~hi body =
  if hi > lo then
    if pool.size = 1 then
      for i = lo to hi - 1 do
        body i
      done
    else
      run_job pool (fun slot ->
          let start, stop = chunk ~lo ~hi pool.size slot in
          for i = start to stop - 1 do
            body i
          done)

let map_array_with pool ~init f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    (* Element 0 seeds the result array (avoiding any unsafe
       uninitialised cells); the caller's chunk reuses its state. *)
    let s0 = init () in
    let res = Array.make n (f s0 a.(0)) in
    if n > 1 then
      if pool.size = 1 then
        for i = 1 to n - 1 do
          res.(i) <- f s0 a.(i)
        done
      else
        run_job pool (fun slot ->
            let lo, hi = chunk ~lo:1 ~hi:n pool.size slot in
            if lo < hi then begin
              let s = if slot = 0 then s0 else init () in
              for i = lo to hi - 1 do
                res.(i) <- f s a.(i)
              done
            end);
    res
  end

let map_array pool f a =
  map_array_with pool ~init:(fun () -> ()) (fun () x -> f x) a

(* Like [map_array_with], but the per-participant states outlive the
   call: participant [slot] always works through [states.(slot)].  This
   is what lets a payment session keep one Dijkstra scratch per domain
   alive across requests instead of reallocating per batch.  Element 0
   is computed by the caller (slot 0) before the job is posted, so each
   state is still touched by exactly one domain at a time. *)
let map_array_pooled pool ~states f a =
  if Array.length states < pool.size then
    invalid_arg "Wnet_par.map_array_pooled: need one state per participant";
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let res = Array.make n (f states.(0) a.(0)) in
    if n > 1 then
      if pool.size = 1 then
        for i = 1 to n - 1 do
          res.(i) <- f states.(0) a.(i)
        done
      else
        run_job pool (fun slot ->
            let lo, hi = chunk ~lo:1 ~hi:n pool.size slot in
            if lo < hi then begin
              let s = states.(slot) in
              for i = lo to hi - 1 do
                res.(i) <- f s a.(i)
              done
            end);
    res
  end

(* ------------------------------------------------------------------ *)
(* Work-stealing layer.                                                *)

type stats = { tasks_executed : int; tasks_stolen : int }

let stats pool =
  {
    tasks_executed = Atomic.get pool.exec_count;
    tasks_stolen = Atomic.get pool.steal_count;
  }

(* Which (pool, slot) is this domain currently a participant of?  Set
   for the duration of a stealing job; [submit] and the nested case of
   [map_array_stealing] key off it. *)
let tl_slot : (t * int) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let slot_of pool =
  match Domain.DLS.get tl_slot with
  | Some (p, s) when p == pool -> Some s
  | _ -> None

let run_thunk pool ~stolen slot th =
  Atomic.incr pool.exec_count;
  if stolen then Atomic.incr pool.steal_count;
  th slot

(* Round-robin over the other participants' deques. *)
let try_steal pool slot =
  let n = pool.size in
  let rec go k =
    if k = n then None
    else
      match Deque.steal pool.deques.((slot + k) mod n) with
      | Some _ as r -> r
      | None -> go (k + 1)
  in
  go 1

(* Out-of-work wait policy: spin briefly (a steal usually lands within
   microseconds on a genuinely parallel box), then sleep in short
   slices.  Pure [cpu_relax] spinning is catastrophic when domains
   outnumber cores — most visibly on one core, where an idle domain
   burns its whole scheduler quantum while the domain actually holding
   the work waits for the CPU; a 20 µs nanosleep hands the core over
   instead, for at most a few tens of µs of added fan-in latency. *)
let idle_backoff spins =
  if spins < 64 then Domain.cpu_relax () else Unix.sleepf 20e-6

(* One scheduling step for a participant that is out of local work:
   pop own deque, else steal, else yield the core.  Returns [false]
   when nothing ran. *)
let help_once pool slot =
  match Deque.pop pool.deques.(slot) with
  | Some th ->
    run_thunk pool ~stolen:false slot th;
    true
  | None -> (
    match try_steal pool slot with
    | Some th ->
      run_thunk pool ~stolen:true slot th;
      true
    | None -> false)

type 'a task = 'a task_state Atomic.t
and 'a task_state = Todo | Done of 'a | Failed of exn

let submit pool f =
  let tk = Atomic.make Todo in
  let run _slot =
    let st = try Done (f ()) with e -> Failed e in
    Atomic.set tk st
  in
  (match slot_of pool with
  | Some s when pool.size > 1 ->
    if not (Deque.push pool.deques.(s) run) then
      run_thunk pool ~stolen:false s run
  | _ ->
    (* outside any stealing job (or a size-1 pool): eager, in
       submission order — the degenerate deterministic schedule *)
    Atomic.incr pool.exec_count;
    run 0);
  tk

let await pool tk =
  let rec go spins =
    match Atomic.get tk with
    | Done v -> v
    | Failed e -> raise e
    | Todo ->
      let ran =
        match slot_of pool with
        | Some s when pool.size > 1 -> help_once pool s
        | _ -> false
      in
      if ran then go 0
      else begin
        idle_backoff spins;
        go (spins + 1)
      end
  in
  go 0

(* Shared scaffolding for the two stealing maps.  Element 0 seeds the
   result array in the initiator (with its own state), the rest become
   one task each; tasks record the first failure in [fail] and always
   bump their completion signal, so scheduling can never deadlock on an
   exception.  Results land by index and each state is only ever used
   by the domain currently running the task, so the output is identical
   to the sequential loop whenever [f]'s result does not depend on the
   state's prior contents — the same contract as [map_array_pooled]. *)
let stealing_run pool ~state_of f a res fail =
  let n = Array.length a in
  match slot_of pool with
  | Some s ->
    (* Nested: we are already a participant of a running job on this
       pool.  Push one task per element onto our own deque (in reverse,
       so our own pops execute in ascending order) and help until every
       flag is up; idle siblings steal from the top. *)
    let dq = pool.deques.(s) in
    let flags = Array.init (n - 1) (fun _ -> Atomic.make false) in
    for j = n - 2 downto 0 do
      let i = j + 1 in
      let th slot =
        (try res.(i) <- f (state_of slot) a.(i)
         with e -> ignore (Atomic.compare_and_set fail None (Some e)));
        Atomic.set flags.(j) true
      in
      if not (Deque.push dq th) then run_thunk pool ~stolen:false s th
    done;
    for j = 0 to n - 2 do
      let spins = ref 0 in
      while not (Atomic.get flags.(j)) do
        if help_once pool s then spins := 0
        else begin
          idle_backoff !spins;
          incr spins
        end
      done
    done
  | None ->
    (* Top level: post a job; every participant seeds its deque with its
       static chunk (stealing only kicks in on imbalance, so the common
       uniform case keeps the chunked locality), then drains until the
       whole call is done. *)
    let remaining = Atomic.make (n - 1) in
    run_job pool (fun slot ->
        let saved = Domain.DLS.get tl_slot in
        Domain.DLS.set tl_slot (Some (pool, slot));
        Fun.protect
          ~finally:(fun () -> Domain.DLS.set tl_slot saved)
          (fun () ->
            let dq = pool.deques.(slot) in
            let lo, hi = chunk ~lo:1 ~hi:n pool.size slot in
            for i = hi - 1 downto lo do
              let th slot' =
                (try res.(i) <- f (state_of slot') a.(i)
                 with e -> ignore (Atomic.compare_and_set fail None (Some e)));
                Atomic.decr remaining
              in
              if not (Deque.push dq th) then run_thunk pool ~stolen:false slot th
            done;
            let spins = ref 0 in
            while Atomic.get remaining > 0 do
              if help_once pool slot then spins := 0
              else begin
                idle_backoff !spins;
                incr spins
              end
            done))

let map_array_stealing_pooled pool ~states f a =
  if Array.length states < pool.size then
    invalid_arg "Wnet_par.map_array_stealing_pooled: need one state per participant";
  let n = Array.length a in
  if n = 0 then [||]
  else if pool.size = 1 then begin
    let s0 = states.(0) in
    let res = Array.make n (f s0 a.(0)) in
    for i = 1 to n - 1 do
      res.(i) <- f s0 a.(i)
    done;
    ignore (Atomic.fetch_and_add pool.exec_count n);
    res
  end
  else begin
    let res = Array.make n (f states.(0) a.(0)) in
    Atomic.incr pool.exec_count;
    if n > 1 then begin
      let fail = Atomic.make None in
      stealing_run pool ~state_of:(fun slot -> states.(slot)) f a res fail;
      match Atomic.get fail with Some e -> raise e | None -> ()
    end;
    res
  end

let map_array_stealing pool f a =
  let n = Array.length a in
  if n = 0 then [||]
  else if pool.size = 1 then begin
    let res = Array.make n (f a.(0)) in
    for i = 1 to n - 1 do
      res.(i) <- f a.(i)
    done;
    ignore (Atomic.fetch_and_add pool.exec_count n);
    res
  end
  else begin
    let res = Array.make n (f a.(0)) in
    Atomic.incr pool.exec_count;
    if n > 1 then begin
      let fail = Atomic.make None in
      stealing_run pool
        ~state_of:(fun _ -> ())
        (fun () x -> f x)
        a res fail;
      match Atomic.get fail with Some e -> raise e | None -> ()
    end;
    res
  end

(* Index-space variant of the stealing maps: one stolen task per index,
   no result array.  The body writes wherever it likes (disjoint
   locations per index, as with [parallel_for]); the point over
   [parallel_for] is that an oversized index is backfilled by whichever
   participants finish their chunks early.  Reuses the same seeding
   discipline as [stealing_run]: each participant queues its static
   chunk in reverse so its own pops run in ascending order. *)
let iter_stealing pool ~lo ~hi body =
  let n = hi - lo in
  if n <= 0 then ()
  else if pool.size = 1 then begin
    for i = lo to hi - 1 do
      body i
    done;
    ignore (Atomic.fetch_and_add pool.exec_count n)
  end
  else begin
    let fail = Atomic.make None in
    (match slot_of pool with
    | Some s ->
      (* Nested inside a running stealing job: push every index onto our
         own deque and help until each one's flag is up. *)
      let dq = pool.deques.(s) in
      let flags = Array.init n (fun _ -> Atomic.make false) in
      for j = n - 1 downto 0 do
        let i = lo + j in
        let th _slot =
          (try body i
           with e -> ignore (Atomic.compare_and_set fail None (Some e)));
          Atomic.set flags.(j) true
        in
        if not (Deque.push dq th) then run_thunk pool ~stolen:false s th
      done;
      for j = 0 to n - 1 do
        let spins = ref 0 in
        while not (Atomic.get flags.(j)) do
          if help_once pool s then spins := 0
          else begin
            idle_backoff !spins;
            incr spins
          end
        done
      done
    | None ->
      let remaining = Atomic.make n in
      run_job pool (fun slot ->
          let saved = Domain.DLS.get tl_slot in
          Domain.DLS.set tl_slot (Some (pool, slot));
          Fun.protect
            ~finally:(fun () -> Domain.DLS.set tl_slot saved)
            (fun () ->
              let dq = pool.deques.(slot) in
              let clo, chi = chunk ~lo ~hi pool.size slot in
              for i = chi - 1 downto clo do
                let th _slot =
                  (try body i
                   with e -> ignore (Atomic.compare_and_set fail None (Some e)));
                  Atomic.decr remaining
                in
                if not (Deque.push dq th) then
                  run_thunk pool ~stolen:false slot th
              done;
              let spins = ref 0 in
              while Atomic.get remaining > 0 do
                if help_once pool slot then spins := 0
                else begin
                  idle_backoff !spins;
                  incr spins
                end
              done)));
    match Atomic.get fail with Some e -> raise e | None -> ()
  end

let map_reduce pool ~map ~combine ~init a =
  let n = Array.length a in
  if n = 0 then init
  else if pool.size = 1 then
    Array.fold_left (fun acc x -> combine acc (map x)) init a
  else begin
    let partial = Array.make pool.size None in
    run_job pool (fun slot ->
        let lo, hi = chunk ~lo:0 ~hi:n pool.size slot in
        if lo < hi then begin
          let acc = ref (map a.(lo)) in
          for i = lo + 1 to hi - 1 do
            acc := combine !acc (map a.(i))
          done;
          partial.(slot) <- Some !acc
        end);
    Array.fold_left
      (fun acc o -> match o with None -> acc | Some x -> combine acc x)
      init partial
  end
