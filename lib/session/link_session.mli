(** Incremental all-to-access-point payment sessions, link-cost model
    (Sec. III-F).

    An access point in the paper's model does not face one-shot
    instances: declared costs drift, nodes join and leave, and each
    topology delta invalidates only a sliver of the previous batch's
    work.  A session owns the mutable topology and every cache the
    batch payment engine builds from it:

    - the shared reversed-graph shortest-path tree (one Dijkstra),
    - the per-relay avoidance-distance arrays (one Dijkstra per relay —
      the expensive part),
    - a {!Wnet_par} domain pool and one Dijkstra scratch per domain,
      alive across requests.

    The delta API ({!set_cost}, {!add_node}, {!remove_node}) updates
    the graph in place and the caches follow by {e dynamic SSSP repair}
    ({!Wnet_graph.Dynamic_sssp}): after each coalesced burst the shared
    tree and every exact avoidance array are {e patched} over the
    edit's affected region — typically a tiny bounded-frontier Dijkstra,
    fanned out across the {!Wnet_par} pool — instead of being dropped
    and recomputed whole.  Entries whose region exceeds the repair
    budget (or whose parents hit a bit-equal tie, for the tree) fall
    back to a from-scratch run, so the worst case never regresses past
    the drop scheme.  [~dynamic:false] restores the PR 2/3 baseline:
    per-entry slack tests that either prove an entry untouched or drop
    it whole — the comparison row the bench keeps honest.

    {b Determinism contract:} after any edit sequence, {!payments} is
    bit-identical ([Float.equal], including [infinity] payments for
    cut-vertex relays and identical paths) to a from-scratch batch on
    the edited graph — the zero-copy
    [Wnet_core.Link_cost.all_to_root] path, which is itself a one-shot
    session.  The qcheck suite drives random edit sequences against
    that oracle. *)

type t

type outcome = {
  src : int;
  path : Wnet_graph.Path.t;  (** [src; ...; root] *)
  lcp_cost : float;  (** full directed path cost *)
  relay_cost : float;  (** [lcp_cost] minus the source's first link *)
  payments : float array;
      (** per node; [infinity] marks a cut-vertex (monopoly) relay *)
}

type batch = {
  root : int;
  to_root_dist : float array;
  results : outcome option array;
      (** per source; [None] for the root and disconnected nodes *)
}

type stats = {
  edits : int;  (** delta operations applied *)
  coalesced_edits : int;
      (** cost edits whose cache invalidation was deferred and folded
          into a shared flush pass (every buffered edit counts, so a
          [k]-edit burst adds [k] here and 1 to [inval_passes]) *)
  inval_passes : int;
      (** passes over the avoidance-cache array: one per {!flush} with a
          non-empty net burst, one per join/leave/rejoin *)
  spt_runs : int;  (** shared-tree Dijkstras (initial build + fallbacks) *)
  avoid_runs : int;  (** avoidance Dijkstras actually run *)
  avoid_reused : int;  (** relay results served from cache *)
  repaired_entries : int;
      (** cache structures (shared tree or avoidance array) patched in
          place by dynamic SSSP repair instead of recomputed *)
  fallback_recomputes : int;
      (** repair attempts that bailed to a from-scratch run: oversized
          affected region, or a bit-equal tie that could flip a tree
          parent *)
  tasks_executed : int;
      (** units of work run through the pool's work-stealing scheduler
          (avoidance Dijkstras and in-place repairs, inline fallbacks
          included) *)
  tasks_stolen : int;
      (** the subset executed by a domain other than the one that queued
          them — nonzero only when stealing actually rebalanced load *)
  avoid_bounded : int;
      (** cache-miss fills served by the subtree-bounded region kernel
          (exterior distances copied from the shared tree, only the
          relay's SPT subtree recomputed) *)
  avoid_fallback : int;
      (** bounded fills whose region outgrew the budget and fell back to
          a full-graph CSR Dijkstra *)
}

val create :
  ?pool:Wnet_par.t ->
  ?copy:bool ->
  ?dynamic:bool ->
  ?kernel:[ `CsrBounded | `Csr | `Boxed ] ->
  Wnet_graph.Digraph.t ->
  root:int ->
  t
(** [create g ~root] opens a session on [g].  With [~copy:true] (the
    default) the session deep-copies [g] and later edits never touch the
    caller's graph; [~copy:false] borrows it — the caller must neither
    mutate nor rely on it afterwards (used by the one-shot wrappers).
    [?pool] (default {!Wnet_par.sequential}) fans avoidance Dijkstras
    out over domains; every pool size yields bit-identical payments.
    [~dynamic:false] (default [true]) disables dynamic SSSP repair and
    restores drop-style invalidation — same payments, different cost
    profile.
    [?kernel] selects the avoidance Dijkstra that fills cache misses:
    [`CsrBounded] (default) copies exterior distances from the shared
    SPT and recomputes only the relay's subtree region
    ({!Wnet_graph.Avoid_region}), falling back to the full-graph CSR
    kernel on budget overflow; [`Csr] is the flat zero-allocation
    full-graph ban-mask kernel; [`Boxed] the original closure-predicate
    run over boxed adjacency.  All three are kept as differential
    oracles — payments are bit-identical whichever is selected.
    @raise Invalid_argument if [root] is out of range. *)

val n : t -> int
val root : t -> int

val cost : t -> int -> int -> float
(** Current declared cost of a link, [infinity] when absent. *)

val version : t -> int
(** The underlying graph's version stamp; bumps on every edit. *)

val snapshot : t -> Wnet_graph.Digraph.t
(** A fresh immutable copy of the current topology — what a
    from-scratch oracle should be run on. *)

val set_cost : t -> int -> int -> float -> unit
(** [set_cost s u v w] sets the declared cost of link [u -> v]:
    update, insert, or remove ([w = infinity]).  The graph mutates
    immediately, but cache maintenance is {e deferred}: a burst of cost
    edits arriving before the next {!payments} (or structural delta) is
    coalesced into one {!flush} pass that repairs the shared tree and
    each exact avoidance cache against the burst's net link changes —
    one bounded repair per structure per burst, instead of one scan (or
    recompute) per edit.  Edits reverted within a burst cancel out
    entirely.
    @raise Invalid_argument as {!Wnet_graph.Digraph.set_weight}. *)

val flush : t -> unit
(** Fold the cost edits buffered since the last flush into one
    invalidation pass over the avoidance caches, now.  Called
    automatically by {!payments} and by the structural deltas
    ({!add_node}, {!remove_node}, {!rejoin_node}); calling it after
    every edit reproduces the old eager per-edit scans (what the bench's
    one-at-a-time baseline does).  A no-op when nothing is buffered. *)

val add_node :
  t -> out:(int * float) list -> inn:(int * float) list -> int
(** [add_node s ~out ~inn] joins a new node with declared out-links
    [out = (target, cost)] and in-links [inn = (source, cost)], and
    returns its identifier.  Surviving avoidance caches are patched
    with the newcomer's distance (a Bellman step over [out]) instead of
    being recomputed.
    @raise Invalid_argument on invalid endpoints or weights. *)

val remove_node : t -> int -> unit
(** [remove_node s v] detaches every link incident to [v] — the paper's
    node-leave.  The identifier remains valid (isolated), so ids are
    stable; the node may rejoin via {!rejoin_node}.
    @raise Invalid_argument when [v] is the root or out of range. *)

val rejoin_node :
  t -> int -> out:(int * float) list -> inn:(int * float) list -> unit
(** [rejoin_node s v ~out ~inn] re-attaches an isolated node (one that
    {!remove_node} detached, or that joined linkless) under its existing
    identifier — the node-rejoin half of churn.  Surviving caches are
    patched with the rejoiner's Bellman-step distance exactly as in
    {!add_node}; inserting the links one by one through {!set_cost}
    would instead invalidate every cache, because each insert makes the
    node's own distance change from [infinity].
    @raise Invalid_argument when [v] is the root, out of range, or not
    isolated, or on invalid endpoints or weights. *)

val payments : t -> batch
(** The all-to-root batch for the current topology.  Recomputes the
    shared tree if any edit occurred, runs avoidance Dijkstras only for
    relays whose cache is missing or invalidated (fanned out over the
    pool, through the session's per-domain scratches), and memoizes the
    batch until the next edit. *)

val unbounded_relays : t -> int list
(** Cut-vertex relays as of the last {!payments} call: relays whose
    removal disconnects some served source from the root, making their
    VCG payment unbounded (Sec. III-G).  Tracked from the cached
    avoidance arrays — no extra graph traversal.  Sorted ascending. *)

val stats : t -> stats
(** Cumulative work counters — the incremental-vs-batch ledger. *)

val region_histogram : t -> (int * int) list
(** Histogram of bounded-region sizes over every successful repair
    (shared tree and avoidance entries alike) and every
    subtree-bounded cache-miss fill, as [(class lower bound, count)]
    pairs with power-of-two size classes [{0}, {1}, [2,4), [4,8), ...]
    — ascending, zero-count classes omitted. *)
