open Wnet_graph

type outcome = {
  src : int;
  path : Path.t;
  lcp_cost : float;
  relay_cost : float;
  payments : float array;
}

type batch = {
  root : int;
  to_root_dist : float array;
  results : outcome option array;
}

type stats = {
  edits : int;
  coalesced_edits : int;
  inval_passes : int;
  spt_runs : int;
  avoid_runs : int;
  avoid_reused : int;
  repaired_entries : int;
  fallback_recomputes : int;
  tasks_executed : int;
  tasks_stolen : int;
  avoid_bounded : int;
  avoid_fallback : int;
}

(* Region-size histogram: bucket 0 holds empty regions, bucket [i >= 1]
   holds sizes in [2^(i-1), 2^i). *)
let hist_buckets = 24

let hist_bucket r =
  if r <= 0 then 0
  else begin
    let b = ref 1 and x = ref r in
    while !x > 1 do
      incr b;
      x := !x lsr 1
    done;
    min !b (hist_buckets - 1)
  end

type t = {
  root : int;
  pool : Wnet_par.t;
  dynamic : bool;
  kernel : [ `CsrBounded | `Csr | `Boxed ];
      (* which avoidance Dijkstra fills cache misses: the
         subtree-bounded region kernel over the shared SPT (default,
         falls back to full CSR on budget overflow), the flat CSR
         ban-mask kernel, or the boxed closure oracle.  All three
         produce bit-identical distances; [`Csr]/[`Boxed] exist for
         differential testing and benchmarking. *)
  g : Digraph.t;  (* forward topology, mutated in place *)
  rev : Digraph.t;  (* reversed mirror, kept in lockstep *)
  mutable dyn : Dynamic_sssp.t option;
      (* dynamic mode: the shared SPT over [rev] as a patched structure;
         exact for the current graph whenever the pending burst is empty *)
  mutable tree : Dijkstra.tree option;  (* drop mode: live-or-die SPT *)
  mutable tree_version : int;
  mutable avoid : float array option array;
      (* avoid.(k): root-side distances over [rev] with k forbidden.  In
         drop mode an entry is either exact for the current graph or
         [None].  In dynamic mode entries carry per-entry epochs: exact
         iff [avoid_epoch.(k) = cache_epoch]; stale entries are kept but
         never read (they are rebuilt from scratch on demand). *)
  mutable avoid_epoch : int array;
  mutable cache_epoch : int;  (* bumped once per invalidation pass *)
  mutable scratches : Dijkstra.scratch array;  (* one per pool slot *)
  mutable dscratches : Dynamic_sssp.dist_scratch array;  (* likewise *)
  mutable unbounded : int list;
  mutable last : (int * batch) option;  (* memoized batch, keyed by version *)
  pending : (int * int, float) Hashtbl.t;
      (* links cost-edited since the last flush, mapped to their weight
         *before* the burst; the graph itself is mutated eagerly, only
         the cache maintenance is deferred and coalesced *)
  mutable pending_order : (int * int) list;  (* insertion order, reversed *)
  mutable pending_edits : int;  (* set_cost calls buffered in this burst *)
  mutable edits : int;
  mutable coalesced_edits : int;
  mutable inval_passes : int;
  mutable spt_runs : int;
  mutable avoid_runs : int;
  mutable avoid_reused : int;
  mutable repaired_entries : int;
  mutable fallback_recomputes : int;
  mutable tasks_executed : int;
  mutable tasks_stolen : int;
  mutable avoid_bounded : int;
  mutable avoid_fallback : int;
  region_hist : int array;
}

let create ?(pool = Wnet_par.sequential) ?(copy = true) ?(dynamic = true)
    ?(kernel = `CsrBounded) g ~root =
  let n = Digraph.n g in
  if root < 0 || root >= n then invalid_arg "Link_session.create: root out of range";
  let g = if copy then Digraph.copy g else g in
  {
    root;
    pool;
    dynamic;
    kernel;
    g;
    rev = Digraph.reverse g;
    dyn = None;
    tree = None;
    tree_version = -1;
    avoid = Array.make n None;
    avoid_epoch = Array.make n (-1);
    cache_epoch = 0;
    scratches =
      Array.init (Wnet_par.size pool) (fun _ -> Dijkstra.make_scratch n);
    dscratches =
      Array.init (Wnet_par.size pool) (fun _ ->
          Dynamic_sssp.make_dist_scratch n);
    unbounded = [];
    last = None;
    pending = Hashtbl.create 16;
    pending_order = [];
    pending_edits = 0;
    edits = 0;
    coalesced_edits = 0;
    inval_passes = 0;
    spt_runs = 0;
    avoid_runs = 0;
    avoid_reused = 0;
    repaired_entries = 0;
    fallback_recomputes = 0;
    tasks_executed = 0;
    tasks_stolen = 0;
    avoid_bounded = 0;
    avoid_fallback = 0;
    region_hist = Array.make hist_buckets 0;
  }

let n t = Digraph.n t.g
let root t = t.root
let cost t u v = Digraph.weight t.g u v
let version t = Digraph.version t.g
let snapshot t = Digraph.copy t.g
let stats t =
  { edits = t.edits; coalesced_edits = t.coalesced_edits;
    inval_passes = t.inval_passes; spt_runs = t.spt_runs;
    avoid_runs = t.avoid_runs; avoid_reused = t.avoid_reused;
    repaired_entries = t.repaired_entries;
    fallback_recomputes = t.fallback_recomputes;
    tasks_executed = t.tasks_executed; tasks_stolen = t.tasks_stolen;
    avoid_bounded = t.avoid_bounded; avoid_fallback = t.avoid_fallback }
let unbounded_relays t = t.unbounded

(* Fan [f] out over the pool's work-stealing layer (one task per
   element, idle domains backfill) and fold the scheduler's counter
   deltas into the session ledger.  Calls never overlap on a session's
   pool, so the before/after delta is exactly this call's tasks. *)
let steal_map t ~states f a =
  let before = Wnet_par.stats t.pool in
  let r = Wnet_par.map_array_stealing_pooled t.pool ~states f a in
  let after = Wnet_par.stats t.pool in
  t.tasks_executed <-
    t.tasks_executed + after.Wnet_par.tasks_executed
    - before.Wnet_par.tasks_executed;
  t.tasks_stolen <-
    t.tasks_stolen + after.Wnet_par.tasks_stolen - before.Wnet_par.tasks_stolen;
  r

let region_histogram t =
  let out = ref [] in
  for b = hist_buckets - 1 downto 0 do
    if t.region_hist.(b) > 0 then
      let lo = if b = 0 then 0 else 1 lsl (b - 1) in
      out := (lo, t.region_hist.(b)) :: !out
  done;
  !out

let record_region t r =
  t.region_hist.(hist_bucket r) <- t.region_hist.(hist_bucket r) + 1

(* ------------------------------------------------------------------ *)
(* Cache maintenance.

   Every cached array [d = avoid.(j)] is the distance-from-root array of
   a Dijkstra over [rev] with [j] forbidden.  Dynamic mode hands the
   burst's net link changes to {!Dynamic_sssp}, which patches each entry
   in place (and the shared SPT, parents included) so it stays
   bit-for-bit what a from-scratch run would produce; entries whose
   affected region exceeds the budget go stale and are rebuilt from
   scratch at the next {!payments}.  Drop mode (the PR 2/3 baseline,
   [~dynamic:false]) instead tests each entry with a slack scan and
   drops it whole on any possible contact:

   - for a rev-link [v -> u] whose weight drops to [w1], no distance
     changes iff the new relaxation does not improve [u]:
     [d.(u) <= d.(v) +. w1];
   - for one whose weight rises from [w0], no distance changes iff the
     link was strictly slack: [d.(u) < d.(v) +. w0] (a tie might have
     been realised through the link, so ties invalidate);
   - links incident to the forbidden node [j], or leaving an unreachable
     tail ([d.(v) = infinity]), are invisible to the search.

   Both modes mirror the float arithmetic of the relaxation itself
   ([d.(v) +. w]), so "unchanged" means bit-for-bit: the qcheck suite
   holds them to [Float.equal] against a from-scratch oracle. *)

let mark_edit t =
  t.edits <- t.edits + 1;
  t.last <- None

(* The rev-link [v -> u] changed from [w0] to [w1]; does [d] survive? *)
let link_edit_keeps d ~v ~u ~w0 ~w1 =
  let dv = d.(v) in
  dv = infinity
  || (if w1 < w0 then d.(u) <= dv +. w1 else d.(u) < dv +. w0)

(* Dynamic mode: patch the shared SPT after a burst of net rev-graph
   edits.  A fallback (oversized region, or a bit-equal tie that could
   flip a parent under from-scratch settlement order) costs one full
   Dijkstra, same as drop mode's every on-tree edit. *)
let repair_spt t redits =
  match t.dyn with
  | None -> ()  (* not built yet; the first payments call runs it fresh *)
  | Some dy ->
    (match Dynamic_sssp.apply dy redits with
    | Dynamic_sssp.Patched { region } ->
      t.repaired_entries <- t.repaired_entries + 1;
      record_region t region
    | Dynamic_sssp.Rebuilt _ ->
      t.spt_runs <- t.spt_runs + 1;
      t.fallback_recomputes <- t.fallback_recomputes + 1);
    t.tree_version <- version t

(* Dynamic mode: patch every currently-exact avoidance entry, fanned out
   over the pool (disjoint entries, one repair scratch per slot).  An
   [`Overflow] leaves the entry corrupted, so it is dropped and counted
   as a fallback; everything else moves to the new epoch. *)
let repair_avoid_entries t redits =
  let fresh = ref [] in
  Array.iteri
    (fun j entry ->
      match entry with
      | Some _ when t.avoid_epoch.(j) = t.cache_epoch -> fresh := j :: !fresh
      | _ -> ())
    t.avoid;
  let fresh = Array.of_list (List.rev !fresh) in
  t.cache_epoch <- t.cache_epoch + 1;
  let regions =
    steal_map t ~states:t.dscratches
      (fun ds j ->
        match t.avoid.(j) with
        | Some d -> (
          match
            Dynamic_sssp.repair_dist ds ~forbidden:j ~graph:t.rev ~mirror:t.g
              ~source:t.root ~dist:d redits
          with
          | `Patched r -> r
          | `Overflow -> -1)
        | None -> -1)
      fresh
  in
  Array.iteri
    (fun i j ->
      let r = regions.(i) in
      if r >= 0 then begin
        t.avoid_epoch.(j) <- t.cache_epoch;
        t.repaired_entries <- t.repaired_entries + 1;
        record_region t r
      end
      else begin
        t.avoid.(j) <- None;
        t.fallback_recomputes <- t.fallback_recomputes + 1
      end)
    fresh

(* Cost edits mutate the graph eagerly but defer the cache scan: the
   burst of edits accumulated since the last flush is folded into ONE
   pass over the avoidance array, each cache maintained against every
   *net* link change (first-recorded old weight vs. current weight).
   Folding to the net change is sound — and strictly keeps more caches
   than per-edit passes: a kept drop means the new weight improves
   nobody ([d.(u) <= d.(v) +. w1], so [d] stays a feasible potential), a
   kept rise means the link was strictly slack at the old weight (so no
   shortest path, not even a tie, ran through it), and an edit reverted
   within the burst vanishes entirely. *)
let flush t =
  if t.pending_edits > 0 then begin
    let net =
      List.rev_map
        (fun (u, v) ->
          let w0 = Hashtbl.find t.pending (u, v) in
          (u, v, w0, Digraph.weight t.g u v))
        t.pending_order
      |> List.filter (fun (_, _, w0, w1) -> not (Float.equal w0 w1))
    in
    t.coalesced_edits <- t.coalesced_edits + t.pending_edits;
    Hashtbl.reset t.pending;
    t.pending_order <- [];
    t.pending_edits <- 0;
    if net <> [] then begin
      t.inval_passes <- t.inval_passes + 1;
      if t.dynamic then begin
        (* the forward link u -> v is the rev-link v -> u *)
        let redits =
          List.rev_map
            (fun (u, v, w0, w1) -> { Dynamic_sssp.u = v; v = u; w0; w1 })
            net
        in
        repair_spt t redits;
        repair_avoid_entries t redits
      end
      else
        Array.iteri
          (fun j entry ->
            match entry with
            | Some d ->
              if
                not
                  (List.for_all
                     (fun (u, v, w0, w1) ->
                       (* links incident to the forbidden node j are
                          invisible to that search *)
                       j = u || j = v || link_edit_keeps d ~v ~u ~w0 ~w1)
                     net)
              then t.avoid.(j) <- None
            | None -> ())
          t.avoid
    end
  end

let set_cost t u v w =
  let w0 = Digraph.weight t.g u v in
  if not (Float.equal w0 w) then begin
    Digraph.set_weight t.g u v w;
    Digraph.set_weight t.rev v u w;
    mark_edit t;
    t.pending_edits <- t.pending_edits + 1;
    if not (Hashtbl.mem t.pending (u, v)) then begin
      Hashtbl.add t.pending (u, v) w0;
      t.pending_order <- (u, v) :: t.pending_order
    end
  end

let remove_node t k =
  flush t;
  let nn = n t in
  if k < 0 || k >= nn then invalid_arg "Link_session.remove_node: out of range";
  if k = t.root then invalid_arg "Link_session.remove_node: cannot remove the root";
  (* rev out-links of k (forward links *into* k) can carry other nodes'
     root-side paths; capture them before detaching. *)
  let rev_out = Digraph.out_links t.rev k in
  let fwd_out = if t.dynamic then Digraph.out_links t.g k else [||] in
  Digraph.detach_node t.g k;
  Digraph.detach_node t.rev k;
  mark_edit t;
  t.inval_passes <- t.inval_passes + 1;
  if t.dynamic then begin
    (* every incident link deleted, expressed as rev-graph edits.  The
       entry avoid.(k) itself survives untouched (and exact): links
       incident to k are invisible to the k-forbidden search. *)
    let redits =
      Array.fold_left
        (fun acc (u, w) ->
          { Dynamic_sssp.u = k; v = u; w0 = w; w1 = infinity } :: acc)
        [] rev_out
    in
    let redits =
      Array.fold_left
        (fun acc (y, w) ->
          { Dynamic_sssp.u = y; v = k; w0 = w; w1 = infinity } :: acc)
        redits fwd_out
    in
    repair_spt t redits;
    repair_avoid_entries t redits
  end
  else begin
    t.avoid.(k) <- None;
    Array.iteri
      (fun j entry ->
        match entry with
        | Some d when j <> k ->
          let dk = d.(k) in
          let keeps =
            dk = infinity
            || Array.for_all (fun (x, w) -> x = j || d.(x) < dk +. w) rev_out
          in
          if keeps then d.(k) <- infinity (* k is now isolated *)
          else t.avoid.(j) <- None
        | _ -> ())
      t.avoid
  end

let grow_scratches t nn =
  if nn > Dijkstra.scratch_capacity t.scratches.(0) then
    t.scratches <-
      Array.init (Wnet_par.size t.pool) (fun _ ->
          Dijkstra.make_scratch (max nn (2 * Dijkstra.scratch_capacity t.scratches.(0))));
  if nn > Dynamic_sssp.dist_scratch_capacity t.dscratches.(0) then
    t.dscratches <-
      Array.init (Wnet_par.size t.pool) (fun _ ->
          Dynamic_sssp.make_dist_scratch
            (max nn (2 * Dynamic_sssp.dist_scratch_capacity t.dscratches.(0))))

let apply_links t id ~out ~inn =
  List.iter
    (fun (v, w) ->
      if w < infinity then begin
        Digraph.set_weight t.g id v w;
        Digraph.set_weight t.rev v id w
      end)
    out;
  List.iter
    (fun (u, w) ->
      if w < infinity then begin
        Digraph.set_weight t.g u id w;
        Digraph.set_weight t.rev id u w
      end)
    inn

(* Dynamic mode: a freshly attached node's links, as rev-graph
   insertions, read off the graph itself (so duplicates in the caller's
   link lists fold away). *)
let attach_redits t id =
  let redits =
    Array.fold_left
      (fun acc (v, w) ->
        { Dynamic_sssp.u = v; v = id; w0 = infinity; w1 = w } :: acc)
      []
      (Digraph.out_links t.g id)
  in
  Array.fold_left
    (fun acc (u, w) ->
      { Dynamic_sssp.u = id; v = u; w0 = infinity; w1 = w } :: acc)
    redits
    (Digraph.out_links t.rev id)

(* Drop mode: [id]'s links are freshly in place and every surviving
   cache currently holds [d.(id) = infinity] (extended row, or a node
   isolated by {!remove_node}).  [id]'s avoidance distance is one
   Bellman step over its rev in-links (= forward out-links): all new
   links are incident to [id], so the best root-side path ends with one
   of them and an untouched prefix.  A cache survives iff [id]'s rev
   out-links improve nobody (ties keep the minimum's bit pattern, so
   [<=] is exact). *)
let patch_attached t id =
  let rev_in = Digraph.out_links t.g id (* (v, w): rev-link v -> id *) in
  let rev_out = Digraph.out_links t.rev id (* (u, w): rev-link id -> u *) in
  Array.iteri
    (fun j entry ->
      match entry with
      | Some d when j <> id ->
        let dy =
          Array.fold_left
            (fun acc (v, w) -> Float.min acc (d.(v) +. w))
            infinity rev_in
        in
        let keeps =
          dy = infinity
          || Array.for_all (fun (u, w) -> u = j || d.(u) <= dy +. w) rev_out
        in
        if keeps then d.(id) <- dy else t.avoid.(j) <- None
      | _ -> ())
    t.avoid

let attach t id =
  t.inval_passes <- t.inval_passes + 1;
  if t.dynamic then begin
    let redits = attach_redits t id in
    repair_spt t redits;
    repair_avoid_entries t redits
  end
  else patch_attached t id

let check_attach_link ~what ~n ~self (x, w) =
  if x < 0 || x >= n || x = self then
    invalid_arg (what ^ ": link endpoint out of range");
  if Float.is_nan w || w < 0.0 then
    invalid_arg (what ^ ": weight must be non-negative")

let add_node t ~out ~inn =
  flush t;
  let old_n = n t in
  List.iter (check_attach_link ~what:"Link_session.add_node" ~n:old_n ~self:(-1)) out;
  List.iter (check_attach_link ~what:"Link_session.add_node" ~n:old_n ~self:(-1)) inn;
  let id = Digraph.add_node t.g in
  let id' = Digraph.add_node t.rev in
  assert (id = id');
  grow_scratches t (id + 1);
  let avoid = Array.make (id + 1) None in
  let avoid_epoch = Array.make (id + 1) (-1) in
  Array.iteri
    (fun j entry ->
      match entry with
      | Some d ->
        let d' = Array.make (id + 1) infinity in
        Array.blit d 0 d' 0 old_n;
        avoid.(j) <- Some d';
        avoid_epoch.(j) <- t.avoid_epoch.(j)
      | None -> ())
    t.avoid;
  t.avoid <- avoid;
  t.avoid_epoch <- avoid_epoch;
  apply_links t id ~out ~inn;
  mark_edit t;
  attach t id;
  id

let rejoin_node t k ~out ~inn =
  flush t;
  let nn = n t in
  if k < 0 || k >= nn then invalid_arg "Link_session.rejoin_node: out of range";
  if k = t.root then invalid_arg "Link_session.rejoin_node: cannot rejoin the root";
  if
    Array.length (Digraph.out_links t.g k) > 0
    || Array.length (Digraph.out_links t.rev k) > 0
  then invalid_arg "Link_session.rejoin_node: node is not isolated";
  List.iter (check_attach_link ~what:"Link_session.rejoin_node" ~n:nn ~self:k) out;
  List.iter (check_attach_link ~what:"Link_session.rejoin_node" ~n:nn ~self:k) inn;
  apply_links t k ~out ~inn;
  mark_edit t;
  (* Surviving caches hold d.(k) = infinity — exactly the add_node
     situation, minus the array extension.  (Drop mode must forget
     avoid.(k): the node's own entry was computed before it left.  It
     is in fact still exact — k's links are invisible to the
     k-forbidden search — which is why dynamic mode keeps it.) *)
  if not t.dynamic then t.avoid.(k) <- None;
  attach t k

(* ------------------------------------------------------------------ *)
(* The batch, assembled from caches.                                    *)

let relay_array is_relay =
  let l = ref [] in
  for k = Array.length is_relay - 1 downto 0 do
    if is_relay.(k) then l := k :: !l
  done;
  Array.of_list !l

let shared_tree t =
  if t.dynamic then begin
    match t.dyn with
    | Some dy ->
      (* flush and the structural deltas keep the patched tree exact;
         anything else would be a bookkeeping bug — recover loudly in
         debug, silently in release *)
      if t.tree_version <> version t then begin
        Dynamic_sssp.rebuild dy;
        t.spt_runs <- t.spt_runs + 1;
        t.tree_version <- version t
      end;
      Dynamic_sssp.tree dy
    | None ->
      let dy = Dynamic_sssp.create ~graph:t.rev ~mirror:t.g ~source:t.root in
      t.dyn <- Some dy;
      t.tree_version <- version t;
      t.spt_runs <- t.spt_runs + 1;
      Dynamic_sssp.tree dy
  end
  else
    match t.tree with
    | Some tree when t.tree_version = version t -> tree
    | _ ->
      let tree = Dijkstra.link_weighted t.rev t.root in
      t.tree <- Some tree;
      t.tree_version <- version t;
      t.spt_runs <- t.spt_runs + 1;
      tree

let entry_fresh t k =
  match t.avoid.(k) with
  | None -> false
  | Some _ -> (not t.dynamic) || t.avoid_epoch.(k) = t.cache_epoch

let payments t =
  match t.last with
  | Some (v, batch) when v = version t -> batch
  | _ ->
    flush t;
    let nn = n t in
    let tree = shared_tree t in
    let next_hop v = tree.Dijkstra.parent.(v) in
    (* Relays: internal nodes of the reversed shortest-path tree. *)
    let is_relay = Array.make nn false in
    for v = 0 to nn - 1 do
      if v <> t.root && Dijkstra.reachable tree v then begin
        let h = next_hop v in
        if h <> t.root && h >= 0 then is_relay.(h) <- true
      end
    done;
    let relays = relay_array is_relay in
    let missing =
      relay_array (Array.init nn (fun k -> is_relay.(k) && not (entry_fresh t k)))
    in
    let dists =
      match t.kernel with
      | `CsrBounded when Array.length missing > 0 ->
        (* Per-relay fills bounded to the relay's SPT subtree: exterior
           distances are copied bit-for-bit from the shared tree, only
           the region is wiped/reseeded/settled.  Oversized subtrees
           fall back to the full-graph CSR kernel.  Stolen tasks run on
           other domains, so they only return (dist, region) pairs; the
           counters and histogram are folded here on the main thread. *)
        let idx = Avoid_region.make_index tree in
        let states =
          Array.init (Array.length t.scratches) (fun i ->
              (t.scratches.(i), t.dscratches.(i)))
        in
        let pairs =
          steal_map t ~states
            (fun (scratch, ds) k ->
              let d = Array.make nn infinity in
              let r =
                Avoid_region.link_avoid ds idx ~graph:t.rev ~mirror:t.g ~tree
                  ~avoid:k ~dist:d
              in
              if r >= 0 then (d, r)
              else
                ( Dijkstra.link_weighted_dist_csr scratch ~avoid:k t.rev t.root,
                  -1 ))
            missing
        in
        Array.map
          (fun (d, r) ->
            if r >= 0 then begin
              t.avoid_bounded <- t.avoid_bounded + 1;
              record_region t r
            end
            else t.avoid_fallback <- t.avoid_fallback + 1;
            d)
          pairs
      | `CsrBounded -> [||]
      | `Csr ->
        steal_map t ~states:t.scratches
          (fun scratch k ->
            Dijkstra.link_weighted_dist_csr scratch ~avoid:k t.rev t.root)
          missing
      | `Boxed ->
        steal_map t ~states:t.scratches
          (fun scratch k ->
            Dijkstra.link_weighted_dist scratch ~forbidden:(fun v -> v = k)
              t.rev t.root)
          missing
    in
    Array.iteri
      (fun i k ->
        t.avoid.(k) <- Some dists.(i);
        t.avoid_epoch.(k) <- t.cache_epoch)
      missing;
    t.avoid_runs <- t.avoid_runs + Array.length missing;
    t.avoid_reused <-
      t.avoid_reused + (Array.length relays - Array.length missing);
    let cut = Array.make nn false in
    let results =
      Array.init nn (fun src ->
          if src = t.root || not (Dijkstra.reachable tree src) then None
          else begin
            let rec chain v acc =
              if v = t.root then List.rev (t.root :: acc)
              else chain (next_hop v) (v :: acc)
            in
            let path = Array.of_list (chain src []) in
            let lcp_cost = Dijkstra.dist tree src in
            let len = Array.length path in
            let payments = Array.make nn 0.0 in
            for l = 1 to len - 2 do
              let k = path.(l) in
              let used_link = Digraph.weight t.g k path.(l + 1) in
              let avoid_k =
                match t.avoid.(k) with
                | Some d -> d.(src)
                | None -> assert false (* every internal node is a relay *)
              in
              let delta = avoid_k -. lcp_cost in
              payments.(k) <- used_link +. delta;
              if avoid_k = infinity then cut.(k) <- true
            done;
            let first_link =
              if len >= 2 then Digraph.weight t.g path.(0) path.(1) else 0.0
            in
            Some
              {
                src;
                path;
                lcp_cost;
                relay_cost = lcp_cost -. first_link;
                payments;
              }
          end)
    in
    t.unbounded <- Array.to_list (relay_array cut);
    let batch =
      { root = t.root; to_root_dist = Array.copy tree.Dijkstra.dist; results }
    in
    t.last <- Some (version t, batch);
    batch
