(** Incremental payment sessions, and the model-agnostic session API.

    The two concrete engines ({!Link_session} for the Sec. III-F
    link-cost model, {!Node_session} for the Sec. II node-cost model)
    share one architecture — mutable topology, shared SPT, per-relay
    avoidance caches, deferred coalesced invalidation, a {!Wnet_par}
    pool — but expose model-specific graphs and deltas.  Every front-end
    (the stdin line protocol, the socket server, the bench) used to
    duplicate its serve loop per model; {!S} packages a running session
    behind one first-class signature so a single generic loop drives
    both.

    {!make} opens a session on either graph kind and returns the
    packaged instance.  All determinism contracts of the underlying
    engines carry over: {!S.pay} is bit-identical to a from-scratch
    batch on the edited topology, at every pool size. *)

module Link_session = Link_session
module Node_session = Node_session

type model = [ `Node | `Link ]

type stats = Link_session.stats = {
  edits : int;
  coalesced_edits : int;
  inval_passes : int;
  spt_runs : int;
  avoid_runs : int;
  avoid_reused : int;
  repaired_entries : int;
  fallback_recomputes : int;
  tasks_executed : int;
  tasks_stolen : int;
  avoid_bounded : int;
  avoid_fallback : int;
}
(** The unified work ledger (the node engine's counters are converted
    into the same record). *)

val stats_version : int
(** Version of the stats wire layout: 1 = the first 6 counters, 2 = the
    first 8, 3 = the first 10, 4 = all 12.  Older layouts are strict
    prefixes of newer ones, which is what lets {!Wnet_proto} keep
    parsing every legacy arity through one table. *)

val zero_stats : stats
(** All counters zero — the [of_fields] default for omitted trailing
    counters on short legacy lines. *)

val stats_field_names : string array
(** The counter keys in wire order ([edits], [coalesced], ...,
    [avoid_fallback]); index [i] names the [i]-th token of the stats
    line. *)

val to_fields : stats -> (string * int) list
(** The record as [(key, value)] pairs in wire order.  The text
    protocol prints the stats line from this — adding a counter to the
    layout table updates printing, parsing and the key list at once. *)

val of_fields : (string * int) list -> (stats, string) result
(** Rebuild a record from [(key, value)] pairs; keys may be any subset
    (missing counters default to zero, as on legacy wire forms),
    unknown keys are an [Error]. *)

(** A topology delta, covering both models.  [Set_node_cost] is valid
    only on [`Node] sessions; [Set_link_cost], [Join] and [Rejoin] only
    on [`Link] sessions; [Leave] on both. *)
type delta =
  | Set_node_cost of { node : int; cost : float }
  | Set_link_cost of { u : int; v : int; w : float }
  | Join of { out : (int * float) list; inn : (int * float) list }
  | Rejoin of { node : int; out : (int * float) list; inn : (int * float) list }
  | Leave of { node : int }

type ack = { version : int; node : int option }
(** Result of a delta: the session version after it, and the id
    assigned by [Join]. *)

type served = {
  src : int;
  path : int list;  (** [src; ...; root] *)
  charge : float;  (** total payment; [infinity] = a monopoly relay *)
}

type pay = {
  served : served list;  (** ascending [src]; unserved sources omitted *)
  unbounded : int;  (** served sources whose charge is [infinity] *)
  total : float;  (** sum of the finite charges *)
}

(** A running session, model-erased.  Operations raise [Failure] on a
    delta the model does not support and [Invalid_argument] exactly as
    the underlying engine.

    Sessions are {e single-owner}: the instance binds to the first
    domain that calls {!S.apply}, {!S.pay} or {!S.flush} and raises
    [Failure] if another domain mutates it afterwards — the sharded
    socket server places each session on exactly one shard domain, and
    this guard turns a placement bug into a loud failure instead of a
    data race.  Read-only accessors ([n], [version], [stats], ...) stay
    unguarded so cross-shard counter roll-ups can snapshot them. *)
module type S = sig
  val model : model
  val root : int
  val domains : int  (** pool size payments fan out over *)

  val n : unit -> int
  val version : unit -> int
  val apply : delta -> ack
  val pay : unit -> pay
  val flush : unit -> unit
  val stats : unit -> stats
end

val make :
  ?pool:Wnet_par.t ->
  root:int ->
  [ `Node of Wnet_graph.Graph.t | `Link of Wnet_graph.Digraph.t ] ->
  (module S)
(** [make ~root (`Link g)] (resp. [`Node g]) opens an incremental
    session on [g] and packages it behind {!S}.  The session never
    aliases the caller's graph (the link engine deep-copies, the node
    engine shares only immutable structure).  [?pool] defaults to
    {!Wnet_par.sequential}.
    @raise Invalid_argument if [root] is out of range. *)
