(** Incremental all-to-access-point payment sessions, node-cost model
    (Sec. II — the paper's primary model).

    The node-model sibling of {!Link_session}: a session owns the
    graph, the shared node-weighted shortest-path tree from the access
    point (node-weighted distances are symmetric, so from-root trees
    serve to-root queries), the per-relay avoidance-distance cache, a
    {!Wnet_par} pool and per-domain Dijkstra scratches.  Deltas are a
    node's declared cost changing ({!set_cost}) and a node leaving
    ({!remove_node}); each coalesced burst {e repairs} every exact
    [k]-avoiding array in place over its affected region
    ({!Wnet_graph.Dynamic_sssp.repair_node_dist}), falling back to a
    from-scratch rerun when the region exceeds the budget.  The shared
    node-weighted tree stays live-or-die (it is one Dijkstra per burst;
    the per-relay arrays are the expensive part).  [~dynamic:false]
    restores the drop-style slack tests of PR 3.

    {b Determinism contract:} {!payments} after any edit sequence is
    bit-identical ([Float.equal], identical paths) to a from-scratch
    [Wnet_core.Unicast.all_to_root] on the edited graph — which is
    itself a one-shot session. *)

type t

type outcome = {
  src : int;
  path : Wnet_graph.Path.t;  (** [src; ...; root] *)
  lcp_cost : float;  (** relay cost of the path *)
  payments : float array;
      (** per node; [infinity] marks a monopoly (cut-vertex) relay *)
}

type stats = {
  edits : int;
  coalesced_edits : int;
      (** cost edits folded into a shared deferred-invalidation flush *)
  inval_passes : int;
      (** passes over the avoidance-cache array (flushes + leaves) *)
  spt_runs : int;
  avoid_runs : int;
  avoid_reused : int;
  repaired_entries : int;
      (** avoidance arrays patched in place by dynamic SSSP repair *)
  fallback_recomputes : int;
      (** repair attempts that bailed (oversized affected region) *)
  tasks_executed : int;
      (** units of work run through the pool's work-stealing scheduler
          (avoidance Dijkstras and in-place repairs, inline fallbacks
          included) *)
  tasks_stolen : int;
      (** the subset executed by a domain other than the one that queued
          them — nonzero only when stealing actually rebalanced load *)
  avoid_bounded : int;
      (** cache-miss fills served by the subtree-bounded region kernel *)
  avoid_fallback : int;
      (** bounded fills that outgrew the budget and fell back to a
          full-graph CSR Dijkstra *)
}

val create :
  ?pool:Wnet_par.t ->
  ?dynamic:bool ->
  ?kernel:[ `CsrBounded | `Csr | `Boxed ] ->
  Wnet_graph.Graph.t ->
  root:int ->
  t
(** [create g ~root] opens a session on [g].  [Graph.t] is immutable,
    so the session shares the adjacency structure and swaps cost
    vectors; the caller's graph is never affected.  [~dynamic:false]
    (default [true]) disables in-place cache repair in favour of
    drop-style invalidation.  [?kernel] selects the avoidance Dijkstra
    for cache misses — [`CsrBounded] (default) the subtree-bounded
    region kernel over the shared SPT with full-CSR fallback on budget
    overflow ({!Wnet_graph.Avoid_region}), [`Csr] the flat
    zero-allocation full-graph ban-mask kernel, [`Boxed] the
    closure-predicate oracle; payments are bit-identical whichever is
    selected.
    @raise Invalid_argument if [root] is out of range. *)

val n : t -> int
val root : t -> int

val cost : t -> int -> float
(** Current declared relay cost of a node. *)

val graph : t -> Wnet_graph.Graph.t
(** The current topology (immutable value; safe to keep). *)

val version : t -> int
(** Bumps on every effective edit. *)

val set_cost : t -> int -> float -> unit
(** [set_cost s v c] re-declares node [v]'s relay cost.  The cost vector
    swaps immediately; the avoidance-cache invalidation is deferred and
    coalesced — a burst of cost edits before the next {!payments} (or
    {!remove_node}) is folded into one {!flush} pass over the cache
    array, testing each cache against the burst's net changes.
    @raise Invalid_argument on a negative or non-finite cost. *)

val flush : t -> unit
(** Apply the deferred invalidation for every buffered cost edit in one
    pass, now.  Called automatically by {!payments} and
    {!remove_node}; a no-op when nothing is buffered. *)

val remove_node : t -> int -> unit
(** [remove_node s v] isolates [v] (node leave; the identifier stays
    valid so ids are stable).
    @raise Invalid_argument when [v] is the root or out of range. *)

val payments : t -> outcome option array
(** The all-to-root batch on the current topology: entry [src] is
    [None] for the root and disconnected sources.  Shared tree
    recomputed only after an edit; avoidance Dijkstras run only for
    relays whose cache is missing or invalidated, over the session's
    pool and per-domain scratches; memoized until the next edit. *)

val relay_tables : t -> (int * float) list array
(** {!payments} reshaped the way the distributed stage-2 protocol
    reports it: entry [src] is the [(relay, payment)] table of [src]'s
    unicast, sorted by relay id; empty for the root, for sources
    adjacent to it and for disconnected sources.  This is the oracle
    side of the dsim cross-check ([Wnet_dsim.Payment_protocol]
    outcomes compare against it entry for entry). *)

val unbounded_relays : t -> int list
(** Monopoly relays as of the last {!payments}: sorted, derived from
    the cached avoidance arrays. *)

val stats : t -> stats

val region_histogram : t -> (int * int) list
(** Histogram of bounded-region sizes (successful repairs and
    subtree-bounded cache-miss fills), same power-of-two size classes
    as {!Link_session.region_histogram}. *)
