open Wnet_graph

type outcome = {
  src : int;
  path : Path.t;
  lcp_cost : float;
  payments : float array;
}

type stats = {
  edits : int;
  coalesced_edits : int;
  inval_passes : int;
  spt_runs : int;
  avoid_runs : int;
  avoid_reused : int;
  repaired_entries : int;
  fallback_recomputes : int;
  tasks_executed : int;
  tasks_stolen : int;
  avoid_bounded : int;
  avoid_fallback : int;
}

(* Region-size histogram, same classes as {!Link_session}. *)
let hist_buckets = 24

let hist_bucket r =
  if r <= 0 then 0
  else begin
    let b = ref 1 and x = ref r in
    while !x > 1 do
      incr b;
      x := !x lsr 1
    done;
    min !b (hist_buckets - 1)
  end

type t = {
  root : int;
  pool : Wnet_par.t;
  dynamic : bool;
  kernel : [ `CsrBounded | `Csr | `Boxed ];
      (* avoidance kernel for cache misses: subtree-bounded region
         kernel over the shared SPT (default, full-CSR fallback on
         budget overflow), flat CSR ban-mask, or the boxed closure
         oracle — bit-identical outputs *)
  mutable g : Graph.t;  (* adjacency shared; cost vector swapped per edit *)
  mutable gver : int;  (* session-managed version stamp *)
  mutable tree : Dijkstra.tree option;
      (* the node-weighted shared tree stays live-or-die in both modes:
         Dynamic_sssp repairs link-weighted trees, and the node model's
         tree is one Dijkstra per burst anyway — the per-relay avoidance
         arrays are the expensive part, and those are patched *)
  mutable tree_version : int;
  mutable avoid : float array option array;
  mutable avoid_epoch : int array;  (* dynamic mode: exact iff = cache_epoch *)
  mutable cache_epoch : int;
  scratches : Dijkstra.scratch array;
  dscratches : Dynamic_sssp.dist_scratch array;
  mutable unbounded : int list;
  mutable last : (int * outcome option array) option;
  pending : (int, float) Hashtbl.t;
      (* nodes cost-edited since the last flush, mapped to their cost
         *before* the burst; invalidation is deferred and coalesced *)
  mutable pending_order : int list;  (* insertion order, reversed *)
  mutable pending_edits : int;
  mutable edits : int;
  mutable coalesced_edits : int;
  mutable inval_passes : int;
  mutable spt_runs : int;
  mutable avoid_runs : int;
  mutable avoid_reused : int;
  mutable repaired_entries : int;
  mutable fallback_recomputes : int;
  mutable tasks_executed : int;
  mutable tasks_stolen : int;
  mutable avoid_bounded : int;
  mutable avoid_fallback : int;
  region_hist : int array;
}

let create ?(pool = Wnet_par.sequential) ?(dynamic = true)
    ?(kernel = `CsrBounded) g ~root =
  let n = Graph.n g in
  if root < 0 || root >= n then invalid_arg "Node_session.create: root out of range";
  {
    root;
    pool;
    dynamic;
    kernel;
    g;
    gver = 0;
    tree = None;
    tree_version = -1;
    avoid = Array.make n None;
    avoid_epoch = Array.make n (-1);
    cache_epoch = 0;
    scratches =
      Array.init (Wnet_par.size pool) (fun _ -> Dijkstra.make_scratch n);
    dscratches =
      Array.init (Wnet_par.size pool) (fun _ ->
          Dynamic_sssp.make_dist_scratch n);
    unbounded = [];
    last = None;
    pending = Hashtbl.create 16;
    pending_order = [];
    pending_edits = 0;
    edits = 0;
    coalesced_edits = 0;
    inval_passes = 0;
    spt_runs = 0;
    avoid_runs = 0;
    avoid_reused = 0;
    repaired_entries = 0;
    fallback_recomputes = 0;
    tasks_executed = 0;
    tasks_stolen = 0;
    avoid_bounded = 0;
    avoid_fallback = 0;
    region_hist = Array.make hist_buckets 0;
  }

let n t = Graph.n t.g
let root t = t.root
let cost t v = Graph.cost t.g v
let graph t = t.g
let version t = t.gver
let stats t =
  { edits = t.edits; coalesced_edits = t.coalesced_edits;
    inval_passes = t.inval_passes; spt_runs = t.spt_runs;
    avoid_runs = t.avoid_runs; avoid_reused = t.avoid_reused;
    repaired_entries = t.repaired_entries;
    fallback_recomputes = t.fallback_recomputes;
    tasks_executed = t.tasks_executed; tasks_stolen = t.tasks_stolen;
    avoid_bounded = t.avoid_bounded; avoid_fallback = t.avoid_fallback }
let unbounded_relays t = t.unbounded

let region_histogram t =
  let out = ref [] in
  for b = hist_buckets - 1 downto 0 do
    if t.region_hist.(b) > 0 then
      let lo = if b = 0 then 0 else 1 lsl (b - 1) in
      out := (lo, t.region_hist.(b)) :: !out
  done;
  !out

let record_region t r =
  t.region_hist.(hist_bucket r) <- t.region_hist.(hist_bucket r) + 1

(* See {!Link_session}: stealing fan-out plus counter-delta folding. *)
let steal_map t ~states f a =
  let before = Wnet_par.stats t.pool in
  let r = Wnet_par.map_array_stealing_pooled t.pool ~states f a in
  let after = Wnet_par.stats t.pool in
  t.tasks_executed <-
    t.tasks_executed + after.Wnet_par.tasks_executed
    - before.Wnet_par.tasks_executed;
  t.tasks_stolen <-
    t.tasks_stolen + after.Wnet_par.tasks_stolen - before.Wnet_par.tasks_stolen;
  r

let mark_edit t =
  t.gver <- t.gver + 1;
  t.edits <- t.edits + 1;
  t.last <- None

(* Node [x]'s cost changed from [c0] to [c1] (removal: [c1 = infinity],
   which kills every relaxation out of [x]).  A cached [j]-avoiding
   array [d] survives iff no root-side shortest path of that search can
   be touched: relaxations out of [x] offer each neighbour [w] the
   candidate [d.(x) +. cost x] (node-weighted Dijkstra charges the
   relay cost on *leaving* [x]), so the cache is exact as long as no
   such candidate improves — or was tight for — its target.  The float
   comparisons mirror the relaxation arithmetic bit for bit. *)
let cost_edit_keeps d ~nbrs ~j ~x ~c0 ~c1 =
  let dx = d.(x) in
  dx = infinity
  || Array.for_all
       (fun w ->
         w = j
         || (if c1 < c0 then d.(w) <= dx +. c1 else d.(w) < dx +. c0))
       nbrs

(* Dynamic mode: patch every currently-exact avoidance entry against the
   burst's net node-cost edits, fanned out over the pool.  An
   [`Overflow] leaves the entry corrupted: drop it and count a
   fallback. *)
let repair_avoid_entries t nedits =
  let fresh = ref [] in
  Array.iteri
    (fun j entry ->
      match entry with
      | Some _ when t.avoid_epoch.(j) = t.cache_epoch -> fresh := j :: !fresh
      | _ -> ())
    t.avoid;
  let fresh = Array.of_list (List.rev !fresh) in
  t.cache_epoch <- t.cache_epoch + 1;
  let regions =
    steal_map t ~states:t.dscratches
      (fun ds j ->
        match t.avoid.(j) with
        | Some d -> (
          match
            Dynamic_sssp.repair_node_dist ds ~forbidden:j ~graph:t.g
              ~source:t.root ~dist:d nedits
          with
          | `Patched r -> r
          | `Overflow -> -1)
        | None -> -1)
      fresh
  in
  Array.iteri
    (fun i j ->
      if regions.(i) >= 0 then begin
        t.avoid_epoch.(j) <- t.cache_epoch;
        t.repaired_entries <- t.repaired_entries + 1;
        record_region t regions.(i)
      end
      else begin
        t.avoid.(j) <- None;
        t.fallback_recomputes <- t.fallback_recomputes + 1
      end)
    fresh

(* Deferred, coalesced maintenance: cost edits swap the cost vector
   eagerly, the cache pass waits for the next flush and handles each
   surviving cache against every *net* node-cost change in one go —
   dynamic-repairing it in place, or (drop mode) testing the slack
   conditions and dropping it whole (same soundness argument as the
   link model: a kept decrease improves no relaxation target, a kept
   increase was strictly slack, a reverted edit vanishes).  Adjacency
   never changes between flushes — the structural delta
   ({!remove_node}) flushes first — so neighbour sets read at flush
   time are the ones every buffered edit saw. *)
let flush t =
  if t.pending_edits > 0 then begin
    let net =
      List.rev_map
        (fun x ->
          let c0 = Hashtbl.find t.pending x in
          (x, Graph.neighbors t.g x, c0, Graph.cost t.g x))
        t.pending_order
      |> List.filter (fun (_, _, c0, c1) -> not (Float.equal c0 c1))
    in
    t.coalesced_edits <- t.coalesced_edits + t.pending_edits;
    Hashtbl.reset t.pending;
    t.pending_order <- [];
    t.pending_edits <- 0;
    if net <> [] then begin
      t.inval_passes <- t.inval_passes + 1;
      if t.dynamic then
        repair_avoid_entries t
          (List.map
             (fun (x, nbrs, c0, c1) -> { Dynamic_sssp.x; nbrs; c0; c1 })
             net)
      else
        Array.iteri
          (fun j entry ->
            match entry with
            | Some d ->
              if
                not
                  (List.for_all
                     (fun (x, nbrs, c0, c1) ->
                       j = x || cost_edit_keeps d ~nbrs ~j ~x ~c0 ~c1)
                     net)
              then t.avoid.(j) <- None
            | None -> ())
          t.avoid
    end
  end

let set_cost t x c =
  if x < 0 || x >= n t then invalid_arg "Node_session.set_cost: out of range";
  let c0 = Graph.cost t.g x in
  if not (Float.equal c0 c) then begin
    t.g <- Graph.with_cost t.g x c;
    mark_edit t;
    (* The root's relay cost never enters a from-root search (leaving
       the source is free) nor any payment, so every cache survives and
       there is nothing to buffer. *)
    if x <> t.root then begin
      t.pending_edits <- t.pending_edits + 1;
      if not (Hashtbl.mem t.pending x) then begin
        Hashtbl.add t.pending x c0;
        t.pending_order <- x :: t.pending_order
      end
    end
  end

let remove_node t x =
  if x < 0 || x >= n t then invalid_arg "Node_session.remove_node: out of range";
  if x = t.root then invalid_arg "Node_session.remove_node: cannot remove the root";
  flush t;
  let nbrs = Graph.neighbors t.g x in
  let c0 = Graph.cost t.g x in
  t.g <- Graph.remove_node t.g x;
  mark_edit t;
  t.inval_passes <- t.inval_passes + 1;
  if t.dynamic then begin
    (* as a cost edit to infinity: no search relays x any more.  The
       entry avoid.(x) itself stays exact (x is invisible to its own
       search); the others are repaired, then x's now-adjacencyless
       label is forced to the from-scratch value. *)
    repair_avoid_entries t
      [ { Dynamic_sssp.x; nbrs; c0; c1 = infinity } ];
    Array.iteri
      (fun j entry ->
        match entry with
        | Some d when t.avoid_epoch.(j) = t.cache_epoch -> d.(x) <- infinity
        | _ -> ())
      t.avoid
  end
  else begin
    t.avoid.(x) <- None;
    Array.iteri
      (fun j entry ->
        match entry with
        | Some d when j <> x ->
          if cost_edit_keeps d ~nbrs ~j ~x ~c0 ~c1:infinity then
            d.(x) <- infinity (* x is now isolated *)
          else t.avoid.(j) <- None
        | _ -> ())
      t.avoid
  end

let relay_array is_relay =
  let l = ref [] in
  for k = Array.length is_relay - 1 downto 0 do
    if is_relay.(k) then l := k :: !l
  done;
  Array.of_list !l

let shared_tree t =
  match t.tree with
  | Some tree when t.tree_version = t.gver -> tree
  | _ ->
    let tree = Dijkstra.node_weighted t.g ~source:t.root in
    t.tree <- Some tree;
    t.tree_version <- t.gver;
    t.spt_runs <- t.spt_runs + 1;
    tree

let entry_fresh t k =
  match t.avoid.(k) with
  | None -> false
  | Some _ -> (not t.dynamic) || t.avoid_epoch.(k) = t.cache_epoch

let payments t =
  match t.last with
  | Some (v, results) when v = t.gver -> results
  | _ ->
    flush t;
    let nn = n t in
    let tree = shared_tree t in
    let next_hop v = tree.Dijkstra.parent.(v) in
    let is_relay = Array.make nn false in
    for v = 0 to nn - 1 do
      if v <> t.root && Dijkstra.reachable tree v then begin
        let h = next_hop v in
        if h >= 0 && h <> t.root then is_relay.(h) <- true
      end
    done;
    let relays = relay_array is_relay in
    let missing =
      relay_array (Array.init nn (fun k -> is_relay.(k) && not (entry_fresh t k)))
    in
    let dists =
      match t.kernel with
      | `CsrBounded when Array.length missing > 0 ->
        (* Subtree-bounded fills; see {!Link_session.payments}.  Stolen
           tasks return (dist, region) pairs, counters fold here on the
           main thread. *)
        let idx = Avoid_region.make_index tree in
        let states =
          Array.init (Array.length t.scratches) (fun i ->
              (t.scratches.(i), t.dscratches.(i)))
        in
        let pairs =
          steal_map t ~states
            (fun (scratch, ds) k ->
              let d = Array.make nn infinity in
              let r =
                Avoid_region.node_avoid ds idx ~graph:t.g ~tree ~avoid:k
                  ~dist:d
              in
              if r >= 0 then (d, r)
              else
                ( Dijkstra.node_weighted_dist_csr scratch ~avoid:k t.g
                    ~source:t.root,
                  -1 ))
            missing
        in
        Array.map
          (fun (d, r) ->
            if r >= 0 then begin
              t.avoid_bounded <- t.avoid_bounded + 1;
              record_region t r
            end
            else t.avoid_fallback <- t.avoid_fallback + 1;
            d)
          pairs
      | `CsrBounded -> [||]
      | `Csr ->
        steal_map t ~states:t.scratches
          (fun scratch k ->
            Dijkstra.node_weighted_dist_csr scratch ~avoid:k t.g ~source:t.root)
          missing
      | `Boxed ->
        steal_map t ~states:t.scratches
          (fun scratch k ->
            Dijkstra.node_weighted_dist scratch ~forbidden:(fun v -> v = k) t.g
              ~source:t.root)
          missing
    in
    Array.iteri
      (fun i k ->
        t.avoid.(k) <- Some dists.(i);
        t.avoid_epoch.(k) <- t.cache_epoch)
      missing;
    t.avoid_runs <- t.avoid_runs + Array.length missing;
    t.avoid_reused <-
      t.avoid_reused + (Array.length relays - Array.length missing);
    let cut = Array.make nn false in
    let results =
      Array.init nn (fun src ->
          if src = t.root || not (Dijkstra.reachable tree src) then None
          else begin
            let rec chain v acc =
              if v = t.root then List.rev (t.root :: acc)
              else chain (next_hop v) (v :: acc)
            in
            let path = Array.of_list (chain src []) in
            let lcp_cost = Dijkstra.dist tree src in
            let payments = Array.make nn 0.0 in
            Array.iter
              (fun k ->
                let avoid_k =
                  match t.avoid.(k) with
                  | Some d -> d.(src)
                  | None -> assert false
                in
                payments.(k) <- Graph.cost t.g k +. avoid_k -. lcp_cost;
                if avoid_k = infinity then cut.(k) <- true)
              (Path.relays path);
            Some { src; path; lcp_cost; payments }
          end)
    in
    t.unbounded <- Array.to_list (relay_array cut);
    t.last <- Some (t.gver, results);
    results

(* The payments table reshaped the way the distributed protocols report
   it: per source, a (relay, payment) assoc sorted by relay id.  Used as
   the oracle side of the dsim cross-check. *)
let relay_tables t =
  let results = payments t in
  Array.map
    (fun o ->
      match o with
      | None -> []
      | Some o ->
        Path.relays o.path |> Array.to_list
        |> List.map (fun k -> (k, o.payments.(k)))
        |> List.sort compare)
    results
