module Link_session = Link_session
module Node_session = Node_session

type model = [ `Node | `Link ]

type stats = Link_session.stats = {
  edits : int;
  coalesced_edits : int;
  inval_passes : int;
  spt_runs : int;
  avoid_runs : int;
  avoid_reused : int;
  repaired_entries : int;
  fallback_recomputes : int;
  tasks_executed : int;
  tasks_stolen : int;
  avoid_bounded : int;
  avoid_fallback : int;
}

(* The stats wire layout, one row per counter: key, getter, setter.
   Both directions of the text protocol derive from this table
   (Wnet_proto prints `ok k=v ...` from [to_fields] and rebuilds the
   record through [of_fields]), so adding a counter is one row here —
   not an arity case in every parser.  Rows are in wire order; older
   layouts are prefixes (v1 = 6 counters, v2 = 8, v3 = 10, v4 = all
   12). *)
let stats_layout :
    (string * (stats -> int) * (stats -> int -> stats)) array =
  [|
    ("edits", (fun s -> s.edits), fun s v -> { s with edits = v });
    ( "coalesced",
      (fun s -> s.coalesced_edits),
      fun s v -> { s with coalesced_edits = v } );
    ( "inval_passes",
      (fun s -> s.inval_passes),
      fun s v -> { s with inval_passes = v } );
    ("spt_runs", (fun s -> s.spt_runs), fun s v -> { s with spt_runs = v });
    ( "avoid_runs",
      (fun s -> s.avoid_runs),
      fun s v -> { s with avoid_runs = v } );
    ( "avoid_reused",
      (fun s -> s.avoid_reused),
      fun s v -> { s with avoid_reused = v } );
    ( "repaired",
      (fun s -> s.repaired_entries),
      fun s v -> { s with repaired_entries = v } );
    ( "fallbacks",
      (fun s -> s.fallback_recomputes),
      fun s v -> { s with fallback_recomputes = v } );
    ( "tasks",
      (fun s -> s.tasks_executed),
      fun s v -> { s with tasks_executed = v } );
    ( "stolen",
      (fun s -> s.tasks_stolen),
      fun s v -> { s with tasks_stolen = v } );
    ( "avoid_bounded",
      (fun s -> s.avoid_bounded),
      fun s v -> { s with avoid_bounded = v } );
    ( "avoid_fallback",
      (fun s -> s.avoid_fallback),
      fun s v -> { s with avoid_fallback = v } );
  |]

let stats_version = 4

let zero_stats =
  {
    edits = 0;
    coalesced_edits = 0;
    inval_passes = 0;
    spt_runs = 0;
    avoid_runs = 0;
    avoid_reused = 0;
    repaired_entries = 0;
    fallback_recomputes = 0;
    tasks_executed = 0;
    tasks_stolen = 0;
    avoid_bounded = 0;
    avoid_fallback = 0;
  }

let stats_field_names = Array.map (fun (k, _, _) -> k) stats_layout

let to_fields st =
  Array.to_list (Array.map (fun (k, get, _) -> (k, get st)) stats_layout)

let of_fields fields =
  let rec go acc = function
    | [] -> Ok acc
    | (k, v) :: rest -> (
      match
        Array.find_opt (fun (k', _, _) -> String.equal k k') stats_layout
      with
      | Some (_, _, set) -> go (set acc v) rest
      | None -> Error (Printf.sprintf "unknown stats counter %S" k))
  in
  go zero_stats fields

type delta =
  | Set_node_cost of { node : int; cost : float }
  | Set_link_cost of { u : int; v : int; w : float }
  | Join of { out : (int * float) list; inn : (int * float) list }
  | Rejoin of { node : int; out : (int * float) list; inn : (int * float) list }
  | Leave of { node : int }

type ack = { version : int; node : int option }

type served = { src : int; path : int list; charge : float }
type pay = { served : served list; unbounded : int; total : float }

module type S = sig
  val model : model
  val root : int
  val domains : int
  val n : unit -> int
  val version : unit -> int
  val apply : delta -> ack
  val pay : unit -> pay
  val flush : unit -> unit
  val stats : unit -> stats
end

(* Assemble the protocol-level pay summary from per-source outcomes: one
   [served] line per reachable non-root source, a charge of [infinity]
   marking a monopoly (cut-vertex) relay on its path. *)
let collect_pay outcomes =
  let served = ref [] and unbounded = ref 0 and total = ref 0.0 in
  Array.iter
    (function
      | None -> ()
      | Some (src, path, charge) ->
        if charge < infinity then total := !total +. charge
        else incr unbounded;
        served := { src; path = Array.to_list path; charge } :: !served)
    outcomes;
  { served = List.rev !served; unbounded = !unbounded; total = !total }

let sum_payments p = Array.fold_left ( +. ) 0.0 p

(* Shard-safe ownership: a session's mutable engine state (topology,
   caches, pending-edit buffers) is single-owner by design.  The sharded
   server relies on this — each session lives on exactly one shard
   domain — so the packaged instance binds to the first domain that
   mutates it and refuses edits, flushes and payment runs from any
   other, turning a placement bug into an immediate failure instead of
   a silent data race.  (Read-only accessors stay unguarded: the shard
   roll-up may snapshot counters, and the greeting reads n/root.) *)
let ownership_guard () =
  let owner = ref None in
  fun () ->
    let me = Domain.self () in
    match !owner with
    | None -> owner := Some me
    | Some d when d = me -> ()
    | Some _ ->
      failwith "session: used from a foreign domain (shard ownership violated)"

let make ?(pool = Wnet_par.sequential) ~root g =
  let own = ownership_guard () in
  match g with
  | `Node g ->
    let module NS = Node_session in
    let s = NS.create ~pool g ~root in
    (module struct
      let model = `Node
      let root = root
      let domains = Wnet_par.size pool
      let n () = NS.n s
      let version () = NS.version s

      let apply_delta = function
        | Set_node_cost { node; cost } ->
          NS.set_cost s node cost;
          { version = NS.version s; node = None }
        | Set_link_cost _ ->
          failwith "cost: node model takes `cost NODE COST'"
        | Join _ -> failwith "join: link model only"
        | Rejoin _ -> failwith "rejoin: link model only"
        | Leave { node } ->
          NS.remove_node s node;
          { version = NS.version s; node = None }

      let apply d =
        own ();
        apply_delta d

      let pay () =
        own ();
        collect_pay
          (Array.map
             (Option.map (fun (o : NS.outcome) ->
                  (o.NS.src, o.NS.path, sum_payments o.NS.payments)))
             (NS.payments s))

      let flush () =
        own ();
        NS.flush s

      let stats () =
        let st = NS.stats s in
        {
          edits = st.NS.edits;
          coalesced_edits = st.NS.coalesced_edits;
          inval_passes = st.NS.inval_passes;
          spt_runs = st.NS.spt_runs;
          avoid_runs = st.NS.avoid_runs;
          avoid_reused = st.NS.avoid_reused;
          repaired_entries = st.NS.repaired_entries;
          fallback_recomputes = st.NS.fallback_recomputes;
          tasks_executed = st.NS.tasks_executed;
          tasks_stolen = st.NS.tasks_stolen;
          avoid_bounded = st.NS.avoid_bounded;
          avoid_fallback = st.NS.avoid_fallback;
        }
    end : S)
  | `Link g ->
    let module LS = Link_session in
    let s = LS.create ~pool g ~root in
    (module struct
      let model = `Link
      let root = root
      let domains = Wnet_par.size pool
      let n () = LS.n s
      let version () = LS.version s

      let apply_delta = function
        | Set_link_cost { u; v; w } ->
          LS.set_cost s u v w;
          { version = LS.version s; node = None }
        | Set_node_cost _ -> failwith "cost: link model takes `cost U V W'"
        | Join { out; inn } ->
          let id = LS.add_node s ~out ~inn in
          { version = LS.version s; node = Some id }
        | Rejoin { node; out; inn } ->
          LS.rejoin_node s node ~out ~inn;
          { version = LS.version s; node = None }
        | Leave { node } ->
          LS.remove_node s node;
          { version = LS.version s; node = None }

      let apply d =
        own ();
        apply_delta d

      let pay () =
        own ();
        collect_pay
          (Array.map
             (Option.map (fun (o : LS.outcome) ->
                  (o.LS.src, o.LS.path, sum_payments o.LS.payments)))
             (LS.payments s).LS.results)

      let flush () =
        own ();
        LS.flush s
      let stats () = LS.stats s
    end : S)
