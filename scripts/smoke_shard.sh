#!/bin/sh
# Sharded-server smoke test: the same client transcript is driven
# against `unicast listen --shards 1` and `--shards 2` (two sessions,
# the client moving to session 1 mid-stream), and the payment lines
# must be byte-identical — the multi-core determinism contract, checked
# end to end through real processes.  On the 2-shard server the stats
# reply must carry one `shard id=...` row per shard, the rows must sum
# to the `server ...` totals, and SIGINT must drain both shards and
# print the per-shard breakdown.  Run from the repo root (make
# smoke-shard does this for you).
set -eu

UNICAST="dune exec --no-build bin/unicast.exe --"
DIR=$(mktemp -d "${TMPDIR:-/tmp}/wnet-shard-smoke.XXXXXX")
GRAPH="$DIR/graph.txt"
SERVER_PID=""

cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT INT TERM

fail() {
  echo "smoke_shard: FAIL: $1" >&2
  for f in "$DIR"/*.out "$DIR"/*.log; do
    [ -f "$f" ] || continue
    echo "--- $f ---" >&2
    cat "$f" >&2
  done
  exit 1
}

dune build bin/unicast.exe

$UNICAST generate --model gnp -n 16 --seed 7 > "$GRAPH"

start_server() { # $1 = shard count, $2 = socket path, $3 = log path
  $UNICAST listen --socket "$2" --model node --shards "$1" --sessions 2 \
    "$GRAPH" > "$3" 2>&1 &
  SERVER_PID=$!
  i=0
  while [ ! -S "$2" ]; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "server (shards=$1) socket never appeared"
    kill -0 "$SERVER_PID" 2>/dev/null || fail "server (shards=$1) died on startup"
    sleep 0.05
  done
}

stop_server() { # $1 = shard count, $2 = socket path
  kill -INT "$SERVER_PID"
  wait "$SERVER_PID" || fail "server (shards=$1) did not exit cleanly on SIGINT"
  SERVER_PID=""
  [ ! -S "$2" ] || fail "server (shards=$1) left its socket file behind"
}

# The transcript: edit session 0, move to session 1 (a cross-shard
# attach at shards=2), edit and collect payments there, and read the
# stats tail.  --verify-responses holds every reply — the per-shard
# rows included — to the print/parse round-trip.
drive() { # $1 = socket path, $2 = transcript path
  $UNICAST client --socket "$1" --verify-responses > "$2" <<'EOF'
cost 3 4.25
session 1
cost 5 2.5
pay
stats
quit
EOF
}

# ---- shards=1 reference run ----
start_server 1 "$DIR/s1.sock" "$DIR/s1.log"
drive "$DIR/s1.sock" "$DIR/s1.out"
stop_server 1 "$DIR/s1.sock"

# ---- shards=2 run, same transcript ----
start_server 2 "$DIR/s2.sock" "$DIR/s2.log"
drive "$DIR/s2.sock" "$DIR/s2.out"

# Two ready banners: the session-0 greeting and the session-1 attach ack.
[ "$(grep -c '^ready proto=1 model=node' "$DIR/s2.out")" = 2 ] \
  || fail "expected the greeting plus the attach banner"

# Payment lines byte-identical across shard counts.
grep '^src \|^ok served=' "$DIR/s1.out" > "$DIR/s1.pay"
grep '^src \|^ok served=' "$DIR/s2.out" > "$DIR/s2.pay"
grep -q '^ok served=' "$DIR/s1.pay" || fail "reference run collected no payments"
diff -u "$DIR/s1.pay" "$DIR/s2.pay" > /dev/null \
  || fail "payments differ between shards=1 and shards=2"

# The 2-shard stats reply: one row per shard, rows summing to the totals.
grep -q '^shard id=0 ' "$DIR/s2.out" || fail "missing shard 0 stats row"
grep -q '^shard id=1 ' "$DIR/s2.out" || fail "missing shard 1 stats row"
grep -q '^shard id=' "$DIR/s1.out" && fail "single-shard reply must not carry shard rows"
awk '
  function kv(tok) { sub(/^[a-z_]*=/, "", tok); return tok + 0 }
  /^server /   { sreq = kv($3); sbi = kv($8); sbo = kv($9) }
  /^shard id=/ { req += kv($4); bi += kv($13); bo += kv($14); rows++ }
  END {
    if (rows != 2) { print "want 2 shard rows, got " rows; exit 1 }
    if (req != sreq) { print "requests: rows " req " != server " sreq; exit 1 }
    if (bi != sbi) { print "bytes_in: rows " bi " != server " sbi; exit 1 }
    if (bo != sbo) { print "bytes_out: rows " bo " != server " sbo; exit 1 }
  }' "$DIR/s2.out" || fail "shard rows do not sum to the server totals"

stop_server 2 "$DIR/s2.sock"

# The final report carries the per-shard breakdown.
grep -q '^served 1 client(s)' "$DIR/s2.log" || fail "final counters not printed"
grep -q '^shard 0: served '   "$DIR/s2.log" || fail "missing shard 0 in the final report"
grep -q '^shard 1: served '   "$DIR/s2.log" || fail "missing shard 1 in the final report"

echo "smoke_shard: OK"
