#!/bin/sh
# Socket front-end smoke test: start `unicast listen` on a Unix-domain
# socket, drive a short transcript through `unicast client`, check the
# replies line-by-line, then SIGINT the server and verify it drains and
# exits 0.  Run from the repo root (make smoke does this for you).
set -eu

UNICAST="dune exec --no-build bin/unicast.exe --"
DIR=$(mktemp -d "${TMPDIR:-/tmp}/wnet-smoke.XXXXXX")
SOCK="$DIR/server.sock"
GRAPH="$DIR/graph.txt"
OUT="$DIR/transcript.txt"
SERVER_LOG="$DIR/server.log"
SERVER_PID=""

cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT INT TERM

fail() {
  echo "smoke_server: FAIL: $1" >&2
  echo "--- transcript ---" >&2
  cat "$OUT" >&2 || true
  echo "--- server log ---" >&2
  cat "$SERVER_LOG" >&2 || true
  exit 1
}

dune build bin/unicast.exe

$UNICAST generate --model gnp -n 16 --seed 7 > "$GRAPH"

$UNICAST listen --socket "$SOCK" --model node "$GRAPH" > "$SERVER_LOG" 2>&1 &
SERVER_PID=$!

# Wait for the socket to appear.
i=0
while [ ! -S "$SOCK" ]; do
  i=$((i + 1))
  [ "$i" -gt 100 ] && fail "server socket never appeared"
  kill -0 "$SERVER_PID" 2>/dev/null || fail "server died on startup"
  sleep 0.05
done

# One client: bump a node's declared cost, collect payments twice (the
# second run must reuse every cached tree), read the counters, quit.
# --verify-responses makes the client re-parse and re-print every server
# line and exit 1 unless each round-trips byte-identically — the wire
# grammar check, covering the stats line's task counters.
$UNICAST client --socket "$SOCK" --verify-responses > "$OUT" <<'EOF'
cost 3 4.25
pay
pay
stats
quit
EOF

grep -q '^ready proto=1 model=node'        "$OUT" || fail "missing ready banner"
grep -q '^ok version=1$'                   "$OUT" || fail "cost edit not acked"
[ "$(grep -c '^ok served=' "$OUT")" = 2 ]         || fail "expected two pay summaries"
grep -q '^ok served=0' "$OUT" && fail "no source was served (bad instance?)"
grep -q '^ok edits=1 coalesced=1 inval_passes=1'  "$OUT" || fail "session counters wrong"
grep -Eq '^ok edits=1 .* tasks=[0-9]+ stolen=[0-9]+' "$OUT" \
  || fail "stats line missing the scheduler task counters"
grep -Eq '^ok edits=1 .* avoid_bounded=[0-9]+ avoid_fallback=[0-9]+$' "$OUT" \
  || fail "stats line missing the bounded-kernel counters"
grep -Eq '^ok edits=1 .* avoid_bounded=[1-9]' "$OUT" \
  || fail "bounded kernel never served a cache-miss fill"
grep -q '^server clients=1'                "$OUT" || fail "missing server counters"
grep -q '^conn requests=4'                 "$OUT" || fail "missing conn counters"
grep -q '^bye$'                            "$OUT" || fail "quit not answered with bye"

# A second client packs its edits with --batch: four cost lines leave in
# one socket write, land at the server inside one read, and must
# coalesce into a single invalidation pass (inval_passes 1 -> 2).
$UNICAST client --socket "$SOCK" --batch 8 --verify-responses > "$OUT.batch" <<'EOF'
cost 3 5.0
cost 5 2.5
cost 7 8.0
cost 9 1.25
pay
stats
quit
EOF

grep -q '^ok edits=5 coalesced=5 inval_passes=2' "$OUT.batch" \
  || fail "--batch edits did not coalesce into one invalidation pass"
grep -q '^bye$' "$OUT.batch" || fail "batch client quit not answered"

# A third client upgrades to the binary frame protocol (proto=2): the
# same request lines leave as length-prefixed binary frames (--batch
# packs the edit burst into ONE batch frame), the replies come back as
# binary frames and are printed as the same text lines a proto=1 client
# would show — plus the extra `ready proto=2` upgrade banner.
$UNICAST client --socket "$SOCK" --proto 2 --batch 8 --verify-responses > "$OUT.bin" <<'EOF'
cost 3 6.5
cost 5 3.75
pay
stats
quit
EOF

grep -q '^ready proto=1 model=node' "$OUT.bin" || fail "binary client missed the text banner"
grep -q '^ready proto=2 model=node' "$OUT.bin" || fail "proto=2 upgrade not acked"
grep -q '^ok edits=7 coalesced=7 inval_passes=3' "$OUT.bin" \
  || fail "binary batch edits did not coalesce into one invalidation pass"
grep -Eq '^conn requests=[0-9]+ bytes_in=[0-9]+ bytes_out=[0-9]+ proto=2$' "$OUT.bin" \
  || fail "conn stats must report proto=2"
grep -q '^bye$' "$OUT.bin" || fail "binary client quit not answered"

# Graceful shutdown: SIGINT must drain and exit 0, removing the socket.
kill -INT "$SERVER_PID"
wait "$SERVER_PID" || fail "server did not exit cleanly on SIGINT"
SERVER_PID=""
[ ! -S "$SOCK" ] || fail "socket file left behind"
grep -q '^served 3 client(s)' "$SERVER_LOG" || fail "final counters not printed"

echo "smoke_server: OK"
