(* Quickstart: the strategyproof unicast mechanism on a 6-node network.

   Run with:  dune exec examples/quickstart.exe

   Walks through the whole story on one small graph: declare costs,
   compute the least cost path, compute the VCG payments, and watch a
   relay fail to profit from lying. *)

open Wnet_core
open Wnet_graph

let () =
  (* A campus scene: the access point v0, a laptop v5 wanting to upload,
     and relays v1..v4 with private per-packet energy costs. *)
  let costs = [| 0.0; 2.0; 4.0; 1.0; 4.0; 1.0 |] in
  let edges = [ (5, 1); (1, 2); (2, 0); (5, 3); (3, 4); (4, 0); (1, 3) ] in
  let g = Graph.create ~costs ~edges in
  Format.printf "Network: 6 nodes, %d links, node costs " (Graph.m g);
  Array.iteri (fun v c -> Format.printf "%s c%d=%g" (if v = 0 then "" else ",") v c) costs;
  Format.printf "@.@.";

  (* 1. Route: least cost path from the laptop (5) to the AP (0). *)
  let r = Option.get (Unicast.run g ~src:5 ~dst:0) in
  Format.printf "Least cost path:  %a   (relay cost %g)@." Path.pp r.Unicast.path
    r.Unicast.lcp_cost;

  (* 2. Pay: each relay gets its declared cost plus the damage its
     absence would cause (the VCG pivot rule). *)
  List.iter
    (fun k ->
      Format.printf "  payment to v%d = %g  (declared %g, premium %g)@." k
        (Unicast.payment_to r k) (Graph.cost g k)
        (Unicast.payment_to r k -. Graph.cost g k))
    (Unicast.relays r);
  Format.printf "  total charged to the source: %g  (overpayment ratio %.3f)@.@."
    (Unicast.total_payment r)
    (Unicast.total_payment r /. r.Unicast.lcp_cost);

  (* 3. Truthfulness: a relay that inflates its declared cost either
     keeps the same utility or prices itself off the path. *)
  let relay = List.hd (Unicast.relays r) in
  let truth = Graph.costs g in
  Format.printf "If v%d lies about its cost (truth = %g):@." relay truth.(relay);
  List.iter
    (fun lie ->
      let g' = Graph.with_cost g relay lie in
      let r' = Option.get (Unicast.run g' ~src:5 ~dst:0) in
      let u = Unicast.utility r' ~truth relay in
      Format.printf "  declares %5g -> on path: %-5b utility %g@." lie
        (Path.mem r'.Unicast.path relay) u)
    [ 0.5; truth.(relay); 2.5; 4.0; 10.0 ];
  Format.printf "Truth-telling is (weakly) best at every line above.@.@.";

  (* 4. And the mechanism checker agrees. *)
  let m = Unicast.mechanism g ~src:5 ~dst:0 in
  let violations =
    Wnet_mech.Properties.random_ic_violations (Wnet_prng.Rng.create 7) m ~truth
      ~trials:500 ~lie_bound:20.0
  in
  Format.printf "Random-lie falsifier: %d violations in 500 trials.@."
    (List.length violations)
