(* Economy demo: payments end to end (Sec. I motivation + Sec. III-H
   settlement).

   Run with:  dune exec examples/economy_demo.exe

   Part 1 answers "why pay at all?": identical traffic under four
   cooperation regimes (selfish / altruistic / fixed price / paid VCG).
   Part 2 settles actual sessions at the access point's ledger, with a
   free rider and a deadbeat in the population, and shows the signature +
   acknowledgment discipline catching both. *)

let () =
  let rng = Wnet_prng.Rng.create 77 in

  print_endline "== Part 1: what cooperation is worth (Sec. I) ==";
  print_newline ();
  print_endline
    (Wnet_experiments.Lifetime_exp.render
       (Wnet_experiments.Lifetime_exp.study ~n:80 ~sessions:1500 ~seed:78 ()));
  print_newline ();
  print_endline
    "Selfish nodes keep their batteries but the network stops carrying traffic;";
  print_endline
    "VCG payments buy back the altruistic network's throughput, rationally.";
  print_newline ();

  print_endline "== Part 2: settlement at the access point (Sec. III-H) ==";
  print_newline ();
  let t =
    Wnet_topology.Udg.generate rng ~region:(Wnet_geom.Region.square 1200.0)
      ~n:60 ~range:300.0
  in
  let costs = Wnet_topology.Udg.uniform_node_costs rng ~n:60 ~lo:0.5 ~hi:2.0 in
  let g = Wnet_topology.Udg.node_graph t ~costs in
  let principals v =
    if v = 7 then Wnet_accounting.Session_sim.Free_rider
    else if v = 11 then Wnet_accounting.Session_sim.Deadbeat
    else Wnet_accounting.Session_sim.Honest
  in
  let rep =
    Wnet_accounting.Session_sim.run rng g ~root:0 ~sessions:400
      ~packets_per_session:3 ~initial_balance:0.0 ~principals
  in
  Printf.printf "sessions settled:            %d\n" rep.Wnet_accounting.Session_sim.delivered;
  Printf.printf "rejected (free riding, v7):  %d\n" rep.Wnet_accounting.Session_sim.rejected_free_riding;
  Printf.printf "rejected (unfunded, v11):    %d\n" rep.Wnet_accounting.Session_sim.rejected_unfunded;
  Printf.printf "rejected (monopoly relays):  %d\n" rep.Wnet_accounting.Session_sim.rejected_other;
  Printf.printf "ledger books consistent:     %b\n"
    (Wnet_accounting.Session_sim.income_matches_payments rep);
  print_newline ();
  print_endline "Top relay earners:";
  let earners =
    Array.to_list (Array.mapi (fun v x -> (x, v)) rep.Wnet_accounting.Session_sim.relay_income)
    |> List.sort compare |> List.rev
  in
  List.iteri
    (fun i (income, v) ->
      if i < 5 && income > 0.0 then
        Printf.printf "  v%-3d earned %8.2f  (cost %.2f/packet, degree %d)\n" v income
          (Wnet_graph.Graph.cost g v)
          (Wnet_graph.Graph.degree g v))
    earners;
  print_newline ();
  print_endline "Every rejected session moved no money and named its offender:";
  let shown = ref 0 in
  List.iter
    (fun (session, reason) ->
      if !shown < 4 then begin
        incr shown;
        Printf.printf "  session %d: %s\n" session
          (match reason with
          | Wnet_accounting.Ledger.Unsigned_initiation -> "unsigned initiation (free riding)"
          | Wnet_accounting.Ledger.Missing_acknowledgment -> "no AP acknowledgment"
          | Wnet_accounting.Ledger.Insufficient_funds s ->
            Printf.sprintf "insufficient funds (short %.2f)" s
          | Wnet_accounting.Ledger.Duplicate_session -> "replayed session id")
      end)
    (Wnet_accounting.Ledger.rejections rep.Wnet_accounting.Session_sim.ledger)
