(* Campus scenario: the paper's motivating deployment.

   Run with:  dune exec examples/campus_udg.exe

   200 laptops scattered over a 2000m x 2000m campus, one access point,
   300m radios, power costs d^2 per link (the paper's first simulation
   model).  Every node uploads to the AP; we look at routes, payments and
   overpayment, and compare against the nuglet fixed-price baseline. *)

open Wnet_core

let () =
  let rng = Wnet_prng.Rng.create 2024 in
  let n = 200 in
  let topo =
    match
      Wnet_topology.Udg.generate_connected rng
        ~region:Wnet_geom.Region.paper_region ~n ~range:300.0 ~max_tries:50
    with
    | Some t -> t
    | None -> failwith "could not draw a connected campus; try another seed"
  in
  Format.printf "Campus: %d nodes, %d radio links, range 300 m.@.@." n
    (List.length topo.Wnet_topology.Udg.edges);

  (* Link-cost mechanism (Sec. III-F): every node's type is its vector of
     per-neighbour power costs d^2. *)
  let g =
    Wnet_topology.Udg.link_graph topo
      ~model:(Wnet_geom.Power.path_loss_only ~kappa:2.0)
  in
  let batch = Link_cost.all_to_root g ~root:0 in
  let samples = Overpayment.of_link_batch batch in
  let study = Overpayment.study samples in
  Format.printf "All-to-AP unicast under the VCG link-cost mechanism:@.";
  Format.printf "  sources served: %d (skipped %d: AP-adjacent or disconnected)@."
    (List.length study.Overpayment.samples)
    study.Overpayment.skipped;
  Format.printf "  IOR %.3f   TOR %.3f   worst ratio %.3f@.@." study.Overpayment.ior
    study.Overpayment.tor study.Overpayment.worst;

  (* A closer look at the farthest source. *)
  let far =
    Array.to_list batch.Link_cost.results
    |> List.filter_map Fun.id
    |> List.fold_left
         (fun acc (r : Link_cost.t) ->
           match acc with
           | Some (best : Link_cost.t) when best.Link_cost.lcp_cost >= r.Link_cost.lcp_cost -> acc
           | _ -> Some r)
         None
    |> Option.get
  in
  Format.printf "Farthest source v%d: %d hops, route cost %.0f, pays %.0f (ratio %.2f)@.@."
    far.Link_cost.src
    (Wnet_graph.Path.hops far.Link_cost.path)
    far.Link_cost.lcp_cost
    (Link_cost.total_payment far)
    (Link_cost.total_payment far /. Float.max far.Link_cost.relay_cost 1.0);

  (* Hop-distance profile: Fig. 3(d)'s shape on this one instance. *)
  let buckets = Overpayment.by_hop samples in
  Format.printf "Overpayment ratio by hop distance (mean / max):@.";
  List.iter
    (fun (b : Overpayment.hop_bucket) ->
      Format.printf "  %2d hops (%3d sources): %.3f / %.3f@." b.Overpayment.hop
        b.Overpayment.count b.Overpayment.mean_ratio b.Overpayment.max_ratio)
    buckets;
  Format.printf "@.";

  (* Baseline: the nuglet fixed-price scheme on the same campus with
     heterogeneous node costs: rational nodes whose cost exceeds one
     nuglet opt out and delivery suffers. *)
  let node_costs = Wnet_topology.Udg.uniform_node_costs rng ~n ~lo:0.2 ~hi:3.0 in
  let ng = Wnet_topology.Udg.node_graph topo ~costs:node_costs in
  Format.printf "Nuglet fixed-price baseline on the same topology (costs U[0.2, 3)):@.";
  List.iter
    (fun price ->
      Format.printf "  price %.1f nuglet/packet: %.0f%% of sources deliverable@." price
        (100.0 *. Wnet_baselines.Nuglet.delivery_rate ng ~price ~root:0))
    [ 0.5; 1.0; 2.0; 3.0 ];
  Format.printf
    "The VCG mechanism serves every connected source; fixed prices ration instead.@."
