(* Overpayment study: a reduced-scale rehearsal of Figure 3.

   Run with:  dune exec examples/overpayment_study.exe -- [instances]

   The full paper-scale regeneration (100 instances per point) lives in
   the bench harness (`dune exec bench/main.exe -- experiments`); this
   example runs a small sweep quickly and prints the same tables and
   ASCII panels. *)

let () =
  let instances =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 5
  in
  let ns = [ 100; 200; 300 ] in
  Format.printf
    "Overpayment sweep: %d instances per point, n in {100, 200, 300}.@.@."
    instances;
  let panels =
    [
      ("Fig 3(a/b) shape - UDG, kappa = 2", Wnet_experiments.Fig3.Udg { kappa = 2.0 });
      ("Fig 3(c) shape - UDG, kappa = 2.5", Wnet_experiments.Fig3.Udg { kappa = 2.5 });
      ( "Fig 3(e) shape - random ranges, kappa = 2",
        Wnet_experiments.Fig3.Random_range { kappa = 2.0 } );
    ]
  in
  List.iteri
    (fun i (title, model) ->
      let pts =
        Wnet_experiments.Fig3.overpayment_sweep ~instances ~ns ~seed:(1000 + i)
          model
      in
      print_endline (Wnet_experiments.Fig3.render_sweep ~title pts);
      print_newline ())
    panels;
  let hop =
    Wnet_experiments.Fig3.hop_profile ~instances ~n:300 ~seed:42
      (Wnet_experiments.Fig3.Udg { kappa = 2.0 })
  in
  print_endline
    (Wnet_experiments.Fig3.render_hop_profile
       ~title:"Fig 3(d) shape - ratio vs hop distance (UDG, kappa = 2, n = 300)" hop);
  print_newline ();
  Format.printf
    "Shapes to check against the paper: IOR and TOR nearly coincide around 1.5@.";
  Format.printf
    "and stay flat in n; the worst ratio is noisy and decreasing; the mean@.";
  Format.printf "per-hop ratio is flat while the max decays with hop distance.@."
