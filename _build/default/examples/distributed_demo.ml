(* Distributed protocols demo (Sec. III-C/D).

   Run with:  dune exec examples/distributed_demo.exe

   Builds a random biconnected network, runs the distributed SPT and
   payment protocols, verifies they reproduce the centralized VCG
   payments within n rounds, then lets nodes misbehave and shows
   Algorithm 2 catching them. *)

let () =
  let rng = Wnet_prng.Rng.create 99 in
  let n = 30 in
  let g =
    match
      Wnet_topology.Gnp.biconnected_graph rng ~n ~p:0.15 ~cost_lo:1.0
        ~cost_hi:10.0 ~max_tries:200
    with
    | Some g -> g
    | None -> failwith "generation failed; try another seed"
  in
  Format.printf "Random biconnected network: n=%d, m=%d, access point v0.@.@." n
    (Wnet_graph.Graph.m g);

  (* Stage 1: distributed SPT. *)
  let spt = Wnet_dsim.Spt_protocol.run g ~root:0 in
  Format.printf "Stage 1 (distributed SPT): %d rounds, %d broadcasts, matches Dijkstra: %b@."
    spt.Wnet_dsim.Spt_protocol.stats.Wnet_dsim.Engine.rounds
    spt.Wnet_dsim.Spt_protocol.stats.Wnet_dsim.Engine.broadcasts
    (Wnet_dsim.Spt_protocol.matches_centralized spt g ~root:0);

  (* Stage 2: distributed payments. *)
  let pay = Wnet_dsim.Payment_protocol.run g ~root:0 in
  Format.printf
    "Stage 2 (distributed payments): %d rounds (<= n = %d), agrees with centralized VCG: %b@.@."
    pay.Wnet_dsim.Payment_protocol.stats.Wnet_dsim.Engine.rounds n
    (Wnet_dsim.Payment_protocol.agrees_with_centralized pay g);

  (* The same result with NO centralized step anywhere: declaration
     flood -> distributed SPT -> payment relaxation seeded by the SPT's
     own outputs. *)
  let full = Wnet_dsim.Payment_protocol.run_full g ~root:0 in
  Format.printf
    "Full pipeline (declare + SPT + payments, all distributed): %d rounds total, \
     agrees with centralized VCG: %b@.@."
    full.Wnet_dsim.Payment_protocol.stats.Wnet_dsim.Engine.rounds
    (Wnet_dsim.Payment_protocol.agrees_with_centralized full g);

  (* Show one node's table. *)
  let sample =
    let rec find v = if pay.Wnet_dsim.Payment_protocol.payments.(v) <> [] then v else find (v + 1) in
    find 1
  in
  Format.printf "node v%d's converged payment table:@." sample;
  List.iter
    (fun (k, p) -> Format.printf "  pays relay v%d: %.3f@." k p)
    pay.Wnet_dsim.Payment_protocol.payments.(sample);
  Format.printf "@.";

  (* Misbehaviour 1: a relay inflates its advertised distance to dodge
     relay duty.  Unverified: the SPT is corrupted.  Verified: fixed. *)
  let liar = sample in
  let behaviours v =
    if v = liar then Wnet_dsim.Spt_protocol.Inflate_distance 1000.0
    else Wnet_dsim.Spt_protocol.Honest
  in
  let bad = Wnet_dsim.Spt_protocol.run ~behaviours g ~root:0 in
  let fixed = Wnet_dsim.Spt_protocol.run ~behaviours ~verified:true g ~root:0 in
  Format.printf
    "v%d inflates its distance by 1000: unverified SPT correct? %b; verified SPT correct? %b@."
    liar
    (Wnet_dsim.Spt_protocol.matches_centralized bad g ~root:0)
    (Wnet_dsim.Spt_protocol.matches_centralized fixed g ~root:0);

  (* Misbehaviour 2: a payer under-reports its computed payments.  The
     stage-2 cross-check accuses it. *)
  let adversaries v =
    if v = sample then Wnet_dsim.Payment_protocol.Deflate_entries 0.5
    else Wnet_dsim.Payment_protocol.Honest
  in
  let cheaty = Wnet_dsim.Payment_protocol.run ~adversaries ~verify:true g ~root:0 in
  Format.printf "v%d halves its announced payments: accusations = [" sample;
  List.iter
    (fun (accuser, accused) -> Format.printf " v%d->v%d" accuser accused)
    cheaty.Wnet_dsim.Payment_protocol.accusations;
  Format.printf " ]@.";
  Format.printf
    "Every accusation names the cheater; honest runs produce none (see tests).@."
