(* Collusion gallery: Sections III-D, III-E and III-H made concrete.

   Run with:  dune exec examples/collusion_demo.exe

   Reproduces the paper's two worked examples (Figures 2 and 4), the
   accomplice-boost attack on plain VCG, and the neighbourhood scheme
   that stops it. *)

open Wnet_core
open Wnet_graph

let section title = Format.printf "@.=== %s ===@.@." title

let () =
  (* --- Figure 2: the least cost path is not the path you pay least. *)
  section "Figure 2: lying about neighbourhood (Sec. III-D)";
  let f2 = Examples.fig2 in
  let honest = Option.get (Unicast.run f2.Examples.graph ~src:f2.Examples.source ~dst:f2.Examples.access_point) in
  Format.printf "honest LCP %a, total payment %g@." Path.pp honest.Unicast.path
    (Unicast.total_payment honest);
  let lying = Option.get (Unicast.run f2.Examples.lying_graph ~src:f2.Examples.source ~dst:f2.Examples.access_point) in
  let u, v = f2.Examples.hidden_edge in
  Format.printf "v%d hides its link to v%d: LCP becomes %a, total payment %g@." u v
    Path.pp lying.Unicast.path
    (Unicast.total_payment lying);
  Format.printf "-> the source saves %g by lying; Algorithm 2's verified stage 1 undoes this@."
    (Unicast.total_payment honest -. Unicast.total_payment lying);
  let behaviours w =
    if w = f2.Examples.source then Wnet_dsim.Spt_protocol.Hide_neighbours [ v ]
    else Wnet_dsim.Spt_protocol.Honest
  in
  let verified =
    Wnet_dsim.Spt_protocol.run ~behaviours ~verified:true f2.Examples.graph
      ~root:f2.Examples.access_point
  in
  Format.printf "verified protocol: the liar's distance is forced back to %g (truth)@."
    (Wnet_dsim.Spt_protocol.distances verified).(f2.Examples.source);

  (* --- The boost attack on plain VCG, and the fix. *)
  section "Sec. III-E: accomplice boost vs the neighbourhood scheme";
  let g =
    Graph.create
      ~costs:[| 1.0; 1.0; 2.0; 9.0; 3.0; 20.0 |]
      ~edges:[ (0, 2); (2, 1); (0, 4); (4, 1); (2, 4); (0, 3); (3, 1); (0, 5); (5, 1) ]
  in
  (match Collusion.find_neighbour_boost g ~src:0 ~dst:1 ~boost:4.0 with
  | None -> Format.printf "no boost attack on this topology?!@."
  | Some b ->
    Format.printf
      "plain VCG: relay v%d + accomplice v%d (bids %g): pair utility %g -> %g@."
      b.Collusion.relay b.Collusion.accomplice b.Collusion.boosted_bid
      b.Collusion.honest_pair_utility b.Collusion.boosted_pair_utility);
  let truth = Graph.costs g in
  let pt r k = Payment_scheme.utility r ~truth k in
  let honest_nb = Option.get (Payment_scheme.run Payment_scheme.Neighbourhood g ~src:0 ~dst:1) in
  let boosted_nb =
    Option.get (Payment_scheme.run Payment_scheme.Neighbourhood (Graph.with_cost g 4 7.0) ~src:0 ~dst:1)
  in
  Format.printf
    "neighbourhood scheme p~: pair utility %g -> %g under the same boost (no gain)@."
    (pt honest_nb 2 +. pt honest_nb 4)
    (pt boosted_nb 2 +. pt boosted_nb 4);
  Format.printf
    "(residual per Theorem 7: joint UNDER-bidding by adjacent relays can still gain;@.";
  Format.printf " see EXPERIMENTS.md for the falsifier's counter-example.)@.";

  (* --- Figure 4: resale-the-path. *)
  section "Figure 4: resale-the-path (Sec. III-H)";
  let f4 = Examples.fig4 in
  let g4 = f4.Examples.graph in
  let batch = Unicast.all_to_root g4 ~root:f4.Examples.access_point in
  let r8 = Option.get batch.(f4.Examples.reseller) in
  Format.printf "v%d's honest unicast: path %a, p_%d = %g@." f4.Examples.reseller Path.pp
    r8.Unicast.path f4.Examples.reseller (Unicast.total_payment r8);
  (match
     Collusion.resale_opportunities g4 ~root:f4.Examples.access_point
       ~payments:(fun w -> batch.(w))
   with
  | [] -> Format.printf "no resale opportunity?!@."
  | (o : Collusion.resale) :: _ ->
    Format.printf
      "best deal: v%d resells through neighbour v%d: transfer %g, saving %g@."
      o.Collusion.source o.Collusion.proxy o.Collusion.transfer o.Collusion.saving;
    Format.printf
      "splitting the saving, v%d's effective cost drops from %g to %g@."
      o.Collusion.source o.Collusion.direct_payment
      (Collusion.effective_cost_after_resale o));
  Format.printf
    "Resale is out-of-mechanism collusion: truthfulness per unicast survives,@.";
  Format.printf "but the payment vector is not resale-proof.@."
