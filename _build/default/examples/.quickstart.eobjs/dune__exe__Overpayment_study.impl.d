examples/overpayment_study.ml: Array Format List Sys Wnet_experiments
