examples/distributed_demo.ml: Array Format List Wnet_dsim Wnet_graph Wnet_prng Wnet_topology
