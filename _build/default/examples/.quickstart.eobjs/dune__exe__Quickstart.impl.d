examples/quickstart.ml: Array Format Graph List Option Path Unicast Wnet_core Wnet_graph Wnet_mech Wnet_prng
