examples/campus_udg.mli:
