examples/campus_udg.ml: Array Float Format Fun Link_cost List Option Overpayment Wnet_baselines Wnet_core Wnet_geom Wnet_graph Wnet_prng Wnet_topology
