examples/quickstart.mli:
