examples/economy_demo.mli:
