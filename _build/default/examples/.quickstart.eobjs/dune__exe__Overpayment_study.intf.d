examples/overpayment_study.mli:
