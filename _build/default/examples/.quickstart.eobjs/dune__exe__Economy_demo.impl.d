examples/economy_demo.ml: Array List Printf Wnet_accounting Wnet_experiments Wnet_geom Wnet_graph Wnet_prng Wnet_topology
