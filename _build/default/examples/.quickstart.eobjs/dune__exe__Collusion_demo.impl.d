examples/collusion_demo.ml: Array Collusion Examples Format Graph Option Path Payment_scheme Unicast Wnet_core Wnet_dsim Wnet_graph
