examples/collusion_demo.mli:
