open Wnet_dsim

let ring n = Wnet_topology.Fixtures.ring ~costs:(Array.make n 1.0)

(* Flood protocol: node 0 emits a token at round 0; everyone forwards the
   first time they hear it.  All nodes must end marked, in diameter
   rounds. *)
let flood_spec =
  {
    Engine.init = (fun v -> v = 0);
    step =
      (fun ~node:_ ~round:_ ~inbox state ->
        if state then (state, if inbox = [] then [ Engine.Broadcast () ] else [])
        else if inbox <> [] then (true, [ Engine.Broadcast () ])
        else (state, []));
  }

let test_flood_reaches_everyone () =
  let g = ring 10 in
  let states, stats = Engine.run g flood_spec in
  Alcotest.(check (array bool)) "all marked" (Array.make 10 true) states;
  Alcotest.(check bool) "converged" true stats.Engine.converged;
  (* diameter rounds to inform everyone, plus one final round in which
     the last broadcasts are delivered and absorbed *)
  Alcotest.(check int) "diameter + 1 rounds" 6 stats.Engine.rounds

let test_flood_message_count () =
  let g = ring 6 in
  let _, stats = Engine.run g flood_spec in
  (* each node broadcasts exactly once *)
  Alcotest.(check int) "one broadcast per node" 6 stats.Engine.broadcasts;
  Alcotest.(check int) "2 deliveries per broadcast" 12 stats.Engine.deliveries

let test_direct_messages () =
  (* Node 0 sends a direct message to neighbour 1 only. *)
  let spec =
    {
      Engine.init = (fun _ -> 0);
      step =
        (fun ~node ~round ~inbox state ->
          if node = 0 && round = 0 then (state, [ Engine.Direct (1, ()) ])
          else (state + List.length inbox, []));
    }
  in
  let g = ring 4 in
  let states, stats = Engine.run g spec in
  Alcotest.(check int) "only node 1 got it" 1 states.(1);
  Alcotest.(check int) "node 3 got nothing" 0 states.(3);
  Alcotest.(check int) "one direct" 1 stats.Engine.directs

let test_direct_to_non_neighbour_rejected () =
  let spec =
    {
      Engine.init = (fun _ -> ());
      step =
        (fun ~node ~round ~inbox:_ state ->
          if node = 0 && round = 0 then (state, [ Engine.Direct (2, ()) ])
          else (state, []));
    }
  in
  Alcotest.check_raises "non-neighbour"
    (Invalid_argument "Engine: direct message to a non-neighbour") (fun () ->
      ignore (Engine.run (ring 4) spec))

let test_max_rounds_cutoff () =
  (* A protocol that never quiets down must be stopped by max_rounds. *)
  let chatty =
    {
      Engine.init = (fun _ -> ());
      step = (fun ~node:_ ~round:_ ~inbox:_ state -> (state, [ Engine.Broadcast () ]));
    }
  in
  let _, stats = Engine.run ~max_rounds:7 (ring 4) chatty in
  Alcotest.(check int) "stopped at cutoff" 7 stats.Engine.rounds;
  Alcotest.(check bool) "not converged" false stats.Engine.converged

let test_inbox_pairs_sender () =
  let got = ref [] in
  let spec =
    {
      Engine.init = (fun _ -> ());
      step =
        (fun ~node ~round ~inbox state ->
          if round = 0 then (state, [ Engine.Broadcast node ])
          else begin
            if node = 0 then
              got := List.map (fun (s, p) -> (s, p)) inbox @ !got;
            (state, [])
          end);
    }
  in
  ignore (Engine.run (ring 4) spec);
  let senders = List.sort compare (List.map fst !got) in
  Alcotest.(check (list int)) "heard both neighbours" [ 1; 3 ] senders;
  List.iter
    (fun (s, p) -> Alcotest.(check int) "payload = sender id" s p)
    !got

let suite =
  [
    Alcotest.test_case "flood reaches everyone" `Quick test_flood_reaches_everyone;
    Alcotest.test_case "message accounting" `Quick test_flood_message_count;
    Alcotest.test_case "direct channel" `Quick test_direct_messages;
    Alcotest.test_case "direct to non-neighbour rejected" `Quick test_direct_to_non_neighbour_rejected;
    Alcotest.test_case "max-rounds cutoff" `Quick test_max_rounds_cutoff;
    Alcotest.test_case "inbox pairs sender" `Quick test_inbox_pairs_sender;
  ]
