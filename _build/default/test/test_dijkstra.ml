open Wnet_graph

(* Hand-checkable fixture: diamond 0-1-3, 0-2-3 with c1 = 1, c2 = 3.
   Node-weighted distances from 0: d(1) = d(2) = 0 (neighbours), d(3) = 1
   (via relay 1). *)
let diamond = Wnet_core.Examples.diamond

let test_diamond_distances () =
  let t = Dijkstra.node_weighted diamond ~source:0 in
  Test_util.check_float "source" 0.0 (Dijkstra.dist t 0);
  Test_util.check_float "neighbour 1" 0.0 (Dijkstra.dist t 1);
  Test_util.check_float "neighbour 2" 0.0 (Dijkstra.dist t 2);
  Test_util.check_float "two hops" 1.0 (Dijkstra.dist t 3)

let test_diamond_path () =
  let t = Dijkstra.node_weighted diamond ~source:0 in
  match Dijkstra.path_to t 3 with
  | Some p -> Alcotest.(check (array int)) "via cheap relay" [| 0; 1; 3 |] p
  | None -> Alcotest.fail "reachable"

let test_endpoint_costs_excluded () =
  (* Expensive endpoints must not affect path costs. *)
  let g =
    Graph.create ~costs:[| 1000.0; 2.0; 1000.0 |] ~edges:[ (0, 1); (1, 2) ]
  in
  let t = Dijkstra.node_weighted g ~source:0 in
  Test_util.check_float "relay only" 2.0 (Dijkstra.dist t 2)

let test_unreachable () =
  let g = Graph.create ~costs:[| 1.0; 1.0; 1.0 |] ~edges:[ (0, 1) ] in
  let t = Dijkstra.node_weighted g ~source:0 in
  Test_util.check_float "infinite" infinity (Dijkstra.dist t 2);
  Alcotest.(check bool) "reachable flag" false (Dijkstra.reachable t 2);
  Alcotest.(check (option (array int))) "no path" None (Dijkstra.path_to t 2)

let test_forbidden () =
  let t = Dijkstra.node_weighted ~forbidden:(fun v -> v = 1) diamond ~source:0 in
  Test_util.check_float "detour via 2" 3.0 (Dijkstra.dist t 3);
  Alcotest.check_raises "forbidden source"
    (Invalid_argument "Dijkstra: source is forbidden") (fun () ->
      ignore (Dijkstra.node_weighted ~forbidden:(fun v -> v = 0) diamond ~source:0))

let test_symmetry () =
  (* Node-weighted distance between two nodes is symmetric. *)
  let r = Test_util.rng 21 in
  for _ = 1 to 30 do
    let g = Test_util.random_ring_graph r in
    let n = Graph.n g in
    let a = Wnet_prng.Rng.int r n and b = Wnet_prng.Rng.int r n in
    let ta = Dijkstra.node_weighted g ~source:a in
    let tb = Dijkstra.node_weighted g ~source:b in
    Test_util.check_float "d(a,b) = d(b,a)" (Dijkstra.dist ta b) (Dijkstra.dist tb a)
  done

let test_tree_consistency () =
  (* Every node's distance equals its parent's distance plus the parent's
     leaving cost; tree paths are valid graph paths. *)
  let r = Test_util.rng 22 in
  for _ = 1 to 30 do
    let g = Test_util.random_sparse_graph r in
    let src = Wnet_prng.Rng.int r (Graph.n g) in
    let t = Dijkstra.node_weighted g ~source:src in
    Array.iteri
      (fun v p ->
        if p >= 0 && v <> src then begin
          let leave = if p = src then 0.0 else Graph.cost g p in
          Test_util.check_float "dist = parent + leave"
            (Dijkstra.dist t p +. leave)
            (Dijkstra.dist t v);
          Alcotest.(check bool) "parent adjacent" true (Graph.mem_edge g p v)
        end)
      t.Dijkstra.parent;
    Array.iteri
      (fun v _ ->
        if Dijkstra.reachable t v then
          match Dijkstra.path_to t v with
          | None -> Alcotest.fail "path missing"
          | Some p ->
            Alcotest.(check bool) "valid path" true (Path.is_valid g p);
            Test_util.check_float "path cost = dist" (Dijkstra.dist t v)
              (Path.relay_cost g p))
      t.Dijkstra.parent
  done

let test_optimality_vs_bruteforce () =
  (* Exhaustive path enumeration on small graphs. *)
  let r = Test_util.rng 23 in
  for _ = 1 to 15 do
    let g = Test_util.random_ring_graph ~min_n:4 ~max_n:7 r in
    let n = Graph.n g in
    let src = 0 in
    let best = Array.make n infinity in
    let rec explore v visited cost =
      if cost < best.(v) then best.(v) <- cost;
      Array.iter
        (fun w ->
          if not (List.mem w visited) then begin
            let leave = if v = src then 0.0 else Graph.cost g v in
            explore w (w :: visited) (cost +. leave)
          end)
        (Graph.neighbors g v)
    in
    explore src [ src ] 0.0;
    let t = Dijkstra.node_weighted g ~source:src in
    for v = 0 to n - 1 do
      Test_util.check_float "matches brute force" best.(v) (Dijkstra.dist t v)
    done
  done

let test_link_weighted_basic () =
  let g =
    Digraph.create ~n:4
      ~links:[ (0, 1, 1.0); (1, 2, 1.0); (0, 2, 5.0); (2, 3, 1.0) ]
  in
  let t = Dijkstra.link_weighted g 0 in
  Test_util.check_float "two-hop beats direct" 2.0 (Dijkstra.dist t 2);
  Test_util.check_float "chain" 3.0 (Dijkstra.dist t 3);
  match Dijkstra.path_to t 3 with
  | Some p -> Alcotest.(check (array int)) "path" [| 0; 1; 2; 3 |] p
  | None -> Alcotest.fail "reachable"

let test_link_weighted_directionality () =
  let g = Digraph.create ~n:2 ~links:[ (0, 1, 1.0) ] in
  let t = Dijkstra.link_weighted g 1 in
  Test_util.check_float "no reverse link" infinity (Dijkstra.dist t 0)

let test_link_weighted_reverse_to_root () =
  let r = Test_util.rng 24 in
  for _ = 1 to 20 do
    let inst = Wnet_topology.Random_range.paper_instance r ~n:40 ~kappa:2.0 in
    let g = inst.Wnet_topology.Random_range.graph in
    let rev = Digraph.reverse g in
    let to_root = Dijkstra.link_weighted rev 0 in
    (* spot-check: distance to root via reverse graph equals a direct
       forward computation from each node *)
    let v = Wnet_prng.Rng.int r 40 in
    if v <> 0 then begin
      let fwd = Dijkstra.link_weighted g v in
      Test_util.check_float "reverse trick" (Dijkstra.dist fwd 0)
        (Dijkstra.dist to_root v)
    end
  done

let test_children () =
  let t = Dijkstra.node_weighted diamond ~source:0 in
  let kids = Dijkstra.children t in
  let total = Array.fold_left (fun acc a -> acc + Array.length a) 0 kids in
  Alcotest.(check int) "n-1 tree edges" 3 total

let suite =
  [
    Alcotest.test_case "diamond distances" `Quick test_diamond_distances;
    Alcotest.test_case "diamond path" `Quick test_diamond_path;
    Alcotest.test_case "endpoint costs excluded" `Quick test_endpoint_costs_excluded;
    Alcotest.test_case "unreachable nodes" `Quick test_unreachable;
    Alcotest.test_case "forbidden nodes" `Quick test_forbidden;
    Alcotest.test_case "node-weighted symmetry" `Quick test_symmetry;
    Alcotest.test_case "tree consistency" `Quick test_tree_consistency;
    Alcotest.test_case "optimality vs brute force" `Quick test_optimality_vs_bruteforce;
    Alcotest.test_case "link-weighted basics" `Quick test_link_weighted_basic;
    Alcotest.test_case "link-weighted directionality" `Quick test_link_weighted_directionality;
    Alcotest.test_case "reverse graph to-root trick" `Quick test_link_weighted_reverse_to_root;
    Alcotest.test_case "children lists" `Quick test_children;
  ]
