open Wnet_experiments

(* Small-scale end-to-end runs of every experiment harness: shapes and
   invariants, not the paper-scale numbers (those go to EXPERIMENTS.md). *)

let test_fig3_udg_shape () =
  let pts =
    Fig3.overpayment_sweep ~instances:2 ~ns:[ 100; 200 ] ~seed:1
      (Fig3.Udg { kappa = 2.0 })
  in
  Alcotest.(check int) "two points" 2 (List.length pts);
  List.iter
    (fun (p : Fig3.point) ->
      let s = p.Fig3.study in
      Alcotest.(check bool) "IOR finite" true (Float.is_finite s.Wnet_core.Overpayment.ior);
      Alcotest.(check bool) "IOR >= 1" true (s.Wnet_core.Overpayment.ior >= 1.0);
      Alcotest.(check bool) "TOR >= 1" true (s.Wnet_core.Overpayment.tor >= 1.0);
      Alcotest.(check bool) "worst >= IOR" true
        (s.Wnet_core.Overpayment.worst >= s.Wnet_core.Overpayment.ior -. 1e-9))
    pts

let test_fig3_random_range_shape () =
  let pts =
    Fig3.overpayment_sweep ~instances:2 ~ns:[ 100 ] ~seed:2
      (Fig3.Random_range { kappa = 2.0 })
  in
  List.iter
    (fun (p : Fig3.point) ->
      Alcotest.(check bool) "TOR sane" true
        (p.Fig3.study.Wnet_core.Overpayment.tor >= 1.0
        && p.Fig3.study.Wnet_core.Overpayment.tor < 10.0))
    pts

let test_fig3_determinism () =
  let run () =
    Fig3.overpayment_sweep ~instances:2 ~ns:[ 100 ] ~seed:77 (Fig3.Udg { kappa = 2.0 })
  in
  match (run (), run ()) with
  | [ a ], [ b ] ->
    Test_util.check_float "same seed, same TOR" a.Fig3.study.Wnet_core.Overpayment.tor
      b.Fig3.study.Wnet_core.Overpayment.tor
  | _ -> Alcotest.fail "one point each"

let test_fig3_hop_profile () =
  let buckets = Fig3.hop_profile ~instances:2 ~n:150 ~seed:3 (Fig3.Udg { kappa = 2.0 }) in
  Alcotest.(check bool) "several hop buckets" true (List.length buckets >= 2);
  List.iter
    (fun (b : Wnet_core.Overpayment.hop_bucket) ->
      Alcotest.(check bool) "max >= mean" true
        (b.Wnet_core.Overpayment.max_ratio >= b.Wnet_core.Overpayment.mean_ratio -. 1e-9))
    buckets

let test_fig3_renderers () =
  let pts =
    Fig3.overpayment_sweep ~instances:1 ~ns:[ 100 ] ~seed:4 (Fig3.Udg { kappa = 2.0 })
  in
  let s = Fig3.render_sweep ~title:"test" pts in
  Alcotest.(check bool) "table header" true (Str_ext.index_of s "IOR" <> None);
  let hp = Fig3.hop_profile ~instances:1 ~n:100 ~seed:5 (Fig3.Udg { kappa = 2.0 }) in
  let s2 = Fig3.render_hop_profile ~title:"hops" hp in
  Alcotest.(check bool) "hop table" true (Str_ext.index_of s2 "mean ratio" <> None)

let test_speed_sweep () =
  let rows = Speed.sweep ~ns:[ 100 ] ~repeats:2 ~seed:6 () in
  match rows with
  | [ r ] ->
    Alcotest.(check bool) "timings positive" true (r.Speed.fast_ms > 0.0 && r.Speed.naive_ms > 0.0);
    Alcotest.(check bool) "render works" true
      (Str_ext.index_of (Speed.render rows) "speedup" <> None)
  | _ -> Alcotest.fail "one row"

let test_distributed_sweep () =
  let rows = Distributed_exp.sweep ~ns:[ 15; 25 ] ~instances:2 ~seed:7 () in
  Alcotest.(check bool) "rows produced" true (List.length rows >= 3);
  List.iter
    (fun (r : Distributed_exp.row) ->
      Alcotest.(check bool) "agrees" true r.Distributed_exp.agrees;
      Alcotest.(check bool) "verified SPT ok" true r.Distributed_exp.verified_spt_ok;
      Alcotest.(check bool) "cheater accused" true r.Distributed_exp.cheater_accused;
      Alcotest.(check bool) "rounds <= n" true (r.Distributed_exp.payment_rounds <= r.Distributed_exp.n))
    rows

let test_collusion_study () =
  let rows = Collusion_exp.study ~n:20 ~instances:4 ~seed:8 () in
  Alcotest.(check bool) "rows produced" true (rows <> []);
  List.iter
    (fun (r : Collusion_exp.row) ->
      Alcotest.(check int) "p-tilde kills inflation attacks" 0
        r.Collusion_exp.neighbourhood_inflation_violations)
    rows

let test_node_model_sweep () =
  let pts = Node_model.sweep ~instances:2 ~ns:[ 100 ] ~seed:9 () in
  List.iter
    (fun (p : Node_model.point) ->
      Alcotest.(check bool) "IOR >= 1" true
        (p.Node_model.study.Wnet_core.Overpayment.ior >= 1.0))
    pts;
  Alcotest.(check bool) "render" true
    (Str_ext.index_of (Node_model.render ~title:"nm" pts) "TOR" <> None)


let test_relay_load_concentration () =
  let rows = Wnet_experiments.Relay_load.study ~ns:[ 100 ] ~instances:2 ~seed:13 () in
  match rows with
  | [ r ] ->
    (* the paper's critique: relay duty is far from uniform *)
    Alcotest.(check bool) "max load >> uniform expectation" true
      (r.Wnet_experiments.Relay_load.max_load
       > 3.0 *. r.Wnet_experiments.Relay_load.uniform_expected_max);
    Alcotest.(check bool) "busiest decile dominates" true
      (r.Wnet_experiments.Relay_load.top_decile_share > 0.3);
    Alcotest.(check bool) "many idle nodes" true
      (r.Wnet_experiments.Relay_load.idle_fraction > 0.2)
  | _ -> Alcotest.fail "one row"

let suite =
  [
    Alcotest.test_case "fig3 UDG sweep shape" `Quick test_fig3_udg_shape;
    Alcotest.test_case "fig3 random-range shape" `Quick test_fig3_random_range_shape;
    Alcotest.test_case "fig3 determinism" `Quick test_fig3_determinism;
    Alcotest.test_case "fig3 hop profile" `Quick test_fig3_hop_profile;
    Alcotest.test_case "fig3 renderers" `Quick test_fig3_renderers;
    Alcotest.test_case "speed sweep" `Quick test_speed_sweep;
    Alcotest.test_case "distributed sweep invariants" `Quick test_distributed_sweep;
    Alcotest.test_case "collusion study" `Quick test_collusion_study;
    Alcotest.test_case "node-model sweep" `Quick test_node_model_sweep;
    Alcotest.test_case "relay-load concentration" `Quick test_relay_load_concentration;
  ]
