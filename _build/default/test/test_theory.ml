open Wnet_core
open Wnet_graph

(* Deeper mechanism-theory invariants, tested as properties on random
   instances.  These correspond to the paper's Lemmas 4-6 machinery:

   - threshold structure: for fixed d^{-k}, there is a critical bid a_k
     such that relay k is on the LCP iff d_k <= a_k (monotonicity);
   - the VCG payment IS that critical bid: bidding below the payment
     keeps k on the path, bidding above removes it;
   - Lemma 4: while the output is unchanged, k's payment does not depend
     on its own declaration. *)

let setup seed =
  let r = Test_util.rng seed in
  let g = Test_util.random_ring_graph ~min_n:5 ~max_n:25 r in
  let n = Graph.n g in
  let src = Wnet_prng.Rng.int r n in
  let dst = (src + 1 + Wnet_prng.Rng.int r (n - 1)) mod n in
  (r, g, src, dst)

let on_path g ~src ~dst k =
  match Unicast.run g ~src ~dst with
  | None -> None
  | Some res -> Some (Path.mem res.Unicast.path k && k <> src && k <> dst)

let prop_payment_is_critical_bid =
  Test_util.qcheck_case ~count:80 "VCG payment = critical bid" Test_util.seed_gen
    (fun seed ->
      let _, g, src, dst = setup seed in
      match Unicast.run g ~src ~dst with
      | None -> true
      | Some res ->
        List.for_all
          (fun k ->
            let p = Unicast.payment_to res k in
            if not (Float.is_finite p) then true
            else begin
              let below = Graph.with_cost g k (Float.max 0.0 (p -. 1e-6)) in
              let above = Graph.with_cost g k (p +. 1e-6) in
              (* ties near the threshold make the exact boundary fuzzy;
                 1e-6 clearance is far above float noise here *)
              on_path below ~src ~dst k = Some true
              && on_path above ~src ~dst k <> Some true
            end)
          (Unicast.relays res))

let prop_participation_monotone =
  Test_util.qcheck_case ~count:80 "participation monotone in own bid"
    Test_util.seed_gen (fun seed ->
      let r, g, src, dst = setup seed in
      match Unicast.run g ~src ~dst with
      | None -> true
      | Some res ->
        (match Unicast.relays res with
        | [] -> true
        | k :: _ ->
          (* raising the bid never brings you onto the path; lowering
             never pushes you off *)
          let bids =
            List.init 6 (fun _ -> Wnet_prng.Rng.float r 20.0) |> List.sort compare
          in
          let states =
            List.map (fun b -> on_path (Graph.with_cost g k b) ~src ~dst k) bids
          in
          (* once off, stays off as bids rise *)
          let rec monotone seen_off = function
            | [] -> true
            | Some true :: rest -> (not seen_off) && monotone false rest
            | (Some false | None) :: rest -> monotone true rest
          in
          monotone false states))

let prop_lemma4_payment_independent_of_own_bid =
  Test_util.qcheck_case ~count:80 "Lemma 4: payment independent of own bid"
    Test_util.seed_gen (fun seed ->
      let r, g, src, dst = setup seed in
      match Unicast.run g ~src ~dst with
      | None -> true
      | Some res ->
        List.for_all
          (fun k ->
            let p = Unicast.payment_to res k in
            if not (Float.is_finite p) then true
            else begin
              (* any bid low enough to stay on the path leaves the
                 payment unchanged *)
              let bid = Wnet_prng.Rng.float r (Float.max 0.0 (p -. 1e-6)) in
              match Unicast.run (Graph.with_cost g k bid) ~src ~dst with
              | None -> false
              | Some res' -> Test_util.approx ~eps:1e-9 p (Unicast.payment_to res' k)
            end)
          (Unicast.relays res))

let prop_social_cost_optimal =
  Test_util.qcheck_case ~count:60 "LCP minimizes declared social cost"
    Test_util.seed_gen (fun seed ->
      let r, g, src, dst = setup seed in
      match Unicast.run g ~src ~dst with
      | None -> true
      | Some res ->
        (* no single-node bid change can produce a cheaper true-cost
           route than the chosen one evaluated at true costs: the chosen
           path cost is a lower bound over all paths, which we spot-check
           against random spanning-tree paths *)
        let tree =
          Dijkstra.node_weighted
            ~forbidden:(fun v ->
              v <> src && v <> dst && Wnet_prng.Rng.bernoulli r 0.2)
            g ~source:src
        in
        (match Dijkstra.path_to tree dst with
        | None -> true
        | Some alternative ->
          Path.relay_cost g alternative >= res.Unicast.lcp_cost -. 1e-9))

let prop_edge_payment_is_critical_bid =
  Test_util.qcheck_case ~count:60 "edge model: payment = critical bid"
    Test_util.seed_gen (fun seed ->
      let r = Test_util.rng seed in
      let n = 5 + Wnet_prng.Rng.int r 20 in
      let edges = ref [] in
      for v = 0 to n - 1 do
        edges := (v, (v + 1) mod n, 0.1 +. Wnet_prng.Rng.float r 5.0) :: !edges
      done;
      for _ = 1 to Wnet_prng.Rng.int r n do
        let u = Wnet_prng.Rng.int r n and v = Wnet_prng.Rng.int r n in
        if u <> v then edges := (u, v, 0.1 +. Wnet_prng.Rng.float r 5.0) :: !edges
      done;
      let g = Egraph.create ~n ~edges:!edges in
      let src = Wnet_prng.Rng.int r n in
      let dst = (src + 1 + Wnet_prng.Rng.int r (n - 1)) mod n in
      match Edge_unicast.run g ~src ~dst with
      | None -> true
      | Some res ->
        Array.for_all
          (fun e ->
            let p = Edge_unicast.payment_to_edge res e in
            if not (Float.is_finite p) then true
            else begin
              let used g' =
                match Edge_unicast.run g' ~src ~dst with
                | None -> false
                | Some r' -> Array.exists (fun e' -> e' = e) r'.Edge_unicast.path_edges
              in
              used (Egraph.with_weight g e (Float.max 0.0 (p -. 1e-6)))
              && not (used (Egraph.with_weight g e (p +. 1e-6)))
            end)
          res.Edge_unicast.path_edges)

let prop_neighbourhood_pivot_ignores_neighbour_bids =
  Test_util.qcheck_case ~count:50 "p-tilde invariant to any N(k) bid"
    Test_util.seed_gen (fun seed ->
      let r, g, src, dst = setup seed in
      match Payment_scheme.run Payment_scheme.Neighbourhood g ~src ~dst with
      | None -> true
      | Some res ->
        (match Path.relays res.Payment_scheme.path with
        | [||] -> true
        | relays ->
          let k = relays.(0) in
          let p = Payment_scheme.payment_to res k in
          if not (Float.is_finite p) then true
          else begin
            (* perturb a neighbour that is OFF the path: k's payment must
               not move (its pivot excludes the whole neighbourhood) *)
            let off_path_nbr =
              Array.fold_left
                (fun acc t ->
                  if acc = None && not (Path.mem res.Payment_scheme.path t) then
                    Some t
                  else acc)
                None (Graph.neighbors g k)
            in
            match off_path_nbr with
            | None -> true
            | Some t ->
              let g' = Graph.with_cost g t (Wnet_prng.Rng.float r 50.0) in
              (match Payment_scheme.run Payment_scheme.Neighbourhood g' ~src ~dst with
              | None -> true
              | Some res' ->
                (* same LCP (t off path, cost changes do not reroute
                   unless they make t attractive — then skip) *)
                if res'.Payment_scheme.path <> res.Payment_scheme.path then true
                else Test_util.approx p (Payment_scheme.payment_to res' k))
          end))

let suite =
  [
    prop_payment_is_critical_bid;
    prop_participation_monotone;
    prop_lemma4_payment_independent_of_own_bid;
    prop_social_cost_optimal;
    prop_edge_payment_is_critical_bid;
    prop_neighbourhood_pivot_ignores_neighbour_bids;
  ]
