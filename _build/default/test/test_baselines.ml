open Wnet_baselines
open Wnet_graph

let test_nuglet_participation () =
  (* Costs 0.5 / 2.0: at price 1 only the cheap relay participates. *)
  let g =
    Graph.create ~costs:[| 1.0; 0.5; 2.0; 1.0 |]
      ~edges:[ (0, 1); (1, 3); (0, 2); (2, 3) ]
  in
  let o = Nuglet.run g ~price:1.0 ~src:3 ~dst:0 in
  Alcotest.(check bool) "cheap relay in" true o.Nuglet.participants.(1);
  Alcotest.(check bool) "pricey relay out" false o.Nuglet.participants.(2);
  (match o.Nuglet.path with
  | Some p -> Alcotest.(check (array int)) "routes via cheap" [| 3; 1; 0 |] p
  | None -> Alcotest.fail "deliverable");
  Test_util.check_float "charge = price per relay" 1.0 o.Nuglet.charge;
  Test_util.check_float "social cost" 0.5 o.Nuglet.social_cost

let test_nuglet_undeliverable () =
  let g = Wnet_topology.Fixtures.line ~costs:[| 1.0; 5.0; 1.0 |] in
  let o = Nuglet.run g ~price:1.0 ~src:0 ~dst:2 in
  Alcotest.(check bool) "no path" true (o.Nuglet.path = None);
  Test_util.check_float "infinite social cost" infinity o.Nuglet.social_cost

let test_nuglet_delivery_rate () =
  (* Star of expensive relays around the AP: only direct neighbours get
     through at price 1. *)
  let g =
    Graph.create ~costs:[| 1.0; 9.0; 9.0; 1.0 |]
      ~edges:[ (0, 1); (0, 2); (1, 3); (2, 3) ]
  in
  Test_util.check_float "2 of 3 reachable" (2.0 /. 3.0)
    (Nuglet.delivery_rate g ~price:1.0 ~root:0);
  Test_util.check_float "all deliverable at high price" 1.0
    (Nuglet.delivery_rate g ~price:10.0 ~root:0)

let test_nuglet_economy_conservation () =
  let r = Test_util.rng 110 in
  let g = Wnet_topology.Fixtures.ring ~costs:(Array.make 8 1.0) in
  let e = Nuglet.simulate_sessions r g ~root:0 ~sessions:200 ~initial:5.0 in
  (* nuglets are only transferred, never created or destroyed *)
  let total = Array.fold_left ( +. ) 0.0 e.Nuglet.counters in
  Test_util.check_float "conservation" (8.0 *. 5.0) total;
  Alcotest.(check int) "all sessions accounted" 200
    (e.Nuglet.delivered + e.Nuglet.blocked + e.Nuglet.disconnected)

let test_nuglet_blocking_without_funds () =
  let r = Test_util.rng 111 in
  (* A leaf that must pay 1 relay per session but starts broke and never
     relays for anyone (line topology, leaf end): blocked forever. *)
  let g = Wnet_topology.Fixtures.line ~costs:(Array.make 3 1.0) in
  let e = Nuglet.simulate_sessions r g ~root:0 ~sessions:100 ~initial:0.0 in
  Alcotest.(check bool) "blocked sessions appear" true (e.Nuglet.blocked > 0)

let test_watchdog_labels_selfish () =
  let r = Test_util.rng 112 in
  let g = Wnet_topology.Fixtures.ring ~costs:(Array.make 8 1.0) in
  let kinds v = if v = 3 then Watchdog.Selfish else Watchdog.Cooperative 1000 in
  let rep = Watchdog.run r g ~kinds ~root:0 ~sessions:300 in
  Alcotest.(check bool) "selfish labelled" true rep.Watchdog.labelled.(3);
  Alcotest.(check int) "no wrongful labels" 0 rep.Watchdog.wrongful;
  Alcotest.(check int) "one rightful label" 1 rep.Watchdog.rightful

let test_watchdog_mislabels_exhausted () =
  let r = Test_util.rng 113 in
  let g = Wnet_topology.Fixtures.ring ~costs:(Array.make 8 1.0) in
  (* cooperative but battery-limited nodes end up labelled too: the
     paper's critique of [4] *)
  let kinds _ = Watchdog.Cooperative 3 in
  let rep = Watchdog.run r g ~kinds ~root:0 ~sessions:400 in
  Alcotest.(check bool) "wrongful labels appear" true (rep.Watchdog.wrongful > 0);
  Test_util.check_float "all labels wrongful" 1.0 (Watchdog.wrongful_fraction rep)

let test_watchdog_routes_around_labelled () =
  let r = Test_util.rng 114 in
  let g = Wnet_topology.Fixtures.ring ~costs:(Array.make 6 1.0) in
  let kinds v = if v = 1 then Watchdog.Selfish else Watchdog.Cooperative 10_000 in
  let rep = Watchdog.run r g ~kinds ~root:0 ~sessions:500 in
  (* after 1 is labelled, everything routes the other way: deliveries
     dominate failures *)
  Alcotest.(check bool) "mostly delivered" true
    (rep.Watchdog.delivered > 10 * rep.Watchdog.failed)

let test_naive_payment_matches_fast () =
  let r = Test_util.rng 115 in
  for _ = 1 to 10 do
    let g = Test_util.random_ring_graph ~max_n:20 r in
    let n = Graph.n g in
    let src = Wnet_prng.Rng.int r n in
    let dst = (src + 1 + Wnet_prng.Rng.int r (n - 1)) mod n in
    match
      (Naive_payment.run g ~src ~dst, Wnet_core.Unicast.run ~algo:Wnet_core.Unicast.Fast g ~src ~dst)
    with
    | Some a, Some b ->
      Alcotest.(check bool) "same payments" true
        (Array.for_all2 Test_util.approx a.Wnet_core.Unicast.payments
           b.Wnet_core.Unicast.payments)
    | None, None -> ()
    | _ -> Alcotest.fail "mismatch"
  done

let test_naive_operation_count () =
  let g = Wnet_core.Examples.fig2.Wnet_core.Examples.graph in
  Alcotest.(check int) "1 + 3 relays" 4 (Naive_payment.operation_count g ~src:1 ~dst:0)

let test_vcg_beats_nuglet_on_efficiency () =
  (* With heterogeneous costs, the fixed-price scheme either blocks
     delivery or routes over a socially costlier path than the LCP. *)
  let g =
    Graph.create ~costs:[| 1.0; 0.4; 0.1; 0.1; 1.0 |]
      ~edges:[ (0, 1); (1, 4); (0, 2); (2, 3); (3, 4) ]
  in
  (* LCP(4 -> 0) = 4-3-2-0 with cost 0.2 < 0.4 via node 1. *)
  let vcg = Wnet_core.Unicast.run g ~src:4 ~dst:0 |> Option.get in
  Test_util.check_float "VCG routes socially cheapest" 0.2 vcg.Wnet_core.Unicast.lcp_cost;
  let nug = Nuglet.run g ~price:1.0 ~src:4 ~dst:0 in
  Alcotest.(check bool) "nuglet prefers fewer hops at higher social cost" true
    (nug.Nuglet.social_cost > vcg.Wnet_core.Unicast.lcp_cost)

let suite =
  [
    Alcotest.test_case "nuglet: rational participation" `Quick test_nuglet_participation;
    Alcotest.test_case "nuglet: undeliverable" `Quick test_nuglet_undeliverable;
    Alcotest.test_case "nuglet: delivery rate" `Quick test_nuglet_delivery_rate;
    Alcotest.test_case "nuglet: counter conservation" `Quick test_nuglet_economy_conservation;
    Alcotest.test_case "nuglet: blocking when broke" `Quick test_nuglet_blocking_without_funds;
    Alcotest.test_case "watchdog: labels selfish" `Quick test_watchdog_labels_selfish;
    Alcotest.test_case "watchdog: mislabels exhausted" `Quick test_watchdog_mislabels_exhausted;
    Alcotest.test_case "watchdog: routes around labels" `Quick test_watchdog_routes_around_labelled;
    Alcotest.test_case "naive payment = fast payment" `Quick test_naive_payment_matches_fast;
    Alcotest.test_case "naive operation count" `Quick test_naive_operation_count;
    Alcotest.test_case "VCG vs nuglet efficiency" `Quick test_vcg_beats_nuglet_on_efficiency;
  ]
