open Wnet_graph

let small () =
  Digraph.create ~n:4
    ~links:[ (0, 1, 1.0); (1, 2, 2.0); (2, 3, 3.0); (3, 0, 4.0); (1, 0, 5.0) ]

let test_sizes () =
  let g = small () in
  Alcotest.(check int) "n" 4 (Digraph.n g);
  Alcotest.(check int) "m" 5 (Digraph.m g)

let test_weight_lookup () =
  let g = small () in
  Test_util.check_float "forward" 1.0 (Digraph.weight g 0 1);
  Test_util.check_float "reverse direction distinct" 5.0 (Digraph.weight g 1 0);
  Test_util.check_float "absent" infinity (Digraph.weight g 0 2)

let test_parallel_links_keep_cheapest () =
  let g = Digraph.create ~n:2 ~links:[ (0, 1, 5.0); (0, 1, 2.0); (0, 1, 9.0) ] in
  Alcotest.(check int) "one link" 1 (Digraph.m g);
  Test_util.check_float "cheapest" 2.0 (Digraph.weight g 0 1)

let test_infinite_links_dropped () =
  let g = Digraph.create ~n:2 ~links:[ (0, 1, infinity) ] in
  Alcotest.(check int) "dropped" 0 (Digraph.m g)

let test_validation () =
  Alcotest.check_raises "self loop" (Invalid_argument "Digraph.create: self-loop")
    (fun () -> ignore (Digraph.create ~n:1 ~links:[ (0, 0, 1.0) ]));
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Digraph.create: weight must be non-negative") (fun () ->
      ignore (Digraph.create ~n:2 ~links:[ (0, 1, -1.0) ]))

let test_reverse () =
  let g = small () in
  let r = Digraph.reverse g in
  Alcotest.(check int) "same m" (Digraph.m g) (Digraph.m r);
  Test_util.check_float "flipped" 1.0 (Digraph.weight r 1 0);
  Test_util.check_float "flipped 2" 3.0 (Digraph.weight r 3 2);
  (* reversing twice is the identity on the link set *)
  Alcotest.(check (list (triple int int (float 0.0)))) "involution"
    (Digraph.links g)
    (Digraph.links (Digraph.reverse r))

let test_silence_node () =
  let g = small () in
  let s = Digraph.silence_node g 1 in
  Test_util.check_float "out-links gone" infinity (Digraph.weight s 1 2);
  Test_util.check_float "in-links kept" 1.0 (Digraph.weight s 0 1);
  Alcotest.(check int) "m reduced by out-degree" 3 (Digraph.m s)

let test_remove_node () =
  let g = small () in
  let s = Digraph.remove_node g 1 in
  Test_util.check_float "out gone" infinity (Digraph.weight s 1 2);
  Test_util.check_float "in gone" infinity (Digraph.weight s 0 1);
  Alcotest.(check int) "m" 2 (Digraph.m s)

let test_remove_links_to () =
  let g = small () in
  let s = Digraph.remove_links_to g 0 in
  Test_util.check_float "3->0 gone" infinity (Digraph.weight s 3 0);
  Test_util.check_float "1->0 gone" infinity (Digraph.weight s 1 0);
  Test_util.check_float "0->1 kept" 1.0 (Digraph.weight s 0 1);
  Alcotest.(check int) "m" 3 (Digraph.m s)

let test_silence_reverse_duality () =
  (* silence in g == remove_links_to in reverse g: the identity the batch
     payment computation relies on. *)
  let g = small () in
  let a = Digraph.reverse (Digraph.silence_node g 1) in
  let b = Digraph.remove_links_to (Digraph.reverse g) 1 in
  Alcotest.(check (list (triple int int (float 0.0)))) "duality"
    (Digraph.links a) (Digraph.links b)

let test_out_links () =
  let g = small () in
  let l = Digraph.out_links g 1 in
  Alcotest.(check int) "out degree" 2 (Array.length l);
  Alcotest.(check bool) "sorted by target" true (fst l.(0) < fst l.(1))

let suite =
  [
    Alcotest.test_case "sizes" `Quick test_sizes;
    Alcotest.test_case "weight lookup" `Quick test_weight_lookup;
    Alcotest.test_case "parallel links keep cheapest" `Quick test_parallel_links_keep_cheapest;
    Alcotest.test_case "infinite links dropped" `Quick test_infinite_links_dropped;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "reverse" `Quick test_reverse;
    Alcotest.test_case "silence_node" `Quick test_silence_node;
    Alcotest.test_case "remove_node" `Quick test_remove_node;
    Alcotest.test_case "remove_links_to" `Quick test_remove_links_to;
    Alcotest.test_case "silence/reverse duality" `Quick test_silence_reverse_duality;
    Alcotest.test_case "out_links sorted" `Quick test_out_links;
  ]
