test/test_overpayment.ml: Alcotest Array Examples Float Fun Link_cost List Option Overpayment Test_util Unicast Wnet_core Wnet_graph
