test/test_ksp.ml: Alcotest Array Graph Ksp List Path Test_util Wnet_experiments Wnet_graph Wnet_prng Wnet_topology
