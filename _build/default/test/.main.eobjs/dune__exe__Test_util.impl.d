test/test_util.ml: Alcotest Array Float Format List QCheck2 QCheck_alcotest Wnet_graph Wnet_prng
