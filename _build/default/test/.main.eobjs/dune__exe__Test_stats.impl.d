test/test_stats.ml: Alcotest Ascii_chart Float List Option Str_ext String Summary Table Test_util Wnet_stats
