test/test_prng.ml: Alcotest Array Float Fun List Rng Wnet_prng
