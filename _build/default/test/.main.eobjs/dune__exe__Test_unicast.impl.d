test/test_unicast.ml: Alcotest Array Examples Float Graph List Option Test_util Unicast Wnet_core Wnet_geom Wnet_graph Wnet_mech Wnet_prng Wnet_topology
