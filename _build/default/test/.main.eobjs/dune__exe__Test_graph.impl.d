test/test_graph.ml: Alcotest Array Graph Test_util Wnet_graph
