test/test_declaration.ml: Alcotest Array Declaration Engine Test_util Wnet_dsim Wnet_graph Wnet_prng Wnet_stats Wnet_topology
