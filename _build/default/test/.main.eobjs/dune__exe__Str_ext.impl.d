test/str_ext.ml: String
