test/test_lifetime.ml: Alcotest Battery Lifetime_sim List Str_ext Test_util Wnet_experiments Wnet_geom Wnet_graph Wnet_lifetime Wnet_topology
