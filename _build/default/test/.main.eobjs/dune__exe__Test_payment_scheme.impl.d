test/test_payment_scheme.ml: Alcotest Array Connectivity Graph List Option Path Payment_scheme Test_util Unicast Wnet_core Wnet_graph Wnet_mech Wnet_prng Wnet_topology
