test/test_topology.ml: Alcotest Array Fixtures Float Gnp List Random_range Test_util Udg Wnet_geom Wnet_graph Wnet_topology
