test/test_avoid.ml: Alcotest Array Avoid Dijkstra Float Graph Test_util Wnet_core Wnet_geom Wnet_graph Wnet_prng Wnet_topology
