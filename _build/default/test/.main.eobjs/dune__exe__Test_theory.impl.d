test/test_theory.ml: Array Dijkstra Edge_unicast Egraph Float Graph List Path Payment_scheme Test_util Unicast Wnet_core Wnet_graph Wnet_prng
