test/test_spt_protocol.ml: Alcotest Array Engine Spt_protocol Test_util Wnet_core Wnet_dsim Wnet_graph Wnet_prng Wnet_topology
