test/test_mech.ml: Alcotest Array Format List Mechanism Profile Properties String Test_util Vcg Wnet_mech
