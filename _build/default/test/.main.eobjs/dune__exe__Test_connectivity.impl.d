test/test_connectivity.ml: Alcotest Array Connectivity Fun Graph List Test_util Wnet_core Wnet_graph Wnet_topology
