test/test_accounting.ml: Alcotest Array Examples Ledger List Option Session_sim Test_util Unicast Wnet_accounting Wnet_core Wnet_graph Wnet_prng Wnet_topology
