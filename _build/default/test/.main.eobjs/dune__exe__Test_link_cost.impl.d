test/test_link_cost.ml: Alcotest Array Digraph Link_cost Test_util Wnet_core Wnet_graph Wnet_prng Wnet_topology
