test/test_payment_protocol.ml: Alcotest Array Engine List Payment_protocol Test_util Wnet_core Wnet_dsim Wnet_graph Wnet_prng Wnet_topology
