test/test_graph_io.ml: Alcotest Digraph Filename Graph Graph_io Str_ext Sys Test_util Wnet_core Wnet_graph
