test/test_async.ml: Alcotest Array Async_engine Engine List Payment_protocol Spt_protocol Test_util Wnet_dsim Wnet_graph Wnet_prng Wnet_topology
