test/test_edge_model.ml: Alcotest Array Dijkstra Edge_avoid Edge_unicast Egraph List Option Test_util Wnet_core Wnet_experiments Wnet_graph Wnet_mech Wnet_prng
