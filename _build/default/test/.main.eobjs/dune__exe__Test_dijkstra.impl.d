test/test_dijkstra.ml: Alcotest Array Digraph Dijkstra Graph List Path Test_util Wnet_core Wnet_graph Wnet_prng Wnet_topology
