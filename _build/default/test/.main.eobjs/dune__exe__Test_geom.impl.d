test/test_geom.ml: Alcotest Array Point Power Region Test_util Wnet_geom Wnet_prng
