test/test_experiments.ml: Alcotest Collusion_exp Distributed_exp Fig3 Float List Node_model Speed Str_ext Test_util Wnet_core Wnet_experiments
