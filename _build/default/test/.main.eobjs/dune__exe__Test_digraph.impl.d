test/test_digraph.ml: Alcotest Array Digraph Test_util Wnet_graph
