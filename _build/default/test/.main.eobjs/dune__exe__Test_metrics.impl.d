test/test_metrics.ml: Alcotest Array Connectivity Float Graph List Metrics Str_ext String Test_util Wnet_geom Wnet_graph Wnet_stats Wnet_topology
