test/test_examples.ml: Alcotest Array Collusion Examples List Option Test_util Unicast Wnet_core Wnet_graph
