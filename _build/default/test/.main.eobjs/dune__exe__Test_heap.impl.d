test/test_heap.ml: Alcotest Array Binheap Indexed_heap List Test_util Wnet_graph Wnet_prng
