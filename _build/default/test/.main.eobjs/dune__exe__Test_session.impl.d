test/test_session.ml: Alcotest Examples List Option Test_util Unicast Wnet_core Wnet_experiments Wnet_graph Wnet_mech Wnet_prng Wnet_topology
