test/test_baselines.ml: Alcotest Array Graph Naive_payment Nuglet Option Test_util Watchdog Wnet_baselines Wnet_core Wnet_graph Wnet_prng Wnet_topology
