test/test_collusion.ml: Alcotest Array Collusion Graph List Option Payment_scheme Test_util Unicast Wnet_core Wnet_graph Wnet_topology
