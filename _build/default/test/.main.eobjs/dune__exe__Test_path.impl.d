test/test_path.ml: Alcotest Digraph Format Path Test_util Wnet_core Wnet_graph
