test/main.mli:
