test/test_engine.ml: Alcotest Array Engine List Wnet_dsim Wnet_topology
