open Wnet_mech

(* A toy utilitarian problem for exercising the framework independently of
   graphs: hire exactly one of n contractors, socially cheapest wins.
   Clarke payment to the winner = second-lowest bid. *)
let hire_one n =
  let solve (d : Profile.t) =
    let best = ref (-1) and best_cost = ref infinity in
    Array.iteri
      (fun i c ->
        if c < !best_cost then begin
          best := i;
          best_cost := c
        end)
      d;
    if !best < 0 then None
    else begin
      let used = Array.make n false in
      used.(!best) <- true;
      Some { Vcg.cost = !best_cost; used }
    end
  in
  {
    Vcg.n_agents = n;
    solve;
    solve_without =
      (fun k d ->
        let d' = Array.mapi (fun i c -> if i = k then infinity else c) d in
        match solve d' with
        | Some s when s.Vcg.cost < infinity -> Some s
        | _ -> None);
  }

let test_profile_validate () =
  Profile.validate [| 0.0; 1.5; infinity |];
  Alcotest.check_raises "negative bid"
    (Invalid_argument "Profile: bids must be non-negative (infinity allowed)")
    (fun () -> Profile.validate [| -1.0 |])

let test_profile_deviate () =
  let d = [| 1.0; 2.0; 3.0 |] in
  let d' = Profile.deviate d 1 9.0 in
  Test_util.check_float "changed" 9.0 d'.(1);
  Test_util.check_float "original intact" 2.0 d.(1)

let test_profile_deviate_many () =
  let d = [| 1.0; 2.0; 3.0 |] in
  let d' = Profile.deviate_many d [ (0, 5.0); (2, 6.0); (0, 7.0) ] in
  Test_util.check_float "later wins" 7.0 d'.(0);
  Test_util.check_float "second" 6.0 d'.(2)

let test_profile_equal_up_to () =
  Alcotest.(check bool) "close" true
    (Profile.equal_up_to ~epsilon:1e-9 [| 1.0 |] [| 1.0 +. 1e-12 |]);
  Alcotest.(check bool) "far" false
    (Profile.equal_up_to ~epsilon:1e-9 [| 1.0 |] [| 1.1 |])

let test_vcg_second_price () =
  let p = hire_one 3 in
  match Vcg.clarke_payments p [| 5.0; 3.0; 8.0 |] with
  | None -> Alcotest.fail "feasible"
  | Some (sol, pay) ->
    Alcotest.(check bool) "cheapest wins" true sol.Vcg.used.(1);
    Test_util.check_float "winner paid second price" 5.0 pay.(1);
    Test_util.check_float "losers unpaid" 0.0 pay.(0);
    Test_util.check_float "losers unpaid" 0.0 pay.(2)

let test_vcg_monopoly_infinite () =
  let p = hire_one 1 in
  match Vcg.clarke_payments p [| 5.0 |] with
  | None -> Alcotest.fail "feasible"
  | Some (_, pay) -> Test_util.check_float "monopoly" infinity pay.(0)

let test_mechanism_utilities () =
  let m = Vcg.mechanism ~name:"hire" (hire_one 3) in
  let truth = [| 5.0; 3.0; 8.0 |] in
  match Mechanism.utilities m ~truth ~declared:truth with
  | None -> Alcotest.fail "feasible"
  | Some u ->
    Test_util.check_float "winner utility = gap to second" 2.0 u.(1);
    Test_util.check_float "loser zero" 0.0 u.(0)

let test_social_welfare () =
  let m = Vcg.mechanism ~name:"hire" (hire_one 2) in
  let truth = [| 4.0; 6.0 |] in
  match Mechanism.social_welfare m ~truth ~declared:truth with
  | None -> Alcotest.fail "feasible"
  | Some w -> Test_util.check_float "welfare = -cheapest true cost" (-4.0) w

let test_ic_no_violation_for_vcg () =
  let m = Vcg.mechanism ~name:"hire" (hire_one 4) in
  let truth = [| 5.0; 3.0; 8.0; 4.0 |] in
  let v =
    Properties.random_ic_violations (Test_util.rng 3) m ~truth ~trials:200
      ~lie_bound:20.0
  in
  Alcotest.(check int) "second-price auction is IC" 0 (List.length v)

let test_ic_catches_first_price () =
  (* Pay-your-bid (first price) is famously not IC: under-bidding helps
     when you still win... for a cost auction, the winner wants to
     OVER-bid as long as it stays the winner. *)
  let base = hire_one 3 in
  let m =
    Mechanism.make ~name:"first-price"
      ~run:(fun d ->
        match base.Vcg.solve d with
        | None -> None
        | Some sol ->
          let pay = Array.mapi (fun i u -> if u then d.(i) else 0.0) sol.Vcg.used in
          Some (sol, pay))
      ~valuation:(fun i sol c -> if sol.Vcg.used.(i) then -.c else 0.0)
  in
  let truth = [| 5.0; 3.0; 8.0 |] in
  let v =
    Properties.random_ic_violations (Test_util.rng 4) m ~truth ~trials:200
      ~lie_bound:20.0
  in
  Alcotest.(check bool) "violations found" true (v <> [])

let test_ir_holds_for_vcg () =
  let m = Vcg.mechanism ~name:"hire" (hire_one 3) in
  Alcotest.(check (list (pair int (float 0.0)))) "no negative utilities" []
    (Properties.ir_violations m ~truth:[| 5.0; 3.0; 8.0 |])

let test_ir_catches_undercompensation () =
  let base = hire_one 2 in
  let m =
    Mechanism.make ~name:"stingy"
      ~run:(fun d ->
        match base.Vcg.solve d with
        | None -> None
        | Some sol -> Some (sol, Array.make 2 0.0))
      ~valuation:(fun i sol c -> if sol.Vcg.used.(i) then -.c else 0.0)
  in
  let v = Properties.ir_violations m ~truth:[| 4.0; 6.0 |] in
  Alcotest.(check (list (pair int (float 1e-9)))) "winner uncompensated"
    [ (0, -4.0) ] v

let test_pair_collusion_detects () =
  (* Two contractors jointly over-bidding in a 2-agent market with no
     third option: the VCG payment to the winner is the other's bid, so
     coordinated inflation transfers unbounded profit.  (VCG is not
     group-strategyproof.) *)
  let m = Vcg.mechanism ~name:"hire" (hire_one 3) in
  let truth = [| 5.0; 3.0; 100.0 |] in
  let v =
    Properties.pair_collusion_violations (Test_util.rng 5) m ~truth
      ~pairs:[ (0, 1) ] ~trials_per_pair:40 ~lie_bound:80.0
  in
  Alcotest.(check bool) "pair gain found" true (v <> [])

let test_violation_pp () =
  let v =
    {
      Properties.agents = [ (1, 9.0) ];
      honest_total = 1.0;
      deviant_total = 3.0;
    }
  in
  let s = Format.asprintf "%a" Properties.pp_violation v in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions coalition" true (contains s "coalition");
  Alcotest.(check bool) "mentions gain" true (contains s "gain 2")

let suite =
  [
    Alcotest.test_case "profile validation" `Quick test_profile_validate;
    Alcotest.test_case "profile deviation" `Quick test_profile_deviate;
    Alcotest.test_case "joint deviation" `Quick test_profile_deviate_many;
    Alcotest.test_case "profile approx equality" `Quick test_profile_equal_up_to;
    Alcotest.test_case "Clarke = second price" `Quick test_vcg_second_price;
    Alcotest.test_case "monopoly priced infinite" `Quick test_vcg_monopoly_infinite;
    Alcotest.test_case "utilities" `Quick test_mechanism_utilities;
    Alcotest.test_case "social welfare" `Quick test_social_welfare;
    Alcotest.test_case "IC holds for VCG" `Quick test_ic_no_violation_for_vcg;
    Alcotest.test_case "IC falsifier catches first-price" `Quick test_ic_catches_first_price;
    Alcotest.test_case "IR holds for VCG" `Quick test_ir_holds_for_vcg;
    Alcotest.test_case "IR falsifier catches zero pay" `Quick test_ir_catches_undercompensation;
    Alcotest.test_case "pair collusion falsifier" `Quick test_pair_collusion_detects;
    Alcotest.test_case "violation printer" `Quick test_violation_pp;
  ]
