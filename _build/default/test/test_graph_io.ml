open Wnet_graph

let sample = "# comment line\nnode 0 1.5\nnode 1 2\nedge 0 1\n\nedge 1 2\n"

let test_parse_basic () =
  let g = Graph_io.parse sample in
  Alcotest.(check int) "nodes (max id + 1)" 3 (Graph.n g);
  Test_util.check_float "cost read" 1.5 (Graph.cost g 0);
  Test_util.check_float "default cost 0" 0.0 (Graph.cost g 2);
  Alcotest.(check int) "edges" 2 (Graph.m g)

let test_roundtrip () =
  let g = Wnet_core.Examples.fig2.Wnet_core.Examples.graph in
  let g' = Graph_io.parse (Graph_io.to_string g) in
  Alcotest.(check int) "n" (Graph.n g) (Graph.n g');
  Alcotest.(check (list (pair int int))) "edges" (Graph.edges g) (Graph.edges g');
  for v = 0 to Graph.n g - 1 do
    Test_util.check_float "cost" (Graph.cost g v) (Graph.cost g' v)
  done

let test_parse_errors () =
  (try
     ignore (Graph_io.parse "frobnicate 1 2");
     Alcotest.fail "must reject"
   with Failure msg ->
     Alcotest.(check bool) "line number in message" true
       (Str_ext.index_of msg "line 1" <> None));
  try
    ignore (Graph_io.parse "node zero 1");
    Alcotest.fail "must reject"
  with Failure msg ->
    Alcotest.(check bool) "bad integer reported" true
      (Str_ext.index_of msg "bad integer" <> None)

let test_parse_digraph () =
  let g = Graph_io.parse_digraph "link 0 1 2.5\nlink 1 0 7\nnode 2 0\n" in
  Alcotest.(check int) "n" 3 (Digraph.n g);
  Test_util.check_float "forward" 2.5 (Digraph.weight g 0 1);
  Test_util.check_float "backward" 7.0 (Digraph.weight g 1 0)

let test_digraph_edge_becomes_two_links () =
  let g = Graph_io.parse_digraph "edge 0 1" in
  Test_util.check_float "0->1" 0.0 (Digraph.weight g 0 1);
  Test_util.check_float "1->0" 0.0 (Digraph.weight g 1 0)

let test_link_rejected_in_graph_format () =
  try
    ignore (Graph_io.parse "link 0 1 2");
    Alcotest.fail "must reject"
  with Failure _ -> ()

let test_comments_and_blanks () =
  let g = Graph_io.parse "  \n# only comments\nnode 0 3 # trailing comment\n" in
  Alcotest.(check int) "single node" 1 (Graph.n g);
  Test_util.check_float "cost" 3.0 (Graph.cost g 0)


let test_file_roundtrip () =
  let path = Filename.temp_file "wnet" ".graph" in
  let g = Wnet_core.Examples.fig4.Wnet_core.Examples.graph in
  let oc = open_out path in
  output_string oc (Graph_io.to_string g);
  close_out oc;
  let g2 = Graph_io.parse_file path in
  Sys.remove path;
  Alcotest.(check (list (pair int int))) "edges survive the file system"
    (Graph.edges g) (Graph.edges g2)

let test_digraph_file () =
  let path = Filename.temp_file "wnet" ".digraph" in
  let oc = open_out path in
  output_string oc "link 0 1 3.5\nlink 1 2 1\n";
  close_out oc;
  let g = Graph_io.parse_digraph_file path in
  Sys.remove path;
  Test_util.check_float "weight from file" 3.5 (Digraph.weight g 0 1)

let suite =
  [
    Alcotest.test_case "parse basics" `Quick test_parse_basic;
    Alcotest.test_case "round trip" `Quick test_roundtrip;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "digraph format" `Quick test_parse_digraph;
    Alcotest.test_case "edge = two links" `Quick test_digraph_edge_becomes_two_links;
    Alcotest.test_case "link rejected in node format" `Quick test_link_rejected_in_graph_format;
    Alcotest.test_case "comments and blanks" `Quick test_comments_and_blanks;
    Alcotest.test_case "file round trip" `Quick test_file_roundtrip;
    Alcotest.test_case "digraph file" `Quick test_digraph_file;
  ]
