(* Tiny substring search helper shared by test files. *)

let index_of hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i =
    if i + nl > hl then None
    else if String.sub hay i nl = needle then Some i
    else go (i + 1)
  in
  go 0
