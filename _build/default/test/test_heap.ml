open Wnet_graph

let test_basic_order () =
  let h = Indexed_heap.create 10 in
  Indexed_heap.insert h 3 5.0;
  Indexed_heap.insert h 1 2.0;
  Indexed_heap.insert h 7 9.0;
  Alcotest.(check (pair int (float 0.0))) "min" (1, 2.0) (Indexed_heap.pop_min h);
  Alcotest.(check (pair int (float 0.0))) "next" (3, 5.0) (Indexed_heap.pop_min h);
  Alcotest.(check (pair int (float 0.0))) "last" (7, 9.0) (Indexed_heap.pop_min h);
  Alcotest.(check bool) "empty" true (Indexed_heap.is_empty h)

let test_decrease_key () =
  let h = Indexed_heap.create 5 in
  Indexed_heap.insert h 0 10.0;
  Indexed_heap.insert h 1 20.0;
  Indexed_heap.decrease h 1 1.0;
  Alcotest.(check (pair int (float 0.0))) "decreased wins" (1, 1.0) (Indexed_heap.pop_min h)

let test_tie_break_by_key () =
  let h = Indexed_heap.create 5 in
  Indexed_heap.insert h 4 1.0;
  Indexed_heap.insert h 2 1.0;
  Indexed_heap.insert h 3 1.0;
  Alcotest.(check (pair int (float 0.0))) "smallest id first" (2, 1.0) (Indexed_heap.pop_min h);
  Alcotest.(check (pair int (float 0.0))) "then next" (3, 1.0) (Indexed_heap.pop_min h)

let test_insert_or_decrease () =
  let h = Indexed_heap.create 5 in
  Indexed_heap.insert_or_decrease h 0 5.0;
  Indexed_heap.insert_or_decrease h 0 3.0;
  Indexed_heap.insert_or_decrease h 0 7.0 (* ignored: larger *);
  Alcotest.(check (float 0.0)) "kept min" 3.0 (Indexed_heap.priority h 0)

let test_mem_and_errors () =
  let h = Indexed_heap.create 3 in
  Indexed_heap.insert h 1 1.0;
  Alcotest.(check bool) "mem" true (Indexed_heap.mem h 1);
  Alcotest.(check bool) "not mem" false (Indexed_heap.mem h 0);
  Alcotest.check_raises "double insert"
    (Invalid_argument "Indexed_heap.insert: key already present") (fun () ->
      Indexed_heap.insert h 1 2.0);
  Alcotest.check_raises "decrease absent"
    (Invalid_argument "Indexed_heap.decrease: key absent") (fun () ->
      Indexed_heap.decrease h 0 0.5);
  Alcotest.check_raises "increase rejected"
    (Invalid_argument "Indexed_heap.decrease: new priority is larger") (fun () ->
      Indexed_heap.decrease h 1 9.0)

let test_pop_empty () =
  let h = Indexed_heap.create 1 in
  Alcotest.check_raises "pop empty" Not_found (fun () ->
      ignore (Indexed_heap.pop_min h))

let test_heapsort_random () =
  let r = Test_util.rng 42 in
  for _ = 1 to 20 do
    let n = 1 + Wnet_prng.Rng.int r 200 in
    let h = Indexed_heap.create n in
    let prios = Array.init n (fun _ -> Wnet_prng.Rng.float r 100.0) in
    Array.iteri (fun k p -> Indexed_heap.insert h k p) prios;
    let prev = ref neg_infinity in
    for _ = 1 to n do
      let _, p = Indexed_heap.pop_min h in
      Alcotest.(check bool) "non-decreasing" true (p >= !prev);
      prev := p
    done
  done

let test_random_decrease_consistency () =
  let r = Test_util.rng 7 in
  let n = 100 in
  let h = Indexed_heap.create n in
  let best = Array.make n infinity in
  for k = 0 to n - 1 do
    let p = Wnet_prng.Rng.float r 100.0 in
    best.(k) <- p;
    Indexed_heap.insert h k p
  done;
  for _ = 1 to 500 do
    let k = Wnet_prng.Rng.int r n in
    if Indexed_heap.mem h k then begin
      let p = Wnet_prng.Rng.float r 100.0 in
      if p < best.(k) then begin
        best.(k) <- p;
        Indexed_heap.decrease h k p
      end
    end
  done;
  let popped = ref [] in
  while not (Indexed_heap.is_empty h) do
    popped := Indexed_heap.pop_min h :: !popped
  done;
  List.iter
    (fun (k, p) -> Test_util.check_float "priority preserved" best.(k) p)
    !popped;
  Alcotest.(check int) "all popped" n (List.length !popped)

let test_binheap_order () =
  let h = Binheap.create () in
  Binheap.push h 3.0 "c";
  Binheap.push h 1.0 "a";
  Binheap.push h 2.0 "b";
  Alcotest.(check (option (pair (float 0.0) string))) "peek" (Some (1.0, "a")) (Binheap.peek_min h);
  Alcotest.(check (option (pair (float 0.0) string))) "pop a" (Some (1.0, "a")) (Binheap.pop_min h);
  Alcotest.(check (option (pair (float 0.0) string))) "pop b" (Some (2.0, "b")) (Binheap.pop_min h);
  Alcotest.(check (option (pair (float 0.0) string))) "pop c" (Some (3.0, "c")) (Binheap.pop_min h);
  Alcotest.(check (option (pair (float 0.0) string))) "empty" None (Binheap.pop_min h)

let test_binheap_duplicates () =
  let h = Binheap.create () in
  Binheap.push h 1.0 0;
  Binheap.push h 1.0 1;
  Binheap.push h 0.5 2;
  Alcotest.(check int) "size" 3 (Binheap.size h);
  let _ = Binheap.pop_min h in
  Alcotest.(check int) "size after pop" 2 (Binheap.size h)

let test_binheap_random_sorted () =
  let r = Test_util.rng 9 in
  let h = Binheap.create () in
  let n = 500 in
  for _ = 1 to n do
    Binheap.push h (Wnet_prng.Rng.float r 1.0) ()
  done;
  let prev = ref neg_infinity in
  for _ = 1 to n do
    match Binheap.pop_min h with
    | None -> Alcotest.fail "premature empty"
    | Some (k, ()) ->
      Alcotest.(check bool) "sorted" true (k >= !prev);
      prev := k
  done

let suite =
  [
    Alcotest.test_case "indexed: pop order" `Quick test_basic_order;
    Alcotest.test_case "indexed: decrease-key" `Quick test_decrease_key;
    Alcotest.test_case "indexed: deterministic ties" `Quick test_tie_break_by_key;
    Alcotest.test_case "indexed: insert_or_decrease" `Quick test_insert_or_decrease;
    Alcotest.test_case "indexed: membership and errors" `Quick test_mem_and_errors;
    Alcotest.test_case "indexed: pop on empty" `Quick test_pop_empty;
    Alcotest.test_case "indexed: heapsort randomized" `Quick test_heapsort_random;
    Alcotest.test_case "indexed: random decrease consistency" `Quick test_random_decrease_consistency;
    Alcotest.test_case "binheap: order" `Quick test_binheap_order;
    Alcotest.test_case "binheap: duplicate keys" `Quick test_binheap_duplicates;
    Alcotest.test_case "binheap: randomized sort" `Quick test_binheap_random_sorted;
  ]
