open Wnet_core

(* The reconstructed paper figures must reproduce the published numbers. *)

let test_fig2_honest_payments () =
  let f = Examples.fig2 in
  match Unicast.run f.Examples.graph ~src:f.Examples.source ~dst:f.Examples.access_point with
  | None -> Alcotest.fail "connected"
  | Some r ->
    Alcotest.(check (array int)) "LCP v1-v4-v3-v2-v0" [| 1; 4; 3; 2; 0 |] r.Unicast.path;
    Test_util.check_float "each relay paid 2" 2.0 (Unicast.payment_to r 2);
    Test_util.check_float "each relay paid 2" 2.0 (Unicast.payment_to r 3);
    Test_util.check_float "each relay paid 2" 2.0 (Unicast.payment_to r 4);
    Test_util.check_float "total 6 (paper)" 6.0 (Unicast.total_payment r)

let test_fig2_lying_pays_less () =
  let f = Examples.fig2 in
  match Unicast.run f.Examples.lying_graph ~src:f.Examples.source ~dst:f.Examples.access_point with
  | None -> Alcotest.fail "connected"
  | Some r ->
    Alcotest.(check (array int)) "LCP becomes v1-v5-v0" [| 1; 5; 0 |] r.Unicast.path;
    Test_util.check_float "pays v5 exactly 5 (paper)" 5.0 (Unicast.total_payment r);
    (* the whole point: 5 < 6, lying about neighbourhood helps *)
    Alcotest.(check bool) "lie profitable" true (Unicast.total_payment r < 6.0)

let test_fig4_pinned_values () =
  let f = Examples.fig4 in
  let g = f.Examples.graph in
  let r8 = Unicast.run g ~src:f.Examples.reseller ~dst:f.Examples.access_point |> Option.get in
  let r4 = Unicast.run g ~src:f.Examples.proxy ~dst:f.Examples.access_point |> Option.get in
  Test_util.check_float "p_8 = 20 (paper)" 20.0 (Unicast.total_payment r8);
  Test_util.check_float "p_8^4 = 0 (paper)" 0.0 (Unicast.payment_to r8 4);
  Test_util.check_float "c_4 = 5 (paper)" 5.0 (Wnet_graph.Graph.cost g 4);
  Test_util.check_float "p_4 = 9 (reconstruction)" 9.0 (Unicast.total_payment r4)

let test_fig4_resale_detected () =
  let f = Examples.fig4 in
  let g = f.Examples.graph in
  let batch = Unicast.all_to_root g ~root:f.Examples.access_point in
  let ops =
    Collusion.resale_opportunities g ~root:f.Examples.access_point
      ~payments:(fun v -> batch.(v))
  in
  match List.find_opt (fun (o : Collusion.resale) -> o.Collusion.source = 8) ops with
  | None -> Alcotest.fail "resale opportunity must exist for v8"
  | Some o ->
    Alcotest.(check int) "proxy is v4" 4 o.Collusion.proxy;
    Test_util.check_float "transfer = p_4 + max(p_8^4, c_4)" 14.0 o.Collusion.transfer;
    Test_util.check_float "saving" 6.0 o.Collusion.saving;
    Test_util.check_float "effective cost with split" 17.0
      (Collusion.effective_cost_after_resale o);
    Alcotest.(check bool) "cheaper than honest" true
      (Collusion.effective_cost_after_resale o < 20.0)

let test_diamond_fixture () =
  let g = Examples.diamond in
  Alcotest.(check int) "four nodes" 4 (Wnet_graph.Graph.n g);
  Alcotest.(check bool) "biconnected" true (Wnet_graph.Connectivity.is_biconnected g)

let suite =
  [
    Alcotest.test_case "fig2: honest payments (6)" `Quick test_fig2_honest_payments;
    Alcotest.test_case "fig2: hiding an edge pays 5" `Quick test_fig2_lying_pays_less;
    Alcotest.test_case "fig4: pinned values" `Quick test_fig4_pinned_values;
    Alcotest.test_case "fig4: resale detected" `Quick test_fig4_resale_detected;
    Alcotest.test_case "diamond fixture" `Quick test_diamond_fixture;
  ]
