(* Shared helpers for the test suites. *)

let approx ?(eps = 1e-9) a b =
  (a = b)
  || (a = infinity && b = infinity)
  || (Float.is_nan a && Float.is_nan b)
  || Float.abs (a -. b) <= eps *. (1.0 +. Float.max (Float.abs a) (Float.abs b))

let float_approx =
  Alcotest.testable
    (fun ppf x -> Format.fprintf ppf "%.12g" x)
    (fun a b -> approx a b)

let check_float = Alcotest.check float_approx

let rng seed = Wnet_prng.Rng.create seed

(* A connected random graph with strictly positive costs, for property
   tests: ring backbone + random chords. *)
let random_ring_graph ?(min_n = 4) ?(max_n = 40) r =
  let n = min_n + Wnet_prng.Rng.int r (max_n - min_n + 1) in
  let costs = Array.init n (fun _ -> 0.1 +. Wnet_prng.Rng.float r 10.0) in
  let edges = ref (List.init n (fun v -> (v, (v + 1) mod n))) in
  let extra = Wnet_prng.Rng.int r (2 * n) in
  for _ = 1 to extra do
    let u = Wnet_prng.Rng.int r n and v = Wnet_prng.Rng.int r n in
    if u <> v then edges := (u, v) :: !edges
  done;
  Wnet_graph.Graph.create ~costs ~edges:!edges

(* Sparse random graph (tree + few chords): node removal often
   disconnects, exercising the infinity paths. *)
let random_sparse_graph ?(min_n = 4) ?(max_n = 30) r =
  let n = min_n + Wnet_prng.Rng.int r (max_n - min_n + 1) in
  let costs = Array.init n (fun _ -> 0.05 +. Wnet_prng.Rng.float r 5.0) in
  let edges = ref [] in
  for v = 1 to n - 1 do
    edges := (v, Wnet_prng.Rng.int r v) :: !edges
  done;
  let extra = Wnet_prng.Rng.int r 4 in
  for _ = 1 to extra do
    let u = Wnet_prng.Rng.int r n and v = Wnet_prng.Rng.int r n in
    if u <> v then edges := (u, v) :: !edges
  done;
  Wnet_graph.Graph.create ~costs ~edges:!edges

let qcheck_case ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* QCheck generator wrapping one of our seeded graph generators: we
   generate a seed and derive the structure, which shrinks poorly but
   keeps generation deterministic and cheap. *)
let seed_gen = QCheck2.Gen.int_range 0 1_000_000
