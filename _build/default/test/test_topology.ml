open Wnet_topology

let test_udg_adjacency_by_range () =
  let r = Test_util.rng 100 in
  let t = Udg.generate r ~region:(Wnet_geom.Region.square 1000.0) ~n:60 ~range:200.0 in
  List.iter
    (fun (u, v) ->
      Alcotest.(check bool) "within range" true
        (Wnet_geom.Point.distance t.Udg.points.(u) t.Udg.points.(v) <= 200.0))
    t.Udg.edges;
  (* and completeness: all close pairs are edges *)
  let n = Array.length t.Udg.points in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let close = Wnet_geom.Point.within 200.0 t.Udg.points.(u) t.Udg.points.(v) in
      let listed = List.mem (u, v) t.Udg.edges in
      Alcotest.(check bool) "edge iff close" close listed
    done
  done

let test_udg_paper_instance () =
  let r = Test_util.rng 101 in
  let t = Udg.paper_instance r ~n:100 in
  Test_util.check_float "range" 300.0 t.Udg.range;
  Alcotest.(check int) "n" 100 (Array.length t.Udg.points);
  Array.iter
    (fun p ->
      Alcotest.(check bool) "inside region" true
        (Wnet_geom.Region.contains Wnet_geom.Region.paper_region p))
    t.Udg.points

let test_udg_link_graph_weights () =
  let r = Test_util.rng 102 in
  let t = Udg.generate r ~region:(Wnet_geom.Region.square 500.0) ~n:30 ~range:250.0 in
  let g = Udg.link_graph t ~model:(Wnet_geom.Power.path_loss_only ~kappa:2.0) in
  List.iter
    (fun (u, v) ->
      let d = Wnet_geom.Point.distance t.Udg.points.(u) t.Udg.points.(v) in
      Test_util.check_float "w = d^2" (d *. d) (Wnet_graph.Digraph.weight g u v);
      Test_util.check_float "symmetric weights" (d *. d) (Wnet_graph.Digraph.weight g v u))
    t.Udg.edges

let test_udg_node_graph () =
  let r = Test_util.rng 103 in
  let t = Udg.generate r ~region:(Wnet_geom.Region.square 500.0) ~n:20 ~range:200.0 in
  let costs = Udg.uniform_node_costs r ~n:20 ~lo:2.0 ~hi:4.0 in
  Array.iter
    (fun c -> Alcotest.(check bool) "cost in range" true (c >= 2.0 && c < 4.0))
    costs;
  let g = Udg.node_graph t ~costs in
  Alcotest.(check int) "same edge count" (List.length t.Udg.edges) (Wnet_graph.Graph.m g)

let test_udg_generate_connected () =
  let r = Test_util.rng 104 in
  match
    Udg.generate_connected r ~region:(Wnet_geom.Region.square 800.0) ~n:60
      ~range:300.0 ~max_tries:50
  with
  | None -> Alcotest.fail "should find a connected instance"
  | Some t -> Alcotest.(check bool) "connected" true (Udg.is_connected t)

let test_random_range_directionality () =
  let r = Test_util.rng 105 in
  let inst = Random_range.paper_instance r ~n:60 ~kappa:2.0 in
  let g = inst.Random_range.graph in
  (* every link respects the sender's range, and weights match the
     sender's own cost model *)
  List.iter
    (fun (i, j, w) ->
      let d = Wnet_geom.Point.distance inst.Random_range.points.(i) inst.Random_range.points.(j) in
      Alcotest.(check bool) "within sender range" true (d <= inst.Random_range.ranges.(i));
      Test_util.check_float "sender cost model"
        (Wnet_geom.Power.cost inst.Random_range.models.(i) d) w)
    (Wnet_graph.Digraph.links g)

let test_random_range_params () =
  let r = Test_util.rng 106 in
  let inst = Random_range.paper_instance r ~n:50 ~kappa:2.5 in
  Array.iter
    (fun rg -> Alcotest.(check bool) "range in [100,500)" true (rg >= 100.0 && rg < 500.0))
    inst.Random_range.ranges;
  Array.iter
    (fun (m : Wnet_geom.Power.t) ->
      Alcotest.(check bool) "c1" true (m.Wnet_geom.Power.alpha >= 300.0 && m.Wnet_geom.Power.alpha < 500.0);
      Alcotest.(check bool) "c2" true (m.Wnet_geom.Power.beta >= 10.0 && m.Wnet_geom.Power.beta < 50.0);
      Test_util.check_float "kappa" 2.5 m.Wnet_geom.Power.kappa)
    inst.Random_range.models

let test_gnp_edge_probability () =
  let r = Test_util.rng 107 in
  let total = ref 0 in
  for _ = 1 to 20 do
    total := !total + List.length (Gnp.edges r ~n:40 ~p:0.3)
  done;
  let expected = 20.0 *. 0.3 *. float_of_int (40 * 39 / 2) in
  let got = float_of_int !total in
  Alcotest.(check bool) "close to np" true
    (Float.abs (got -. expected) /. expected < 0.1)

let test_gnp_connected_graph () =
  let r = Test_util.rng 108 in
  for _ = 1 to 20 do
    let g = Gnp.connected_graph r ~n:30 ~p:0.02 ~cost_lo:1.0 ~cost_hi:2.0 in
    Alcotest.(check bool) "connected" true (Wnet_graph.Connectivity.is_connected g)
  done

let test_gnp_biconnected_graph () =
  let r = Test_util.rng 109 in
  match Gnp.biconnected_graph r ~n:20 ~p:0.2 ~cost_lo:1.0 ~cost_hi:2.0 ~max_tries:50 with
  | None -> Alcotest.fail "should succeed"
  | Some g -> Alcotest.(check bool) "biconnected" true (Wnet_graph.Connectivity.is_biconnected g)

let test_fixture_shapes () =
  let line = Fixtures.line ~costs:(Array.make 5 1.0) in
  Alcotest.(check int) "line edges" 4 (Wnet_graph.Graph.m line);
  let ring = Fixtures.ring ~costs:(Array.make 5 1.0) in
  Alcotest.(check int) "ring edges" 5 (Wnet_graph.Graph.m ring);
  let k5 = Fixtures.complete ~costs:(Array.make 5 1.0) in
  Alcotest.(check int) "clique edges" 10 (Wnet_graph.Graph.m k5);
  let grid = Fixtures.grid ~rows:3 ~cols:4 ~cost:(fun r c -> float_of_int (r + c)) in
  Alcotest.(check int) "grid nodes" 12 (Wnet_graph.Graph.n grid);
  Alcotest.(check int) "grid edges" 17 (Wnet_graph.Graph.m grid);
  (* node 7 of a 3x4 grid is cell (1, 3) *)
  Test_util.check_float "grid cost fn" 4.0 (Wnet_graph.Graph.cost grid 7)

let test_theta_structure () =
  let g = Fixtures.theta ~spine_costs:[| 1.0; 2.0 |] ~arm_costs:[| [| 3.0 |]; [| 4.0; 5.0 |] |] in
  Alcotest.(check int) "nodes" 5 (Wnet_graph.Graph.n g);
  Test_util.check_float "terminal 0" 1.0 (Wnet_graph.Graph.cost g 0);
  Test_util.check_float "terminal 1" 2.0 (Wnet_graph.Graph.cost g 1);
  Alcotest.(check bool) "arm1 connects" true (Wnet_graph.Connectivity.connected_between g 0 1);
  (* removing either arm leaves the other *)
  Alcotest.(check bool) "arm redundancy" true
    (Wnet_graph.Connectivity.connected_without g ~removed:[ 2 ] 0 1)

let suite =
  [
    Alcotest.test_case "UDG adjacency iff within range" `Quick test_udg_adjacency_by_range;
    Alcotest.test_case "UDG paper parameters" `Quick test_udg_paper_instance;
    Alcotest.test_case "UDG link weights" `Quick test_udg_link_graph_weights;
    Alcotest.test_case "UDG node graph" `Quick test_udg_node_graph;
    Alcotest.test_case "UDG connected retry" `Quick test_udg_generate_connected;
    Alcotest.test_case "random-range directionality" `Quick test_random_range_directionality;
    Alcotest.test_case "random-range parameters" `Quick test_random_range_params;
    Alcotest.test_case "G(n,p) edge count" `Quick test_gnp_edge_probability;
    Alcotest.test_case "G(n,p) connected variant" `Quick test_gnp_connected_graph;
    Alcotest.test_case "G(n,p) biconnected variant" `Quick test_gnp_biconnected_graph;
    Alcotest.test_case "fixture shapes" `Quick test_fixture_shapes;
    Alcotest.test_case "theta structure" `Quick test_theta_structure;
  ]
