open Wnet_lifetime

let small () =
  Wnet_graph.Graph.create ~costs:[| 1.0; 2.0; 3.0 |]
    ~edges:[ (0, 1); (1, 2); (0, 2) ]

let test_battery_basics () =
  let b = Battery.create (small ()) ~budget:5.0 in
  Test_util.check_float "initial" 5.0 (Battery.remaining b 1);
  Alcotest.(check bool) "alive" true (Battery.alive b 1);
  Alcotest.(check bool) "spend ok" true (Battery.spend_transmit b 1);
  Test_util.check_float "after one packet" 3.0 (Battery.remaining b 1);
  Alcotest.(check bool) "second spend ok" true (Battery.spend_transmit b 1);
  Alcotest.(check bool) "now broke (1 < 2)" false (Battery.spend_transmit b 1);
  Test_util.check_float "not overdrawn" 1.0 (Battery.remaining b 1)

let test_battery_alive_count () =
  (* budget 2.5 covers costs 1 and 2 but not node 2's cost of 3: that
     node is dead on arrival. *)
  let b = Battery.create (small ()) ~budget:2.5 in
  Alcotest.(check int) "two can transmit" 2 (Battery.alive_count b);
  Alcotest.(check bool) "node 2 cannot afford a packet" false
    (Battery.spend_transmit b 2);
  Test_util.check_float "never overdrawn" 2.5 (Battery.remaining b 2);
  Alcotest.(check (list int)) "dead set" [ 2 ] (Battery.dead_nodes b)

let test_battery_heterogeneous () =
  let b = Battery.create_heterogeneous (small ()) ~budgets:[| 10.0; 0.0; 3.0 |] in
  Alcotest.(check bool) "broke node dead" false (Battery.alive b 1);
  Test_util.check_float "total energy" 13.0 (Battery.total_energy b);
  Alcotest.check_raises "length checked"
    (Invalid_argument "Battery.create_heterogeneous: length mismatch") (fun () ->
      ignore (Battery.create_heterogeneous (small ()) ~budgets:[| 1.0 |]))

let udg_instance seed =
  let r = Test_util.rng seed in
  let t =
    Wnet_topology.Udg.generate r ~region:(Wnet_geom.Region.square 1000.0) ~n:40
      ~range:300.0
  in
  let costs = Wnet_topology.Udg.uniform_node_costs r ~n:40 ~lo:0.5 ~hi:2.0 in
  (r, Wnet_topology.Udg.node_graph t ~costs)

let test_selfish_collapses_throughput () =
  let r, g = udg_instance 150 in
  match
    Lifetime_sim.compare_regimes r g ~root:0 ~budget:40.0 ~sessions:800
      [ Lifetime_sim.Paid_vcg; Lifetime_sim.Selfish ]
  with
  | [ vcg; selfish ] ->
    Alcotest.(check bool) "cooperation beats selfishness" true
      (vcg.Lifetime_sim.delivered > selfish.Lifetime_sim.delivered);
    (* selfish world: only AP-adjacent sources deliver, so relays never
       spend for others *)
    Alcotest.(check bool) "selfish saves energy" true
      (selfish.Lifetime_sim.residual_energy > vcg.Lifetime_sim.residual_energy)
  | _ -> Alcotest.fail "two outcomes"

let test_vcg_matches_altruism () =
  let r, g = udg_instance 151 in
  match
    Lifetime_sim.compare_regimes r g ~root:0 ~budget:40.0 ~sessions:800
      [ Lifetime_sim.Paid_vcg; Lifetime_sim.Altruistic ]
  with
  | [ vcg; alt ] ->
    Alcotest.(check int) "same throughput on identical traffic"
      alt.Lifetime_sim.delivered vcg.Lifetime_sim.delivered;
    Alcotest.(check bool) "but VCG compensates the relays" true
      (vcg.Lifetime_sim.payments_flow > 0.0)
  | _ -> Alcotest.fail "two outcomes"

let test_fixed_price_in_between () =
  let r, g = udg_instance 152 in
  match
    Lifetime_sim.compare_regimes r g ~root:0 ~budget:40.0 ~sessions:800
      [ Lifetime_sim.Paid_vcg; Lifetime_sim.Fixed_price 1.0; Lifetime_sim.Selfish ]
  with
  | [ vcg; fixed; selfish ] ->
    Alcotest.(check bool) "fixed <= vcg" true
      (fixed.Lifetime_sim.delivered <= vcg.Lifetime_sim.delivered);
    Alcotest.(check bool) "fixed >= selfish" true
      (fixed.Lifetime_sim.delivered >= selfish.Lifetime_sim.delivered)
  | _ -> Alcotest.fail "three outcomes"

let test_accounting_of_sessions () =
  let r, g = udg_instance 153 in
  let o = Lifetime_sim.run r g ~root:0 ~budget:30.0 ~sessions:500 Lifetime_sim.Paid_vcg in
  Alcotest.(check int) "every session accounted" 500
    (o.Lifetime_sim.delivered + o.Lifetime_sim.blocked);
  Alcotest.(check bool) "deaths recorded when batteries drain" true
    (o.Lifetime_sim.dead_at_end = 0 || o.Lifetime_sim.first_death <> None)

let test_lifetime_experiment_runs () =
  let rows = Wnet_experiments.Lifetime_exp.study ~n:40 ~sessions:300 ~seed:14 () in
  Alcotest.(check int) "four regimes" 4 (List.length rows);
  Alcotest.(check bool) "render works" true
    (Str_ext.index_of (Wnet_experiments.Lifetime_exp.render rows) "regime" <> None)

let suite =
  [
    Alcotest.test_case "battery basics" `Quick test_battery_basics;
    Alcotest.test_case "battery alive count" `Quick test_battery_alive_count;
    Alcotest.test_case "heterogeneous budgets" `Quick test_battery_heterogeneous;
    Alcotest.test_case "selfishness collapses throughput" `Quick test_selfish_collapses_throughput;
    Alcotest.test_case "VCG matches altruism" `Quick test_vcg_matches_altruism;
    Alcotest.test_case "fixed price in between" `Quick test_fixed_price_in_between;
    Alcotest.test_case "session accounting" `Quick test_accounting_of_sessions;
    Alcotest.test_case "lifetime experiment" `Quick test_lifetime_experiment_runs;
  ]
