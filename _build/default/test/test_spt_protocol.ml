open Wnet_dsim

let test_honest_matches_centralized () =
  let r = Test_util.rng 80 in
  for _ = 1 to 25 do
    let g = Wnet_topology.Gnp.connected_graph r ~n:(5 + Wnet_prng.Rng.int r 30)
        ~p:0.15 ~cost_lo:0.5 ~cost_hi:5.0
    in
    let res = Spt_protocol.run g ~root:0 in
    Alcotest.(check bool) "matches" true (Spt_protocol.matches_centralized res g ~root:0);
    Alcotest.(check bool) "converged" true res.Spt_protocol.stats.Engine.converged
  done

let test_rounds_bounded () =
  let r = Test_util.rng 81 in
  for _ = 1 to 10 do
    let n = 10 + Wnet_prng.Rng.int r 40 in
    let g = Wnet_topology.Gnp.connected_graph r ~n ~p:0.2 ~cost_lo:0.5 ~cost_hi:5.0 in
    let res = Spt_protocol.run g ~root:0 in
    Alcotest.(check bool) "at most n rounds" true
      (res.Spt_protocol.stats.Engine.rounds <= n)
  done

let test_disconnected_nodes_stay_infinite () =
  let g =
    Wnet_graph.Graph.create ~costs:[| 1.0; 1.0; 1.0; 1.0 |]
      ~edges:[ (0, 1); (2, 3) ]
  in
  let res = Spt_protocol.run g ~root:0 in
  Test_util.check_float "island" infinity (Spt_protocol.distances res).(2);
  Alcotest.(check int) "no first hop" (-1) (Spt_protocol.first_hops res).(2)

let test_paths_follow_first_hops () =
  let r = Test_util.rng 82 in
  let g = Wnet_topology.Gnp.connected_graph r ~n:20 ~p:0.2 ~cost_lo:1.0 ~cost_hi:5.0 in
  let res = Spt_protocol.run g ~root:0 in
  for v = 1 to 19 do
    match Spt_protocol.path_of res v ~root:0 with
    | None -> Alcotest.fail "path must exist"
    | Some p ->
      Alcotest.(check bool) "valid path" true (Wnet_graph.Path.is_valid g p);
      Alcotest.(check int) "starts at v" v (Wnet_graph.Path.source p);
      Test_util.check_float "cost consistent" (Spt_protocol.distances res).(v)
        (Wnet_graph.Path.relay_cost g p)
  done

let test_hide_neighbour_changes_route () =
  let f = Wnet_core.Examples.fig2 in
  let behaviours v =
    if v = f.Wnet_core.Examples.source then
      Spt_protocol.Hide_neighbours [ snd f.Wnet_core.Examples.hidden_edge ]
    else Spt_protocol.Honest
  in
  let res = Spt_protocol.run ~behaviours f.Wnet_core.Examples.graph
      ~root:f.Wnet_core.Examples.access_point
  in
  Test_util.check_float "liar routes the long way" 4.0
    (Spt_protocol.distances res).(f.Wnet_core.Examples.source);
  Alcotest.(check int) "first hop is the pricey arm" 5
    (Spt_protocol.first_hops res).(f.Wnet_core.Examples.source)

let test_verified_restores_fig2 () =
  let f = Wnet_core.Examples.fig2 in
  let behaviours v =
    if v = f.Wnet_core.Examples.source then
      Spt_protocol.Hide_neighbours [ snd f.Wnet_core.Examples.hidden_edge ]
    else Spt_protocol.Honest
  in
  let res =
    Spt_protocol.run ~behaviours ~verified:true f.Wnet_core.Examples.graph
      ~root:f.Wnet_core.Examples.access_point
  in
  Test_util.check_float "corrected to the true distance" 3.0
    (Spt_protocol.distances res).(f.Wnet_core.Examples.source);
  Alcotest.(check bool) "liar was corrected" true
    (res.Spt_protocol.states.(f.Wnet_core.Examples.source).Spt_protocol.corrections > 0)

let test_verified_defeats_inflation () =
  let r = Test_util.rng 83 in
  for _ = 1 to 20 do
    let n = 6 + Wnet_prng.Rng.int r 25 in
    let g = Wnet_topology.Gnp.connected_graph r ~n ~p:0.2 ~cost_lo:0.5 ~cost_hi:5.0 in
    let liar = 1 + Wnet_prng.Rng.int r (n - 1) in
    let behaviours v =
      if v = liar then Spt_protocol.Inflate_distance 500.0 else Spt_protocol.Honest
    in
    let res = Spt_protocol.run ~behaviours ~verified:true g ~root:0 in
    Alcotest.(check bool) "true SPT restored" true
      (Spt_protocol.matches_centralized res g ~root:0);
    Alcotest.(check bool) "converged" true res.Spt_protocol.stats.Engine.converged
  done

let test_unverified_inflation_distorts () =
  (* On a line, inflating an interior node's distance misleads everyone
     behind it. *)
  let g = Wnet_topology.Fixtures.line ~costs:(Array.make 4 1.0) in
  let behaviours v =
    if v = 1 then Spt_protocol.Inflate_distance 100.0 else Spt_protocol.Honest
  in
  let res = Spt_protocol.run ~behaviours g ~root:0 in
  Alcotest.(check bool) "node 2 misled" true ((Spt_protocol.distances res).(2) > 50.0)


let test_path_of_broken_chain () =
  (* unreachable node: no first hop, no path *)
  let g =
    Wnet_graph.Graph.create ~costs:[| 1.0; 1.0; 1.0 |] ~edges:[ (0, 1) ]
  in
  let res = Spt_protocol.run g ~root:0 in
  Alcotest.(check (option (array int))) "no chain" None
    (Spt_protocol.path_of res 2 ~root:0);
  match Spt_protocol.path_of res 1 ~root:0 with
  | Some p -> Alcotest.(check (array int)) "direct" [| 1; 0 |] p
  | None -> Alcotest.fail "reachable"

let suite =
  [
    Alcotest.test_case "honest = centralized" `Quick test_honest_matches_centralized;
    Alcotest.test_case "rounds <= n" `Quick test_rounds_bounded;
    Alcotest.test_case "disconnected stay infinite" `Quick test_disconnected_nodes_stay_infinite;
    Alcotest.test_case "paths follow first hops" `Quick test_paths_follow_first_hops;
    Alcotest.test_case "fig2: hiding changes route" `Quick test_hide_neighbour_changes_route;
    Alcotest.test_case "fig2: verified mode corrects" `Quick test_verified_restores_fig2;
    Alcotest.test_case "verified defeats inflation" `Quick test_verified_defeats_inflation;
    Alcotest.test_case "unverified inflation distorts" `Quick test_unverified_inflation_distorts;
    Alcotest.test_case "path_of on broken chains" `Quick test_path_of_broken_chain;
  ]
