open Wnet_core

(* Session pricing (Sec. II-C) and the coalition falsifier (Def. 1). *)

let test_session_scaling () =
  let r = Unicast.run Examples.diamond ~src:3 ~dst:0 |> Option.get in
  Test_util.check_float "per-packet" 3.0 (Unicast.session_payment_to r ~packets:1 1);
  Test_util.check_float "7 packets" 21.0 (Unicast.session_payment_to r ~packets:7 1);
  Test_util.check_float "charge" 21.0 (Unicast.session_charge r ~packets:7);
  Test_util.check_float "zero packets" 0.0 (Unicast.session_charge r ~packets:0)

let test_session_validation () =
  let r = Unicast.run Examples.diamond ~src:3 ~dst:0 |> Option.get in
  Alcotest.check_raises "negative" (Invalid_argument "Unicast: negative packet count")
    (fun () -> ignore (Unicast.session_charge r ~packets:(-1)))

let test_all_but_one_coalition_wins () =
  (* The paper's remark: if all nodes but the source collude and declare
     arbitrarily high costs, the source overpays arbitrarily — no true
     group strategyproof mechanism exists.  The coalition of all relays
     on a theta graph strictly gains by coordinated inflation. *)
  let g =
    Wnet_topology.Fixtures.theta ~spine_costs:[| 1.0; 1.0 |]
      ~arm_costs:[| [| 2.0 |]; [| 3.0 |] |]
  in
  let m = Unicast.mechanism g ~src:0 ~dst:1 in
  let truth = Wnet_graph.Graph.costs g in
  let v =
    Wnet_mech.Properties.coalition_violations (Test_util.rng 130) m ~truth
      ~coalitions:[ [ 2; 3 ] ] ~trials_per_coalition:60 ~lie_bound:50.0
  in
  Alcotest.(check bool) "grand coalition gains" true (v <> [])

let test_singleton_coalition_never_wins () =
  (* k = 1 coalitions are exactly unilateral deviations: VCG is immune. *)
  let r = Test_util.rng 131 in
  for _ = 1 to 5 do
    let g = Test_util.random_ring_graph ~max_n:12 r in
    let n = Wnet_graph.Graph.n g in
    let src = Wnet_prng.Rng.int r n in
    let dst = (src + 1 + Wnet_prng.Rng.int r (n - 1)) mod n in
    let m = Unicast.mechanism g ~src ~dst in
    let coalitions = List.init n (fun i -> [ i ]) in
    let v =
      Wnet_mech.Properties.coalition_violations (Wnet_prng.Rng.split r) m
        ~truth:(Wnet_graph.Graph.costs g) ~coalitions ~trials_per_coalition:10
        ~lie_bound:40.0
    in
    Alcotest.(check int) "no singleton gains" 0 (List.length v)
  done

let test_scheme_ablation_runs () =
  let rows =
    Wnet_experiments.Scheme_ablation.sweep ~ns:[ 25 ] ~instances:2 ~seed:9 ()
  in
  match rows with
  | [ r ] ->
    Alcotest.(check bool) "sources measured" true (r.Wnet_experiments.Scheme_ablation.sources > 0);
    Alcotest.(check bool) "premium >= 1" true
      (r.Wnet_experiments.Scheme_ablation.mean_ratio >= 1.0);
    Alcotest.(check bool) "max >= mean" true
      (r.Wnet_experiments.Scheme_ablation.max_ratio
       >= r.Wnet_experiments.Scheme_ablation.mean_ratio -. 1e-9)
  | _ -> Alcotest.fail "one row"

let test_baseline_nuglet_monotone_delivery () =
  let rows =
    Wnet_experiments.Baseline_exp.nuglet_sweep ~n:80 ~instances:2 ~seed:10 ()
  in
  let rates = List.map (fun r -> r.Wnet_experiments.Baseline_exp.delivery_rate) rows in
  let rec non_decreasing = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-9 && non_decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "delivery grows with price" true (non_decreasing rates);
  (match List.rev rows with
  | last :: _ ->
    Alcotest.(check bool) "social cost ratio >= 1 at high price" true
      (last.Wnet_experiments.Baseline_exp.social_cost_ratio >= 1.0 -. 1e-9)
  | [] -> Alcotest.fail "rows expected")

let test_baseline_watchdog_wrongfulness_decreases () =
  let rows =
    Wnet_experiments.Baseline_exp.watchdog_sweep ~n:50 ~batteries:[ 5; 320 ]
      ~instances:2 ~seed:11 ()
  in
  match rows with
  | [ tight; ample ] ->
    Alcotest.(check bool) "tight batteries mislabel more" true
      (tight.Wnet_experiments.Baseline_exp.wrongful_fraction
       >= ample.Wnet_experiments.Baseline_exp.wrongful_fraction)
  | _ -> Alcotest.fail "two rows"

let suite =
  [
    Alcotest.test_case "session payments scale" `Quick test_session_scaling;
    Alcotest.test_case "session validation" `Quick test_session_validation;
    Alcotest.test_case "relay coalition beats VCG" `Quick test_all_but_one_coalition_wins;
    Alcotest.test_case "singleton coalitions lose" `Quick test_singleton_coalition_never_wins;
    Alcotest.test_case "scheme ablation runs" `Quick test_scheme_ablation_runs;
    Alcotest.test_case "nuglet delivery monotone in price" `Quick test_baseline_nuglet_monotone_delivery;
    Alcotest.test_case "watchdog wrongfulness vs battery" `Quick test_baseline_watchdog_wrongfulness_decreases;
  ]
