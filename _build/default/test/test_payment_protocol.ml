open Wnet_dsim

let biconnected r n =
  Wnet_topology.Gnp.biconnected_graph r ~n ~p:0.25 ~cost_lo:0.5 ~cost_hi:5.0
    ~max_tries:100

let test_agrees_with_centralized () =
  let r = Test_util.rng 90 in
  let exercised = ref 0 in
  for _ = 1 to 25 do
    match biconnected r (5 + Wnet_prng.Rng.int r 25) with
    | None -> ()
    | Some g ->
      incr exercised;
      let o = Payment_protocol.run g ~root:0 in
      Alcotest.(check bool) "converged" true o.Payment_protocol.stats.Engine.converged;
      Alcotest.(check bool) "= centralized VCG" true
        (Payment_protocol.agrees_with_centralized o g)
  done;
  Alcotest.(check bool) "exercised" true (!exercised > 10)

let test_rounds_at_most_n () =
  let r = Test_util.rng 91 in
  for _ = 1 to 10 do
    let n = 10 + Wnet_prng.Rng.int r 30 in
    match biconnected r n with
    | None -> ()
    | Some g ->
      let o = Payment_protocol.run g ~root:0 in
      Alcotest.(check bool) "<= n rounds" true
        (o.Payment_protocol.stats.Engine.rounds <= n)
  done

let test_non_biconnected_infinite_entries () =
  (* On a line every relay is a cut node: distributed entries must stay
     infinite, like the centralized ones. *)
  let g = Wnet_topology.Fixtures.line ~costs:(Array.make 4 1.0) in
  let o = Payment_protocol.run g ~root:0 in
  Alcotest.(check bool) "converged" true o.Payment_protocol.stats.Engine.converged;
  Alcotest.(check bool) "= centralized (infinite payments)" true
    (Payment_protocol.agrees_with_centralized o g)

let test_root_and_adjacent_empty () =
  let r = Test_util.rng 92 in
  match biconnected r 12 with
  | None -> Alcotest.fail "generation failed"
  | Some g ->
    let o = Payment_protocol.run g ~root:0 in
    Alcotest.(check (list (pair int (float 0.0)))) "root empty" []
      o.Payment_protocol.payments.(0);
    Array.iter
      (fun v ->
        Alcotest.(check (list (pair int (float 0.0)))) "AP neighbour empty" []
          o.Payment_protocol.payments.(v))
      (Wnet_graph.Graph.neighbors g 0)

let test_honest_run_no_accusations () =
  let r = Test_util.rng 93 in
  match biconnected r 15 with
  | None -> Alcotest.fail "generation failed"
  | Some g ->
    let o = Payment_protocol.run ~verify:true g ~root:0 in
    Alcotest.(check (list (pair int int))) "silent" [] o.Payment_protocol.accusations;
    Alcotest.(check bool) "still correct" true
      (Payment_protocol.agrees_with_centralized o g)

let test_deflating_cheater_accused () =
  let r = Test_util.rng 94 in
  let caught = ref 0 and eligible = ref 0 in
  for _ = 1 to 15 do
    match biconnected r (8 + Wnet_prng.Rng.int r 15) with
    | None -> ()
    | Some g ->
      let honest = Payment_protocol.run g ~root:0 in
      let cheat = 1 + Wnet_prng.Rng.int r (Wnet_graph.Graph.n g - 1) in
      if honest.Payment_protocol.payments.(cheat) <> [] then begin
        incr eligible;
        let adversaries v =
          if v = cheat then Payment_protocol.Deflate_entries 0.4
          else Payment_protocol.Honest
        in
        let o = Payment_protocol.run ~adversaries ~verify:true g ~root:0 in
        if List.exists (fun (_, a) -> a = cheat) o.Payment_protocol.accusations then
          incr caught;
        (* no honest node is ever accused *)
        List.iter
          (fun (_, a) -> Alcotest.(check int) "only the cheater" cheat a)
          o.Payment_protocol.accusations
      end
  done;
  Alcotest.(check bool) "eligible cases" true (!eligible > 5);
  Alcotest.(check int) "always caught" !eligible !caught

let test_centralized_reference_shape () =
  let g = Wnet_core.Examples.fig4.Wnet_core.Examples.graph in
  let reference = Payment_protocol.centralized_reference g ~root:0 in
  Alcotest.(check (list (pair int (float 1e-9)))) "v8 pays its two relays"
    [ (5, 10.0); (6, 10.0) ] reference.(8)

let test_full_pipeline_matches_centralized () =
  let r = Test_util.rng 95 in
  let exercised = ref 0 in
  for _ = 1 to 12 do
    match biconnected r (5 + Wnet_prng.Rng.int r 20) with
    | None -> ()
    | Some g ->
      incr exercised;
      let o = Payment_protocol.run_full g ~root:0 in
      Alcotest.(check bool) "pipeline converged" true o.Payment_protocol.stats.Engine.converged;
      Alcotest.(check bool) "fully distributed = centralized VCG" true
        (Payment_protocol.agrees_with_centralized o g)
  done;
  Alcotest.(check bool) "exercised" true (!exercised > 5)

let test_full_pipeline_stats_aggregate () =
  let r = Test_util.rng 96 in
  match biconnected r 12 with
  | None -> Alcotest.fail "generation"
  | Some g ->
    let o = Payment_protocol.run_full g ~root:0 in
    let stage2 = Payment_protocol.run g ~root:0 in
    Alcotest.(check bool) "aggregated rounds exceed stage 2 alone" true
      (o.Payment_protocol.stats.Engine.rounds
       > stage2.Payment_protocol.stats.Engine.rounds)


let test_scale_n150 () =
  (* the convergence and agreement claims at a size closer to the paper's
     simulations *)
  let r = Test_util.rng 97 in
  match
    Wnet_topology.Gnp.biconnected_graph r ~n:150 ~p:0.04 ~cost_lo:1.0
      ~cost_hi:10.0 ~max_tries:100
  with
  | None -> Alcotest.fail "generation failed"
  | Some g ->
    let o = Payment_protocol.run g ~root:0 in
    Alcotest.(check bool) "converged" true o.Payment_protocol.stats.Engine.converged;
    Alcotest.(check bool) "rounds <= n" true
      (o.Payment_protocol.stats.Engine.rounds <= 150);
    Alcotest.(check bool) "= centralized at n=150" true
      (Payment_protocol.agrees_with_centralized o g)

let suite =
  [
    Alcotest.test_case "distributed = centralized" `Quick test_agrees_with_centralized;
    Alcotest.test_case "rounds <= n (paper claim)" `Quick test_rounds_at_most_n;
    Alcotest.test_case "cut relays stay infinite" `Quick test_non_biconnected_infinite_entries;
    Alcotest.test_case "root/adjacent tables empty" `Quick test_root_and_adjacent_empty;
    Alcotest.test_case "honest verify run silent" `Quick test_honest_run_no_accusations;
    Alcotest.test_case "deflating cheater accused" `Quick test_deflating_cheater_accused;
    Alcotest.test_case "centralized reference (fig4)" `Quick test_centralized_reference_shape;
    Alcotest.test_case "fully distributed pipeline" `Quick test_full_pipeline_matches_centralized;
    Alcotest.test_case "pipeline stats aggregate" `Quick test_full_pipeline_stats_aggregate;
    Alcotest.test_case "scale: n = 150" `Quick test_scale_n150;
  ]
