open Wnet_core
open Wnet_graph

let diamond = Examples.diamond

let test_diamond_payment () =
  (* LCP(3 -> 0) = 3-1-0; payment to relay 1 is c_1 + (c_2 - c_1) = 3. *)
  match Unicast.run diamond ~src:3 ~dst:0 with
  | None -> Alcotest.fail "connected"
  | Some r ->
    Alcotest.(check (array int)) "path" [| 3; 1; 0 |] r.Unicast.path;
    Test_util.check_float "lcp cost" 1.0 r.Unicast.lcp_cost;
    Test_util.check_float "payment to 1" 3.0 (Unicast.payment_to r 1);
    Test_util.check_float "payment to 2" 0.0 (Unicast.payment_to r 2);
    Test_util.check_float "total" 3.0 (Unicast.total_payment r);
    Test_util.check_float "overpayment" 2.0 (Unicast.overpayment r)

let test_relays_and_utility () =
  match Unicast.run diamond ~src:3 ~dst:0 with
  | None -> Alcotest.fail "connected"
  | Some r ->
    Alcotest.(check (list int)) "relays" [ 1 ] (Unicast.relays r);
    let truth = Graph.costs diamond in
    Test_util.check_float "relay utility = pivot gap" 2.0
      (Unicast.utility r ~truth 1);
    Test_util.check_float "bystander utility" 0.0 (Unicast.utility r ~truth 2)

let test_payment_at_least_cost () =
  (* IR: every truthful relay is paid at least its declared cost. *)
  let r = Test_util.rng 40 in
  for _ = 1 to 40 do
    let g = Test_util.random_ring_graph r in
    let n = Graph.n g in
    let src = Wnet_prng.Rng.int r n in
    let dst = (src + 1 + Wnet_prng.Rng.int r (n - 1)) mod n in
    match Unicast.run g ~src ~dst with
    | None -> ()
    | Some res ->
      List.iter
        (fun k ->
          Alcotest.(check bool) "p_k >= c_k" true
            (Unicast.payment_to res k >= Graph.cost g k -. 1e-9))
        (Unicast.relays res)
  done

let test_fast_naive_same_payments () =
  let r = Test_util.rng 41 in
  for _ = 1 to 30 do
    let g = Test_util.random_ring_graph r in
    let n = Graph.n g in
    let src = Wnet_prng.Rng.int r n in
    let dst = (src + 1 + Wnet_prng.Rng.int r (n - 1)) mod n in
    match
      ( Unicast.run ~algo:Unicast.Fast g ~src ~dst,
        Unicast.run ~algo:Unicast.Naive g ~src ~dst )
    with
    | Some a, Some b ->
      Alcotest.(check bool) "same payments" true
        (Array.for_all2 (fun x y -> Test_util.approx x y) a.Unicast.payments
           b.Unicast.payments)
    | None, None -> ()
    | _ -> Alcotest.fail "reachability mismatch"
  done

let test_matches_generic_clarke () =
  (* The specialized payment computation must coincide with the generic
     Clarke rule from the mechanism framework. *)
  let r = Test_util.rng 42 in
  for _ = 1 to 20 do
    let g = Test_util.random_ring_graph ~max_n:15 r in
    let n = Graph.n g in
    let src = Wnet_prng.Rng.int r n in
    let dst = (src + 1 + Wnet_prng.Rng.int r (n - 1)) mod n in
    let problem = Unicast.vcg_problem g ~src ~dst in
    match
      (Unicast.run g ~src ~dst, Wnet_mech.Vcg.clarke_payments problem (Graph.costs g))
    with
    | Some a, Some (_, clarke) ->
      Array.iteri
        (fun v p -> Test_util.check_float "clarke agreement" p a.Unicast.payments.(v))
        clarke
    | None, None -> ()
    | _ -> Alcotest.fail "feasibility mismatch"
  done

let test_strategyproofness_random () =
  let r = Test_util.rng 43 in
  for _ = 1 to 10 do
    let g = Test_util.random_ring_graph ~max_n:15 r in
    let n = Graph.n g in
    let src = Wnet_prng.Rng.int r n in
    let dst = (src + 1 + Wnet_prng.Rng.int r (n - 1)) mod n in
    let m = Unicast.mechanism g ~src ~dst in
    let truth = Graph.costs g in
    let v =
      Wnet_mech.Properties.random_ic_violations (Wnet_prng.Rng.split r) m ~truth
        ~trials:60 ~lie_bound:30.0
    in
    Alcotest.(check int) "no unilateral gain" 0 (List.length v)
  done

let test_individual_rationality_random () =
  let r = Test_util.rng 44 in
  for _ = 1 to 10 do
    let g = Test_util.random_ring_graph ~max_n:15 r in
    let n = Graph.n g in
    let src = Wnet_prng.Rng.int r n in
    let dst = (src + 1 + Wnet_prng.Rng.int r (n - 1)) mod n in
    let m = Unicast.mechanism g ~src ~dst in
    Alcotest.(check (list (pair int (float 0.0)))) "IR" []
      (Wnet_mech.Properties.ir_violations m ~truth:(Graph.costs g))
  done

let test_monopoly_payment_infinite () =
  let g = Wnet_topology.Fixtures.line ~costs:[| 1.0; 2.0; 3.0 |] in
  match Unicast.run g ~src:0 ~dst:2 with
  | None -> Alcotest.fail "connected"
  | Some r -> Test_util.check_float "cut node" infinity (Unicast.payment_to r 1)

let test_all_to_root_matches_individual () =
  let r = Test_util.rng 45 in
  for _ = 1 to 10 do
    let g = Test_util.random_ring_graph ~max_n:20 r in
    let batch = Unicast.all_to_root g ~root:0 in
    Alcotest.(check bool) "root entry none" true (batch.(0) = None);
    Array.iteri
      (fun src entry ->
        if src <> 0 then
          match (entry, Unicast.run g ~src ~dst:0) with
          | None, None -> ()
          | Some a, Some b ->
            Test_util.check_float "same lcp cost" b.Unicast.lcp_cost a.Unicast.lcp_cost;
            Test_util.check_float "same total payment" (Unicast.total_payment b)
              (Unicast.total_payment a)
          | _ -> Alcotest.fail "batch/individual mismatch")
      batch
  done

let test_lying_down_can_only_lose () =
  (* A relay under-declaring keeps its payment pivot but may win a path
     it should not carry: utility never rises. *)
  let g = Wnet_topology.Fixtures.theta ~spine_costs:[| 1.0; 1.0 |]
      ~arm_costs:[| [| 4.0 |]; [| 5.0 |]; [| 9.0 |] |]
  in
  (* nodes: 0, 1 terminals; 2 (cost 4), 3 (cost 5), 4 (cost 9) *)
  let truth = Graph.costs g in
  let m = Unicast.mechanism g ~src:0 ~dst:1 in
  let honest = Wnet_mech.Mechanism.utility m ~truth ~declared:truth 3 |> Option.get in
  Test_util.check_float "off-path relay earns 0" 0.0 honest;
  let lie = Wnet_mech.Profile.deviate truth 3 1.0 in
  let dev = Wnet_mech.Mechanism.utility m ~truth ~declared:lie 3 |> Option.get in
  Test_util.check_float "capturing the route at a loss" (-1.0) dev


let test_arbitrary_pair_unicast () =
  (* The mechanism is defined for any pair, not just to the AP
     (Sec. II-B: "not very different to generalize"). *)
  let g = Examples.fig4.Examples.graph in
  match Unicast.run g ~src:8 ~dst:1 with
  | None -> Alcotest.fail "connected"
  | Some r ->
    Alcotest.(check int) "source" 8 r.Unicast.src;
    Alcotest.(check int) "destination" 1 r.Unicast.dst;
    Alcotest.(check bool) "payments cover relays" true
      (List.for_all
         (fun k -> Unicast.payment_to r k >= Graph.cost g k -. 1e-9)
         (Unicast.relays r))

let test_overpayment_equals_premium_sum () =
  let r = Test_util.rng 46 in
  for _ = 1 to 10 do
    let g = Test_util.random_ring_graph ~max_n:15 r in
    let n = Graph.n g in
    let src = Wnet_prng.Rng.int r n in
    let dst = (src + 1 + Wnet_prng.Rng.int r (n - 1)) mod n in
    match Unicast.run g ~src ~dst with
    | None -> ()
    | Some res ->
      let premium_sum =
        List.fold_left
          (fun acc k -> acc +. (Unicast.payment_to res k -. Graph.cost g k))
          0.0 (Unicast.relays res)
      in
      if Float.is_finite premium_sum then
        Test_util.check_float "overpayment = sum of premiums" premium_sum
          (Unicast.overpayment res)
  done

let test_corridor_fast_naive () =
  (* Long thin deployment: many relays per path, the regime Algorithm 1
     is built for. *)
  let r = Test_util.rng 47 in
  let t =
    Wnet_topology.Udg.generate r
      ~region:(Wnet_geom.Region.make ~width:3000.0 ~height:300.0)
      ~n:60 ~range:320.0
  in
  let costs = Wnet_topology.Udg.uniform_node_costs r ~n:60 ~lo:1.0 ~hi:5.0 in
  let g = Wnet_topology.Udg.node_graph t ~costs in
  for src = 1 to 10 do
    match
      ( Unicast.run ~algo:Unicast.Fast g ~src ~dst:0,
        Unicast.run ~algo:Unicast.Naive g ~src ~dst:0 )
    with
    | Some a, Some b ->
      Alcotest.(check bool) "corridor payments agree" true
        (Array.for_all2 Test_util.approx a.Unicast.payments b.Unicast.payments)
    | None, None -> ()
    | _ -> Alcotest.fail "reachability mismatch"
  done

let suite =
  [
    Alcotest.test_case "diamond payments by hand" `Quick test_diamond_payment;
    Alcotest.test_case "relays and utilities" `Quick test_relays_and_utility;
    Alcotest.test_case "payment >= declared cost" `Quick test_payment_at_least_cost;
    Alcotest.test_case "fast and naive payments agree" `Quick test_fast_naive_same_payments;
    Alcotest.test_case "matches generic Clarke rule" `Quick test_matches_generic_clarke;
    Alcotest.test_case "strategyproof (random lies)" `Quick test_strategyproofness_random;
    Alcotest.test_case "individually rational" `Quick test_individual_rationality_random;
    Alcotest.test_case "monopoly relay priced infinite" `Quick test_monopoly_payment_infinite;
    Alcotest.test_case "all_to_root batch" `Quick test_all_to_root_matches_individual;
    Alcotest.test_case "under-declaring cannot profit" `Quick test_lying_down_can_only_lose;
    Alcotest.test_case "arbitrary-pair unicast" `Quick test_arbitrary_pair_unicast;
    Alcotest.test_case "overpayment = premium sum" `Quick test_overpayment_equals_premium_sum;
    Alcotest.test_case "corridor fast = naive" `Quick test_corridor_fast_naive;
  ]
