open Wnet_graph

let test_connected () =
  let g = Wnet_topology.Fixtures.ring ~costs:(Array.make 5 1.0) in
  Alcotest.(check bool) "ring connected" true (Connectivity.is_connected g);
  let g2 = Graph.create ~costs:(Array.make 4 1.0) ~edges:[ (0, 1); (2, 3) ] in
  Alcotest.(check bool) "two components" false (Connectivity.is_connected g2)

let test_component_of () =
  let g = Graph.create ~costs:(Array.make 5 1.0) ~edges:[ (0, 1); (1, 2) ] in
  let c = Connectivity.component_of g 0 in
  Alcotest.(check (array bool)) "component mask"
    [| true; true; true; false; false |] c

let test_connected_between () =
  let g = Graph.create ~costs:(Array.make 4 1.0) ~edges:[ (0, 1); (2, 3) ] in
  Alcotest.(check bool) "same side" true (Connectivity.connected_between g 0 1);
  Alcotest.(check bool) "across" false (Connectivity.connected_between g 1 2);
  Alcotest.(check bool) "self" true (Connectivity.connected_between g 2 2)

let test_articulation_line () =
  let g = Wnet_topology.Fixtures.line ~costs:(Array.make 5 1.0) in
  Alcotest.(check (list int)) "all interior nodes" [ 1; 2; 3 ]
    (Connectivity.articulation_points g)

let test_articulation_ring () =
  let g = Wnet_topology.Fixtures.ring ~costs:(Array.make 6 1.0) in
  Alcotest.(check (list int)) "none" [] (Connectivity.articulation_points g)

let test_articulation_bowtie () =
  (* Two triangles sharing node 2: the shared node is the unique cut. *)
  let g =
    Graph.create ~costs:(Array.make 5 1.0)
      ~edges:[ (0, 1); (1, 2); (2, 0); (2, 3); (3, 4); (4, 2) ]
  in
  Alcotest.(check (list int)) "waist" [ 2 ] (Connectivity.articulation_points g)

let test_biconnected () =
  Alcotest.(check bool) "ring" true
    (Connectivity.is_biconnected (Wnet_topology.Fixtures.ring ~costs:(Array.make 4 1.0)));
  Alcotest.(check bool) "line" false
    (Connectivity.is_biconnected (Wnet_topology.Fixtures.line ~costs:(Array.make 4 1.0)));
  Alcotest.(check bool) "too small" false
    (Connectivity.is_biconnected
       (Graph.create ~costs:(Array.make 2 1.0) ~edges:[ (0, 1) ]))

let test_articulation_matches_bruteforce () =
  let r = Test_util.rng 31 in
  for _ = 1 to 40 do
    let g = Test_util.random_sparse_graph ~max_n:20 r in
    let n = Graph.n g in
    let components g =
      let seen = Array.make n false in
      let count = ref 0 in
      for v = 0 to n - 1 do
        if not seen.(v) then begin
          incr count;
          let mask = Connectivity.component_of g v in
          Array.iteri (fun i b -> if b then seen.(i) <- true) mask
        end
      done;
      !count
    in
    let base = components g in
    let brute =
      List.filter
        (fun v ->
          (* removal increases component count among the remaining nodes;
             isolate v and discount it as its own component *)
          let without = Graph.remove_node g v in
          let c = components without - 1 in
          c > base - if Graph.degree g v = 0 then 1 else 0)
        (List.init n Fun.id)
    in
    Alcotest.(check (list int)) "matches brute force" brute
      (Connectivity.articulation_points g)
  done

let test_connected_without () =
  let g = Wnet_topology.Fixtures.ring ~costs:(Array.make 6 1.0) in
  Alcotest.(check bool) "one removal survives" true
    (Connectivity.connected_without g ~removed:[ 3 ] 0 1);
  Alcotest.(check bool) "two removals cut" false
    (Connectivity.connected_without g ~removed:[ 1; 5 ] 0 3);
  Alcotest.(check bool) "removing an endpoint" false
    (Connectivity.connected_without g ~removed:[ 0 ] 0 3)

let test_neighbourhood_resilient () =
  let k6 = Wnet_topology.Fixtures.complete ~costs:(Array.make 6 1.0) in
  Alcotest.(check bool) "complete graph resilient" true
    (Connectivity.neighbourhood_resilient k6 ~src:0 ~dst:1);
  (* A ring survives: each closed neighbourhood is an arc, and the other
     side of the ring still connects antipodal endpoints. *)
  let ring = Wnet_topology.Fixtures.ring ~costs:(Array.make 6 1.0) in
  Alcotest.(check bool) "ring resilient" true
    (Connectivity.neighbourhood_resilient ring ~src:0 ~dst:3);
  (* A line dies: any interior closed neighbourhood separates the ends. *)
  let line = Wnet_topology.Fixtures.line ~costs:(Array.make 4 1.0) in
  Alcotest.(check bool) "line not resilient" false
    (Connectivity.neighbourhood_resilient line ~src:0 ~dst:3)


let test_k_hop_neighbourhood () =
  let g = Wnet_topology.Fixtures.line ~costs:(Array.make 6 1.0) in
  Alcotest.(check (list int)) "0 hops = self" [ 2 ]
    (Connectivity.k_hop_neighbourhood g 2 0);
  Alcotest.(check (list int)) "1 hop" [ 1; 2; 3 ]
    (Connectivity.k_hop_neighbourhood g 2 1);
  Alcotest.(check (list int)) "2 hops" [ 0; 1; 2; 3; 4 ]
    (Connectivity.k_hop_neighbourhood g 2 2);
  Alcotest.(check (list int)) "radius saturates" [ 0; 1; 2; 3; 4; 5 ]
    (Connectivity.k_hop_neighbourhood g 2 100)

let test_k_hop_scheme () =
  (* 2-hop collusion sets through the generalized payment scheme *)
  let g =
    Wnet_topology.Fixtures.theta ~spine_costs:[| 1.0; 1.0 |]
      ~arm_costs:[| [| 2.0; 2.0 |]; [| 7.0 |]; [| 20.0 |] |]
  in
  let q k = List.filter (fun v -> v <> k) (Connectivity.k_hop_neighbourhood g k 2) in
  match
    Wnet_core.Payment_scheme.run (Wnet_core.Payment_scheme.Collusion_sets q) g
      ~src:0 ~dst:1
  with
  | None -> Alcotest.fail "connected"
  | Some r ->
    (* LCP is arm 1 (cost 4).  Pricing relay 2 removes its whole 2-hop
       ball, which kills arm 1 AND reaches across the terminals into the
       other arms' first relays: both other arms' relays (4 and 5) are
       within 2 hops of node 2 via terminal 0.  Removal set = {2,3,4,5}
       minus endpoints -> pivot infinite. *)
    Test_util.check_float "2-hop ball kills every arm" infinity
      (Wnet_core.Payment_scheme.payment_to r 2)

let suite =
  [
    Alcotest.test_case "connectivity" `Quick test_connected;
    Alcotest.test_case "component_of" `Quick test_component_of;
    Alcotest.test_case "connected_between" `Quick test_connected_between;
    Alcotest.test_case "articulation: line" `Quick test_articulation_line;
    Alcotest.test_case "articulation: ring" `Quick test_articulation_ring;
    Alcotest.test_case "articulation: bowtie" `Quick test_articulation_bowtie;
    Alcotest.test_case "biconnectivity" `Quick test_biconnected;
    Alcotest.test_case "articulation vs brute force" `Quick test_articulation_matches_bruteforce;
    Alcotest.test_case "connected_without" `Quick test_connected_without;
    Alcotest.test_case "neighbourhood resilience" `Quick test_neighbourhood_resilient;
    Alcotest.test_case "k-hop neighbourhood" `Quick test_k_hop_neighbourhood;
    Alcotest.test_case "k-hop collusion sets" `Quick test_k_hop_scheme;
  ]
