open Wnet_geom

let test_distance () =
  let p = Point.make 0.0 0.0 and q = Point.make 3.0 4.0 in
  Test_util.check_float "3-4-5 triangle" 5.0 (Point.distance p q);
  Test_util.check_float "squared" 25.0 (Point.distance_sq p q)

let test_distance_symmetry () =
  let r = Test_util.rng 1 in
  for _ = 1 to 100 do
    let p = Point.make (Wnet_prng.Rng.float r 10.0) (Wnet_prng.Rng.float r 10.0) in
    let q = Point.make (Wnet_prng.Rng.float r 10.0) (Wnet_prng.Rng.float r 10.0) in
    Test_util.check_float "symmetric" (Point.distance p q) (Point.distance q p)
  done

let test_triangle_inequality () =
  let r = Test_util.rng 2 in
  for _ = 1 to 200 do
    let pt () = Point.make (Wnet_prng.Rng.float r 10.0) (Wnet_prng.Rng.float r 10.0) in
    let a = pt () and b = pt () and c = pt () in
    Alcotest.(check bool) "triangle" true
      (Point.distance a c <= Point.distance a b +. Point.distance b c +. 1e-9)
  done

let test_within () =
  let p = Point.make 0.0 0.0 in
  Alcotest.(check bool) "inside" true (Point.within 5.0 p (Point.make 3.0 3.9));
  Alcotest.(check bool) "boundary" true (Point.within 5.0 p (Point.make 3.0 4.0));
  Alcotest.(check bool) "outside" false (Point.within 5.0 p (Point.make 3.1 4.0))

let test_midpoint_translate () =
  let p = Point.make 1.0 2.0 and q = Point.make 3.0 6.0 in
  Alcotest.(check bool) "midpoint" true
    (Point.equal (Point.midpoint p q) (Point.make 2.0 4.0));
  Alcotest.(check bool) "translate" true
    (Point.equal (Point.translate p ~dx:1.0 ~dy:(-1.0)) (Point.make 2.0 1.0))

let test_region_sampling () =
  let r = Test_util.rng 3 in
  let reg = Region.make ~width:100.0 ~height:50.0 in
  let pts = Region.sample_points r reg 500 in
  Alcotest.(check int) "count" 500 (Array.length pts);
  Array.iter
    (fun p -> Alcotest.(check bool) "contained" true (Region.contains reg p))
    pts

let test_region_validation () =
  Alcotest.check_raises "negative width"
    (Invalid_argument "Region.make: negative dimension") (fun () ->
      ignore (Region.make ~width:(-1.0) ~height:1.0))

let test_paper_region () =
  Test_util.check_float "2000m square" 4_000_000.0 (Region.area Region.paper_region);
  Test_util.check_float "diagonal" (2000.0 *. sqrt 2.0)
    (Region.diagonal Region.paper_region)

let test_power_cost () =
  let m = Power.make ~alpha:300.0 ~beta:10.0 ~kappa:2.0 in
  Test_util.check_float "alpha + beta d^2" (300.0 +. (10.0 *. 9.0)) (Power.cost m 3.0);
  Test_util.check_float "zero distance" 300.0 (Power.cost m 0.0)

let test_power_path_loss () =
  let m = Power.path_loss_only ~kappa:2.5 in
  Test_util.check_float "d^2.5" (2.0 ** 2.5) (Power.cost m 2.0)

let test_power_monotone () =
  let m = Power.make ~alpha:1.0 ~beta:2.0 ~kappa:3.0 in
  let prev = ref (-1.0) in
  for i = 0 to 50 do
    let c = Power.cost m (float_of_int i) in
    Alcotest.(check bool) "monotone in distance" true (c > !prev);
    prev := c
  done

let test_power_validation () =
  Alcotest.check_raises "negative beta"
    (Invalid_argument "Power.make: parameters must be non-negative, kappa positive")
    (fun () -> ignore (Power.make ~alpha:0.0 ~beta:(-1.0) ~kappa:2.0));
  let m = Power.path_loss_only ~kappa:2.0 in
  Alcotest.check_raises "negative distance"
    (Invalid_argument "Power.cost: negative distance") (fun () ->
      ignore (Power.cost m (-1.0)))

let test_link_cost_matches_distance () =
  let m = Power.path_loss_only ~kappa:2.0 in
  let p = Point.make 0.0 0.0 and q = Point.make 3.0 4.0 in
  Test_util.check_float "25 = 5^2" 25.0 (Power.link_cost m p q)

let suite =
  [
    Alcotest.test_case "euclidean distance" `Quick test_distance;
    Alcotest.test_case "distance symmetry" `Quick test_distance_symmetry;
    Alcotest.test_case "triangle inequality" `Quick test_triangle_inequality;
    Alcotest.test_case "within range (boundary incl.)" `Quick test_within;
    Alcotest.test_case "midpoint / translate" `Quick test_midpoint_translate;
    Alcotest.test_case "uniform region sampling" `Quick test_region_sampling;
    Alcotest.test_case "region validation" `Quick test_region_validation;
    Alcotest.test_case "paper region dimensions" `Quick test_paper_region;
    Alcotest.test_case "power cost formula" `Quick test_power_cost;
    Alcotest.test_case "pure path loss" `Quick test_power_path_loss;
    Alcotest.test_case "power cost monotone" `Quick test_power_monotone;
    Alcotest.test_case "power validation" `Quick test_power_validation;
    Alcotest.test_case "link cost from points" `Quick test_link_cost_matches_distance;
  ]
