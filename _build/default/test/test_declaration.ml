open Wnet_dsim

let test_flood_completes () =
  let r = Test_util.rng 180 in
  for _ = 1 to 15 do
    let n = 3 + Wnet_prng.Rng.int r 30 in
    let g = Wnet_topology.Gnp.connected_graph r ~n ~p:0.15 ~cost_lo:1.0 ~cost_hi:9.0 in
    let states, stats = Declaration.run g in
    Alcotest.(check bool) "converged" true stats.Engine.converged;
    match Declaration.consensus_profile states with
    | None -> Alcotest.fail "must reach consensus on a connected graph"
    | Some profile ->
      Array.iteri
        (fun v c -> Test_util.check_float "declared = graph cost" (Wnet_graph.Graph.cost g v) c)
        profile
  done

let test_flood_respects_declared_fn () =
  let g = Wnet_topology.Fixtures.ring ~costs:(Array.make 5 1.0) in
  let states, _ = Declaration.run ~declared:(fun v -> float_of_int v *. 2.0) g in
  match Declaration.consensus_profile states with
  | None -> Alcotest.fail "consensus"
  | Some p ->
    Test_util.check_float "lie distributed verbatim" 6.0 p.(3)

let test_flood_rounds_and_volume () =
  let n = 12 in
  let g = Wnet_topology.Fixtures.ring ~costs:(Array.make n 1.0) in
  let _, stats = Declaration.run g in
  (* diameter of a 12-ring is 6; one extra round absorbs the last relays *)
  Alcotest.(check bool) "rounds about the diameter" true
    (stats.Engine.rounds >= 6 && stats.Engine.rounds <= 8);
  (* every node re-broadcasts each origin at most once *)
  Alcotest.(check bool) "broadcast volume bounded by n^2" true
    (stats.Engine.broadcasts <= n * n)

let test_disconnected_no_consensus () =
  let g =
    Wnet_graph.Graph.create ~costs:[| 1.0; 2.0; 3.0; 4.0 |]
      ~edges:[ (0, 1); (2, 3) ]
  in
  let states, _ = Declaration.run g in
  Alcotest.(check bool) "incomplete views" true
    (not (Array.for_all (fun (s : Declaration.node_state) -> s.Declaration.complete) states));
  Alcotest.(check bool) "no consensus" true (Declaration.consensus_profile states = None)

let test_async_flood () =
  let g = Wnet_topology.Fixtures.complete ~costs:(Array.make 6 2.0) in
  let states, stats = Declaration.run g in
  Alcotest.(check bool) "complete" true
    (Array.for_all (fun (s : Declaration.node_state) -> s.Declaration.complete) states);
  Alcotest.(check bool) "clique finishes fast" true (stats.Engine.rounds <= 3)

let test_histogram () =
  let h = Wnet_stats.Summary.histogram [| 0.0; 0.5; 1.0; 1.0; 2.0 |] ~bins:2 in
  match h with
  | [ (lo1, _, c1); (_, hi2, c2) ] ->
    Test_util.check_float "lo" 0.0 lo1;
    Test_util.check_float "hi" 2.0 hi2;
    Alcotest.(check int) "low bucket" 2 c1;
    Alcotest.(check int) "high bucket (closed top)" 3 c2
  | _ -> Alcotest.fail "two buckets"

let test_histogram_drops_nonfinite () =
  let h = Wnet_stats.Summary.histogram [| 1.0; infinity; nan; 3.0 |] ~bins:1 in
  match h with
  | [ (_, _, c) ] -> Alcotest.(check int) "finite only" 2 c
  | _ -> Alcotest.fail "one bucket"

let test_histogram_validation () =
  Alcotest.check_raises "no finite"
    (Invalid_argument "Summary.histogram: no finite values") (fun () ->
      ignore (Wnet_stats.Summary.histogram [| nan |] ~bins:2))

let suite =
  [
    Alcotest.test_case "flood completes with consensus" `Quick test_flood_completes;
    Alcotest.test_case "declared function respected" `Quick test_flood_respects_declared_fn;
    Alcotest.test_case "rounds and volume" `Quick test_flood_rounds_and_volume;
    Alcotest.test_case "disconnected: no consensus" `Quick test_disconnected_no_consensus;
    Alcotest.test_case "clique flood" `Quick test_async_flood;
    Alcotest.test_case "histogram" `Quick test_histogram;
    Alcotest.test_case "histogram non-finite" `Quick test_histogram_drops_nonfinite;
    Alcotest.test_case "histogram validation" `Quick test_histogram_validation;
  ]
