open Wnet_core
open Wnet_graph

(* Directed diamond: 0 -> {1, 2} -> 3, plus an expensive bypass 0 -> 3. *)
let diamond () =
  Digraph.create ~n:4
    ~links:
      [
        (0, 1, 1.0); (1, 3, 2.0);
        (0, 2, 2.0); (2, 3, 4.0);
        (0, 3, 10.0);
      ]

let test_payment_by_hand () =
  match Link_cost.run (diamond ()) ~src:0 ~dst:3 with
  | None -> Alcotest.fail "connected"
  | Some r ->
    Alcotest.(check (array int)) "path" [| 0; 1; 3 |] r.Link_cost.path;
    Test_util.check_float "lcp" 3.0 r.Link_cost.lcp_cost;
    Test_util.check_float "relay cost (minus source link)" 2.0 r.Link_cost.relay_cost;
    (* silencing node 1: best is 0-2-3 = 6; payment = d_{1,3} + (6 - 3) = 5 *)
    Test_util.check_float "payment to 1" 5.0 (Link_cost.payment_to r 1);
    Test_util.check_float "others zero" 0.0 (Link_cost.payment_to r 2);
    Test_util.check_float "total" 5.0 (Link_cost.total_payment r)

let test_monopoly_transmitter () =
  let g = Digraph.create ~n:3 ~links:[ (0, 1, 1.0); (1, 2, 1.0) ] in
  match Link_cost.run g ~src:0 ~dst:2 with
  | None -> Alcotest.fail "connected"
  | Some r -> Test_util.check_float "no avoiding path" infinity (Link_cost.payment_to r 1)

let test_unreachable () =
  let g = Digraph.create ~n:3 ~links:[ (1, 0, 1.0) ] in
  Alcotest.(check bool) "none" true (Link_cost.run g ~src:0 ~dst:2 = None)

let test_payment_at_least_link_cost () =
  let r = Test_util.rng 60 in
  for _ = 1 to 15 do
    let inst = Wnet_topology.Random_range.paper_instance r ~n:40 ~kappa:2.0 in
    let g = inst.Wnet_topology.Random_range.graph in
    let src = 1 + Wnet_prng.Rng.int r 39 in
    match Link_cost.run g ~src ~dst:0 with
    | None -> ()
    | Some res ->
      let path = res.Link_cost.path in
      for l = 1 to Array.length path - 2 do
        let k = path.(l) in
        let used = Digraph.weight g k path.(l + 1) in
        Alcotest.(check bool) "p_k >= used link cost" true
          (Link_cost.payment_to res k >= used -. 1e-9)
      done
  done

let test_batch_matches_individual () =
  let r = Test_util.rng 61 in
  for _ = 1 to 8 do
    let inst = Wnet_topology.Random_range.paper_instance r ~n:35 ~kappa:2.0 in
    let g = inst.Wnet_topology.Random_range.graph in
    let batch = Link_cost.all_to_root g ~root:0 in
    Alcotest.(check bool) "root none" true (batch.Link_cost.results.(0) = None);
    Array.iteri
      (fun src entry ->
        if src <> 0 then
          match (entry, Link_cost.run g ~src ~dst:0) with
          | None, None -> ()
          | Some a, Some b ->
            Test_util.check_float "lcp" b.Link_cost.lcp_cost a.Link_cost.lcp_cost;
            Test_util.check_float "total payment" (Link_cost.total_payment b)
              (Link_cost.total_payment a)
          | _ -> Alcotest.fail "batch/individual mismatch")
      batch.Link_cost.results
  done

let test_batch_to_root_dist () =
  let g = diamond () in
  let batch = Link_cost.all_to_root g ~root:3 in
  Test_util.check_float "dist 0 -> 3" 3.0 batch.Link_cost.to_root_dist.(0);
  Test_util.check_float "dist 1 -> 3" 2.0 batch.Link_cost.to_root_dist.(1)

let test_ic_spot_check_clean () =
  let r = Test_util.rng 62 in
  let inst = Wnet_topology.Random_range.paper_instance r ~n:30 ~kappa:2.0 in
  let g = inst.Wnet_topology.Random_range.graph in
  let src = 5 in
  let v = Link_cost.ic_spot_check r g ~src ~dst:0 ~trials:120 in
  Alcotest.(check (list (pair int (float 0.0)))) "no vector lie gains" [] v

let test_asymmetric_types () =
  (* The same physical hop can cost differently per direction (different
     alpha/beta per node) — the defining feature of the Sec. III-F model. *)
  let g = Digraph.create ~n:3 ~links:[ (0, 1, 1.0); (1, 0, 7.0); (1, 2, 1.0); (2, 1, 1.0) ] in
  match Link_cost.run g ~src:0 ~dst:2 with
  | None -> Alcotest.fail "connected"
  | Some r -> Test_util.check_float "forward cost" 2.0 r.Link_cost.lcp_cost

let suite =
  [
    Alcotest.test_case "payments by hand" `Quick test_payment_by_hand;
    Alcotest.test_case "monopoly transmitter" `Quick test_monopoly_transmitter;
    Alcotest.test_case "unreachable" `Quick test_unreachable;
    Alcotest.test_case "payment covers the used link" `Quick test_payment_at_least_link_cost;
    Alcotest.test_case "batch = individual runs" `Quick test_batch_matches_individual;
    Alcotest.test_case "batch to-root distances" `Quick test_batch_to_root_dist;
    Alcotest.test_case "IC spot check (vector lies)" `Quick test_ic_spot_check_clean;
    Alcotest.test_case "asymmetric link types" `Quick test_asymmetric_types;
  ]
