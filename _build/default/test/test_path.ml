open Wnet_graph

let g = Wnet_core.Examples.diamond

let test_accessors () =
  let p = [| 3; 1; 0 |] in
  Alcotest.(check int) "source" 3 (Path.source p);
  Alcotest.(check int) "destination" 0 (Path.destination p);
  Alcotest.(check int) "hops" 2 (Path.hops p);
  Alcotest.(check (array int)) "relays" [| 1 |] (Path.relays p)

let test_trivial_paths () =
  Alcotest.(check (array int)) "no relay on 2-node path" [||] (Path.relays [| 0; 1 |]);
  Alcotest.(check int) "single node hops" 0 (Path.hops [| 4 |]);
  Test_util.check_float "2-node cost" 0.0 (Path.relay_cost g [| 0; 1 |])

let test_relay_cost () =
  Test_util.check_float "relay 1 only" 1.0 (Path.relay_cost g [| 0; 1; 3 |]);
  Test_util.check_float "relay 2 only" 3.0 (Path.relay_cost g [| 0; 2; 3 |])

let test_link_cost () =
  let d = Digraph.create ~n:3 ~links:[ (0, 1, 2.0); (1, 2, 3.0) ] in
  Test_util.check_float "sum of links" 5.0 (Path.link_cost d [| 0; 1; 2 |]);
  Test_util.check_float "missing link" infinity (Path.link_cost d [| 0; 2 |])

let test_is_valid () =
  Alcotest.(check bool) "valid" true (Path.is_valid g [| 0; 1; 3 |]);
  Alcotest.(check bool) "non-adjacent" false (Path.is_valid g [| 0; 3 |]);
  Alcotest.(check bool) "repeat" false (Path.is_valid g [| 0; 1; 0 |]);
  Alcotest.(check bool) "empty" false (Path.is_valid g [||]);
  Alcotest.(check bool) "out of range" false (Path.is_valid g [| 0; 9 |])

let test_is_valid_directed () =
  let d = Digraph.create ~n:3 ~links:[ (0, 1, 1.0); (1, 2, 1.0) ] in
  Alcotest.(check bool) "forward ok" true (Path.is_valid_directed d [| 0; 1; 2 |]);
  Alcotest.(check bool) "backward not" false (Path.is_valid_directed d [| 2; 1; 0 |])

let test_mem () =
  let p = [| 3; 1; 0 |] in
  Alcotest.(check bool) "endpoint" true (Path.mem p 3);
  Alcotest.(check bool) "relay" true (Path.mem p 1);
  Alcotest.(check bool) "absent" false (Path.mem p 2)

let test_pp () =
  Alcotest.(check string) "render" "3 -> 1 -> 0"
    (Format.asprintf "%a" Path.pp [| 3; 1; 0 |])

let suite =
  [
    Alcotest.test_case "accessors" `Quick test_accessors;
    Alcotest.test_case "trivial paths" `Quick test_trivial_paths;
    Alcotest.test_case "relay cost" `Quick test_relay_cost;
    Alcotest.test_case "link cost" `Quick test_link_cost;
    Alcotest.test_case "validity (undirected)" `Quick test_is_valid;
    Alcotest.test_case "validity (directed)" `Quick test_is_valid_directed;
    Alcotest.test_case "membership" `Quick test_mem;
    Alcotest.test_case "pretty printing" `Quick test_pp;
  ]
