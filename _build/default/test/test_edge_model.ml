open Wnet_graph
open Wnet_core

(* Edge-agent (Nisan-Ronen) model: Egraph, Edge_avoid, Edge_unicast. *)

let diamond () =
  (* 0-1 (w 1), 1-3 (w 1), 0-2 (w 2), 2-3 (w 2): shortest 0->3 is via 1
     with length 2; avoiding either cheap edge costs 4. *)
  Egraph.create ~n:4
    ~edges:[ (0, 1, 1.0); (1, 3, 1.0); (0, 2, 2.0); (2, 3, 2.0) ]

let test_egraph_basics () =
  let g = diamond () in
  Alcotest.(check int) "n" 4 (Egraph.n g);
  Alcotest.(check int) "m" 4 (Egraph.m g);
  (match Egraph.edge_between g 1 0 with
  | Some e ->
    Alcotest.(check (pair int int)) "endpoints ordered" (0, 1) (Egraph.endpoints g e);
    Test_util.check_float "weight" 1.0 (Egraph.weight g e)
  | None -> Alcotest.fail "edge exists");
  Alcotest.(check (option int)) "absent edge" None (Egraph.edge_between g 0 3)

let test_egraph_parallel_cheapest () =
  let g = Egraph.create ~n:2 ~edges:[ (0, 1, 5.0); (1, 0, 2.0) ] in
  Alcotest.(check int) "collapsed" 1 (Egraph.m g);
  Test_util.check_float "cheapest kept" 2.0 (Egraph.weight g 0)

let test_egraph_with_weights () =
  let g = diamond () in
  let g' = Egraph.with_weights g [| 9.0; 9.0; 9.0; 9.0 |] in
  Test_util.check_float "updated" 9.0 (Egraph.weight g' 0);
  Test_util.check_float "original intact" 1.0 (Egraph.weight g 0);
  Alcotest.check_raises "length check"
    (Invalid_argument "Egraph.with_weights: length mismatch") (fun () ->
      ignore (Egraph.with_weights g [| 1.0 |]))

let test_egraph_validation () =
  Alcotest.check_raises "self loop" (Invalid_argument "Egraph.create: self-loop")
    (fun () -> ignore (Egraph.create ~n:2 ~edges:[ (1, 1, 1.0) ]));
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Egraph.create: weight must be non-negative") (fun () ->
      ignore (Egraph.create ~n:2 ~edges:[ (0, 1, -1.0) ]))

let test_shortest_tree () =
  let g = diamond () in
  let t = Edge_avoid.shortest_tree g ~source:0 in
  Test_util.check_float "d(3)" 2.0 (Dijkstra.dist t 3);
  Test_util.check_float "d(2)" 2.0 (Dijkstra.dist t 2)

let test_replacement_by_hand () =
  let g = diamond () in
  match Edge_avoid.replacement_costs_fast g ~src:0 ~dst:3 with
  | None -> Alcotest.fail "connected"
  | Some r ->
    Alcotest.(check (array int)) "path" [| 0; 1; 3 |] r.Edge_avoid.path_nodes;
    Test_util.check_float "replacement of first edge" 4.0 r.Edge_avoid.replacement.(0);
    Test_util.check_float "replacement of second edge" 4.0 r.Edge_avoid.replacement.(1)

let test_bridge_infinite () =
  let g = Egraph.create ~n:3 ~edges:[ (0, 1, 1.0); (1, 2, 1.0) ] in
  match Edge_avoid.replacement_costs_fast g ~src:0 ~dst:2 with
  | None -> Alcotest.fail "connected"
  | Some r ->
    Test_util.check_float "bridge" infinity r.Edge_avoid.replacement.(0);
    Test_util.check_float "bridge" infinity r.Edge_avoid.replacement.(1)

let random_egraph r =
  let n = 4 + Wnet_prng.Rng.int r 30 in
  let edges = ref [] in
  for v = 1 to n - 1 do
    edges := (v, Wnet_prng.Rng.int r v, 0.1 +. Wnet_prng.Rng.float r 5.0) :: !edges
  done;
  for _ = 1 to Wnet_prng.Rng.int r (2 * n) do
    let u = Wnet_prng.Rng.int r n and v = Wnet_prng.Rng.int r n in
    if u <> v then edges := (u, v, 0.1 +. Wnet_prng.Rng.float r 5.0) :: !edges
  done;
  (n, Egraph.create ~n ~edges:!edges)

let prop_fast_matches_naive =
  Test_util.qcheck_case ~count:150 "edge fast = edge naive" Test_util.seed_gen
    (fun seed ->
      let r = Test_util.rng seed in
      let n, g = random_egraph r in
      let src = Wnet_prng.Rng.int r n in
      let dst = (src + 1 + Wnet_prng.Rng.int r (n - 1)) mod n in
      match
        ( Edge_avoid.replacement_costs_naive g ~src ~dst,
          Edge_avoid.replacement_costs_fast g ~src ~dst )
      with
      | None, None -> true
      | Some a, Some b ->
        a.Edge_avoid.path_edges = b.Edge_avoid.path_edges
        && Array.for_all2 Test_util.approx a.Edge_avoid.replacement
             b.Edge_avoid.replacement
      | _ -> false)

let test_payment_by_hand () =
  let g = diamond () in
  match Edge_unicast.run g ~src:0 ~dst:3 with
  | None -> Alcotest.fail "connected"
  | Some r ->
    (* each cheap edge: 4 - (2 - 1) = 3 *)
    let e01 = Option.get (Egraph.edge_between g 0 1) in
    let e13 = Option.get (Egraph.edge_between g 1 3) in
    Test_util.check_float "payment e01" 3.0 (Edge_unicast.payment_to_edge r e01);
    Test_util.check_float "payment e13" 3.0 (Edge_unicast.payment_to_edge r e13);
    Test_util.check_float "total" 6.0 (Edge_unicast.total_payment r);
    let truth = Egraph.weights g in
    Test_util.check_float "edge utility" 2.0 (Edge_unicast.utility r ~truth e01)

let test_edge_payment_at_least_cost () =
  let r = Test_util.rng 170 in
  for _ = 1 to 20 do
    let n, g = random_egraph r in
    let src = Wnet_prng.Rng.int r n in
    let dst = (src + 1 + Wnet_prng.Rng.int r (n - 1)) mod n in
    match Edge_unicast.run g ~src ~dst with
    | None -> ()
    | Some res ->
      Array.iter
        (fun e ->
          Alcotest.(check bool) "p_e >= w_e" true
            (Edge_unicast.payment_to_edge res e >= Egraph.weight g e -. 1e-9))
        res.Edge_unicast.path_edges
  done

let test_edge_mechanism_ic () =
  let r = Test_util.rng 171 in
  for _ = 1 to 6 do
    let n, g = random_egraph r in
    let src = Wnet_prng.Rng.int r n in
    let dst = (src + 1 + Wnet_prng.Rng.int r (n - 1)) mod n in
    let m = Edge_unicast.mechanism g ~src ~dst in
    let v =
      Wnet_mech.Properties.random_ic_violations (Wnet_prng.Rng.split r) m
        ~truth:(Egraph.weights g) ~trials:50 ~lie_bound:30.0
    in
    Alcotest.(check int) "edge agents cannot gain" 0 (List.length v)
  done

let test_fast_naive_payment_agree () =
  let r = Test_util.rng 172 in
  for _ = 1 to 15 do
    let n, g = random_egraph r in
    let src = Wnet_prng.Rng.int r n in
    let dst = (src + 1 + Wnet_prng.Rng.int r (n - 1)) mod n in
    match
      ( Edge_unicast.run ~algo:Edge_unicast.Fast g ~src ~dst,
        Edge_unicast.run ~algo:Edge_unicast.Naive g ~src ~dst )
    with
    | Some a, Some b ->
      Alcotest.(check bool) "payments agree" true
        (Array.for_all2 Test_util.approx a.Edge_unicast.payments
           b.Edge_unicast.payments)
    | None, None -> ()
    | _ -> Alcotest.fail "mismatch"
  done

let test_agent_model_experiment () =
  let rows = Wnet_experiments.Agent_model_exp.sweep ~ns:[ 50 ] ~instances:2 ~seed:30 () in
  match rows with
  | [ r ] ->
    Alcotest.(check bool) "node IOR >= 1" true (r.Wnet_experiments.Agent_model_exp.node_ior >= 1.0);
    Alcotest.(check bool) "edge IOR >= 1" true (r.Wnet_experiments.Agent_model_exp.edge_ior >= 1.0)
  | _ -> Alcotest.fail "one row"

let suite =
  [
    Alcotest.test_case "egraph basics" `Quick test_egraph_basics;
    Alcotest.test_case "parallel edges keep cheapest" `Quick test_egraph_parallel_cheapest;
    Alcotest.test_case "with_weights" `Quick test_egraph_with_weights;
    Alcotest.test_case "egraph validation" `Quick test_egraph_validation;
    Alcotest.test_case "edge-weighted Dijkstra" `Quick test_shortest_tree;
    Alcotest.test_case "replacement by hand" `Quick test_replacement_by_hand;
    Alcotest.test_case "bridges priced infinite" `Quick test_bridge_infinite;
    prop_fast_matches_naive;
    Alcotest.test_case "edge payments by hand" `Quick test_payment_by_hand;
    Alcotest.test_case "edge payment >= cost" `Quick test_edge_payment_at_least_cost;
    Alcotest.test_case "edge mechanism IC" `Quick test_edge_mechanism_ic;
    Alcotest.test_case "fast/naive payments agree" `Quick test_fast_naive_payment_agree;
    Alcotest.test_case "agent model experiment" `Quick test_agent_model_experiment;
  ]
