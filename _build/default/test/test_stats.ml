open Wnet_stats

let test_summary_basic () =
  let s = Summary.of_list [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  Alcotest.(check int) "count" 5 s.Summary.count;
  Test_util.check_float "mean" 3.0 s.Summary.mean;
  Test_util.check_float "min" 1.0 s.Summary.min;
  Test_util.check_float "max" 5.0 s.Summary.max;
  Test_util.check_float "median" 3.0 s.Summary.median;
  Test_util.check_float "std" (sqrt 2.5) s.Summary.std

let test_summary_single_point () =
  let s = Summary.of_list [ 7.0 ] in
  Test_util.check_float "mean" 7.0 s.Summary.mean;
  Test_util.check_float "std zero" 0.0 s.Summary.std;
  Test_util.check_float "ci zero" 0.0 s.Summary.ci95

let test_summary_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Summary.of_array: empty")
    (fun () -> ignore (Summary.of_list []))

let test_percentile_interpolation () =
  let a = [| 10.0; 20.0; 30.0; 40.0 |] in
  Test_util.check_float "p0" 10.0 (Summary.percentile a 0.0);
  Test_util.check_float "p100" 40.0 (Summary.percentile a 1.0);
  Test_util.check_float "p50 interpolates" 25.0 (Summary.percentile a 0.5);
  (* order independence *)
  Test_util.check_float "unsorted input" 25.0
    (Summary.percentile [| 40.0; 10.0; 30.0; 20.0 |] 0.5)

let test_mean_list () =
  Test_util.check_float "mean" 2.0 (Summary.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check bool) "empty is nan" true (Float.is_nan (Summary.mean []))

let test_table_render () =
  let t = Table.make ~headers:[ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_rowf t [ 3.14159; 2.71828 ];
  let s = Table.render t in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "4 lines" 4 (List.length lines);
  Alcotest.(check bool) "separator present" true
    (String.length (List.nth lines 1) > 0 && String.get (List.nth lines 1) 0 = '-')

let test_table_arity_checked () =
  let t = Table.make ~headers:[ "a"; "b" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch")
    (fun () -> Table.add_row t [ "only one" ])

let test_table_row_order () =
  let t = Table.make ~headers:[ "x" ] in
  Table.add_row t [ "first" ];
  Table.add_row t [ "second" ];
  let s = Table.render t in
  let first_pos =
    Str_ext.index_of s "first" |> Option.get
  and second_pos = Str_ext.index_of s "second" |> Option.get in
  Alcotest.(check bool) "insertion order preserved" true (first_pos < second_pos)

let test_chart_renders () =
  let s =
    Ascii_chart.render ~title:"t"
      [
        { Ascii_chart.label = 'a'; points = [ (0.0, 1.0); (1.0, 2.0) ] };
        { Ascii_chart.label = 'b'; points = [ (0.5, 1.5) ] };
      ]
  in
  Alcotest.(check bool) "has title" true (Str_ext.index_of s "t" <> None);
  Alcotest.(check bool) "has glyph a" true (Str_ext.index_of s "a" <> None);
  Alcotest.(check bool) "has legend" true (Str_ext.index_of s "legend" <> None)

let test_chart_empty () =
  let s = Ascii_chart.render ~title:"empty" [ { Ascii_chart.label = 'x'; points = [] } ] in
  Alcotest.(check bool) "graceful" true (Str_ext.index_of s "no finite data" <> None)

let test_chart_skips_non_finite () =
  let s =
    Ascii_chart.render ~title:"inf"
      [ { Ascii_chart.label = 'z'; points = [ (0.0, infinity); (1.0, 2.0) ] } ]
  in
  Alcotest.(check bool) "renders" true (Str_ext.index_of s "z" <> None)

let suite =
  [
    Alcotest.test_case "summary basics" `Quick test_summary_basic;
    Alcotest.test_case "summary single point" `Quick test_summary_single_point;
    Alcotest.test_case "summary rejects empty" `Quick test_summary_empty_rejected;
    Alcotest.test_case "percentile interpolation" `Quick test_percentile_interpolation;
    Alcotest.test_case "mean of list" `Quick test_mean_list;
    Alcotest.test_case "table rendering" `Quick test_table_render;
    Alcotest.test_case "table arity" `Quick test_table_arity_checked;
    Alcotest.test_case "table row order" `Quick test_table_row_order;
    Alcotest.test_case "chart renders" `Quick test_chart_renders;
    Alcotest.test_case "chart with no data" `Quick test_chart_empty;
    Alcotest.test_case "chart skips non-finite" `Quick test_chart_skips_non_finite;
  ]
