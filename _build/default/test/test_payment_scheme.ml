open Wnet_core
open Wnet_graph

(* Theta fixture: terminals 0, 1; arm relays 2&3 (costs 5, 5, adjacent),
   arm relay 4 (cost 8), arm relay 5 (cost 30). *)
let theta () =
  Wnet_topology.Fixtures.theta ~spine_costs:[| 1.0; 1.0 |]
    ~arm_costs:[| [| 5.0; 5.0 |]; [| 8.0 |]; [| 30.0 |] |]

let test_vcg_equals_unicast () =
  let r = Test_util.rng 50 in
  for _ = 1 to 20 do
    let g = Test_util.random_ring_graph ~max_n:20 r in
    let n = Graph.n g in
    let src = Wnet_prng.Rng.int r n in
    let dst = (src + 1 + Wnet_prng.Rng.int r (n - 1)) mod n in
    match (Payment_scheme.run Payment_scheme.Vcg g ~src ~dst, Unicast.run g ~src ~dst) with
    | Some a, Some b ->
      Array.iteri
        (fun v p -> Test_util.check_float "same payments" p a.Payment_scheme.payments.(v))
        b.Unicast.payments
    | None, None -> ()
    | _ -> Alcotest.fail "feasibility mismatch"
  done

let test_neighbourhood_payments_on_theta () =
  let g = theta () in
  match Payment_scheme.run Payment_scheme.Neighbourhood g ~src:0 ~dst:1 with
  | None -> Alcotest.fail "connected"
  | Some r ->
    (* LCP = 0-4-1 (cost 8, node 4 is the fixture's arm-2 relay). *)
    Alcotest.(check (array int)) "lcp" [| 0; 4; 1 |] r.Payment_scheme.path;
    (* N(4) minus endpoints = {4}: pivot = arm1 = 10; payment 10-8+8. *)
    Test_util.check_float "on-path payment" 10.0 (Payment_scheme.payment_to r 4);
    (* Node 2 (off path): removing N(2) = {2,3} leaves pivot = 8 = LCP:
       payment 0. *)
    Test_util.check_float "off-path, arm dead" 0.0 (Payment_scheme.payment_to r 2)

let test_neighbourhood_pays_at_least_vcg () =
  (* The neighbourhood pivot removes a superset of nodes, so p̃ >= p for
     on-path relays: the price of collusion resistance. *)
  let r = Test_util.rng 51 in
  for _ = 1 to 20 do
    let g = Test_util.random_ring_graph ~max_n:20 r in
    let n = Graph.n g in
    let src = Wnet_prng.Rng.int r n in
    let dst = (src + 1 + Wnet_prng.Rng.int r (n - 1)) mod n in
    match
      ( Payment_scheme.run Payment_scheme.Vcg g ~src ~dst,
        Payment_scheme.run Payment_scheme.Neighbourhood g ~src ~dst )
    with
    | Some a, Some b ->
      Array.iter
        (fun k ->
          Alcotest.(check bool) "p-tilde >= p" true
            (Payment_scheme.payment_to b k >= Payment_scheme.payment_to a k -. 1e-9))
        (Path.relays a.Payment_scheme.path)
    | None, None -> ()
    | _ -> Alcotest.fail "feasibility mismatch"
  done

let test_off_path_positive_payment () =
  (* The paper notes p̃ can pay a node that is NOT on the LCP when one of
     its neighbours is.  Build it explicitly: the off-path node 5 is
     adjacent to on-path relay 2. *)
  let g =
    Graph.create
      ~costs:[| 1.0; 1.0; 2.0; 10.0; 50.0; 3.0 |]
      ~edges:[ (0, 2); (2, 1); (0, 3); (3, 1); (0, 4); (4, 1); (5, 2); (5, 0) ]
  in
  match Payment_scheme.run Payment_scheme.Neighbourhood g ~src:0 ~dst:1 with
  | None -> Alcotest.fail "connected"
  | Some r ->
    Alcotest.(check (array int)) "lcp via 2" [| 0; 2; 1 |] r.Payment_scheme.path;
    (* Removing N(5) = {5, 2} kills the LCP: pivot = 10 via node 3;
       payment to 5 = 10 - 2 + 0 = 8 > 0 although 5 is off-path. *)
    Test_util.check_float "off-path but paid" 8.0 (Payment_scheme.payment_to r 5)

let test_inflation_collusion_resisted () =
  let r = Test_util.rng 52 in
  let checked = ref 0 in
  for _ = 1 to 20 do
    match
      Wnet_topology.Gnp.biconnected_graph r ~n:15 ~p:0.5 ~cost_lo:1.0
        ~cost_hi:10.0 ~max_tries:50
    with
    | None -> ()
    | Some g ->
      let src = 2 and dst = 0 in
      if Connectivity.neighbourhood_resilient g ~src ~dst then begin
        incr checked;
        let m = Payment_scheme.mechanism Payment_scheme.Neighbourhood g ~src ~dst in
        let pairs = ref [] in
        Graph.iter_edges
          (fun u v ->
            if u <> src && v <> src && u <> dst && v <> dst then
              pairs := (u, v) :: !pairs)
          g;
        let v =
          Wnet_mech.Properties.pair_inflation_violations (Wnet_prng.Rng.split r) m
            ~truth:(Graph.costs g) ~pairs:!pairs ~trials_per_pair:3
        in
        Alcotest.(check int) "no inflation gain" 0 (List.length v)
      end
  done;
  Alcotest.(check bool) "exercised at least once" true (!checked > 0)

let test_capture_collusion_residual () =
  (* The documented Theorem 8 gap: joint under-bidding by two adjacent
     relays captures the route and gains — consistent with Theorem 7. *)
  let g = theta () in
  let truth = Graph.costs g in
  let m = Payment_scheme.mechanism Payment_scheme.Neighbourhood g ~src:0 ~dst:1 in
  let lie = Wnet_mech.Profile.deviate_many truth [ (2, 0.0); (3, 0.0) ] in
  let honest = Wnet_mech.Mechanism.utilities m ~truth ~declared:truth |> Option.get in
  let dev = Wnet_mech.Mechanism.utilities m ~truth ~declared:lie |> Option.get in
  Alcotest.(check bool) "capture gains (Theorem 8 caveat)" true
    (dev.(2) +. dev.(3) > honest.(2) +. honest.(3) +. 1e-9)

let test_single_agent_truthful () =
  (* p̃ is still strategyproof agent-by-agent. *)
  let r = Test_util.rng 53 in
  for _ = 1 to 8 do
    let g = Test_util.random_ring_graph ~max_n:12 r in
    let n = Graph.n g in
    let src = Wnet_prng.Rng.int r n in
    let dst = (src + 1 + Wnet_prng.Rng.int r (n - 1)) mod n in
    let m = Payment_scheme.mechanism Payment_scheme.Neighbourhood g ~src ~dst in
    let v =
      Wnet_mech.Properties.random_ic_violations (Wnet_prng.Rng.split r) m
        ~truth:(Graph.costs g) ~trials:40 ~lie_bound:30.0
    in
    Alcotest.(check int) "unilateral IC" 0 (List.length v)
  done

let test_collusion_sets_generalization () =
  let g = theta () in
  (* Q(k) = everyone within the same arm: for node 2, {3}; for 3, {2}. *)
  let q k = match k with 2 -> [ 3 ] | 3 -> [ 2 ] | _ -> [] in
  match Payment_scheme.run (Payment_scheme.Collusion_sets q) g ~src:0 ~dst:1 with
  | None -> Alcotest.fail "connected"
  | Some r ->
    (* Same output as Vcg for node 4 since Q(4) = {4}. *)
    Test_util.check_float "singleton set = VCG" 10.0 (Payment_scheme.payment_to r 4)

let test_removal_set_excludes_endpoints () =
  let g = theta () in
  let set = Payment_scheme.removal_set Payment_scheme.Neighbourhood g ~src:0 ~dst:1 2 in
  Alcotest.(check bool) "no endpoints" true
    (not (List.mem 0 set) && not (List.mem 1 set));
  Alcotest.(check bool) "self included" true (List.mem 2 set);
  Alcotest.(check bool) "neighbour included" true (List.mem 3 set)

let test_monopoly_set_infinite () =
  (* Diamond with a chord between the two relays: pricing relay 1 removes
     its neighbour 3 too, disconnecting the endpoints. *)
  let g =
    Graph.create ~costs:[| 1.0; 1.0; 1.0; 2.0 |]
      ~edges:[ (0, 1); (1, 2); (0, 3); (3, 2); (1, 3) ]
  in
  match Payment_scheme.run Payment_scheme.Neighbourhood g ~src:0 ~dst:2 with
  | None -> Alcotest.fail "connected"
  | Some r ->
    Alcotest.(check (array int)) "lcp via 1" [| 0; 1; 2 |] r.Payment_scheme.path;
    Test_util.check_float "infinite payment" infinity (Payment_scheme.payment_to r 1)

let suite =
  [
    Alcotest.test_case "Vcg scheme = Unicast" `Quick test_vcg_equals_unicast;
    Alcotest.test_case "neighbourhood payments on theta" `Quick test_neighbourhood_payments_on_theta;
    Alcotest.test_case "p-tilde dominates p" `Quick test_neighbourhood_pays_at_least_vcg;
    Alcotest.test_case "off-path node can be paid" `Quick test_off_path_positive_payment;
    Alcotest.test_case "inflation collusion resisted" `Quick test_inflation_collusion_resisted;
    Alcotest.test_case "capture collusion residual (documented)" `Quick test_capture_collusion_residual;
    Alcotest.test_case "single-agent truthfulness" `Quick test_single_agent_truthful;
    Alcotest.test_case "generic collusion sets" `Quick test_collusion_sets_generalization;
    Alcotest.test_case "removal set excludes endpoints" `Quick test_removal_set_excludes_endpoints;
    Alcotest.test_case "neighbourhood monopoly infinite" `Quick test_monopoly_set_infinite;
  ]
