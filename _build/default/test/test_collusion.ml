open Wnet_core
open Wnet_graph

(* A topology where the boost attack plainly exists: LCP relay 2's pivot
   path runs through node 4, which is 2's neighbour and off the LCP. *)
let boostable () =
  Graph.create
    ~costs:[| 1.0; 1.0; 2.0; 9.0; 3.0; 20.0 |]
    ~edges:[ (0, 2); (2, 1); (0, 4); (4, 1); (2, 4); (0, 3); (3, 1); (0, 5); (5, 1) ]

let test_boost_attack_found_on_vcg () =
  let g = boostable () in
  match Collusion.find_neighbour_boost g ~src:0 ~dst:1 ~boost:4.0 with
  | None -> Alcotest.fail "attack must exist"
  | Some b ->
    Alcotest.(check int) "relay" 2 b.Collusion.relay;
    Alcotest.(check int) "accomplice" 4 b.Collusion.accomplice;
    Alcotest.(check bool) "strict gain" true
      (b.Collusion.boosted_pair_utility > b.Collusion.honest_pair_utility)

let test_boost_attack_gain_value () =
  (* By hand: LCP = 0-2-1 (cost 2), pivot for 2 = 0-4-1 (cost 3), payment
     p_2 = 2 + 1 = 3, pair utility 1.  Boosting c_4 from 3 to 7 moves the
     pivot to... still 0-4-1 at 7 (vs arm 3 at 9): p_2 = 2 + 5 = 7, pair
     utility 5. *)
  let g = boostable () in
  let honest = Unicast.run g ~src:0 ~dst:1 |> Option.get in
  Test_util.check_float "honest payment" 3.0 (Unicast.payment_to honest 2);
  let boosted = Unicast.run (Graph.with_cost g 4 7.0) ~src:0 ~dst:1 |> Option.get in
  Test_util.check_float "boosted payment" 7.0 (Unicast.payment_to boosted 2)

let test_boost_attack_dead_under_neighbourhood_scheme () =
  let g = boostable () in
  let truth = Graph.costs g in
  let honest =
    Payment_scheme.run Payment_scheme.Neighbourhood g ~src:0 ~dst:1 |> Option.get
  in
  let boosted =
    Payment_scheme.run Payment_scheme.Neighbourhood (Graph.with_cost g 4 7.0)
      ~src:0 ~dst:1 |> Option.get
  in
  let pair r =
    Payment_scheme.utility r ~truth 2 +. Payment_scheme.utility r ~truth 4
  in
  Alcotest.(check bool) "no gain under p-tilde" true
    (pair boosted <= pair honest +. 1e-9)

let test_no_boost_when_pivot_disjoint () =
  (* Theta with far-apart arms: no LCP relay has an off-path neighbour on
     its pivot path. *)
  let g =
    Wnet_topology.Fixtures.theta ~spine_costs:[| 1.0; 1.0 |]
      ~arm_costs:[| [| 2.0 |]; [| 3.0 |]; [| 9.0 |] |]
  in
  Alcotest.(check bool) "no attack" true
    (Collusion.find_neighbour_boost g ~src:0 ~dst:1 ~boost:5.0 = None)

let test_resale_requires_gap () =
  (* No resale in a clique: everyone's payment to the AP is one hop, 0. *)
  let g = Wnet_topology.Fixtures.complete ~costs:(Array.make 6 2.0) in
  let batch = Unicast.all_to_root g ~root:0 in
  Alcotest.(check int) "no opportunities" 0
    (List.length
       (Collusion.resale_opportunities g ~root:0 ~payments:(fun v -> batch.(v))))

let test_resale_sorted_by_saving () =
  let r = Test_util.rng 70 in
  for _ = 1 to 10 do
    let g = Test_util.random_ring_graph ~max_n:25 r in
    let batch = Unicast.all_to_root g ~root:0 in
    let ops = Collusion.resale_opportunities g ~root:0 ~payments:(fun v -> batch.(v)) in
    let rec sorted = function
      | (a : Collusion.resale) :: (b :: _ as rest) ->
        a.Collusion.saving >= b.Collusion.saving && sorted rest
      | _ -> true
    in
    Alcotest.(check bool) "descending savings" true (sorted ops);
    List.iter
      (fun (o : Collusion.resale) ->
        Alcotest.(check bool) "positive saving" true (o.Collusion.saving > 0.0);
        Alcotest.(check bool) "proxy is a neighbour" true
          (Graph.mem_edge g o.Collusion.source o.Collusion.proxy))
      ops
  done

let test_boost_validation () =
  Alcotest.check_raises "boost must be positive"
    (Invalid_argument "Collusion.find_neighbour_boost: boost <= 0") (fun () ->
      ignore (Collusion.find_neighbour_boost (boostable ()) ~src:0 ~dst:1 ~boost:0.0))

let suite =
  [
    Alcotest.test_case "boost attack found on VCG" `Quick test_boost_attack_found_on_vcg;
    Alcotest.test_case "boost attack numbers by hand" `Quick test_boost_attack_gain_value;
    Alcotest.test_case "boost dead under p-tilde" `Quick test_boost_attack_dead_under_neighbourhood_scheme;
    Alcotest.test_case "no boost without contact" `Quick test_no_boost_when_pivot_disjoint;
    Alcotest.test_case "no resale in a clique" `Quick test_resale_requires_gap;
    Alcotest.test_case "resale list invariants" `Quick test_resale_sorted_by_saving;
    Alcotest.test_case "boost validation" `Quick test_boost_validation;
  ]
