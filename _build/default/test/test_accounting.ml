open Wnet_accounting
open Wnet_core

let outcome () = Unicast.run Examples.diamond ~src:3 ~dst:0 |> Option.get
(* diamond: relay 1 paid 3 per packet *)

let test_settlement_moves_money () =
  let l = Ledger.create ~n:4 ~initial_balance:100.0 in
  let r = outcome () in
  (match
     Ledger.settle l ~session:1 ~outcome:r ~packets:2 ~signed_by_source:true
       ~acknowledged:true
   with
  | Error _ -> Alcotest.fail "must settle"
  | Ok s ->
    Test_util.check_float "debit" 6.0 s.Ledger.debit;
    Alcotest.(check (list (pair int (float 1e-9)))) "credits" [ (1, 6.0) ] s.Ledger.credits);
  Test_util.check_float "source debited" 94.0 (Ledger.balance l 3);
  Test_util.check_float "relay credited" 106.0 (Ledger.balance l 1);
  Test_util.check_float "bystander untouched" 100.0 (Ledger.balance l 2)

let test_conservation () =
  let l = Ledger.create ~n:4 ~initial_balance:50.0 in
  let before = Ledger.total_in_circulation l in
  let r = outcome () in
  for session = 1 to 5 do
    ignore
      (Ledger.settle l ~session ~outcome:r ~packets:1 ~signed_by_source:true
         ~acknowledged:true)
  done;
  Test_util.check_float "money conserved" before (Ledger.total_in_circulation l)

let test_free_riding_rejected () =
  let l = Ledger.create ~n:4 ~initial_balance:100.0 in
  let r = outcome () in
  (match
     Ledger.settle l ~session:1 ~outcome:r ~packets:1 ~signed_by_source:false
       ~acknowledged:true
   with
  | Error Ledger.Unsigned_initiation -> ()
  | _ -> Alcotest.fail "unsigned must be rejected");
  Test_util.check_float "no balance change" 100.0 (Ledger.balance l 3);
  Alcotest.(check int) "audit trail" 1 (List.length (Ledger.rejections l))

let test_missing_ack_rejected () =
  let l = Ledger.create ~n:4 ~initial_balance:100.0 in
  match
    Ledger.settle l ~session:1 ~outcome:(outcome ()) ~packets:1
      ~signed_by_source:true ~acknowledged:false
  with
  | Error Ledger.Missing_acknowledgment -> ()
  | _ -> Alcotest.fail "no pay without the AP's signed ack"

let test_insufficient_funds () =
  let l = Ledger.create ~n:4 ~initial_balance:2.0 in
  (match
     Ledger.settle l ~session:1 ~outcome:(outcome ()) ~packets:1
       ~signed_by_source:true ~acknowledged:true
   with
  | Error (Ledger.Insufficient_funds short) -> Test_util.check_float "shortfall" 1.0 short
  | _ -> Alcotest.fail "broke source must bounce");
  Test_util.check_float "unchanged" 2.0 (Ledger.balance l 3)

let test_replay_rejected () =
  let l = Ledger.create ~n:4 ~initial_balance:100.0 in
  let r = outcome () in
  let settle session =
    Ledger.settle l ~session ~outcome:r ~packets:1 ~signed_by_source:true
      ~acknowledged:true
  in
  (match settle 7 with Ok _ -> () | Error _ -> Alcotest.fail "first settles");
  match settle 7 with
  | Error Ledger.Duplicate_session -> ()
  | _ -> Alcotest.fail "replayed session id must be rejected"

let test_monopoly_rejected () =
  let g = Wnet_topology.Fixtures.line ~costs:[| 1.0; 1.0; 1.0 |] in
  let r = Unicast.run g ~src:2 ~dst:0 |> Option.get in
  let l = Ledger.create ~n:3 ~initial_balance:1000.0 in
  match
    Ledger.settle l ~session:1 ~outcome:r ~packets:1 ~signed_by_source:true
      ~acknowledged:true
  with
  | Error (Ledger.Insufficient_funds s) ->
    Test_util.check_float "infinite" infinity s
  | _ -> Alcotest.fail "monopoly price cannot settle"

let test_deposit_validation () =
  let l = Ledger.create ~n:2 ~initial_balance:0.0 in
  Alcotest.check_raises "negative deposit"
    (Invalid_argument "Ledger.deposit: negative amount") (fun () ->
      Ledger.deposit l 0 (-5.0))

let test_session_sim_honest () =
  let r = Test_util.rng 140 in
  let g = Test_util.random_ring_graph ~min_n:8 ~max_n:15 r in
  let rep =
    Session_sim.run r g ~root:0 ~sessions:200 ~packets_per_session:2
      ~initial_balance:0.0
      ~principals:(fun _ -> Session_sim.Honest)
  in
  Alcotest.(check bool) "mostly delivered" true (rep.Session_sim.delivered > 150);
  Alcotest.(check int) "no free riding" 0 rep.Session_sim.rejected_free_riding;
  Alcotest.(check bool) "income bookkeeping consistent" true
    (Session_sim.income_matches_payments rep)

let test_session_sim_free_rider () =
  let r = Test_util.rng 141 in
  let g = Test_util.random_ring_graph ~min_n:8 ~max_n:15 r in
  let rep =
    Session_sim.run r g ~root:0 ~sessions:300 ~packets_per_session:1
      ~initial_balance:0.0
      ~principals:(fun v -> if v = 1 then Session_sim.Free_rider else Session_sim.Honest)
  in
  Alcotest.(check bool) "free riding detected" true (rep.Session_sim.rejected_free_riding > 0);
  (* the free rider's rejections moved no money *)
  Alcotest.(check bool) "conservation" true (Session_sim.income_matches_payments rep)

let test_session_sim_deadbeat () =
  let r = Test_util.rng 142 in
  let g = Test_util.random_ring_graph ~min_n:8 ~max_n:15 r in
  let rep =
    Session_sim.run r g ~root:0 ~sessions:300 ~packets_per_session:1
      ~initial_balance:0.0
      ~principals:(fun v -> if v = 2 then Session_sim.Deadbeat else Session_sim.Honest)
  in
  Alcotest.(check bool) "unfunded sessions bounce" true (rep.Session_sim.rejected_unfunded > 0)


let prop_random_settlement_conservation =
  Test_util.qcheck_case ~count:40 "random settlement sequences conserve money"
    Test_util.seed_gen (fun seed ->
      let r = Test_util.rng seed in
      let g = Test_util.random_ring_graph ~min_n:5 ~max_n:15 r in
      let n = Wnet_graph.Graph.n g in
      let l = Ledger.create ~n ~initial_balance:500.0 in
      let before = Ledger.total_in_circulation l in
      let outcomes = Unicast.all_to_root g ~root:0 in
      for session = 1 to 30 do
        let src = 1 + Wnet_prng.Rng.int r (n - 1) in
        match outcomes.(src) with
        | None -> ()
        | Some outcome ->
          ignore
            (Ledger.settle l ~session ~outcome
               ~packets:(1 + Wnet_prng.Rng.int r 4)
               ~signed_by_source:(Wnet_prng.Rng.bool r)
               ~acknowledged:(Wnet_prng.Rng.bool r))
      done;
      Test_util.approx before (Ledger.total_in_circulation l))

let prop_settlements_and_rejections_partition =
  Test_util.qcheck_case ~count:30 "every session settles or is logged"
    Test_util.seed_gen (fun seed ->
      let r = Test_util.rng seed in
      let g = Test_util.random_ring_graph ~min_n:5 ~max_n:12 r in
      let n = Wnet_graph.Graph.n g in
      let l = Ledger.create ~n ~initial_balance:100.0 in
      let outcomes = Unicast.all_to_root g ~root:0 in
      let attempts = ref 0 in
      for session = 1 to 25 do
        let src = 1 + Wnet_prng.Rng.int r (n - 1) in
        match outcomes.(src) with
        | None -> ()
        | Some outcome ->
          incr attempts;
          ignore
            (Ledger.settle l ~session ~outcome ~packets:1
               ~signed_by_source:(Wnet_prng.Rng.bool r) ~acknowledged:true)
      done;
      List.length (Ledger.settlements l) + List.length (Ledger.rejections l)
      = !attempts)

let suite =
  [
    Alcotest.test_case "settlement moves money" `Quick test_settlement_moves_money;
    Alcotest.test_case "money conservation" `Quick test_conservation;
    Alcotest.test_case "free riding rejected" `Quick test_free_riding_rejected;
    Alcotest.test_case "missing ack rejected" `Quick test_missing_ack_rejected;
    Alcotest.test_case "insufficient funds" `Quick test_insufficient_funds;
    Alcotest.test_case "replay rejected" `Quick test_replay_rejected;
    Alcotest.test_case "monopoly price rejected" `Quick test_monopoly_rejected;
    Alcotest.test_case "deposit validation" `Quick test_deposit_validation;
    Alcotest.test_case "honest traffic settles" `Quick test_session_sim_honest;
    Alcotest.test_case "free rider caught" `Quick test_session_sim_free_rider;
    Alcotest.test_case "deadbeat bounces" `Quick test_session_sim_deadbeat;
    prop_random_settlement_conservation;
    prop_settlements_and_rejections_partition;
  ]
