open Wnet_graph

let small () =
  Graph.create ~costs:[| 1.0; 2.0; 3.0; 4.0 |]
    ~edges:[ (0, 1); (1, 2); (2, 3); (3, 0) ]

let test_sizes () =
  let g = small () in
  Alcotest.(check int) "n" 4 (Graph.n g);
  Alcotest.(check int) "m" 4 (Graph.m g)

let test_duplicate_edges_collapse () =
  let g =
    Graph.create ~costs:[| 1.0; 1.0 |] ~edges:[ (0, 1); (1, 0); (0, 1) ]
  in
  Alcotest.(check int) "one edge" 1 (Graph.m g);
  Alcotest.(check int) "degree" 1 (Graph.degree g 0)

let test_neighbors_sorted () =
  let g =
    Graph.create ~costs:(Array.make 5 1.0)
      ~edges:[ (0, 4); (0, 2); (0, 1); (0, 3) ]
  in
  Alcotest.(check (array int)) "sorted" [| 1; 2; 3; 4 |] (Graph.neighbors g 0)

let test_mem_edge () =
  let g = small () in
  Alcotest.(check bool) "present" true (Graph.mem_edge g 0 1);
  Alcotest.(check bool) "symmetric" true (Graph.mem_edge g 1 0);
  Alcotest.(check bool) "absent" false (Graph.mem_edge g 0 2)

let test_edges_listing () =
  let g = small () in
  Alcotest.(check (list (pair int int))) "canonical edges"
    [ (0, 1); (0, 3); (1, 2); (2, 3) ]
    (Graph.edges g)

let test_validation () =
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.create: self-loop")
    (fun () -> ignore (Graph.create ~costs:[| 1.0 |] ~edges:[ (0, 0) ]));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Graph.create: edge endpoint out of range") (fun () ->
      ignore (Graph.create ~costs:[| 1.0 |] ~edges:[ (0, 1) ]));
  Alcotest.check_raises "negative cost"
    (Invalid_argument "Graph: node costs must be finite and non-negative")
    (fun () -> ignore (Graph.create ~costs:[| -1.0 |] ~edges:[]))

let test_with_costs () =
  let g = small () in
  let g2 = Graph.with_costs g [| 5.0; 6.0; 7.0; 8.0 |] in
  Test_util.check_float "new cost" 5.0 (Graph.cost g2 0);
  Test_util.check_float "original untouched" 1.0 (Graph.cost g 0);
  Alcotest.(check int) "edges shared" (Graph.m g) (Graph.m g2)

let test_with_cost_single () =
  let g = small () in
  let g2 = Graph.with_cost g 2 99.0 in
  Test_util.check_float "changed" 99.0 (Graph.cost g2 2);
  Test_util.check_float "others same" 2.0 (Graph.cost g2 1)

let test_costs_copy_isolated () =
  let g = small () in
  let c = Graph.costs g in
  c.(0) <- 1000.0;
  Test_util.check_float "internal unchanged" 1.0 (Graph.cost g 0)

let test_remove_node () =
  let g = small () in
  let g2 = Graph.remove_node g 1 in
  Alcotest.(check int) "same n (id stability)" 4 (Graph.n g2);
  Alcotest.(check int) "isolated" 0 (Graph.degree g2 1);
  Alcotest.(check int) "edges dropped" 2 (Graph.m g2);
  Alcotest.(check bool) "0-1 gone" false (Graph.mem_edge g2 0 1);
  Alcotest.(check bool) "2-3 kept" true (Graph.mem_edge g2 2 3)

let test_remove_nodes_multi () =
  let g = small () in
  let g2 = Graph.remove_nodes g [ 0; 2 ] in
  Alcotest.(check int) "no edges left" 0 (Graph.m g2)

let test_iter_edges_each_once () =
  let g = small () in
  let count = ref 0 in
  Graph.iter_edges (fun u v ->
      incr count;
      Alcotest.(check bool) "u < v" true (u < v))
    g;
  Alcotest.(check int) "m edges" (Graph.m g) !count

let test_fold_neighbors () =
  let g = small () in
  let degree_sum = Graph.fold_neighbors (fun _ acc -> acc + 1) g 0 0 in
  Alcotest.(check int) "degree via fold" (Graph.degree g 0) degree_sum

let test_all_positive () =
  let g = small () in
  Alcotest.(check bool) "positive" true (Graph.all_positive_costs g);
  let g0 = Graph.with_cost g 0 0.0 in
  Alcotest.(check bool) "zero detected" false (Graph.all_positive_costs g0)

let prop_remove_node_edge_count =
  Test_util.qcheck_case ~count:50 "remove_node drops exactly incident edges"
    Test_util.seed_gen (fun seed ->
      let g = Test_util.random_ring_graph (Test_util.rng seed) in
      let v = seed mod Graph.n g in
      let g2 = Graph.remove_node g v in
      Graph.m g2 = Graph.m g - Graph.degree g v)

let suite =
  [
    Alcotest.test_case "node / edge counts" `Quick test_sizes;
    Alcotest.test_case "duplicate edges collapse" `Quick test_duplicate_edges_collapse;
    Alcotest.test_case "neighbours sorted" `Quick test_neighbors_sorted;
    Alcotest.test_case "mem_edge" `Quick test_mem_edge;
    Alcotest.test_case "edge listing canonical" `Quick test_edges_listing;
    Alcotest.test_case "input validation" `Quick test_validation;
    Alcotest.test_case "with_costs" `Quick test_with_costs;
    Alcotest.test_case "with_cost single" `Quick test_with_cost_single;
    Alcotest.test_case "costs returns a copy" `Quick test_costs_copy_isolated;
    Alcotest.test_case "remove_node isolates" `Quick test_remove_node;
    Alcotest.test_case "remove several nodes" `Quick test_remove_nodes_multi;
    Alcotest.test_case "iter_edges visits once" `Quick test_iter_edges_each_once;
    Alcotest.test_case "fold_neighbors" `Quick test_fold_neighbors;
    Alcotest.test_case "all_positive_costs" `Quick test_all_positive;
    prop_remove_node_edge_count;
  ]
