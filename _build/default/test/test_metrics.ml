open Wnet_graph

let test_ring_metrics () =
  let g = Wnet_topology.Fixtures.ring ~costs:(Array.make 6 1.0) in
  let m = Metrics.compute g in
  Alcotest.(check int) "nodes" 6 m.Metrics.nodes;
  Alcotest.(check int) "edges" 6 m.Metrics.edges;
  Alcotest.(check int) "min degree" 2 m.Metrics.min_degree;
  Alcotest.(check int) "max degree" 2 m.Metrics.max_degree;
  Test_util.check_float "mean degree" 2.0 m.Metrics.mean_degree;
  Alcotest.(check int) "one component" 1 m.Metrics.components;
  Alcotest.(check int) "diameter" 3 m.Metrics.hop_diameter;
  Alcotest.(check bool) "biconnected" true m.Metrics.biconnected

let test_line_metrics () =
  let g = Wnet_topology.Fixtures.line ~costs:(Array.make 5 1.0) in
  let m = Metrics.compute g in
  Alcotest.(check int) "diameter" 4 m.Metrics.hop_diameter;
  Alcotest.(check bool) "not biconnected" false m.Metrics.biconnected;
  Alcotest.(check int) "min degree (leaf)" 1 m.Metrics.min_degree

let test_disconnected_metrics () =
  let g = Graph.create ~costs:(Array.make 5 1.0) ~edges:[ (0, 1); (2, 3) ] in
  let m = Metrics.compute g in
  Alcotest.(check int) "components" 3 m.Metrics.components;
  Alcotest.(check int) "largest" 2 m.Metrics.largest_component;
  Alcotest.(check int) "diameter within components" 1 m.Metrics.hop_diameter

let test_mean_hop_distance () =
  (* path 0-1-2: distances 1,1,2 each counted in both directions *)
  let g = Wnet_topology.Fixtures.line ~costs:(Array.make 3 1.0) in
  let m = Metrics.compute g in
  Test_util.check_float "mean hops" (4.0 /. 3.0) m.Metrics.mean_hop_distance

let test_degree_histogram () =
  let g = Wnet_topology.Fixtures.line ~costs:(Array.make 4 1.0) in
  Alcotest.(check (list (pair int int))) "2 leaves, 2 interior" [ (1, 2); (2, 2) ]
    (Metrics.degree_histogram g)

let test_empty_graph () =
  let g = Graph.create ~costs:[| 1.0; 1.0 |] ~edges:[] in
  let m = Metrics.compute g in
  Alcotest.(check int) "no edges" 0 m.Metrics.edges;
  Alcotest.(check int) "diameter 0" 0 m.Metrics.hop_diameter;
  Alcotest.(check bool) "mean nan" true (Float.is_nan m.Metrics.mean_hop_distance)

let test_csv_basic () =
  let t = Wnet_stats.Table.make ~headers:[ "a"; "b" ] in
  Wnet_stats.Table.add_row t [ "1"; "2" ];
  Wnet_stats.Table.add_row t [ "x,y"; "q\"z" ];
  let csv = Wnet_stats.Table.to_csv t in
  let lines = String.split_on_char '\n' csv in
  Alcotest.(check int) "three lines" 3 (List.length lines);
  Alcotest.(check string) "header" "a,b" (List.nth lines 0);
  Alcotest.(check string) "plain row" "1,2" (List.nth lines 1);
  Alcotest.(check string) "quoted row" "\"x,y\",\"q\"\"z\"" (List.nth lines 2)

let test_csv_row_order () =
  let t = Wnet_stats.Table.make ~headers:[ "v" ] in
  Wnet_stats.Table.add_row t [ "first" ];
  Wnet_stats.Table.add_row t [ "second" ];
  let csv = Wnet_stats.Table.to_csv t in
  Alcotest.(check bool) "order kept" true
    (Str_ext.index_of csv "first" < Str_ext.index_of csv "second")


let test_udg_instance_metrics () =
  (* sanity on a realistic instance: the paper's deployment at n = 150 is
     connected with high probability and has a multi-hop diameter *)
  let r = Test_util.rng 200 in
  match
    Wnet_topology.Udg.generate_connected r
      ~region:(Wnet_geom.Region.square 1500.0) ~n:120 ~range:300.0 ~max_tries:50
  with
  | None -> Alcotest.fail "should connect at this density"
  | Some t ->
    let g = Wnet_topology.Udg.node_graph t ~costs:(Array.make 120 1.0) in
    let m = Metrics.compute g in
    Alcotest.(check int) "one component" 1 m.Metrics.components;
    Alcotest.(check bool) "multi-hop diameter" true (m.Metrics.hop_diameter >= 3);
    Alcotest.(check bool) "mean degree plausible" true
      (m.Metrics.mean_degree > 3.0 && m.Metrics.mean_degree < 40.0)

let prop_metrics_invariants =
  Test_util.qcheck_case ~count:40 "metric invariants on random graphs"
    Test_util.seed_gen (fun seed ->
      let g = Test_util.random_sparse_graph (Test_util.rng seed) in
      let m = Metrics.compute g in
      m.Metrics.min_degree <= m.Metrics.max_degree
      && m.Metrics.mean_degree >= float_of_int m.Metrics.min_degree -. 1e-9
      && m.Metrics.mean_degree <= float_of_int m.Metrics.max_degree +. 1e-9
      && m.Metrics.largest_component <= m.Metrics.nodes
      && m.Metrics.components >= 1
      && (m.Metrics.components = 1) = Connectivity.is_connected g
      && List.fold_left (fun a (_, c) -> a + c) 0 (Metrics.degree_histogram g)
         = m.Metrics.nodes)

let suite =
  [
    Alcotest.test_case "ring metrics" `Quick test_ring_metrics;
    Alcotest.test_case "line metrics" `Quick test_line_metrics;
    Alcotest.test_case "disconnected metrics" `Quick test_disconnected_metrics;
    Alcotest.test_case "mean hop distance" `Quick test_mean_hop_distance;
    Alcotest.test_case "degree histogram" `Quick test_degree_histogram;
    Alcotest.test_case "empty graph" `Quick test_empty_graph;
    Alcotest.test_case "csv escaping" `Quick test_csv_basic;
    Alcotest.test_case "csv row order" `Quick test_csv_row_order;
    Alcotest.test_case "UDG instance metrics" `Quick test_udg_instance_metrics;
    prop_metrics_invariants;
  ]
