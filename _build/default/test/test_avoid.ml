open Wnet_graph

(* The correctness heart of the repository: Algorithm 1 must agree with
   the naive per-relay recomputation everywhere, including disconnection
   (infinity) cases. *)

let agree (a : Avoid.result) (b : Avoid.result) =
  a.Avoid.path = b.Avoid.path
  && Test_util.approx a.Avoid.lcp_cost b.Avoid.lcp_cost
  && Array.for_all2
       (fun x y -> Test_util.approx x y)
       a.Avoid.replacement b.Avoid.replacement

let compare_on g ~src ~dst =
  match
    ( Avoid.replacement_costs_naive g ~src ~dst,
      Avoid.replacement_costs_fast g ~src ~dst )
  with
  | None, None -> true
  | Some a, Some b -> agree a b
  | Some _, None | None, Some _ -> false

let test_ring_by_hand () =
  (* Ring of 5, costs 1..5: LCP(0 -> 2) = 0-1-2 (relay cost 2).  Removing
     relay 1 forces the other way round: relays 5?, no — nodes 4 and 3,
     costs c4 + c3. *)
  let g = Wnet_topology.Fixtures.ring ~costs:[| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  match Avoid.replacement_costs_fast g ~src:0 ~dst:2 with
  | None -> Alcotest.fail "connected"
  | Some r ->
    Alcotest.(check (array int)) "path" [| 0; 1; 2 |] r.Avoid.path;
    Test_util.check_float "lcp cost" 2.0 r.Avoid.lcp_cost;
    Test_util.check_float "replacement around" 9.0 r.Avoid.replacement.(1)

let test_direct_edge_no_relays () =
  let g = Wnet_topology.Fixtures.ring ~costs:[| 1.0; 1.0; 1.0 |] in
  match Avoid.replacement_costs_fast g ~src:0 ~dst:1 with
  | None -> Alcotest.fail "connected"
  | Some r ->
    Alcotest.(check int) "two nodes" 2 (Array.length r.Avoid.path);
    Alcotest.(check bool) "no replacement entries" true
      (Array.for_all Float.is_nan r.Avoid.replacement)

let test_unreachable_gives_none () =
  let g = Graph.create ~costs:[| 1.0; 1.0; 1.0 |] ~edges:[ (0, 1) ] in
  Alcotest.(check bool) "naive none" true
    (Avoid.replacement_costs_naive g ~src:0 ~dst:2 = None);
  Alcotest.(check bool) "fast none" true
    (Avoid.replacement_costs_fast g ~src:0 ~dst:2 = None)

let test_cut_node_infinite () =
  let g = Wnet_topology.Fixtures.line ~costs:[| 1.0; 2.0; 3.0 |] in
  match Avoid.replacement_costs_fast g ~src:0 ~dst:2 with
  | None -> Alcotest.fail "connected"
  | Some r ->
    Test_util.check_float "monopoly relay" infinity r.Avoid.replacement.(1)

let test_avoiding_cost_direct () =
  let g = Wnet_core.Examples.diamond in
  Test_util.check_float "detour cost" 3.0
    (Avoid.avoiding_cost g ~src:0 ~dst:3 ~avoid:1);
  Alcotest.check_raises "avoid endpoint"
    (Invalid_argument "Avoid.avoiding_cost: cannot avoid an endpoint")
    (fun () -> ignore (Avoid.avoiding_cost g ~src:0 ~dst:3 ~avoid:0))

let test_validation () =
  let g = Wnet_core.Examples.diamond in
  Alcotest.check_raises "src = dst" (Invalid_argument "Avoid: src = dst")
    (fun () -> ignore (Avoid.replacement_costs_fast g ~src:1 ~dst:1));
  let zero = Graph.with_cost g 1 0.0 in
  Alcotest.check_raises "zero costs rejected by fast"
    (Invalid_argument
       "Avoid.replacement_costs_fast: requires strictly positive costs")
    (fun () -> ignore (Avoid.replacement_costs_fast zero ~src:0 ~dst:3))

let test_naive_handles_zero_costs () =
  let g = Graph.with_cost Wnet_core.Examples.diamond 1 0.0 in
  match Avoid.replacement_costs_naive g ~src:0 ~dst:3 with
  | None -> Alcotest.fail "connected"
  | Some r -> Test_util.check_float "replacement" 3.0 r.Avoid.replacement.(1)

let test_levels_labelling () =
  let g = Wnet_core.Examples.fig2.Wnet_core.Examples.graph in
  let tree = Dijkstra.node_weighted g ~source:1 in
  match Dijkstra.path_to tree 0 with
  | None -> Alcotest.fail "connected"
  | Some path ->
    let levels = Avoid.levels g ~tree path in
    Array.iteri
      (fun idx v -> Alcotest.(check int) "path node level = index" idx levels.(v))
      path;
    (* off-path nodes 5 and 6 hang off the source (level 0) *)
    Alcotest.(check int) "backup arm level" 0 levels.(5);
    Alcotest.(check int) "second backup level" 0 levels.(6)

let prop_fast_matches_naive_dense =
  Test_util.qcheck_case ~count:150 "fast = naive on ring+chords graphs"
    Test_util.seed_gen (fun seed ->
      let r = Test_util.rng seed in
      let g = Test_util.random_ring_graph r in
      let n = Graph.n g in
      let src = Wnet_prng.Rng.int r n in
      let dst = (src + 1 + Wnet_prng.Rng.int r (n - 1)) mod n in
      compare_on g ~src ~dst)

let prop_fast_matches_naive_sparse =
  Test_util.qcheck_case ~count:150 "fast = naive on sparse graphs (disconnections)"
    Test_util.seed_gen (fun seed ->
      let r = Test_util.rng seed in
      let g = Test_util.random_sparse_graph r in
      let n = Graph.n g in
      let src = Wnet_prng.Rng.int r n in
      let dst = (src + 1 + Wnet_prng.Rng.int r (n - 1)) mod n in
      compare_on g ~src ~dst)

let prop_fast_matches_naive_udg =
  Test_util.qcheck_case ~count:40 "fast = naive on UDG instances"
    Test_util.seed_gen (fun seed ->
      let r = Test_util.rng seed in
      let t =
        Wnet_topology.Udg.generate r
          ~region:(Wnet_geom.Region.square 1000.0)
          ~n:40 ~range:280.0
      in
      let costs = Wnet_topology.Udg.uniform_node_costs r ~n:40 ~lo:0.5 ~hi:8.0 in
      let g = Wnet_topology.Udg.node_graph t ~costs in
      let src = Wnet_prng.Rng.int r 40 in
      let dst = (src + 1 + Wnet_prng.Rng.int r 39) mod 40 in
      (* either both say unreachable or they fully agree *)
      compare_on g ~src ~dst)

let prop_replacement_at_least_lcp =
  Test_util.qcheck_case ~count:100 "replacement cost >= LCP cost"
    Test_util.seed_gen (fun seed ->
      let r = Test_util.rng seed in
      let g = Test_util.random_ring_graph r in
      let n = Graph.n g in
      let src = Wnet_prng.Rng.int r n in
      let dst = (src + 1 + Wnet_prng.Rng.int r (n - 1)) mod n in
      match Avoid.replacement_costs_fast g ~src ~dst with
      | None -> true
      | Some res ->
        Array.for_all
          (fun x -> Float.is_nan x || x >= res.Avoid.lcp_cost -. 1e-9)
          res.Avoid.replacement)

let prop_replacement_is_avoiding_distance =
  Test_util.qcheck_case ~count:60 "replacement(l) = independent avoiding Dijkstra"
    Test_util.seed_gen (fun seed ->
      let r = Test_util.rng seed in
      let g = Test_util.random_ring_graph ~max_n:20 r in
      let n = Graph.n g in
      let src = Wnet_prng.Rng.int r n in
      let dst = (src + 1 + Wnet_prng.Rng.int r (n - 1)) mod n in
      match Avoid.replacement_costs_fast g ~src ~dst with
      | None -> true
      | Some res ->
        let ok = ref true in
        Array.iteri
          (fun l x ->
            if not (Float.is_nan x) then begin
              let d =
                Avoid.avoiding_cost g ~src ~dst ~avoid:res.Avoid.path.(l)
              in
              if not (Test_util.approx x d) then ok := false
            end)
          res.Avoid.replacement;
        !ok)


let test_scale_corridor () =
  (* paper-scale single instance: long corridor, ~25-relay LCP *)
  let r = Test_util.rng 48 in
  let t =
    Wnet_topology.Udg.generate r
      ~region:(Wnet_geom.Region.make ~width:6000.0 ~height:400.0)
      ~n:250 ~range:320.0
  in
  let costs = Wnet_topology.Udg.uniform_node_costs r ~n:250 ~lo:1.0 ~hi:8.0 in
  let g = Wnet_topology.Udg.node_graph t ~costs in
  (* farthest reachable node from 0 *)
  let tree = Dijkstra.node_weighted g ~source:0 in
  let src = ref 0 and d = ref neg_infinity in
  for v = 1 to 249 do
    let x = Dijkstra.dist tree v in
    if Float.is_finite x && x > !d then begin
      src := v;
      d := x
    end
  done;
  if !src <> 0 then
    Alcotest.(check bool) "fast = naive at n = 250" true
      (compare_on g ~src:!src ~dst:0)

let suite =
  [
    Alcotest.test_case "ring by hand" `Quick test_ring_by_hand;
    Alcotest.test_case "direct edge has no relays" `Quick test_direct_edge_no_relays;
    Alcotest.test_case "unreachable destination" `Quick test_unreachable_gives_none;
    Alcotest.test_case "cut relay priced at infinity" `Quick test_cut_node_infinite;
    Alcotest.test_case "one-shot avoiding cost" `Quick test_avoiding_cost_direct;
    Alcotest.test_case "input validation" `Quick test_validation;
    Alcotest.test_case "naive accepts zero costs" `Quick test_naive_handles_zero_costs;
    Alcotest.test_case "level labelling" `Quick test_levels_labelling;
    prop_fast_matches_naive_dense;
    prop_fast_matches_naive_sparse;
    prop_fast_matches_naive_udg;
    prop_replacement_at_least_lcp;
    prop_replacement_is_avoiding_distance;
    Alcotest.test_case "scale: corridor n = 250" `Quick test_scale_corridor;
  ]
