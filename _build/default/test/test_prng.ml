open Wnet_prng

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check (float 0.0)) "same stream" (Rng.float a 1.0) (Rng.float b 1.0)
  done

let test_copy_independent () =
  let a = Rng.create 7 in
  let _ = Rng.float a 1.0 in
  let b = Rng.copy a in
  let xa = Rng.float a 1.0 and xb = Rng.float b 1.0 in
  Alcotest.(check (float 0.0)) "copy replays" xa xb;
  (* advancing the copy does not advance the original *)
  let _ = Rng.float b 1.0 in
  let a2 = Rng.float a 1.0 and b2 = Rng.float b 1.0 in
  Alcotest.(check bool) "streams diverge after copy use" true (a2 <> b2 || a2 = b2)

let test_split_differs () =
  let a = Rng.create 9 in
  let child = Rng.split a in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Rng.float a 1.0 = Rng.float child 1.0 then incr same
  done;
  Alcotest.(check bool) "child stream decorrelated" true (!same < 5)

let test_float_range () =
  let r = Rng.create 1 in
  for _ = 1 to 1000 do
    let x = Rng.float_range r 2.0 5.0 in
    Alcotest.(check bool) "in range" true (x >= 2.0 && x < 5.0)
  done

let test_float_unit_interval () =
  let r = Rng.create 2 in
  for _ = 1 to 1000 do
    let x = Rng.float r 1.0 in
    Alcotest.(check bool) "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_int_bounds () =
  let r = Rng.create 3 in
  let seen = Array.make 7 false in
  for _ = 1 to 2000 do
    let x = Rng.int r 7 in
    Alcotest.(check bool) "in [0,7)" true (x >= 0 && x < 7);
    seen.(x) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_int_range_inclusive () =
  let r = Rng.create 4 in
  let lo = ref max_int and hi = ref min_int in
  for _ = 1 to 2000 do
    let x = Rng.int_range r (-3) 3 in
    lo := min !lo x;
    hi := max !hi x
  done;
  Alcotest.(check int) "reaches low end" (-3) !lo;
  Alcotest.(check int) "reaches high end" 3 !hi

let test_int_invalid () =
  let r = Rng.create 5 in
  Alcotest.check_raises "n = 0 rejected" (Invalid_argument "Splitmix64.next_below: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_bernoulli_bias () =
  let r = Rng.create 6 in
  let hits = ref 0 in
  let trials = 20_000 in
  for _ = 1 to trials do
    if Rng.bernoulli r 0.3 then incr hits
  done;
  let freq = float_of_int !hits /. float_of_int trials in
  Alcotest.(check bool) "frequency near 0.3" true (Float.abs (freq -. 0.3) < 0.02)

let test_uniform_mean () =
  let r = Rng.create 8 in
  let sum = ref 0.0 in
  let trials = 20_000 in
  for _ = 1 to trials do
    sum := !sum +. Rng.float r 1.0
  done;
  let mean = !sum /. float_of_int trials in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.02)

let test_exponential_mean () =
  let r = Rng.create 10 in
  let sum = ref 0.0 in
  let trials = 20_000 in
  for _ = 1 to trials do
    sum := !sum +. Rng.exponential r 2.0
  done;
  let mean = !sum /. float_of_int trials in
  Alcotest.(check bool) "mean near 1/rate" true (Float.abs (mean -. 0.5) < 0.05)

let test_gaussian_moments () =
  let r = Rng.create 11 in
  let trials = 20_000 in
  let xs = Array.init trials (fun _ -> Rng.gaussian r ~mean:3.0 ~std:2.0) in
  let mean = Array.fold_left ( +. ) 0.0 xs /. float_of_int trials in
  let var =
    Array.fold_left (fun a x -> a +. ((x -. mean) ** 2.0)) 0.0 xs
    /. float_of_int trials
  in
  Alcotest.(check bool) "mean near 3" true (Float.abs (mean -. 3.0) < 0.1);
  Alcotest.(check bool) "std near 2" true (Float.abs (sqrt var -. 2.0) < 0.1)

let test_shuffle_permutation () =
  let r = Rng.create 12 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle_in_place r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 50 Fun.id) sorted

let test_sample_without_replacement () =
  let r = Rng.create 13 in
  let a = Array.init 20 Fun.id in
  let s = Rng.sample_without_replacement r 8 a in
  Alcotest.(check int) "size" 8 (Array.length s);
  let sorted = Array.copy s in
  Array.sort compare sorted;
  let distinct = Array.for_all Fun.id (Array.mapi (fun i x -> i = 0 || sorted.(i - 1) <> x) sorted) in
  Alcotest.(check bool) "distinct" true distinct

let test_choose () =
  let r = Rng.create 14 in
  for _ = 1 to 100 do
    let x = Rng.choose r [| 5; 6; 7 |] in
    Alcotest.(check bool) "member" true (List.mem x [ 5; 6; 7 ])
  done


let test_splitmix_raw () =
  let a = Wnet_prng.Splitmix64.create 42L in
  let b = Wnet_prng.Splitmix64.create 42L in
  Alcotest.(check int64) "same outputs" (Wnet_prng.Splitmix64.next a)
    (Wnet_prng.Splitmix64.next b);
  let c = Wnet_prng.Splitmix64.copy a in
  Alcotest.(check int64) "copy replays" (Wnet_prng.Splitmix64.next a)
    (Wnet_prng.Splitmix64.next c)

let test_of_state () =
  let s = Wnet_prng.Splitmix64.create 7L in
  let r = Rng.of_state s in
  let x = Rng.float r 1.0 in
  Alcotest.(check bool) "usable" true (x >= 0.0 && x < 1.0)

let test_next_below_uniformity () =
  (* chi-square-ish sanity on next_below 10 *)
  let s = Wnet_prng.Splitmix64.create 11L in
  let counts = Array.make 10 0 in
  let trials = 50_000 in
  for _ = 1 to trials do
    let k = Wnet_prng.Splitmix64.next_below s 10 in
    counts.(k) <- counts.(k) + 1
  done;
  Array.iter
    (fun c ->
      let freq = float_of_int c /. float_of_int trials in
      Alcotest.(check bool) "each cell near 10%" true (Float.abs (freq -. 0.1) < 0.01))
    counts

let suite =
  [
    Alcotest.test_case "determinism from seed" `Quick test_determinism;
    Alcotest.test_case "copy replays the stream" `Quick test_copy_independent;
    Alcotest.test_case "split decorrelates" `Quick test_split_differs;
    Alcotest.test_case "float_range bounds" `Quick test_float_range;
    Alcotest.test_case "float unit interval" `Quick test_float_unit_interval;
    Alcotest.test_case "int bounds and coverage" `Quick test_int_bounds;
    Alcotest.test_case "int_range inclusive" `Quick test_int_range_inclusive;
    Alcotest.test_case "int rejects bad bound" `Quick test_int_invalid;
    Alcotest.test_case "bernoulli bias" `Quick test_bernoulli_bias;
    Alcotest.test_case "uniform mean" `Quick test_uniform_mean;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
    Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "sample without replacement" `Quick test_sample_without_replacement;
    Alcotest.test_case "choose picks members" `Quick test_choose;
    Alcotest.test_case "splitmix raw interface" `Quick test_splitmix_raw;
    Alcotest.test_case "of_state wrapper" `Quick test_of_state;
    Alcotest.test_case "next_below uniformity" `Quick test_next_below_uniformity;
  ]
