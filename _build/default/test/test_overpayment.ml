open Wnet_core

let sample source payment lcp_cost hops =
  { Overpayment.source; payment; lcp_cost; hops }

let test_study_basic () =
  let s =
    Overpayment.study [ sample 1 3.0 2.0 2; sample 2 6.0 3.0 3 ]
  in
  Test_util.check_float "TOR = 9/5" (9.0 /. 5.0) s.Overpayment.tor;
  Test_util.check_float "IOR = (1.5 + 2)/2" 1.75 s.Overpayment.ior;
  Test_util.check_float "worst" 2.0 s.Overpayment.worst;
  Alcotest.(check int) "none skipped" 0 s.Overpayment.skipped

let test_study_skips_trivial_and_infinite () =
  let s =
    Overpayment.study
      [ sample 1 3.0 2.0 2; sample 2 0.0 0.0 1; sample 3 infinity 2.0 2 ]
  in
  Alcotest.(check int) "two skipped" 2 s.Overpayment.skipped;
  Test_util.check_float "ratios from the remaining one" 1.5 s.Overpayment.ior

let test_study_empty () =
  let s = Overpayment.study [] in
  Alcotest.(check bool) "nan tor" true (Float.is_nan s.Overpayment.tor)

let test_by_hop_buckets () =
  let buckets =
    Overpayment.by_hop
      [ sample 1 2.0 1.0 2; sample 2 4.0 1.0 2; sample 3 3.0 2.0 5 ]
  in
  match buckets with
  | [ b2; b5 ] ->
    Alcotest.(check int) "hop 2" 2 b2.Overpayment.hop;
    Alcotest.(check int) "count" 2 b2.Overpayment.count;
    Test_util.check_float "mean" 3.0 b2.Overpayment.mean_ratio;
    Test_util.check_float "max" 4.0 b2.Overpayment.max_ratio;
    Alcotest.(check int) "hop 5" 5 b5.Overpayment.hop;
    Test_util.check_float "single ratio" 1.5 b5.Overpayment.mean_ratio
  | _ -> Alcotest.fail "expected two buckets"

let test_of_unicast () =
  let g = Examples.diamond in
  let r = Unicast.run g ~src:3 ~dst:0 |> Option.get in
  match Overpayment.of_unicast [ r ] with
  | [ s ] ->
    Alcotest.(check int) "source" 3 s.Overpayment.source;
    Test_util.check_float "payment" 3.0 s.Overpayment.payment;
    Test_util.check_float "cost" 1.0 s.Overpayment.lcp_cost;
    Alcotest.(check int) "hops" 2 s.Overpayment.hops
  | _ -> Alcotest.fail "one sample"

let test_of_link_batch () =
  let g =
    Wnet_graph.Digraph.create ~n:4
      ~links:
        [ (1, 0, 1.0); (2, 1, 2.0); (2, 0, 9.0); (3, 2, 1.0); (3, 0, 20.0); (1, 2, 2.0) ]
  in
  let batch = Link_cost.all_to_root g ~root:0 in
  let samples = Overpayment.of_link_batch batch in
  (* sources 1, 2, 3 all reach the root *)
  Alcotest.(check int) "three samples" 3 (List.length samples)

let test_merge_studies () =
  let s1 = Overpayment.study [ sample 1 3.0 2.0 2 ] in
  let s2 = Overpayment.study [ sample 2 6.0 3.0 3; sample 9 0.0 0.0 1 ] in
  let m = Overpayment.merge_studies [ s1; s2 ] in
  Test_util.check_float "pooled TOR" (9.0 /. 5.0) m.Overpayment.tor;
  Alcotest.(check int) "skips accumulated" 1 m.Overpayment.skipped

let test_ratio_at_least_one () =
  (* With truthful bids, payment >= LCP cost, so every ratio >= 1. *)
  let r = Test_util.rng 120 in
  for _ = 1 to 10 do
    let g = Test_util.random_ring_graph ~max_n:25 r in
    let batch = Unicast.all_to_root g ~root:0 in
    let samples =
      Array.to_list batch |> List.filter_map Fun.id |> Overpayment.of_unicast
    in
    let s = Overpayment.study samples in
    match s.Overpayment.samples with
    | [] -> ()
    | _ ->
      Alcotest.(check bool) "IOR >= 1" true (s.Overpayment.ior >= 1.0 -. 1e-9);
      Alcotest.(check bool) "TOR >= 1" true (s.Overpayment.tor >= 1.0 -. 1e-9)
  done

let suite =
  [
    Alcotest.test_case "study basics" `Quick test_study_basic;
    Alcotest.test_case "skips trivial/infinite" `Quick test_study_skips_trivial_and_infinite;
    Alcotest.test_case "empty study" `Quick test_study_empty;
    Alcotest.test_case "hop buckets" `Quick test_by_hop_buckets;
    Alcotest.test_case "samples from unicast" `Quick test_of_unicast;
    Alcotest.test_case "samples from link batch" `Quick test_of_link_batch;
    Alcotest.test_case "merging studies" `Quick test_merge_studies;
    Alcotest.test_case "truthful ratios >= 1" `Quick test_ratio_at_least_one;
  ]
