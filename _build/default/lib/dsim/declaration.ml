type node_state = {
  known : float array;
  complete : bool;
}

type msg = { origin : int; cost : float }

let run ?declared ?max_rounds g =
  let n = Wnet_graph.Graph.n g in
  let declared =
    match declared with
    | Some f -> f
    | None -> fun v -> Wnet_graph.Graph.cost g v
  in
  let init v =
    let known = Array.make n nan in
    known.(v) <- declared v;
    { known; complete = n <= 1 }
  in
  let completeness known = Array.for_all (fun x -> not (Float.is_nan x)) known in
  let step ~node:v ~round ~inbox st =
    let fresh = ref [] in
    List.iter
      (fun (_, m) ->
        if Float.is_nan st.known.(m.origin) then begin
          st.known.(m.origin) <- m.cost;
          fresh := m :: !fresh
        end)
      inbox;
    let outputs =
      if round = 0 then
        [ Engine.Broadcast { origin = v; cost = declared v } ]
      else List.rev_map (fun m -> Engine.Broadcast m) !fresh
    in
    ({ st with complete = completeness st.known }, outputs)
  in
  Engine.run ?max_rounds g { init; step }

let consensus_profile states =
  match Array.length states with
  | 0 -> Some [||]
  | _ ->
    if not (Array.for_all (fun s -> s.complete) states) then None
    else begin
      let reference = states.(0).known in
      let agree =
        Array.for_all
          (fun s -> Array.for_all2 (fun a b -> a = b) s.known reference)
          states
      in
      if agree then Some (Array.copy reference) else None
    end
