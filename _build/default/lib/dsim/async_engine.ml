type stats = {
  deliveries : int;
  steps : int;
  virtual_time : float;
  converged : bool;
}

type 'msg event = { target : int; sender : int; payload : 'msg }

let run ?max_events ?(min_delay = 0.5) ?(max_delay = 1.5) ~rng g
    (spec : ('state, 'msg) Engine.spec) =
  if not (0.0 < min_delay && min_delay <= max_delay) then
    invalid_arg "Async_engine.run: need 0 < min_delay <= max_delay";
  let n = Wnet_graph.Graph.n g in
  let max_events = Option.value max_events ~default:(50_000 * max n 1) in
  let states = Array.init n spec.Engine.init in
  let queue : 'msg event Wnet_graph.Binheap.t = Wnet_graph.Binheap.create () in
  let deliveries = ref 0 and steps = ref 0 and now = ref 0.0 in
  let delay () = Wnet_prng.Rng.float_range rng min_delay max_delay in
  let send time outputs ~sender =
    List.iter
      (fun out ->
        match out with
        | Engine.Broadcast payload ->
          Array.iter
            (fun target ->
              Wnet_graph.Binheap.push queue (time +. delay ())
                { target; sender; payload })
            (Wnet_graph.Graph.neighbors g sender)
        | Engine.Direct (target, payload) ->
          if not (Wnet_graph.Graph.mem_edge g sender target) then
            invalid_arg "Async_engine: direct message to a non-neighbour";
          Wnet_graph.Binheap.push queue (time +. delay ()) { target; sender; payload })
      outputs
  in
  (* Time 0: everyone fires once with an empty inbox, as in the
     synchronous engine's round 0. *)
  for v = 0 to n - 1 do
    incr steps;
    let state, outputs = spec.Engine.step ~node:v ~round:0 ~inbox:[] states.(v) in
    states.(v) <- state;
    send 0.0 outputs ~sender:v
  done;
  let events = ref 0 in
  let exception Capped in
  (try
     let rec loop () =
       match Wnet_graph.Binheap.pop_min queue with
       | None -> ()
       | Some (time, ev) ->
         incr events;
         if !events > max_events then raise Capped;
         now := time;
         incr deliveries;
         incr steps;
         let state, outputs =
           spec.Engine.step ~node:ev.target ~round:!steps
             ~inbox:[ (ev.sender, ev.payload) ]
             states.(ev.target)
         in
         states.(ev.target) <- state;
         send time outputs ~sender:ev.target;
         loop ()
     in
     loop ()
   with Capped -> ());
  ( states,
    {
      deliveries = !deliveries;
      steps = !steps;
      virtual_time = !now;
      converged = Wnet_graph.Binheap.is_empty queue;
    } )
