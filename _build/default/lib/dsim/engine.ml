type 'msg output = Broadcast of 'msg | Direct of int * 'msg

type ('state, 'msg) spec = {
  init : int -> 'state;
  step :
    node:int -> round:int -> inbox:(int * 'msg) list -> 'state ->
    'state * 'msg output list;
}

type stats = {
  rounds : int;
  broadcasts : int;
  directs : int;
  deliveries : int;
  converged : bool;
}

let run ?max_rounds g spec =
  let n = Wnet_graph.Graph.n g in
  let max_rounds = Option.value max_rounds ~default:((4 * n) + 16) in
  let states = Array.init n spec.init in
  (* inboxes.(v): messages to deliver to v next round, reversed. *)
  let inboxes = Array.make n [] in
  let broadcasts = ref 0 and directs = ref 0 and deliveries = ref 0 in
  let deliver outputs ~sender =
    List.iter
      (fun out ->
        match out with
        | Broadcast msg ->
          incr broadcasts;
          Array.iter
            (fun w ->
              deliveries := !deliveries + 1;
              inboxes.(w) <- (sender, msg) :: inboxes.(w))
            (Wnet_graph.Graph.neighbors g sender)
        | Direct (target, msg) ->
          if not (Wnet_graph.Graph.mem_edge g sender target) then
            invalid_arg "Engine: direct message to a non-neighbour";
          incr directs;
          deliveries := !deliveries + 1;
          inboxes.(target) <- (sender, msg) :: inboxes.(target))
      outputs
  in
  let step_node ~round v inbox =
    let state, outputs = spec.step ~node:v ~round ~inbox states.(v) in
    states.(v) <- state;
    deliver outputs ~sender:v
  in
  (* Round 0: everyone fires once with an empty inbox. *)
  for v = 0 to n - 1 do
    step_node ~round:0 v []
  done;
  let rounds = ref 0 in
  let quiet () = Array.for_all (fun i -> i = []) inboxes in
  while (not (quiet ())) && !rounds < max_rounds do
    incr rounds;
    let current = Array.map List.rev inboxes in
    Array.fill inboxes 0 n [];
    Array.iteri
      (fun v inbox -> if inbox <> [] then step_node ~round:!rounds v inbox)
      current
  done;
  ( states,
    {
      rounds = !rounds;
      broadcasts = !broadcasts;
      directs = !directs;
      deliveries = !deliveries;
      converged = quiet ();
    } )
