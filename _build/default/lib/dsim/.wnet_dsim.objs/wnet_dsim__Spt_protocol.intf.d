lib/dsim/spt_protocol.mli: Async_engine Engine Wnet_graph Wnet_prng
