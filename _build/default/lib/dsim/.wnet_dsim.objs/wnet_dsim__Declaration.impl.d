lib/dsim/declaration.ml: Array Engine Float List Wnet_graph
