lib/dsim/declaration.mli: Engine Wnet_graph
