lib/dsim/spt_protocol.ml: Array Async_engine Engine Float Graph Hashtbl List Wnet_graph
