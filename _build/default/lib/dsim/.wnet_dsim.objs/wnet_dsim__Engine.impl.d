lib/dsim/engine.ml: Array List Option Wnet_graph
