lib/dsim/engine.mli: Wnet_graph
