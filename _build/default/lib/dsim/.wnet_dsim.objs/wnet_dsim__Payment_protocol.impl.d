lib/dsim/payment_protocol.ml: Array Async_engine Declaration Dijkstra Engine Float Graph Hashtbl List Path Spt_protocol Wnet_core Wnet_graph
