lib/dsim/payment_protocol.mli: Async_engine Engine Wnet_graph Wnet_prng
