lib/dsim/async_engine.ml: Array Engine List Option Wnet_graph Wnet_prng
