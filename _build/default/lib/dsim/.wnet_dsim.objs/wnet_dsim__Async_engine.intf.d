lib/dsim/async_engine.mli: Engine Wnet_graph Wnet_prng
