(** Synchronous message-passing engine.

    The distributed algorithms of Sec. III-C/D are round-based neighbour
    gossip: in every round each node consumes the messages delivered at
    the end of the previous round and emits new ones.  This engine runs
    such protocols over a {!Wnet_graph.Graph.t} topology and accounts for
    rounds and message volume, which is how we check the paper's
    "converges after at most [n] rounds" claim.

    The engine is event-driven: a node is stepped only when its inbox is
    non-empty (round 0 steps everyone once, with an empty inbox, so
    protocols can send their initial broadcasts).  Execution stops when
    no messages are in flight, or when [max_rounds] is hit. *)

type 'msg output =
  | Broadcast of 'msg  (** deliver to every neighbour next round *)
  | Direct of int * 'msg
      (** deliver to one specific neighbour — the "contact directly
          using a reliable and secure connection" channel of
          Algorithm 2.
          @raise Invalid_argument at runtime if the target is not a
          neighbour. *)

type ('state, 'msg) spec = {
  init : int -> 'state;
  step :
    node:int -> round:int -> inbox:(int * 'msg) list -> 'state ->
    'state * 'msg output list;
      (** [inbox] pairs each message with its sender, in sender order. *)
}

type stats = {
  rounds : int;  (** number of rounds in which at least one node stepped *)
  broadcasts : int;  (** broadcast messages sent (each reaches [degree] nodes) *)
  directs : int;
  deliveries : int;  (** point-to-point deliveries, all channels *)
  converged : bool;  (** stopped because the network went quiet *)
}

val run :
  ?max_rounds:int ->
  Wnet_graph.Graph.t ->
  ('state, 'msg) spec ->
  'state array * stats
(** [run g spec] executes until quiescence (default [max_rounds] =
    [4 * n + 16]). *)
