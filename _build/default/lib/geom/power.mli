(** The power-attenuation cost model of Section III-F.

    The power needed to support a link [e = (v_i, v_j)] is
    [alpha + beta * d^kappa] where [d] is the Euclidean length of the link,
    [alpha] is the per-packet receive/processing overhead, [beta] scales the
    path loss and [kappa] is the path-loss exponent (typically between 2 and
    5).  The paper's two simulation set-ups are instances of this model:

    - simulation 1 (UDG): [alpha = 0], [beta = 1], [kappa ∈ {2, 2.5}];
    - simulation 2 (random ranges): [alpha = c1 ∈ [300, 500]],
      [beta = c2 ∈ [10, 50]], [kappa ∈ {2, 2.5}]. *)

type t = { alpha : float; beta : float; kappa : float }

val make : alpha:float -> beta:float -> kappa:float -> t
(** @raise Invalid_argument if any parameter is negative or [kappa = 0]. *)

val path_loss_only : kappa:float -> t
(** [path_loss_only ~kappa] is the model [d^kappa] used by the paper's
    first simulation. *)

val cost : t -> float -> float
(** [cost m d] is the power cost [alpha + beta * d^kappa] of a link of
    length [d].
    @raise Invalid_argument if [d < 0]. *)

val link_cost : t -> Point.t -> Point.t -> float
(** [link_cost m p q] is [cost m (Point.distance p q)]. *)

val pp : Format.formatter -> t -> unit
