type t = { w : float; h : float }

let make ~width ~height =
  if width < 0.0 || height < 0.0 then
    invalid_arg "Region.make: negative dimension";
  { w = width; h = height }

let square side = make ~width:side ~height:side

let paper_region = square 2000.0

let width r = r.w
let height r = r.h

let area r = r.w *. r.h

let contains r (p : Point.t) =
  p.x >= 0.0 && p.x <= r.w && p.y >= 0.0 && p.y <= r.h

let sample_point rng r =
  Point.make (Wnet_prng.Rng.float rng r.w) (Wnet_prng.Rng.float rng r.h)

let sample_points rng r n =
  if n < 0 then invalid_arg "Region.sample_points: negative count";
  Array.init n (fun _ -> sample_point rng r)

let diagonal r = sqrt ((r.w *. r.w) +. (r.h *. r.h))
