type t = { x : float; y : float }

let make x y = { x; y }

let origin = { x = 0.0; y = 0.0 }

let distance_sq p q =
  let dx = p.x -. q.x and dy = p.y -. q.y in
  (dx *. dx) +. (dy *. dy)

let distance p q = sqrt (distance_sq p q)

let within r p q = distance_sq p q <= r *. r

let midpoint p q = { x = (p.x +. q.x) /. 2.0; y = (p.y +. q.y) /. 2.0 }

let translate p ~dx ~dy = { x = p.x +. dx; y = p.y +. dy }

let equal p q = Float.equal p.x q.x && Float.equal p.y q.y

let pp ppf p = Format.fprintf ppf "(%.3f, %.3f)" p.x p.y
