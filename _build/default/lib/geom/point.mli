(** Points in the 2-D deployment plane.

    Wireless nodes are deployed at positions in a rectangular region; link
    existence and power costs depend only on Euclidean distances between
    positions. *)

type t = { x : float; y : float }

val make : float -> float -> t
(** [make x y] is the point [(x, y)]. *)

val origin : t

val distance : t -> t -> float
(** [distance p q] is the Euclidean distance between [p] and [q]. *)

val distance_sq : t -> t -> float
(** [distance_sq p q] is the squared Euclidean distance; cheaper than
    {!distance} when only comparisons are needed. *)

val within : float -> t -> t -> bool
(** [within r p q] is [true] iff [distance p q <= r].  Computed on squared
    distances, so no square root is taken. *)

val midpoint : t -> t -> t

val translate : t -> dx:float -> dy:float -> t

val equal : t -> t -> bool
(** Structural equality on coordinates. *)

val pp : Format.formatter -> t -> unit
(** Prints as [(x, y)] with three decimals. *)
