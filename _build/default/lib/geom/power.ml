type t = { alpha : float; beta : float; kappa : float }

let make ~alpha ~beta ~kappa =
  if alpha < 0.0 || beta < 0.0 || kappa <= 0.0 then
    invalid_arg "Power.make: parameters must be non-negative, kappa positive";
  { alpha; beta; kappa }

let path_loss_only ~kappa = make ~alpha:0.0 ~beta:1.0 ~kappa

let cost m d =
  if d < 0.0 then invalid_arg "Power.cost: negative distance";
  m.alpha +. (m.beta *. (d ** m.kappa))

let link_cost m p q = cost m (Point.distance p q)

let pp ppf m =
  Format.fprintf ppf "%g + %g*d^%g" m.alpha m.beta m.kappa
