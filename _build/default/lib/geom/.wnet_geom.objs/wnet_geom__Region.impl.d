lib/geom/region.ml: Array Point Wnet_prng
