lib/geom/region.mli: Point Wnet_prng
