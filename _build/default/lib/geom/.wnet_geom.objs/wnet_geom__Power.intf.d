lib/geom/power.mli: Format Point
