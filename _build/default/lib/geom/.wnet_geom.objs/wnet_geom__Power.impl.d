lib/geom/power.ml: Format Point
