(** Rectangular deployment regions and uniform node placement.

    The paper's simulations deploy nodes uniformly at random in a
    2000 m × 2000 m square; this module generalizes that to any axis-aligned
    rectangle. *)

type t
(** An axis-aligned rectangle. *)

val make : width:float -> height:float -> t
(** [make ~width ~height] is the rectangle [\[0, width\] × \[0, height\]].
    @raise Invalid_argument if a dimension is negative. *)

val square : float -> t
(** [square side] is [make ~width:side ~height:side]. *)

val paper_region : t
(** The 2000 m × 2000 m region used in the paper's simulations. *)

val width : t -> float
val height : t -> float

val area : t -> float

val contains : t -> Point.t -> bool
(** [contains r p] tests membership (boundary inclusive). *)

val sample_point : Wnet_prng.Rng.t -> t -> Point.t
(** [sample_point rng r] draws a uniform point in [r]. *)

val sample_points : Wnet_prng.Rng.t -> t -> int -> Point.t array
(** [sample_points rng r n] draws [n] i.i.d. uniform points.
    @raise Invalid_argument if [n < 0]. *)

val diagonal : t -> float
(** Length of the diagonal — an upper bound on any pairwise distance. *)
