(** The Nisan–Ronen edge-agent mechanism (paper's Sec. II-D review of
    ref [8]) — the baseline model the paper's node-agent mechanism is
    positioned against.

    Every {e edge} is an agent with a private transmission cost; routing
    is along the shortest path under declared costs; the VCG payment to
    a path edge [e] is

    [p^e = d_{G-e}(src, dst) - (d_G(src, dst) - w_e)]

    and 0 off the path.  Two-edge-disjoint-paths connectivity plays the
    role node biconnectivity plays in the node model (no bridge
    monopolies).

    Having both models in one code base lets the experiments compare
    node-agent and edge-agent overpayment on identical topologies. *)

type t = {
  src : int;
  dst : int;
  path_nodes : int array;
  path_edges : int array;
  dist : float;  (** shortest-path length under declared costs *)
  payments : float array;
      (** per {e edge id}; non-zero only on path edges, [infinity] on
          bridges *)
}

type algo = Naive | Fast

val run : ?algo:algo -> Wnet_graph.Egraph.t -> src:int -> dst:int -> t option
(** [None] when unreachable.  Default [Fast] (the Hershberger–Suri
    sweep); [Naive] re-runs Dijkstra per path edge. *)

val total_payment : t -> float

val payment_to_edge : t -> int -> float

val utility : t -> truth:float array -> int -> float
(** True utility of edge agent [e]: payment minus true cost if used. *)

val mechanism :
  Wnet_graph.Egraph.t -> src:int -> dst:int ->
  Wnet_mech.Vcg.solution Wnet_mech.Mechanism.t
(** Direct-revelation wrapper over edge-cost profiles (agents = edges),
    for the IC/IR checkers. *)
