(** Collusion analysis (Sec. III-E and III-H).

    Three phenomena from the paper:

    - {b pairwise collusion against plain VCG}: a node on the LCP whose
      best replacement path passes through one of its own neighbours can
      bribe that neighbour to inflate its declaration, raising the pivot
      term and hence its own payment ({!find_neighbour_boost}).  This is
      the concrete attack the neighbourhood scheme of Theorem 8 closes.
    - {b Theorem 7's impossibility}: no mechanism that outputs the LCP is
      2-agents strategyproof; {!Wnet_mech.Properties} provides the
      falsifier used to exhibit violations for any candidate scheme.
    - {b resale-the-path} (Sec. III-H): after payments are set, a source
      [v_i] whose total payment exceeds [p_j + max(p_i^j, c_j)] for some
      neighbour [v_j] can route through [v_j]'s account instead and split
      the savings ({!resale_opportunities}). *)

type neighbour_boost = {
  relay : int;  (** the LCP relay that benefits *)
  accomplice : int;  (** its neighbour on the replacement path *)
  boosted_bid : float;  (** the accomplice's inflated declaration *)
  honest_pair_utility : float;
  boosted_pair_utility : float;
}

val find_neighbour_boost :
  Wnet_graph.Graph.t -> src:int -> dst:int -> boost:float ->
  neighbour_boost option
(** Searches the LCP relays for one whose replacement path (the path
    defining its VCG pivot) contains a neighbour that is off the LCP;
    inflating that neighbour's bid by [boost] then strictly raises the
    pair's total utility, provided the replacement path stays selected as
    the pivot.  Returns the first verified instance, or [None] if the
    topology offers none. *)

type resale = {
  source : int;
  proxy : int;  (** the neighbour the source resells through *)
  direct_payment : float;  (** [p_i]: what the source pays honestly *)
  proxy_payment : float;  (** [p_j]: what the proxy pays on its own LCP *)
  transfer : float;  (** [p_j + max (p_i^j, c_j)]: what the source hands the proxy *)
  saving : float;  (** [direct_payment - transfer], split between the two *)
}

val resale_opportunities :
  Wnet_graph.Graph.t ->
  root:int ->
  payments:(int -> Unicast.t option) ->
  resale list
(** [resale_opportunities g ~root ~payments] scans every source [i] and
    neighbour [j] for the Sec. III-H condition
    [p_i > p_j + max(p_i^j, c_j)], using [payments v] as the outcome of
    [v]'s unicast to [root].  Sorted by decreasing saving. *)

val effective_cost_after_resale : resale -> float
(** What the source actually spends when the proxy deal splits the saving
    in half: [transfer +. saving /. 2.]. *)
