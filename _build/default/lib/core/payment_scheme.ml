open Wnet_graph

type scheme =
  | Vcg
  | Neighbourhood
  | Collusion_sets of (int -> int list)

type t = {
  scheme_used : scheme;
  src : int;
  dst : int;
  path : Path.t;
  lcp_cost : float;
  payments : float array;
}

let removal_set scheme g ~src ~dst k =
  let raw =
    match scheme with
    | Vcg -> [ k ]
    | Neighbourhood -> k :: Array.to_list (Graph.neighbors g k)
    | Collusion_sets q -> k :: q k
  in
  List.sort_uniq compare (List.filter (fun v -> v <> src && v <> dst) raw)

let run scheme g ~src ~dst =
  let n = Graph.n g in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Payment_scheme.run: endpoint out of range";
  if src = dst then invalid_arg "Payment_scheme.run: src = dst";
  let tree = Dijkstra.node_weighted g ~source:src in
  match Dijkstra.path_to tree dst with
  | None -> None
  | Some path ->
    let lcp_cost = Dijkstra.dist tree dst in
    let on_path = Array.make n false in
    Array.iter (fun v -> on_path.(v) <- true) path;
    let payments = Array.make n 0.0 in
    (* Pivot term for node k: the LCP cost once k's whole collusion set is
       out of the graph.  Worth computing only where it can differ from
       the base LCP cost: on-path nodes, and (for the wider schemes) nodes
       whose removal set intersects the path. *)
    let price k =
      if k = src || k = dst then ()
      else begin
        let removed = removal_set scheme g ~src ~dst k in
        let touches_path = List.exists (fun v -> on_path.(v)) removed in
        if touches_path then begin
          let forbidden =
            let dead = Array.make n false in
            List.iter (fun v -> dead.(v) <- true) removed;
            fun v -> dead.(v)
          in
          let t = Dijkstra.node_weighted ~forbidden g ~source:src in
          let pivot = Dijkstra.dist t dst in
          let x_k = if on_path.(k) then Graph.cost g k else 0.0 in
          payments.(k) <- pivot -. lcp_cost +. x_k
        end
      end
    in
    for k = 0 to n - 1 do
      price k
    done;
    Some { scheme_used = scheme; src; dst; path; lcp_cost; payments }

let total_payment r = Array.fold_left ( +. ) 0.0 r.payments

let payment_to r v = r.payments.(v)

let utility r ~truth k =
  let relaying = Path.mem r.path k && k <> r.src && k <> r.dst in
  r.payments.(k) -. (if relaying then truth.(k) else 0.0)

let mechanism scheme g ~src ~dst =
  let name =
    match scheme with
    | Vcg -> "unicast-vcg"
    | Neighbourhood -> "unicast-neighbourhood-resistant"
    | Collusion_sets _ -> "unicast-set-resistant"
  in
  Wnet_mech.Mechanism.make
    ~name:(Printf.sprintf "%s(%d->%d)" name src dst)
    ~run:(fun d ->
      match run scheme (Graph.with_costs g d) ~src ~dst with
      | None -> None
      | Some r ->
        let used = Array.make (Graph.n g) false in
        Array.iter (fun v -> used.(v) <- true) (Path.relays r.path);
        Some ({ Wnet_mech.Vcg.cost = r.lcp_cost; used }, r.payments))
    ~valuation:(fun i sol c -> if sol.Wnet_mech.Vcg.used.(i) then -.c else 0.0)
